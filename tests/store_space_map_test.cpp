#include "store/space_map.h"

#include <gtest/gtest.h>

namespace squirrel::store {
namespace {

TEST(SpaceMap, SequentialAllocation) {
  SpaceMap map;
  EXPECT_EQ(map.Allocate(100), 0u);
  EXPECT_EQ(map.Allocate(50), 100u);
  EXPECT_EQ(map.Allocate(1), 150u);
  EXPECT_EQ(map.allocated_bytes(), 151u);
  EXPECT_EQ(map.pool_size(), 151u);
  EXPECT_EQ(map.free_hole_bytes(), 0u);
}

TEST(SpaceMap, FreeCreatesReusableHole) {
  SpaceMap map;
  const auto a = map.Allocate(100);
  map.Allocate(100);
  map.Free(a, 100);
  EXPECT_EQ(map.free_hole_bytes(), 100u);
  // First fit reuses the hole.
  EXPECT_EQ(map.Allocate(60), a);
  EXPECT_EQ(map.Allocate(40), a + 60);
  EXPECT_EQ(map.free_hole_bytes(), 0u);
}

TEST(SpaceMap, OversizedRequestSkipsHole) {
  SpaceMap map;
  const auto a = map.Allocate(100);
  const auto b = map.Allocate(100);
  map.Free(a, 100);
  EXPECT_EQ(map.Allocate(150), b + 100);  // hole too small
  EXPECT_EQ(map.free_hole_bytes(), 100u);
}

TEST(SpaceMap, CoalescesAdjacentFrees) {
  SpaceMap map;
  const auto a = map.Allocate(100);
  const auto b = map.Allocate(100);
  const auto c = map.Allocate(100);
  map.Allocate(100);  // guard so the pool does not shrink
  map.Free(a, 100);
  map.Free(c, 100);
  EXPECT_EQ(map.free_extent_count(), 2u);
  map.Free(b, 100);  // bridges a and c
  EXPECT_EQ(map.free_extent_count(), 1u);
  EXPECT_EQ(map.Allocate(300), a);
}

TEST(SpaceMap, PoolShrinksWhenTailFreed) {
  SpaceMap map;
  map.Allocate(100);
  const auto b = map.Allocate(100);
  map.Free(b, 100);
  EXPECT_EQ(map.pool_size(), 100u);
  EXPECT_EQ(map.free_extent_count(), 0u);
  EXPECT_EQ(map.free_hole_bytes(), 0u);
}

TEST(SpaceMap, AllocationAccounting) {
  SpaceMap map;
  const auto a = map.Allocate(64);
  map.Allocate(64);
  EXPECT_EQ(map.allocated_bytes(), 128u);
  map.Free(a, 64);
  EXPECT_EQ(map.allocated_bytes(), 64u);
}

TEST(SpaceMap, FragmentationFromInterleavedFrees) {
  SpaceMap map;
  std::vector<std::uint64_t> offsets;
  for (int i = 0; i < 10; ++i) offsets.push_back(map.Allocate(10));
  // Free every other extent: five separate holes (the tail one shrinks the
  // pool instead when applicable).
  for (int i = 0; i < 10; i += 2) map.Free(offsets[i], 10);
  EXPECT_EQ(map.free_extent_count(), 5u);
}

}  // namespace
}  // namespace squirrel::store
