#include "vmi/corpus.h"

#include <gtest/gtest.h>

#include "compress/codec.h"

namespace squirrel::vmi {
namespace {

using util::Bytes;

Bytes ReadCorpus(std::uint64_t seed, std::uint64_t offset, std::size_t size) {
  Bytes out(size);
  GenerateCorpus(seed, offset, out);
  return out;
}

TEST(Corpus, DeterministicAcrossCalls) {
  EXPECT_EQ(ReadCorpus(1, 0, 8192), ReadCorpus(1, 0, 8192));
}

TEST(Corpus, ReadBoundariesDoNotChangeContent) {
  // Reading [0, 64K) in one go must equal stitching arbitrary sub-reads.
  const Bytes whole = ReadCorpus(42, 0, 65536);
  Bytes stitched(65536);
  std::size_t pos = 0;
  std::size_t chunk = 1;
  while (pos < stitched.size()) {
    const std::size_t take = std::min(chunk, stitched.size() - pos);
    GenerateCorpus(42, pos, util::MutableByteSpan(stitched.data() + pos, take));
    pos += take;
    chunk = (chunk * 5 + 3) % 7001;
  }
  EXPECT_EQ(stitched, whole);
}

TEST(Corpus, UnalignedOffsetMatchesAlignedRead) {
  const Bytes whole = ReadCorpus(7, 0, 3 * kCorpusGrain);
  const Bytes middle = ReadCorpus(7, 1234, 5000);
  EXPECT_TRUE(std::equal(middle.begin(), middle.end(), whole.begin() + 1234));
}

TEST(Corpus, DifferentSeedsDiffer) {
  EXPECT_NE(ReadCorpus(1, 0, 4096), ReadCorpus(2, 0, 4096));
}

TEST(Corpus, DifferentOffsetsDiffer) {
  EXPECT_NE(ReadCorpus(1, 0, 4096), ReadCorpus(1, kCorpusGrain, 4096));
}

TEST(Corpus, CompressibilityInRealisticRange) {
  // The content mix should land near OS-filesystem compressibility
  // (gzip ~1.6-2.6x) and never compress absurdly.
  const Bytes data = ReadCorpus(99, 0, 1 << 20);
  const auto* codec = compress::FindCodec("gzip6");
  const double ratio = static_cast<double>(data.size()) /
                       static_cast<double>(codec->Compress(data).size());
  EXPECT_GT(ratio, 1.3);
  EXPECT_LT(ratio, 3.5);
}

TEST(Corpus, NoAllZeroGrains) {
  // Corpus content is never sparse: zeros come only from unmapped image
  // regions.
  for (std::uint64_t g = 0; g < 64; ++g) {
    const Bytes grain = ReadCorpus(5, g * kCorpusGrain, kCorpusGrain);
    EXPECT_FALSE(util::IsAllZero(grain)) << g;
  }
}

}  // namespace
}  // namespace squirrel::vmi
