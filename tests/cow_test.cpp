#include "cow/chain.h"

#include <gtest/gtest.h>

#include "cow/qcow.h"
#include "util/rng.h"
#include "util/source.h"

namespace squirrel::cow {
namespace {

using util::Bytes;

class BufferSource final : public util::DataSource {
 public:
  explicit BufferSource(Bytes data) : data_(std::move(data)) {}
  std::uint64_t size() const override { return data_.size(); }
  void Read(std::uint64_t offset, util::MutableByteSpan out) const override {
    std::copy_n(data_.begin() + static_cast<std::ptrdiff_t>(offset), out.size(),
                out.begin());
  }

 private:
  Bytes data_;
};

/// Minimal always-present device over a DataSource (no cost model).
class PlainDevice final : public Device {
 public:
  explicit PlainDevice(const util::DataSource* content) : content_(content) {}
  std::uint64_t size() const override { return content_->size(); }
  bool Present(std::uint64_t) const override { return true; }
  void ReadAt(std::uint64_t offset, util::MutableByteSpan out) override {
    content_->Read(offset, out);
  }

 private:
  const util::DataSource* content_;
};

/// In-memory writable cache layer with cluster presence.
class MemCache final : public WritableDevice {
 public:
  MemCache(std::uint64_t size, std::uint32_t cluster)
      : overlay_(size, cluster) {}
  std::uint64_t size() const override { return overlay_.size(); }
  bool Present(std::uint64_t offset) const override {
    return overlay_.Present(offset);
  }
  void ReadAt(std::uint64_t offset, util::MutableByteSpan out) override {
    overlay_.ReadAt(offset, out);
  }
  void WriteAt(std::uint64_t offset, util::ByteSpan data) override {
    overlay_.WriteAt(offset, data);
  }
  QcowOverlay& overlay() { return overlay_; }

 private:
  QcowOverlay overlay_;
};

constexpr std::uint32_t kCluster = 16 * 1024;

Bytes RandomBytes(std::size_t size, std::uint64_t seed) {
  Bytes data(size);
  util::Rng(seed).Fill(data);
  return data;
}

TEST(QcowOverlay, WriteReadRoundTrip) {
  QcowOverlay overlay(1 << 20, kCluster);
  const Bytes data = RandomBytes(40000, 1);
  overlay.WriteAt(10000, data);
  Bytes out(data.size());
  overlay.ReadAt(10000, out);
  EXPECT_EQ(out, data);
  EXPECT_EQ(overlay.allocated_clusters(),
            (10000 + 40000 - 1) / kCluster - 10000 / kCluster + 1);
}

TEST(QcowOverlay, UnwrittenPartsOfClusterReadZero) {
  QcowOverlay overlay(1 << 20, kCluster);
  const Bytes one{0x42};
  overlay.WriteAt(5, one);
  Bytes out(16);
  overlay.ReadAt(0, out);
  EXPECT_EQ(out[5], 0x42);
  EXPECT_EQ(out[0], 0);
  EXPECT_EQ(out[15], 0);
}

TEST(QcowOverlay, ReadingUnallocatedClusterThrows) {
  QcowOverlay overlay(1 << 20, kCluster);
  Bytes out(16);
  EXPECT_THROW(overlay.ReadAt(0, out), std::logic_error);
}

TEST(Chain, ReadThroughEqualsBase) {
  const Bytes base_content = RandomBytes(300000, 2);
  BufferSource source(base_content);
  PlainDevice base(&source);
  QcowOverlay cow(base_content.size(), kCluster);
  Chain chain(&cow, nullptr, &base, false);

  const Bytes out = chain.Read(12345, 100000);
  EXPECT_TRUE(std::equal(out.begin(), out.end(), base_content.begin() + 12345));
  EXPECT_EQ(chain.base_bytes_read(), chain.base_bytes_read());
  EXPECT_GT(chain.base_bytes_read(), 100000u);  // cluster amplification
}

TEST(Chain, WritesIsolatedFromBase) {
  const Bytes base_content = RandomBytes(100000, 3);
  BufferSource source(base_content);
  PlainDevice base(&source);
  QcowOverlay cow(base_content.size(), kCluster);
  Chain chain(&cow, nullptr, &base, false);

  const Bytes patch = RandomBytes(5000, 4);
  chain.Write(20000, patch);
  // Chain sees the write...
  EXPECT_EQ(chain.Read(20000, patch.size()), patch);
  // ...the base does not, and bytes around the write are preserved (CoW
  // filled the cluster from below before overwriting).
  const Bytes around = chain.Read(19000, 1000);
  EXPECT_TRUE(std::equal(around.begin(), around.end(),
                         base_content.begin() + 19000));
}

TEST(Chain, ColdCachePopulatedCopyOnRead) {
  const Bytes base_content = RandomBytes(400000, 5);
  BufferSource source(base_content);
  PlainDevice base(&source);
  MemCache cache(base_content.size(), kCluster);
  QcowOverlay cow(base_content.size(), kCluster);
  Chain chain(&cow, &cache, &base, /*copy_on_read=*/true);

  EXPECT_EQ(cache.overlay().allocated_clusters(), 0u);
  chain.Read(0, 100000);
  const std::uint64_t populated = cache.overlay().allocated_clusters();
  EXPECT_GE(populated, 100000 / kCluster);

  // Second read of the same range: served by the cache, not the base.
  const std::uint64_t base_before = chain.base_bytes_read();
  const Bytes again = chain.Read(0, 100000);
  EXPECT_EQ(chain.base_bytes_read(), base_before);
  EXPECT_TRUE(std::equal(again.begin(), again.end(), base_content.begin()));
  EXPECT_GT(chain.cache_bytes_read(), 0u);
}

TEST(Chain, WarmCacheServesWithoutBaseReads) {
  const Bytes base_content = RandomBytes(200000, 6);
  BufferSource source(base_content);
  PlainDevice base(&source);
  MemCache cache(base_content.size(), kCluster);
  // Pre-warm the full cache.
  for (std::uint64_t off = 0; off < base_content.size(); off += kCluster) {
    const std::uint64_t len =
        std::min<std::uint64_t>(kCluster, base_content.size() - off);
    cache.WriteAt(off, util::ByteSpan(base_content.data() + off, len));
  }
  QcowOverlay cow(base_content.size(), kCluster);
  Chain chain(&cow, &cache, &base, false);

  const Bytes out = chain.Read(1000, 150000);
  EXPECT_TRUE(std::equal(out.begin(), out.end(), base_content.begin() + 1000));
  EXPECT_EQ(chain.base_bytes_read(), 0u);
}

TEST(Chain, ObserverSeesClusterShapedLowerReads) {
  const Bytes base_content = RandomBytes(100000, 7);
  BufferSource source(base_content);
  PlainDevice base(&source);
  QcowOverlay cow(base_content.size(), kCluster);
  Chain chain(&cow, nullptr, &base, false);

  std::vector<ReadEvent> events;
  chain.set_observer([&](const ReadEvent& e) { events.push_back(e); });
  chain.Read(100, 200);  // tiny guest read
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].source, ReadSource::kBase);
  EXPECT_EQ(events[0].offset, 0u);              // cluster aligned
  EXPECT_EQ(events[0].length, kCluster);        // full cluster fetched
}

TEST(Chain, OverlayHitsReportedToObserver) {
  const Bytes base_content = RandomBytes(100000, 8);
  BufferSource source(base_content);
  PlainDevice base(&source);
  QcowOverlay cow(base_content.size(), kCluster);
  Chain chain(&cow, nullptr, &base, false);
  chain.Write(0, RandomBytes(kCluster, 9));

  std::vector<ReadEvent> events;
  chain.set_observer([&](const ReadEvent& e) { events.push_back(e); });
  chain.Read(0, 100);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].source, ReadSource::kCowOverlay);
}

TEST(Chain, TailClusterHandled) {
  // Image size not a multiple of the cluster size.
  const Bytes base_content = RandomBytes(kCluster * 3 + 1000, 10);
  BufferSource source(base_content);
  PlainDevice base(&source);
  QcowOverlay cow(base_content.size(), kCluster);
  Chain chain(&cow, nullptr, &base, false);
  const Bytes out = chain.Read(kCluster * 3, 1000);
  EXPECT_TRUE(std::equal(out.begin(), out.end(),
                         base_content.begin() + kCluster * 3));
  EXPECT_THROW(chain.Read(kCluster * 3, 1001), std::out_of_range);
}

TEST(Chain, RequiresOverlayAndBase) {
  QcowOverlay cow(1000, kCluster);
  BufferSource source(Bytes(1000, 0));
  PlainDevice base(&source);
  EXPECT_THROW(Chain(nullptr, nullptr, &base, false), std::invalid_argument);
  EXPECT_THROW(Chain(&cow, nullptr, nullptr, false), std::invalid_argument);
}

}  // namespace
}  // namespace squirrel::cow
