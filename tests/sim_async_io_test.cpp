// Async disk engine end to end: depth-1 reduction to the synchronous cost
// model (bit-identical boots) and the depth>1 + readahead overlap win.

#include <gtest/gtest.h>

#include <vector>

#include "core/squirrel.h"
#include "sim/devices.h"
#include "sim/io_context.h"
#include "util/rng.h"

namespace squirrel::core {
namespace {

using util::Bytes;

class BufferSource final : public util::DataSource {
 public:
  explicit BufferSource(Bytes data) : data_(std::move(data)) {}
  std::uint64_t size() const override { return data_.size(); }
  void Read(std::uint64_t offset, util::MutableByteSpan out) const override {
    std::copy_n(data_.begin() + static_cast<std::ptrdiff_t>(offset), out.size(),
                out.begin());
  }

 private:
  Bytes data_;
};

SquirrelConfig SmallConfig() {
  SquirrelConfig config;
  config.volume = zvol::VolumeConfig{.block_size = 4096,
                                     .codec = compress::CodecId::kGzip6,
                                     .dedup = true};
  return config;
}

Bytes CacheContent(std::size_t blocks) {
  Bytes content(blocks * 4096);
  util::Rng(99).Fill(content);  // incompressible-ish, all blocks unique
  return content;
}

struct BootRun {
  BootReport report;
  double elapsed_ns = 0.0;
};

/// Registers one image and boots it on node 1 under the given I/O config.
/// The whole cluster is rebuilt per run so store/cache state is identical.
BootRun RunBoot(const sim::IoContextConfig& io_config,
                std::size_t blocks = 96) {
  SquirrelCluster cluster(SmallConfig(), 2);
  const Bytes content = CacheContent(blocks);
  cluster.Register({"img", BufferSource(content), SimClock::FromSeconds(1000)});

  Bytes base = content;
  BufferSource base_image(base);
  std::vector<vmi::BootRead> trace;
  for (std::uint64_t off = 0; off < blocks * 4096; off += 8192) {
    trace.push_back({off, 8192});
  }

  sim::IoContext io(io_config);
  BootRun run;
  run.report = cluster.Boot(1,
      {.image_id = "img", .base_image = base_image, .trace = trace},
      io);
  run.elapsed_ns = io.elapsed_ns();
  return run;
}

TEST(AsyncBoot, DepthOneBitIdenticalToSynchronous) {
  sim::IoContextConfig sync_config;
  const BootRun sync_run = RunBoot(sync_config);

  sim::IoContextConfig async_config;
  async_config.disk_queue_depth = 1;
  async_config.readahead_blocks = 0;
  const BootRun async_run = RunBoot(async_config);

  // The acceptance bar: bit-identical clocks and BootReports, not "close".
  EXPECT_EQ(async_run.elapsed_ns, sync_run.elapsed_ns);
  EXPECT_EQ(async_run.report.result.seconds, sync_run.report.result.seconds);
  EXPECT_EQ(async_run.report.result.io_seconds,
            sync_run.report.result.io_seconds);
  EXPECT_EQ(async_run.report.result.bytes_read,
            sync_run.report.result.bytes_read);
  EXPECT_EQ(async_run.report.result.base_bytes_read,
            sync_run.report.result.base_bytes_read);
  EXPECT_EQ(async_run.report.result.cache_bytes_read,
            sync_run.report.result.cache_bytes_read);
  EXPECT_EQ(async_run.report.result.page_cache_hits,
            sync_run.report.result.page_cache_hits);
  EXPECT_EQ(async_run.report.result.page_cache_misses,
            sync_run.report.result.page_cache_misses);
  EXPECT_EQ(async_run.report.network_bytes, sync_run.report.network_bytes);
}

TEST(AsyncBoot, ReadaheadStrictlyFasterThanSynchronous) {
  sim::IoContextConfig sync_config;
  const BootRun sync_run = RunBoot(sync_config);

  sim::IoContextConfig async_config;
  async_config.disk_queue_depth = 8;
  async_config.readahead_blocks = 16;
  const BootRun async_run = RunBoot(async_config);

  // Same work...
  EXPECT_EQ(async_run.report.result.bytes_read,
            sync_run.report.result.bytes_read);
  EXPECT_EQ(async_run.report.network_bytes, sync_run.report.network_bytes);
  // ...strictly less simulated time: readahead overlaps disk service with
  // guest decompression, and queued neighbours coalesce into fewer seeks.
  EXPECT_LT(async_run.elapsed_ns, sync_run.elapsed_ns);
  EXPECT_LT(async_run.report.result.seconds, sync_run.report.result.seconds);
}

TEST(AsyncBoot, AsyncRunsAreDeterministic) {
  sim::IoContextConfig async_config;
  async_config.disk_queue_depth = 8;
  async_config.readahead_blocks = 16;
  const BootRun a = RunBoot(async_config);
  const BootRun b = RunBoot(async_config);
  EXPECT_EQ(a.elapsed_ns, b.elapsed_ns);
  EXPECT_EQ(a.report.result.seconds, b.report.result.seconds);
  EXPECT_EQ(a.report.result.page_cache_misses,
            b.report.result.page_cache_misses);
}

TEST(AsyncBoot, ScaledIoConfigClampsPageCacheToOnePage) {
  // Regression: deep downscales used to truncate the budget to 0 bytes,
  // silently disabling the page cache.
  const sim::IoContextConfig scaled = sim::ScaledIoConfig(1e-9);
  EXPECT_GE(scaled.page_cache_bytes, 4096u);
  EXPECT_GE(scaled.disk.track_distance, 1u);
  EXPECT_GT(scaled.disk.short_distance, scaled.disk.track_distance);
}

TEST(AsyncLocalFile, ReadaheadClampedAtEof) {
  // Regression: reading the final (partial) block with readahead enabled
  // used to size the charged window from `size - block_start`, which wraps
  // past EOF, and to let the prefetch loop issue zero/garbage-length reads.
  Bytes content(64 * 1024 + 512);  // one full 64K io block + a 512-byte tail
  util::Rng(7).Fill(content);
  BufferSource source(content);

  sim::IoContextConfig config;
  config.disk_queue_depth = 4;
  config.readahead_blocks = 8;
  sim::IoContext io(config);
  sim::LocalFileDevice device(&source, &io, /*device_id=*/7, /*disk_base=*/0);

  Bytes out(512);
  device.ReadAt(64 * 1024, util::MutableByteSpan(out.data(), out.size()));
  EXPECT_TRUE(
      std::equal(out.begin(), out.end(), content.begin() + 64 * 1024));
  EXPECT_GT(io.elapsed_ns(), 0.0);
  // Nothing may be left in flight past EOF.
  for (std::uint64_t b = 2; b < 12; ++b) EXPECT_FALSE(io.InFlight(7, b));
  // Re-reading the tail is a pure page-cache hit: no further charges.
  const double before = io.elapsed_ns();
  const std::uint64_t hits = io.page_cache().hits();
  device.ReadAt(64 * 1024, util::MutableByteSpan(out.data(), out.size()));
  EXPECT_EQ(io.page_cache().hits(), hits + 1);
  EXPECT_EQ(io.elapsed_ns(), before);
}

TEST(AsyncLocalFile, VolumeFileReadaheadClampedAtEof) {
  // Same regression on the volume device: a read grazing the file's final
  // partial block must clamp both the charged window and the readahead.
  zvol::Volume volume(zvol::VolumeConfig{.block_size = 4096,
                                         .codec = compress::CodecId::kGzip6,
                                         .dedup = true});
  Bytes content(10 * 4096 + 100);  // ten full blocks + a 100-byte tail
  util::Rng(3).Fill(content);
  volume.WriteFile("f", BufferSource(content));

  sim::IoContextConfig config;
  config.disk_queue_depth = 4;
  config.readahead_blocks = 8;
  sim::IoContext io(config);
  sim::VolumeFileDevice device(&volume, "f", &io, /*device_id=*/9);

  // A mid-file read whose readahead window crosses EOF...
  Bytes mid(4096);
  device.ReadAt(8 * 4096, util::MutableByteSpan(mid.data(), mid.size()));
  // ...prefetches at most up to the last real block, never past it.
  for (std::uint64_t b = 11; b < 20; ++b) EXPECT_FALSE(io.InFlight(9, b));

  // And the tail block itself reads back exactly.
  Bytes tail(100);
  device.ReadAt(10 * 4096, util::MutableByteSpan(tail.data(), tail.size()));
  EXPECT_TRUE(
      std::equal(tail.begin(), tail.end(), content.begin() + 10 * 4096));
}

TEST(AsyncBoot, ArcResizeBetweenPrefetchAndJoinStaysConsistent) {
  // ArcCache::Resize racing in-flight readahead: shrink the store's ARC
  // after prefetches are issued but before the guest joins them. The joins
  // must complete, the payloads must be correct, and no stale residency may
  // linger — not in the ARC and not in PageCache::Resident.
  zvol::VolumeConfig volume_config{.block_size = 4096,
                                   .codec = compress::CodecId::kGzip6,
                                   .dedup = true};
  volume_config.read.cache_bytes = 1ull << 20;
  zvol::Volume volume(volume_config);
  // Compressible but unique blocks: only compressed payloads are ARC
  // candidates (raw blocks bypass the cache), and dedup must not collapse
  // the file to one block.
  Bytes content(32 * 4096, util::Byte{0});
  util::Rng rng(99);
  for (std::size_t b = 0; b < 32; ++b) {
    rng.Fill(util::MutableByteSpan(content.data() + b * 4096, 512));
  }
  volume.WriteFile("f", BufferSource(content));

  sim::IoContextConfig config;
  config.disk_queue_depth = 8;
  sim::IoContext io(config);
  sim::VolumeFileDevice device(&volume, "f", &io, /*device_id=*/11);

  // Warm the ARC, then put the first eight blocks on the wire.
  std::vector<std::uint64_t> all(32);
  for (std::uint64_t b = 0; b < 32; ++b) all[b] = b;
  EXPECT_EQ(device.WarmCacheFromBlocks(all), 32u);
  EXPECT_GT(volume.block_store().read_stats().cached_bytes, 0u);
  for (std::uint64_t b = 0; b < 8; ++b) {
    EXPECT_EQ(device.PrefetchBlock(b), sim::PrefetchOutcome::kIssued);
    EXPECT_TRUE(io.InFlight(11, b));
    // In flight is not resident: the page cache only fills at the join.
    EXPECT_FALSE(io.page_cache().Resident(11, b));
  }

  // Shrink-to-zero evicts every ARC payload while the reads are in flight;
  // growing back must not resurrect anything.
  volume.ResizeReadCache(0);
  volume.ResizeReadCache(1ull << 20);
  EXPECT_EQ(volume.block_store().read_stats().cached_bytes, 0u);

  Bytes out(4096);
  for (std::uint64_t b = 0; b < 8; ++b) {
    device.ReadAt(b * 4096, util::MutableByteSpan(out.data(), out.size()));
    EXPECT_TRUE(std::equal(out.begin(), out.end(),
                           content.begin() + static_cast<std::ptrdiff_t>(
                                                 b * 4096)))
        << "block " << b;
    EXPECT_FALSE(io.InFlight(11, b));
    EXPECT_TRUE(io.page_cache().Resident(11, b));
  }
}

TEST(AsyncLocalFile, DepthOneBitIdenticalToSynchronous) {
  const Bytes content = CacheContent(64);
  BufferSource source(content);
  Bytes out(content.size());

  sim::IoContext sync_io;
  {
    sim::LocalFileDevice device(&source, &sync_io, /*device_id=*/7,
                                /*disk_base=*/0);
    device.ReadAt(0, util::MutableByteSpan(out.data(), 32 * 1024));
    device.ReadAt(32 * 1024,
                  util::MutableByteSpan(out.data(), 64 * 1024));
    device.ReadAt(0, util::MutableByteSpan(out.data(), 16 * 1024));  // cached
  }

  sim::IoContextConfig async_config;
  async_config.disk_queue_depth = 1;
  sim::IoContext async_io(async_config);
  {
    sim::LocalFileDevice device(&source, &async_io, /*device_id=*/7,
                                /*disk_base=*/0);
    device.ReadAt(0, util::MutableByteSpan(out.data(), 32 * 1024));
    device.ReadAt(32 * 1024,
                  util::MutableByteSpan(out.data(), 64 * 1024));
    device.ReadAt(0, util::MutableByteSpan(out.data(), 16 * 1024));
  }

  EXPECT_EQ(async_io.elapsed_ns(), sync_io.elapsed_ns());
  EXPECT_EQ(async_io.page_cache().hits(), sync_io.page_cache().hits());
  EXPECT_EQ(async_io.page_cache().misses(), sync_io.page_cache().misses());
}

}  // namespace
}  // namespace squirrel::core
