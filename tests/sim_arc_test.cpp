#include "sim/arc_cache.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace squirrel::sim {
namespace {

TEST(ArcCache, BasicHitAfterInsert) {
  ArcCache cache(8);
  EXPECT_FALSE(cache.Lookup(1, 0));
  cache.Insert(1, 0);
  EXPECT_TRUE(cache.Lookup(1, 0));
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 1u);
}

TEST(ArcCache, CapacityBound) {
  ArcCache cache(4);
  for (std::uint64_t b = 0; b < 100; ++b) cache.Insert(1, b);
  EXPECT_LE(cache.resident_entries(), 4u);
}

TEST(ArcCache, ZeroCapacityNeverHits) {
  ArcCache cache(0);
  cache.Insert(1, 0);
  EXPECT_FALSE(cache.Lookup(1, 0));
}

TEST(ArcCache, DeviceScopedKeys) {
  ArcCache cache(8);
  cache.Insert(1, 7);
  EXPECT_FALSE(cache.Lookup(2, 7));
  EXPECT_TRUE(cache.Lookup(1, 7));
}

TEST(ArcCache, LruEvictionWithinRecencyList) {
  ArcCache cache(3);
  cache.Insert(1, 0);
  cache.Insert(1, 1);
  cache.Insert(1, 2);
  cache.Insert(1, 3);  // evicts block 0 (LRU of T1)
  EXPECT_FALSE(cache.Lookup(1, 0));
  EXPECT_TRUE(cache.Lookup(1, 3));
}

TEST(ArcCache, FrequentBlocksSurviveScan) {
  // The defining ARC property: blocks with reuse (in T2) survive a long
  // one-pass scan that would flush a plain LRU.
  ArcCache cache(16);
  // Establish 4 hot blocks with reuse.
  for (int round = 0; round < 3; ++round) {
    for (std::uint64_t b = 0; b < 4; ++b) {
      if (!cache.Lookup(1, b)) cache.Insert(1, b);
    }
  }
  // One-pass scan of 200 cold blocks (device 2).
  for (std::uint64_t b = 0; b < 200; ++b) {
    if (!cache.Lookup(2, b)) cache.Insert(2, b);
  }
  int hot_survivors = 0;
  for (std::uint64_t b = 0; b < 4; ++b) hot_survivors += cache.Lookup(1, b);
  EXPECT_GE(hot_survivors, 3) << "scan must not flush the frequency list";
}

TEST(ArcCache, LruWouldFailTheSameScan) {
  // Contrast baseline documenting why ARC matters: a plain-LRU-sized
  // comparison loses all hot blocks after the scan. (Uses ARC in pure
  // recency mode by never re-touching entries.)
  ArcCache cache(16);
  for (std::uint64_t b = 0; b < 4; ++b) cache.Insert(1, b);
  for (std::uint64_t b = 0; b < 200; ++b) cache.Insert(2, b);
  int survivors = 0;
  for (std::uint64_t b = 0; b < 4; ++b) survivors += cache.Lookup(1, b);
  EXPECT_EQ(survivors, 0) << "untouched entries are recency-only and get flushed";
}

TEST(ArcCache, GhostHitAdaptsTarget) {
  ArcCache cache(4);
  // Fill T1, evicting into B1.
  for (std::uint64_t b = 0; b < 8; ++b) cache.Insert(1, b);
  const std::size_t p_before = cache.target_t1();
  // Re-insert an evicted (ghost) block: B1 hit should raise p.
  EXPECT_FALSE(cache.Lookup(1, 0));
  cache.Insert(1, 0);
  EXPECT_GE(cache.target_t1(), p_before);
  EXPECT_TRUE(cache.Lookup(1, 0));
}

TEST(ArcCache, StressRandomWorkloadInvariant) {
  ArcCache cache(32);
  util::Rng rng(99);
  for (int op = 0; op < 20000; ++op) {
    const std::uint64_t block = rng.Below(200);
    if (!cache.Lookup(1, block)) cache.Insert(1, block);
    ASSERT_LE(cache.resident_entries(), 32u);
    ASSERT_LE(cache.target_t1(), 32u);
  }
  EXPECT_GT(cache.hits(), 0u);
}

TEST(ArcCache, ZipfWorkloadBeatsPureRecency) {
  // Skewed reuse (boot blocks of popular images) should produce a solid hit
  // rate with a cache much smaller than the working set.
  ArcCache cache(64);
  util::Rng rng(7);
  util::ZipfSampler zipf(1000, 1.1);
  std::uint64_t hits = 0, total = 0;
  for (int op = 0; op < 30000; ++op) {
    const std::uint64_t block = zipf.Sample(rng);
    ++total;
    if (cache.Lookup(1, block)) {
      ++hits;
    } else {
      cache.Insert(1, block);
    }
  }
  EXPECT_GT(static_cast<double>(hits) / static_cast<double>(total), 0.4);
}

}  // namespace
}  // namespace squirrel::sim
