#include "sim/arc_cache.h"

#include <gtest/gtest.h>

#include "store/block_cache.h"
#include "util/hash.h"
#include "util/rng.h"

namespace squirrel::sim {
namespace {

TEST(ArcCache, BasicHitAfterInsert) {
  ArcCache cache(8);
  EXPECT_FALSE(cache.Lookup(1, 0));
  cache.Insert(1, 0);
  EXPECT_TRUE(cache.Lookup(1, 0));
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 1u);
}

TEST(ArcCache, CapacityBound) {
  ArcCache cache(4);
  for (std::uint64_t b = 0; b < 100; ++b) cache.Insert(1, b);
  EXPECT_LE(cache.resident_entries(), 4u);
}

TEST(ArcCache, ZeroCapacityNeverHits) {
  ArcCache cache(0);
  cache.Insert(1, 0);
  EXPECT_FALSE(cache.Lookup(1, 0));
}

TEST(ArcCache, DeviceScopedKeys) {
  ArcCache cache(8);
  cache.Insert(1, 7);
  EXPECT_FALSE(cache.Lookup(2, 7));
  EXPECT_TRUE(cache.Lookup(1, 7));
}

TEST(ArcCache, LruEvictionWithinRecencyList) {
  ArcCache cache(3);
  cache.Insert(1, 0);
  cache.Insert(1, 1);
  cache.Insert(1, 2);
  cache.Insert(1, 3);  // evicts block 0 (LRU of T1)
  EXPECT_FALSE(cache.Lookup(1, 0));
  EXPECT_TRUE(cache.Lookup(1, 3));
}

TEST(ArcCache, FrequentBlocksSurviveScan) {
  // The defining ARC property: blocks with reuse (in T2) survive a long
  // one-pass scan that would flush a plain LRU.
  ArcCache cache(16);
  // Establish 4 hot blocks with reuse.
  for (int round = 0; round < 3; ++round) {
    for (std::uint64_t b = 0; b < 4; ++b) {
      if (!cache.Lookup(1, b)) cache.Insert(1, b);
    }
  }
  // One-pass scan of 200 cold blocks (device 2).
  for (std::uint64_t b = 0; b < 200; ++b) {
    if (!cache.Lookup(2, b)) cache.Insert(2, b);
  }
  int hot_survivors = 0;
  for (std::uint64_t b = 0; b < 4; ++b) hot_survivors += cache.Lookup(1, b);
  EXPECT_GE(hot_survivors, 3) << "scan must not flush the frequency list";
}

TEST(ArcCache, LruWouldFailTheSameScan) {
  // Contrast baseline documenting why ARC matters: a plain-LRU-sized
  // comparison loses all hot blocks after the scan. (Uses ARC in pure
  // recency mode by never re-touching entries.)
  ArcCache cache(16);
  for (std::uint64_t b = 0; b < 4; ++b) cache.Insert(1, b);
  for (std::uint64_t b = 0; b < 200; ++b) cache.Insert(2, b);
  int survivors = 0;
  for (std::uint64_t b = 0; b < 4; ++b) survivors += cache.Lookup(1, b);
  EXPECT_EQ(survivors, 0) << "untouched entries are recency-only and get flushed";
}

TEST(ArcCache, GhostHitAdaptsTarget) {
  ArcCache cache(4);
  // Fill T1, evicting into B1.
  for (std::uint64_t b = 0; b < 8; ++b) cache.Insert(1, b);
  const std::size_t p_before = cache.target_t1();
  // Re-insert an evicted (ghost) block: B1 hit should raise p.
  EXPECT_FALSE(cache.Lookup(1, 0));
  cache.Insert(1, 0);
  EXPECT_GE(cache.target_t1(), p_before);
  EXPECT_TRUE(cache.Lookup(1, 0));
}

TEST(ArcCache, StressRandomWorkloadInvariant) {
  ArcCache cache(32);
  util::Rng rng(99);
  for (int op = 0; op < 20000; ++op) {
    const std::uint64_t block = rng.Below(200);
    if (!cache.Lookup(1, block)) cache.Insert(1, block);
    ASSERT_LE(cache.resident_entries(), 32u);
    ASSERT_LE(cache.target_t1(), 32u);
  }
  EXPECT_GT(cache.hits(), 0u);
}

TEST(ArcCache, ZipfWorkloadBeatsPureRecency) {
  // Skewed reuse (boot blocks of popular images) should produce a solid hit
  // rate with a cache much smaller than the working set.
  ArcCache cache(64);
  util::Rng rng(7);
  util::ZipfSampler zipf(1000, 1.1);
  std::uint64_t hits = 0, total = 0;
  for (int op = 0; op < 30000; ++op) {
    const std::uint64_t block = zipf.Sample(rng);
    ++total;
    if (cache.Lookup(1, block)) {
      ++hits;
    } else {
      cache.Insert(1, block);
    }
  }
  EXPECT_GT(static_cast<double>(hits) / static_cast<double>(total), 0.4);
}

TEST(ArcCache, ShrinkEvictsDownToBudgetInReplacementOrder) {
  ArcCache cache(8);
  for (std::uint64_t b = 0; b < 8; ++b) cache.Insert(1, b);
  // Re-touch the last four so they live in T2 (frequency side).
  for (std::uint64_t b = 4; b < 8; ++b) EXPECT_TRUE(cache.Lookup(1, b));

  cache.Resize(4);
  EXPECT_EQ(cache.capacity(), 4u);
  EXPECT_LE(cache.resident_entries(), 4u);
  // Shrinking runs the normal REPLACE routine, which victimizes the recency
  // side first: the untouched T1 blocks go, the re-referenced T2 ones stay.
  int t2_survivors = 0;
  for (std::uint64_t b = 4; b < 8; ++b) t2_survivors += cache.Lookup(1, b);
  EXPECT_EQ(t2_survivors, 4);
}

TEST(ArcCache, ShrinkEvictsLruFirstWithinRecencyList) {
  ArcCache cache(6);
  for (std::uint64_t b = 0; b < 6; ++b) cache.Insert(1, b);
  cache.Resize(2);
  // Pure recency contents: the two most recent inserts survive.
  EXPECT_TRUE(cache.Lookup(1, 5));
  EXPECT_TRUE(cache.Lookup(1, 4));
  EXPECT_FALSE(cache.Lookup(1, 0));
  EXPECT_FALSE(cache.Lookup(1, 3));
}

TEST(ArcCache, GrowKeepsContentsAndRaisesCeiling) {
  ArcCache cache(3);
  for (std::uint64_t b = 0; b < 3; ++b) cache.Insert(1, b);
  cache.Resize(16);
  EXPECT_EQ(cache.capacity(), 16u);
  for (std::uint64_t b = 0; b < 3; ++b) EXPECT_TRUE(cache.Lookup(1, b));
  // The raised budget actually admits more without evicting the old set.
  for (std::uint64_t b = 3; b < 16; ++b) cache.Insert(1, b);
  EXPECT_EQ(cache.resident_entries(), 16u);
  EXPECT_TRUE(cache.Lookup(1, 0));
}

TEST(ArcCache, ResizeToZeroDropsEverything) {
  ArcCache cache(8);
  for (std::uint64_t b = 0; b < 8; ++b) cache.Insert(1, b);
  cache.Resize(0);
  EXPECT_EQ(cache.resident_entries(), 0u);
  for (std::uint64_t b = 0; b < 8; ++b) EXPECT_FALSE(cache.Lookup(1, b));
  // And stays disabled, like a zero-capacity construction.
  cache.Insert(1, 0);
  EXPECT_FALSE(cache.Lookup(1, 0));
}

TEST(ArcCache, ResizeKeepsInvariantsUnderRandomWorkload) {
  ArcCache cache(32);
  util::Rng rng(1234);
  for (int op = 0; op < 20000; ++op) {
    const std::uint64_t block = rng.Below(200);
    if (!cache.Lookup(1, block)) cache.Insert(1, block);
    if (op % 1000 == 999) {
      // Oscillate the budget mid-workload.
      cache.Resize(op % 2000 == 999 ? 8 : 48);
    }
    ASSERT_LE(cache.resident_entries(), cache.capacity());
    ASSERT_LE(cache.target_t1(), cache.capacity());
  }
}

TEST(ArcCache, BlockCacheResizeDropsPayloadsWithEntries) {
  // The byte-weighted instantiation: shrinking the BlockCache must release
  // the evicted payload bytes, and survivors must still serve hits.
  store::BlockCache cache(4 * 4096);
  util::Bytes payload(4096);
  std::vector<util::Digest> digests;
  for (std::uint64_t i = 0; i < 4; ++i) {
    payload[0] = static_cast<util::Byte>(i);
    const util::Digest digest = util::HashBlock(payload);
    cache.Admit(digest, payload.size());
    cache.Fill(digest, payload);
    digests.push_back(digest);
  }
  EXPECT_EQ(cache.resident_bytes(), 4u * 4096u);

  cache.Resize(4096);
  EXPECT_EQ(cache.capacity_bytes(), 4096u);
  EXPECT_LE(cache.resident_bytes(), 4096u);
  util::Bytes out;
  int hits = 0;
  for (const util::Digest& digest : digests) {
    if (cache.Lookup(digest, &out) == store::BlockCache::Outcome::kHit) {
      ++hits;
      EXPECT_EQ(out.size(), 4096u);  // payload still intact for survivors
    }
  }
  EXPECT_LE(hits, 1);

  cache.Resize(0);
  EXPECT_FALSE(cache.enabled());
  EXPECT_EQ(cache.resident_bytes(), 0u);
}

}  // namespace
}  // namespace squirrel::sim
