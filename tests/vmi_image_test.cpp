#include "vmi/image.h"

#include <gtest/gtest.h>

#include "util/rng.h"
#include "vmi/corpus.h"

namespace squirrel::vmi {
namespace {

using util::Bytes;

CatalogConfig TestConfig(std::uint32_t images = 16) {
  CatalogConfig config;
  config.image_count = images;
  config.size_scale = 1.0 / 1024.0;
  return config;
}

Bytes ReadAll(const util::DataSource& source, std::uint64_t offset,
              std::size_t size) {
  Bytes out(size);
  source.Read(offset, out);
  return out;
}

TEST(VmImage, ReadIsBoundaryIndependent) {
  const Catalog catalog = Catalog::AzureCommunity(TestConfig());
  const VmImage image(catalog, catalog.images()[0]);
  const std::size_t probe = 256 * 1024;
  const Bytes whole = ReadAll(image, 0, probe);
  Bytes stitched(probe);
  util::Rng rng(1);
  std::size_t pos = 0;
  while (pos < probe) {
    const std::size_t take =
        std::min<std::size_t>(probe - pos, rng.Between(1, 9000));
    image.Read(pos, util::MutableByteSpan(stitched.data() + pos, take));
    pos += take;
  }
  EXPECT_EQ(stitched, whole);
}

TEST(VmImage, ExtentsSortedAndDisjoint) {
  const Catalog catalog = Catalog::AzureCommunity(TestConfig());
  for (int i = 0; i < 4; ++i) {
    const VmImage image(catalog, catalog.images()[i]);
    const auto& extents = image.extents();
    for (std::size_t e = 1; e < extents.size(); ++e) {
      EXPECT_GE(extents[e].logical_offset,
                extents[e - 1].logical_offset + extents[e - 1].length)
          << "image " << i << " extent " << e;
    }
  }
}

TEST(VmImage, NonzeroBytesMatchesExtents) {
  const Catalog catalog = Catalog::AzureCommunity(TestConfig());
  const VmImage image(catalog, catalog.images()[0]);
  std::uint64_t total = 0;
  for (const Extent& e : image.extents()) total += e.length;
  EXPECT_EQ(image.nonzero_bytes(), total);
  EXPECT_LT(image.nonzero_bytes(), image.size());
}

TEST(VmImage, UnmappedRegionsReadZero) {
  const Catalog catalog = Catalog::AzureCommunity(TestConfig());
  const VmImage image(catalog, catalog.images()[0]);
  // The very end of the logical space is past all extents.
  const Bytes tail = ReadAll(image, image.size() - 65536, 65536);
  EXPECT_TRUE(util::IsAllZero(tail));
}

TEST(VmImage, SameReleaseSharesKernelPrefix) {
  const Catalog catalog = Catalog::AzureCommunity(TestConfig(64));
  // Find two images of the same release.
  const auto& images = catalog.images();
  const ImageSpec* a = nullptr;
  const ImageSpec* b = nullptr;
  for (std::size_t i = 0; i < images.size() && b == nullptr; ++i) {
    for (std::size_t j = i + 1; j < images.size(); ++j) {
      if (images[i].release_index == images[j].release_index) {
        a = &images[i];
        b = &images[j];
        break;
      }
    }
  }
  ASSERT_NE(a, nullptr) << "no two images share a release";
  const VmImage ia(catalog, *a), ib(catalog, *b);
  // The kernel reserve (patch-free base prefix) must be byte-identical.
  const std::uint64_t reserve = ia.kernel_reserve_bytes();
  ASSERT_EQ(reserve, ib.kernel_reserve_bytes());
  EXPECT_EQ(ReadAll(ia, 0, reserve), ReadAll(ib, 0, reserve));
}

TEST(VmImage, DifferentImagesOfSameReleaseDifferSomewhere) {
  const Catalog catalog = Catalog::AzureCommunity(TestConfig(64));
  const auto& images = catalog.images();
  for (std::size_t i = 0; i < images.size(); ++i) {
    for (std::size_t j = i + 1; j < images.size(); ++j) {
      if (images[i].release_index != images[j].release_index) continue;
      const VmImage ia(catalog, images[i]), ib(catalog, images[j]);
      // At image a's first patch location, image b still shows base content;
      // the two images must differ there.
      ASSERT_FALSE(ia.patches().empty());
      const Patch& patch = ia.patches().front();
      EXPECT_NE(ReadAll(ia, patch.logical_offset, patch.length),
                ReadAll(ib, patch.logical_offset, patch.length));
      return;
    }
  }
  FAIL() << "no release pair found";
}

TEST(VmImage, DifferentReleasesShareShiftedBaseContent) {
  const Catalog catalog = Catalog::AzureCommunity(TestConfig(64));
  const auto& releases = catalog.releases();
  // Adjacent Ubuntu releases overlap: release r+1's base at offset 0 equals
  // release r's base at offset `shift`. Verify through the corpus directly.
  const Release* r0 = nullptr;
  const Release* r1 = nullptr;
  for (std::size_t i = 0; i + 1 < releases.size(); ++i) {
    if (releases[i].family == OsFamily::kUbuntu &&
        releases[i + 1].family == OsFamily::kUbuntu &&
        releases[i + 1].family_index == releases[i].family_index + 1) {
      r0 = &releases[i];
      r1 = &releases[i + 1];
      break;
    }
  }
  ASSERT_NE(r0, nullptr);
  const std::uint64_t shift = r1->base_corpus_offset - r0->base_corpus_offset;
  Bytes a(4096), b(4096);
  GenerateCorpus(r0->base_corpus_seed, r0->base_corpus_offset + shift, a);
  GenerateCorpus(r1->base_corpus_seed, r1->base_corpus_offset, b);
  EXPECT_EQ(a, b);
}

TEST(VmImage, PatchesStayOutOfKernelReserveAndInsideBaseFragments) {
  const Catalog catalog = Catalog::AzureCommunity(TestConfig());
  const VmImage image(catalog, catalog.images()[0]);
  EXPECT_FALSE(image.patches().empty());
  for (const Patch& patch : image.patches()) {
    EXPECT_GE(patch.logical_offset, image.kernel_reserve_bytes());
    EXPECT_GE(patch.length, 256u);
    EXPECT_LE(patch.length, 4096u);
    // Every patch must sit inside one base extent (it modifies base files).
    bool inside = false;
    for (const Extent& e : image.extents()) {
      if (e.corpus_seed == image.release().base_corpus_seed &&
          patch.logical_offset >= e.logical_offset &&
          patch.logical_offset + patch.length <= e.logical_offset + e.length) {
        inside = true;
        break;
      }
    }
    EXPECT_TRUE(inside) << "patch at " << patch.logical_offset;
  }
}

TEST(VmImage, BaseContentTranslationRoundTrips) {
  const Catalog catalog = Catalog::AzureCommunity(TestConfig());
  const VmImage image(catalog, catalog.images()[0]);
  // Identity inside the kernel reserve.
  EXPECT_EQ(image.BaseContentToLogical(0), 0u);
  EXPECT_EQ(image.BaseContentToLogical(image.kernel_reserve_bytes() - 1),
            image.kernel_reserve_bytes() - 1);
  // Translated base content reads the same bytes as the corpus says.
  const std::uint64_t content = image.kernel_reserve_bytes() + 12345;
  const std::uint64_t logical = image.BaseContentToLogical(content);
  EXPECT_GT(logical, image.kernel_reserve_bytes());
  Bytes via_image(512), via_corpus(512);
  image.Read(logical, via_image);
  GenerateCorpus(image.release().base_corpus_seed,
                 image.release().base_corpus_offset + content, via_corpus);
  // Patches may perturb a few bytes; require mostly-equal content.
  std::size_t equal = 0;
  for (std::size_t i = 0; i < via_image.size(); ++i) {
    equal += via_image[i] == via_corpus[i];
  }
  EXPECT_GT(equal, via_image.size() * 9 / 10);
}

TEST(VmImage, SharedPackagesAtDifferentOffsetsButSameContent) {
  // User-installed packages land at per-image offsets: two images with the
  // same package read identical bytes at (generally) different positions —
  // the alignment effect that only small dedup blocks overcome.
  const Catalog catalog = Catalog::AzureCommunity(TestConfig(64));
  const auto& images = catalog.images();
  for (std::size_t i = 0; i < images.size(); ++i) {
    for (std::size_t j = i + 1; j < images.size(); ++j) {
      for (std::size_t pa = 0; pa < images[i].packages.size(); ++pa) {
        for (std::size_t pb = 0; pb < images[j].packages.size(); ++pb) {
          if (images[i].packages[pa] != images[j].packages[pb]) continue;
          const VmImage ia(catalog, images[i]), ib(catalog, images[j]);
          const auto& pool = catalog.family_packages(ia.release().family);
          if (ia.release().family != ib.release().family) continue;
          const std::uint32_t size = pool[images[i].packages[pa]].size;
          Bytes a(size), b(size);
          ia.Read(ia.package_offsets()[pa], a);
          ib.Read(ib.package_offsets()[pb], b);
          EXPECT_EQ(a, b) << "same package, identical content";
          return;
        }
      }
    }
  }
  GTEST_SKIP() << "no shared package found in this catalog";
}

TEST(VmImage, ScatteredLayoutSpreadsBaseAcrossDisk) {
  CatalogConfig config = TestConfig(8);
  config.dense_layout = false;
  const Catalog catalog = Catalog::AzureCommunity(config);
  const VmImage image(catalog, catalog.images()[0]);
  // Base extents past the kernel reserve must sit far out in the wide zone.
  std::uint64_t max_offset = 0;
  for (const Extent& e : image.extents()) max_offset = std::max(max_offset, e.logical_offset);
  EXPECT_GT(max_offset, image.size() / 2);
  // Content is identical to the dense layout, only repositioned.
  CatalogConfig dense = TestConfig(8);
  const Catalog dense_catalog = Catalog::AzureCommunity(dense);
  const VmImage dense_image(dense_catalog, dense_catalog.images()[0]);
  const std::uint64_t content = image.kernel_reserve_bytes() + 5000;
  Bytes a(1024), b(1024);
  image.Read(image.BaseContentToLogical(content), a);
  dense_image.Read(dense_image.BaseContentToLogical(content), b);
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace squirrel::vmi
