#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>

#include "util/table.h"
#include "util/thread_pool.h"

namespace squirrel::util {
namespace {

TEST(Table, RendersAlignedColumns) {
  Table table({"name", "value"});
  table.AddRow({"alpha", "1"});
  table.AddRow({"b", "22222"});
  const std::string out = table.Render();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("22222"), std::string::npos);
  // All lines equally indented columns: "b" row padded to width of "alpha".
  EXPECT_NE(out.find("b    "), std::string::npos);
}

TEST(Table, ShortRowsArePadded) {
  Table table({"a", "b", "c"});
  table.AddRow({"only"});
  EXPECT_NO_THROW(table.Render());
}

TEST(Table, NumFormatsPrecision) {
  EXPECT_EQ(Table::Num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::Num(2.0, 0), "2");
  EXPECT_EQ(Table::Num(1.005e3, 1), "1005.0");
}

TEST(ThreadPool, RunsAllIterations) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.ParallelFor(1000, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), 1) << i;
  }
}

TEST(ThreadPool, ZeroCount) {
  ThreadPool pool(2);
  pool.ParallelFor(0, [](std::size_t) { FAIL() << "must not run"; });
}

TEST(ThreadPool, CountSmallerThanThreads) {
  ThreadPool pool(8);
  std::atomic<int> total{0};
  pool.ParallelFor(3, [&](std::size_t) { total.fetch_add(1); });
  EXPECT_EQ(total.load(), 3);
}

TEST(ThreadPool, PropagatesException) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.ParallelFor(100,
                       [&](std::size_t i) {
                         if (i == 37) throw std::runtime_error("boom");
                       }),
      std::runtime_error);
}

TEST(ThreadPool, ReusableAfterException) {
  ThreadPool pool(2);
  try {
    pool.ParallelFor(10, [](std::size_t) { throw std::runtime_error("x"); });
  } catch (const std::runtime_error&) {
  }
  std::atomic<int> total{0};
  pool.ParallelFor(10, [&](std::size_t) { total.fetch_add(1); });
  EXPECT_EQ(total.load(), 10);
}

TEST(ThreadPool, SingleThreadWorks) {
  ThreadPool pool(1);
  std::atomic<int> total{0};
  pool.ParallelFor(50, [&](std::size_t) { total.fetch_add(1); });
  EXPECT_EQ(total.load(), 50);
}

}  // namespace
}  // namespace squirrel::util
