// End-to-end scenarios over the full stack: synthetic Azure catalog ->
// Squirrel registration -> replicated ccVolumes -> chained warm boots, plus
// failure injection on the propagation path.
#include <gtest/gtest.h>

#include "core/squirrel.h"
#include "vmi/bootset.h"
#include "vmi/image.h"

namespace squirrel {
namespace {

vmi::CatalogConfig TinyCatalog(std::uint32_t images) {
  vmi::CatalogConfig config;
  config.image_count = images;
  config.size_scale = 1.0 / 2048.0;
  config.cache_bytes *= 4;  // keep a few dozen blocks per cache at this scale
  return config;
}

core::SquirrelConfig ClusterConfig() {
  core::SquirrelConfig config;
  config.volume = zvol::VolumeConfig{
      .block_size = 16384, .codec = compress::CodecId::kGzip6, .dedup = true, .fast_hash = true};
  return config;
}

TEST(Integration, RegisterBootVerifyAcrossCatalog) {
  const vmi::Catalog catalog = vmi::Catalog::AzureCommunity(TinyCatalog(8));
  core::SquirrelCluster cluster(ClusterConfig(), 3);

  std::vector<std::unique_ptr<vmi::VmImage>> images;
  std::vector<std::unique_ptr<vmi::BootWorkingSet>> boots;
  std::uint64_t now = 0;
  for (const vmi::ImageSpec& spec : catalog.images()) {
    images.push_back(std::make_unique<vmi::VmImage>(catalog, spec));
    boots.push_back(
        std::make_unique<vmi::BootWorkingSet>(catalog, *images.back()));
    const vmi::CacheImage cache(*images.back(), *boots.back());
    const auto report = cluster.Register({spec.name, cache, core::SimClock::FromSeconds(now += 60)});
    EXPECT_GT(report.cache_logical_bytes, 0u) << spec.name;
  }

  // Boot every image on a round-robin compute node; every boot must be
  // network-free and byte-correct against the image.
  for (std::size_t i = 0; i < images.size(); ++i) {
    const auto trace = boots[i]->Trace(/*trace_seed=*/i);
    sim::IoContext io;
    const core::BootReport report =
        cluster.Boot(static_cast<std::uint32_t>(i % 3),
      {.image_id = catalog.images()[i].name, .base_image = *images[i], .trace = trace},
      io);
    EXPECT_EQ(report.network_bytes, 0u) << i;
    EXPECT_EQ(report.result.base_bytes_read, 0u) << i;
  }
}

TEST(Integration, BootReadsMatchImageContentThroughChain) {
  const vmi::Catalog catalog = vmi::Catalog::AzureCommunity(TinyCatalog(2));
  core::SquirrelCluster cluster(ClusterConfig(), 1);

  const vmi::ImageSpec& spec = catalog.images()[0];
  const vmi::VmImage image(catalog, spec);
  const vmi::BootWorkingSet boot(catalog, image);
  cluster.Register({spec.name, vmi::CacheImage(image, boot), core::SimClock::FromSeconds(60)});

  // Build the chain by hand to inspect the data a guest would see.
  zvol::Volume& cc = cluster.compute_node(0).volume();
  cow::QcowOverlay overlay(image.size(), cow::kDefaultClusterSize);
  sim::VolumeFileDevice cache(&cc, core::SquirrelCluster::CacheFileName(spec.name),
                              nullptr, 1);
  sim::RemoteImageDevice base(&image, nullptr, nullptr, 0);
  cow::Chain chain(&overlay, &cache, &base, false);

  for (const vmi::Range& range : boot.ranges()) {
    const util::Bytes got = chain.Read(range.offset, range.length);
    util::Bytes expected(range.length);
    image.Read(range.offset, expected);
    ASSERT_EQ(got, expected) << "range at " << range.offset;
  }
  EXPECT_EQ(base.bytes_fetched(), 0u);  // fully served by the warm replica
}

TEST(Integration, ColdBootFallsThroughToBaseOutsideWorkingSet) {
  const vmi::Catalog catalog = vmi::Catalog::AzureCommunity(TinyCatalog(2));
  core::SquirrelCluster cluster(ClusterConfig(), 1);
  const vmi::ImageSpec& spec = catalog.images()[0];
  const vmi::VmImage image(catalog, spec);
  const vmi::BootWorkingSet boot(catalog, image);
  cluster.Register({spec.name, vmi::CacheImage(image, boot), core::SimClock::FromSeconds(60)});

  // Read something definitely outside the boot working set: the user-data
  // extent (the last extent of the image).
  const vmi::Extent& user = image.extents().back();
  ASSERT_FALSE(boot.Contains(user.logical_offset + user.length - 1));

  std::vector<vmi::BootRead> trace = {
      {user.logical_offset, static_cast<std::uint32_t>(
                                std::min<std::uint64_t>(user.length, 65536))}};
  sim::IoContext io;
  const core::BootReport report =
      cluster.Boot(0,
      {.image_id = spec.name, .base_image = image, .trace = trace},
      io);
  EXPECT_GT(report.network_bytes, 0u);  // the miss went to the base VMI
}

TEST(Integration, CorruptedPropagationStreamIsRejectedAndRetried) {
  core::SquirrelCluster cluster(ClusterConfig(), 1);
  const vmi::Catalog catalog = vmi::Catalog::AzureCommunity(TinyCatalog(2));
  const vmi::ImageSpec& spec = catalog.images()[0];
  const vmi::VmImage image(catalog, spec);
  const vmi::BootWorkingSet boot(catalog, image);
  cluster.Register({spec.name, vmi::CacheImage(image, boot), core::SimClock::FromSeconds(60)});

  // Simulate a corrupted wire transfer of an incremental stream between two
  // volumes directly.
  zvol::Volume& sc = cluster.storage_volume();
  const vmi::ImageSpec& spec2 = catalog.images()[1];
  const vmi::VmImage image2(catalog, spec2);
  const vmi::BootWorkingSet boot2(catalog, image2);
  const std::string from = sc.LatestSnapshot()->name;
  sc.WriteFile("cache/extra", vmi::CacheImage(image2, boot2));
  sc.CreateSnapshot("extra-snap", 120);

  util::Bytes wire = sc.Send(from, "extra-snap").Serialize();
  util::Bytes corrupted = wire;
  corrupted[corrupted.size() / 3] ^= 0x80;
  zvol::Volume& cc = cluster.compute_node(0).volume();
  EXPECT_THROW(zvol::SendStream::Deserialize(corrupted), std::runtime_error);
  // The intact stream still applies afterwards (receiver state unharmed).
  cc.Receive(zvol::SendStream::Deserialize(wire));
  EXPECT_TRUE(cc.HasFile("cache/extra"));
}

TEST(Integration, StorageRequirementsShrinkWithDedupAndCompression) {
  // The thesis of Table 1 at system level: storing all caches costs far
  // less than their nonzero bytes.
  const vmi::Catalog catalog = vmi::Catalog::AzureCommunity(TinyCatalog(24));
  core::SquirrelCluster cluster(ClusterConfig(), 1);
  std::uint64_t total_cache_bytes = 0;
  std::uint64_t now = 0;
  for (const vmi::ImageSpec& spec : catalog.images()) {
    const vmi::VmImage image(catalog, spec);
    const vmi::BootWorkingSet boot(catalog, image);
    const auto report =
        cluster.Register({spec.name, vmi::CacheImage(image, boot), core::SimClock::FromSeconds(now += 60)});
    total_cache_bytes += report.cache_logical_bytes;
  }
  const zvol::VolumeStats stats = cluster.storage_volume().Stats();
  // At this miniature scale (24 images spread thinly over ~26 releases, so
  // little cross-image sharing) the reduction is far below the full
  // catalog's, but dedup+gzip must still clearly win over raw storage.
  EXPECT_LT(stats.disk_used_bytes, total_cache_bytes * 6 / 10)
      << "dedup+gzip should substantially shrink the raw cache bytes";
  EXPECT_GT(stats.ddt_core_bytes, 0u);
}

}  // namespace
}  // namespace squirrel
