// Fleet simulator determinism and model sanity (DESIGN.md §13): same
// (config, seed) must replay to a byte-identical FleetReport and event
// trace on every run and at any host thread count, the registration storm
// must queue on the storage node's slots, and churned nodes must pay the
// §3.5 catch-up at rejoin. Runs under `ctest -L tsan` via
// SQUIRREL_EVENT_FILTER.

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <thread>
#include <vector>

#include "sim/fleet/fleet.h"
#include "util/rng.h"

namespace squirrel::sim::fleet {
namespace {

FleetConfig SmallConfig() {
  FleetConfig config;
  config.nodes = 400;
  config.images = 16;
  config.seed = 7;
  config.trace = true;
  return config;
}

struct RunOutput {
  std::string json;
  std::string trace;
};

RunOutput RunOnce(const FleetConfig& config) {
  FleetScenario scenario(config);
  const FleetReport report = scenario.Run();
  return {report.ToJson(), scenario.loop().FormatTrace()};
}

TEST(Fleet, SameSeedByteIdenticalReportAndTrace) {
  const RunOutput a = RunOnce(SmallConfig());
  const RunOutput b = RunOnce(SmallConfig());
  EXPECT_EQ(a.json, b.json);
  EXPECT_EQ(a.trace, b.trace);
  EXPECT_FALSE(a.trace.empty());
}

TEST(Fleet, ByteIdenticalAcrossHostThreads) {
  // Each scenario is confined to one thread; four concurrent runs of the
  // same config must all produce the reference bytes (the determinism
  // contract the tsan label guards).
  const RunOutput reference = RunOnce(SmallConfig());
  std::vector<RunOutput> results(4);
  {
    std::vector<std::thread> threads;
    threads.reserve(results.size());
    for (RunOutput& slot : results) {
      threads.emplace_back([&slot] { slot = RunOnce(SmallConfig()); });
    }
    for (std::thread& t : threads) t.join();
  }
  for (const RunOutput& result : results) {
    EXPECT_EQ(result.json, reference.json);
    EXPECT_EQ(result.trace, reference.trace);
  }
}

TEST(Fleet, ReportCoversEveryRequestedPhase) {
  FleetConfig config = SmallConfig();
  const FleetReport report = FleetScenario(config).Run();
  ASSERT_EQ(report.phases.size(), 5u);
  EXPECT_EQ(report.phases[0].name, "register");
  EXPECT_EQ(report.phases[1].name, "deploy");
  EXPECT_EQ(report.phases[2].name, "autoscale");
  EXPECT_EQ(report.phases[3].name, "patch");
  EXPECT_EQ(report.phases[4].name, "churn");
  // Every node boots once in the deploy wave; latency percentiles are
  // ordered and positive.
  EXPECT_EQ(report.phases[1].boots, config.nodes);
  EXPECT_GT(report.phases[1].p50_seconds, 0.0);
  EXPECT_LE(report.phases[1].p50_seconds, report.phases[1].p99_seconds);
  EXPECT_LE(report.phases[1].p99_seconds, report.phases[1].p999_seconds);
  EXPECT_GT(report.phases[1].throughput_boots_per_second, 0.0);
  EXPECT_EQ(report.registration.registrations,
            static_cast<std::uint64_t>(config.images) +
                config.patch_registrations + 2);
}

TEST(Fleet, RegistrationStormQueuesOnSlots) {
  // One slot, every image submitted at t=0: completion latency must stack
  // queue wait on top of the ~20 s service time, and the tail must exceed
  // §3.2's single-registration minute — that is the storm axis.
  FleetConfig config = SmallConfig();
  config.run_deploy = config.run_autoscale = false;
  config.run_patch = config.run_churn = false;
  const FleetReport report = FleetScenario(config).Run();
  EXPECT_EQ(report.registration.registrations, config.images);
  EXPECT_GT(report.registration.completion_max_seconds,
            2.0 * report.registration.service_p50_seconds);
  EXPECT_FALSE(report.registration.all_under_minute);

  // Four slots drain the same storm faster.
  FleetConfig wide = config;
  wide.registration_slots = 4;
  const FleetReport wide_report = FleetScenario(wide).Run();
  EXPECT_LT(wide_report.registration.completion_max_seconds,
            report.registration.completion_max_seconds);
}

TEST(Fleet, ChurnedNodesPaySyncCatchUpAtRejoin) {
  FleetConfig config = SmallConfig();
  config.run_deploy = config.run_autoscale = config.run_patch = false;
  config.churn_fraction = 0.1;
  const FleetReport report = FleetScenario(config).Run();
  // Re-registrations land while churned nodes are offline, so every rejoin
  // catches up (§3.5) and its boot is not warm-local.
  EXPECT_GT(report.sync_catchups, 0u);
  EXPECT_GT(report.sync_bytes, 0.0);
  const PhaseStats& churn = report.phases.back();
  EXPECT_EQ(churn.name, "churn");
  EXPECT_GT(churn.remote_boots, 0u);
}

TEST(Fleet, ZipfSamplerMatchesTheoryAtMillionSamples) {
  // n=1e6 draws over 1000 ranks, s=0.9: empirical rank frequencies must
  // follow the Zipf pmf (top rank within 5% of theory, and monotone across
  // decades).
  constexpr std::size_t kRanks = 1000;
  constexpr std::size_t kDraws = 1'000'000;
  constexpr double kS = 0.9;
  util::ZipfSampler sampler(kRanks, kS);
  util::Rng rng(123);
  std::vector<std::uint64_t> counts(kRanks, 0);
  for (std::size_t i = 0; i < kDraws; ++i) ++counts[sampler.Sample(rng)];

  double norm = 0.0;
  for (std::size_t r = 1; r <= kRanks; ++r) {
    norm += 1.0 / std::pow(static_cast<double>(r), kS);
  }
  const double expected_top = static_cast<double>(kDraws) / norm;
  EXPECT_NEAR(static_cast<double>(counts[0]), expected_top,
              0.05 * expected_top);
  EXPECT_GT(counts[0], counts[9]);
  EXPECT_GT(counts[9], counts[99]);
  EXPECT_GT(counts[99], counts[999]);
  // The skew concentrates: the hottest 10% of ranks get most of the draws.
  std::uint64_t top_decile = 0;
  for (std::size_t r = 0; r < kRanks / 10; ++r) top_decile += counts[r];
  EXPECT_GT(top_decile, kDraws / 2);
}

}  // namespace
}  // namespace squirrel::sim::fleet
