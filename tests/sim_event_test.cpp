// Discrete-event engine: ordering, cancellation, determinism, and the
// io_uring-style async disk queue built on it.

#include "sim/event/event_loop.h"

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <thread>
#include <vector>

#include "sim/disk_model.h"
#include "sim/event/disk_queue.h"

namespace squirrel::sim::event {
namespace {

TEST(EventLoop, FiresInTimeOrder) {
  EventLoop loop;
  std::vector<int> order;
  loop.Schedule(30.0, "c", [&] { order.push_back(3); });
  loop.Schedule(10.0, "a", [&] { order.push_back(1); });
  loop.Schedule(20.0, "b", [&] { order.push_back(2); });
  loop.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(loop.now_ns(), 30.0);
  EXPECT_EQ(loop.fired(), 3u);
}

TEST(EventLoop, StableOrderAtSameInstant) {
  // Two events at the same time fire in scheduling order — the (time,
  // sequence) key makes simultaneity deterministic.
  EventLoop loop;
  std::vector<int> order;
  loop.Schedule(5.0, "first", [&] { order.push_back(1); });
  loop.Schedule(5.0, "second", [&] { order.push_back(2); });
  loop.Schedule(5.0, "third", [&] { order.push_back(3); });
  loop.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventLoop, CancelRemovesPendingOnce) {
  EventLoop loop;
  bool fired = false;
  const EventId id = loop.Schedule(1.0, "x", [&] { fired = true; });
  EXPECT_TRUE(loop.Cancel(id));
  EXPECT_FALSE(loop.Cancel(id));  // second cancel is a detectable no-op
  loop.Run();
  EXPECT_FALSE(fired);
  EXPECT_EQ(loop.fired(), 0u);
}

TEST(EventLoop, CancelAfterFireReturnsFalse) {
  EventLoop loop;
  const EventId id = loop.Schedule(1.0, "x", [] {});
  loop.Run();
  EXPECT_FALSE(loop.Cancel(id));
}

TEST(EventLoop, PastSchedulingClampsToNow) {
  EventLoop loop;
  loop.Schedule(100.0, "advance", [] {});
  loop.Run();
  std::vector<double> at;
  loop.Schedule(5.0, "past", [&] { at.push_back(loop.now_ns()); });
  loop.Run();
  ASSERT_EQ(at.size(), 1u);
  EXPECT_DOUBLE_EQ(at[0], 100.0);  // the past is not addressable
}

TEST(EventLoop, NanTimeThrows) {
  EventLoop loop;
  EXPECT_THROW(loop.Schedule(std::nan(""), "bad", [] {}),
               std::invalid_argument);
}

TEST(EventLoop, HandlerMaySchedule) {
  EventLoop loop;
  std::vector<double> times;
  loop.Schedule(1.0, "outer", [&] {
    times.push_back(loop.now_ns());
    loop.ScheduleAfter(2.0, "inner", [&] { times.push_back(loop.now_ns()); });
  });
  loop.Run();
  EXPECT_EQ(times, (std::vector<double>{1.0, 3.0}));
}

TEST(EventLoop, RunUntilFiresDueAndAdvances) {
  EventLoop loop;
  int fired = 0;
  loop.Schedule(10.0, "due", [&] { ++fired; });
  loop.Schedule(50.0, "later", [&] { ++fired; });
  loop.RunUntil(20.0);
  EXPECT_EQ(fired, 1);
  EXPECT_DOUBLE_EQ(loop.now_ns(), 20.0);  // advances even without an event
  EXPECT_EQ(loop.pending(), 1u);
  loop.Run();
  EXPECT_EQ(fired, 2);
}

// The determinism contract: identical (seed, schedule) produces a
// byte-identical trace on every run — including runs on different host
// threads, since no host state enters scheduling.
std::string TraceOfCanonicalSchedule(std::uint64_t seed) {
  EventLoop loop(seed);
  loop.EnableTrace(true);
  // A schedule with same-instant ties, handler-scheduled events, RNG-derived
  // times, and a cancellation.
  for (int i = 0; i < 16; ++i) {
    const double t = static_cast<double>(loop.rng().Below(97));
    loop.Schedule(t, "seeded", [&loop] {
      loop.ScheduleAfter(3.0, "chained", [] {});
    });
  }
  loop.Schedule(11.0, "tie-a", [] {});
  loop.Schedule(11.0, "tie-b", [] {});
  const EventId dead = loop.Schedule(1e6, "cancelled", [] {});
  loop.Cancel(dead);
  loop.Run();
  return loop.FormatTrace();
}

TEST(EventLoop, TraceByteIdenticalAcrossRunsAndHostThreads) {
  const std::string reference = TraceOfCanonicalSchedule(0x5eed);
  ASSERT_FALSE(reference.empty());

  // Replay on the same thread.
  EXPECT_EQ(TraceOfCanonicalSchedule(0x5eed), reference);

  // Replay concurrently on several host threads (run under TSan via the
  // labelled suite): each loop is thread-confined, so every replica must
  // still produce the reference bytes.
  std::vector<std::string> traces(4);
  std::vector<std::thread> threads;
  for (std::size_t i = 0; i < traces.size(); ++i) {
    threads.emplace_back(
        [&traces, i] { traces[i] = TraceOfCanonicalSchedule(0x5eed); });
  }
  for (auto& t : threads) t.join();
  for (const std::string& trace : traces) EXPECT_EQ(trace, reference);

  // A different seed is a different schedule.
  EXPECT_NE(TraceOfCanonicalSchedule(0x07e4), reference);
}

// --- AsyncDiskQueue ----------------------------------------------------------

TEST(AsyncDisk, DepthOneBitIdenticalToSynchronousCharges) {
  // The same request sequence through (a) the scalar clock += cost model and
  // (b) a depth-1 queue must agree bit for bit: same DiskModel call order,
  // same float additions.
  const std::vector<std::pair<std::uint64_t, std::uint64_t>> reads = {
      {0, 4096},          {1ull << 30, 8192}, {4096, 4096},
      {300ull << 20, 512}, {8192, 16384},      {0, 512},
  };

  DiskModel sync_disk;
  double clock = 0.0;
  std::vector<double> sync_clocks;
  for (const auto& [offset, length] : reads) {
    clock += sync_disk.Read(offset, length);
    sync_clocks.push_back(clock);
  }

  DiskModel async_disk;
  EventLoop loop;
  AsyncDiskQueue queue(&async_disk, &loop, DiskQueueConfig{.depth = 1});
  double async_clock = 0.0;
  std::vector<double> async_clocks;
  for (const auto& [offset, length] : reads) {
    const RequestId id = queue.Submit(async_clock, offset, length);
    async_clock = queue.CompletionNs(id);
    async_clocks.push_back(async_clock);
  }

  ASSERT_EQ(async_clocks.size(), sync_clocks.size());
  for (std::size_t i = 0; i < reads.size(); ++i) {
    // Bitwise equality, not EXPECT_DOUBLE_EQ: the reduction claim is exact.
    EXPECT_EQ(async_clocks[i], sync_clocks[i]) << "read " << i;
  }
  EXPECT_EQ(async_disk.bytes_read(), sync_disk.bytes_read());
  EXPECT_EQ(async_disk.seeks(), sync_disk.seeks());
  EXPECT_EQ(queue.stats().physical_ops, reads.size());
  EXPECT_EQ(queue.stats().coalesced, 0u);
  EXPECT_EQ(queue.stats().reordered, 0u);
}

TEST(AsyncDisk, CoalescesExactlyAdjacentRequests) {
  DiskModel disk;
  EventLoop loop;
  AsyncDiskQueue queue(&disk, &loop,
                       DiskQueueConfig{.depth = 8, .elevator = false});
  // The first submit goes straight to the platter; while it spins, three
  // adjacent 4K reads pile up and merge into one physical op.
  const RequestId head = queue.Submit(0.0, 2ull << 30, 512);
  const RequestId a = queue.Submit(0.0, 0, 4096);
  const RequestId b = queue.Submit(0.0, 4096, 4096);
  const RequestId c = queue.Submit(0.0, 8192, 4096);
  queue.Drain();
  EXPECT_EQ(queue.stats().coalesced, 2u);
  EXPECT_EQ(queue.stats().physical_ops, 2u);  // head, then the merged trio
  // All members of the merged op share its completion time.
  EXPECT_EQ(queue.CompletionNs(a), queue.CompletionNs(b));
  EXPECT_EQ(queue.CompletionNs(b), queue.CompletionNs(c));
  EXPECT_GT(queue.CompletionNs(a), queue.CompletionNs(head));
  EXPECT_EQ(disk.bytes_read(), 12288u + 512u);
}

TEST(AsyncDisk, CoalesceRespectsByteCap) {
  DiskModel disk;
  EventLoop loop;
  AsyncDiskQueue queue(
      &disk, &loop,
      DiskQueueConfig{.depth = 8, .max_coalesce_bytes = 8192,
                      .elevator = false});
  queue.Submit(0.0, 2ull << 30, 512);  // occupies the platter
  queue.Submit(0.0, 0, 4096);
  queue.Submit(0.0, 4096, 4096);
  queue.Submit(0.0, 8192, 4096);  // would push the merged op past 8 KiB
  queue.Drain();
  EXPECT_EQ(queue.stats().coalesced, 1u);
  EXPECT_EQ(queue.stats().physical_ops, 3u);
}

TEST(AsyncDisk, ElevatorServicesNearestFirst) {
  DiskModel disk;
  EventLoop loop;
  AsyncDiskQueue queue(&disk, &loop,
                       DiskQueueConfig{.depth = 4, .max_coalesce_bytes = 0,
                                       .elevator = true});
  // Head starts at 0. Far request submitted first, near one second: while
  // the first is in service the queue holds both far and near; after the
  // first completes, the elevator picks the nearer one out of order.
  const RequestId warm = queue.Submit(0.0, 0, 512);          // in service
  const RequestId far = queue.Submit(0.0, 2ull << 30, 512);  // queued
  const RequestId near = queue.Submit(0.0, 4096, 512);       // queued, closer
  queue.Drain();
  EXPECT_GT(queue.stats().reordered, 0u);
  EXPECT_LT(queue.CompletionNs(near), queue.CompletionNs(far));
  EXPECT_LT(queue.CompletionNs(warm), queue.CompletionNs(near));
}

TEST(AsyncDisk, SubmitStallsWhenFullTrySubmitDrops) {
  DiskModel disk;
  EventLoop loop;
  AsyncDiskQueue queue(&disk, &loop, DiskQueueConfig{.depth = 2});
  queue.Submit(0.0, 0, 4096);
  queue.Submit(0.0, 1ull << 28, 4096);
  EXPECT_EQ(queue.outstanding(), 2u);
  // Non-stalling prefetch admission fails cleanly.
  EXPECT_EQ(queue.TrySubmit(0.0, 1ull << 29, 4096), kInvalidRequest);
  EXPECT_EQ(queue.stats().prefetch_drops, 1u);
  // Stalling admission waits for a slot, then succeeds.
  const RequestId late = queue.Submit(0.0, 1ull << 30, 4096);
  EXPECT_NE(late, kInvalidRequest);
  EXPECT_EQ(queue.stats().submit_stalls, 1u);
  queue.Drain();
  EXPECT_EQ(queue.outstanding(), 0u);
  EXPECT_EQ(queue.stats().completed, 3u);
}

TEST(AsyncDisk, DepthZeroRejected) {
  DiskModel disk;
  EventLoop loop;
  EXPECT_THROW(AsyncDiskQueue(&disk, &loop, DiskQueueConfig{.depth = 0}),
               std::invalid_argument);
}

}  // namespace
}  // namespace squirrel::sim::event
