#include "core/squirrel.h"

#include <gtest/gtest.h>

#include "util/rng.h"
#include "vmi/bootset.h"

namespace squirrel::core {
namespace {

using util::Bytes;

class BufferSource final : public util::DataSource {
 public:
  explicit BufferSource(Bytes data) : data_(std::move(data)) {}
  std::uint64_t size() const override { return data_.size(); }
  void Read(std::uint64_t offset, util::MutableByteSpan out) const override {
    std::copy_n(data_.begin() + static_cast<std::ptrdiff_t>(offset), out.size(),
                out.begin());
  }

 private:
  Bytes data_;
};

SquirrelConfig SmallConfig() {
  SquirrelConfig config;
  config.volume =
      zvol::VolumeConfig{.block_size = 4096, .codec = compress::CodecId::kGzip6, .dedup = true};
  config.retention_seconds = 7 * 86400;
  return config;
}

/// A sparse "cache" with a shared head and a unique tail.
Bytes MakeCacheContent(std::uint64_t seed, std::size_t blocks = 32) {
  Bytes content(blocks * 4096, 0);
  util::Rng shared(42);
  // 24 shared blocks, 4 unique, 4 holes.
  shared.Fill(util::MutableByteSpan(content.data(), 24 * 4096));
  util::Rng unique(seed);
  unique.Fill(util::MutableByteSpan(content.data() + 24 * 4096, 4 * 4096));
  return content;
}

TEST(Squirrel, RegisterPropagatesToAllOnlineNodes) {
  SquirrelCluster cluster(SmallConfig(), 4);
  const RegistrationReport report =
      cluster.Register({"img-1", BufferSource(MakeCacheContent(1)), SimClock::FromSeconds(1000)});
  EXPECT_EQ(report.receivers, 4u);
  EXPECT_LT(report.total_seconds, 60.0);  // §3.2: well under a minute
  EXPECT_GT(report.diff_wire_bytes, 0u);
  for (std::uint32_t n = 0; n < 4; ++n) {
    EXPECT_TRUE(cluster.compute_node(n).volume().HasFile(
        SquirrelCluster::CacheFileName("img-1")));
  }
}

TEST(Squirrel, SecondRegistrationDiffIsSmall) {
  SquirrelCluster cluster(SmallConfig(), 2);
  const auto first =
      cluster.Register({"img-1", BufferSource(MakeCacheContent(1)), SimClock::FromSeconds(1000)});
  // Second cache shares 24 of 28 nonzero blocks: its diff must carry only
  // the unique tail (the paper's O(10 MB) observation).
  const auto second =
      cluster.Register({"img-2", BufferSource(MakeCacheContent(2)), SimClock::FromSeconds(2000)});
  EXPECT_LT(second.diff_wire_bytes, first.diff_wire_bytes / 3);
}

TEST(Squirrel, DuplicateRegistrationRejected) {
  SquirrelCluster cluster(SmallConfig(), 1);
  cluster.Register({"img-1", BufferSource(MakeCacheContent(1)), SimClock::FromSeconds(1000)});
  EXPECT_THROW(
      cluster.Register({"img-1", BufferSource(MakeCacheContent(1)), SimClock::FromSeconds(2000)}),
      std::invalid_argument);
}

TEST(Squirrel, WarmBootUsesZeroNetwork) {
  SquirrelCluster cluster(SmallConfig(), 2);
  const Bytes cache_content = MakeCacheContent(7, 64);
  cluster.Register({"img-1", BufferSource(cache_content), SimClock::FromSeconds(1000)});

  // The base image equals the cache content where cached (plus more data
  // beyond it that the boot does not touch).
  Bytes base = cache_content;
  base.resize(base.size() + 64 * 4096, 0x5a);
  BufferSource base_image(base);

  // Boot trace touching only cached content.
  std::vector<vmi::BootRead> trace;
  for (std::uint64_t off = 0; off < 24 * 4096; off += 8192) {
    trace.push_back({off, 8192});
  }

  sim::IoContext io;
  const BootReport report =
      cluster.Boot(1,
      {.image_id = "img-1", .base_image = base_image, .trace = trace},
      io);
  EXPECT_EQ(report.network_bytes, 0u);  // the headline property
  EXPECT_GT(report.result.bytes_read, 0u);
  EXPECT_EQ(report.result.base_bytes_read, 0u);
  EXPECT_GT(report.result.seconds, 0.0);
}

TEST(Squirrel, BootOfUnsyncedImageThrows) {
  SquirrelCluster cluster(SmallConfig(), 1);
  BufferSource base(Bytes(4096, 1));
  sim::IoContext io;
  EXPECT_THROW(cluster.Boot(0,
      {.image_id = "missing", .base_image = base, .trace = {}},
      io),
               std::invalid_argument);
}

TEST(Squirrel, OfflineNodeMissesDiffThenCatchesUp) {
  SquirrelCluster cluster(SmallConfig(), 3);
  cluster.Register({"img-1", BufferSource(MakeCacheContent(1)), SimClock::FromSeconds(1000)});

  cluster.compute_node(2).set_online(false);
  cluster.Register({"img-2", BufferSource(MakeCacheContent(2)), SimClock::FromSeconds(2000)});
  EXPECT_FALSE(cluster.compute_node(2).volume().HasFile(
      SquirrelCluster::CacheFileName("img-2")));

  cluster.compute_node(2).set_online(true);
  const SyncReport sync = cluster.SyncNode(2, SimClock::FromSeconds(3000));
  EXPECT_FALSE(sync.full_resync);
  EXPECT_EQ(sync.snapshots_advanced, 1u);
  EXPECT_TRUE(cluster.compute_node(2).volume().HasFile(
      SquirrelCluster::CacheFileName("img-2")));
}

TEST(Squirrel, SyncIsNoOpWhenCurrent) {
  SquirrelCluster cluster(SmallConfig(), 1);
  cluster.Register({"img-1", BufferSource(MakeCacheContent(1)), SimClock::FromSeconds(1000)});
  const SyncReport sync = cluster.SyncNode(0, SimClock::FromSeconds(2000));
  EXPECT_EQ(sync.wire_bytes, 0u);
  EXPECT_EQ(sync.snapshots_advanced, 0u);
}

TEST(Squirrel, LongOfflineNodeFallsBackToFullResync) {
  SquirrelConfig config = SmallConfig();
  config.retention_seconds = 2 * 86400;  // n = 2 days
  SquirrelCluster cluster(config, 2);

  cluster.Register({"img-1", BufferSource(MakeCacheContent(1)), SimClock::FromSeconds(0)});
  cluster.compute_node(1).set_online(false);

  // A week of registrations and daily GC while node 1 is down.
  for (int day = 1; day <= 7; ++day) {
    cluster.Register({"img-" + std::to_string(day + 1), BufferSource(MakeCacheContent(day + 1)), SimClock::FromSeconds(day * 86400ull)});
    cluster.RunGc(SimClock::FromSeconds(day * 86400ull + 3600));
  }

  cluster.compute_node(1).set_online(true);
  const SyncReport sync = cluster.SyncNode(1, SimClock::FromSeconds(8 * 86400ull));
  EXPECT_TRUE(sync.full_resync);
  for (int i = 1; i <= 8; ++i) {
    EXPECT_TRUE(cluster.compute_node(1).volume().HasFile(
        SquirrelCluster::CacheFileName("img-" + std::to_string(i))))
        << i;
  }
}

TEST(Squirrel, BrandNewNodeSyncsFully) {
  // Nodes start empty: before any sync they miss even the first snapshot if
  // they were offline during it.
  SquirrelCluster cluster(SmallConfig(), 2);
  cluster.compute_node(1).set_online(false);
  cluster.Register({"img-1", BufferSource(MakeCacheContent(1)), SimClock::FromSeconds(1000)});
  cluster.compute_node(1).set_online(true);
  const SyncReport sync = cluster.SyncNode(1, SimClock::FromSeconds(2000));
  EXPECT_TRUE(sync.full_resync);
  EXPECT_TRUE(cluster.compute_node(1).volume().HasFile(
      SquirrelCluster::CacheFileName("img-1")));
}

TEST(Squirrel, DeregisterPropagatesWithNextRegistration) {
  SquirrelCluster cluster(SmallConfig(), 2);
  cluster.Register({"img-1", BufferSource(MakeCacheContent(1)), SimClock::FromSeconds(1000)});
  cluster.Register({"img-2", BufferSource(MakeCacheContent(2)), SimClock::FromSeconds(2000)});
  cluster.Deregister("img-1", SimClock::FromSeconds(3000));
  // ccVolumes still have the stale cache (no snapshot on delete, §3.4).
  EXPECT_TRUE(cluster.compute_node(0).volume().HasFile(
      SquirrelCluster::CacheFileName("img-1")));
  // The next registration's snapshot carries the deletion.
  cluster.Register({"img-3", BufferSource(MakeCacheContent(3)), SimClock::FromSeconds(4000)});
  EXPECT_FALSE(cluster.compute_node(0).volume().HasFile(
      SquirrelCluster::CacheFileName("img-1")));
  EXPECT_TRUE(cluster.compute_node(0).volume().HasFile(
      SquirrelCluster::CacheFileName("img-3")));
}

TEST(Squirrel, GcReclaimsDeregisteredBlocks) {
  SquirrelConfig config = SmallConfig();
  config.retention_seconds = 86400;
  SquirrelCluster cluster(config, 1);
  cluster.Register({"img-1", BufferSource(MakeCacheContent(1)), SimClock::FromSeconds(0)});
  const std::uint64_t with_one =
      cluster.storage_volume().Stats().unique_blocks;
  cluster.Deregister("img-1", SimClock::FromSeconds(100));
  cluster.Register({"img-2", BufferSource(MakeCacheContent(2)), SimClock::FromSeconds(200)});
  // Old snapshot still pins img-1's unique blocks.
  EXPECT_GE(cluster.storage_volume().Stats().unique_blocks, with_one);
  cluster.RunGc(SimClock::FromSeconds(10 * 86400ull));
  // After GC, only img-2's blocks remain (shared head + its tail).
  EXPECT_LE(cluster.storage_volume().Stats().unique_blocks, with_one);
  EXPECT_EQ(cluster.storage_volume().snapshots().size(), 1u);
}

TEST(Squirrel, ReplicasBitIdenticalToStorageVolume) {
  SquirrelCluster cluster(SmallConfig(), 2);
  for (int i = 1; i <= 5; ++i) {
    cluster.Register({"img-" + std::to_string(i), BufferSource(MakeCacheContent(i)), SimClock::FromSeconds(i * 1000ull)});
  }
  zvol::Volume& sc = cluster.storage_volume();
  for (std::uint32_t n = 0; n < 2; ++n) {
    zvol::Volume& cc = cluster.compute_node(n).volume();
    ASSERT_EQ(cc.FileNames(), sc.FileNames());
    for (const std::string& name : sc.FileNames()) {
      EXPECT_EQ(cc.ReadRange(name, 0, cc.FileSize(name)),
                sc.ReadRange(name, 0, sc.FileSize(name)))
          << name;
    }
  }
}

}  // namespace
}  // namespace squirrel::core
