#include "store/block_store.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace squirrel::store {
namespace {

using util::Bytes;

Bytes RandomBlock(std::size_t size, std::uint64_t seed) {
  Bytes data(size);
  util::Rng(seed).Fill(data);
  return data;
}

Bytes TextBlock(std::size_t size, std::uint64_t seed) {
  Bytes data(size);
  util::Rng rng(seed);
  for (std::size_t i = 0; i < size; ++i) {
    data[i] = static_cast<util::Byte>('a' + rng.Below(4));
  }
  return data;
}

TEST(BlockStore, PutThenGetRoundTrips) {
  BlockStore store({.codec = compress::CodecId::kGzip6, .dedup = true});
  const Bytes block = TextBlock(65536, 1);
  const PutResult put = store.Put(block);
  EXPECT_FALSE(put.deduplicated);
  EXPECT_EQ(store.Get(put.digest), block);
}

TEST(BlockStore, DuplicatePutDeduplicates) {
  BlockStore store({.codec = compress::CodecId::kGzip6, .dedup = true});
  const Bytes block = RandomBlock(4096, 2);
  const PutResult first = store.Put(block);
  const PutResult second = store.Put(block);
  EXPECT_FALSE(first.deduplicated);
  EXPECT_TRUE(second.deduplicated);
  EXPECT_EQ(first.digest, second.digest);
  EXPECT_EQ(store.RefCount(first.digest), 2u);
  EXPECT_EQ(store.stats().unique_blocks, 1u);
  EXPECT_EQ(store.stats().total_refs, 2u);
}

TEST(BlockStore, DedupDisabledAllocatesEveryTime) {
  BlockStore store({.codec = compress::CodecId::kNull, .dedup = false});
  const Bytes block = RandomBlock(4096, 3);
  const PutResult first = store.Put(block);
  const PutResult second = store.Put(block);
  EXPECT_NE(first.digest, second.digest);
  EXPECT_EQ(store.stats().unique_blocks, 2u);
  EXPECT_EQ(store.stats().ddt_core_bytes, 0u);  // no table without dedup
}

TEST(BlockStore, CompressibleBlocksStoredCompressed) {
  BlockStore store({.codec = compress::CodecId::kGzip6, .dedup = true});
  const Bytes block = TextBlock(65536, 4);
  const PutResult put = store.Put(block);
  EXPECT_LT(put.physical_size, put.logical_size / 2);
  EXPECT_EQ(store.stats().physical_data_bytes, put.physical_size);
}

TEST(BlockStore, IncompressibleBlocksStoredRaw) {
  // ZFS keeps the compressed copy only when it saves >= 1/8th.
  BlockStore store({.codec = compress::CodecId::kGzip6, .dedup = true});
  const Bytes block = RandomBlock(65536, 5);
  const PutResult put = store.Put(block);
  EXPECT_EQ(put.physical_size, put.logical_size);
  EXPECT_EQ(store.Get(put.digest), block);
}

TEST(BlockStore, UnrefFreesAtZero) {
  BlockStore store({.codec = compress::CodecId::kNull, .dedup = true});
  const Bytes block = RandomBlock(4096, 6);
  const PutResult put = store.Put(block);
  store.Put(block);  // refcount 2
  store.Unref(put.digest);
  EXPECT_TRUE(store.Contains(put.digest));
  store.Unref(put.digest);
  EXPECT_FALSE(store.Contains(put.digest));
  EXPECT_EQ(store.stats().unique_blocks, 0u);
  EXPECT_EQ(store.stats().physical_data_bytes, 0u);
  EXPECT_EQ(store.stats().ddt_core_bytes, 0u);
  EXPECT_EQ(store.space_map_stats().allocated_bytes, 0u);
}

TEST(BlockStore, UnrefUnknownThrows) {
  BlockStore store({});
  util::Digest bogus;
  bogus.bytes[0] = 0xaa;
  EXPECT_THROW(store.Unref(bogus), NoSuchBlockError);
  EXPECT_THROW(store.Get(bogus), NoSuchBlockError);
  EXPECT_THROW(store.Ref(bogus), NoSuchBlockError);
  // The typed error roots at squirrel::Error like every other domain error.
  EXPECT_THROW(store.Unref(bogus), Error);
}

TEST(BlockStore, RefIncrementsExplicitly) {
  BlockStore store({.codec = compress::CodecId::kNull, .dedup = true});
  const PutResult put = store.Put(RandomBlock(1024, 7));
  store.Ref(put.digest);
  EXPECT_EQ(store.RefCount(put.digest), 2u);
  EXPECT_EQ(store.stats().total_refs, 2u);
}

TEST(BlockStore, StatsConservation) {
  BlockStore store({.codec = compress::CodecId::kGzip6, .dedup = true});
  std::vector<util::Digest> digests;
  std::uint64_t expected_refs = 0;
  for (int i = 0; i < 50; ++i) {
    // 25 distinct blocks, each put twice.
    const PutResult put = store.Put(RandomBlock(2048, 100 + i % 25));
    digests.push_back(put.digest);
    ++expected_refs;
  }
  const StoreStats& stats = store.stats();
  EXPECT_EQ(stats.unique_blocks, 25u);
  EXPECT_EQ(stats.total_refs, expected_refs);
  EXPECT_EQ(stats.logical_unique_bytes, 25u * 2048);
  EXPECT_EQ(stats.logical_referenced_bytes, 50u * 2048);
  EXPECT_EQ(stats.ddt_core_bytes, 25u * kDdtCoreBytesPerEntry);
  EXPECT_EQ(stats.ddt_disk_bytes, 25u * kDdtDiskBytesPerEntry);
  EXPECT_EQ(stats.disk_bytes(), stats.physical_data_bytes + stats.ddt_disk_bytes);

  for (const auto& digest : digests) store.Unref(digest);
  EXPECT_EQ(store.stats().unique_blocks, 0u);
  EXPECT_EQ(store.stats().logical_referenced_bytes, 0u);
}

TEST(BlockStore, FastHashModeDeduplicatesIdentically) {
  BlockStore store({.codec = compress::CodecId::kNull, .dedup = true, .fast_hash = true});
  const Bytes block = RandomBlock(8192, 8);
  const PutResult first = store.Put(block);
  const PutResult second = store.Put(block);
  EXPECT_TRUE(second.deduplicated);
  EXPECT_EQ(first.digest, second.digest);
  EXPECT_EQ(store.Get(first.digest), block);
}

TEST(BlockStore, UnknownCodecRejected) {
  EXPECT_EQ(compress::ParseCodec("nope"), std::nullopt);
  EXPECT_EQ(compress::ParseCodec("gzip6"), compress::CodecId::kGzip6);
  EXPECT_EQ(compress::CodecName(compress::CodecId::kGzip6), "gzip6");
}

TEST(BlockStore, DiskOffsetsAreDistinct) {
  BlockStore store({.codec = compress::CodecId::kNull, .dedup = true});
  const PutResult a = store.Put(RandomBlock(4096, 10));
  const PutResult b = store.Put(RandomBlock(4096, 11));
  EXPECT_NE(store.DiskOffset(a.digest), store.DiskOffset(b.digest));
  EXPECT_EQ(store.PhysicalSize(a.digest), 4096u);
}

}  // namespace
}  // namespace squirrel::store
