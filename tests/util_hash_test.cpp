#include "util/hash.h"

#include <gtest/gtest.h>

#include <string_view>

#include "util/sha256.h"

namespace squirrel::util {
namespace {

Bytes ToBytes(std::string_view s) {
  return Bytes(s.begin(), s.end());
}

std::string HexOf(const std::array<std::uint8_t, 32>& digest) {
  static constexpr char kHex[] = "0123456789abcdef";
  std::string out;
  for (auto b : digest) {
    out.push_back(kHex[b >> 4]);
    out.push_back(kHex[b & 0xf]);
  }
  return out;
}

// FIPS 180-4 test vectors.
TEST(Sha256, EmptyInput) {
  EXPECT_EQ(HexOf(Sha256({})),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256, Abc) {
  EXPECT_EQ(HexOf(Sha256(ToBytes("abc"))),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256, TwoBlockMessage) {
  EXPECT_EQ(HexOf(Sha256(ToBytes(
                "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"))),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256, MillionAs) {
  Sha256Context ctx;
  const Bytes chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) ctx.Update(chunk);
  EXPECT_EQ(HexOf(ctx.Finish()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256, StreamingMatchesOneShot) {
  Bytes data(100000);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<Byte>(i * 131 + 7);
  }
  const auto oneshot = Sha256(data);
  // Feed in awkward chunk sizes crossing the 64-byte block boundary.
  Sha256Context ctx;
  std::size_t pos = 0;
  std::size_t chunk = 1;
  while (pos < data.size()) {
    const std::size_t take = std::min(chunk, data.size() - pos);
    ctx.Update(ByteSpan(data.data() + pos, take));
    pos += take;
    chunk = (chunk * 3 + 1) % 257;
  }
  EXPECT_EQ(ctx.Finish(), oneshot);
}

TEST(HashBlock, TruncatesSha256) {
  const Bytes data = ToBytes("abc");
  const Digest digest = HashBlock(data);
  EXPECT_EQ(digest.ToHex(), "ba7816bf8f01cfea414140de5dae2223");
}

TEST(HashBlock, DistinctInputsDistinctDigests) {
  const Digest a = HashBlock(ToBytes("block-a"));
  const Digest b = HashBlock(ToBytes("block-b"));
  EXPECT_NE(a, b);
  EXPECT_NE(a.Prefix64(), b.Prefix64());
}

TEST(Fnv1a64, KnownValues) {
  // FNV-1a of empty input is the offset basis.
  EXPECT_EQ(Fnv1a64({}), 0xcbf29ce484222325ULL);
  // "a" -> standard FNV-1a 64 value.
  EXPECT_EQ(Fnv1a64(ToBytes("a")), 0xaf63dc4c8601ec8cULL);
}

TEST(Fnv1a64, SeedChangesResult) {
  const Bytes data = ToBytes("same input");
  EXPECT_NE(Fnv1a64(data, 1), Fnv1a64(data, 2));
}

TEST(FastHash128, DeterministicAndSeeded) {
  const Bytes data = ToBytes("squirrel scatter hoarding");
  const Fast128 h1 = FastHash128(data);
  const Fast128 h2 = FastHash128(data);
  EXPECT_EQ(h1.lo, h2.lo);
  EXPECT_EQ(h1.hi, h2.hi);
  const Fast128 seeded = FastHash128(data, 42);
  EXPECT_TRUE(seeded.lo != h1.lo || seeded.hi != h1.hi);
}

TEST(FastHash128, SingleBitFlipChangesBothLanes) {
  Bytes data(64, 0xAA);
  const Fast128 base = FastHash128(data);
  int lo_changes = 0, hi_changes = 0;
  for (std::size_t byte = 0; byte < data.size(); ++byte) {
    Bytes copy = data;
    copy[byte] ^= 1;
    const Fast128 h = FastHash128(copy);
    lo_changes += (h.lo != base.lo);
    hi_changes += (h.hi != base.hi);
  }
  EXPECT_EQ(lo_changes, 64);
  EXPECT_EQ(hi_changes, 64);
}

TEST(FastHash128, TailBytesMatter) {
  // Lengths not a multiple of 16 exercise the byte-serial tail.
  for (std::size_t len : {1ul, 15ul, 17ul, 31ul}) {
    Bytes a(len, 0x11), b(len, 0x11);
    b[len - 1] ^= 0xff;
    const Fast128 ha = FastHash128(a);
    const Fast128 hb = FastHash128(b);
    EXPECT_TRUE(ha.lo != hb.lo || ha.hi != hb.hi) << len;
  }
}

}  // namespace
}  // namespace squirrel::util
