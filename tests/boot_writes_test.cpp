// Boot-time writes, sparse-aware base handling, and per-file volume
// accounting.
#include <gtest/gtest.h>

#include "core/squirrel.h"
#include "vmi/bootset.h"
#include "vmi/image.h"

namespace squirrel {
namespace {

using util::Bytes;

vmi::CatalogConfig TinyCatalog() {
  vmi::CatalogConfig config;
  config.image_count = 4;
  config.size_scale = 1.0 / 2048.0;
  config.cache_bytes *= 4;
  return config;
}

TEST(BootWrites, WriteTraceLandsInSparseScratch) {
  const vmi::Catalog catalog = vmi::Catalog::AzureCommunity(TinyCatalog());
  const vmi::VmImage image(catalog, catalog.images()[0]);
  const vmi::BootWorkingSet boot(catalog, image);
  const auto writes = boot.WriteTrace(7);
  ASSERT_FALSE(writes.empty());
  std::uint64_t total = 0;
  for (const vmi::BootRead& write : writes) {
    EXPECT_FALSE(image.RangeHasData(write.offset, write.length))
        << "boot writes must land in free space, offset " << write.offset;
    EXPECT_LE(write.offset + write.length, image.size());
    total += write.length;
  }
  // Roughly an eighth of the working set.
  EXPECT_GT(total, boot.byte_count() / 16);
  EXPECT_LT(total, boot.byte_count() / 2);
}

TEST(BootWrites, RangeHasDataMatchesExtents) {
  const vmi::Catalog catalog = vmi::Catalog::AzureCommunity(TinyCatalog());
  const vmi::VmImage image(catalog, catalog.images()[0]);
  // The kernel prefix has data; the scratch region does not.
  EXPECT_TRUE(image.RangeHasData(0, 4096));
  EXPECT_FALSE(image.RangeHasData(image.scratch_offset(), 65536));
  // A range straddling the first extent's end still has data.
  const vmi::Extent& first = image.extents().front();
  EXPECT_TRUE(image.RangeHasData(first.logical_offset + first.length - 1, 4096));
}

TEST(BootWrites, WarmBootWithWritesStaysNetworkFree) {
  // The headline property must survive boot-time writes: CoW fills of
  // unallocated backing ranges are free when the base exposes its
  // allocation map.
  const vmi::Catalog catalog = vmi::Catalog::AzureCommunity(TinyCatalog());
  core::SquirrelConfig config;
  config.volume = zvol::VolumeConfig{
      .block_size = 16384, .codec = compress::CodecId::kGzip6, .dedup = true, .fast_hash = true};
  core::SquirrelCluster cluster(config, 1);

  const vmi::ImageSpec& spec = catalog.images()[0];
  const vmi::VmImage image(catalog, spec);
  const vmi::BootWorkingSet boot(catalog, image);
  cluster.Register({spec.name, vmi::CacheImage(image, boot), core::SimClock::FromSeconds(60)});

  const auto trace = boot.Trace(1);
  const auto writes = boot.WriteTrace(1);
  ASSERT_FALSE(writes.empty());
  sim::IoContext io;
  const core::BootReport report = cluster.Boot(0,
      {.image_id = spec.name, .base_image = image, .trace = trace, .writes = &writes, .allocation = [&image](std::uint64_t offset, std::uint64_t length) {
        return image.RangeHasData(offset, length);
      }},
      io);
  EXPECT_GT(report.result.bytes_written, 0u);
  EXPECT_EQ(report.network_bytes, 0u);
  EXPECT_EQ(report.result.base_bytes_read, 0u);
}

TEST(BootWrites, WithoutAllocationMapWritesPullBaseClusters) {
  // The contrast case: a raw (fully allocated) base charges real fetches
  // for the copy-on-write fills.
  const vmi::Catalog catalog = vmi::Catalog::AzureCommunity(TinyCatalog());
  core::SquirrelConfig config;
  config.volume = zvol::VolumeConfig{
      .block_size = 16384, .codec = compress::CodecId::kGzip6, .dedup = true, .fast_hash = true};
  core::SquirrelCluster cluster(config, 1);
  const vmi::ImageSpec& spec = catalog.images()[0];
  const vmi::VmImage image(catalog, spec);
  const vmi::BootWorkingSet boot(catalog, image);
  cluster.Register({spec.name, vmi::CacheImage(image, boot), core::SimClock::FromSeconds(60)});
  const auto writes = boot.WriteTrace(1);
  sim::IoContext io;
  const core::BootReport report =
      cluster.Boot(0,
      {.image_id = spec.name, .base_image = image, .trace = boot.Trace(1), .writes = &writes},
      io);
  EXPECT_GT(report.network_bytes, 0u);  // CoW fills fetched zero clusters
}

TEST(FileStats, ReferencedVersusUnique) {
  zvol::Volume volume({.block_size = 4096, .codec = compress::CodecId::kNull, .dedup = true});
  // Two files sharing one block; each also holds a private block.
  Bytes shared(4096, 0x11);
  Bytes private_a(4096, 0x22);
  Bytes private_b(4096, 0x33);
  volume.CreateFile("a", 2 * 4096);
  volume.WriteRange("a", 0, shared);
  volume.WriteRange("a", 4096, private_a);
  volume.CreateFile("b", 2 * 4096);
  volume.WriteRange("b", 0, shared);
  volume.WriteRange("b", 4096, private_b);

  const auto stats = volume.StatFile("a");
  EXPECT_EQ(stats.nonzero_blocks, 2u);
  EXPECT_EQ(stats.hole_blocks, 0u);
  EXPECT_EQ(stats.referenced_physical_bytes, 2u * 4096);
  EXPECT_EQ(stats.unique_physical_bytes, 4096u);  // only the private block
  EXPECT_THROW(volume.StatFile("missing"), zvol::NoSuchFileError);
}

TEST(FileStats, CompressionRatioReported) {
  zvol::Volume volume({.block_size = 65536, .codec = compress::CodecId::kGzip6, .dedup = true});
  Bytes text(2 * 65536);
  for (std::size_t i = 0; i < text.size(); ++i) {
    text[i] = static_cast<util::Byte>('a' + i % 3);
  }
  volume.CreateFile("f", text.size());
  volume.WriteRange("f", 0, text);
  const auto stats = volume.StatFile("f");
  EXPECT_GT(stats.compression_ratio, 2.0);
  EXPECT_LT(stats.referenced_physical_bytes, text.size() / 2);
}

TEST(FileStats, SparseFileCountsHoles) {
  zvol::Volume volume({.block_size = 4096, .codec = compress::CodecId::kNull, .dedup = true});
  volume.CreateFile("sparse", 8 * 4096);
  Bytes one(4096, 0x44);
  volume.WriteRange("sparse", 3 * 4096, one);
  const auto stats = volume.StatFile("sparse");
  EXPECT_EQ(stats.nonzero_blocks, 1u);
  EXPECT_EQ(stats.hole_blocks, 7u);
}

}  // namespace
}  // namespace squirrel
