#include "store/cdc.h"

#include <gtest/gtest.h>

#include <unordered_set>

#include "util/hash.h"
#include "util/rng.h"

namespace squirrel::store {
namespace {

using util::Bytes;

class BufferSource final : public util::DataSource {
 public:
  explicit BufferSource(Bytes data) : data_(std::move(data)) {}
  std::uint64_t size() const override { return data_.size(); }
  void Read(std::uint64_t offset, util::MutableByteSpan out) const override {
    std::copy_n(data_.begin() + static_cast<std::ptrdiff_t>(offset), out.size(),
                out.begin());
  }

 private:
  Bytes data_;
};

Bytes RandomBytes(std::size_t size, std::uint64_t seed) {
  Bytes data(size);
  util::Rng(seed).Fill(data);
  return data;
}

CdcConfig TestConfig() {
  return {.min_size = 512, .avg_size = 2048, .max_size = 8192};
}

TEST(Cdc, ChunksCoverBufferExactly) {
  const Bytes data = RandomBytes(100000, 1);
  const auto chunks = ChunkBuffer(data, TestConfig());
  ASSERT_FALSE(chunks.empty());
  std::uint64_t expected = 0;
  for (const CdcChunk& chunk : chunks) {
    EXPECT_EQ(chunk.offset, expected);
    expected += chunk.length;
  }
  EXPECT_EQ(expected, data.size());
}

TEST(Cdc, SizeBoundsRespected) {
  const Bytes data = RandomBytes(300000, 2);
  const CdcConfig config = TestConfig();
  const auto chunks = ChunkBuffer(data, config);
  for (std::size_t i = 0; i + 1 < chunks.size(); ++i) {  // tail may be short
    EXPECT_GE(chunks[i].length, config.min_size);
    EXPECT_LE(chunks[i].length, config.max_size);
  }
}

TEST(Cdc, AverageChunkSizeNearTarget) {
  const Bytes data = RandomBytes(4 << 20, 3);
  const CdcConfig config = TestConfig();
  const auto chunks = ChunkBuffer(data, config);
  const double mean =
      static_cast<double>(data.size()) / static_cast<double>(chunks.size());
  // min-size skipping pushes the effective average above avg_size.
  EXPECT_GT(mean, config.avg_size * 0.8);
  EXPECT_LT(mean, config.avg_size * 3.0);
}

TEST(Cdc, Deterministic) {
  const Bytes data = RandomBytes(50000, 4);
  const auto a = ChunkBuffer(data, TestConfig());
  const auto b = ChunkBuffer(data, TestConfig());
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].offset, b[i].offset);
    EXPECT_EQ(a[i].length, b[i].length);
  }
}

TEST(Cdc, BoundariesResynchronizeAfterInsertion) {
  // The defining CDC property: inserting bytes near the start shifts data,
  // yet most chunk *contents* reappear (fixed-size chunking loses them all).
  const Bytes original = RandomBytes(1 << 20, 5);
  Bytes shifted;
  const Bytes insert = RandomBytes(37, 6);
  shifted.insert(shifted.end(), insert.begin(), insert.end());
  shifted.insert(shifted.end(), original.begin(), original.end());

  auto chunk_hashes = [&](const Bytes& data) {
    std::vector<std::uint64_t> hashes;
    for (const CdcChunk& chunk : ChunkBuffer(data, TestConfig())) {
      hashes.push_back(
          util::FastHash128(util::ByteSpan(data.data() + chunk.offset,
                                           chunk.length))
              .lo);
    }
    return hashes;
  };
  const auto ha = chunk_hashes(original);
  const auto hb = chunk_hashes(shifted);
  std::size_t shared = 0;
  const std::unordered_set<std::uint64_t> set_a(ha.begin(), ha.end());
  for (std::uint64_t h : hb) shared += set_a.contains(h);
  EXPECT_GT(static_cast<double>(shared) / static_cast<double>(hb.size()), 0.9);
}

TEST(Cdc, MaxSizeForcesBoundaryOnConstantData) {
  // Constant data never matches the boundary mask (same gear value every
  // byte); max_size must cap chunk growth.
  Bytes data(100000, 0x41);
  const CdcConfig config = TestConfig();
  const auto chunks = ChunkBuffer(data, config);
  for (std::size_t i = 0; i + 1 < chunks.size(); ++i) {
    EXPECT_EQ(chunks[i].length, config.max_size);
  }
}

TEST(Cdc, InvalidConfigRejected) {
  const Bytes data = RandomBytes(1000, 7);
  EXPECT_THROW(ChunkBuffer(data, {.min_size = 0, .avg_size = 2048, .max_size = 8192}),
               std::invalid_argument);
  EXPECT_THROW(ChunkBuffer(data, {.min_size = 4096, .avg_size = 2048, .max_size = 8192}),
               std::invalid_argument);
  EXPECT_THROW(ChunkBuffer(data, {.min_size = 512, .avg_size = 3000, .max_size = 8192}),
               std::invalid_argument);  // not a power of two
}

TEST(Cdc, SourceChunkingMatchesBufferChunking) {
  const Bytes data = RandomBytes(10 << 20, 8);  // spans several windows
  BufferSource source(data);
  const auto via_source = ChunkSource(source, TestConfig());
  const auto via_buffer = ChunkBuffer(data, TestConfig());
  ASSERT_EQ(via_source.size(), via_buffer.size());
  for (std::size_t i = 0; i < via_source.size(); ++i) {
    EXPECT_EQ(via_source[i].offset, via_buffer[i].offset) << i;
    EXPECT_EQ(via_source[i].length, via_buffer[i].length) << i;
  }
}

TEST(CdcAnalyzer, IdenticalFilesFullySimilar) {
  const Bytes content = RandomBytes(256 * 1024, 9);
  CdcAnalyzer analyzer(TestConfig());
  BufferSource a(content), b(content);
  analyzer.AddFile(a);
  analyzer.AddFile(b);
  const auto result = analyzer.Finish();
  EXPECT_DOUBLE_EQ(result.cross_similarity(), 1.0);
  EXPECT_DOUBLE_EQ(result.dedup_ratio(), 2.0);
  EXPECT_GT(result.mean_chunk_size, 0.0);
}

TEST(CdcAnalyzer, ShiftedContentStillDeduplicates) {
  // Fixed-size chunking at 2 KiB finds no duplicates between a buffer and
  // its 37-byte-shifted copy; CDC recovers most of them.
  const Bytes original = RandomBytes(1 << 20, 10);
  Bytes shifted = RandomBytes(37, 11);
  shifted.insert(shifted.end(), original.begin(), original.end());
  CdcAnalyzer analyzer(TestConfig());
  BufferSource a(original), b(shifted);
  analyzer.AddFile(a);
  analyzer.AddFile(b);
  const auto result = analyzer.Finish();
  EXPECT_GT(result.cross_similarity(), 0.85);
  EXPECT_GT(result.dedup_ratio(), 1.8);
}

}  // namespace
}  // namespace squirrel::store
