#include "store/dedup_analysis.h"

#include <gtest/gtest.h>

#include "compress/codec.h"
#include "util/rng.h"

namespace squirrel::store {
namespace {

using util::Bytes;

/// In-memory DataSource over a fixed buffer.
class BufferSource final : public util::DataSource {
 public:
  explicit BufferSource(Bytes data) : data_(std::move(data)) {}
  std::uint64_t size() const override { return data_.size(); }
  void Read(std::uint64_t offset, util::MutableByteSpan out) const override {
    std::copy_n(data_.begin() + static_cast<std::ptrdiff_t>(offset), out.size(),
                out.begin());
  }

 private:
  Bytes data_;
};

Bytes RandomBytes(std::size_t size, std::uint64_t seed) {
  Bytes data(size);
  util::Rng(seed).Fill(data);
  return data;
}

TEST(DedupAnalyzer, IdenticalFilesCrossSimilarityOne) {
  const Bytes content = RandomBytes(64 * 1024, 1);
  DedupAnalyzer analyzer({.block_size = 4096, .codec = nullptr});
  for (int i = 0; i < 3; ++i) {
    BufferSource file(content);
    analyzer.AddFile(file);
  }
  const AnalysisResult result = analyzer.Finish();
  EXPECT_DOUBLE_EQ(result.cross_similarity(), 1.0);
  EXPECT_EQ(result.unique_blocks, 16u);
  EXPECT_EQ(result.nonzero_blocks, 48u);
  EXPECT_DOUBLE_EQ(result.dedup_ratio(), 3.0);
}

TEST(DedupAnalyzer, DisjointFilesCrossSimilarityZero) {
  DedupAnalyzer analyzer({.block_size = 4096, .codec = nullptr});
  for (int i = 0; i < 3; ++i) {
    BufferSource file(RandomBytes(64 * 1024, 100 + i));
    analyzer.AddFile(file);
  }
  const AnalysisResult result = analyzer.Finish();
  EXPECT_DOUBLE_EQ(result.cross_similarity(), 0.0);
  EXPECT_DOUBLE_EQ(result.dedup_ratio(), 1.0);
}

TEST(DedupAnalyzer, ZeroBlocksAreNotCounted) {
  Bytes content(16 * 4096, 0);
  // Two nonzero blocks among 16.
  content[0] = 1;
  content[5 * 4096] = 2;
  DedupAnalyzer analyzer({.block_size = 4096, .codec = nullptr});
  BufferSource file(content);
  analyzer.AddFile(file);
  const AnalysisResult result = analyzer.Finish();
  EXPECT_EQ(result.nonzero_blocks, 2u);
  EXPECT_EQ(result.zero_blocks, 14u);
  EXPECT_EQ(result.unique_blocks, 2u);
}

TEST(DedupAnalyzer, WithinFileDuplicationCountsForDedupNotSimilarity) {
  // One file consisting of the same block repeated: dedup ratio high,
  // cross-similarity zero (repetition only counts across files).
  Bytes block = RandomBytes(4096, 7);
  Bytes content;
  for (int i = 0; i < 8; ++i) content.insert(content.end(), block.begin(), block.end());
  DedupAnalyzer analyzer({.block_size = 4096, .codec = nullptr});
  BufferSource file(content);
  analyzer.AddFile(file);
  const AnalysisResult result = analyzer.Finish();
  EXPECT_DOUBLE_EQ(result.dedup_ratio(), 8.0);
  EXPECT_DOUBLE_EQ(result.cross_similarity(), 0.0);
}

TEST(DedupAnalyzer, PartialOverlapSimilarityMatchesFormula) {
  // Two files, each 4 blocks, sharing exactly 2 blocks.
  const Bytes shared1 = RandomBytes(4096, 11);
  const Bytes shared2 = RandomBytes(4096, 12);
  auto make_file = [&](std::uint64_t unique_seed) {
    Bytes content;
    content.insert(content.end(), shared1.begin(), shared1.end());
    content.insert(content.end(), shared2.begin(), shared2.end());
    const Bytes unique1 = RandomBytes(4096, unique_seed);
    const Bytes unique2 = RandomBytes(4096, unique_seed + 1);
    content.insert(content.end(), unique1.begin(), unique1.end());
    content.insert(content.end(), unique2.begin(), unique2.end());
    return content;
  };
  DedupAnalyzer analyzer({.block_size = 4096, .codec = nullptr});
  BufferSource a(make_file(1000)), b(make_file(2000));
  analyzer.AddFile(a);
  analyzer.AddFile(b);
  const AnalysisResult result = analyzer.Finish();
  // repetition: 2 shared blocks x 2 files = 4; denominator: 4 + 4 = 8.
  EXPECT_DOUBLE_EQ(result.cross_similarity(), 0.5);
  // |N| = 8 nonzero, |U| = 6 unique.
  EXPECT_DOUBLE_EQ(result.dedup_ratio(), 8.0 / 6.0);
}

TEST(DedupAnalyzer, CompressionRatioOnKnownContent) {
  // Constant bytes compress extremely well; ratio must be >> 1.
  Bytes content(32 * 4096, 'x');
  DedupAnalyzer analyzer(
      {.block_size = 4096, .codec = compress::FindCodec("gzip6")});
  BufferSource file(content);
  analyzer.AddFile(file);
  const AnalysisResult result = analyzer.Finish();
  EXPECT_GT(result.compression_ratio(), 10.0);
  EXPECT_GT(result.probed_blocks, 0u);
  EXPECT_NEAR(result.ccr(),
              result.dedup_ratio() * result.compression_ratio(), 1e-9);
}

TEST(DedupAnalyzer, IncompressibleContentRatioNearOne) {
  DedupAnalyzer analyzer(
      {.block_size = 4096, .codec = compress::FindCodec("gzip6")});
  BufferSource file(RandomBytes(64 * 4096, 31));
  analyzer.AddFile(file);
  const AnalysisResult result = analyzer.Finish();
  EXPECT_GT(result.compression_ratio(), 0.9);
  EXPECT_LT(result.compression_ratio(), 1.1);
}

TEST(DedupAnalyzer, SamplingCapKeepsEstimateStable) {
  // Same dataset analyzed with a tiny probe budget and with no cap: the
  // sampled compression ratio must stay close to the exhaustive one.
  Bytes content;
  util::Rng rng(17);
  for (int b = 0; b < 256; ++b) {
    Bytes block(4096);
    if (b % 2 == 0) {
      rng.Fill(block);  // incompressible half
    } else {
      std::fill(block.begin(), block.end(), static_cast<util::Byte>(b));
    }
    content.insert(content.end(), block.begin(), block.end());
  }
  AnalysisConfig capped{.block_size = 4096,
                        .codec = compress::FindCodec("gzip6"),
                        .probe_sample_bytes = 256 * 1024};
  AnalysisConfig full{.block_size = 4096,
                      .codec = compress::FindCodec("gzip6"),
                      .probe_sample_bytes = 0};
  DedupAnalyzer a(capped), b(full);
  BufferSource f1(content), f2(content);
  a.AddFile(f1);
  b.AddFile(f2);
  const double sampled = a.Finish().compression_ratio();
  const double exact = b.Finish().compression_ratio();
  EXPECT_NEAR(sampled, exact, exact * 0.25);
}

TEST(DedupAnalyzer, TailBlockSmallerThanBlockSize) {
  // File size not a multiple of the block size: the tail is analyzed as a
  // short block without crashing.
  Bytes content = RandomBytes(4096 * 3 + 100, 23);
  DedupAnalyzer analyzer({.block_size = 4096, .codec = nullptr});
  BufferSource file(content);
  analyzer.AddFile(file);
  const AnalysisResult result = analyzer.Finish();
  EXPECT_EQ(result.nonzero_blocks, 4u);
  EXPECT_EQ(result.logical_bytes, content.size());
}

}  // namespace
}  // namespace squirrel::store
