#include <gtest/gtest.h>

#include "util/rng.h"
#include "zvol/volume.h"

namespace squirrel::zvol {
namespace {

using util::Bytes;

class BufferSource final : public util::DataSource {
 public:
  explicit BufferSource(Bytes data) : data_(std::move(data)) {}
  std::uint64_t size() const override { return data_.size(); }
  void Read(std::uint64_t offset, util::MutableByteSpan out) const override {
    std::copy_n(data_.begin() + static_cast<std::ptrdiff_t>(offset), out.size(),
                out.begin());
  }

 private:
  Bytes data_;
};

Bytes RandomBytes(std::size_t size, std::uint64_t seed) {
  Bytes data(size);
  util::Rng(seed).Fill(data);
  return data;
}

VolumeConfig SmallConfig() {
  return VolumeConfig{.block_size = 4096, .codec = compress::CodecId::kNull, .dedup = true};
}

TEST(Snapshot, IdsIncreaseAndNamesResolve) {
  Volume volume(SmallConfig());
  volume.CreateFile("f", 4096);
  const Snapshot& s1 = volume.CreateSnapshot("one", 100);
  const Snapshot& s2 = volume.CreateSnapshot("two", 200);
  EXPECT_LT(s1.id, s2.id);
  EXPECT_EQ(volume.FindSnapshot("one")->created_at, 100u);
  EXPECT_EQ(volume.LatestSnapshot()->name, "two");
  EXPECT_EQ(volume.FindSnapshot("missing"), nullptr);
}

TEST(Snapshot, DuplicateNameRejected) {
  Volume volume(SmallConfig());
  volume.CreateSnapshot("snap", 1);
  EXPECT_THROW(volume.CreateSnapshot("snap", 2), std::invalid_argument);
}

TEST(Snapshot, PinsBlocksAgainstDeletion) {
  Volume volume(SmallConfig());
  volume.WriteFile("f", BufferSource(RandomBytes(8 * 4096, 1)));
  volume.CreateSnapshot("snap", 1);
  volume.DeleteFile("f");
  // Blocks still referenced by the snapshot.
  EXPECT_EQ(volume.Stats().unique_blocks, 8u);
  volume.DestroySnapshot("snap");
  EXPECT_EQ(volume.Stats().unique_blocks, 0u);
}

TEST(Snapshot, ImmutableUnderOverwrite) {
  Volume volume(SmallConfig());
  const Bytes v1 = RandomBytes(4 * 4096, 2);
  volume.WriteFile("f", BufferSource(v1));
  volume.CreateSnapshot("snap", 1);
  volume.WriteFile("f", BufferSource(RandomBytes(4 * 4096, 3)));
  // Live file changed; snapshot still references the old blocks (both
  // versions resident).
  EXPECT_EQ(volume.Stats().unique_blocks, 8u);
  const Snapshot* snap = volume.FindSnapshot("snap");
  ASSERT_NE(snap, nullptr);
  const FileMeta& meta = snap->files.at("f");
  EXPECT_EQ(meta.blocks.size(), 4u);
}

TEST(Snapshot, DestroyUnknownThrows) {
  Volume volume(SmallConfig());
  EXPECT_THROW(volume.DestroySnapshot("nope"), NoSuchSnapshotError);
}

TEST(Snapshot, PruneKeepsRetentionWindowAndLatest) {
  Volume volume(SmallConfig());
  volume.CreateFile("f", 4096);
  volume.CreateSnapshot("day1", 1 * 86400);
  volume.CreateSnapshot("day2", 2 * 86400);
  volume.CreateSnapshot("day5", 5 * 86400);
  volume.CreateSnapshot("day9", 9 * 86400);
  // Retention n = 3 days at now = day 10: day1/day2/day5 are stale,
  // day9 is within the window.
  const std::size_t destroyed = volume.PruneSnapshots(3 * 86400, 10 * 86400);
  EXPECT_EQ(destroyed, 3u);
  EXPECT_EQ(volume.snapshots().size(), 1u);
  EXPECT_EQ(volume.LatestSnapshot()->name, "day9");
}

TEST(Snapshot, PruneAlwaysKeepsLatestEvenIfStale) {
  Volume volume(SmallConfig());
  volume.CreateSnapshot("ancient1", 100);
  volume.CreateSnapshot("ancient2", 200);
  const std::size_t destroyed =
      volume.PruneSnapshots(/*retention=*/10, /*now=*/1000000);
  EXPECT_EQ(destroyed, 1u);
  EXPECT_EQ(volume.LatestSnapshot()->name, "ancient2");
}

TEST(Snapshot, PruneReleasesDeadReferences) {
  Volume volume(SmallConfig());
  volume.WriteFile("dead", BufferSource(RandomBytes(4 * 4096, 4)));
  volume.CreateSnapshot("old", 100);
  volume.DeleteFile("dead");
  volume.WriteFile("live", BufferSource(RandomBytes(4 * 4096, 5)));
  volume.CreateSnapshot("new", 2000000);
  EXPECT_EQ(volume.Stats().unique_blocks, 8u);
  volume.PruneSnapshots(/*retention=*/10, /*now=*/3000000);
  // "old" destroyed -> the deregistered file's blocks are finally freed.
  EXPECT_EQ(volume.Stats().unique_blocks, 4u);
}

TEST(Snapshot, GcNeverFreesLiveReferencedBlocks) {
  Volume volume(SmallConfig());
  const Bytes content = RandomBytes(8 * 4096, 6);
  volume.WriteFile("f", BufferSource(content));
  volume.CreateSnapshot("s1", 1);
  volume.CreateSnapshot("s2", 2);
  volume.PruneSnapshots(0, 1 << 20);
  // All snapshots but the latest destroyed; live file intact.
  EXPECT_EQ(volume.ReadRange("f", 0, content.size()), content);
}

}  // namespace
}  // namespace squirrel::zvol
