// Crash-consistency, disk-full, and Byzantine-peer fault model
// (DESIGN.md §15): crash-at-every-site sweeps over the transactional
// Receive paths, disk-full unwind with space-map invariants, and
// RepairSession blacklisting of peers that serve wrong payloads.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "store/block_store.h"
#include "store/space_map.h"
#include "store_invariants.h"
#include "util/fault_injector.h"
#include "util/rng.h"
#include "zvol/volume.h"

namespace squirrel::zvol {
namespace {

using util::Bytes;

class BufferSource final : public util::DataSource {
 public:
  explicit BufferSource(const Bytes& data) : data_(&data) {}
  std::uint64_t size() const override { return data_->size(); }
  void Read(std::uint64_t offset, util::MutableByteSpan out) const override {
    std::copy_n(data_->begin() + static_cast<std::ptrdiff_t>(offset),
                out.size(), out.begin());
  }

 private:
  const Bytes* data_;
};

constexpr std::uint32_t kBlock = 4096;

/// Per-block mixed content: random, low-entropy (dedup/compress-prone), and
/// zero (hole) blocks, deterministic per seed.
Bytes MixedContent(std::size_t blocks, std::uint64_t seed) {
  util::Rng rng(seed);
  Bytes content(blocks * kBlock, 0);
  for (std::size_t b = 0; b < blocks; ++b) {
    util::MutableByteSpan chunk(content.data() + b * kBlock, kBlock);
    switch (rng.Below(4)) {
      case 0:
        break;  // hole
      case 1:
        std::fill(chunk.begin(), chunk.end(),
                  static_cast<util::Byte>(rng.Below(4) + 1));
        break;
      default:
        rng.Fill(chunk);
    }
  }
  return content;
}

Bytes RandomBytes(std::size_t size, std::uint64_t seed) {
  Bytes data(size);
  util::Rng(seed).Fill(data);
  return data;
}

/// Donor-derived streams the sweeps replay: a full stream to s1, the
/// incremental diff s1 -> s2 (with a deletion, a modification, and a new
/// file), and a full stream to s2 (ReceiveFull input).
struct DonorStreams {
  VolumeConfig config;
  SendStream full_s1;
  SendStream incr_s2;
  SendStream full_s2;
};

DonorStreams MakeDonorStreams(std::size_t shards) {
  DonorStreams d;
  d.config = VolumeConfig{.block_size = kBlock,
                          .codec = compress::CodecId::kGzip1,
                          .dedup = true};
  d.config.shards = shards;
  Volume donor(d.config);
  // "a" and "c" share their first block, so the s1 -> s2 diff carries that
  // block of "c" by reference (reachable from s1) — exercising the Ref path
  // of the apply alongside the carried-payload path.
  const Bytes shared = RandomBytes(kBlock, 55);
  Bytes a = shared;
  const Bytes a_tail = MixedContent(5, 11);
  a.insert(a.end(), a_tail.begin(), a_tail.end());
  const Bytes b = MixedContent(4, 22);
  donor.WriteFile("a", BufferSource(a));
  donor.WriteFile("b", BufferSource(b));
  donor.CreateSnapshot("s1", 10);
  const Bytes patch = RandomBytes(2 * kBlock, 33);
  donor.WriteRange("a", kBlock, patch);
  donor.DeleteFile("b");
  Bytes c = shared;
  const Bytes c_tail = MixedContent(4, 44);
  c.insert(c.end(), c_tail.begin(), c_tail.end());
  donor.WriteFile("c", BufferSource(c));
  donor.CreateSnapshot("s2", 20);
  d.full_s1 = donor.Send("", "s1");
  d.incr_s2 = donor.Send("s1", "s2");
  d.full_s2 = donor.Send("", "s2");
  return d;
}

/// Arms a crash at every site in turn and re-delivers after each simulated
/// death until an attempt completes cleanly, asserting the volume's
/// invariants after every crash. Returns the number of crashes observed
/// (== the number of crash sites one clean delivery passes).
template <typename Deliver>
int RunCrashSweep(util::FaultInjector& faults, const Volume& volume,
                  Deliver deliver) {
  int crashes = 0;
  for (std::uint64_t nth = 0; nth < 1000; ++nth) {
    faults.ArmCrashAt(nth);
    bool crashed = false;
    try {
      deliver();
    } catch (const util::CrashError& e) {
      crashed = true;
      ++crashes;
      test::ExpectVolumeInvariants(volume,
                                   std::string("after crash at ") + e.site());
    }
    if (!crashed) {
      faults.DisarmCrash();
      return crashes;
    }
  }
  ADD_FAILURE() << "crash sweep did not terminate";
  faults.DisarmCrash();
  return crashes;
}

// --- crash-at-every-site sweeps ---------------------------------------------

class CrashSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(CrashSweep, FullStreamResumesOrRollsBack) {
  const DonorStreams d = MakeDonorStreams(GetParam());
  Volume reference(d.config);
  reference.Receive(d.full_s1);
  const Bytes expected = reference.Serialize();

  util::FaultInjector faults(0x5eed, util::FaultProfile{});
  Volume replica(d.config);
  replica.SetFaultInjector(&faults);
  const int crashes =
      RunCrashSweep(faults, replica, [&] { replica.Receive(d.full_s1); });
  EXPECT_GT(crashes, 3) << "sweep passed suspiciously few crash sites";
  EXPECT_EQ(static_cast<std::uint64_t>(crashes),
            faults.stats().crashes_injected);
  // Bit-identity to the never-crashed apply.
  EXPECT_EQ(replica.Serialize(), expected);
  test::ExpectVolumeInvariants(replica, "full sweep done");
}

TEST_P(CrashSweep, IncrementalStreamResumesOrRollsBack) {
  const DonorStreams d = MakeDonorStreams(GetParam());
  Volume reference(d.config);
  reference.Receive(d.full_s1);
  reference.Receive(d.incr_s2);
  const Bytes expected = reference.Serialize();

  util::FaultInjector faults(0x5eed, util::FaultProfile{});
  Volume replica(d.config);
  replica.SetFaultInjector(&faults);
  replica.Receive(d.full_s1);  // clean base; nothing armed yet
  const int crashes =
      RunCrashSweep(faults, replica, [&] { replica.Receive(d.incr_s2); });
  EXPECT_GT(crashes, 3);
  EXPECT_EQ(replica.Serialize(), expected);
  test::ExpectVolumeInvariants(replica, "incremental sweep done");
}

TEST_P(CrashSweep, ReceiveFullResumesOrRollsBack) {
  const DonorStreams d = MakeDonorStreams(GetParam());
  Volume reference(d.config);
  reference.Receive(d.full_s1);
  reference.ReceiveFull(d.full_s2);
  const Bytes expected = reference.Serialize();

  util::FaultInjector faults(0x5eed, util::FaultProfile{});
  Volume replica(d.config);
  replica.SetFaultInjector(&faults);
  replica.Receive(d.full_s1);
  // A crash between the drop and the commit leaves the replica empty — the
  // re-delivery must still converge (it applies into the empty volume).
  const int crashes =
      RunCrashSweep(faults, replica, [&] { replica.ReceiveFull(d.full_s2); });
  EXPECT_GT(crashes, 3);
  EXPECT_EQ(replica.Serialize(), expected);
  test::ExpectVolumeInvariants(replica, "receive_full sweep done");
}

INSTANTIATE_TEST_SUITE_P(Shards, CrashSweep, ::testing::Values(1, 16));

// --- targeted crash semantics ------------------------------------------------

TEST(Crash, RedeliveryAfterCommittedCrashIsIdempotent) {
  const DonorStreams d = MakeDonorStreams(1);
  // Count the crash sites one clean transactional apply passes.
  util::FaultInjector probe(0x5eed, util::FaultProfile{});
  Volume counter(d.config);
  counter.SetFaultInjector(&probe);
  probe.ArmCrashAt(std::uint64_t(-1));  // resets the position counter
  probe.DisarmCrash();
  counter.Receive(d.full_s1);
  const std::uint64_t sites = probe.crash_sites_passed();
  ASSERT_GT(sites, 0u);

  // The last site interrogated is "receive/committed" — past the commit
  // point. A crash there must leave the stream fully applied and the
  // re-delivery a no-op (not a StreamMismatchError).
  util::FaultInjector faults(0x5eed, util::FaultProfile{});
  Volume replica(d.config);
  replica.SetFaultInjector(&faults);
  faults.ArmCrashAt(sites - 1);
  try {
    replica.Receive(d.full_s1);
    FAIL() << "armed crash did not fire";
  } catch (const util::CrashError& e) {
    EXPECT_EQ(e.site(), "receive/committed");
  }
  ASSERT_NE(replica.LatestSnapshot(), nullptr);
  EXPECT_EQ(replica.LatestSnapshot()->name, d.full_s1.to_name);
  const Bytes committed = replica.Serialize();
  replica.Receive(d.full_s1);  // idempotent re-delivery
  EXPECT_EQ(replica.Serialize(), committed);
  test::ExpectVolumeInvariants(replica);
}

TEST(Crash, RollbackRestoresExactPreStreamState) {
  const DonorStreams d = MakeDonorStreams(1);
  util::FaultInjector faults(0x5eed, util::FaultProfile{});
  Volume replica(d.config);
  replica.SetFaultInjector(&faults);
  replica.Receive(d.full_s1);
  const Bytes before = replica.Serialize();
  // Crash early (site 1, inside the apply): everything must roll back.
  faults.ArmCrashAt(1);
  EXPECT_THROW(replica.Receive(d.incr_s2), util::CrashError);
  faults.DisarmCrash();
  EXPECT_EQ(replica.Serialize(), before);
  test::ExpectVolumeInvariants(replica);
}

TEST(Crash, ReceiveFullValidatesBeforeDropping) {
  // Regression: ReceiveFull used to wipe the volume (files + snapshots)
  // before validating the stream, so a mismatched or damaged stream
  // destroyed data it could never replace. Validation must come first.
  const DonorStreams d = MakeDonorStreams(1);
  Volume replica(d.config);
  replica.Receive(d.full_s1);
  const Bytes before = replica.Serialize();

  // Damaged carried payload — caught by the record checksum re-check.
  SendStream damaged = d.full_s2;
  bool flipped = false;
  for (auto& file : damaged.files) {
    for (auto& block : file.blocks) {
      if (block.has_payload && !block.payload.empty()) {
        block.payload[0] ^= 0xff;
        flipped = true;
        break;
      }
    }
    if (flipped) break;
  }
  ASSERT_TRUE(flipped);
  EXPECT_THROW(replica.ReceiveFull(damaged), Error);
  EXPECT_EQ(replica.Serialize(), before) << "damaged stream wiped the volume";

  // Wrong block size — rejected before anything is dropped.
  SendStream mismatched = d.full_s2;
  mismatched.block_size = d.config.block_size * 2;
  EXPECT_THROW(replica.ReceiveFull(mismatched), StreamMismatchError);
  EXPECT_EQ(replica.Serialize(), before) << "mismatched stream wiped the volume";
  test::ExpectVolumeInvariants(replica);
}

TEST(Crash, MidApplyStreamDamageRollsBackTransactionally) {
  // A stream that validates but references a block the replica does not
  // hold fails mid-apply; the transactional path must roll back fully
  // (the legacy path would leave a half-applied table).
  const DonorStreams d = MakeDonorStreams(1);
  util::FaultInjector faults(0x5eed, util::FaultProfile{});
  Volume replica(d.config);
  replica.SetFaultInjector(&faults);
  replica.Receive(d.full_s1);
  const Bytes before = replica.Serialize();

  SendStream bad = d.incr_s2;
  bool rewired = false;
  for (auto& file : bad.files) {
    for (auto& block : file.blocks) {
      if (!block.has_payload && !block.hole) {
        block.digest.bytes[0] ^= 0x01;  // now references an unknown block
        rewired = true;
        break;
      }
    }
    if (rewired) break;
  }
  ASSERT_TRUE(rewired) << "incremental stream carried no by-reference blocks";
  EXPECT_THROW(replica.Receive(bad), StreamCorruptError);
  EXPECT_EQ(replica.Serialize(), before);
  test::ExpectVolumeInvariants(replica);
}

// --- disk-full unwind --------------------------------------------------------

VolumeConfig TinyPoolConfig(std::uint64_t capacity_bytes) {
  VolumeConfig config{.block_size = kBlock,
                      .codec = compress::CodecId::kNull,
                      .dedup = true};
  config.shards = 1;  // one SpaceMap arena: exact capacity arithmetic
  config.capacity_bytes = capacity_bytes;
  return config;
}

TEST(DiskFull, WriteFileUnwindsPartialBatch) {
  // Pool fits 3 blocks. The second file's batch commits one block, then the
  // refused allocation must unwind it — no leaked refs or extents.
  Volume volume(TinyPoolConfig(3 * kBlock));
  const Bytes ok = RandomBytes(2 * kBlock, 1);
  volume.WriteFile("ok", BufferSource(ok));
  ASSERT_EQ(volume.block_store().space_map_stats().allocated_bytes,
            2 * kBlock);
  const Bytes big = RandomBytes(2 * kBlock, 2);
  EXPECT_THROW(volume.WriteFile("big", BufferSource(big)),
               store::NoSpaceError);
  EXPECT_FALSE(volume.HasFile("big"));
  EXPECT_EQ(volume.block_store().space_map_stats().allocated_bytes,
            2 * kBlock);
  EXPECT_EQ(volume.ReadRange("ok", 0, ok.size()), ok);
  test::ExpectVolumeInvariants(volume, "after refused WriteFile");
}

TEST(DiskFull, ReceiveRollsBackAndReportsRefusals) {
  VolumeConfig donor_config{.block_size = kBlock,
                            .codec = compress::CodecId::kNull,
                            .dedup = true};
  donor_config.shards = 1;
  Volume donor(donor_config);
  donor.WriteFile("a", BufferSource(RandomBytes(2 * kBlock, 3)));
  donor.CreateSnapshot("s1", 10);
  donor.WriteFile("huge", BufferSource(RandomBytes(6 * kBlock, 4)));
  donor.CreateSnapshot("s2", 20);

  // Capacity fits exactly s1; a capacity alone (no injector) must already
  // arm the transactional apply.
  Volume replica(TinyPoolConfig(2 * kBlock));
  replica.Receive(donor.Send("", "s1"));
  const Bytes before = replica.Serialize();
  {
    test::VolumeInvariantGuard guard(replica, "incremental overflow");
    EXPECT_THROW(replica.Receive(donor.Send("s1", "s2")),
                 store::NoSpaceError);
  }
  EXPECT_EQ(replica.Serialize(), before);
  ASSERT_NE(replica.LatestSnapshot(), nullptr);
  EXPECT_EQ(replica.LatestSnapshot()->name, "s1");

  // Same overflow with an injector armed: the refusal is counted.
  util::FaultInjector faults(0x5eed, util::FaultProfile{});
  Volume counted(TinyPoolConfig(2 * kBlock));
  counted.SetFaultInjector(&faults);
  counted.Receive(donor.Send("", "s1"));
  EXPECT_THROW(counted.Receive(donor.Send("s1", "s2")), store::NoSpaceError);
  EXPECT_GE(faults.stats().allocations_refused, 1u);
  test::ExpectVolumeInvariants(counted);
}

TEST(DiskFull, ScrubRepairSkipsAndReports) {
  // A torn write truncated one stored block; the pool then filled up. The
  // repair wants the block's full extent back, which no longer fits — the
  // scrub must skip-and-report, not abort, and the unwind must restore the
  // space map exactly.
  Volume volume(TinyPoolConfig(4 * kBlock));
  const Bytes content = RandomBytes(4 * kBlock, 5);
  volume.WriteFile("f", BufferSource(content));
  ASSERT_EQ(volume.block_store().space_map_stats().allocated_bytes,
            4 * kBlock);
  ASSERT_TRUE(volume.TruncateBlockForTesting("f", 0));
  // Fill the hole the truncation opened: 4096 - 512 = 3584 bytes, which is
  // sector-aligned, so the pool is exactly full again.
  volume.WriteFile("filler", BufferSource(RandomBytes(3584, 6)));
  ASSERT_EQ(volume.block_store().space_map_stats().allocated_bytes,
            4 * kBlock);

  Volume donor(TinyPoolConfig(0));
  donor.WriteFile("f", BufferSource(content));

  const auto report = volume.ScrubRepair(donor.block_store());
  EXPECT_EQ(report.errors_found, 1u);
  EXPECT_EQ(report.repaired, 0u);
  EXPECT_EQ(report.no_space_skips, 1u);
  EXPECT_EQ(report.unrepairable, 1u);
  EXPECT_EQ(volume.block_store().space_map_stats().allocated_bytes,
            4 * kBlock);
  test::ExpectVolumeInvariants(volume, "after skipped repair");

  // The session overload takes the same skip-and-report path.
  util::FaultInjector faults(7, util::FaultProfile{});
  RepairSession session({{0, &donor.block_store()}}, &faults);
  const auto session_report = volume.ScrubRepair(session);
  EXPECT_EQ(session_report.no_space_skips, 1u);
  EXPECT_EQ(session_report.unrepairable, 1u);
  test::ExpectVolumeInvariants(volume, "after skipped session repair");
}

TEST(DiskFull, CrashSweepUnderCapacityHoldsInvariants) {
  // Crash sweep with a capacity armed as well: every unwind (crash or
  // otherwise) must keep the space map consistent with the refcounts.
  const DonorStreams d = MakeDonorStreams(1);
  Volume reference(d.config);
  reference.Receive(d.full_s1);
  const Bytes expected = reference.Serialize();

  VolumeConfig capped = d.config;
  capped.capacity_bytes = 64 * kBlock;  // ample: capacity arms, never refuses
  util::FaultInjector faults(0x5eed, util::FaultProfile{});
  Volume replica(capped);
  replica.SetFaultInjector(&faults);
  const int crashes =
      RunCrashSweep(faults, replica, [&] { replica.Receive(d.full_s1); });
  EXPECT_GT(crashes, 3);
  EXPECT_EQ(replica.Serialize(), expected);
}

// --- Byzantine peers ---------------------------------------------------------

TEST(Byzantine, LyingPeerIsBlacklistedAndBlocksResourced) {
  VolumeConfig config{.block_size = kBlock,
                      .codec = compress::CodecId::kNull,
                      .dedup = true};
  const Bytes content = RandomBytes(8 * kBlock, 7);
  Volume local(config);
  local.WriteFile("f", BufferSource(content));
  Volume honest(config);
  honest.WriteFile("f", BufferSource(content));
  Volume liar(config);
  liar.WriteFile("f", BufferSource(content));

  for (std::uint64_t b = 0; b < 5; ++b) {
    ASSERT_TRUE(local.CorruptBlockForTesting("f", b));
  }

  // Every peer but id 0 is Byzantine; the liar (id 1) is consulted first.
  util::FaultInjector faults(9, util::FaultProfile{.byzantine_peer_rate = 1.0});
  ASSERT_TRUE(faults.PeerIsByzantine(1));
  RepairSession session({{1, &liar.block_store()}, {0, &honest.block_store()}},
                        &faults);
  const auto report = local.ScrubRepair(session);
  EXPECT_EQ(report.errors_found, 5u);
  EXPECT_EQ(report.repaired, 5u);
  EXPECT_EQ(report.unrepairable, 0u);
  // The liar serves wrong bytes for the first kStrikeLimit blocks, earning
  // a strike each; after blacklisting it is never consulted again.
  EXPECT_EQ(report.byzantine_rejected, RepairSession::kStrikeLimit);
  EXPECT_EQ(report.peers_blacklisted, 1u);
  EXPECT_EQ(report.resourced_blocks, RepairSession::kStrikeLimit);
  // Every served lie was detected — none accepted.
  EXPECT_EQ(faults.stats().byzantine_served, RepairSession::kStrikeLimit);
  EXPECT_EQ(faults.stats().byzantine_detected,
            faults.stats().byzantine_served);

  EXPECT_EQ(local.Scrub().errors, 0u);
  EXPECT_EQ(local.ReadRange("f", 0, content.size()), content);
  test::ExpectVolumeInvariants(local);
}

TEST(Byzantine, DegradedReadHealsThroughSession) {
  VolumeConfig config{.block_size = kBlock,
                      .codec = compress::CodecId::kNull,
                      .dedup = true};
  const Bytes content = RandomBytes(4 * kBlock, 8);
  Volume local(config);
  local.WriteFile("f", BufferSource(content));
  Volume honest(config);
  honest.WriteFile("f", BufferSource(content));
  Volume liar(config);
  liar.WriteFile("f", BufferSource(content));
  ASSERT_TRUE(local.CorruptBlockForTesting("f", 0));

  util::FaultInjector faults(9, util::FaultProfile{.byzantine_peer_rate = 1.0});
  RepairSession session({{1, &liar.block_store()}, {0, &honest.block_store()}},
                        &faults);
  std::uint64_t fetched = 0;
  const Bytes read =
      local.ReadRangeRepair("f", 0, content.size(), session, &fetched);
  EXPECT_EQ(read, content);
  // The lie's bytes crossed the wire too, then the honest copy.
  EXPECT_GE(fetched, 2u * kBlock);
  EXPECT_EQ(session.resourced_blocks(), 1u);
  EXPECT_EQ(session.byzantine_rejected(), 1u);
  EXPECT_EQ(session.peers_blacklisted(), 0u);  // one strike < limit
  test::ExpectVolumeInvariants(local);
}

TEST(Byzantine, AllPeersLyingFailsClosed) {
  VolumeConfig config{.block_size = kBlock,
                      .codec = compress::CodecId::kNull,
                      .dedup = true};
  const Bytes content = RandomBytes(2 * kBlock, 9);
  Volume local(config);
  local.WriteFile("f", BufferSource(content));
  Volume liar_a(config);
  liar_a.WriteFile("f", BufferSource(content));
  Volume liar_b(config);
  liar_b.WriteFile("f", BufferSource(content));
  ASSERT_TRUE(local.CorruptBlockForTesting("f", 0));

  util::FaultInjector faults(9, util::FaultProfile{.byzantine_peer_rate = 1.0});
  RepairSession session(
      {{1, &liar_a.block_store()}, {2, &liar_b.block_store()}}, &faults);
  // No honest peer: the read must fail closed (typed corruption error, no
  // wrong bytes accepted), with both lies rejected by the digest check.
  EXPECT_THROW(local.ReadRangeRepair("f", 0, content.size(), session),
               store::BlockCorruptionError);
  EXPECT_EQ(session.byzantine_rejected(), 2u);
  EXPECT_EQ(faults.stats().byzantine_detected, 2u);
  test::ExpectVolumeInvariants(local);
}

TEST(Byzantine, UnavailablePeerIsNotStruck) {
  VolumeConfig config{.block_size = kBlock,
                      .codec = compress::CodecId::kNull,
                      .dedup = true};
  const Bytes content = RandomBytes(2 * kBlock, 10);
  Volume local(config);
  local.WriteFile("f", BufferSource(content));
  Volume empty(config);  // honest but holds nothing
  Volume honest(config);
  honest.WriteFile("f", BufferSource(content));
  for (std::uint64_t b = 0; b < 2; ++b) {
    ASSERT_TRUE(local.CorruptBlockForTesting("f", b));
  }

  // No Byzantine schedule at all: the empty peer simply lacks the blocks.
  RepairSession session({{1, &empty.block_store()}, {0, &honest.block_store()}},
                        nullptr);
  const auto report = local.ScrubRepair(session);
  EXPECT_EQ(report.repaired, 2u);
  EXPECT_EQ(report.byzantine_rejected, 0u);
  EXPECT_EQ(report.peers_blacklisted, 0u);  // unavailability is not a lie
  EXPECT_EQ(report.resourced_blocks, 0u);   // nothing was served wrong first
  test::ExpectVolumeInvariants(local);
}

}  // namespace
}  // namespace squirrel::zvol
