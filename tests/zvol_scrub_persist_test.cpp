// Scrub (integrity verification) and persistence (serialize/deserialize)
// tests, including corruption injection.
#include <gtest/gtest.h>

#include "util/rng.h"
#include "zvol/volume.h"

namespace squirrel::zvol {
namespace {

using util::Bytes;

class BufferSource final : public util::DataSource {
 public:
  explicit BufferSource(Bytes data) : data_(std::move(data)) {}
  std::uint64_t size() const override { return data_.size(); }
  void Read(std::uint64_t offset, util::MutableByteSpan out) const override {
    std::copy_n(data_.begin() + static_cast<std::ptrdiff_t>(offset), out.size(),
                out.begin());
  }

 private:
  Bytes data_;
};

Bytes RandomBytes(std::size_t size, std::uint64_t seed) {
  Bytes data(size);
  util::Rng(seed).Fill(data);
  return data;
}

Bytes TextBytes(std::size_t size, std::uint64_t seed) {
  Bytes data(size);
  util::Rng rng(seed);
  for (auto& b : data) b = static_cast<util::Byte>('a' + rng.Below(5));
  return data;
}

VolumeConfig SmallConfig(compress::CodecId codec = compress::CodecId::kGzip6) {
  return VolumeConfig{.block_size = 4096, .codec = codec, .dedup = true};
}

TEST(Scrub, CleanVolumePasses) {
  Volume volume(SmallConfig());
  volume.WriteFile("a", BufferSource(RandomBytes(16 * 4096, 1)));
  volume.WriteFile("b", BufferSource(TextBytes(16 * 4096, 2)));
  volume.CreateSnapshot("snap", 1);
  const auto report = volume.Scrub();
  EXPECT_EQ(report.errors, 0u);
  EXPECT_EQ(report.dangling_refs, 0u);
  EXPECT_EQ(report.blocks_checked, volume.Stats().unique_blocks);
}

TEST(Scrub, DetectsCorruptedRawBlock) {
  Volume volume(SmallConfig(compress::CodecId::kNull));
  volume.WriteFile("f", BufferSource(RandomBytes(8 * 4096, 3)));
  ASSERT_TRUE(volume.CorruptBlockForTesting("f", 2));
  const auto report = volume.Scrub();
  EXPECT_EQ(report.errors, 1u);
}

TEST(Scrub, DetectsCorruptedCompressedBlock) {
  Volume volume(SmallConfig(compress::CodecId::kGzip6));
  volume.WriteFile("f", BufferSource(TextBytes(8 * 4096, 4)));
  ASSERT_TRUE(volume.CorruptBlockForTesting("f", 0));
  const auto report = volume.Scrub();
  EXPECT_GE(report.errors, 1u);
}

TEST(Scrub, CorruptingHoleFails) {
  Volume volume(SmallConfig());
  Bytes sparse(4 * 4096, 0);
  sparse[0] = 1;
  volume.WriteFile("f", BufferSource(sparse));
  EXPECT_FALSE(volume.CorruptBlockForTesting("f", 1));  // hole
  EXPECT_FALSE(volume.CorruptBlockForTesting("missing", 0));
}

TEST(Scrub, FastHashMode) {
  Volume volume(VolumeConfig{.block_size = 4096, .codec = compress::CodecId::kNull,
                             .dedup = true, .fast_hash = true});
  volume.WriteFile("f", BufferSource(RandomBytes(8 * 4096, 5)));
  EXPECT_EQ(volume.Scrub().errors, 0u);
  ASSERT_TRUE(volume.CorruptBlockForTesting("f", 1));
  EXPECT_EQ(volume.Scrub().errors, 1u);
}

TEST(Persist, RoundTripPreservesEverything) {
  Volume volume(SmallConfig());
  const Bytes a = RandomBytes(10 * 4096, 6);
  Bytes sparse(8 * 4096, 0);
  sparse[4096 + 7] = 9;
  volume.WriteFile("a", BufferSource(a));
  volume.WriteFile("sparse", BufferSource(sparse));
  volume.CreateSnapshot("s1", 100);
  volume.DeleteFile("a");
  volume.WriteFile("b", BufferSource(TextBytes(6 * 4096, 7)));
  volume.CreateSnapshot("s2", 200);

  const util::Bytes image = volume.Serialize();
  const auto restored = Volume::Deserialize(image);

  // Live state.
  EXPECT_EQ(restored->FileNames(), volume.FileNames());
  for (const std::string& name : volume.FileNames()) {
    EXPECT_EQ(restored->ReadRange(name, 0, restored->FileSize(name)),
              volume.ReadRange(name, 0, volume.FileSize(name)));
  }
  // Snapshots.
  ASSERT_EQ(restored->snapshots().size(), 2u);
  EXPECT_EQ(restored->FindSnapshot("s1")->id, volume.FindSnapshot("s1")->id);
  EXPECT_EQ(restored->FindSnapshot("s2")->created_at, 200u);
  // Deleted file still reachable through s1 on the restored volume.
  const Snapshot* s1 = restored->FindSnapshot("s1");
  EXPECT_TRUE(s1->files.contains("a"));
  // Accounting matches.
  EXPECT_EQ(restored->Stats().unique_blocks, volume.Stats().unique_blocks);
  EXPECT_EQ(restored->Stats().logical_file_bytes,
            volume.Stats().logical_file_bytes);
  // Snapshot ids continue from where they left off.
  restored->CreateSnapshot("s3", 300);
  EXPECT_GT(restored->FindSnapshot("s3")->id, volume.FindSnapshot("s2")->id);
  // A scrub of the restored volume is clean.
  EXPECT_EQ(restored->Scrub().errors, 0u);
}

TEST(Persist, RoundTripWithoutDedup) {
  Volume volume(VolumeConfig{.block_size = 4096, .codec = compress::CodecId::kNull, .dedup = false});
  const Bytes content = RandomBytes(8 * 4096, 8);
  volume.WriteFile("f", BufferSource(content));
  volume.WriteFile("g", BufferSource(content));  // same bytes, separate blocks
  const auto restored = Volume::Deserialize(volume.Serialize());
  EXPECT_EQ(restored->ReadRange("f", 0, content.size()), content);
  EXPECT_EQ(restored->ReadRange("g", 0, content.size()), content);
  EXPECT_EQ(restored->Stats().unique_blocks, 16u);
}

TEST(Persist, CorruptedImageRejected) {
  Volume volume(SmallConfig());
  volume.WriteFile("f", BufferSource(RandomBytes(4 * 4096, 9)));
  util::Bytes image = volume.Serialize();
  image[image.size() / 2] ^= 1;
  EXPECT_THROW(Volume::Deserialize(image), std::runtime_error);
  image = volume.Serialize();
  image.resize(image.size() - 10);
  EXPECT_THROW(Volume::Deserialize(image), std::runtime_error);
  EXPECT_THROW(Volume::Deserialize(util::Bytes(8, 0)), std::runtime_error);
}

TEST(Persist, ReceiveWorksOnRestoredVolume) {
  // A restored replica can keep applying incremental streams: snapshot
  // identity survives the round trip.
  Volume source(SmallConfig());
  source.WriteFile("a", BufferSource(RandomBytes(6 * 4096, 10)));
  source.CreateSnapshot("s1", 100);
  Volume replica(SmallConfig());
  replica.Receive(source.Send("", "s1"));

  const auto restored = Volume::Deserialize(replica.Serialize());
  source.WriteFile("b", BufferSource(RandomBytes(6 * 4096, 11)));
  source.CreateSnapshot("s2", 200);
  restored->Receive(source.Send("s1", "s2"));
  EXPECT_TRUE(restored->HasFile("b"));
}

}  // namespace
}  // namespace squirrel::zvol
