// Determinism of the batch read pipeline: GetBatch, the decompressed-block
// ARC, cluster readahead and the batched Scrub/Send/RMW consumers must be
// bit-identical to the serial reference path — same payloads in the same
// order AND the same cache hit/miss counters — at every thread count and
// cache size, including cache_bytes = 0.
#include <gtest/gtest.h>

#include <vector>

#include "util/rng.h"
#include "zvol/volume.h"

namespace squirrel::zvol {
namespace {

using util::Bytes;

class BufferSource final : public util::DataSource {
 public:
  explicit BufferSource(Bytes data) : data_(std::move(data)) {}
  std::uint64_t size() const override { return data_.size(); }
  void Read(std::uint64_t offset, util::MutableByteSpan out) const override {
    std::copy_n(data_.begin() + static_cast<std::ptrdiff_t>(offset), out.size(),
                out.begin());
  }

 private:
  Bytes data_;
};

constexpr std::uint32_t kBlockSize = 4096;

/// Same randomized block mix as the ingest suite: ~25% holes, ~25% intra-file
/// duplicates, ~25% incompressible random, ~25% compressible text, plus a
/// partial tail block.
Bytes MixedContent(std::size_t blocks, std::uint64_t seed) {
  util::Rng rng(seed);
  Bytes data(blocks * kBlockSize + kBlockSize / 3);
  for (std::size_t b = 0; b < blocks; ++b) {
    util::MutableByteSpan block(data.data() + b * kBlockSize, kBlockSize);
    switch (rng.Below(4)) {
      case 0:  // hole
        break;
      case 1:  // duplicate of an earlier block (dedup hit), if any
        if (b > 0) {
          const std::size_t src = rng.Below(static_cast<std::uint32_t>(b));
          std::copy_n(data.begin() + static_cast<std::ptrdiff_t>(src * kBlockSize),
                      kBlockSize, block.begin());
        }
        break;
      case 2:  // incompressible
        rng.Fill(block);
        break;
      default:  // compressible text
        for (auto& byte : block) byte = static_cast<util::Byte>('a' + rng.Below(4));
        break;
    }
  }
  util::Rng(seed ^ 0x7a11).Fill(
      util::MutableByteSpan(data.data() + blocks * kBlockSize, kBlockSize / 3));
  return data;
}

store::BlockStoreConfig StoreConfig(
    std::size_t threads, std::uint64_t cache_bytes,
    std::size_t shards = store::BlockStoreConfig{}.shards) {
  return store::BlockStoreConfig{
      .codec = compress::CodecId::kGzip6,
      .dedup = true,
      .fast_hash = false,
      .ingest = {},
      .read = {.threads = threads, .cache_bytes = cache_bytes},
      .shards = shards};
}

VolumeConfig VolConfig(std::size_t threads, std::uint64_t cache_bytes,
                       std::size_t readahead_blocks) {
  return VolumeConfig{.block_size = kBlockSize,
                      .codec = compress::CodecId::kGzip6,
                      .dedup = true,
                      .fast_hash = false,
                      .ingest = {},
                      .read = {.threads = threads,
                               .cache_bytes = cache_bytes,
                               .readahead_blocks = readahead_blocks}};
}

/// Loads the non-hole blocks of MixedContent into a store; returns the
/// digests in file order (duplicates repeat, as a reread would request them).
std::vector<util::Digest> Populate(store::BlockStore& store,
                                   std::size_t blocks, std::uint64_t seed) {
  const Bytes content = MixedContent(blocks, seed);
  std::vector<util::Digest> digests;
  for (std::size_t b = 0; b * kBlockSize < content.size(); ++b) {
    const std::size_t len =
        std::min<std::size_t>(kBlockSize, content.size() - b * kBlockSize);
    const util::ByteSpan block(content.data() + b * kBlockSize, len);
    if (util::IsAllZero(block)) continue;
    digests.push_back(store.Put(block).digest);
  }
  return digests;
}

/// Cache counters must replay the serial sequence exactly. Decompression
/// work may only differ in one direction: with the ARC disabled, duplicate
/// digests within one batch are aliased to a single decompression, so
/// GetBatch can do strictly LESS work than the serial Get loop (with the
/// cache on, serial gets the same saving as cache hits, so they tie).
void ExpectSameReadStats(const store::ReadStats& got,
                         const store::ReadStats& want, bool cache_enabled) {
  EXPECT_EQ(got.blocks_requested, want.blocks_requested);
  EXPECT_EQ(got.cache_hits, want.cache_hits);
  EXPECT_EQ(got.cache_misses, want.cache_misses);
  EXPECT_EQ(got.raw_blocks, want.raw_blocks);
  EXPECT_EQ(got.cached_bytes, want.cached_bytes);
  if (cache_enabled) {
    EXPECT_EQ(got.decompressed_blocks, want.decompressed_blocks);
    EXPECT_EQ(got.decompressed_bytes, want.decompressed_bytes);
  } else {
    EXPECT_LE(got.decompressed_blocks, want.decompressed_blocks);
    EXPECT_LE(got.decompressed_bytes, want.decompressed_bytes);
  }
}

TEST(ParallelRead, GetBatchMatchesSerialGetLoop) {
  // The determinism contract quantifies over thread count for each fixed
  // shard count: the serial reference and the parallel store must share
  // `shards`, and the sweep proves the contract at every sharding level.
  for (const std::size_t shards : {1u, 4u, 16u}) {
    for (const std::uint64_t seed : {31u, 32u}) {
      for (const std::uint64_t cache_bytes :
           {std::uint64_t{0}, std::uint64_t{8} * kBlockSize,
            std::uint64_t{4} * util::kMiB}) {
        // The serial reference issues one Get per digest against an identical
        // store (same ingest, same cache budget, read.threads = 1).
        store::BlockStore reference(
            StoreConfig(/*threads=*/1, cache_bytes, shards));
        const std::vector<util::Digest> digests =
            Populate(reference, 60, seed);
        std::vector<Bytes> want;
        for (const util::Digest& d : digests) want.push_back(reference.Get(d));

        for (const std::size_t threads : {1u, 2u, 8u, 0u}) {
          SCOPED_TRACE("shards " + std::to_string(shards) + " seed " +
                       std::to_string(seed) + " cache " +
                       std::to_string(cache_bytes) + " threads " +
                       std::to_string(threads));
          store::BlockStore batched(StoreConfig(threads, cache_bytes, shards));
          ASSERT_EQ(Populate(batched, 60, seed), digests);
          const std::vector<Bytes> got = batched.GetBatch(digests);
          ASSERT_EQ(got.size(), want.size());
          for (std::size_t i = 0; i < want.size(); ++i) {
            EXPECT_EQ(got[i], want[i]) << "payload " << i;
          }
          // Cache counters replay the exact serial Lookup/Insert sequence
          // stripe by stripe.
          ExpectSameReadStats(batched.read_stats(), reference.read_stats(),
                              cache_bytes > 0);
        }
      }
    }
  }
}

TEST(ParallelRead, CacheByteBudgetNeverExceeded) {
  // A budget of 3 blocks over a 40-block working set forces constant
  // eviction; the resident payload bytes must never exceed the budget and
  // every payload must still come back exact. Pinned to shards = 1: a
  // 3-block budget split 16 ways leaves every stripe narrower than one
  // block, and the "must see SOME hits" expectation below is about the
  // whole-budget ARC. (StripedBudgetStillBoundsResidency covers the
  // sharded split.)
  const std::uint64_t budget = 3 * kBlockSize;
  store::BlockStore cached(StoreConfig(/*threads=*/4, budget, /*shards=*/1));
  store::BlockStore uncached(
      StoreConfig(/*threads=*/4, /*cache_bytes=*/0, /*shards=*/1));
  const std::vector<util::Digest> digests = Populate(cached, 40, /*seed=*/41);
  ASSERT_EQ(Populate(uncached, 40, /*seed=*/41), digests);

  util::Rng rng(99);
  for (int round = 0; round < 25; ++round) {
    std::vector<util::Digest> request;
    const std::size_t n = 1 + rng.Below(12);
    for (std::size_t i = 0; i < n; ++i) {
      request.push_back(digests[rng.Below(static_cast<std::uint32_t>(digests.size()))]);
    }
    EXPECT_EQ(cached.GetBatch(request), uncached.GetBatch(request));
    const store::ReadStats stats = cached.read_stats();
    EXPECT_LE(stats.cached_bytes, budget) << "round " << round;
    EXPECT_EQ(stats.cache_capacity_bytes, budget);
  }
  // The mixed workload re-reads blocks, so a 3-block ARC must see SOME hits
  // and — being far smaller than the working set — plenty of misses.
  EXPECT_GT(cached.read_stats().cache_hits, 0u);
  EXPECT_GT(cached.read_stats().cache_misses, 0u);
  // The uncached store never hits and never retains payload bytes.
  EXPECT_EQ(uncached.read_stats().cache_hits, 0u);
  EXPECT_EQ(uncached.read_stats().cached_bytes, 0u);
}

TEST(ParallelRead, StripedBudgetStillBoundsResidency) {
  // With 16 stripes the per-stripe slices must still sum to the configured
  // budget, and total resident bytes can never exceed it — the ECI-Cache
  // split partitions the budget, it does not inflate it.
  const std::uint64_t budget = 24 * kBlockSize;
  store::BlockStore cached(StoreConfig(/*threads=*/4, budget, /*shards=*/16));
  const std::vector<util::Digest> digests = Populate(cached, 80, /*seed=*/42);

  util::Rng rng(7);
  for (int round = 0; round < 25; ++round) {
    std::vector<util::Digest> request;
    const std::size_t n = 1 + rng.Below(16);
    for (std::size_t i = 0; i < n; ++i) {
      request.push_back(
          digests[rng.Below(static_cast<std::uint32_t>(digests.size()))]);
    }
    cached.GetBatch(request);
    const store::ReadStats stats = cached.read_stats();
    EXPECT_LE(stats.cached_bytes, budget) << "round " << round;
    EXPECT_EQ(stats.cache_capacity_bytes, budget);
  }
  // A 24-block budget leaves every stripe room for at least one block, so
  // re-reads inside a stripe still hit.
  EXPECT_GT(cached.read_stats().cache_hits, 0u);
  EXPECT_GT(cached.read_stats().cache_misses, 0u);
}

TEST(ParallelRead, WarmCacheHitsSkipDecompression) {
  store::BlockStore store(StoreConfig(/*threads=*/2, /*cache_bytes=*/4 * util::kMiB));
  // Compressible text blocks: all stored compressed, all cacheable.
  Bytes text(kBlockSize);
  std::vector<util::Digest> digests;
  for (int b = 0; b < 10; ++b) {
    for (std::size_t i = 0; i < text.size(); ++i) {
      text[i] = static_cast<util::Byte>('a' + (b * 13 + i) % 23);
    }
    digests.push_back(store.Put(text).digest);
  }

  const std::vector<Bytes> cold = store.GetBatch(digests);
  const store::ReadStats after_cold = store.read_stats();
  EXPECT_EQ(after_cold.cache_hits, 0u);
  EXPECT_EQ(after_cold.decompressed_blocks, 10u);
  for (const util::Digest& d : digests) {
    EXPECT_TRUE(store.CachedDecompressed(d));
  }

  const std::vector<Bytes> warm = store.GetBatch(digests);
  EXPECT_EQ(warm, cold);
  const store::ReadStats after_warm = store.read_stats();
  EXPECT_EQ(after_warm.cache_hits, 10u);
  // No additional decompression work was done for the warm pass.
  EXPECT_EQ(after_warm.decompressed_blocks, after_cold.decompressed_blocks);
  EXPECT_EQ(after_warm.decompressed_bytes, after_cold.decompressed_bytes);
}

TEST(ParallelRead, RawBlocksBypassTheCache) {
  // Incompressible blocks are stored raw; caching them would buy back no
  // decompression CPU, so they bypass the ARC entirely.
  store::BlockStore store(StoreConfig(/*threads=*/2, /*cache_bytes=*/4 * util::kMiB));
  Bytes noise(kBlockSize);
  util::Rng(7).Fill(noise);
  const util::Digest digest = store.Put(noise).digest;

  EXPECT_EQ(store.Get(digest), noise);
  EXPECT_EQ(store.Get(digest), noise);
  const store::ReadStats stats = store.read_stats();
  EXPECT_EQ(stats.raw_blocks, 2u);
  EXPECT_EQ(stats.cache_hits, 0u);
  EXPECT_EQ(stats.cache_misses, 0u);
  EXPECT_EQ(stats.cached_bytes, 0u);
  EXPECT_FALSE(store.CachedDecompressed(digest));
}

TEST(ParallelRead, GetBatchUnknownDigestThrowsBeforeCacheMutation) {
  store::BlockStore store(StoreConfig(/*threads=*/2, /*cache_bytes=*/util::kMiB));
  const std::vector<util::Digest> digests = Populate(store, 8, /*seed=*/3);
  util::Digest bogus;
  bogus.bytes[0] = 0x5a;

  std::vector<util::Digest> request = digests;
  request.push_back(bogus);
  EXPECT_THROW(store.GetBatch(request), store::NoSuchBlockError);
  // Validation happens before any cache or counter mutation.
  const store::ReadStats stats = store.read_stats();
  EXPECT_EQ(stats.blocks_requested, 0u);
  EXPECT_EQ(stats.cache_misses, 0u);
  EXPECT_EQ(stats.cached_bytes, 0u);

  // VerifyBatch, by contrast, reports unknown digests as failures so scrubs
  // can keep walking.
  const std::vector<std::uint8_t> ok = store.VerifyBatch(request);
  ASSERT_EQ(ok.size(), request.size());
  EXPECT_EQ(ok.back(), 0u);
  for (std::size_t i = 0; i + 1 < ok.size(); ++i) EXPECT_EQ(ok[i], 1u);
}

TEST(ParallelRead, ReadRangeMatchesSerialAcrossConfigs) {
  for (const std::uint64_t seed : {51u, 52u}) {
    const Bytes content = MixedContent(/*blocks=*/70, seed);
    Volume serial(VolConfig(/*threads=*/1, /*cache_bytes=*/0, /*readahead=*/0));
    serial.WriteFile("f", BufferSource(content));
    ASSERT_EQ(serial.ReadFile("f"), content);

    struct Case {
      std::size_t threads;
      std::uint64_t cache_bytes;
      std::size_t readahead;
    };
    const Case cases[] = {
        {2, 0, 0},                      // parallel, no cache
        {8, 16 * kBlockSize, 0},        // small cache, no readahead
        {4, util::kMiB, 8},             // cache + cluster readahead
        {0, 64 * kBlockSize, 16},       // hardware threads, aggressive RA
    };
    for (const Case& c : cases) {
      SCOPED_TRACE("seed " + std::to_string(seed) + " threads " +
                   std::to_string(c.threads) + " cache " +
                   std::to_string(c.cache_bytes) + " ra " +
                   std::to_string(c.readahead));
      Volume volume(VolConfig(c.threads, c.cache_bytes, c.readahead));
      volume.WriteFile("f", BufferSource(content));
      EXPECT_EQ(volume.ReadFile("f"), content);
      // Unaligned windows, including ones crossing the shorter tail block.
      util::Rng rng(seed * 131);
      for (int i = 0; i < 16; ++i) {
        const std::uint64_t offset =
            rng.Below(static_cast<std::uint32_t>(content.size() - 1));
        const std::uint64_t length = std::min<std::uint64_t>(
            1 + rng.Below(5 * kBlockSize), content.size() - offset);
        EXPECT_EQ(volume.ReadRange("f", offset, length),
                  serial.ReadRange("f", offset, length))
            << "offset " << offset << " length " << length;
      }
    }
  }
}

TEST(ParallelRead, ClusterReadaheadWarmsSequentialReads) {
  // Sequential block-size reads with readahead: every round fetches the next
  // clusters too, so later rounds find their blocks resident in the ARC.
  const Bytes content = MixedContent(/*blocks=*/64, /*seed=*/61);
  Volume volume(VolConfig(/*threads=*/2, /*cache_bytes=*/8 * util::kMiB,
                          /*readahead=*/32));
  volume.WriteFile("f", BufferSource(content));

  Bytes assembled(content.size());
  for (std::uint64_t off = 0; off < content.size(); off += kBlockSize) {
    const std::uint64_t len =
        std::min<std::uint64_t>(kBlockSize, content.size() - off);
    const Bytes chunk = volume.ReadRange("f", off, len);
    std::copy(chunk.begin(), chunk.end(),
              assembled.begin() + static_cast<std::ptrdiff_t>(off));
  }
  EXPECT_EQ(assembled, content);
  EXPECT_GT(volume.block_store().read_stats().cache_hits, 0u)
      << "readahead should have warmed the ARC for later rounds";
}

TEST(ParallelRead, ScrubMatchesSerial) {
  const Bytes content = MixedContent(/*blocks=*/50, /*seed=*/71);
  Volume serial(VolConfig(/*threads=*/1, /*cache_bytes=*/0, /*readahead=*/0));
  Volume parallel(VolConfig(/*threads=*/8, /*cache_bytes=*/util::kMiB,
                            /*readahead=*/4));
  serial.WriteFile("f", BufferSource(content));
  parallel.WriteFile("f", BufferSource(content));

  const Volume::ScrubReport clean_s = serial.Scrub();
  const Volume::ScrubReport clean_p = parallel.Scrub();
  EXPECT_EQ(clean_p.blocks_checked, clean_s.blocks_checked);
  EXPECT_EQ(clean_p.errors, 0u);
  EXPECT_EQ(clean_p.dangling_refs, 0u);

  // Corrupt the same block in both; the parallel scrub must find the same
  // single error, and the ARC must not mask it (Verify bypasses the cache).
  ASSERT_EQ(parallel.ReadFile("f"), content);  // warm the ARC first
  std::uint64_t corrupted = 0;
  for (std::uint64_t b = 0; b < serial.FileBlockCount("f"); ++b) {
    if (!serial.FileBlock("f", b).hole) {
      corrupted = b;
      break;
    }
  }
  ASSERT_TRUE(serial.CorruptBlockForTesting("f", corrupted));
  ASSERT_TRUE(parallel.CorruptBlockForTesting("f", corrupted));
  const Volume::ScrubReport dirty_s = serial.Scrub();
  const Volume::ScrubReport dirty_p = parallel.Scrub();
  EXPECT_EQ(dirty_p.blocks_checked, dirty_s.blocks_checked);
  EXPECT_EQ(dirty_p.errors, dirty_s.errors);
  EXPECT_EQ(dirty_p.errors, 1u);
}

TEST(ParallelRead, SendStreamBitIdenticalToSerial) {
  for (const bool incremental : {false, true}) {
    Volume serial(VolConfig(/*threads=*/1, /*cache_bytes=*/0, /*readahead=*/0));
    Volume parallel(VolConfig(/*threads=*/8, /*cache_bytes=*/2 * util::kMiB,
                              /*readahead=*/8));
    for (Volume* v : {&serial, &parallel}) {
      v->WriteFile("base", BufferSource(MixedContent(30, 81)));
      v->CreateSnapshot("s1", 100);
      v->WriteFile("extra", BufferSource(MixedContent(20, 82)));
      v->WriteRange("base", 3 * kBlockSize, MixedContent(4, 83));
      v->CreateSnapshot("s2", 200);
    }
    const SendStream want =
        serial.Send(incremental ? "s1" : "", "s2");
    const SendStream got =
        parallel.Send(incremental ? "s1" : "", "s2");
    // Wire-level equality covers record order, payload bytes and the
    // payload_compressed decisions of the parallel compression stage.
    EXPECT_EQ(got.Serialize(), want.Serialize())
        << (incremental ? "incremental" : "full");

    // The stream still applies cleanly.
    Volume receiver(VolConfig(/*threads=*/2, /*cache_bytes=*/util::kMiB,
                              /*readahead=*/4));
    if (incremental) {
      receiver.WriteFile("base", BufferSource(MixedContent(30, 81)));
      receiver.CreateSnapshot("s1", 100);
      // Receive validates base identity by snapshot id, which advanced
      // identically on all three volumes.
    }
    receiver.Receive(got);
    EXPECT_EQ(receiver.ReadFile("base"), parallel.ReadFile("base"));
    EXPECT_EQ(receiver.ReadFile("extra"), parallel.ReadFile("extra"));
  }
}

TEST(ParallelRead, WriteRangeRmwThroughBatchPathMatchesSerial) {
  // Copy-on-read population: overlapping rewrites fetch the old blocks via
  // GetBatch. With the ARC on, earlier reads make those fetches cache hits —
  // the resulting file must be identical either way.
  const Bytes base = MixedContent(/*blocks=*/24, /*seed=*/91);
  Volume serial(VolConfig(/*threads=*/1, /*cache_bytes=*/0, /*readahead=*/0));
  Volume cached(VolConfig(/*threads=*/4, /*cache_bytes=*/4 * util::kMiB,
                          /*readahead=*/8));
  serial.WriteFile("f", BufferSource(base));
  cached.WriteFile("f", BufferSource(base));
  ASSERT_EQ(cached.ReadFile("f"), base);  // warm the ARC

  util::Rng rng(17);
  for (int round = 0; round < 10; ++round) {
    const std::uint64_t offset = rng.Below(static_cast<std::uint32_t>(base.size()));
    Bytes patch(1 + rng.Below(3 * kBlockSize));
    rng.Fill(patch);
    serial.WriteRange("f", offset, patch);
    cached.WriteRange("f", offset, patch);
  }
  EXPECT_EQ(cached.ReadFile("f"), serial.ReadFile("f"));
  ASSERT_EQ(cached.FileBlockCount("f"), serial.FileBlockCount("f"));
  for (std::uint64_t b = 0; b < serial.FileBlockCount("f"); ++b) {
    EXPECT_EQ(cached.FileBlock("f", b), serial.FileBlock("f", b))
        << "block " << b;
  }
}

}  // namespace
}  // namespace squirrel::zvol
