// Model-based randomized testing of zvol::Volume: a long random operation
// sequence runs against both the volume and a trivial in-memory reference
// model; after every step the observable state must match and the internal
// accounting invariants must hold.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "store/space_map.h"
#include "store_invariants.h"
#include "util/fault_injector.h"
#include "util/rng.h"
#include "vmi/boot_profile.h"
#include "zvol/volume.h"

namespace squirrel::zvol {
namespace {

using util::Bytes;

class BufferSource final : public util::DataSource {
 public:
  explicit BufferSource(const Bytes& data) : data_(&data) {}
  std::uint64_t size() const override { return data_->size(); }
  void Read(std::uint64_t offset, util::MutableByteSpan out) const override {
    std::copy_n(data_->begin() + static_cast<std::ptrdiff_t>(offset),
                out.size(), out.begin());
  }

 private:
  const Bytes* data_;
};

/// Reference model: plain byte buffers for live files, copies for snapshots.
struct Model {
  std::map<std::string, Bytes> files;
  std::map<std::string, std::map<std::string, Bytes>> snapshots;  // name->state
};

/// Counts expected block references (live + snapshots) for the invariant
/// check: total_refs in the store must equal the number of non-hole block
/// pointers across all tables.
std::uint64_t CountNonHoleRefs(const Volume& volume) {
  std::uint64_t refs = 0;
  auto count = [&](const FileTable& table) {
    for (const auto& [name, meta] : table) {
      for (const BlockPtr& ptr : meta.blocks) refs += !ptr.hole;
    }
  };
  // Live table is not directly exposed; reconstruct from FileNames+blocks.
  for (const std::string& name : volume.FileNames()) {
    const std::uint64_t blocks = volume.FileBlockCount(name);
    for (std::uint64_t b = 0; b < blocks; ++b) {
      refs += !volume.FileBlock(name, b).hole;
    }
  }
  for (const auto& snap : volume.snapshots()) count(snap->files);
  return refs;
}

class VolumeFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(VolumeFuzz, MatchesReferenceModel) {
  const std::uint64_t seed = GetParam();
  util::Rng rng(seed);
  const std::uint32_t block_size = 1u << rng.Between(10, 13);  // 1-8 KiB
  Volume volume(VolumeConfig{.block_size = block_size,
                             .codec = rng.Chance(0.5) ? compress::CodecId::kGzip1
                                      : compress::CodecId::kNull,
                             .dedup = true,
                             .fast_hash = rng.Chance(0.5)});
  Model model;
  std::uint64_t now = 0;
  int snapshot_counter = 0;

  static const char* kNames[] = {"a", "b", "c", "d"};

  for (int step = 0; step < 300; ++step) {
    const std::uint64_t op = rng.Below(100);
    const std::string name = kNames[rng.Below(4)];

    if (op < 30) {
      // Whole-file write: random size, content with zero stretches and
      // duplicate-prone bytes.
      const std::uint64_t size = rng.Below(12 * block_size) + 1;
      Bytes content(size, 0);
      for (std::uint64_t i = 0; i < size; i += block_size) {
        const std::uint64_t len = std::min<std::uint64_t>(block_size, size - i);
        switch (rng.Below(3)) {
          case 0:
            break;  // zero block
          case 1: {  // low-entropy block (dedup-prone)
            const util::Byte fill = static_cast<util::Byte>(rng.Below(4) + 1);
            std::fill_n(content.begin() + static_cast<std::ptrdiff_t>(i), len, fill);
            break;
          }
          default:
            rng.Fill(util::MutableByteSpan(content.data() + i, len));
        }
      }
      volume.WriteFile(name, BufferSource(content));
      model.files[name] = std::move(content);
    } else if (op < 55) {
      // Range write into an existing file.
      if (!model.files.contains(name)) continue;
      Bytes& ref = model.files[name];
      const std::uint64_t offset = rng.Below(ref.size() + block_size);
      const std::uint64_t len = rng.Below(3 * block_size) + 1;
      Bytes patch(len);
      if (rng.Chance(0.3)) {
        // all zeros — may punch holes
      } else {
        rng.Fill(patch);
      }
      volume.WriteRange(name, offset, patch);
      if (offset + len > ref.size()) ref.resize(offset + len, 0);
      std::copy(patch.begin(), patch.end(),
                ref.begin() + static_cast<std::ptrdiff_t>(offset));
    } else if (op < 65) {
      if (!model.files.contains(name)) continue;
      volume.DeleteFile(name);
      model.files.erase(name);
    } else if (op < 80) {
      const std::string snap_name = "snap" + std::to_string(snapshot_counter++);
      volume.CreateSnapshot(snap_name, now += 10);
      model.snapshots[snap_name] = model.files;
    } else if (op < 90) {
      if (model.snapshots.empty()) continue;
      // Destroy a random held snapshot.
      auto it = model.snapshots.begin();
      std::advance(it, static_cast<std::ptrdiff_t>(
                           rng.Below(model.snapshots.size())));
      volume.DestroySnapshot(it->first);
      model.snapshots.erase(it);
    } else {
      // Random read comparison.
      if (!model.files.contains(name)) continue;
      const Bytes& ref = model.files[name];
      const std::uint64_t offset = rng.Below(ref.size());
      const std::uint64_t len =
          std::min<std::uint64_t>(ref.size() - offset, rng.Below(4096) + 1);
      const Bytes got = volume.ReadRange(name, offset, len);
      ASSERT_TRUE(std::equal(got.begin(), got.end(),
                             ref.begin() + static_cast<std::ptrdiff_t>(offset)))
          << "step " << step;
    }

    // Invariants after every mutation.
    ASSERT_EQ(volume.FileNames().size(), model.files.size()) << "step " << step;
    ASSERT_EQ(volume.snapshots().size(), model.snapshots.size());
    ASSERT_EQ(volume.block_store().stats().total_refs, CountNonHoleRefs(volume))
        << "refcount conservation violated at step " << step;
  }

  // Final deep comparison: every live file byte-identical to the model.
  for (const auto& [name, ref] : model.files) {
    ASSERT_EQ(volume.FileSize(name), ref.size()) << name;
    EXPECT_EQ(volume.ReadRange(name, 0, ref.size()), ref) << name;
  }
  // Snapshots equal their recorded states.
  for (const auto& [snap_name, state] : model.snapshots) {
    const Snapshot* snap = volume.FindSnapshot(snap_name);
    ASSERT_NE(snap, nullptr) << snap_name;
    ASSERT_EQ(snap->files.size(), state.size());
  }
  // A scrub at the end finds no corruption.
  const auto scrub = volume.Scrub();
  EXPECT_EQ(scrub.errors, 0u);
  EXPECT_EQ(scrub.dangling_refs, 0u);
  // Deleting everything returns the store to empty.
  std::vector<std::string> names = volume.FileNames();
  for (const std::string& name : names) volume.DeleteFile(name);
  while (!volume.snapshots().empty()) {
    volume.DestroySnapshot(volume.snapshots().front()->name);
  }
  EXPECT_EQ(volume.Stats().unique_blocks, 0u);
  EXPECT_EQ(volume.block_store().space_map_stats().allocated_bytes, 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, VolumeFuzz,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

// --- corruption fuzz ---------------------------------------------------------
// Damaged serialized artifacts (volume images, send streams) must always
// surface as a typed squirrel::Error — never a crash, hang, or silent
// success. Both integrity layers are exercised: bit flips (caught by the
// SHA-256 trailer or the per-record checksums) and truncation (caught by
// bounds-checked parsing).

/// A donor volume with mixed content: dedup-prone, random, and hole blocks,
/// plus a snapshot so both table sections are populated.
std::unique_ptr<Volume> MakeDonor(std::uint64_t seed) {
  auto volume = std::make_unique<Volume>(VolumeConfig{
      .block_size = 1024, .codec = compress::CodecId::kGzip1, .dedup = true});
  util::Rng rng(seed);
  for (const char* name : {"a", "b"}) {
    Bytes content(rng.Between(4, 16) * 1024);
    for (std::size_t i = 0; i < content.size(); i += 1024) {
      switch (rng.Below(3)) {
        case 0:
          break;  // hole
        case 1:
          std::fill_n(content.begin() + static_cast<std::ptrdiff_t>(i), 1024,
                      static_cast<util::Byte>(rng.Below(4) + 1));
          break;
        default:
          rng.Fill(util::MutableByteSpan(content.data() + i, 1024));
      }
    }
    volume->WriteFile(name, BufferSource(content));
  }
  volume->CreateSnapshot("s1", 10);
  return volume;
}

class CorruptionFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CorruptionFuzz, DamagedVolumeImagesRaiseTypedErrors) {
  const std::uint64_t seed = GetParam();
  const Bytes image = MakeDonor(seed)->Serialize();
  util::Rng rng(seed);
  util::FaultInjector faults(seed, util::FaultProfile{.image_corrupt_rate = 1.0});
  for (std::uint64_t trial = 0; trial < 40; ++trial) {
    Bytes damaged = image;
    if (rng.Chance(0.5)) {
      ASSERT_TRUE(faults.CorruptImage(damaged, trial));
    } else {
      faults.Truncate(damaged, trial);
    }
    try {
      Volume::Deserialize(damaged);
      FAIL() << "damaged image accepted at trial " << trial;
    } catch (const Error&) {
      // Typed rejection — the only acceptable outcome.
    } catch (const std::exception& e) {
      FAIL() << "untyped exception at trial " << trial << ": " << e.what();
    }
  }
}

TEST_P(CorruptionFuzz, DamagedSendStreamsRaiseTypedErrors) {
  const std::uint64_t seed = GetParam();
  const std::unique_ptr<Volume> donor = MakeDonor(seed);
  const Bytes wire = donor->Send("", "s1").Serialize();
  util::Rng rng(seed + 1);
  util::FaultInjector faults(seed, util::FaultProfile{.stream_corrupt_rate = 1.0});
  for (std::uint64_t trial = 0; trial < 40; ++trial) {
    Bytes damaged = wire;
    if (rng.Chance(0.5)) {
      ASSERT_TRUE(faults.CorruptStream(damaged, trial));
    } else {
      faults.Truncate(damaged, trial);
    }
    Volume replica(donor->config());
    try {
      replica.Receive(SendStream::Deserialize(damaged));
      FAIL() << "damaged stream accepted at trial " << trial;
    } catch (const Error&) {
      // Typed rejection; the replica must stay untouched.
      EXPECT_TRUE(replica.FileNames().empty());
      EXPECT_EQ(replica.Stats().unique_blocks, 0u);
    } catch (const std::exception& e) {
      FAIL() << "untyped exception at trial " << trial << ": " << e.what();
    }
  }
}

TEST_P(CorruptionFuzz, DamagedBootProfilesRaiseTypedErrors) {
  // Boot profiles follow the same wire discipline as send streams
  // (per-record checksums + whole-buffer trailer); damaged bytes must
  // surface as vmi::ProfileCorruptError, never a crash or silent success.
  const std::uint64_t seed = GetParam();
  util::Rng rng(seed + 2);
  vmi::BootProfile donor;
  static const char* kFiles[] = {"cache/a", "cache/b", "base/a"};
  for (int i = 0; i < 60; ++i) {
    donor.Record(kFiles[rng.Below(3)], rng.Below(1 << 20), rng.Chance(0.5));
  }
  const Bytes wire = donor.Serialize();
  ASSERT_EQ(vmi::BootProfile::Deserialize(wire), donor);

  util::FaultInjector faults(seed,
                             util::FaultProfile{.image_corrupt_rate = 1.0});
  for (std::uint64_t trial = 0; trial < 40; ++trial) {
    Bytes damaged = wire;
    if (rng.Chance(0.5)) {
      ASSERT_TRUE(faults.CorruptImage(damaged, trial));
    } else {
      faults.Truncate(damaged, trial);
    }
    try {
      vmi::BootProfile::Deserialize(damaged);
      FAIL() << "damaged profile accepted at trial " << trial;
    } catch (const vmi::ProfileCorruptError&) {
      // Typed rejection — the only acceptable outcome.
    } catch (const std::exception& e) {
      FAIL() << "untyped exception at trial " << trial << ": " << e.what();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CorruptionFuzz, ::testing::Values(101, 202, 303));

// --- crash + disk-full interleaving fuzz -------------------------------------
// A replica ingests a random chain of snapshot streams while a seeded
// injector crashes it mid-apply and (on odd seeds) a tight capacity limit
// refuses allocations. Every unwind must leave the accounting invariants
// intact, and if the chain eventually lands in full the replica must be
// byte-identical to one that never saw a fault (DESIGN.md §15).

class VolumeFuzzFaults : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(VolumeFuzzFaults, CrashAndDiskFullInterleavingsUnwindCleanly) {
  const std::uint64_t seed = GetParam();
  util::Rng rng(seed * 977 + 5);
  const VolumeConfig donor_config{
      .block_size = 1024, .codec = compress::CodecId::kGzip1, .dedup = true};
  Volume donor(donor_config);
  static const char* kFiles[] = {"a", "b", "c"};
  std::set<std::string> live;

  // A chain of five snapshots with random edits (rewrites, range writes,
  // deletions) between them.
  std::vector<std::string> snaps;
  for (int s = 0; s < 5; ++s) {
    for (int edit = 0; edit < 3; ++edit) {
      const std::string name = kFiles[rng.Below(3)];
      const std::uint64_t op = rng.Below(3);
      if (op == 1 && live.contains(name)) {
        Bytes patch(1024);
        rng.Fill(patch);
        donor.WriteRange(name, rng.Below(4) * 1024, patch);
      } else if (op == 2 && live.contains(name)) {
        donor.DeleteFile(name);
        live.erase(name);
      } else {
        Bytes content(rng.Between(2, 10) * 1024);
        for (std::size_t i = 0; i < content.size(); i += 1024) {
          if (rng.Chance(0.3)) continue;  // hole
          rng.Fill(util::MutableByteSpan(content.data() + i, 1024));
        }
        donor.WriteFile(name, BufferSource(content));
        live.insert(name);
      }
    }
    const std::string snap = "s" + std::to_string(s + 1);
    donor.CreateSnapshot(snap, 10 * (s + 1));
    snaps.push_back(snap);
  }

  VolumeConfig replica_config = donor_config;
  replica_config.capacity_bytes = (seed % 2 == 1) ? 16 * 1024 : 8ull << 20;
  Volume replica(replica_config);
  util::FaultInjector faults(seed, util::FaultProfile{.crash_rate = 0.1});
  replica.SetFaultInjector(&faults);

  bool out_of_space = false;
  std::size_t delivered = 0;
  for (std::size_t i = 0; i < snaps.size() && !out_of_space; ++i) {
    const SendStream stream =
        donor.Send(i == 0 ? "" : snaps[i - 1], snaps[i]);
    bool applied = false;
    for (int attempt = 0; attempt < 200 && !applied && !out_of_space;
         ++attempt) {
      try {
        replica.Receive(stream);
        applied = true;
      } catch (const util::CrashError& e) {
        // Re-delivery after a simulated death: rolled back or committed,
        // never torn.
        test::ExpectVolumeInvariants(replica, "after crash at " + e.site());
      } catch (const store::NoSpaceError&) {
        test::ExpectVolumeInvariants(replica, "after disk-full unwind");
        out_of_space = true;
      }
    }
    ASSERT_TRUE(applied || out_of_space) << "stream " << i << " never landed";
    delivered += applied;
  }

  test::ExpectVolumeInvariants(replica, "final");
  const auto scrub = replica.Scrub();
  EXPECT_EQ(scrub.errors, 0u);
  EXPECT_EQ(scrub.dangling_refs, 0u);
  // Every seed exercises at least one fault path: crash unwinds on ample
  // pools, a refused allocation (which aborts the chain early, before many
  // crash sites are even interrogated) on tight ones.
  if (!out_of_space) EXPECT_GT(faults.stats().crashes_injected, 0u);
  if (delivered == snaps.size()) {
    // Full chain landed despite the faults: bit-identical to a clean apply.
    Volume reference(donor_config);
    for (std::size_t i = 0; i < snaps.size(); ++i) {
      reference.Receive(donor.Send(i == 0 ? "" : snaps[i - 1], snaps[i]));
    }
    EXPECT_EQ(replica.Serialize(), reference.Serialize());
  } else {
    EXPECT_TRUE(out_of_space);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, VolumeFuzzFaults,
                         ::testing::Values(7, 11, 42, 64));

}  // namespace
}  // namespace squirrel::zvol
