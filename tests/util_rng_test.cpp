#include "util/rng.h"

#include <gtest/gtest.h>

#include <map>

namespace squirrel::util {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += (a.Next() == b.Next());
  EXPECT_LE(equal, 1);
}

TEST(Rng, BelowRespectsBound) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.Below(17), 17u);
  }
  EXPECT_EQ(rng.Below(0), 0u);
  EXPECT_EQ(rng.Below(1), 0u);
}

TEST(Rng, BelowCoversRange) {
  Rng rng(11);
  std::map<std::uint64_t, int> counts;
  for (int i = 0; i < 8000; ++i) ++counts[rng.Below(8)];
  ASSERT_EQ(counts.size(), 8u);
  for (const auto& [value, count] : counts) {
    EXPECT_GT(count, 800) << value;  // roughly uniform (expected 1000)
    EXPECT_LT(count, 1200) << value;
  }
}

TEST(Rng, BetweenInclusive) {
  Rng rng(5);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 5000; ++i) {
    const std::uint64_t v = rng.Between(3, 6);
    EXPECT_GE(v, 3u);
    EXPECT_LE(v, 6u);
    saw_lo |= (v == 3);
    saw_hi |= (v == 6);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(9);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, ChanceExtremes) {
  Rng rng(13);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Chance(0.0));
    EXPECT_TRUE(rng.Chance(1.0));
  }
}

TEST(Rng, ChanceApproximatesProbability) {
  Rng rng(21);
  int hits = 0;
  for (int i = 0; i < 20000; ++i) hits += rng.Chance(0.3);
  EXPECT_NEAR(hits / 20000.0, 0.3, 0.02);
}

TEST(Rng, ForkIndependence) {
  Rng parent(99);
  Rng childA = parent.Fork(1);
  Rng childB = parent.Fork(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += (childA.Next() == childB.Next());
  EXPECT_LE(equal, 1);
}

TEST(Rng, FillDeterministic) {
  Bytes a(100), b(100);
  Rng(55).Fill(a);
  Rng(55).Fill(b);
  EXPECT_EQ(a, b);
  Bytes c(100);
  Rng(56).Fill(c);
  EXPECT_NE(a, c);
}

TEST(Rng, FillOddLengths) {
  for (std::size_t len : {0ul, 1ul, 7ul, 9ul, 15ul}) {
    Bytes buf(len, 0);
    Rng(1).Fill(buf);
    // Just verify no crash and (for len >= 4) not all zeros.
    if (len >= 4) {
      EXPECT_FALSE(IsAllZero(buf)) << len;
    }
  }
}

TEST(Zipf, RankZeroMostPopular) {
  ZipfSampler zipf(100, 1.0);
  Rng rng(3);
  std::vector<int> counts(100, 0);
  for (int i = 0; i < 50000; ++i) ++counts[zipf.Sample(rng)];
  EXPECT_GT(counts[0], counts[10]);
  EXPECT_GT(counts[0], counts[50]);
  EXPECT_GT(counts[1], counts[50]);
}

TEST(Zipf, AllRanksReachable) {
  ZipfSampler zipf(5, 0.5);
  Rng rng(4);
  std::vector<int> counts(5, 0);
  for (int i = 0; i < 10000; ++i) ++counts[zipf.Sample(rng)];
  for (int rank = 0; rank < 5; ++rank) EXPECT_GT(counts[rank], 0) << rank;
}

TEST(Zipf, SamplesWithinRange) {
  ZipfSampler zipf(7, 1.2);
  Rng rng(8);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(zipf.Sample(rng), 7u);
}

}  // namespace
}  // namespace squirrel::util
