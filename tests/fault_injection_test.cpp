// Fault injection + self-healing: injector determinism, corruption-verified
// reads, scrub-repair round trips, and the replication retry schedule.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "core/squirrel.h"
#include "store/block_store.h"
#include "util/fault_injector.h"
#include "util/rng.h"
#include "zvol/volume.h"

namespace squirrel {
namespace {

using util::Bytes;
using util::FaultInjector;
using util::FaultProfile;

class BufferSource final : public util::DataSource {
 public:
  explicit BufferSource(Bytes data) : data_(std::move(data)) {}
  std::uint64_t size() const override { return data_.size(); }
  void Read(std::uint64_t offset, util::MutableByteSpan out) const override {
    std::copy_n(data_.begin() + static_cast<std::ptrdiff_t>(offset), out.size(),
                out.begin());
  }

 private:
  Bytes data_;
};

util::Digest DigestOf(std::uint64_t tag) {
  util::Digest d{};
  for (std::size_t i = 0; i < 8; ++i) {
    d.bytes[i] = static_cast<util::Byte>(tag >> (8 * i));
  }
  return d;
}

// --- injector schedule --------------------------------------------------------

TEST(FaultInjector, DecisionsIndependentOfInterrogationOrder) {
  const FaultProfile profile{.block_corrupt_rate = 0.3};
  FaultInjector forward(7, profile);
  FaultInjector backward(7, profile);

  constexpr int kBlocks = 64;
  Bytes payloads[kBlocks];
  Bytes reversed[kBlocks];
  for (int i = 0; i < kBlocks; ++i) {
    payloads[i] = Bytes(256, static_cast<util::Byte>(i + 1));
    reversed[i] = payloads[i];
  }
  bool flipped_fwd[kBlocks];
  bool flipped_bwd[kBlocks];
  for (int i = 0; i < kBlocks; ++i) {
    flipped_fwd[i] = forward.CorruptBlock(DigestOf(i), payloads[i]);
  }
  for (int i = kBlocks - 1; i >= 0; --i) {
    flipped_bwd[i] = backward.CorruptBlock(DigestOf(i), reversed[i]);
  }
  for (int i = 0; i < kBlocks; ++i) {
    EXPECT_EQ(flipped_fwd[i], flipped_bwd[i]) << i;
    EXPECT_EQ(payloads[i], reversed[i]) << i;  // identical bit flipped
  }
  EXPECT_GT(forward.stats().blocks_corrupted, 0u);
  EXPECT_EQ(forward.stats().blocks_corrupted, backward.stats().blocks_corrupted);
}

TEST(FaultInjector, ZeroProfileIsNoOp) {
  FaultInjector faults(99, FaultProfile{});
  Bytes payload(128, 0xab);
  const Bytes original = payload;
  EXPECT_FALSE(faults.CorruptBlock(DigestOf(1), payload));
  EXPECT_FALSE(faults.CorruptImage(payload, 0));
  EXPECT_FALSE(faults.CorruptStream(payload, 0));
  EXPECT_FALSE(faults.TransferFails(1, 1, 1));
  EXPECT_FALSE(faults.TransferCorrupts(1, 1, 1));
  EXPECT_EQ(payload, original);
  EXPECT_EQ(faults.stats().blocks_corrupted, 0u);
}

TEST(FaultInjector, RateRoughlyObserved) {
  const FaultProfile profile{.block_corrupt_rate = 0.1};
  FaultInjector faults(3, profile);
  int flipped = 0;
  constexpr int kTrials = 2000;
  for (int i = 0; i < kTrials; ++i) {
    Bytes payload(64, 1);
    flipped += faults.CorruptBlock(DigestOf(i), payload);
  }
  EXPECT_GT(flipped, kTrials / 20);      // > 5%
  EXPECT_LT(flipped, kTrials * 3 / 20);  // < 15%
}

TEST(FaultInjector, DifferentSeedsDifferentSchedules) {
  const FaultProfile profile{.block_corrupt_rate = 0.5};
  FaultInjector a(1, profile);
  FaultInjector b(2, profile);
  int disagreements = 0;
  for (int i = 0; i < 200; ++i) {
    Bytes pa(32, 1), pb(32, 1);
    disagreements += a.CorruptBlock(DigestOf(i), pa) != b.CorruptBlock(DigestOf(i), pb);
  }
  EXPECT_GT(disagreements, 0);
}

TEST(FaultInjector, TransferFailAndCorruptMutuallyExclusive) {
  const FaultProfile profile{.transfer_fail_rate = 0.5,
                             .transfer_corrupt_rate = 0.5};
  FaultInjector faults(11, profile);
  int failed = 0, corrupted = 0;
  for (std::uint32_t node = 0; node < 8; ++node) {
    for (std::uint64_t id = 0; id < 8; ++id) {
      for (std::uint32_t attempt = 1; attempt <= 4; ++attempt) {
        const bool f = faults.TransferFails(node, id, attempt);
        const bool c = faults.TransferCorrupts(node, id, attempt);
        EXPECT_FALSE(f && c);
        failed += f;
        corrupted += c;
      }
    }
  }
  EXPECT_GT(failed, 0);
  EXPECT_GT(corrupted, 0);
}

TEST(FaultInjector, PartialProgressDeterministicAndInRange) {
  const FaultProfile profile{.transfer_fail_rate = 1.0};
  FaultInjector faults(5, profile);
  for (std::uint32_t attempt = 1; attempt <= 4; ++attempt) {
    const double p = faults.PartialProgress(3, 17, attempt);
    EXPECT_GE(p, 0.0);
    EXPECT_LT(p, 1.0);
    EXPECT_EQ(p, faults.PartialProgress(3, 17, attempt));
  }
}

TEST(FaultInjector, TruncateShrinksDeterministically) {
  FaultInjector faults(21, FaultProfile{});
  Bytes a(1000, 0x5a);
  Bytes b(1000, 0x5a);
  faults.Truncate(a, /*salt=*/4);
  faults.Truncate(b, /*salt=*/4);
  EXPECT_LT(a.size(), 1000u);
  EXPECT_EQ(a.size(), b.size());
}

// --- crash points -------------------------------------------------------------

TEST(FaultInjector, ArmedCrashFiresAtExactlyTheNthSite) {
  FaultInjector faults(31, FaultProfile{});
  faults.ArmCrashAt(2);
  faults.CrashPoint("a");
  faults.CrashPoint("b");
  try {
    faults.CrashPoint("c");
    FAIL() << "armed crash did not fire";
  } catch (const util::CrashError& e) {
    EXPECT_EQ(e.site(), "c");
  }
  EXPECT_FALSE(faults.crash_armed());  // one-shot
  EXPECT_EQ(faults.stats().crashes_injected, 1u);
  faults.CrashPoint("c");  // disarmed: a no-op at rate 0
  EXPECT_EQ(faults.crash_sites_passed(), 4u);
}

TEST(FaultInjector, CrashRateIsPositionKeyedAndDeterministic) {
  const FaultProfile profile{.crash_rate = 0.4};
  FaultInjector first(17, profile);
  FaultInjector second(17, profile);
  std::vector<bool> a, b;
  for (int i = 0; i < 64; ++i) {
    bool crashed = false;
    try {
      first.CrashPoint("receive/file", 3);
    } catch (const util::CrashError&) {
      crashed = true;
    }
    a.push_back(crashed);
    crashed = false;
    try {
      second.CrashPoint("receive/file", 3);
    } catch (const util::CrashError&) {
      crashed = true;
    }
    b.push_back(crashed);
  }
  // Identical schedules across runs; position-keying makes the *same* site
  // a fresh coin flip at each interrogation, so both outcomes appear and a
  // retry is never doomed to repeat its crash.
  EXPECT_EQ(a, b);
  EXPECT_NE(std::count(a.begin(), a.end(), true), 0);
  EXPECT_NE(std::count(a.begin(), a.end(), false), 0);
}

TEST(FaultInjector, ArmedOnlySitesIgnoreTheCrashRate) {
  FaultInjector faults(23, FaultProfile{.crash_rate = 1.0});
  for (int i = 0; i < 32; ++i) {
    faults.CrashPointArmedOnly("store/commit");  // must never throw unarmed
  }
  faults.ArmCrashAt(0);
  EXPECT_THROW(faults.CrashPointArmedOnly("store/commit"), util::CrashError);
}

// --- byzantine peers ----------------------------------------------------------

TEST(FaultInjector, ByzantinePeersDeterministicAndPeerZeroHonest) {
  const FaultProfile profile{.byzantine_peer_rate = 0.5};
  FaultInjector first(41, profile);
  FaultInjector second(41, profile);
  int byzantine = 0;
  for (std::uint32_t peer = 0; peer < 64; ++peer) {
    EXPECT_EQ(first.PeerIsByzantine(peer), second.PeerIsByzantine(peer));
    byzantine += first.PeerIsByzantine(peer);
  }
  EXPECT_GT(byzantine, 0);
  EXPECT_LT(byzantine, 64);
  // The storage node is authoritative even at rate 1.0.
  FaultInjector all(41, FaultProfile{.byzantine_peer_rate = 1.0});
  EXPECT_FALSE(all.PeerIsByzantine(0));
  EXPECT_TRUE(all.PeerIsByzantine(1));
}

TEST(FaultInjector, MutatePayloadIsAConsistentPerPeerLie) {
  FaultInjector faults(43, FaultProfile{.byzantine_peer_rate = 1.0});
  const Bytes original(512, 0x5a);
  Bytes first = original;
  Bytes second = original;
  faults.MutatePayload(7, DigestOf(9), first);
  faults.MutatePayload(7, DigestOf(9), second);
  EXPECT_NE(first, original);        // well-formed but wrong
  EXPECT_EQ(first.size(), original.size());
  EXPECT_EQ(first, second);          // retrying re-serves the same lie
  Bytes other_peer = original;
  faults.MutatePayload(8, DigestOf(9), other_peer);
  EXPECT_NE(other_peer, first);      // lies are per (peer, digest)
  EXPECT_EQ(faults.stats().byzantine_served, 3u);
  faults.RecordByzantineDetected();
  EXPECT_EQ(faults.stats().byzantine_detected, 1u);
}

// --- corruption-verified reads ------------------------------------------------

zvol::VolumeConfig SmallVolumeConfig(std::uint32_t threads = 0) {
  zvol::VolumeConfig config{.block_size = 1024,
                            .codec = compress::CodecId::kGzip1,
                            .dedup = true};
  if (threads > 0) config.ingest.threads = threads;
  return config;
}

Bytes RandomContent(std::uint64_t seed, std::size_t bytes) {
  Bytes content(bytes);
  util::Rng(seed).Fill(content);
  return content;
}

TEST(FaultRead, CorruptBlockRaisesTypedErrorWithDigest) {
  zvol::Volume volume(SmallVolumeConfig());
  volume.WriteFile("f", BufferSource(RandomContent(1, 64 * 1024)));
  FaultInjector faults(2, FaultProfile{.block_corrupt_rate = 0.2});
  ASSERT_GT(volume.InjectFaults(faults), 0u);
  try {
    volume.ReadRange("f", 0, volume.FileSize("f"));
    FAIL() << "expected BlockCorruptionError";
  } catch (const store::BlockCorruptionError& e) {
    // The error names the corrupt physical block.
    EXPECT_NE(e.digest(), util::Digest{});
  }
}

TEST(FaultRead, FailingDigestIdenticalAcrossThreadCounts) {
  std::set<std::string> seen;
  for (const std::uint32_t threads : {1u, 2u, 8u}) {
    zvol::Volume volume(SmallVolumeConfig(threads));
    volume.WriteFile("f", BufferSource(RandomContent(3, 256 * 1024)));
    FaultInjector faults(4, FaultProfile{.block_corrupt_rate = 0.05});
    ASSERT_GT(volume.InjectFaults(faults), 0u);
    try {
      volume.ReadRange("f", 0, volume.FileSize("f"));
      FAIL() << "expected BlockCorruptionError at threads=" << threads;
    } catch (const store::BlockCorruptionError& e) {
      seen.insert(e.digest().ToHex());
    }
  }
  // One decision per physical block, in input order — not a race winner.
  EXPECT_EQ(seen.size(), 1u);
}

// --- scrub-repair -------------------------------------------------------------

TEST(FaultRepair, ScrubRepairRestoresByteIdenticalState) {
  const Bytes content = RandomContent(7, 512 * 1024);  // 512 blocks
  zvol::Volume volume(SmallVolumeConfig());
  volume.WriteFile("f", BufferSource(content));
  volume.CreateSnapshot("s1", 100);

  // Healthy peer replica: restored from the volume's own pre-fault image.
  const Bytes image = volume.Serialize();
  const std::unique_ptr<zvol::Volume> peer = zvol::Volume::Deserialize(image);

  // The acceptance rate: 1e-3 per block is too sparse for a 512-block
  // volume, so drive the same machinery at a rate that guarantees hits;
  // the schedule is deterministic either way.
  FaultInjector faults(8, FaultProfile{.block_corrupt_rate = 0.05});
  ASSERT_GT(volume.InjectFaults(faults), 0u);

  const zvol::Volume::RepairReport report =
      volume.ScrubRepair(peer->block_store());
  EXPECT_GT(report.errors_found, 0u);
  EXPECT_EQ(report.repaired, report.errors_found);
  EXPECT_EQ(report.unrepairable, 0u);
  EXPECT_GT(report.repaired_bytes, 0u);

  // Digest-verified byte-identical restoration: a fresh scrub is clean and
  // the file reads back exactly.
  const zvol::Volume::ScrubReport rescrub = volume.Scrub();
  EXPECT_EQ(rescrub.errors, 0u);
  EXPECT_EQ(volume.ReadRange("f", 0, content.size()), content);
}

TEST(FaultRepair, CorruptPeerBlocksAreUnrepairable) {
  zvol::Volume volume(SmallVolumeConfig());
  volume.WriteFile("f", BufferSource(RandomContent(9, 128 * 1024)));
  const Bytes image = volume.Serialize();
  const std::unique_ptr<zvol::Volume> peer = zvol::Volume::Deserialize(image);

  // Corrupt both replicas with the same schedule: every block the scrub
  // flags is corrupt on the peer too, so nothing can heal.
  FaultInjector faults_local(10, FaultProfile{.block_corrupt_rate = 0.1});
  FaultInjector faults_peer(10, FaultProfile{.block_corrupt_rate = 0.1});
  ASSERT_GT(volume.InjectFaults(faults_local), 0u);
  ASSERT_GT(peer->InjectFaults(faults_peer), 0u);

  const zvol::Volume::RepairReport report =
      volume.ScrubRepair(peer->block_store());
  EXPECT_GT(report.errors_found, 0u);
  EXPECT_EQ(report.repaired, 0u);
  EXPECT_EQ(report.unrepairable, report.errors_found);
}

TEST(FaultRepair, ReadRangeRepairHealsOnDemand) {
  const Bytes content = RandomContent(12, 256 * 1024);
  zvol::Volume volume(SmallVolumeConfig());
  volume.WriteFile("f", BufferSource(content));
  const Bytes image = volume.Serialize();
  const std::unique_ptr<zvol::Volume> peer = zvol::Volume::Deserialize(image);

  FaultInjector faults(13, FaultProfile{.block_corrupt_rate = 0.05});
  ASSERT_GT(volume.InjectFaults(faults), 0u);

  std::uint64_t fetched = 0;
  const Bytes got =
      volume.ReadRangeRepair("f", 0, content.size(), peer->block_store(), &fetched);
  EXPECT_EQ(got, content);
  EXPECT_GT(fetched, 0u);
  // The heal is persistent, not per-read: a scrub afterwards is clean.
  EXPECT_EQ(volume.Scrub().errors, 0u);
}

// --- retrying replication -----------------------------------------------------

TEST(Retry, BackoffDeterministicCappedAndJittered) {
  core::RetryPolicy policy;
  policy.base_seconds = 0.5;
  policy.max_seconds = 4.0;
  policy.jitter = 0.1;
  double prev_cap = 0.0;
  for (std::uint32_t attempt = 2; attempt <= 8; ++attempt) {
    const double wait = core::BackoffSeconds(policy, 3, 42, attempt);
    EXPECT_EQ(wait, core::BackoffSeconds(policy, 3, 42, attempt));  // replays
    const double expected =
        std::min(policy.base_seconds * static_cast<double>(1u << (attempt - 2)),
                 policy.max_seconds);
    EXPECT_GE(wait, expected);
    EXPECT_LE(wait, expected * (1.0 + policy.jitter));
    EXPECT_GE(wait, prev_cap);  // non-decreasing up to the cap
    prev_cap = expected;
  }
  // Jitter decorrelates nodes retrying the same transfer.
  EXPECT_NE(core::BackoffSeconds(policy, 1, 42, 2),
            core::BackoffSeconds(policy, 2, 42, 2));
}

core::SquirrelConfig ClusterConfig() {
  core::SquirrelConfig config;
  config.volume = zvol::VolumeConfig{.block_size = 4096,
                                     .codec = compress::CodecId::kGzip6,
                                     .dedup = true};
  return config;
}

Bytes CacheContent(std::uint64_t seed) {
  Bytes content(32 * 4096, 0);
  util::Rng(seed).Fill(util::MutableByteSpan(content.data(), 24 * 4096));
  return content;
}

TEST(Retry, DisarmedClusterMatchesNoInjectorBitForBit) {
  core::SquirrelCluster plain(ClusterConfig(), 3);
  core::SquirrelCluster armed(ClusterConfig(), 3);
  FaultInjector faults(1, FaultProfile{});  // all-zero rates
  armed.SetFaultInjector(&faults);

  const auto a = plain.Register({"img", BufferSource(CacheContent(5)), core::SimClock::FromSeconds(1000)});
  const auto b = armed.Register({"img", BufferSource(CacheContent(5)), core::SimClock::FromSeconds(1000)});
  EXPECT_EQ(a.receivers, b.receivers);
  EXPECT_EQ(a.diff_wire_bytes, b.diff_wire_bytes);
  EXPECT_EQ(a.total_seconds, b.total_seconds);
  EXPECT_EQ(b.transfers.retries, 0u);
  EXPECT_EQ(b.transfers.abandoned, 0u);
  EXPECT_EQ(b.transfers.retransmitted_bytes, 0u);
  EXPECT_EQ(plain.network().TotalBytesIn(0, 4),
            armed.network().TotalBytesIn(0, 4));
}

TEST(Retry, FaultedTransfersRetryAndStillDeliver) {
  core::SquirrelCluster cluster(ClusterConfig(), 4);
  FaultInjector faults(6, FaultProfile{.transfer_fail_rate = 0.4,
                                       .transfer_corrupt_rate = 0.2,
                                       .transfer_delay_seconds = 0.05});
  cluster.SetFaultInjector(&faults);

  core::TransferStats totals;
  for (int i = 0; i < 6; ++i) {
    const auto report = cluster.Register({"img-" + std::to_string(i), BufferSource(CacheContent(i)), core::SimClock::FromSeconds(1000 + i)});
    totals.attempts += report.transfers.attempts;
    totals.retries += report.transfers.retries;
    totals.abandoned += report.transfers.abandoned;
    totals.retransmitted_bytes += report.transfers.retransmitted_bytes;
    totals.backoff_seconds += report.transfers.backoff_seconds;
  }
  EXPECT_GT(totals.retries, 0u);
  EXPECT_GT(totals.retransmitted_bytes, 0u);
  EXPECT_GT(totals.backoff_seconds, 0.0);
  // Retries did their job: every node that wasn't abandoned has every cache.
  std::uint64_t abandoned_nodes = totals.abandoned;
  for (std::uint32_t n = 0; n < 4; ++n) {
    bool complete = true;
    for (int i = 0; i < 6; ++i) {
      complete &= cluster.compute_node(n).volume().HasFile(
          core::SquirrelCluster::CacheFileName("img-" + std::to_string(i)));
    }
    if (!complete) {
      ASSERT_GT(abandoned_nodes, 0u);
      // An abandoned node reconciles through the boot-time sync path.
      const auto sync = cluster.SyncNode(n, core::SimClock::FromSeconds(2000));
      if (sync.transfers.abandoned == 0) {
        EXPECT_GT(sync.snapshots_advanced, 0u);
      }
    }
  }
}

TEST(Retry, AbandonsAfterMaxAttempts) {
  core::SquirrelConfig config = ClusterConfig();
  config.retry.max_attempts = 3;
  core::SquirrelCluster cluster(config, 2);
  FaultInjector faults(7, FaultProfile{.transfer_fail_rate = 1.0});
  cluster.SetFaultInjector(&faults);

  const auto report =
      cluster.Register({"img", BufferSource(CacheContent(1)), core::SimClock::FromSeconds(1000)});
  EXPECT_EQ(report.receivers, 0u);
  EXPECT_EQ(report.transfers.abandoned, 2u);
  EXPECT_EQ(report.transfers.attempts, 6u);  // 3 per node
  EXPECT_EQ(report.transfers.retries, 4u);   // 2 per node
}

TEST(FaultRepair, DegradedBootHealsFromStorageNodeAndChargesNetwork) {
  core::SquirrelCluster cluster(ClusterConfig(), 2);
  const Bytes cache = CacheContent(3);
  cluster.Register({"img", BufferSource(cache), core::SimClock::FromSeconds(1000)});

  // Corrupt the booting node's ccVolume; the scVolume stays healthy.
  FaultInjector faults(14, FaultProfile{.block_corrupt_rate = 0.2});
  ASSERT_GT(cluster.compute_node(0).volume().InjectFaults(faults), 0u);

  std::vector<vmi::BootRead> trace;
  for (std::uint64_t off = 0; off < 24 * 4096; off += 8192) {
    trace.push_back({off, 8192});
  }
  sim::IoContext io;
  const core::BootReport report =
      cluster.Boot(0,
      {.image_id = "img", .base_image = BufferSource(cache), .trace = trace},
      io);
  EXPECT_GT(report.repair_reads, 0u);
  EXPECT_GT(report.repaired_blocks_bytes, 0u);
  // Healing traffic comes from the storage node over the network — the
  // warm-replica headline property is given up exactly where corruption hit.
  EXPECT_GE(report.network_bytes, report.repaired_blocks_bytes);
  // The heal is persistent: the replica scrubs clean afterwards.
  EXPECT_EQ(cluster.compute_node(0).volume().Scrub().errors, 0u);
}

TEST(Retry, RetrySecondsExtendRegistrationByTheSlowestNode) {
  core::SquirrelConfig config = ClusterConfig();
  config.retry.base_seconds = 1.0;
  config.retry.jitter = 0.0;
  core::SquirrelCluster plain(config, 2);
  core::SquirrelCluster faulty(config, 2);
  FaultInjector faults(9, FaultProfile{.transfer_fail_rate = 0.6});
  faulty.SetFaultInjector(&faults);

  const auto clean = plain.Register({"img", BufferSource(CacheContent(2)), core::SimClock::FromSeconds(0)});
  const auto retried = faulty.Register({"img", BufferSource(CacheContent(2)), core::SimClock::FromSeconds(0)});
  if (retried.transfers.retries > 0) {
    EXPECT_GT(retried.total_seconds, clean.total_seconds);
  } else {
    EXPECT_EQ(retried.total_seconds, clean.total_seconds);
  }
}

}  // namespace
}  // namespace squirrel
