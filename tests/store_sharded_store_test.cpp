// The sharded store core: digest-prefix DDT/space-map shards and the striped
// ARC probe path. Covers the shard-count validation contract, the interleaved
// global-offset mapping (disjoint across shards, identity at shards = 1), the
// determinism sweep (fixed shard count => bit-identical results at every
// thread count), the warm-pre-filter fast path, and — under `ctest -L tsan` —
// cross-thread PutBatch/GetBatch/VerifyBatch storms and ResizeCache racing
// in-flight batch reads.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include "store/block_store.h"
#include "util/rng.h"

namespace squirrel::store {
namespace {

using util::Bytes;

constexpr std::uint32_t kBlockSize = 4096;

/// Distinct incompressible blocks (stored raw: gzip on random bytes misses
/// the save-1/8th rule), so physical sizes and sector layouts are exact.
std::vector<Bytes> RandomBlocks(std::size_t count, std::uint64_t seed) {
  std::vector<Bytes> blocks(count);
  util::Rng rng(seed);
  for (Bytes& block : blocks) {
    block.resize(kBlockSize);
    rng.Fill(block);
  }
  return blocks;
}

std::vector<util::ByteSpan> Spans(const std::vector<Bytes>& blocks) {
  return {blocks.begin(), blocks.end()};
}

BlockStoreConfig Config(std::size_t shards, std::size_t threads = 1,
                        std::uint64_t cache_bytes = 0) {
  BlockStoreConfig config;
  config.codec = compress::CodecId::kGzip6;
  config.ingest = {.threads = threads, .batch_blocks = 32};
  config.read = {.threads = threads, .cache_bytes = cache_bytes};
  config.shards = shards;
  return config;
}

TEST(ShardedStore, ShardCountMustBePowerOfTwoInRange) {
  for (const std::size_t bad : {0u, 3u, 6u, 12u, 257u, 512u}) {
    EXPECT_THROW(BlockStore{Config(bad)}, std::invalid_argument)
        << "shards " << bad;
  }
  for (std::size_t shards = 1; shards <= 256; shards *= 2) {
    BlockStore store(Config(shards));
    EXPECT_EQ(store.shard_count(), shards);
  }
}

TEST(ShardedStore, ShardsOneReproducesSequentialExtentLayout) {
  // With one shard the global-offset mapping is the identity, so
  // incompressible blocks land back-to-back exactly like the pre-sharding
  // bump-pointer allocator: 0, 4096, 8192, ...
  BlockStore store(Config(/*shards=*/1));
  const std::vector<Bytes> blocks = RandomBlocks(12, /*seed=*/3);
  const std::vector<PutResult> results = store.PutBatch(Spans(blocks));
  for (std::size_t i = 0; i < results.size(); ++i) {
    EXPECT_EQ(results[i].physical_size, kBlockSize) << "block " << i;
    EXPECT_EQ(store.DiskOffset(results[i].digest), i * kBlockSize)
        << "block " << i;
  }
}

TEST(ShardedStore, DiskOffsetsDisjointAndSectorAlignedAcrossShards) {
  BlockStore store(Config(/*shards=*/16, /*threads=*/4));
  const std::vector<Bytes> blocks = RandomBlocks(200, /*seed=*/9);
  const std::vector<PutResult> results = store.PutBatch(Spans(blocks));
  std::set<std::uint64_t> offsets;
  for (const PutResult& result : results) {
    const std::uint64_t offset = store.DiskOffset(result.digest);
    EXPECT_EQ(offset % kSectorBytes, 0u) << result.digest.ToHex();
    EXPECT_TRUE(offsets.insert(offset).second)
        << "offset collision at " << offset;
  }
  EXPECT_EQ(offsets.size(), blocks.size());
}

TEST(ShardedStore, DeterministicAcrossThreadCountsForFixedShards) {
  // The contract quantifies over thread count, not shard count: for each
  // shard count, every thread count must replay the serial store's digests,
  // offsets, stats and cache counters bit-for-bit.
  const std::vector<Bytes> blocks = RandomBlocks(96, /*seed=*/17);
  const std::vector<util::ByteSpan> spans = Spans(blocks);
  for (const std::size_t shards : {1u, 4u, 16u}) {
    SCOPED_TRACE("shards " + std::to_string(shards));
    BlockStore reference(Config(shards, /*threads=*/1,
                                /*cache_bytes=*/24 * kBlockSize));
    const std::vector<PutResult> want = reference.PutBatch(spans);
    std::vector<util::Digest> digests;
    for (const PutResult& r : want) digests.push_back(r.digest);
    const std::vector<Bytes> want_payloads = reference.GetBatch(digests);

    for (const std::size_t threads : {2u, 8u}) {
      SCOPED_TRACE("threads " + std::to_string(threads));
      BlockStore store(Config(shards, threads, 24 * kBlockSize));
      const std::vector<PutResult> got = store.PutBatch(spans);
      ASSERT_EQ(got.size(), want.size());
      for (std::size_t i = 0; i < want.size(); ++i) {
        EXPECT_EQ(got[i].digest, want[i].digest) << "block " << i;
        EXPECT_EQ(store.DiskOffset(got[i].digest),
                  reference.DiskOffset(want[i].digest))
            << "block " << i;
      }
      EXPECT_EQ(store.GetBatch(digests), want_payloads);

      const StoreStats got_stats = store.stats();
      const StoreStats want_stats = reference.stats();
      EXPECT_EQ(got_stats.unique_blocks, want_stats.unique_blocks);
      EXPECT_EQ(got_stats.total_refs, want_stats.total_refs);
      EXPECT_EQ(got_stats.physical_data_bytes, want_stats.physical_data_bytes);
      EXPECT_EQ(got_stats.ddt_core_bytes, want_stats.ddt_core_bytes);
      const ReadStats got_reads = store.read_stats();
      const ReadStats want_reads = reference.read_stats();
      EXPECT_EQ(got_reads.cache_hits, want_reads.cache_hits);
      EXPECT_EQ(got_reads.cache_misses, want_reads.cache_misses);
      EXPECT_EQ(got_reads.decompressed_bytes, want_reads.decompressed_bytes);
      EXPECT_EQ(got_reads.cached_bytes, want_reads.cached_bytes);
    }
  }
}

TEST(ShardedStore, WarmCacheSkipsResidentPayloads) {
  // Compressible blocks (so the warm path actually decompresses) behind a
  // cache that holds the whole set: the first warm does all the work, a
  // re-warm is pure ARC touches — no new decompression, every request
  // counted as warm_skipped_resident.
  BlockStoreConfig config = Config(/*shards=*/16, /*threads=*/4,
                                   /*cache_bytes=*/64 * kBlockSize);
  BlockStore store(config);
  std::vector<Bytes> blocks(24);
  util::Rng rng(5);
  for (Bytes& block : blocks) {
    block.resize(kBlockSize);
    for (auto& byte : block) byte = static_cast<util::Byte>('a' + rng.Below(4));
  }
  std::vector<util::Digest> digests;
  for (const PutResult& r : store.PutBatch(Spans(blocks))) {
    digests.push_back(r.digest);
  }

  ASSERT_EQ(store.WarmCache(digests), digests.size());
  const ReadStats first = store.read_stats();
  EXPECT_EQ(first.warm_skipped_resident, 0u);
  EXPECT_GT(first.decompressed_blocks, 0u);

  ASSERT_EQ(store.WarmCache(digests), digests.size());
  const ReadStats second = store.read_stats();
  EXPECT_EQ(second.warm_skipped_resident, digests.size());
  EXPECT_EQ(second.decompressed_blocks, first.decompressed_blocks)
      << "re-warming a resident set must not redo decompression";
  EXPECT_EQ(second.cache_hits, first.cache_hits + digests.size())
      << "the skip is a filtered copy, not a skipped ARC touch";
}

// Cross-thread storm: concurrent PutBatch ref bumps, GetBatch reads and
// VerifyBatch scrubs against overlapping digest sets. Run under
// `ctest -L tsan` this is the lock-discipline test for the per-shard mutexes;
// the post-join asserts pin the refcount and space-map invariants.
TEST(ShardedStore, ConcurrentPutGetVerifyStorm) {
  constexpr std::size_t kWriters = 4;
  constexpr std::size_t kReaders = 3;
  BlockStore store(Config(/*shards=*/16, /*threads=*/2,
                          /*cache_bytes=*/16 * kBlockSize));
  const std::vector<Bytes> blocks = RandomBlocks(64, /*seed=*/23);
  const std::vector<util::ByteSpan> spans = Spans(blocks);
  // Seed the store so readers always race against committed digests.
  std::vector<util::Digest> digests;
  for (const PutResult& r : store.PutBatch(spans)) digests.push_back(r.digest);

  std::vector<std::thread> threads;
  for (std::size_t w = 0; w < kWriters; ++w) {
    threads.emplace_back([&store, &spans] {
      // Every block dedups against the seeded copy: pure refcount traffic
      // through the per-shard commit passes.
      const std::vector<PutResult> results = store.PutBatch(spans);
      for (const PutResult& r : results) EXPECT_TRUE(r.deduplicated);
    });
  }
  for (std::size_t r = 0; r < kReaders; ++r) {
    threads.emplace_back([&store, &digests, &blocks, r] {
      util::Rng rng(100 + r);
      for (int round = 0; round < 8; ++round) {
        std::vector<util::Digest> want;
        std::vector<std::size_t> index;
        for (std::size_t n = 0; n < 24; ++n) {
          const std::size_t i = rng.Below(static_cast<std::uint32_t>(
              digests.size()));
          want.push_back(digests[i]);
          index.push_back(i);
        }
        const std::vector<Bytes> got = store.GetBatch(want);
        for (std::size_t i = 0; i < got.size(); ++i) {
          EXPECT_EQ(got[i], blocks[index[i]]) << "round " << round;
        }
      }
    });
  }
  threads.emplace_back([&store, &digests] {
    const std::vector<std::uint8_t> ok = store.VerifyBatch(digests);
    for (std::size_t i = 0; i < ok.size(); ++i) {
      EXPECT_EQ(ok[i], 1u) << "digest " << i;
    }
  });
  for (std::thread& t : threads) t.join();

  // Refcount invariant: the seed plus one bump per writer.
  const StoreStats stats = store.stats();
  EXPECT_EQ(stats.unique_blocks, blocks.size());
  EXPECT_EQ(stats.total_refs, blocks.size() * (1 + kWriters));
  std::uint64_t physical = 0;
  for (const util::Digest& digest : digests) {
    EXPECT_EQ(store.RefCount(digest), 1 + kWriters);
    physical += store.PhysicalSize(digest);
  }
  // Space-map invariant: allocated bytes equal the sector-rounded physical
  // footprint (random 4 KiB blocks are already sector multiples), and a
  // full unref drains both the DDT and every shard arena.
  EXPECT_EQ(store.space_map_stats().allocated_bytes, physical);
  EXPECT_EQ(stats.physical_data_bytes, physical);
  for (std::size_t bump = 0; bump < 1 + kWriters; ++bump) {
    for (const util::Digest& digest : digests) store.Unref(digest);
  }
  EXPECT_EQ(store.stats().unique_blocks, 0u);
  EXPECT_EQ(store.stats().total_refs, 0u);
  EXPECT_EQ(store.space_map_stats().allocated_bytes, 0u);
}

// ResizeCache must never stall or corrupt in-flight batch reads: stripes are
// rebudgeted one at a time under their own locks while readers stream
// GetBatch rounds. Run under `ctest -L tsan` this is the
// ResizeCache-vs-GetBatch race test; the payload asserts catch any
// evict-while-filling bug, and the final resident check pins the budget.
TEST(ShardedStore, ResizeCacheRacesBatchReads) {
  constexpr std::uint64_t kBudget = 24ull * kBlockSize;
  BlockStore store(Config(/*shards=*/16, /*threads=*/2, kBudget));
  const std::vector<Bytes> blocks = RandomBlocks(48, /*seed=*/31);
  std::vector<util::Digest> digests;
  for (const PutResult& r : store.PutBatch(Spans(blocks))) {
    digests.push_back(r.digest);
  }

  std::vector<std::thread> readers;
  for (std::size_t r = 0; r < 3; ++r) {
    readers.emplace_back([&store, &digests, &blocks, r] {
      util::Rng rng(7 * (r + 1));
      for (int round = 0; round < 12; ++round) {
        std::vector<util::Digest> want;
        std::vector<std::size_t> index;
        for (std::size_t n = 0; n < 16; ++n) {
          const std::size_t i = rng.Below(static_cast<std::uint32_t>(
              digests.size()));
          want.push_back(digests[i]);
          index.push_back(i);
        }
        const std::vector<Bytes> got = store.GetBatch(want);
        for (std::size_t i = 0; i < got.size(); ++i) {
          EXPECT_EQ(got[i], blocks[index[i]]) << "round " << round;
        }
      }
    });
  }
  // Shrink/grow/disable/restore while the readers run.
  for (int cycle = 0; cycle < 6; ++cycle) {
    store.ResizeCache(kBudget / 2);
    store.ResizeCache(0);
    store.ResizeCache(2 * kBudget);
    store.ResizeCache(kBudget);
  }
  for (std::thread& t : readers) t.join();

  const ReadStats reads = store.read_stats();
  EXPECT_EQ(reads.cache_capacity_bytes, kBudget);
  EXPECT_LE(reads.cached_bytes, kBudget);
}

}  // namespace
}  // namespace squirrel::store
