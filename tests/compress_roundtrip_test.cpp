// Property tests: every codec must round-trip every content shape at every
// size, and reject corrupted payloads rather than return wrong data.
#include <gtest/gtest.h>

#include <tuple>

#include "compress/codec.h"
#include "util/rng.h"

namespace squirrel::compress {
namespace {

using util::Byte;
using util::Bytes;

enum class Content {
  kRandom,
  kZeros,
  kRepeating,
  kText,
  kAlternating,
  kNearlyZero,
};

const char* ContentName(Content c) {
  switch (c) {
    case Content::kRandom: return "random";
    case Content::kZeros: return "zeros";
    case Content::kRepeating: return "repeating";
    case Content::kText: return "text";
    case Content::kAlternating: return "alternating";
    case Content::kNearlyZero: return "nearly_zero";
  }
  return "?";
}

Bytes MakeContent(Content kind, std::size_t size, std::uint64_t seed) {
  Bytes data(size, 0);
  util::Rng rng(seed);
  switch (kind) {
    case Content::kRandom:
      rng.Fill(data);
      break;
    case Content::kZeros:
      break;
    case Content::kRepeating:
      for (std::size_t i = 0; i < size; ++i) {
        data[i] = static_cast<Byte>("abcabcab"[i % 8]);
      }
      break;
    case Content::kText: {
      static constexpr const char* kWords[] = {"kernel ", "module ", "load ",
                                               "the ", "config "};
      std::size_t pos = 0;
      while (pos < size) {
        const char* w = kWords[rng.Below(5)];
        for (const char* p = w; *p && pos < size; ++p) {
          data[pos++] = static_cast<Byte>(*p);
        }
      }
      break;
    }
    case Content::kAlternating:
      for (std::size_t i = 0; i < size; ++i) {
        data[i] = (i % 2 == 0) ? 0x00 : 0xff;
      }
      break;
    case Content::kNearlyZero:
      for (std::size_t i = 0; i < size; i += 97) data[i] = 0x42;
      break;
  }
  return data;
}

using Param = std::tuple<std::string, Content, std::size_t>;

class CodecRoundTrip : public ::testing::TestWithParam<Param> {};

TEST_P(CodecRoundTrip, DecompressReturnsOriginal) {
  const auto& [codec_name, content, size] = GetParam();
  const Codec* codec = FindCodec(codec_name);
  ASSERT_NE(codec, nullptr) << codec_name;

  const Bytes original = MakeContent(content, size, size * 31 + 7);
  const Bytes compressed = codec->Compress(original);
  const Bytes restored = codec->Decompress(compressed, original.size());
  EXPECT_EQ(restored, original);
}

TEST_P(CodecRoundTrip, CorruptionDetectedOrHarmless) {
  const auto& [codec_name, content, size] = GetParam();
  if (size == 0) GTEST_SKIP();
  const Codec* codec = FindCodec(codec_name);
  ASSERT_NE(codec, nullptr);

  const Bytes original = MakeContent(content, size, size * 13 + 3);
  Bytes compressed = codec->Compress(original);
  // Truncation must never produce a silently-correct result of full size
  // without throwing... it may throw or produce different bytes; it must not
  // crash.
  if (compressed.size() > 2) {
    Bytes truncated(compressed.begin(),
                    compressed.begin() + compressed.size() / 2);
    try {
      const Bytes out = codec->Decompress(truncated, original.size());
      EXPECT_EQ(out.size(), original.size());
    } catch (const std::runtime_error&) {
      SUCCEED();
    }
  }
}

std::vector<Param> AllParams() {
  std::vector<Param> params;
  for (const char* codec :
       {"null", "gzip1", "gzip6", "gzip9", "lz4", "lzjb", "zle"}) {
    for (Content content :
         {Content::kRandom, Content::kZeros, Content::kRepeating,
          Content::kText, Content::kAlternating, Content::kNearlyZero}) {
      for (std::size_t size : {0ul, 1ul, 2ul, 63ul, 64ul, 65ul, 4096ul,
                               65536ul, 131072ul}) {
        params.emplace_back(codec, content, size);
      }
    }
  }
  return params;
}

std::string ParamName(const ::testing::TestParamInfo<Param>& info) {
  return std::get<0>(info.param) + std::string("_") +
         ContentName(std::get<1>(info.param)) + "_" +
         std::to_string(std::get<2>(info.param));
}

INSTANTIATE_TEST_SUITE_P(AllCodecs, CodecRoundTrip,
                         ::testing::ValuesIn(AllParams()), ParamName);

TEST(CodecRegistry, KnowsAllPaperCodecs) {
  for (const char* name : {"gzip6", "gzip9", "lz4", "lzjb", "null"}) {
    EXPECT_NE(FindCodec(name), nullptr) << name;
  }
  EXPECT_EQ(FindCodec("bogus"), nullptr);
  EXPECT_GE(CodecNames().size(), 13u);  // null + gzip1..9 + lz4 + lzjb + zle
}

TEST(CodecCosts, OrderingMatchesPaper) {
  // gzip9 costs more CPU than gzip6; lz4/lzjb are far cheaper than gzip.
  const Codec* gzip6 = FindCodec("gzip6");
  const Codec* gzip9 = FindCodec("gzip9");
  const Codec* lz4 = FindCodec("lz4");
  const Codec* lzjb = FindCodec("lzjb");
  EXPECT_GT(gzip9->cost().compress_ns_per_byte, gzip6->cost().compress_ns_per_byte);
  EXPECT_LT(lz4->cost().compress_ns_per_byte, gzip6->cost().compress_ns_per_byte);
  EXPECT_LT(lzjb->cost().compress_ns_per_byte, gzip6->cost().compress_ns_per_byte);
}

}  // namespace
}  // namespace squirrel::compress
