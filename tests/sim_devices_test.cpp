#include "sim/devices.h"

#include <gtest/gtest.h>

#include "sim/parallel_fs.h"
#include "util/rng.h"

namespace squirrel::sim {
namespace {

using util::Bytes;

class BufferSource final : public util::DataSource {
 public:
  explicit BufferSource(Bytes data) : data_(std::move(data)) {}
  std::uint64_t size() const override { return data_.size(); }
  void Read(std::uint64_t offset, util::MutableByteSpan out) const override {
    std::copy_n(data_.begin() + static_cast<std::ptrdiff_t>(offset), out.size(),
                out.begin());
  }

 private:
  Bytes data_;
};

Bytes RandomBytes(std::size_t size, std::uint64_t seed) {
  Bytes data(size);
  util::Rng(seed).Fill(data);
  return data;
}

TEST(LocalFileDevice, ReadsContentAndChargesDisk) {
  const Bytes content = RandomBytes(256 * 1024, 1);
  BufferSource source(content);
  IoContext io;
  LocalFileDevice device(&source, &io, 1, 0);
  Bytes out(10000);
  device.ReadAt(5000, out);
  EXPECT_TRUE(std::equal(out.begin(), out.end(), content.begin() + 5000));
  EXPECT_GT(io.elapsed_ns(), 0.0);
}

TEST(LocalFileDevice, SecondReadHitsPageCache) {
  const Bytes content = RandomBytes(256 * 1024, 2);
  BufferSource source(content);
  IoContext io;
  LocalFileDevice device(&source, &io, 1, 0);
  Bytes out(65536);
  device.ReadAt(0, out);
  const double cold = io.elapsed_ns();
  device.ReadAt(0, out);
  const double warm = io.elapsed_ns() - cold;
  EXPECT_LT(warm, cold / 10);  // page cache absorbed the disk cost
}

TEST(LocalFileDevice, NullIoContextIsFunctional) {
  const Bytes content = RandomBytes(8192, 3);
  BufferSource source(content);
  LocalFileDevice device(&source, nullptr, 1, 0);
  Bytes out(8192);
  device.ReadAt(0, out);
  EXPECT_EQ(out, content);
}

TEST(LocalCacheDevice, CopyOnReadPopulationAndReadback) {
  IoContext io;
  LocalCacheDevice cache(1 << 20, 65536, &io, 2, 0);
  EXPECT_FALSE(cache.Present(0));
  const Bytes data = RandomBytes(65536, 4);
  cache.WriteAt(0, data);
  EXPECT_TRUE(cache.Present(0));
  EXPECT_FALSE(cache.Present(65536));
  Bytes out(65536);
  cache.ReadAt(0, out);
  EXPECT_EQ(out, data);
  EXPECT_EQ(cache.populated_bytes(), 65536u);
}

TEST(LocalCacheDevice, WarmFillsRanges) {
  const Bytes content = RandomBytes(1 << 20, 5);
  BufferSource source(content);
  LocalCacheDevice cache(content.size(), 65536, nullptr, 2, 0);
  cache.Warm(source, {{0, 100000}, {500000, 50000}});
  EXPECT_TRUE(cache.Present(0));
  EXPECT_TRUE(cache.Present(99999));
  EXPECT_TRUE(cache.Present(500000));
  EXPECT_FALSE(cache.Present(300000));
  Bytes out(50000);
  cache.ReadAt(500000 / 65536 * 65536, out);
  EXPECT_TRUE(std::equal(out.begin(), out.end(),
                         content.begin() + 500000 / 65536 * 65536));
}

TEST(VolumeFileDevice, PresenceTracksHolesAtBlockGranularity) {
  zvol::Volume volume({.block_size = 4096, .codec = compress::CodecId::kNull});
  Bytes sparse(8 * 4096, 0);
  std::fill_n(sparse.begin() + 4096, 4096, 0x55);
  volume.WriteFile("f", BufferSource(sparse));
  VolumeFileDevice device(&volume, "f", nullptr, 3, /*presence_window=*/4096);
  EXPECT_FALSE(device.Present(0));
  EXPECT_TRUE(device.Present(4096));
  EXPECT_FALSE(device.Present(2 * 4096));
  EXPECT_EQ(device.size(), sparse.size());
}

TEST(VolumeFileDevice, PresenceWindowCoversClusterWithLeadingZeros) {
  // A cached cluster whose first blocks are zeros (file-system slack) must
  // still count as present — copy-on-read populates whole clusters.
  zvol::Volume volume({.block_size = 4096, .codec = compress::CodecId::kNull});
  Bytes sparse(32 * 4096, 0);
  std::fill_n(sparse.begin() + 12 * 4096, 4096, 0x77);  // inside cluster 0
  volume.WriteFile("f", BufferSource(sparse));
  VolumeFileDevice device(&volume, "f", nullptr, 3, /*presence_window=*/65536);
  EXPECT_TRUE(device.Present(0));          // cluster 0 has content at 48K
  EXPECT_TRUE(device.Present(4096));       // same cluster
  EXPECT_FALSE(device.Present(16 * 4096)); // cluster 1 is fully sparse
}

TEST(VolumeFileDevice, ChargesDdtAndDecompression) {
  zvol::Volume volume({.block_size = 4096, .codec = compress::CodecId::kGzip6});
  Bytes text(16 * 4096);
  util::Rng rng(6);
  for (auto& b : text) b = static_cast<util::Byte>('a' + rng.Below(3));
  volume.WriteFile("f", BufferSource(text));
  IoContext io;
  VolumeFileDevice device(&volume, "f", &io, 4);
  Bytes out(16 * 4096);
  device.ReadAt(0, out);
  EXPECT_EQ(out, text);
  EXPECT_GT(io.elapsed_ns(), 0.0);
  // Re-read: cheaper through the page cache, but still pays DDT lookups.
  const double first = io.elapsed_ns();
  device.ReadAt(0, out);
  const double second = io.elapsed_ns() - first;
  EXPECT_LT(second, first / 2);
  EXPECT_GT(second, 0.0);
}

TEST(VolumeFileDevice, WriteGoesThroughVolume) {
  zvol::Volume volume({.block_size = 4096, .codec = compress::CodecId::kNull});
  volume.CreateFile("f", 8 * 4096);
  IoContext io;
  VolumeFileDevice device(&volume, "f", &io, 5);
  const Bytes data = RandomBytes(4096, 7);
  device.WriteAt(4096, data);
  EXPECT_EQ(volume.ReadRange("f", 4096, 4096), data);
}

TEST(RemoteImageDevice, CountsNetworkBytes) {
  const Bytes content = RandomBytes(1 << 20, 8);
  BufferSource source(content);
  IoContext io;
  NetworkAccountant network(4);
  RemoteImageDevice device(&source, &io, &network, 2);
  Bytes out(100000);
  device.ReadAt(0, out);
  EXPECT_TRUE(std::equal(out.begin(), out.end(), content.begin()));
  EXPECT_EQ(device.bytes_fetched(), 100000u);
  EXPECT_EQ(network.bytes_in(2), 100000u);
  EXPECT_EQ(network.bytes_out(0), 100000u);
  EXPECT_GT(io.elapsed_ns(), 0.0);
}

TEST(NetworkAccountant, MulticastCountsOncePerReceiver) {
  NetworkAccountant network(5);
  network.Multicast(0, {1, 2, 3}, 1000);
  EXPECT_EQ(network.bytes_out(0), 1000u);  // sent once on the wire
  EXPECT_EQ(network.bytes_in(1), 1000u);
  EXPECT_EQ(network.bytes_in(3), 1000u);
  EXPECT_EQ(network.bytes_in(4), 0u);
  EXPECT_EQ(network.TotalBytesIn(1, 4), 3000u);
}

TEST(NetworkAccountant, TransferTimeScalesWithBytes) {
  NetworkAccountant network(2);
  const double small = network.Transfer(0, 1, 1000);
  const double large = network.Transfer(0, 1, 100000000);
  EXPECT_GT(large, small * 100);
}

TEST(ParallelFs, StripesAcrossGroups) {
  ParallelFs fs({.stripe_count = 2,
                 .replica_count = 2,
                 .stripe_unit = 128 * 1024,
                 .nodes = {0, 1, 2, 3}});
  // Units alternate between group {0,1} and group {2,3}.
  const std::uint32_t n0 = fs.ServingNode(0, 0);
  const std::uint32_t n1 = fs.ServingNode(128 * 1024, 0);
  EXPECT_TRUE(n0 == 0 || n0 == 1);
  EXPECT_TRUE(n1 == 2 || n1 == 3);
}

TEST(ParallelFs, ReplicasAlternate) {
  ParallelFs fs({.stripe_count = 1,
                 .replica_count = 2,
                 .stripe_unit = 128 * 1024,
                 .nodes = {7, 8}});
  EXPECT_EQ(fs.ServingNode(0, 0), 7u);
  EXPECT_EQ(fs.ServingNode(0, 1), 8u);
}

TEST(ParallelFs, ReadAccountsBytesToServersAndClient) {
  NetworkAccountant network(8);
  ParallelFs fs({.stripe_count = 2,
                 .replica_count = 2,
                 .stripe_unit = 128 * 1024,
                 .nodes = {0, 1, 2, 3}});
  // Read 512 KiB spanning 4 stripe units starting at client node 5.
  fs.Read(network, 5, 0, 512 * 1024);
  EXPECT_EQ(network.bytes_in(5), 512u * 1024);
  std::uint64_t served = 0;
  for (std::uint32_t node : {0u, 1u, 2u, 3u}) served += fs.bytes_served(node);
  EXPECT_EQ(served, 512u * 1024);
}

TEST(ParallelFs, BadConfigRejected) {
  EXPECT_THROW(ParallelFs({.stripe_count = 2,
                           .replica_count = 2,
                           .stripe_unit = 128 * 1024,
                           .nodes = {0, 1, 2}}),
               std::invalid_argument);
}

}  // namespace
}  // namespace squirrel::sim
