// Determinism of the batch ingest pipeline: parallel WriteFile/WriteRange and
// BlockStore::PutBatch must be bit-identical to the serial reference path —
// same per-block digests, VolumeStats, StoreStats, disk offsets, clean Scrub —
// at every thread count and batch size, over randomized block mixes (holes,
// intra-file dedup hits, incompressible random blocks, compressible text).
#include <gtest/gtest.h>

#include <vector>

#include "util/rng.h"
#include "zvol/volume.h"

namespace squirrel::zvol {
namespace {

using util::Bytes;

class BufferSource final : public util::DataSource {
 public:
  explicit BufferSource(Bytes data) : data_(std::move(data)) {}
  std::uint64_t size() const override { return data_.size(); }
  void Read(std::uint64_t offset, util::MutableByteSpan out) const override {
    std::copy_n(data_.begin() + static_cast<std::ptrdiff_t>(offset), out.size(),
                out.begin());
  }

 private:
  Bytes data_;
};

constexpr std::uint32_t kBlockSize = 4096;

/// Randomized mix of block flavours: ~25% holes, ~25% duplicates of an
/// earlier block, ~25% incompressible random, ~25% compressible text. Ends
/// with a partial tail block so the unaligned path is covered too.
Bytes MixedContent(std::size_t blocks, std::uint64_t seed) {
  util::Rng rng(seed);
  Bytes data(blocks * kBlockSize + kBlockSize / 3);
  for (std::size_t b = 0; b < blocks; ++b) {
    util::MutableByteSpan block(data.data() + b * kBlockSize, kBlockSize);
    switch (rng.Below(4)) {
      case 0:  // hole
        break;
      case 1:  // duplicate of an earlier block (dedup hit), if any
        if (b > 0) {
          const std::size_t src = rng.Below(static_cast<std::uint32_t>(b));
          std::copy_n(data.begin() + static_cast<std::ptrdiff_t>(src * kBlockSize),
                      kBlockSize, block.begin());
        }
        break;
      case 2:  // incompressible
        rng.Fill(block);
        break;
      default:  // compressible text
        for (auto& byte : block) byte = static_cast<util::Byte>('a' + rng.Below(4));
        break;
    }
  }
  util::Rng(seed ^ 0x7a11).Fill(
      util::MutableByteSpan(data.data() + blocks * kBlockSize, kBlockSize / 3));
  return data;
}

VolumeConfig Config(std::size_t threads, std::size_t batch_blocks,
                    std::size_t shards = store::BlockStoreConfig{}.shards) {
  return VolumeConfig{.block_size = kBlockSize,
                      .codec = compress::CodecId::kGzip6,
                      .dedup = true,
                      .fast_hash = false,
                      .ingest = {.threads = threads, .batch_blocks = batch_blocks},
                      .shards = shards};
}

void ExpectSameStats(const VolumeStats& got, const VolumeStats& want) {
  EXPECT_EQ(got.file_count, want.file_count);
  EXPECT_EQ(got.logical_file_bytes, want.logical_file_bytes);
  EXPECT_EQ(got.unique_blocks, want.unique_blocks);
  EXPECT_EQ(got.physical_data_bytes, want.physical_data_bytes);
  EXPECT_EQ(got.ddt_disk_bytes, want.ddt_disk_bytes);
  EXPECT_EQ(got.ddt_core_bytes, want.ddt_core_bytes);
  EXPECT_EQ(got.blkptr_disk_bytes, want.blkptr_disk_bytes);
  EXPECT_EQ(got.disk_used_bytes, want.disk_used_bytes);
}

void ExpectSameStoreStats(const store::StoreStats& got,
                          const store::StoreStats& want) {
  EXPECT_EQ(got.unique_blocks, want.unique_blocks);
  EXPECT_EQ(got.total_refs, want.total_refs);
  EXPECT_EQ(got.logical_unique_bytes, want.logical_unique_bytes);
  EXPECT_EQ(got.logical_referenced_bytes, want.logical_referenced_bytes);
  EXPECT_EQ(got.physical_data_bytes, want.physical_data_bytes);
  EXPECT_EQ(got.ddt_disk_bytes, want.ddt_disk_bytes);
  EXPECT_EQ(got.ddt_core_bytes, want.ddt_core_bytes);
}

/// Every block pointer (including holes and disk offsets of non-holes) of
/// `name` must match the serial volume's.
void ExpectSameBlocks(const Volume& got, const Volume& serial,
                      const std::string& name) {
  ASSERT_EQ(got.FileBlockCount(name), serial.FileBlockCount(name));
  for (std::uint64_t b = 0; b < serial.FileBlockCount(name); ++b) {
    const BlockPtr& g = got.FileBlock(name, b);
    const BlockPtr& s = serial.FileBlock(name, b);
    EXPECT_EQ(g, s) << name << " block " << b;
    if (!s.hole) {
      EXPECT_EQ(got.block_store().DiskOffset(g.digest),
                serial.block_store().DiskOffset(s.digest))
          << name << " block " << b;
    }
  }
}

TEST(ParallelIngest, WriteFileMatchesSerialAcrossThreadsAndBatches) {
  // Sweep the shard count too: for a fixed shard count every thread/batch
  // combination must be bit-identical to the single-threaded reference with
  // the same shard count (digests, stats, disk offsets, clean scrub).
  for (const std::size_t shards : {1u, 4u, 16u}) {
  for (const std::uint64_t seed : {1u, 2u, 3u}) {
    const Bytes content = MixedContent(/*blocks=*/97, seed);
    Volume serial(Config(/*threads=*/1, /*batch_blocks=*/128, shards));
    serial.WriteFile("f", BufferSource(content));
    ASSERT_EQ(serial.ReadRange("f", 0, content.size()), content);

    for (const std::size_t threads : {2u, 8u}) {
      for (const std::size_t batch : {1u, 7u, 128u}) {
        Volume parallel(Config(threads, batch, shards));
        parallel.WriteFile("f", BufferSource(content));
        SCOPED_TRACE("shards " + std::to_string(shards) + " seed " +
                     std::to_string(seed) + " threads " +
                     std::to_string(threads) + " batch " + std::to_string(batch));
        EXPECT_EQ(parallel.ReadRange("f", 0, content.size()), content);
        ExpectSameBlocks(parallel, serial, "f");
        ExpectSameStats(parallel.Stats(), serial.Stats());
        ExpectSameStoreStats(parallel.block_store().stats(),
                             serial.block_store().stats());
        const Volume::ScrubReport scrub = parallel.Scrub();
        EXPECT_EQ(scrub.errors, 0u);
        EXPECT_EQ(scrub.dangling_refs, 0u);
      }
    }
  }
  }
}

TEST(ParallelIngest, PutBatchMatchesSerialPutLoop) {
  const Bytes content = MixedContent(/*blocks=*/64, /*seed=*/7);
  // Drop the hole blocks (Put never sees all-zero payloads) but keep the
  // duplicates, random and text blocks.
  std::vector<util::ByteSpan> blocks;
  for (std::size_t b = 0; b < 64; ++b) {
    util::ByteSpan block(content.data() + b * kBlockSize, kBlockSize);
    if (!util::IsAllZero(block)) blocks.push_back(block);
  }
  ASSERT_GT(blocks.size(), 16u);

  for (const std::size_t shards : {1u, 4u, 16u}) {
    SCOPED_TRACE("shards " + std::to_string(shards));
    store::BlockStoreConfig config{.codec = compress::CodecId::kGzip6,
                                   .dedup = true,
                                   .fast_hash = false,
                                   .ingest = {.threads = 8, .batch_blocks = 32},
                                   .shards = shards};
    store::BlockStore batched(config);
    config.ingest = {};  // serial reference
    store::BlockStore serial(config);

    const std::vector<store::PutResult> got = batched.PutBatch(blocks);
    ASSERT_EQ(got.size(), blocks.size());
    std::vector<store::PutResult> want;
    for (const util::ByteSpan block : blocks) want.push_back(serial.Put(block));
    for (std::size_t i = 0; i < blocks.size(); ++i) {
      EXPECT_EQ(got[i].digest, want[i].digest) << "block " << i;
      EXPECT_EQ(got[i].deduplicated, want[i].deduplicated) << "block " << i;
      EXPECT_EQ(got[i].logical_size, want[i].logical_size) << "block " << i;
      EXPECT_EQ(got[i].physical_size, want[i].physical_size) << "block " << i;
      EXPECT_EQ(batched.DiskOffset(got[i].digest),
                serial.DiskOffset(want[i].digest))
          << "block " << i;
      EXPECT_EQ(batched.RefCount(got[i].digest),
                serial.RefCount(want[i].digest));
    }
    ExpectSameStoreStats(batched.stats(), serial.stats());
  }
}

TEST(ParallelIngest, PutBatchDedupDisabledMintsDigestsInOrder) {
  store::BlockStoreConfig config{.codec = compress::CodecId::kNull,
                                 .dedup = false,
                                 .ingest = {.threads = 4, .batch_blocks = 16}};
  store::BlockStore batched(config);
  config.ingest = {};
  store::BlockStore serial(config);

  Bytes block(kBlockSize);
  util::Rng(11).Fill(block);
  const std::vector<util::ByteSpan> blocks(3, util::ByteSpan(block));
  const std::vector<store::PutResult> got = batched.PutBatch(blocks);
  for (std::size_t i = 0; i < blocks.size(); ++i) {
    const store::PutResult want = serial.Put(blocks[i]);
    EXPECT_EQ(got[i].digest, want.digest) << "synthetic digest order, block " << i;
    EXPECT_FALSE(got[i].deduplicated);
  }
  ExpectSameStoreStats(batched.stats(), serial.stats());
}

TEST(ParallelIngest, WriteRangeMatchesSerial) {
  for (const std::uint64_t seed : {21u, 22u}) {
    const Bytes base = MixedContent(/*blocks=*/40, seed);
    Volume serial(Config(/*threads=*/1, /*batch_blocks=*/128));
    Volume parallel(Config(/*threads=*/8, /*batch_blocks=*/5));
    serial.WriteFile("f", BufferSource(base));
    parallel.WriteFile("f", BufferSource(base));

    // Random overlapping rewrites: unaligned offsets, zero runs (punching
    // holes), growth past the end.
    util::Rng rng(seed * 977);
    for (int round = 0; round < 12; ++round) {
      const std::uint64_t offset = rng.Below(static_cast<std::uint32_t>(base.size()));
      Bytes patch(1 + rng.Below(6 * kBlockSize));
      if (round % 3 == 0) {
        // zeros — may turn whole blocks into holes
      } else {
        rng.Fill(patch);
      }
      serial.WriteRange("f", offset, patch);
      parallel.WriteRange("f", offset, patch);
    }

    SCOPED_TRACE("seed " + std::to_string(seed));
    ASSERT_EQ(serial.FileSize("f"), parallel.FileSize("f"));
    EXPECT_EQ(parallel.ReadRange("f", 0, parallel.FileSize("f")),
              serial.ReadRange("f", 0, serial.FileSize("f")));
    ASSERT_EQ(parallel.FileBlockCount("f"), serial.FileBlockCount("f"));
    for (std::uint64_t b = 0; b < serial.FileBlockCount("f"); ++b) {
      EXPECT_EQ(parallel.FileBlock("f", b), serial.FileBlock("f", b))
          << "block " << b;
    }
    ExpectSameStats(parallel.Stats(), serial.Stats());
    ExpectSameStoreStats(parallel.block_store().stats(),
                         serial.block_store().stats());
    const Volume::ScrubReport scrub = parallel.Scrub();
    EXPECT_EQ(scrub.errors, 0u);
    EXPECT_EQ(scrub.dangling_refs, 0u);
  }
}

TEST(ParallelIngest, ZeroThreadsPicksHardwareConcurrency) {
  // threads = 0 must still be deterministic (it only changes worker count).
  const Bytes content = MixedContent(/*blocks=*/33, /*seed=*/5);
  Volume serial(Config(/*threads=*/1, /*batch_blocks=*/64));
  Volume automatic(Config(/*threads=*/0, /*batch_blocks=*/64));
  serial.WriteFile("f", BufferSource(content));
  automatic.WriteFile("f", BufferSource(content));
  ExpectSameBlocks(automatic, serial, "f");
  ExpectSameStats(automatic.Stats(), serial.Stats());
}

}  // namespace
}  // namespace squirrel::zvol
