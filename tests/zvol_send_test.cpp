#include <gtest/gtest.h>

#include "util/rng.h"
#include "zvol/send_stream.h"
#include "zvol/volume.h"

namespace squirrel::zvol {
namespace {

using util::Bytes;

class BufferSource final : public util::DataSource {
 public:
  explicit BufferSource(Bytes data) : data_(std::move(data)) {}
  std::uint64_t size() const override { return data_.size(); }
  void Read(std::uint64_t offset, util::MutableByteSpan out) const override {
    std::copy_n(data_.begin() + static_cast<std::ptrdiff_t>(offset), out.size(),
                out.begin());
  }

 private:
  Bytes data_;
};

Bytes RandomBytes(std::size_t size, std::uint64_t seed) {
  Bytes data(size);
  util::Rng(seed).Fill(data);
  return data;
}

VolumeConfig SmallConfig() {
  return VolumeConfig{.block_size = 4096, .codec = compress::CodecId::kGzip6, .dedup = true};
}

/// Reads every file of `volume` at its latest state and compares.
void ExpectVolumesEqual(Volume& a, Volume& b) {
  ASSERT_EQ(a.FileNames(), b.FileNames());
  for (const std::string& name : a.FileNames()) {
    ASSERT_EQ(a.FileSize(name), b.FileSize(name)) << name;
    EXPECT_EQ(a.ReadRange(name, 0, a.FileSize(name)),
              b.ReadRange(name, 0, b.FileSize(name)))
        << name;
  }
}

TEST(SendStream, SerializeDeserializeRoundTrip) {
  SendStream stream;
  stream.incremental = true;
  stream.from_id = 3;
  stream.from_name = "from";
  stream.to_id = 4;
  stream.to_name = "to";
  stream.created_at = 12345;
  stream.block_size = 4096;
  stream.codec = "gzip6";
  stream.deleted_files = {"gone"};
  FileRecord file;
  file.name = "f";
  file.logical_size = 8192;
  file.whole_file = true;
  BlockRecord block;
  block.index = 1;
  block.logical_size = 4096;
  block.has_payload = true;
  block.payload = RandomBytes(100, 1);
  file.blocks.push_back(block);
  stream.files.push_back(file);

  const Bytes wire = stream.Serialize();
  const SendStream parsed = SendStream::Deserialize(wire);
  EXPECT_EQ(parsed.from_id, 3u);
  EXPECT_EQ(parsed.to_name, "to");
  EXPECT_EQ(parsed.codec, "gzip6");
  EXPECT_EQ(parsed.deleted_files, stream.deleted_files);
  ASSERT_EQ(parsed.files.size(), 1u);
  EXPECT_EQ(parsed.files[0].blocks[0].payload, block.payload);
  EXPECT_EQ(stream.WireSize(), wire.size());
}

TEST(SendStream, CorruptionRejected) {
  SendStream stream;
  stream.to_id = 1;
  stream.to_name = "s";
  stream.block_size = 4096;
  stream.codec = "null";
  Bytes wire = stream.Serialize();
  // Flip one payload bit — the SHA-256 trailer must catch it.
  wire[wire.size() / 2] ^= 0x01;
  EXPECT_THROW(SendStream::Deserialize(wire), std::runtime_error);
}

TEST(SendStream, TruncationRejected) {
  SendStream stream;
  stream.to_id = 1;
  stream.to_name = "s";
  stream.block_size = 4096;
  stream.codec = "null";
  Bytes wire = stream.Serialize();
  wire.resize(wire.size() - 5);
  EXPECT_THROW(SendStream::Deserialize(wire), std::runtime_error);
  EXPECT_THROW(SendStream::Deserialize(Bytes(10, 0)), std::runtime_error);
}

TEST(Send, FullStreamReplicatesVolume) {
  Volume source(SmallConfig());
  source.WriteFile("a", BufferSource(RandomBytes(10 * 4096, 1)));
  Bytes sparse(8 * 4096, 0);
  sparse[4096] = 7;
  source.WriteFile("sparse", BufferSource(sparse));
  source.CreateSnapshot("s1", 100);

  const SendStream stream = source.Send("", "s1");
  Volume replica(SmallConfig());
  replica.Receive(SendStream::Deserialize(stream.Serialize()));

  ExpectVolumesEqual(source, replica);
  EXPECT_EQ(replica.LatestSnapshot()->name, "s1");
  EXPECT_EQ(replica.LatestSnapshot()->id, source.LatestSnapshot()->id);
}

TEST(Send, IncrementalAppliesOnTopOfBase) {
  Volume source(SmallConfig());
  source.WriteFile("a", BufferSource(RandomBytes(10 * 4096, 2)));
  source.CreateSnapshot("s1", 100);

  Volume replica(SmallConfig());
  replica.Receive(source.Send("", "s1"));

  source.WriteFile("b", BufferSource(RandomBytes(6 * 4096, 3)));
  source.DeleteFile("a");
  source.CreateSnapshot("s2", 200);

  replica.Receive(source.Send("s1", "s2"));
  ExpectVolumesEqual(source, replica);
  EXPECT_FALSE(replica.HasFile("a"));
}

TEST(Send, IncrementalOmitsPayloadsTheReceiverHas) {
  Volume source(SmallConfig());
  const Bytes shared = RandomBytes(32 * 4096, 4);
  source.WriteFile("first", BufferSource(shared));
  source.CreateSnapshot("s1", 100);

  // The second file duplicates the first: the diff must carry almost no
  // payload (Squirrel's cross-similar caches produce small diffs this way).
  source.WriteFile("second", BufferSource(shared));
  source.CreateSnapshot("s2", 200);
  const SendStream diff = source.Send("s1", "s2");
  EXPECT_EQ(diff.PayloadBytes(), 0u);
  EXPECT_LT(diff.WireSize(), 4096u);  // metadata only

  Volume replica(SmallConfig());
  replica.Receive(source.Send("", "s1"));
  replica.Receive(diff);
  ExpectVolumesEqual(source, replica);
}

TEST(Send, PayloadsCompressedOnTheWire) {
  Volume source(SmallConfig());
  Bytes text(16 * 4096);
  util::Rng rng(5);
  for (auto& b : text) b = static_cast<util::Byte>('a' + rng.Below(4));
  source.WriteFile("text", BufferSource(text));
  source.CreateSnapshot("s1", 100);
  const SendStream stream = source.Send("", "s1");
  EXPECT_LT(stream.PayloadBytes(), text.size() / 2);
}

TEST(Send, DuplicatePayloadSentOnceWithinStream) {
  Volume source(SmallConfig());
  const Bytes block = RandomBytes(4096, 6);
  Bytes content;
  for (int i = 0; i < 10; ++i) content.insert(content.end(), block.begin(), block.end());
  source.WriteFile("dup", BufferSource(content));
  source.CreateSnapshot("s1", 100);
  const SendStream stream = source.Send("", "s1");
  // Ten references, one payload.
  EXPECT_LE(stream.PayloadBytes(), 4096u + 64);
  Volume replica(SmallConfig());
  replica.Receive(stream);
  EXPECT_EQ(replica.ReadRange("dup", 0, content.size()), content);
}

TEST(Receive, BaseMismatchThrows) {
  Volume source(SmallConfig());
  source.CreateFile("f", 4096);
  source.CreateSnapshot("s1", 100);
  source.CreateFile("g", 4096);
  source.CreateSnapshot("s2", 200);
  source.CreateFile("h", 4096);
  source.CreateSnapshot("s3", 300);

  Volume replica(SmallConfig());
  replica.Receive(source.Send("", "s1"));
  // Skipping s2: applying s2->s3 on a replica at s1 must fail.
  EXPECT_THROW(replica.Receive(source.Send("s2", "s3")),
               StreamMismatchError);
  // The correct diff still applies afterwards.
  replica.Receive(source.Send("s1", "s2"));
  replica.Receive(source.Send("s2", "s3"));
  EXPECT_EQ(replica.LatestSnapshot()->name, "s3");
}

TEST(Receive, FullStreamIntoNonEmptyVolumeThrows) {
  Volume source(SmallConfig());
  source.CreateFile("f", 4096);
  source.CreateSnapshot("s1", 100);
  Volume replica(SmallConfig());
  replica.Receive(source.Send("", "s1"));
  EXPECT_THROW(replica.Receive(source.Send("", "s1")), StreamMismatchError);
}

TEST(Receive, BlockSizeMismatchThrows) {
  Volume source(SmallConfig());
  source.CreateFile("f", 4096);
  source.CreateSnapshot("s1", 100);
  Volume replica(VolumeConfig{.block_size = 8192, .codec = compress::CodecId::kGzip6});
  EXPECT_THROW(replica.Receive(source.Send("", "s1")), StreamMismatchError);
}

TEST(ReceiveFull, ResetsStaleReplica) {
  Volume source(SmallConfig());
  source.WriteFile("a", BufferSource(RandomBytes(4 * 4096, 7)));
  source.CreateSnapshot("s1", 100);

  Volume replica(SmallConfig());
  replica.Receive(source.Send("", "s1"));

  // Source advances twice and prunes; the replica's base is gone.
  source.WriteFile("b", BufferSource(RandomBytes(4 * 4096, 8)));
  source.CreateSnapshot("s2", 2000000);
  source.WriteFile("c", BufferSource(RandomBytes(4 * 4096, 9)));
  source.CreateSnapshot("s3", 3000000);
  source.PruneSnapshots(10, 4000000);
  ASSERT_EQ(source.FindSnapshot("s1"), nullptr);

  replica.ReceiveFull(source.Send("", "s3"));
  ExpectVolumesEqual(source, replica);
  EXPECT_EQ(replica.LatestSnapshot()->name, "s3");
  EXPECT_EQ(replica.snapshots().size(), 1u);
}

TEST(Send, ShrunkFileTailBlocksReleasedOnReceiver) {
  Volume source(SmallConfig());
  source.WriteFile("f", BufferSource(RandomBytes(8 * 4096, 10)));
  source.CreateSnapshot("s1", 100);
  Volume replica(SmallConfig());
  replica.Receive(source.Send("", "s1"));

  source.WriteFile("f", BufferSource(RandomBytes(2 * 4096, 11)));
  source.CreateSnapshot("s2", 200);
  replica.Receive(source.Send("s1", "s2"));
  ExpectVolumesEqual(source, replica);
  EXPECT_EQ(replica.FileSize("f"), 2u * 4096);
}

TEST(Send, FromMustPrecedeTo) {
  Volume source(SmallConfig());
  source.CreateFile("f", 4096);
  source.CreateSnapshot("s1", 100);
  source.CreateSnapshot("s2", 200);
  EXPECT_THROW(source.Send("s2", "s1"), std::invalid_argument);
  EXPECT_THROW(source.Send("s1", "missing"), NoSuchSnapshotError);
  EXPECT_THROW(source.Send("missing", "s2"), NoSuchSnapshotError);
}

}  // namespace
}  // namespace squirrel::zvol
