#include <gtest/gtest.h>

#include "util/hash.h"
#include "util/rng.h"
#include "zvol/send_stream.h"
#include "zvol/volume.h"

namespace squirrel::zvol {
namespace {

using util::Bytes;

class BufferSource final : public util::DataSource {
 public:
  explicit BufferSource(Bytes data) : data_(std::move(data)) {}
  std::uint64_t size() const override { return data_.size(); }
  void Read(std::uint64_t offset, util::MutableByteSpan out) const override {
    std::copy_n(data_.begin() + static_cast<std::ptrdiff_t>(offset), out.size(),
                out.begin());
  }

 private:
  Bytes data_;
};

Bytes RandomBytes(std::size_t size, std::uint64_t seed) {
  Bytes data(size);
  util::Rng(seed).Fill(data);
  return data;
}

VolumeConfig SmallConfig() {
  return VolumeConfig{.block_size = 4096, .codec = compress::CodecId::kGzip6, .dedup = true};
}

/// Reads every file of `volume` at its latest state and compares.
void ExpectVolumesEqual(Volume& a, Volume& b) {
  ASSERT_EQ(a.FileNames(), b.FileNames());
  for (const std::string& name : a.FileNames()) {
    ASSERT_EQ(a.FileSize(name), b.FileSize(name)) << name;
    EXPECT_EQ(a.ReadRange(name, 0, a.FileSize(name)),
              b.ReadRange(name, 0, b.FileSize(name)))
        << name;
  }
}

TEST(SendStream, SerializeDeserializeRoundTrip) {
  SendStream stream;
  stream.incremental = true;
  stream.from_id = 3;
  stream.from_name = "from";
  stream.to_id = 4;
  stream.to_name = "to";
  stream.created_at = 12345;
  stream.block_size = 4096;
  stream.codec = "gzip6";
  stream.deleted_files = {"gone"};
  FileRecord file;
  file.name = "f";
  file.logical_size = 8192;
  file.whole_file = true;
  BlockRecord block;
  block.index = 1;
  block.logical_size = 4096;
  block.has_payload = true;
  block.payload = RandomBytes(100, 1);
  file.blocks.push_back(block);
  stream.files.push_back(file);

  const Bytes wire = stream.Serialize();
  const SendStream parsed = SendStream::Deserialize(wire);
  EXPECT_EQ(parsed.from_id, 3u);
  EXPECT_EQ(parsed.to_name, "to");
  EXPECT_EQ(parsed.codec, "gzip6");
  EXPECT_EQ(parsed.deleted_files, stream.deleted_files);
  ASSERT_EQ(parsed.files.size(), 1u);
  EXPECT_EQ(parsed.files[0].blocks[0].payload, block.payload);
  EXPECT_EQ(stream.WireSize(), wire.size());
}

TEST(SendStream, CorruptionRejected) {
  SendStream stream;
  stream.to_id = 1;
  stream.to_name = "s";
  stream.block_size = 4096;
  stream.codec = "null";
  Bytes wire = stream.Serialize();
  // Flip one payload bit — the SHA-256 trailer must catch it.
  wire[wire.size() / 2] ^= 0x01;
  EXPECT_THROW(SendStream::Deserialize(wire), std::runtime_error);
}

TEST(SendStream, TruncationRejected) {
  SendStream stream;
  stream.to_id = 1;
  stream.to_name = "s";
  stream.block_size = 4096;
  stream.codec = "null";
  Bytes wire = stream.Serialize();
  wire.resize(wire.size() - 5);
  EXPECT_THROW(SendStream::Deserialize(wire), std::runtime_error);
  EXPECT_THROW(SendStream::Deserialize(Bytes(10, 0)), std::runtime_error);
}

// Hand-built writer replicating the version-1 wire format ("SQSS" magic, no
// per-record checksums) so the compatibility test cannot accidentally lean on
// the production serializer.
class V1Writer {
 public:
  void U8(std::uint8_t v) { out_.push_back(v); }
  void U32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i) {
      out_.push_back(static_cast<util::Byte>(v >> (8 * i)));
    }
  }
  void U64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      out_.push_back(static_cast<util::Byte>(v >> (8 * i)));
    }
  }
  void Str(const std::string& s) {
    U32(static_cast<std::uint32_t>(s.size()));
    out_.insert(out_.end(), s.begin(), s.end());
  }
  void Blob(util::ByteSpan b) {
    U32(static_cast<std::uint32_t>(b.size()));
    out_.insert(out_.end(), b.begin(), b.end());
  }
  /// Appends the SHA-256 trailer and returns the finished wire bytes.
  Bytes Seal() {
    const auto checksum = util::Sha256(out_);
    out_.insert(out_.end(), checksum.begin(), checksum.end());
    return std::move(out_);
  }

 private:
  Bytes out_;
};

TEST(SendStream, Version1StreamWithoutRecordChecksumsStillParses) {
  const Bytes payload = RandomBytes(100, 21);
  V1Writer w;
  w.U32(0x53515353);  // kMagicV1 "SQSS"
  w.U8(0);            // not incremental
  w.U64(0);           // from_id
  w.Str("");          // from_name
  w.U64(9);           // to_id
  w.Str("v1-snap");   // to_name
  w.U64(777);         // created_at
  w.U32(4096);        // block_size
  w.Str("gzip6");     // codec
  w.U32(0);           // no deleted files
  w.U32(1);           // one file
  w.Str("f");
  w.U64(4096);  // logical_size
  w.U8(1);      // whole_file
  w.U32(1);     // one block
  w.U64(0);     // index
  w.U8(2);      // flags: has_payload, not hole, not compressed
  {
    BlockRecord proto;  // a zero digest, sized like the real field
    w.Blob(util::ByteSpan(proto.digest.bytes.data(), proto.digest.bytes.size()));
  }
  w.U32(4096);  // logical_size
  // Version 1: payload follows immediately — no U64 record checksum.
  w.Blob(payload);

  const SendStream parsed = SendStream::Deserialize(w.Seal());
  EXPECT_FALSE(parsed.incremental);
  EXPECT_EQ(parsed.to_id, 9u);
  EXPECT_EQ(parsed.to_name, "v1-snap");
  EXPECT_EQ(parsed.block_size, 4096u);
  ASSERT_EQ(parsed.files.size(), 1u);
  ASSERT_EQ(parsed.files[0].blocks.size(), 1u);
  const BlockRecord& block = parsed.files[0].blocks[0];
  EXPECT_TRUE(block.has_payload);
  EXPECT_EQ(block.payload, payload);
  // The parser synthesizes the missing record checksum so downstream
  // validation treats v1 and v2 records uniformly.
  EXPECT_EQ(block.payload_checksum, SendStream::PayloadChecksum(payload));
}

TEST(SendStream, TruncatedTrailingChecksumRejected) {
  SendStream stream;
  stream.to_id = 1;
  stream.to_name = "s";
  stream.block_size = 4096;
  stream.codec = "gzip6";
  FileRecord file;
  file.name = "f";
  file.logical_size = 4096;
  file.whole_file = true;
  BlockRecord block;
  block.has_payload = true;
  block.logical_size = 4096;
  block.payload = RandomBytes(64, 22);
  file.blocks.push_back(block);
  stream.files.push_back(file);

  Bytes wire = stream.Serialize();
  // Chop half the SHA-256 trailer: the remaining bytes reinterpret as a
  // (body, trailer) pair whose checksum cannot match.
  wire.resize(wire.size() - 8);
  EXPECT_THROW(SendStream::Deserialize(wire), StreamCorruptError);
  // And losing the whole trailer plus body bytes below the 32-byte floor is
  // reported as a truncation, not a parse error.
  EXPECT_THROW(SendStream::Deserialize(Bytes(31, 0)), StreamCorruptError);
}

TEST(Send, FullStreamReplicatesVolume) {
  Volume source(SmallConfig());
  source.WriteFile("a", BufferSource(RandomBytes(10 * 4096, 1)));
  Bytes sparse(8 * 4096, 0);
  sparse[4096] = 7;
  source.WriteFile("sparse", BufferSource(sparse));
  source.CreateSnapshot("s1", 100);

  const SendStream stream = source.Send("", "s1");
  Volume replica(SmallConfig());
  replica.Receive(SendStream::Deserialize(stream.Serialize()));

  ExpectVolumesEqual(source, replica);
  EXPECT_EQ(replica.LatestSnapshot()->name, "s1");
  EXPECT_EQ(replica.LatestSnapshot()->id, source.LatestSnapshot()->id);
}

TEST(Send, IncrementalAppliesOnTopOfBase) {
  Volume source(SmallConfig());
  source.WriteFile("a", BufferSource(RandomBytes(10 * 4096, 2)));
  source.CreateSnapshot("s1", 100);

  Volume replica(SmallConfig());
  replica.Receive(source.Send("", "s1"));

  source.WriteFile("b", BufferSource(RandomBytes(6 * 4096, 3)));
  source.DeleteFile("a");
  source.CreateSnapshot("s2", 200);

  replica.Receive(source.Send("s1", "s2"));
  ExpectVolumesEqual(source, replica);
  EXPECT_FALSE(replica.HasFile("a"));
}

TEST(Send, IncrementalOmitsPayloadsTheReceiverHas) {
  Volume source(SmallConfig());
  const Bytes shared = RandomBytes(32 * 4096, 4);
  source.WriteFile("first", BufferSource(shared));
  source.CreateSnapshot("s1", 100);

  // The second file duplicates the first: the diff must carry almost no
  // payload (Squirrel's cross-similar caches produce small diffs this way).
  source.WriteFile("second", BufferSource(shared));
  source.CreateSnapshot("s2", 200);
  const SendStream diff = source.Send("s1", "s2");
  EXPECT_EQ(diff.PayloadBytes(), 0u);
  EXPECT_LT(diff.WireSize(), 4096u);  // metadata only

  Volume replica(SmallConfig());
  replica.Receive(source.Send("", "s1"));
  replica.Receive(diff);
  ExpectVolumesEqual(source, replica);
}

TEST(Send, PayloadsCompressedOnTheWire) {
  Volume source(SmallConfig());
  Bytes text(16 * 4096);
  util::Rng rng(5);
  for (auto& b : text) b = static_cast<util::Byte>('a' + rng.Below(4));
  source.WriteFile("text", BufferSource(text));
  source.CreateSnapshot("s1", 100);
  const SendStream stream = source.Send("", "s1");
  EXPECT_LT(stream.PayloadBytes(), text.size() / 2);
}

TEST(Send, DuplicatePayloadSentOnceWithinStream) {
  Volume source(SmallConfig());
  const Bytes block = RandomBytes(4096, 6);
  Bytes content;
  for (int i = 0; i < 10; ++i) content.insert(content.end(), block.begin(), block.end());
  source.WriteFile("dup", BufferSource(content));
  source.CreateSnapshot("s1", 100);
  const SendStream stream = source.Send("", "s1");
  // Ten references, one payload.
  EXPECT_LE(stream.PayloadBytes(), 4096u + 64);
  Volume replica(SmallConfig());
  replica.Receive(stream);
  EXPECT_EQ(replica.ReadRange("dup", 0, content.size()), content);
}

TEST(Receive, BaseMismatchThrows) {
  Volume source(SmallConfig());
  source.CreateFile("f", 4096);
  source.CreateSnapshot("s1", 100);
  source.CreateFile("g", 4096);
  source.CreateSnapshot("s2", 200);
  source.CreateFile("h", 4096);
  source.CreateSnapshot("s3", 300);

  Volume replica(SmallConfig());
  replica.Receive(source.Send("", "s1"));
  // Skipping s2: applying s2->s3 on a replica at s1 must fail.
  EXPECT_THROW(replica.Receive(source.Send("s2", "s3")),
               StreamMismatchError);
  // The correct diff still applies afterwards.
  replica.Receive(source.Send("s1", "s2"));
  replica.Receive(source.Send("s2", "s3"));
  EXPECT_EQ(replica.LatestSnapshot()->name, "s3");
}

TEST(Receive, FullStreamIntoNonEmptyVolumeThrows) {
  Volume source(SmallConfig());
  source.CreateFile("f", 4096);
  source.CreateSnapshot("s1", 100);
  Volume replica(SmallConfig());
  replica.Receive(source.Send("", "s1"));
  EXPECT_THROW(replica.Receive(source.Send("", "s1")), StreamMismatchError);
}

TEST(Receive, BlockSizeMismatchThrows) {
  Volume source(SmallConfig());
  source.CreateFile("f", 4096);
  source.CreateSnapshot("s1", 100);
  Volume replica(VolumeConfig{.block_size = 8192, .codec = compress::CodecId::kGzip6});
  EXPECT_THROW(replica.Receive(source.Send("", "s1")), StreamMismatchError);
}

TEST(ReceiveFull, ResetsStaleReplica) {
  Volume source(SmallConfig());
  source.WriteFile("a", BufferSource(RandomBytes(4 * 4096, 7)));
  source.CreateSnapshot("s1", 100);

  Volume replica(SmallConfig());
  replica.Receive(source.Send("", "s1"));

  // Source advances twice and prunes; the replica's base is gone.
  source.WriteFile("b", BufferSource(RandomBytes(4 * 4096, 8)));
  source.CreateSnapshot("s2", 2000000);
  source.WriteFile("c", BufferSource(RandomBytes(4 * 4096, 9)));
  source.CreateSnapshot("s3", 3000000);
  source.PruneSnapshots(10, 4000000);
  ASSERT_EQ(source.FindSnapshot("s1"), nullptr);

  replica.ReceiveFull(source.Send("", "s3"));
  ExpectVolumesEqual(source, replica);
  EXPECT_EQ(replica.LatestSnapshot()->name, "s3");
  EXPECT_EQ(replica.snapshots().size(), 1u);
}

TEST(Send, ShrunkFileTailBlocksReleasedOnReceiver) {
  Volume source(SmallConfig());
  source.WriteFile("f", BufferSource(RandomBytes(8 * 4096, 10)));
  source.CreateSnapshot("s1", 100);
  Volume replica(SmallConfig());
  replica.Receive(source.Send("", "s1"));

  source.WriteFile("f", BufferSource(RandomBytes(2 * 4096, 11)));
  source.CreateSnapshot("s2", 200);
  replica.Receive(source.Send("s1", "s2"));
  ExpectVolumesEqual(source, replica);
  EXPECT_EQ(replica.FileSize("f"), 2u * 4096);
}

TEST(Send, FromMustPrecedeTo) {
  Volume source(SmallConfig());
  source.CreateFile("f", 4096);
  source.CreateSnapshot("s1", 100);
  source.CreateSnapshot("s2", 200);
  EXPECT_THROW(source.Send("s2", "s1"), std::invalid_argument);
  EXPECT_THROW(source.Send("s1", "missing"), NoSuchSnapshotError);
  EXPECT_THROW(source.Send("missing", "s2"), NoSuchSnapshotError);
}

}  // namespace
}  // namespace squirrel::zvol
