// Placement layer units (ISSUE 9): GF(256) field axioms, Reed–Solomon
// roundtrips over every erasure pattern up to m losses, the deterministic
// storage-set layout, the shard side table, and seeded corrupt-shard fuzz
// (the *CorruptionFuzz* family runs under ASan).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "placement/gf256.h"
#include "placement/layout.h"
#include "placement/reed_solomon.h"
#include "placement/shard_store.h"
#include "util/hash.h"
#include "util/rng.h"

namespace squirrel::placement {
namespace {

using util::Bytes;

Bytes MakePayload(std::size_t size, std::uint64_t seed) {
  util::Rng rng(seed);
  Bytes payload(size);
  for (auto& b : payload) b = static_cast<std::uint8_t>(rng.Next());
  return payload;
}

util::Digest DigestOf(std::uint64_t seed) {
  const Bytes payload = MakePayload(32, seed);
  return util::HashBlock(payload);
}

// --- GF(256) field axioms ---------------------------------------------------

TEST(PlacementGf256, AdditionIsXorAndSelfInverse) {
  for (unsigned a = 0; a < 256; ++a) {
    EXPECT_EQ(gf256::Add(static_cast<std::uint8_t>(a), 0),
              static_cast<std::uint8_t>(a));
    EXPECT_EQ(gf256::Add(static_cast<std::uint8_t>(a),
                         static_cast<std::uint8_t>(a)),
              0);
  }
}

TEST(PlacementGf256, MultiplicationIdentityAndZero) {
  for (unsigned a = 0; a < 256; ++a) {
    const auto x = static_cast<std::uint8_t>(a);
    EXPECT_EQ(gf256::Mul(x, 1), x);
    EXPECT_EQ(gf256::Mul(1, x), x);
    EXPECT_EQ(gf256::Mul(x, 0), 0);
    EXPECT_EQ(gf256::Mul(0, x), 0);
  }
}

TEST(PlacementGf256, MultiplicationCommutesAndAssociates) {
  // Spot-check associativity/commutativity on a seeded sample (full triple
  // product space is 2^24 — overkill for a unit suite).
  util::Rng rng(99);
  for (int i = 0; i < 2000; ++i) {
    const auto a = static_cast<std::uint8_t>(rng.Next());
    const auto b = static_cast<std::uint8_t>(rng.Next());
    const auto c = static_cast<std::uint8_t>(rng.Next());
    EXPECT_EQ(gf256::Mul(a, b), gf256::Mul(b, a));
    EXPECT_EQ(gf256::Mul(gf256::Mul(a, b), c), gf256::Mul(a, gf256::Mul(b, c)));
    EXPECT_EQ(gf256::Mul(a, gf256::Add(b, c)),
              gf256::Add(gf256::Mul(a, b), gf256::Mul(a, c)))
        << "distributivity";
  }
}

TEST(PlacementGf256, EveryNonzeroElementHasAnInverse) {
  for (unsigned a = 1; a < 256; ++a) {
    const auto x = static_cast<std::uint8_t>(a);
    const std::uint8_t inv = gf256::Inv(x);
    EXPECT_EQ(gf256::Mul(x, inv), 1) << "a = " << a;
    EXPECT_EQ(gf256::Div(x, x), 1);
  }
}

TEST(PlacementGf256, MulAccumulateMatchesScalarLoop) {
  const Bytes in = MakePayload(257, 7);
  for (const std::uint8_t c : {0, 1, 2, 29, 255}) {
    Bytes out(in.size(), 0x5A);
    Bytes expected = out;
    for (std::size_t i = 0; i < in.size(); ++i) {
      expected[i] = gf256::Add(expected[i], gf256::Mul(c, in[i]));
    }
    gf256::MulAccumulate(c, in.data(), out.data(), in.size());
    EXPECT_EQ(out, expected) << "c = " << unsigned(c);
  }
}

// --- Reed–Solomon ----------------------------------------------------------

TEST(PlacementReedSolomon, RejectsUnusableParameters) {
  EXPECT_THROW(ReedSolomon(0, 1), CodecError);
  EXPECT_THROW(ReedSolomon(1, 0), CodecError);
  EXPECT_THROW(ReedSolomon(200, 57), CodecError);  // k + m > 256
  EXPECT_NO_THROW(ReedSolomon(200, 56));
}

TEST(PlacementReedSolomon, ShardGeometry) {
  const ReedSolomon rs(4, 2);
  EXPECT_EQ(rs.ShardSize(0), 0u);
  EXPECT_EQ(rs.ShardSize(1), 1u);
  EXPECT_EQ(rs.ShardSize(4), 1u);
  EXPECT_EQ(rs.ShardSize(5), 2u);
  EXPECT_EQ(rs.ShardSize(65536), 16384u);
}

// Every erasure pattern with at most m losses must decode, for several
// (k, m) geometries and payload sizes (including non-multiples of k).
TEST(PlacementReedSolomon, RoundtripEveryErasurePatternUpToMLosses) {
  const std::vector<std::pair<unsigned, unsigned>> geometries = {
      {1, 1}, {2, 1}, {2, 2}, {3, 2}, {4, 2}, {5, 3}};
  for (const auto& [k, m] : geometries) {
    const ReedSolomon rs(k, m);
    const unsigned n = k + m;
    for (const std::size_t size : {std::size_t{1}, std::size_t{k * 13 + 1},
                                   std::size_t{4096}}) {
      const Bytes payload = MakePayload(size, 1000 + k * 10 + m);
      const std::vector<Bytes> shards = rs.Encode(payload);
      ASSERT_EQ(shards.size(), n);
      // Enumerate every subset of shards to erase, up to m of them.
      for (std::uint32_t mask = 0; mask < (1u << n); ++mask) {
        if (static_cast<unsigned>(__builtin_popcount(mask)) > m) continue;
        std::vector<std::optional<Bytes>> present(n);
        for (unsigned i = 0; i < n; ++i) {
          if (!(mask & (1u << i))) present[i] = shards[i];
        }
        const Bytes rebuilt = rs.Reconstruct(present, payload.size());
        EXPECT_EQ(rebuilt, payload)
            << "k=" << k << " m=" << m << " size=" << size
            << " erased mask=" << mask;
      }
    }
  }
}

TEST(PlacementReedSolomon, FewerThanKSurvivorsThrows) {
  const ReedSolomon rs(3, 2);
  const Bytes payload = MakePayload(300, 5);
  const std::vector<Bytes> shards = rs.Encode(payload);
  std::vector<std::optional<Bytes>> present(5);
  present[0] = shards[0];
  present[4] = shards[4];  // only 2 of 3 required shards
  EXPECT_THROW(rs.Reconstruct(present, payload.size()), CodecError);
}

TEST(PlacementReedSolomon, EncodeIsDeterministic) {
  const ReedSolomon a(4, 2);
  const ReedSolomon b(4, 2);
  const Bytes payload = MakePayload(1000, 77);
  EXPECT_EQ(a.Encode(payload), b.Encode(payload));
}

// --- storage-set layout -----------------------------------------------------

TEST(PlacementLayout, ValidateRejectsBadConfigs) {
  PlacementConfig config;
  config.policy = PolicyKind::kStriped;
  config.data_shards = 0;
  EXPECT_THROW(config.Validate(), PlacementError);
  config.data_shards = 4;
  config.parity_shards = 0;
  EXPECT_THROW(config.Validate(), PlacementError);
  config.parity_shards = 2;
  config.storage_set_size = 5;  // < k + m
  EXPECT_THROW(config.Validate(), PlacementError);
  config.storage_set_size = 6;
  EXPECT_NO_THROW(config.Validate());
  // Full replication always validates, whatever the stripe fields say.
  config.policy = PolicyKind::kFullReplication;
  config.data_shards = 0;
  EXPECT_NO_THROW(config.Validate());
}

TEST(PlacementLayout, GroupsConsecutiveNodesIntoSets) {
  PlacementConfig config;
  config.policy = PolicyKind::kStriped;
  config.data_shards = 4;
  config.parity_shards = 2;
  const StorageSetLayout layout(config, /*compute_count=*/14);
  EXPECT_EQ(layout.set_count(), 3u);  // 6 + 6 + trailing 2
  EXPECT_EQ(layout.SetOfNode(1), 0u);
  EXPECT_EQ(layout.SetOfNode(6), 0u);
  EXPECT_EQ(layout.SetOfNode(7), 1u);
  EXPECT_EQ(layout.SetOfNode(13), 2u);
  EXPECT_EQ(layout.SetMembers(0),
            (std::vector<std::uint32_t>{1, 2, 3, 4, 5, 6}));
  EXPECT_EQ(layout.SetMembers(2), (std::vector<std::uint32_t>{13, 14}));
  EXPECT_TRUE(layout.StripedSet(0));
  EXPECT_TRUE(layout.StripedSet(1));
  EXPECT_FALSE(layout.StripedSet(2));  // 2 nodes cannot hold a 6-shard stripe
  EXPECT_TRUE(layout.NodeStriped(1));
  EXPECT_FALSE(layout.NodeStriped(13));
}

TEST(PlacementLayout, ShardAssignmentIsDeterministicAndConsistent) {
  PlacementConfig config;
  config.policy = PolicyKind::kStriped;
  config.data_shards = 4;
  config.parity_shards = 2;
  config.storage_set_size = 8;  // set larger than the stripe
  const StorageSetLayout layout(config, /*compute_count=*/16);
  const StorageSetLayout layout2(config, /*compute_count=*/16);
  for (std::uint64_t s = 0; s < 64; ++s) {
    const util::Digest digest = DigestOf(s);
    for (std::uint32_t set = 0; set < layout.set_count(); ++set) {
      std::vector<std::uint32_t> holders;
      for (std::uint32_t shard = 0; shard < config.total_shards(); ++shard) {
        const std::uint32_t node = layout.NodeForShard(set, digest, shard);
        EXPECT_EQ(node, layout2.NodeForShard(set, digest, shard))
            << "same config must place identically";
        EXPECT_EQ(layout.SetOfNode(node), set);
        // Inverse mapping round-trips.
        const auto held = layout.ShardOfNode(node, digest);
        ASSERT_TRUE(held.has_value());
        EXPECT_EQ(*held, shard);
        holders.push_back(node);
      }
      // k + m distinct members per block: losing one node loses at most
      // one shard.
      std::sort(holders.begin(), holders.end());
      EXPECT_EQ(std::unique(holders.begin(), holders.end()), holders.end());
      // Members outside the stripe rotation hold nothing for this digest.
      std::uint32_t holding = 0;
      for (const std::uint32_t member : layout.SetMembers(set)) {
        holding += layout.ShardOfNode(member, digest).has_value();
      }
      EXPECT_EQ(holding, config.total_shards());
    }
  }
}

// --- shard store ------------------------------------------------------------

TEST(PlacementShardStore, PutFindEraseAndByteAccounting) {
  ShardStore store;
  const util::Digest d1 = DigestOf(1);
  const util::Digest d2 = DigestOf(2);
  store.Put(d1, 2, 100, Bytes(25, 0xAA));
  store.Put(d2, 0, 64, Bytes(16, 0xBB));
  EXPECT_EQ(store.shard_count(), 2u);
  EXPECT_EQ(store.shard_bytes(), 41u);
  ASSERT_NE(store.Find(d1), nullptr);
  EXPECT_EQ(store.Find(d1)->shard_index, 2u);
  EXPECT_EQ(store.Find(d1)->payload_size, 100u);
  // Re-putting replaces, not double-counts.
  store.Put(d1, 3, 100, Bytes(30, 0xCC));
  EXPECT_EQ(store.shard_count(), 2u);
  EXPECT_EQ(store.shard_bytes(), 46u);
  store.Erase(d1);
  EXPECT_EQ(store.Find(d1), nullptr);
  EXPECT_EQ(store.shard_bytes(), 16u);
  store.Clear();
  EXPECT_EQ(store.shard_count(), 0u);
  EXPECT_EQ(store.shard_bytes(), 0u);
}

// --- corrupt-shard fuzz (ASan family) --------------------------------------

// Seeded fuzz: flip bytes in random shards, erase up to m others, and
// require that Reconstruct either returns (possibly wrong bytes — the
// digest check upstream owns detection) or throws CodecError. It must
// never crash, loop, or read out of bounds (ASan enforces the last).
TEST(PlacementCorruptionFuzz, CorruptShardsNeverCrashReconstruct) {
  util::Rng rng(20140610);
  const std::vector<std::pair<unsigned, unsigned>> geometries = {
      {2, 1}, {4, 2}, {5, 3}};
  for (const auto& [k, m] : geometries) {
    const ReedSolomon rs(k, m);
    const unsigned n = k + m;
    for (int round = 0; round < 200; ++round) {
      const std::size_t size = 1 + rng.Below(2048);
      const Bytes payload = MakePayload(size, rng.Next());
      std::vector<Bytes> shards = rs.Encode(payload);
      // Corrupt a few random bytes across random shards.
      const int flips = 1 + static_cast<int>(rng.Below(8));
      for (int f = 0; f < flips; ++f) {
        Bytes& shard = shards[rng.Below(n)];
        if (shard.empty()) continue;
        shard[rng.Below(shard.size())] ^=
            static_cast<std::uint8_t>(1 + rng.Below(255));
      }
      // Erase a random subset (possibly more than m — then it must throw).
      std::vector<std::optional<Bytes>> present(n);
      unsigned survivors = 0;
      for (unsigned i = 0; i < n; ++i) {
        if (!rng.Chance(0.3)) {
          present[i] = shards[i];
          ++survivors;
        }
      }
      if (survivors < k) {
        EXPECT_THROW(rs.Reconstruct(present, payload.size()), CodecError);
        continue;
      }
      const Bytes rebuilt = rs.Reconstruct(present, payload.size());
      EXPECT_EQ(rebuilt.size(), payload.size());
    }
  }
}

// Truncated and oversized shards must be rejected, not read out of bounds.
// The victim is always a data shard: Reconstruct only length-checks the
// first k present shards it actually selects, and with every slot filled
// those are exactly the data shards.
TEST(PlacementCorruptionFuzz, MismatchedShardLengthsThrow) {
  const ReedSolomon rs(3, 2);
  const Bytes payload = MakePayload(999, 3);
  util::Rng rng(42);
  for (int round = 0; round < 100; ++round) {
    std::vector<Bytes> shards = rs.Encode(payload);
    Bytes& victim = shards[rng.Below(rs.data_shards())];
    if (rng.Chance(0.5)) {
      victim.resize(victim.size() / 2);  // truncate
    } else {
      victim.resize(victim.size() + 1 + rng.Below(16));  // grow
    }
    std::vector<std::optional<Bytes>> present(shards.size());
    for (std::size_t i = 0; i < shards.size(); ++i) present[i] = shards[i];
    EXPECT_THROW(rs.Reconstruct(present, payload.size()), CodecError);
  }
}

}  // namespace
}  // namespace squirrel::placement
