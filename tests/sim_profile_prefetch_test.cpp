// Profile-guided boot prefetch: the BootProfile wire format, the
// recording-is-free and prefetch-off bit-identity contracts, the replay
// overlap win, and the degraded-boot pre-heal path.

#include <gtest/gtest.h>

#include <vector>

#include "core/squirrel.h"
#include "sim/devices.h"
#include "sim/io_context.h"
#include "sim/profile_prefetch.h"
#include "util/rng.h"
#include "vmi/boot_profile.h"

namespace squirrel::core {
namespace {

using util::Bytes;

class BufferSource final : public util::DataSource {
 public:
  explicit BufferSource(Bytes data) : data_(std::move(data)) {}
  std::uint64_t size() const override { return data_.size(); }
  void Read(std::uint64_t offset, util::MutableByteSpan out) const override {
    std::copy_n(data_.begin() + static_cast<std::ptrdiff_t>(offset), out.size(),
                out.begin());
  }

 private:
  Bytes data_;
};

SquirrelConfig SmallConfig() {
  SquirrelConfig config;
  config.volume = zvol::VolumeConfig{.block_size = 4096,
                                     .codec = compress::CodecId::kGzip6,
                                     .dedup = true};
  // Give the ccVolumes a decompressed-block ARC so profile replay has a
  // cache to warm (the warm is the decompression-CPU half of the win).
  config.volume.read.cache_bytes = 8ull << 20;
  // Pin the unsharded cache layout: these tests assert strict timing
  // inequalities (replay < cold) whose margins assume the warm pass stays
  // fully resident in one whole-budget ARC; a 16-way stripe split lets hot
  // stripes overflow and evict the pre-warmed blocks.
  config.volume.shards = 1;
  return config;
}

Bytes CacheContent(std::size_t blocks) {
  Bytes content(blocks * 4096);
  util::Rng(99).Fill(content);  // incompressible-ish, all blocks unique
  return content;
}

struct BootRun {
  BootReport report;
  double elapsed_ns = 0.0;
};

/// Registers one image and boots it on node 1 under the given I/O config.
/// The whole cluster is rebuilt per run so store/cache state is identical.
/// `corrupt_stride` > 0 corrupts every Nth ccVolume block before the boot.
BootRun RunBoot(const sim::IoContextConfig& io_config,
                const BootProfileRun* profile, std::size_t blocks = 96,
                std::uint64_t corrupt_stride = 0) {
  SquirrelCluster cluster(SmallConfig(), 2);
  const Bytes content = CacheContent(blocks);
  cluster.Register({"img", BufferSource(content), SimClock::FromSeconds(1000)});

  if (corrupt_stride > 0) {
    zvol::Volume& cc = cluster.compute_node(1).volume();
    const std::string file = SquirrelCluster::CacheFileName("img");
    for (std::uint64_t b = 0; b < cc.FileBlockCount(file);
         b += corrupt_stride) {
      cc.CorruptBlockForTesting(file, b);
    }
  }

  Bytes base = content;
  BufferSource base_image(base);
  std::vector<vmi::BootRead> trace;
  for (std::uint64_t off = 0; off < blocks * 4096; off += 8192) {
    trace.push_back({off, 8192});
  }

  sim::IoContext io(io_config);
  BootRun run;
  run.report = cluster.Boot(1,
      {.image_id = "img", .base_image = base_image, .trace = trace, .profile = profile},
      io);
  run.elapsed_ns = io.elapsed_ns();
  return run;
}

sim::IoContextConfig AsyncConfig(std::uint32_t depth, std::uint32_t readahead) {
  sim::IoContextConfig config;
  config.disk_queue_depth = depth;
  config.readahead_blocks = readahead;
  return config;
}

void ExpectIdenticalRuns(const BootRun& a, const BootRun& b) {
  EXPECT_EQ(a.elapsed_ns, b.elapsed_ns);
  EXPECT_EQ(a.report.result.seconds, b.report.result.seconds);
  EXPECT_EQ(a.report.result.io_seconds, b.report.result.io_seconds);
  EXPECT_EQ(a.report.result.bytes_read, b.report.result.bytes_read);
  EXPECT_EQ(a.report.result.base_bytes_read, b.report.result.base_bytes_read);
  EXPECT_EQ(a.report.result.cache_bytes_read,
            b.report.result.cache_bytes_read);
  EXPECT_EQ(a.report.result.page_cache_hits, b.report.result.page_cache_hits);
  EXPECT_EQ(a.report.result.page_cache_misses,
            b.report.result.page_cache_misses);
  EXPECT_EQ(a.report.network_bytes, b.report.network_bytes);
}

TEST(ProfilePrefetch, SerializeRoundTrip) {
  vmi::BootProfile profile;
  profile.Record("cache/a", 0, false);
  profile.Record("cache/a", 1, false);
  profile.Record("base", 7, true);
  profile.Record("cache/a", 0, true);  // re-touch, hit this time
  const Bytes wire = profile.Serialize();
  const vmi::BootProfile restored = vmi::BootProfile::Deserialize(wire);
  EXPECT_EQ(profile, restored);
  EXPECT_EQ(restored.touches().size(), 4u);
  EXPECT_EQ(restored.files().size(), 2u);
  // First-miss extraction: block 0 appears once despite two touches.
  EXPECT_EQ(restored.BlocksForFile("cache/a", /*misses_only=*/true),
            (std::vector<std::uint64_t>{0, 1}));
  EXPECT_TRUE(restored.BlocksForFile("unknown", false).empty());
}

TEST(ProfilePrefetch, EmptyProfileRoundTrips) {
  const vmi::BootProfile empty;
  const vmi::BootProfile restored =
      vmi::BootProfile::Deserialize(empty.Serialize());
  EXPECT_TRUE(restored.empty());
  EXPECT_EQ(empty, restored);
}

TEST(ProfilePrefetch, DamageRaisesTypedError) {
  vmi::BootProfile profile;
  for (std::uint64_t b = 0; b < 32; ++b) profile.Record("cache/x", b, false);
  const Bytes wire = profile.Serialize();

  // Truncations at every prefix length: typed error, never UB or success.
  for (std::size_t len = 0; len < wire.size(); len += 7) {
    EXPECT_THROW(vmi::BootProfile::Deserialize(util::ByteSpan(wire.data(), len)),
                 vmi::ProfileCorruptError)
        << "truncated to " << len;
  }
  // Single-byte flips across the whole image (header, records, checksums,
  // trailer): the SHA trailer catches them all before parsing trusts bytes.
  for (std::size_t pos = 0; pos < wire.size(); pos += 11) {
    Bytes damaged = wire;
    damaged[pos] ^= 0x40;
    EXPECT_THROW(vmi::BootProfile::Deserialize(damaged),
                 vmi::ProfileCorruptError)
        << "flip at " << pos;
  }
}

TEST(ProfilePrefetch, RecordingIsFree) {
  // A recorded boot must be bit-identical to an unprofiled one — recording
  // only appends to the profile, it never touches the clock or caches.
  const sim::IoContextConfig config = AsyncConfig(8, 4);
  const BootRun plain = RunBoot(config, nullptr);

  vmi::BootProfile profile;
  BootProfileRun record_run;
  record_run.record = &profile;
  const BootRun recorded = RunBoot(config, &record_run);

  ExpectIdenticalRuns(plain, recorded);
  EXPECT_FALSE(profile.empty());
  EXPECT_FALSE(
      profile.BlocksForFile(SquirrelCluster::CacheFileName("img"), true)
          .empty());
}

TEST(ProfilePrefetch, PrefetchOffBitIdentical) {
  // The determinism contract: a BootProfileRun with no replay and no record
  // is indistinguishable from passing no profile at all.
  const sim::IoContextConfig config = AsyncConfig(8, 4);
  const BootRun plain = RunBoot(config, nullptr);
  const BootProfileRun off{};
  const BootRun with_off = RunBoot(config, &off);
  ExpectIdenticalRuns(plain, with_off);
  EXPECT_EQ(with_off.report.prefetch_issued, 0u);
  EXPECT_EQ(with_off.report.preheal_repair_fetches, 0u);
}

TEST(ProfilePrefetch, ReplayStrictlyFasterOnColdCache) {
  for (const std::uint32_t readahead : {0u, 4u}) {
    const sim::IoContextConfig config = AsyncConfig(8, readahead);

    vmi::BootProfile profile;
    BootProfileRun record_run;
    record_run.record = &profile;
    const BootRun first = RunBoot(config, &record_run);

    // Round-trip through the wire format: replay what a node would load.
    const vmi::BootProfile loaded =
        vmi::BootProfile::Deserialize(profile.Serialize());
    BootProfileRun replay_run;
    replay_run.replay = &loaded;
    const BootRun replayed = RunBoot(config, &replay_run);

    // Same guest-visible work, same bytes...
    EXPECT_EQ(replayed.report.result.bytes_read,
              first.report.result.bytes_read);
    EXPECT_EQ(replayed.report.network_bytes, first.report.network_bytes);
    // ...strictly less simulated time: the pre-heal pass warmed the ARC
    // (no decompression on the critical path) and the prefetcher overlaps
    // disk service ahead of the guest's cursor.
    EXPECT_LT(replayed.elapsed_ns, first.elapsed_ns)
        << "readahead=" << readahead;
    EXPECT_LT(replayed.report.result.seconds, first.report.result.seconds);
    EXPECT_GT(replayed.report.prefetch_issued, 0u);
  }
}

TEST(ProfilePrefetch, ReplayIsDeterministic) {
  const sim::IoContextConfig config = AsyncConfig(8, 4);
  vmi::BootProfile profile;
  BootProfileRun record_run;
  record_run.record = &profile;
  RunBoot(config, &record_run);

  BootProfileRun replay_run;
  replay_run.replay = &profile;
  const BootRun a = RunBoot(config, &replay_run);
  const BootRun b = RunBoot(config, &replay_run);
  ExpectIdenticalRuns(a, b);
  EXPECT_EQ(a.report.prefetch_issued, b.report.prefetch_issued);
}

TEST(ProfilePrefetch, PreHealMovesRepairsOffCriticalPath) {
  const sim::IoContextConfig config = AsyncConfig(8, 4);
  constexpr std::uint64_t kStride = 5;

  vmi::BootProfile profile;
  BootProfileRun record_run;
  record_run.record = &profile;
  RunBoot(config, &record_run);  // record on a healthy replica

  // Degraded boot without a profile: every corrupt cluster heals on demand,
  // inside the boot.
  const BootRun on_demand = RunBoot(config, nullptr, 96, kStride);
  EXPECT_GT(on_demand.report.repair_reads, 0u);
  EXPECT_GT(on_demand.report.repaired_blocks_bytes, 0u);

  // Same corruption with profile replay + pre-heal: the repairs happen
  // before the guest starts, so the boot itself sees a healthy replica.
  BootProfileRun preheal_run;
  preheal_run.replay = &profile;
  preheal_run.pre_heal = true;
  const BootRun prehealed = RunBoot(config, &preheal_run, 96, kStride);
  EXPECT_EQ(prehealed.report.repair_reads, 0u);
  EXPECT_GT(prehealed.report.preheal_repair_fetches, 0u);
  EXPECT_GT(prehealed.report.preheal_repaired_bytes, 0u);
  // The healed bytes still count as network traffic (they crossed the wire).
  EXPECT_GT(prehealed.report.network_bytes, 0u);
  // Same guest-visible bytes either way.
  EXPECT_EQ(prehealed.report.result.bytes_read,
            on_demand.report.result.bytes_read);
  // And the boot is faster: healing left the critical path.
  EXPECT_LT(prehealed.report.result.seconds, on_demand.report.result.seconds);
}

TEST(ProfilePrefetch, PumpIsNoOpWithoutAsyncEngine) {
  // Synchronous mode has nothing to overlap: the prefetcher must not issue.
  const Bytes content = CacheContent(16);
  BufferSource source(content);
  sim::IoContext io;  // depth 0 = synchronous
  sim::LocalFileDevice device(&source, &io, 7, 0);

  vmi::BootProfile profile;
  for (std::uint64_t b = 0; b < 16; ++b) profile.Record("f", b, false);
  sim::ProfilePrefetcher prefetcher(&profile, &io);
  prefetcher.Bind("f", &device);
  prefetcher.Pump();
  EXPECT_EQ(prefetcher.stats().issued, 0u);
  EXPECT_EQ(io.elapsed_ns(), 0.0);
}

TEST(ProfilePrefetch, UnboundFilesAreSkipped) {
  const Bytes content = CacheContent(8);
  BufferSource source(content);
  sim::IoContext io(AsyncConfig(4, 0));
  sim::LocalFileDevice device(&source, &io, 7, 0);

  vmi::BootProfile profile;
  profile.Record("bound", 0, false);
  profile.Record("unbound", 1, false);
  sim::ProfilePrefetcher prefetcher(&profile, &io);
  prefetcher.Bind("bound", &device);
  prefetcher.Pump();
  EXPECT_EQ(prefetcher.stats().issued, 1u);
  EXPECT_EQ(prefetcher.stats().skipped_unbound, 1u);
  EXPECT_TRUE(io.InFlight(7, 0));
  io.JoinInFlight(7, 0);
}

}  // namespace
}  // namespace squirrel::core
