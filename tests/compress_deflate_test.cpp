#include "compress/deflate.h"

#include <gtest/gtest.h>

#include <cmath>

#include "compress/bitio.h"
#include "compress/huffman.h"
#include "util/rng.h"

namespace squirrel::compress {
namespace {

using util::Bytes;

Bytes CompressibleText(std::size_t size, std::uint64_t seed) {
  static constexpr const char* kWords[] = {"storage ", "volume ", "block ",
                                           "cache ", "the ", "squirrel "};
  Bytes data(size);
  util::Rng rng(seed);
  std::size_t pos = 0;
  while (pos < size) {
    const char* w = kWords[rng.Below(6)];
    for (const char* p = w; *p && pos < size; ++p) {
      data[pos++] = static_cast<util::Byte>(*p);
    }
  }
  return data;
}

TEST(Deflate, HigherLevelsCompressAtLeastAsWell) {
  const Bytes data = CompressibleText(256 * 1024, 99);
  const DeflateCodec level1(1);
  const DeflateCodec level6(6);
  const DeflateCodec level9(9);
  const std::size_t size1 = level1.Compress(data).size();
  const std::size_t size6 = level6.Compress(data).size();
  const std::size_t size9 = level9.Compress(data).size();
  EXPECT_LE(size6, size1);
  EXPECT_LE(size9, size6 + size6 / 50);  // level 9 within 2% of level 6
  EXPECT_LT(size6, data.size() / 2);     // text compresses at least 2x
}

TEST(Deflate, IncompressibleFallsBackToStored) {
  Bytes data(64 * 1024);
  util::Rng(5).Fill(data);
  const DeflateCodec codec(6);
  const Bytes compressed = codec.Compress(data);
  // Stored mode: 1 mode byte + payload.
  EXPECT_EQ(compressed.size(), data.size() + 1);
  EXPECT_EQ(compressed[0], 0);
  EXPECT_EQ(codec.Decompress(compressed, data.size()), data);
}

TEST(Deflate, LongZeroRuns) {
  Bytes data(100000, 0);
  data[0] = 1;  // not all-zero, but highly compressible
  const DeflateCodec codec(6);
  const Bytes compressed = codec.Compress(data);
  EXPECT_LT(compressed.size(), 1000u);
  EXPECT_EQ(codec.Decompress(compressed, data.size()), data);
}

TEST(Deflate, RejectsBadModeByte) {
  const DeflateCodec codec(6);
  const Bytes bogus = {7, 1, 2, 3};
  EXPECT_THROW(codec.Decompress(bogus, 3), std::runtime_error);
}

TEST(Deflate, RejectsEmptyPayload) {
  const DeflateCodec codec(6);
  EXPECT_THROW(codec.Decompress({}, 10), std::runtime_error);
}

TEST(Deflate, RejectsWrongExpectedSize) {
  const DeflateCodec codec(6);
  const Bytes data = CompressibleText(1000, 1);
  const Bytes compressed = codec.Compress(data);
  EXPECT_THROW(codec.Decompress(compressed, 999), std::runtime_error);
  EXPECT_THROW(codec.Decompress(compressed, 1001), std::runtime_error);
}

TEST(Deflate, InvalidLevelThrows) {
  EXPECT_THROW(DeflateCodec(0), std::invalid_argument);
  EXPECT_THROW(DeflateCodec(10), std::invalid_argument);
}

TEST(Deflate, NamesFollowGzipConvention) {
  EXPECT_EQ(DeflateCodec(6).name(), "gzip6");
  EXPECT_EQ(DeflateCodec(9).name(), "gzip9");
}

TEST(Deflate, OverlappingMatchCopy) {
  // "aaaa..." forces matches whose source overlaps their destination.
  Bytes data(5000, 'a');
  const DeflateCodec codec(6);
  const Bytes compressed = codec.Compress(data);
  EXPECT_LT(compressed.size(), 200u);
  EXPECT_EQ(codec.Decompress(compressed, data.size()), data);
}

// --- Huffman internals -------------------------------------------------------

TEST(Huffman, CodeLengthsRespectLimit) {
  // Exponential frequencies would produce a degenerate (deep) tree without
  // the length limiter.
  std::vector<std::uint64_t> freqs(40);
  std::uint64_t f = 1;
  for (auto& x : freqs) {
    x = f;
    f = f < (1ull << 60) ? f * 2 : f;
  }
  const auto lengths = BuildCodeLengths(freqs);
  for (std::size_t s = 0; s < lengths.size(); ++s) {
    EXPECT_LE(lengths[s], kMaxCodeLength) << s;
    EXPECT_GT(lengths[s], 0u) << s;  // all symbols used
  }
}

TEST(Huffman, KraftInequalityHolds) {
  std::vector<std::uint64_t> freqs = {5, 9, 12, 13, 16, 45, 0, 3};
  const auto lengths = BuildCodeLengths(freqs);
  double kraft = 0;
  for (std::size_t s = 0; s < lengths.size(); ++s) {
    if (lengths[s] > 0) kraft += std::pow(2.0, -double(lengths[s]));
    EXPECT_EQ(lengths[s] == 0, freqs[s] == 0) << s;
  }
  EXPECT_LE(kraft, 1.0 + 1e-9);
}

TEST(Huffman, SingleSymbolGetsOneBit) {
  std::vector<std::uint64_t> freqs(10, 0);
  freqs[4] = 100;
  const auto lengths = BuildCodeLengths(freqs);
  EXPECT_EQ(lengths[4], 1u);

  // Round-trip a stream of that single symbol.
  HuffmanEncoder encoder(lengths);
  BitWriter writer;
  for (int i = 0; i < 20; ++i) encoder.Encode(writer, 4);
  const Bytes wire = writer.Finish();
  BitReader reader(wire);
  HuffmanDecoder decoder(lengths);
  for (int i = 0; i < 20; ++i) EXPECT_EQ(decoder.Decode(reader), 4u);
}

TEST(Huffman, EncodeDecodeRoundTrip) {
  std::vector<std::uint64_t> freqs = {100, 50, 25, 12, 6, 3, 1, 1};
  const auto lengths = BuildCodeLengths(freqs);
  HuffmanEncoder encoder(lengths);
  HuffmanDecoder decoder(lengths);

  util::Rng rng(77);
  std::vector<std::size_t> symbols;
  for (int i = 0; i < 5000; ++i) symbols.push_back(rng.Below(8));
  BitWriter writer;
  for (std::size_t s : symbols) encoder.Encode(writer, s);
  const Bytes wire = writer.Finish();
  BitReader reader(wire);
  for (std::size_t s : symbols) EXPECT_EQ(decoder.Decode(reader), s);
}

TEST(Huffman, FrequentSymbolsGetShorterCodes) {
  std::vector<std::uint64_t> freqs = {1000, 1, 1, 1, 1, 1, 1, 1};
  const auto lengths = BuildCodeLengths(freqs);
  for (std::size_t s = 1; s < 8; ++s) EXPECT_LE(lengths[0], lengths[s]);
}

TEST(Huffman, CodeLengthSerializationRoundTrip) {
  std::vector<std::uint8_t> lengths(300, 0);
  lengths[0] = 3;
  lengths[5] = 15;
  lengths[250] = 1;
  lengths[299] = 7;
  BitWriter writer;
  WriteCodeLengths(writer, lengths);
  const Bytes wire = writer.Finish();
  BitReader reader(wire);
  EXPECT_EQ(ReadCodeLengths(reader, 300), lengths);
}

TEST(BitIo, RoundTripMixedWidths) {
  BitWriter writer;
  writer.Write(0b101, 3);
  writer.Write(0xdead, 16);
  writer.Write(1, 1);
  writer.Write(0xffffffff, 32);
  const Bytes wire = writer.Finish();
  BitReader reader(wire);
  EXPECT_EQ(reader.Read(3), 0b101u);
  EXPECT_EQ(reader.Read(16), 0xdeadu);
  EXPECT_EQ(reader.Read(1), 1u);
  EXPECT_EQ(reader.Read(32), 0xffffffffu);
}

TEST(BitIo, UnderflowThrows) {
  BitWriter writer;
  writer.Write(0x3, 2);
  const Bytes wire = writer.Finish();
  BitReader reader(wire);
  reader.Read(8);  // the padded byte
  EXPECT_THROW(reader.Read(8), std::runtime_error);
}

}  // namespace
}  // namespace squirrel::compress
