#include "fit/curve_fit.h"

#include <gtest/gtest.h>

#include <cmath>

namespace squirrel::fit {
namespace {

std::vector<double> Linspace(double lo, double hi, std::size_t n) {
  std::vector<double> xs(n);
  for (std::size_t i = 0; i < n; ++i) {
    xs[i] = lo + (hi - lo) * static_cast<double>(i) / (n - 1);
  }
  return xs;
}

TEST(FitLinear, RecoversExactCoefficients) {
  const auto x = Linspace(0, 100, 20);
  std::vector<double> y;
  for (double v : x) y.push_back(3.5 + 0.25 * v);
  const FittedCurve curve = FitLinear(x, y);
  EXPECT_NEAR(curve.params[0], 3.5, 1e-9);
  EXPECT_NEAR(curve.params[1], 0.25, 1e-9);
  EXPECT_NEAR(CurveRmse(curve, x, y), 0.0, 1e-9);
  EXPECT_EQ(curve.name, "linear");
}

TEST(FitLinear, MinimizesSquaredErrorOnNoisyData) {
  const std::vector<double> x = {1, 2, 3, 4};
  const std::vector<double> y = {1.1, 1.9, 3.2, 3.8};
  const FittedCurve curve = FitLinear(x, y);
  EXPECT_NEAR(curve.params[1], 0.94, 0.05);  // slope ~1
  EXPECT_LT(CurveRmse(curve, x, y), 0.2);
}

TEST(NelderMead, MinimizesQuadraticBowl) {
  auto objective = [](const std::vector<double>& p) {
    const double dx = p[0] - 3.0;
    const double dy = p[1] + 2.0;
    return dx * dx + 2 * dy * dy;
  };
  const auto best = NelderMead(objective, {0.0, 0.0}, 0.5);
  EXPECT_NEAR(best[0], 3.0, 1e-4);
  EXPECT_NEAR(best[1], -2.0, 1e-4);
}

TEST(NelderMead, OneDimensional) {
  auto objective = [](const std::vector<double>& p) {
    return (p[0] - 7.0) * (p[0] - 7.0) + 1.0;
  };
  const auto best = NelderMead(objective, {0.0}, 1.0);
  EXPECT_NEAR(best[0], 7.0, 1e-4);
}

TEST(FitMmf, RecoversSyntheticSaturationCurve) {
  // MMF with known parameters: a=10 (start), c=200 (asymptote).
  const std::vector<double> truth = {10.0, 500.0, 200.0, 1.3};
  auto mmf = [&](double x) {
    const double xd = std::pow(x, truth[3]);
    return (truth[0] * truth[1] + truth[2] * xd) / (truth[1] + xd);
  };
  const auto x = Linspace(1, 600, 40);
  std::vector<double> y;
  for (double v : x) y.push_back(mmf(v));
  const FittedCurve curve = FitMmf(x, y);
  // Parameter identifiability is weak; the fit itself must be tight.
  EXPECT_LT(CurveRmse(curve, x, y), 1.0);
  EXPECT_NEAR(curve(300), mmf(300), 2.0);
}

TEST(FitHoerl, RecoversSyntheticCurve) {
  // hoerl(x) = 2 * 1.002^x * x^0.5
  auto hoerl = [](double x) { return 2.0 * std::pow(1.002, x) * std::pow(x, 0.5); };
  const auto x = Linspace(1, 500, 30);
  std::vector<double> y;
  for (double v : x) y.push_back(hoerl(v));
  const FittedCurve curve = FitHoerl(x, y);
  EXPECT_LT(CurveRmse(curve, x, y), hoerl(500) * 0.02);
}

TEST(TrainHalfScoreAll, LinearWinsOnLinearData) {
  // The paper's protocol: train on the first half, compute RMSE over all
  // points, pick the winner. On linear growth, linear regression must win
  // (or tie) against the nonlinear models.
  const auto x = Linspace(1, 600, 60);
  std::vector<double> y;
  for (double v : x) y.push_back(1.0 + 0.03 * v);

  const std::size_t half = x.size() / 2;
  std::span<const double> xh(x.data(), half), yh(y.data(), half);
  const FittedCurve linear = FitLinear(xh, yh);
  const FittedCurve mmf = FitMmf(xh, yh);
  const FittedCurve hoerl = FitHoerl(xh, yh);
  const double rmse_linear = CurveRmse(linear, x, y);
  EXPECT_LE(rmse_linear, CurveRmse(mmf, x, y) + 1e-6);
  EXPECT_LE(rmse_linear, CurveRmse(hoerl, x, y) + 0.5);
  EXPECT_LT(rmse_linear, 0.01);
}

TEST(TrainHalfScoreAll, MmfWinsOnSaturatingData) {
  // On saturating growth (like the DDT memory series), MMF extrapolates
  // better than a linear fit trained on the rising half.
  auto saturating = [](double x) { return 100.0 * x / (50.0 + x); };
  const auto x = Linspace(1, 600, 60);
  std::vector<double> y;
  for (double v : x) y.push_back(saturating(v));
  const std::size_t half = x.size() / 2;
  std::span<const double> xh(x.data(), half), yh(y.data(), half);
  const FittedCurve linear = FitLinear(xh, yh);
  const FittedCurve mmf = FitMmf(xh, yh);
  EXPECT_LT(CurveRmse(mmf, x, y), CurveRmse(linear, x, y));
}

TEST(FittedCurve, ExtrapolationBeyondTrainingRange) {
  const auto x = Linspace(1, 100, 20);
  std::vector<double> y;
  for (double v : x) y.push_back(5 + 2 * v);
  const FittedCurve curve = FitLinear(x, y);
  EXPECT_NEAR(curve(3000), 5 + 2 * 3000, 1e-6);
}

}  // namespace
}  // namespace squirrel::fit
