#include <gtest/gtest.h>

#include "sim/disk_model.h"
#include "sim/io_context.h"
#include "sim/page_cache.h"

namespace squirrel::sim {
namespace {

TEST(DiskModel, SequentialReadsPayOnlyTransfer) {
  DiskModel disk;
  const double first = disk.Read(0, 65536);       // cold: seek from 0 -> free
  const double second = disk.Read(65536, 65536);  // contiguous
  EXPECT_DOUBLE_EQ(first, second);
  EXPECT_EQ(disk.seeks(), 0u);
  EXPECT_EQ(disk.bytes_read(), 131072u);
}

TEST(DiskModel, SeekCostTiersByDistance) {
  DiskModelConfig config;
  DiskModel disk(config);
  disk.Read(0, 4096);
  const double track = disk.Read(4096 + 512 * 1024, 4096);      // < 1 MiB away
  const double shortseek = disk.Read(64ull << 20, 4096);        // < 256 MiB
  const double longseek = disk.Read(10ull << 30, 4096);         // far
  const double transfer = 4096.0 / config.sequential_bytes_per_ns;
  EXPECT_NEAR(track, config.track_seek_ns + transfer, 1.0);
  EXPECT_NEAR(shortseek, config.short_seek_ns + transfer, 1.0);
  EXPECT_NEAR(longseek, config.long_seek_ns + transfer, 1.0);
  EXPECT_EQ(disk.seeks(), 3u);
}

TEST(DiskModel, BackwardSeeksCostToo) {
  DiskModel disk;
  disk.Read(1ull << 30, 4096);
  const std::uint64_t seeks_before = disk.seeks();
  disk.Read(0, 4096);
  EXPECT_EQ(disk.seeks(), seeks_before + 1);
}

TEST(PageCache, HitAfterInsert) {
  PageCache cache(1 << 20);
  EXPECT_FALSE(cache.Lookup(1, 10));
  cache.Insert(1, 10, 4096);
  EXPECT_TRUE(cache.Lookup(1, 10));
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 1u);
}

TEST(PageCache, KeysAreDeviceScoped) {
  PageCache cache(1 << 20);
  cache.Insert(1, 10, 4096);
  EXPECT_FALSE(cache.Lookup(2, 10));
}

TEST(PageCache, EvictsLruWhenFull) {
  PageCache cache(3 * 4096);
  cache.Insert(1, 0, 4096);
  cache.Insert(1, 1, 4096);
  cache.Insert(1, 2, 4096);
  // Touch block 0 so block 1 becomes LRU.
  EXPECT_TRUE(cache.Lookup(1, 0));
  cache.Insert(1, 3, 4096);
  EXPECT_TRUE(cache.Lookup(1, 0));
  EXPECT_FALSE(cache.Lookup(1, 1));  // evicted
  EXPECT_TRUE(cache.Lookup(1, 2));
  EXPECT_TRUE(cache.Lookup(1, 3));
  EXPECT_LE(cache.resident_bytes(), 3u * 4096);
}

TEST(PageCache, ZeroCapacityCachesNothing) {
  PageCache cache(0);
  cache.Insert(1, 0, 4096);
  EXPECT_FALSE(cache.Lookup(1, 0));
  EXPECT_EQ(cache.resident_bytes(), 0u);
}

TEST(PageCache, ReinsertUpdatesSize) {
  PageCache cache(1 << 20);
  cache.Insert(1, 0, 4096);
  cache.Insert(1, 0, 8192);
  EXPECT_EQ(cache.resident_bytes(), 8192u);
  EXPECT_EQ(cache.entry_count(), 1u);
}

TEST(PageCache, OversizedEntryIgnored) {
  PageCache cache(4096);
  cache.Insert(1, 0, 8192);
  EXPECT_FALSE(cache.Lookup(1, 0));
}

TEST(IoContext, AccumulatesCharges) {
  IoContext io;
  EXPECT_EQ(io.elapsed_ns(), 0.0);
  io.ChargeNs(1000.0);
  EXPECT_DOUBLE_EQ(io.elapsed_ns(), 1000.0);
  io.ChargeDiskRead(0, 65536);
  EXPECT_GT(io.elapsed_ns(), 1000.0);
  EXPECT_DOUBLE_EQ(io.elapsed_seconds(), io.elapsed_ns() / 1e9);
}

TEST(IoContext, DdtLookupGrowsWithTableSize) {
  IoContext io;
  io.ChargeDdtLookup(0);
  const double small = io.elapsed_ns();
  io.ChargeDdtLookup(1u << 20);
  const double large = io.elapsed_ns() - small;
  EXPECT_GT(large, small);
}

}  // namespace
}  // namespace squirrel::sim
