#include "util/stats.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace squirrel::util {
namespace {

TEST(RunningStats, Empty) {
  RunningStats stats;
  EXPECT_EQ(stats.count(), 0u);
  EXPECT_EQ(stats.mean(), 0.0);
  EXPECT_EQ(stats.variance(), 0.0);
}

TEST(RunningStats, SingleValue) {
  RunningStats stats;
  stats.Add(5.0);
  EXPECT_EQ(stats.count(), 1u);
  EXPECT_EQ(stats.mean(), 5.0);
  EXPECT_EQ(stats.variance(), 0.0);
  EXPECT_EQ(stats.min(), 5.0);
  EXPECT_EQ(stats.max(), 5.0);
}

TEST(RunningStats, MatchesClosedForm) {
  const std::vector<double> values = {2, 4, 4, 4, 5, 5, 7, 9};
  RunningStats stats;
  for (double v : values) stats.Add(v);
  EXPECT_DOUBLE_EQ(stats.mean(), 5.0);
  // Sample variance of this classic set is 32/7.
  EXPECT_NEAR(stats.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_NEAR(stats.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
  EXPECT_EQ(stats.min(), 2.0);
  EXPECT_EQ(stats.max(), 9.0);
}

TEST(Rmse, ZeroForPerfectPrediction) {
  const std::vector<double> y = {1, 2, 3};
  EXPECT_DOUBLE_EQ(Rmse(y, y), 0.0);
}

TEST(Rmse, KnownValue) {
  const std::vector<double> predicted = {1, 2, 3};
  const std::vector<double> observed = {2, 2, 5};
  // Errors: -1, 0, -2 -> sqrt((1 + 0 + 4) / 3)
  EXPECT_NEAR(Rmse(predicted, observed), std::sqrt(5.0 / 3.0), 1e-12);
}

TEST(Percentile, MedianAndExtremes) {
  const std::vector<double> values = {5, 1, 3, 2, 4};
  EXPECT_DOUBLE_EQ(Percentile(values, 0), 1.0);
  EXPECT_DOUBLE_EQ(Percentile(values, 50), 3.0);
  EXPECT_DOUBLE_EQ(Percentile(values, 100), 5.0);
}

TEST(Percentile, Interpolates) {
  const std::vector<double> values = {0, 10};
  EXPECT_DOUBLE_EQ(Percentile(values, 25), 2.5);
  EXPECT_DOUBLE_EQ(Percentile(values, 75), 7.5);
}

TEST(Percentile, SingleElement) {
  const std::vector<double> values = {42};
  EXPECT_DOUBLE_EQ(Percentile(values, 10), 42.0);
  EXPECT_DOUBLE_EQ(Percentile(values, 90), 42.0);
}

}  // namespace
}  // namespace squirrel::util
