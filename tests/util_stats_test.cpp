#include "util/stats.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "util/rng.h"

namespace squirrel::util {
namespace {

TEST(RunningStats, Empty) {
  RunningStats stats;
  EXPECT_EQ(stats.count(), 0u);
  EXPECT_EQ(stats.mean(), 0.0);
  EXPECT_EQ(stats.variance(), 0.0);
}

TEST(RunningStats, SingleValue) {
  RunningStats stats;
  stats.Add(5.0);
  EXPECT_EQ(stats.count(), 1u);
  EXPECT_EQ(stats.mean(), 5.0);
  EXPECT_EQ(stats.variance(), 0.0);
  EXPECT_EQ(stats.min(), 5.0);
  EXPECT_EQ(stats.max(), 5.0);
}

TEST(RunningStats, MatchesClosedForm) {
  const std::vector<double> values = {2, 4, 4, 4, 5, 5, 7, 9};
  RunningStats stats;
  for (double v : values) stats.Add(v);
  EXPECT_DOUBLE_EQ(stats.mean(), 5.0);
  // Sample variance of this classic set is 32/7.
  EXPECT_NEAR(stats.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_NEAR(stats.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
  EXPECT_EQ(stats.min(), 2.0);
  EXPECT_EQ(stats.max(), 9.0);
}

TEST(Rmse, ZeroForPerfectPrediction) {
  const std::vector<double> y = {1, 2, 3};
  EXPECT_DOUBLE_EQ(Rmse(y, y), 0.0);
}

TEST(Rmse, KnownValue) {
  const std::vector<double> predicted = {1, 2, 3};
  const std::vector<double> observed = {2, 2, 5};
  // Errors: -1, 0, -2 -> sqrt((1 + 0 + 4) / 3)
  EXPECT_NEAR(Rmse(predicted, observed), std::sqrt(5.0 / 3.0), 1e-12);
}

TEST(Percentile, MedianAndExtremes) {
  const std::vector<double> values = {5, 1, 3, 2, 4};
  EXPECT_DOUBLE_EQ(Percentile(values, 0), 1.0);
  EXPECT_DOUBLE_EQ(Percentile(values, 50), 3.0);
  EXPECT_DOUBLE_EQ(Percentile(values, 100), 5.0);
}

TEST(Percentile, Interpolates) {
  const std::vector<double> values = {0, 10};
  EXPECT_DOUBLE_EQ(Percentile(values, 25), 2.5);
  EXPECT_DOUBLE_EQ(Percentile(values, 75), 7.5);
}

TEST(Percentile, SingleElement) {
  const std::vector<double> values = {42};
  EXPECT_DOUBLE_EQ(Percentile(values, 10), 42.0);
  EXPECT_DOUBLE_EQ(Percentile(values, 90), 42.0);
}

TEST(StreamingHistogram, EmptyIsZero) {
  StreamingHistogram hist;
  EXPECT_EQ(hist.count(), 0u);
  EXPECT_EQ(hist.Quantile(50), 0.0);
  EXPECT_EQ(hist.min(), 0.0);
  EXPECT_EQ(hist.max(), 0.0);
}

TEST(StreamingHistogram, ExactNearestRankSmallSet) {
  StreamingHistogram hist;
  for (double v : {5.0, 1.0, 3.0, 2.0, 4.0}) hist.Add(v);
  ASSERT_TRUE(hist.exact());
  // Nearest rank over {1,2,3,4,5}: k = ceil(q/100 * 5).
  EXPECT_DOUBLE_EQ(hist.Quantile(0), 1.0);
  EXPECT_DOUBLE_EQ(hist.Quantile(50), 3.0);
  EXPECT_DOUBLE_EQ(hist.Quantile(99), 5.0);
  EXPECT_DOUBLE_EQ(hist.Quantile(100), 5.0);
  EXPECT_DOUBLE_EQ(hist.mean(), 3.0);
}

TEST(StreamingHistogram, MillionsOfSamplesStayExactOnBoundedValueSet) {
  // 2e6 samples drawn from 1000 distinct values: far more samples than the
  // budget, but distinct values fit — percentiles must be *exact* with no
  // copy-and-sort of the sample stream.
  StreamingHistogram hist;
  util::Rng rng(7);
  std::vector<double> all;
  all.reserve(2'000'000);
  for (int i = 0; i < 2'000'000; ++i) {
    const double v = 1.0 + static_cast<double>(rng.Below(1000));
    hist.Add(v);
    all.push_back(v);
  }
  ASSERT_TRUE(hist.exact());
  std::sort(all.begin(), all.end());
  for (double q : {50.0, 99.0, 99.9}) {
    const auto rank = static_cast<std::size_t>(
        std::ceil(q / 100.0 * static_cast<double>(all.size())));
    EXPECT_DOUBLE_EQ(hist.Quantile(q), all[rank - 1]) << "q=" << q;
  }
  EXPECT_EQ(hist.count(), 2'000'000u);
  EXPECT_DOUBLE_EQ(hist.min(), all.front());
  EXPECT_DOUBLE_EQ(hist.max(), all.back());
}

TEST(StreamingHistogram, SketchModeBoundsRelativeError) {
  // More distinct values than the budget forces the log-bucket sketch;
  // quantiles must stay within the configured relative error.
  constexpr double kEps = 0.01;
  StreamingHistogram hist(/*exact_budget=*/256, /*relative_error=*/kEps);
  util::Rng rng(11);
  std::vector<double> all;
  all.reserve(100'000);
  for (int i = 0; i < 100'000; ++i) {
    // Log-uniform over ~4 decades, all values distinct with high probability.
    const double v = std::exp(rng.NextDouble() * std::log(1e4));
    hist.Add(v);
    all.push_back(v);
  }
  EXPECT_FALSE(hist.exact());
  std::sort(all.begin(), all.end());
  for (double q : {1.0, 50.0, 99.0, 99.9}) {
    const auto rank = static_cast<std::size_t>(
        std::ceil(q / 100.0 * static_cast<double>(all.size())));
    const double truth = all[rank - 1];
    EXPECT_NEAR(hist.Quantile(q), truth, truth * 2.0 * kEps) << "q=" << q;
  }
  EXPECT_DOUBLE_EQ(hist.min(), all.front());
  EXPECT_DOUBLE_EQ(hist.max(), all.back());
}

TEST(StreamingHistogram, SketchClampsToObservedRange) {
  StreamingHistogram hist(/*exact_budget=*/4, /*relative_error=*/0.05);
  for (double v : {1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0}) hist.Add(v);
  EXPECT_FALSE(hist.exact());
  EXPECT_GE(hist.Quantile(0), 1.0);
  EXPECT_LE(hist.Quantile(100), 8.0);
}

}  // namespace
}  // namespace squirrel::util
