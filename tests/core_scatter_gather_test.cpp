// Scatter-gather fan-out transfers: window-1 bit-identity with the legacy
// serial retry loop, windowed overlap, and determinism.

#include "core/scatter_gather.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "core/squirrel.h"
#include "util/fault_injector.h"
#include "util/rng.h"

namespace squirrel::core {
namespace {

using util::Bytes;

class BufferSource final : public util::DataSource {
 public:
  explicit BufferSource(Bytes data) : data_(std::move(data)) {}
  std::uint64_t size() const override { return data_.size(); }
  void Read(std::uint64_t offset, util::MutableByteSpan out) const override {
    std::copy_n(data_.begin() + static_cast<std::ptrdiff_t>(offset), out.size(),
                out.begin());
  }

 private:
  Bytes data_;
};

/// A small stream with payload records, so record-granular resume has
/// something to resume past.
zvol::SendStream TestStream(std::size_t blocks) {
  zvol::SendStream stream;
  stream.incremental = false;
  stream.to_id = 1;
  stream.to_name = "snap";
  stream.block_size = 4096;
  stream.codec = "gzip6";
  zvol::FileRecord file;
  file.name = "cache/img";
  file.logical_size = blocks * 4096;
  file.whole_file = true;
  util::Rng rng(7);
  for (std::size_t i = 0; i < blocks; ++i) {
    zvol::BlockRecord block;
    block.index = i;
    block.has_payload = true;
    block.payload = Bytes(4096);
    rng.Fill(block.payload);
    block.logical_size = 4096;
    file.blocks.push_back(std::move(block));
  }
  stream.files.push_back(std::move(file));
  return stream;
}

// Reference implementation: the pre-engine serial retry loop, verbatim.
bool LegacyDeliver(const zvol::SendStream& stream, std::uint64_t wire_size,
                   std::uint32_t node_id, std::uint64_t transfer_id,
                   const RetryPolicy& retry, util::FaultInjector* faults,
                   sim::NetworkAccountant& network, TransferStats& stats,
                   double* seconds) {
  auto resume_bytes = [&](double progress) {
    std::size_t payload_records = 0;
    for (const auto& f : stream.files) {
      for (const auto& b : f.blocks) {
        if (b.has_payload) ++payload_records;
      }
    }
    const auto kept = static_cast<std::size_t>(
        progress * static_cast<double>(payload_records));
    std::uint64_t kept_bytes = 0;
    std::size_t seen = 0;
    for (const auto& f : stream.files) {
      for (const auto& b : f.blocks) {
        if (!b.has_payload) continue;
        if (seen++ == kept) return wire_size - std::min(wire_size, kept_bytes);
        kept_bytes += b.payload.size();
      }
    }
    return wire_size - std::min(wire_size, kept_bytes);
  };
  const std::uint32_t max_attempts =
      std::max<std::uint32_t>(1, retry.max_attempts);
  for (std::uint32_t attempt = 1; attempt <= max_attempts; ++attempt) {
    ++stats.attempts;
    if (attempt > 1) {
      ++stats.retries;
      const double wait = BackoffSeconds(retry, node_id, transfer_id, attempt);
      stats.backoff_seconds += wait;
      *seconds += wait;
      const double progress =
          faults->PartialProgress(node_id, transfer_id, attempt - 1);
      const std::uint64_t resume = resume_bytes(progress);
      stats.retransmitted_bytes += resume;
      *seconds += network.Transfer(0, node_id, resume) / 1e9;
    }
    if (faults != nullptr) {
      const bool failed = faults->TransferFails(node_id, transfer_id, attempt);
      const bool corrupted =
          !failed && faults->TransferCorrupts(node_id, transfer_id, attempt);
      if (failed || corrupted) {
        *seconds += faults->TransferDelaySeconds();
        continue;
      }
    }
    return true;
  }
  ++stats.abandoned;
  return false;
}

util::FaultProfile FlakyProfile() {
  util::FaultProfile profile;
  profile.transfer_fail_rate = 0.4;
  profile.transfer_corrupt_rate = 0.2;
  profile.transfer_delay_seconds = 0.05;
  return profile;
}

TEST(ScatterGather, WindowOneBitIdenticalToLegacyLoop) {
  const zvol::SendStream stream = TestStream(16);
  const std::uint64_t wire_size = stream.WireSize();
  const std::vector<std::uint32_t> nodes = {1, 2, 3, 4, 5, 6};
  const RetryPolicy retry{};

  // Legacy pass: its own injector and accountant (decisions are keyed by
  // (seed, node, transfer, attempt), so separate instances replay equally).
  util::FaultInjector legacy_faults(0xfab, FlakyProfile());
  sim::NetworkAccountant legacy_net(8);
  TransferStats legacy_stats;
  double legacy_makespan = 0.0;
  std::vector<bool> legacy_delivered;
  for (const std::uint32_t node : nodes) {
    double seconds = 0.0;
    legacy_delivered.push_back(LegacyDeliver(stream, wire_size, node, 1, retry,
                                             &legacy_faults, legacy_net,
                                             legacy_stats, &seconds));
    legacy_makespan = std::max(legacy_makespan, seconds);
  }

  util::FaultInjector faults(0xfab, FlakyProfile());
  sim::NetworkAccountant net(8);
  TransferStats stats;
  ScatterGatherTransfer transfer(&net, &faults, retry,
                                 ScatterGatherConfig{.window = 1});
  const ScatterGatherResult result =
      transfer.Run(stream, wire_size, nodes, 1, stats);

  EXPECT_EQ(stats.attempts, legacy_stats.attempts);
  EXPECT_EQ(stats.retries, legacy_stats.retries);
  EXPECT_EQ(stats.abandoned, legacy_stats.abandoned);
  EXPECT_EQ(stats.retransmitted_bytes, legacy_stats.retransmitted_bytes);
  EXPECT_EQ(stats.backoff_seconds, legacy_stats.backoff_seconds);  // bitwise
  EXPECT_EQ(result.makespan_seconds, legacy_makespan);             // bitwise
  ASSERT_EQ(result.outcomes.size(), nodes.size());
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    EXPECT_EQ(result.outcomes[i].delivered, legacy_delivered[i]) << i;
  }
  for (std::uint32_t node : nodes) {
    EXPECT_EQ(net.bytes_in(node), legacy_net.bytes_in(node)) << node;
  }
}

TEST(ScatterGather, WindowedMatchesSerialDecisionsAndOverlaps) {
  const zvol::SendStream stream = TestStream(16);
  const std::uint64_t wire_size = stream.WireSize();
  const std::vector<std::uint32_t> nodes = {1, 2, 3, 4, 5, 6, 7};
  const RetryPolicy retry{};

  util::FaultInjector serial_faults(0xfab, FlakyProfile());
  sim::NetworkAccountant serial_net(9);
  TransferStats serial_stats;
  ScatterGatherTransfer serial(&serial_net, &serial_faults, retry,
                               ScatterGatherConfig{.window = 1});
  const ScatterGatherResult serial_result =
      serial.Run(stream, wire_size, nodes, 1, serial_stats);

  util::FaultInjector faults(0xfab, FlakyProfile());
  sim::NetworkAccountant net(9);
  TransferStats stats;
  ScatterGatherTransfer windowed(&net, &faults, retry,
                                 ScatterGatherConfig{.window = 4});
  const ScatterGatherResult result =
      windowed.Run(stream, wire_size, nodes, 1, stats);

  // Fault decisions are order-independent, so both models agree on what
  // happened — only on when.
  EXPECT_EQ(stats.attempts, serial_stats.attempts);
  EXPECT_EQ(stats.retries, serial_stats.retries);
  EXPECT_EQ(stats.abandoned, serial_stats.abandoned);
  EXPECT_EQ(stats.retransmitted_bytes, serial_stats.retransmitted_bytes);
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    EXPECT_EQ(result.outcomes[i].delivered,
              serial_result.outcomes[i].delivered);
  }
  ASSERT_GT(serial_stats.retries, 0u) << "profile produced no retries";

  // Retry tails overlap: the fan out finishes before the sum of tails, and
  // the report says by how much.
  EXPECT_LT(result.makespan_seconds, result.sum_seconds);
  EXPECT_GT(stats.overlap_seconds, 0.0);
  // Sender-link contention cannot beat the perfect-parallelism bound by
  // more than scheduling slack, and never the serial sum.
  EXPECT_LE(result.makespan_seconds, serial_result.sum_seconds);
}

TEST(ScatterGather, AggregateSecondsAreNeverNegative) {
  // Regression: overlap_seconds is derived as sum - makespan per batch; a
  // scheduling path that reports makespan within float slack of (or above)
  // the sum must clamp at zero rather than accumulate a negative overlap.
  const zvol::SendStream stream = TestStream(6);
  const std::uint64_t wire_size = stream.WireSize();
  for (const std::uint32_t window : {1u, 2u, 4u, 8u}) {
    for (const std::size_t fan_out : {std::size_t{1}, std::size_t{3}}) {
      std::vector<std::uint32_t> nodes;
      for (std::size_t i = 0; i < fan_out; ++i) {
        nodes.push_back(static_cast<std::uint32_t>(i + 1));
      }
      sim::NetworkAccountant net(10.0);
      util::FaultInjector faults(11, FlakyProfile());
      TransferStats stats;
      ScatterGatherTransfer transfer(
          &net, fan_out > 1 ? &faults : nullptr, RetryPolicy{},
          ScatterGatherConfig{.window = window, .chunk_bytes = 8 * 1024});
      const ScatterGatherResult result =
          transfer.Run(stream, wire_size, nodes, 1, stats);
      EXPECT_GE(result.makespan_seconds, 0.0) << "window " << window;
      EXPECT_GE(result.sum_seconds, 0.0) << "window " << window;
      EXPECT_GE(stats.makespan_seconds, 0.0) << "window " << window;
      EXPECT_GE(stats.overlap_seconds, 0.0) << "window " << window;
      // The clamp never manufactures overlap a single-stream run cannot have.
      if (fan_out == 1) {
        EXPECT_EQ(stats.overlap_seconds, 0.0);
      }
    }
  }
}

TEST(ScatterGather, WindowedIsDeterministic) {
  const zvol::SendStream stream = TestStream(8);
  const std::uint64_t wire_size = stream.WireSize();
  const std::vector<std::uint32_t> nodes = {1, 2, 3, 4};
  auto run = [&] {
    util::FaultInjector faults(0xfab, FlakyProfile());
    sim::NetworkAccountant net(6);
    TransferStats stats;
    ScatterGatherTransfer transfer(
        &net, &faults, RetryPolicy{},
        ScatterGatherConfig{.window = 3, .chunk_bytes = 8 * 1024});
    const ScatterGatherResult result =
        transfer.Run(stream, wire_size, nodes, 1, stats);
    return std::pair<double, double>(result.makespan_seconds,
                                     stats.backoff_seconds);
  };
  const auto a = run();
  const auto b = run();
  EXPECT_EQ(a.first, b.first);    // bitwise
  EXPECT_EQ(a.second, b.second);  // bitwise
}

TEST(ScatterGather, NoFaultsDeliversEverythingInstantly) {
  const zvol::SendStream stream = TestStream(4);
  sim::NetworkAccountant net(4);
  TransferStats stats;
  ScatterGatherTransfer transfer(&net, /*faults=*/nullptr, RetryPolicy{},
                                 ScatterGatherConfig{.window = 4});
  const ScatterGatherResult result =
      transfer.Run(stream, stream.WireSize(), {1, 2, 3}, 1, stats);
  EXPECT_EQ(stats.attempts, 3u);
  EXPECT_EQ(stats.retries, 0u);
  EXPECT_EQ(result.makespan_seconds, 0.0);
  for (const auto& outcome : result.outcomes) {
    EXPECT_TRUE(outcome.delivered);
  }
}

TEST(ScatterGather, ClusterRegisterWithWindowedTransfer) {
  SquirrelConfig config;
  config.volume = zvol::VolumeConfig{.block_size = 4096,
                                     .codec = compress::CodecId::kGzip6,
                                     .dedup = true};
  config.transfer.window = 4;
  SquirrelCluster cluster(config, 4);

  Bytes content(32 * 4096);
  util::Rng(3).Fill(content);
  const RegistrationReport report =
      cluster.Register({"img", BufferSource(content), SimClock::FromSeconds(1000)});
  EXPECT_EQ(report.receivers, 4u);
  for (std::uint32_t n = 0; n < 4; ++n) {
    EXPECT_TRUE(cluster.compute_node(n).volume().HasFile(
        SquirrelCluster::CacheFileName("img")));
  }
}

TEST(ScatterGather, ClusterRetryStatsIdenticalAcrossWindows) {
  // The same faulted registration through both delivery models: identical
  // decisions (attempts/retries/abandoned), different timing model.
  auto run = [](std::uint32_t window) {
    SquirrelConfig config;
    config.volume = zvol::VolumeConfig{.block_size = 4096,
                                       .codec = compress::CodecId::kGzip6,
                                       .dedup = true};
    config.transfer.window = window;
    SquirrelCluster cluster(config, 3);
    util::FaultInjector faults(0xbeef, FlakyProfile());
    cluster.SetFaultInjector(&faults);
    Bytes content(32 * 4096);
    util::Rng(3).Fill(content);
    return cluster.Register({"img", BufferSource(content), SimClock::FromSeconds(1000)});
  };
  const RegistrationReport serial = run(1);
  const RegistrationReport windowed = run(4);
  EXPECT_EQ(windowed.transfers.attempts, serial.transfers.attempts);
  EXPECT_EQ(windowed.transfers.retries, serial.transfers.retries);
  EXPECT_EQ(windowed.transfers.abandoned, serial.transfers.abandoned);
  EXPECT_EQ(windowed.transfers.retransmitted_bytes,
            serial.transfers.retransmitted_bytes);
  EXPECT_EQ(windowed.receivers, serial.receivers);
}

}  // namespace
}  // namespace squirrel::core
