#include "util/bytes.h"

#include <gtest/gtest.h>

namespace squirrel::util {
namespace {

TEST(Bytes, CeilDiv) {
  EXPECT_EQ(CeilDiv(0, 4), 0u);
  EXPECT_EQ(CeilDiv(1, 4), 1u);
  EXPECT_EQ(CeilDiv(4, 4), 1u);
  EXPECT_EQ(CeilDiv(5, 4), 2u);
  EXPECT_EQ(CeilDiv(8, 4), 2u);
}

TEST(Bytes, AlignUpDown) {
  EXPECT_EQ(AlignUp(0, 4096), 0u);
  EXPECT_EQ(AlignUp(1, 4096), 4096u);
  EXPECT_EQ(AlignUp(4096, 4096), 4096u);
  EXPECT_EQ(AlignUp(4097, 4096), 8192u);
  EXPECT_EQ(AlignDown(4097, 4096), 4096u);
  EXPECT_EQ(AlignDown(4095, 4096), 0u);
}

TEST(Bytes, IsAllZeroEmpty) {
  EXPECT_TRUE(IsAllZero({}));
}

TEST(Bytes, IsAllZeroDetectsContent) {
  Bytes data(1000, 0);
  EXPECT_TRUE(IsAllZero(data));
  // Every position must be detected, including the non-word tail.
  for (std::size_t pos : {0ul, 1ul, 7ul, 8ul, 512ul, 993ul, 999ul}) {
    Bytes copy = data;
    copy[pos] = 1;
    EXPECT_FALSE(IsAllZero(copy)) << "position " << pos;
  }
}

TEST(Bytes, IsAllZeroShortBuffers) {
  for (std::size_t len = 0; len < 17; ++len) {
    Bytes zeros(len, 0);
    EXPECT_TRUE(IsAllZero(zeros)) << len;
    if (len > 0) {
      zeros[len - 1] = 0xff;
      EXPECT_FALSE(IsAllZero(zeros)) << len;
    }
  }
}

TEST(Bytes, FormatBytes) {
  EXPECT_EQ(FormatBytes(0), "0 B");
  EXPECT_EQ(FormatBytes(512), "512 B");
  EXPECT_EQ(FormatBytes(1024), "1.0 KiB");
  EXPECT_EQ(FormatBytes(1.5 * 1024 * 1024), "1.5 MiB");
  EXPECT_EQ(FormatBytes(16.4 * 1024.0 * 1024 * 1024 * 1024), "16.4 TiB");
}

TEST(Bytes, ParseBytes) {
  EXPECT_EQ(ParseBytes("64K"), 64 * kKiB);
  EXPECT_EQ(ParseBytes("1M"), kMiB);
  EXPECT_EQ(ParseBytes("2G"), 2 * kGiB);
  EXPECT_EQ(ParseBytes("128"), 128u);
  EXPECT_EQ(ParseBytes("0.5M"), kMiB / 2);
  EXPECT_EQ(ParseBytes(""), 0u);
  EXPECT_EQ(ParseBytes("junk"), 0u);
  EXPECT_EQ(ParseBytes("64Q"), 0u);
}

}  // namespace
}  // namespace squirrel::util
