#include "zvol/volume.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace squirrel::zvol {
namespace {

using util::Bytes;

class BufferSource final : public util::DataSource {
 public:
  explicit BufferSource(Bytes data) : data_(std::move(data)) {}
  std::uint64_t size() const override { return data_.size(); }
  void Read(std::uint64_t offset, util::MutableByteSpan out) const override {
    std::copy_n(data_.begin() + static_cast<std::ptrdiff_t>(offset), out.size(),
                out.begin());
  }

 private:
  Bytes data_;
};

Bytes RandomBytes(std::size_t size, std::uint64_t seed) {
  Bytes data(size);
  util::Rng(seed).Fill(data);
  return data;
}

VolumeConfig SmallConfig() {
  return VolumeConfig{.block_size = 4096, .codec = compress::CodecId::kGzip6, .dedup = true};
}

TEST(Volume, WriteFileReadBack) {
  Volume volume(SmallConfig());
  const Bytes content = RandomBytes(40000, 1);
  volume.WriteFile("f", BufferSource(content));
  EXPECT_TRUE(volume.HasFile("f"));
  EXPECT_EQ(volume.FileSize("f"), content.size());
  EXPECT_EQ(volume.ReadRange("f", 0, content.size()), content);
  // Unaligned partial read.
  const Bytes slice = volume.ReadRange("f", 5000, 9999);
  EXPECT_TRUE(std::equal(slice.begin(), slice.end(), content.begin() + 5000));
}

TEST(Volume, SparseZerosBecomeHoles) {
  Volume volume(SmallConfig());
  Bytes content(16 * 4096, 0);
  content[0] = 1;
  content[10 * 4096 + 5] = 2;
  volume.WriteFile("sparse", BufferSource(content));
  EXPECT_EQ(volume.Stats().unique_blocks, 2u);
  EXPECT_EQ(volume.ReadRange("sparse", 0, content.size()), content);
  // Holes read as zeros.
  const Bytes hole = volume.ReadRange("sparse", 4096, 4096);
  EXPECT_TRUE(util::IsAllZero(hole));
  EXPECT_TRUE(volume.FileBlock("sparse", 1).hole);
  EXPECT_FALSE(volume.FileBlock("sparse", 0).hole);
}

TEST(Volume, DuplicateContentAcrossFilesShares) {
  Volume volume(SmallConfig());
  const Bytes content = RandomBytes(8 * 4096, 3);
  volume.WriteFile("a", BufferSource(content));
  const auto after_one = volume.Stats();
  volume.WriteFile("b", BufferSource(content));
  const auto after_two = volume.Stats();
  EXPECT_EQ(after_one.unique_blocks, after_two.unique_blocks);
  EXPECT_EQ(after_one.physical_data_bytes, after_two.physical_data_bytes);
  EXPECT_EQ(after_two.file_count, 2u);
}

TEST(Volume, OverwriteReleasesOldBlocks) {
  Volume volume(SmallConfig());
  volume.WriteFile("f", BufferSource(RandomBytes(8 * 4096, 4)));
  const std::uint64_t before = volume.Stats().unique_blocks;
  volume.WriteFile("f", BufferSource(RandomBytes(8 * 4096, 5)));
  EXPECT_EQ(volume.Stats().unique_blocks, before);  // old ones freed
}

TEST(Volume, DeleteFileFreesSpace) {
  Volume volume(SmallConfig());
  volume.WriteFile("f", BufferSource(RandomBytes(8 * 4096, 6)));
  volume.DeleteFile("f");
  EXPECT_FALSE(volume.HasFile("f"));
  EXPECT_EQ(volume.Stats().unique_blocks, 0u);
  EXPECT_EQ(volume.Stats().physical_data_bytes, 0u);
  EXPECT_THROW(volume.DeleteFile("f"), NoSuchFileError);
}

TEST(Volume, WriteRangeReadModifyWrite) {
  Volume volume(SmallConfig());
  Bytes content = RandomBytes(4 * 4096, 7);
  volume.WriteFile("f", BufferSource(content));
  // Overwrite an unaligned span crossing a block boundary.
  Bytes patch = RandomBytes(5000, 8);
  volume.WriteRange("f", 3000, patch);
  std::copy(patch.begin(), patch.end(), content.begin() + 3000);
  EXPECT_EQ(volume.ReadRange("f", 0, content.size()), content);
}

TEST(Volume, WriteRangeGrowsFile) {
  Volume volume(SmallConfig());
  volume.CreateFile("f", 4096);
  const Bytes tail = RandomBytes(4096, 9);
  volume.WriteRange("f", 8192, tail);
  EXPECT_EQ(volume.FileSize("f"), 8192u + 4096u);
  EXPECT_TRUE(util::IsAllZero(volume.ReadRange("f", 0, 8192)));
  EXPECT_EQ(volume.ReadRange("f", 8192, 4096), tail);
}

TEST(Volume, WriteRangeToZeroMakesHole) {
  Volume volume(SmallConfig());
  volume.WriteFile("f", BufferSource(RandomBytes(4096, 10)));
  EXPECT_FALSE(volume.FileBlock("f", 0).hole);
  const Bytes zeros(4096, 0);
  volume.WriteRange("f", 0, zeros);
  EXPECT_TRUE(volume.FileBlock("f", 0).hole);
  EXPECT_EQ(volume.Stats().unique_blocks, 0u);
}

TEST(Volume, CreateFileIsFullySparse) {
  Volume volume(SmallConfig());
  volume.CreateFile("empty", 1 << 20);
  EXPECT_EQ(volume.Stats().unique_blocks, 0u);
  EXPECT_TRUE(util::IsAllZero(volume.ReadRange("empty", 0, 1 << 20)));
}

TEST(Volume, ReadPastEndThrows) {
  Volume volume(SmallConfig());
  volume.CreateFile("f", 4096);
  EXPECT_THROW(volume.ReadRange("f", 0, 4097), std::out_of_range);
  EXPECT_THROW(volume.ReadRange("missing", 0, 1), NoSuchFileError);
}

TEST(Volume, FileNamesSorted) {
  Volume volume(SmallConfig());
  volume.CreateFile("b", 1);
  volume.CreateFile("a", 1);
  volume.CreateFile("c", 1);
  EXPECT_EQ(volume.FileNames(), (std::vector<std::string>{"a", "b", "c"}));
}

TEST(Volume, CompressionReducesPhysicalBytes) {
  Volume volume(VolumeConfig{.block_size = 65536, .codec = compress::CodecId::kGzip6});
  Bytes text(4 * 65536);
  util::Rng rng(11);
  for (auto& b : text) b = static_cast<util::Byte>('a' + rng.Below(4));
  volume.WriteFile("text", BufferSource(text));
  EXPECT_LT(volume.Stats().physical_data_bytes, text.size() / 2);
  EXPECT_EQ(volume.ReadRange("text", 0, text.size()), text);
}

TEST(Volume, ZeroBlockSizeRejected) {
  EXPECT_THROW(Volume(VolumeConfig{.block_size = 0}), std::invalid_argument);
}

}  // namespace
}  // namespace squirrel::zvol
