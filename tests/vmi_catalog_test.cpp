#include "vmi/catalog.h"

#include <gtest/gtest.h>

#include <set>

namespace squirrel::vmi {
namespace {

CatalogConfig TestConfig(std::uint32_t images = 607) {
  CatalogConfig config;
  config.image_count = images;
  config.size_scale = 1.0 / 1024.0;
  return config;
}

TEST(Catalog, Table2RowsMatchThePaper) {
  const auto rows = AzureEc2OsDiversity();
  int azure_total = 0, ec2_total = 0;
  for (const auto& row : rows) {
    azure_total += row.azure_count;
    ec2_total += row.ec2_count;
  }
  EXPECT_EQ(azure_total, 607);
  EXPECT_EQ(ec2_total, 9871 - 81);  // footnote: unclassified remainder
}

TEST(Catalog, GeneratesRequestedImageCount) {
  const Catalog catalog = Catalog::AzureCommunity(TestConfig(607));
  EXPECT_EQ(catalog.images().size(), 607u);
}

TEST(Catalog, FamilyProportionsFollowTable2) {
  const Catalog catalog = Catalog::AzureCommunity(TestConfig(607));
  const auto counts = catalog.FamilyCounts();
  EXPECT_EQ(counts.at("Ubuntu"), 579);
  EXPECT_EQ(counts.at("RedHat/CentOS"), 17);
  EXPECT_EQ(counts.at("OpenSuse/Suse Ent."), 5);
  EXPECT_EQ(counts.at("Debian"), 3);
  EXPECT_EQ(counts.at("Unidentified Linux"), 3);
}

TEST(Catalog, ScaledCatalogKeepsProportionsRoughly) {
  const Catalog catalog = Catalog::AzureCommunity(TestConfig(100));
  const auto counts = catalog.FamilyCounts();
  int total = 0;
  for (const auto& [name, count] : counts) total += count;
  EXPECT_EQ(total, 100);
  EXPECT_GT(counts.at("Ubuntu"), 80);  // ~95%
  EXPECT_GE(counts.at("Debian"), 1);   // every family represented
}

TEST(Catalog, EveryImageHasAValidRelease) {
  const Catalog catalog = Catalog::AzureCommunity(TestConfig(64));
  for (const ImageSpec& spec : catalog.images()) {
    ASSERT_LT(spec.release_index, catalog.releases().size());
    EXPECT_GT(spec.base_bytes, 0u);
    EXPECT_FALSE(spec.packages.empty());
  }
}

TEST(Catalog, ReleasesShareFamilyCorpusWithShiftedOffsets) {
  const Catalog catalog = Catalog::AzureCommunity(TestConfig(64));
  const auto& releases = catalog.releases();
  // Ubuntu releases (family_index 0..9) share the seed, offsets increase.
  std::uint64_t seed = 0;
  std::uint64_t last_offset = 0;
  int ubuntu_releases = 0;
  for (const Release& release : releases) {
    if (release.family != OsFamily::kUbuntu) continue;
    if (ubuntu_releases == 0) {
      seed = release.base_corpus_seed;
    } else {
      EXPECT_EQ(release.base_corpus_seed, seed);
      EXPECT_GT(release.base_corpus_offset, last_offset);
      // Shift is a 1 MiB multiple, preserving block alignment.
      EXPECT_EQ(release.base_corpus_offset % util::kMiB, 0u);
    }
    last_offset = release.base_corpus_offset;
    ++ubuntu_releases;
  }
  EXPECT_EQ(ubuntu_releases, 10);
}

TEST(Catalog, PackagePoolDisjointAndAligned) {
  const Catalog catalog = Catalog::AzureCommunity(TestConfig(16));
  const auto& pool = catalog.family_packages(OsFamily::kUbuntu);
  ASSERT_FALSE(pool.empty());
  std::uint64_t cursor = 0;
  for (const Package& pkg : pool) {
    EXPECT_EQ(pkg.corpus_offset, cursor);
    EXPECT_EQ(pkg.size % 4096, 0u);
    EXPECT_GT(pkg.size, 0u);
    cursor += pkg.size;
  }
}

TEST(Catalog, PackagesDrawnWithoutReplacement) {
  const Catalog catalog = Catalog::AzureCommunity(TestConfig(32));
  for (const ImageSpec& spec : catalog.images()) {
    std::set<std::uint32_t> unique(spec.packages.begin(), spec.packages.end());
    EXPECT_EQ(unique.size(), spec.packages.size()) << spec.name;
  }
}

TEST(Catalog, DeterministicForSameSeed) {
  const Catalog a = Catalog::AzureCommunity(TestConfig(32));
  const Catalog b = Catalog::AzureCommunity(TestConfig(32));
  ASSERT_EQ(a.images().size(), b.images().size());
  for (std::size_t i = 0; i < a.images().size(); ++i) {
    EXPECT_EQ(a.images()[i].seed, b.images()[i].seed);
    EXPECT_EQ(a.images()[i].packages, b.images()[i].packages);
  }
}

TEST(Catalog, ScaleChangesBytesNotStructure) {
  CatalogConfig big = TestConfig(16);
  big.size_scale = 1.0 / 256.0;
  CatalogConfig small = TestConfig(16);
  small.size_scale = 1.0 / 1024.0;
  const Catalog a = Catalog::AzureCommunity(big);
  const Catalog b = Catalog::AzureCommunity(small);
  EXPECT_NEAR(static_cast<double>(a.images()[0].base_bytes),
              4.0 * static_cast<double>(b.images()[0].base_bytes), 8.0);
}

}  // namespace
}  // namespace squirrel::vmi
