// Striped placement through the cluster workflows (ISSUE 9): registration
// installs shards instead of replicas, SyncNode catches a rejoined node up
// on its shard set, boots assemble blocks from set peers, degraded boots
// with up to m set members down rebuild through parity with zero
// storage-node refetches, and the RepairSession tries reconstruction before
// the storage node.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "core/squirrel.h"
#include "placement/reconstruct.h"
#include "placement/reed_solomon.h"
#include "placement/shard_store.h"
#include "store_invariants.h"
#include "util/fault_injector.h"
#include "util/rng.h"
#include "vmi/bootset.h"

namespace squirrel::core {
namespace {

using util::Bytes;

constexpr std::uint32_t kBlock = 4096;

class BufferSource final : public util::DataSource {
 public:
  explicit BufferSource(Bytes data) : data_(std::move(data)) {}
  std::uint64_t size() const override { return data_.size(); }
  void Read(std::uint64_t offset, util::MutableByteSpan out) const override {
    std::copy_n(data_.begin() + static_cast<std::ptrdiff_t>(offset), out.size(),
                out.begin());
  }

 private:
  Bytes data_;
};

SquirrelConfig StripedConfig(std::uint32_t data_shards = 4,
                             std::uint32_t parity_shards = 2) {
  SquirrelConfig config;
  config.volume = zvol::VolumeConfig{.block_size = kBlock,
                                     .codec = compress::CodecId::kGzip6,
                                     .dedup = true};
  config.placement.policy = placement::PolicyKind::kStriped;
  config.placement.data_shards = data_shards;
  config.placement.parity_shards = parity_shards;
  return config;
}

Bytes MakeCacheContent(std::uint64_t seed, std::size_t blocks = 32) {
  Bytes content(blocks * kBlock, 0);
  util::Rng rng(seed);
  rng.Fill(util::MutableByteSpan(content.data(), (blocks - 4) * kBlock));
  return content;
}

/// Boot request plumbing: base equals the cache where cached; the trace
/// touches only cached content, so a healthy full-replication boot would be
/// zero-network.
struct BootFixture {
  Bytes cache;
  Bytes base;
  std::vector<vmi::BootRead> trace;

  explicit BootFixture(std::uint64_t seed, std::size_t blocks = 32)
      : cache(MakeCacheContent(seed, blocks)) {
    base = cache;
    base.resize(base.size() + 8 * kBlock, 0x5a);
    for (std::uint64_t off = 0; off < (blocks - 4) * kBlock; off += 2 * kBlock) {
      trace.push_back({off, 2 * kBlock});
    }
  }
};

TEST(PlacementCluster, RegisterInstallsShardsNotReplicas) {
  SquirrelCluster cluster(StripedConfig(), 6);
  const RegistrationReport report = cluster.Register(
      {"img-1", BufferSource(MakeCacheContent(1)), SimClock::FromSeconds(60)});
  EXPECT_EQ(report.receivers, 6u);
  EXPECT_GT(report.diff_wire_bytes, 0u);

  const std::uint64_t unique_raw =
      cluster.storage_volume().block_store().stats().logical_unique_bytes;
  std::uint64_t total_shard_bytes = 0;
  for (std::uint32_t n = 0; n < 6; ++n) {
    const ComputeNode& node = cluster.compute_node(n);
    // Striped nodes hold shards, not ccVolume replicas.
    EXPECT_FALSE(
        node.volume().HasFile(SquirrelCluster::CacheFileName("img-1")));
    EXPECT_GT(node.shards().shard_count(), 0u);
    total_shard_bytes += node.shards().shard_bytes();
    EXPECT_TRUE(cluster.NodeStriped(n));
  }
  // The set collectively stores (k + m) / k of one raw copy (4 + 2 over 4),
  // not six copies. Ceil-padding adds at most one byte per block per shard.
  EXPECT_GE(total_shard_bytes, unique_raw * 6 / 4);
  EXPECT_LT(total_shard_bytes, unique_raw * 2);
}

TEST(PlacementCluster, SecondRegistrationOnlyInstallsNewShards) {
  SquirrelCluster cluster(StripedConfig(), 6);
  cluster.Register(
      {"img-1", BufferSource(MakeCacheContent(1)), SimClock::FromSeconds(60)});
  const std::uint64_t before = cluster.compute_node(0).shards().shard_bytes();
  // img-2 shares the zero-hole layout but has fresh content.
  cluster.Register(
      {"img-2", BufferSource(MakeCacheContent(2)), SimClock::FromSeconds(120)});
  const std::uint64_t after = cluster.compute_node(0).shards().shard_bytes();
  EXPECT_GT(after, before);
  // Re-registering identical content dedups to zero new shard bytes.
  cluster.Register(
      {"img-3", BufferSource(MakeCacheContent(1)), SimClock::FromSeconds(180)});
  EXPECT_EQ(cluster.compute_node(0).shards().shard_bytes(), after);
}

TEST(PlacementCluster, OfflineNodeCatchesUpOnShardsThroughSync) {
  SquirrelCluster cluster(StripedConfig(), 6);
  cluster.Register(
      {"img-1", BufferSource(MakeCacheContent(1)), SimClock::FromSeconds(60)});
  cluster.compute_node(2).set_online(false);
  cluster.Register(
      {"img-2", BufferSource(MakeCacheContent(2)), SimClock::FromSeconds(120)});
  const std::uint64_t stale = cluster.compute_node(2).shards().shard_bytes();
  EXPECT_LT(stale, cluster.compute_node(0).shards().shard_bytes());

  cluster.compute_node(2).set_online(true);
  const SyncReport sync = cluster.SyncNode(2, SimClock::FromSeconds(180));
  EXPECT_FALSE(sync.full_resync);
  EXPECT_GT(sync.wire_bytes, 0u);
  EXPECT_EQ(sync.snapshots_advanced, 1u);
  EXPECT_EQ(cluster.compute_node(2).shards().shard_bytes(),
            cluster.compute_node(0).shards().shard_bytes());
  // A second sync is a no-op.
  const SyncReport again = cluster.SyncNode(2, SimClock::FromSeconds(240));
  EXPECT_EQ(again.wire_bytes, 0u);
}

TEST(PlacementCluster, HealthyStripedBootAssemblesFromSetPeers) {
  SquirrelCluster cluster(StripedConfig(), 6);
  const BootFixture fx(7);
  cluster.Register(
      {"img-1", BufferSource(fx.cache), SimClock::FromSeconds(60)});
  BufferSource base(fx.base);
  sim::IoContext io;
  const BootReport report = cluster.Boot(
      0, {.image_id = "img-1", .base_image = base, .trace = fx.trace}, io);
  EXPECT_GT(report.result.bytes_read, 0u);
  EXPECT_EQ(report.result.base_bytes_read, 0u);  // cache covers the trace
  // Healthy set: pure data-shard reassembly, no parity, no fallbacks.
  EXPECT_EQ(report.reconstructed_blocks, 0u);
  EXPECT_EQ(report.parity_reads, 0u);
  EXPECT_EQ(report.reconstruct_fallbacks, 0u);
  EXPECT_EQ(report.repair_reads, 0u);
  // k - 1 of every block's data shards cross the set network.
  EXPECT_GT(report.shard_remote_bytes, 0u);
  EXPECT_GE(report.network_bytes, report.shard_remote_bytes);
  test::ExpectReconstructionConservation(report, 2, "healthy striped boot");
}

TEST(PlacementCluster, DegradedBootReconstructsWithZeroStorageRefetches) {
  SquirrelCluster cluster(StripedConfig(), 6);
  const BootFixture fx(7);
  cluster.Register(
      {"img-1", BufferSource(fx.cache), SimClock::FromSeconds(60)});
  // Knock out m = 2 set peers (never the booting node). Any surviving 4 of
  // 6 shards rebuild every block.
  cluster.compute_node(3).set_online(false);
  cluster.compute_node(4).set_online(false);
  BufferSource base(fx.base);
  sim::IoContext io;
  const BootReport report = cluster.Boot(
      0, {.image_id = "img-1", .base_image = base, .trace = fx.trace}, io);
  EXPECT_GT(report.result.bytes_read, 0u);
  // The acceptance property: every block the offline peers stripped a data
  // shard from rebuilds through parity; none re-fetch from the storage node.
  EXPECT_GT(report.reconstructed_blocks, 0u);
  EXPECT_GE(report.parity_reads, report.reconstructed_blocks);
  EXPECT_EQ(report.reconstruct_fallbacks, 0u);
  EXPECT_EQ(report.repair_reads, 0u);
  EXPECT_EQ(report.repaired_blocks_bytes, 0u);
  test::ExpectReconstructionConservation(report, 2, "degraded striped boot");
}

TEST(PlacementCluster, MoreThanMPeersDownFallsBackToStorageNode) {
  SquirrelCluster cluster(StripedConfig(), 6);
  const BootFixture fx(7);
  cluster.Register(
      {"img-1", BufferSource(fx.cache), SimClock::FromSeconds(60)});
  // 3 > m peers down: only 3 shards reachable, every stripe is short.
  cluster.compute_node(3).set_online(false);
  cluster.compute_node(4).set_online(false);
  cluster.compute_node(5).set_online(false);
  BufferSource base(fx.base);
  sim::IoContext io;
  const BootReport report = cluster.Boot(
      0, {.image_id = "img-1", .base_image = base, .trace = fx.trace}, io);
  // The boot still completes — through whole-block storage fetches.
  EXPECT_GT(report.result.bytes_read, 0u);
  EXPECT_EQ(report.reconstructed_blocks, 0u);
  EXPECT_GT(report.reconstruct_fallbacks, 0u);
  EXPECT_EQ(report.repair_reads, report.reconstruct_fallbacks);
  EXPECT_GT(report.repaired_blocks_bytes, 0u);
  test::ExpectReconstructionConservation(report, 2, "short-set striped boot");
}

TEST(PlacementCluster, TrailingUndersizedSetKeepsFullReplicas) {
  // 8 nodes with a 6-wide stripe: computes 0..5 stripe, 6..7 are a trailing
  // 2-node set that must keep whole replicas and boot the legacy path.
  SquirrelCluster cluster(StripedConfig(), 8);
  const BootFixture fx(9);
  cluster.Register(
      {"img-1", BufferSource(fx.cache), SimClock::FromSeconds(60)});
  EXPECT_TRUE(cluster.NodeStriped(0));
  EXPECT_FALSE(cluster.NodeStriped(6));
  EXPECT_FALSE(cluster.NodeStriped(7));
  for (std::uint32_t n : {6u, 7u}) {
    EXPECT_TRUE(cluster.compute_node(n).volume().HasFile(
        SquirrelCluster::CacheFileName("img-1")));
    EXPECT_EQ(cluster.compute_node(n).shards().shard_count(), 0u);
  }
  BufferSource base(fx.base);
  sim::IoContext io;
  const BootReport report = cluster.Boot(
      7, {.image_id = "img-1", .base_image = base, .trace = fx.trace}, io);
  EXPECT_GT(report.result.bytes_read, 0u);
  EXPECT_EQ(report.network_bytes, 0u);  // warm full replica, zero network
  EXPECT_EQ(report.shard_remote_bytes, 0u);
  test::ExpectReconstructionConservation(report, 0, "full-replica boot");
}

TEST(PlacementCluster, FullReplicationReportsZeroReconstructionCounters) {
  SquirrelConfig config;
  config.volume = zvol::VolumeConfig{.block_size = kBlock,
                                     .codec = compress::CodecId::kGzip6,
                                     .dedup = true};
  SquirrelCluster cluster(config, 2);
  EXPECT_EQ(cluster.layout(), nullptr);
  const BootFixture fx(11);
  cluster.Register(
      {"img-1", BufferSource(fx.cache), SimClock::FromSeconds(60)});
  BufferSource base(fx.base);
  sim::IoContext io;
  const BootReport report = cluster.Boot(
      1, {.image_id = "img-1", .base_image = base, .trace = fx.trace}, io);
  test::ExpectReconstructionConservation(report, 0, "placement off");
}

// --- RepairSession reconstruction source -------------------------------------

/// Builds one ShardStore per stripe member from a volume's file table and
/// raw content (what InstallShards does inside the cluster).
std::vector<placement::ShardStore> ShardContent(
    const zvol::Volume& volume, const std::string& file, const Bytes& content,
    const placement::ReedSolomon& codec) {
  std::vector<placement::ShardStore> stores(codec.total_shards());
  const std::uint64_t blocks = volume.FileBlockCount(file);
  for (std::uint64_t b = 0; b < blocks; ++b) {
    const zvol::BlockPtr& ptr = volume.FileBlock(file, b);
    if (ptr.hole) continue;
    const std::size_t begin = b * kBlock;
    const std::size_t len =
        std::min<std::size_t>(kBlock, content.size() - begin);
    const Bytes raw(content.begin() + begin, content.begin() + begin + len);
    std::vector<Bytes> shards = codec.Encode(raw);
    for (std::uint32_t j = 0; j < shards.size(); ++j) {
      stores[j].Put(ptr.digest, j, static_cast<std::uint32_t>(raw.size()),
                    std::move(shards[j]));
    }
  }
  return stores;
}

std::vector<placement::ShardPeer> PeersOver(
    const std::vector<placement::ShardStore>& stores) {
  std::vector<placement::ShardPeer> peers;
  for (std::size_t j = 0; j < stores.size(); ++j) {
    peers.push_back({static_cast<std::uint32_t>(j + 1), &stores[j],
                     /*online=*/true, /*local=*/j == 0});
  }
  return peers;
}

TEST(PlacementRepair, SessionReconstructsBeforeAskingStorageNode) {
  zvol::VolumeConfig config{.block_size = kBlock,
                            .codec = compress::CodecId::kNull,
                            .dedup = true};
  const Bytes content = MakeCacheContent(5, 8);
  zvol::Volume local(config);
  local.WriteFile("f", BufferSource(content));
  const placement::ReedSolomon codec(4, 2);
  const std::vector<placement::ShardStore> stores =
      ShardContent(local, "f", content, codec);

  std::uint64_t corrupt = 0;
  for (std::uint64_t b = 0; b < 4; ++b) {
    corrupt += local.CorruptBlockForTesting("f", b);
  }
  ASSERT_GT(corrupt, 0u);

  // The only repair peer is an *empty* storage node: every heal must come
  // from the reconstruction source, tried before peer 0.
  zvol::Volume empty(config);
  placement::ReconstructionSource source(&codec, PeersOver(stores));
  zvol::RepairSession session({{0, &empty.block_store()}});
  session.SetReconstructionSource(&source);
  const zvol::Volume::RepairReport report = local.ScrubRepair(session);
  EXPECT_EQ(report.errors_found, corrupt);
  EXPECT_EQ(report.repaired, corrupt);
  EXPECT_EQ(report.unrepairable, 0u);
  EXPECT_EQ(report.reconstructed_blocks, corrupt);
  EXPECT_EQ(report.reconstruct_fallbacks, 0u);
  test::ExpectReconstructionConservation(report, 2, "session reconstruction");
  EXPECT_EQ(local.Scrub().errors, 0u);
  test::ExpectVolumeInvariants(local, "after reconstruction repair");
}

TEST(PlacementRepair, SessionFallsBackToStorageWhenSetIsShort) {
  zvol::VolumeConfig config{.block_size = kBlock,
                            .codec = compress::CodecId::kNull,
                            .dedup = true};
  const Bytes content = MakeCacheContent(6, 8);
  zvol::Volume local(config);
  local.WriteFile("f", BufferSource(content));
  zvol::Volume honest(config);
  honest.WriteFile("f", BufferSource(content));
  const placement::ReedSolomon codec(4, 2);
  std::vector<placement::ShardStore> stores =
      ShardContent(local, "f", content, codec);

  std::uint64_t corrupt = 0;
  for (std::uint64_t b = 0; b < 3; ++b) {
    corrupt += local.CorruptBlockForTesting("f", b);
  }
  ASSERT_GT(corrupt, 0u);

  // Three of six stripe peers offline: gathers come up short, every heal
  // falls through to the storage node.
  std::vector<placement::ShardPeer> peers = PeersOver(stores);
  placement::ReconstructionSource source(&codec, peers);
  for (std::uint32_t node = 4; node <= 6; ++node) {
    source.SetPeerOnline(node, false);
  }
  zvol::RepairSession session({{0, &honest.block_store()}});
  session.SetReconstructionSource(&source);
  const zvol::Volume::RepairReport report = local.ScrubRepair(session);
  EXPECT_EQ(report.repaired, corrupt);
  EXPECT_EQ(report.reconstructed_blocks, 0u);
  EXPECT_EQ(report.reconstruct_fallbacks, corrupt);
  EXPECT_EQ(report.parity_reads, 0u);
  test::ExpectReconstructionConservation(report, 2, "short-set session");
  EXPECT_EQ(local.Scrub().errors, 0u);
}

TEST(PlacementRepair, GatherDecodesThroughParityWhenDataShardMissing) {
  const placement::ReedSolomon codec(3, 2);
  Bytes payload(kBlock, 0);
  util::Rng rng(8);
  rng.Fill(util::MutableByteSpan(payload.data(), payload.size()));
  const util::Digest digest = util::HashBlock(payload);
  std::vector<Bytes> shards = codec.Encode(payload);
  std::vector<placement::ShardStore> stores(5);
  for (std::uint32_t j = 0; j < 5; ++j) {
    stores[j].Put(digest, j, static_cast<std::uint32_t>(payload.size()),
                  std::move(shards[j]));
  }
  placement::ReconstructionSource source(&codec, PeersOver(stores));
  // Peer 2 holds data shard 1: losing it forces a parity decode.
  source.SetPeerOnline(2, false);
  const auto gathered = source.Gather(digest);
  ASSERT_TRUE(gathered.has_value());
  EXPECT_EQ(gathered->payload, payload);
  EXPECT_TRUE(gathered->decoded);
  EXPECT_GE(gathered->parity_shards_read, 1u);
  EXPECT_GT(gathered->local_bytes, 0u);  // peer 1 (shard 0) is local
  EXPECT_GT(gathered->remote_bytes, 0u);
  // Byte accounting: remote_reads sums to remote_bytes.
  std::uint64_t sum = 0;
  for (const auto& [node, bytes] : gathered->remote_reads) sum += bytes;
  EXPECT_EQ(sum, gathered->remote_bytes);
}

}  // namespace
}  // namespace squirrel::core
