#include "sim/p2p.h"

#include <gtest/gtest.h>

namespace squirrel::sim {
namespace {

constexpr std::uint64_t kImage = 1ull << 30;    // 1 GiB
constexpr std::uint64_t kBootSet = 64ull << 20; // 64 MiB

TEST(P2p, AllPeersEventuallyBoot) {
  P2pConfig config;
  config.mode = P2pMode::kFullImage;
  const P2pResult result = SimulateSwarm(kImage, kBootSet, 8, config);
  ASSERT_EQ(result.time_to_boot_seconds.size(), 8u);
  for (double t : result.time_to_boot_seconds) EXPECT_GT(t, 0.0);
  EXPECT_GE(result.max_time_to_boot, result.mean_time_to_boot);
}

TEST(P2p, StreamingBootsFarFasterThanFullImage) {
  P2pConfig full;
  full.mode = P2pMode::kFullImage;
  P2pConfig stream;
  stream.mode = P2pMode::kStreaming;
  const P2pResult f = SimulateSwarm(kImage, kBootSet, 16, full);
  const P2pResult s = SimulateSwarm(kImage, kBootSet, 16, stream);
  // The working set is 1/16th of the image; streaming must be at least
  // several times faster to first boot.
  EXPECT_LT(s.mean_time_to_boot, f.mean_time_to_boot / 4);
}

TEST(P2p, SwarmScalesSublinearly) {
  // Doubling the peer count must not double time-to-boot: peers serve each
  // other (the whole point of P2P).
  P2pConfig config;
  config.mode = P2pMode::kFullImage;
  const P2pResult small = SimulateSwarm(kImage, kBootSet, 4, config);
  const P2pResult large = SimulateSwarm(kImage, kBootSet, 32, config);
  EXPECT_LT(large.mean_time_to_boot, small.mean_time_to_boot * 4);
}

TEST(P2p, SeedServesEachChunkOnceInSteadyState) {
  P2pConfig config;
  config.mode = P2pMode::kFullImage;
  const P2pResult result = SimulateSwarm(kImage, kBootSet, 8, config);
  // The seed uploads each chunk's first copy; everything else is P2P.
  EXPECT_EQ(result.seed_bytes, kImage / config.chunk_size * config.chunk_size);
  EXPECT_GT(result.network_bytes, result.seed_bytes);
}

TEST(P2p, NetworkBytesMatchDistribution) {
  P2pConfig config;
  config.mode = P2pMode::kFullImage;
  const std::uint32_t peers = 4;
  const P2pResult result = SimulateSwarm(kImage, kBootSet, peers, config);
  // Every peer downloads the whole image exactly once.
  EXPECT_EQ(result.network_bytes,
            static_cast<std::uint64_t>(peers) *
                (kImage / config.chunk_size) * config.chunk_size);
}

TEST(P2p, ZeroPeersIsEmptyResult) {
  const P2pResult result = SimulateSwarm(kImage, kBootSet, 0, {});
  EXPECT_EQ(result.network_bytes, 0u);
  EXPECT_TRUE(result.time_to_boot_seconds.empty());
}

TEST(P2p, SinglePeerBoundedBySeedBandwidth) {
  P2pConfig config;
  config.mode = P2pMode::kFullImage;
  const P2pResult result = SimulateSwarm(kImage, kBootSet, 1, config);
  const double lower_bound =
      static_cast<double>(kImage) / config.bandwidth_bytes_per_second;
  EXPECT_GE(result.max_time_to_boot, lower_bound * 0.9);
}

}  // namespace
}  // namespace squirrel::sim
