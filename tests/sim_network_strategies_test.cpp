#include <gtest/gtest.h>

#include "core/squirrel.h"
#include "sim/network.h"
#include "util/rng.h"

namespace squirrel::sim {
namespace {

TEST(NetworkStrategies, UnicastEgressScalesWithReceivers) {
  NetworkAccountant network(9);
  network.UnicastAll(0, {1, 2, 3, 4, 5, 6, 7, 8}, 1000);
  EXPECT_EQ(network.bytes_out(0), 8000u);
  EXPECT_EQ(network.bytes_in(5), 1000u);
}

TEST(NetworkStrategies, PipelineSpreadsEgress) {
  NetworkAccountant network(5);
  network.Pipeline(0, {1, 2, 3, 4}, 1000);
  // Sender forwards once; each intermediate node forwards once.
  EXPECT_EQ(network.bytes_out(0), 1000u);
  EXPECT_EQ(network.bytes_out(1), 1000u);
  EXPECT_EQ(network.bytes_out(4), 0u);  // tail of the chain
  for (std::uint32_t n = 1; n <= 4; ++n) EXPECT_EQ(network.bytes_in(n), 1000u);
}

TEST(NetworkStrategies, PipelineEmptyIsFree) {
  NetworkAccountant network(2);
  EXPECT_EQ(network.Pipeline(0, {}, 1000), 0.0);
  EXPECT_EQ(network.bytes_out(0), 0u);
}

TEST(NetworkStrategies, DurationOrdering) {
  // For a large stream to many receivers: multicast ~ pipeline << unicast.
  NetworkAccountant network(33);
  std::vector<std::uint32_t> receivers;
  for (std::uint32_t n = 1; n <= 32; ++n) receivers.push_back(n);
  const std::uint64_t bytes = 100 << 20;
  const double mcast = network.Multicast(0, receivers, bytes);
  const double pipe = network.Pipeline(0, receivers, bytes);
  const double ucast = network.UnicastAll(0, receivers, bytes);
  EXPECT_LT(mcast, ucast / 10);
  EXPECT_LT(pipe, ucast / 10);
  EXPECT_GE(pipe, mcast);  // pipeline pays per-hop latency
}

}  // namespace
}  // namespace squirrel::sim

namespace squirrel::core {
namespace {

using util::Bytes;

class BufferSource final : public util::DataSource {
 public:
  explicit BufferSource(Bytes data) : data_(std::move(data)) {}
  std::uint64_t size() const override { return data_.size(); }
  void Read(std::uint64_t offset, util::MutableByteSpan out) const override {
    std::copy_n(data_.begin() + static_cast<std::ptrdiff_t>(offset), out.size(),
                out.begin());
  }

 private:
  Bytes data_;
};

Bytes SomeCache(std::uint64_t seed) {
  Bytes content(32 * 4096, 0);
  util::Rng(seed).Fill(util::MutableByteSpan(content.data(), 16 * 4096));
  return content;
}

TEST(SquirrelPropagation, AllStrategiesReplicateIdentically) {
  for (const PropagationStrategy strategy :
       {PropagationStrategy::kMulticast, PropagationStrategy::kUnicast,
        PropagationStrategy::kPipeline}) {
    SquirrelConfig config;
    config.volume = zvol::VolumeConfig{.block_size = 4096, .codec = compress::CodecId::kLz4};
    config.propagation = strategy;
    SquirrelCluster cluster(config, 3);
    cluster.Register({"img", BufferSource(SomeCache(1)), SimClock::FromSeconds(100)});
    for (std::uint32_t n = 0; n < 3; ++n) {
      EXPECT_TRUE(cluster.compute_node(n).volume().HasFile(
          SquirrelCluster::CacheFileName("img")))
          << "strategy " << static_cast<int>(strategy) << " node " << n;
    }
  }
}

TEST(SquirrelPropagation, UnicastRegistrationSlowerAtScale) {
  auto run = [](PropagationStrategy strategy) {
    SquirrelConfig config;
    config.volume = zvol::VolumeConfig{.block_size = 4096, .codec = compress::CodecId::kNull};
    config.propagation = strategy;
    sim::NetworkConfig net;
    net.bandwidth_bytes_per_ns = 0.125;
    SquirrelCluster cluster(config, 64, net);
    return cluster.Register({"img", BufferSource(SomeCache(2)), SimClock::FromSeconds(100)})
        .total_seconds;
  };
  const double mcast = run(PropagationStrategy::kMulticast);
  const double ucast = run(PropagationStrategy::kUnicast);
  EXPECT_GT(ucast, mcast);
}

}  // namespace
}  // namespace squirrel::core
