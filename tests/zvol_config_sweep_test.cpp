// Cross-configuration sweep: the full volume life cycle — ingest, snapshot,
// incremental replication, scrub, persistence round trip — must hold for
// every (block size x codec x hash mode) combination, not just the defaults
// the benches use.
#include <gtest/gtest.h>

#include <tuple>

#include "util/rng.h"
#include "zvol/volume.h"

namespace squirrel::zvol {
namespace {

using util::Bytes;

class BufferSource final : public util::DataSource {
 public:
  explicit BufferSource(Bytes data) : data_(std::move(data)) {}
  std::uint64_t size() const override { return data_.size(); }
  void Read(std::uint64_t offset, util::MutableByteSpan out) const override {
    std::copy_n(data_.begin() + static_cast<std::ptrdiff_t>(offset), out.size(),
                out.begin());
  }

 private:
  Bytes data_;
};

// Mixed-texture content: zero stretches, compressible text, random tails,
// plus duplicated segments so every feature (holes, compression, dedup) is
// exercised regardless of configuration.
Bytes MixedContent(std::size_t size, std::uint64_t seed) {
  Bytes data(size, 0);
  util::Rng rng(seed);
  std::size_t pos = 0;
  while (pos < size) {
    const std::size_t len = std::min<std::size_t>(size - pos, 3000 + rng.Below(9000));
    switch (rng.Below(4)) {
      case 0:
        break;  // zeros
      case 1:
        for (std::size_t i = 0; i < len; ++i) {
          data[pos + i] = static_cast<util::Byte>('a' + rng.Below(5));
        }
        break;
      case 2:
        rng.Fill(util::MutableByteSpan(data.data() + pos, len));
        break;
      default:  // duplicate of an earlier region when possible
        if (pos > len) {
          std::copy_n(data.begin(), len,
                      data.begin() + static_cast<std::ptrdiff_t>(pos));
        }
        break;
    }
    pos += len;
  }
  return data;
}

using Param = std::tuple<std::uint32_t, std::string, bool>;  // bs, codec, fast

class VolumeConfigSweep : public ::testing::TestWithParam<Param> {
 protected:
  VolumeConfig Config() const {
    const auto& [bs, codec, fast] = GetParam();
    return VolumeConfig{.block_size = bs,
                        .codec = *compress::ParseCodec(codec),
                        .dedup = true,
                        .fast_hash = fast};
  }
};

TEST_P(VolumeConfigSweep, FullLifeCycle) {
  Volume source(Config());

  // Ingest two generations of files.
  const Bytes gen1 = MixedContent(200000, 1);
  const Bytes gen2 = MixedContent(150000, 2);
  source.WriteFile("one", BufferSource(gen1));
  source.CreateSnapshot("s1", 100);
  source.WriteFile("two", BufferSource(gen2));
  source.DeleteFile("one");
  source.CreateSnapshot("s2", 200);

  // Replicate incrementally.
  Volume replica(Config());
  replica.Receive(SendStream::Deserialize(source.Send("", "s1").Serialize()));
  replica.Receive(SendStream::Deserialize(source.Send("s1", "s2").Serialize()));
  ASSERT_EQ(replica.FileNames(), source.FileNames());
  EXPECT_EQ(replica.ReadRange("two", 0, gen2.size()), gen2);

  // Scrub both sides.
  EXPECT_EQ(source.Scrub().errors, 0u);
  EXPECT_EQ(replica.Scrub().errors, 0u);

  // Persistence round trip of the replica preserves replication ability.
  const auto restored = Volume::Deserialize(replica.Serialize());
  EXPECT_EQ(restored->ReadRange("two", 0, gen2.size()), gen2);
  source.WriteFile("three", BufferSource(MixedContent(90000, 3)));
  source.CreateSnapshot("s3", 300);
  restored->Receive(source.Send("s2", "s3"));
  EXPECT_TRUE(restored->HasFile("three"));

  // Accounting sanity at every configuration.
  const VolumeStats stats = restored->Stats();
  EXPECT_GT(stats.unique_blocks, 0u);
  EXPECT_EQ(stats.disk_used_bytes,
            stats.physical_data_bytes + stats.ddt_disk_bytes +
                stats.blkptr_disk_bytes);
}

TEST_P(VolumeConfigSweep, CorruptionAlwaysDetected) {
  Volume volume(Config());
  const Bytes content = MixedContent(160000, 4);
  volume.WriteFile("f", BufferSource(content));
  // Corrupt the first non-hole block.
  bool corrupted = false;
  for (std::uint64_t b = 0; b < volume.FileBlockCount("f") && !corrupted; ++b) {
    corrupted = volume.CorruptBlockForTesting("f", b);
  }
  ASSERT_TRUE(corrupted);
  EXPECT_GE(volume.Scrub().errors, 1u);
}

std::string SweepName(const ::testing::TestParamInfo<Param>& info) {
  return "bs" + std::to_string(std::get<0>(info.param) / 1024) + "k_" +
         std::get<1>(info.param) +
         (std::get<2>(info.param) ? "_fast" : "_sha");
}

INSTANTIATE_TEST_SUITE_P(
    Configs, VolumeConfigSweep,
    ::testing::Combine(::testing::Values(4096u, 16384u, 65536u, 131072u),
                       ::testing::Values("null", "gzip1", "gzip6", "lz4",
                                         "lzjb", "zle"),
                       ::testing::Bool()),
    SweepName);

}  // namespace
}  // namespace squirrel::zvol
