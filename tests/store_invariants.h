// Strict-unwind assertion helpers shared by the crash / disk-full / fuzz
// suites: after any unwound failure (simulated crash, NoSpaceError,
// mid-apply stream damage) the store's internal accounting must still be
// self-consistent and the volume's reference counts conserved.
#pragma once

#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "store/block_store.h"
#include "zvol/volume.h"

namespace squirrel::test {

/// Full store self-check: recounted stats vs recorded, no zero-refcount
/// entries, sector alignment, space-map accounting (allocated == sum of
/// physical sizes, pool == allocated + holes), no overlapping extents.
inline void ExpectStoreInvariants(const store::BlockStore& store,
                                  const std::string& context = "") {
  const store::InvariantReport report = store.CheckInvariants();
  EXPECT_TRUE(report.ok) << context
                         << (context.empty() ? "" : ": ") << report.detail;
}

/// Block references reachable from the volume's live table and every
/// snapshot — what the store's total_refs must equal (conservation).
inline std::uint64_t CountReachableRefs(const zvol::Volume& volume) {
  std::uint64_t refs = 0;
  for (const std::string& name : volume.FileNames()) {
    const std::uint64_t blocks = volume.FileBlockCount(name);
    for (std::uint64_t b = 0; b < blocks; ++b) {
      refs += !volume.FileBlock(name, b).hole;
    }
  }
  for (const auto& snap : volume.snapshots()) {
    for (const auto& [name, meta] : snap->files) {
      for (const zvol::BlockPtr& ptr : meta.blocks) refs += !ptr.hole;
    }
  }
  return refs;
}

/// Store invariants plus volume-level refcount conservation.
inline void ExpectVolumeInvariants(const zvol::Volume& volume,
                                   const std::string& context = "") {
  ExpectStoreInvariants(volume.block_store(), context);
  EXPECT_EQ(volume.block_store().stats().total_refs,
            CountReachableRefs(volume))
      << context << (context.empty() ? "" : ": ")
      << "refcount conservation violated";
}

/// Reconstruction-counter conservation (ISSUE 9): a report's stripe-rebuild
/// counters must be internally consistent. `parity_shards` is the stripe's
/// m (0 = placement off, all counters must be zero). Every rebuild or
/// failed rebuild consumes at most m parity shards, so
/// parity_reads <= (reconstructed + fallbacks) * m.
template <typename Report>
inline void ExpectReconstructionConservation(const Report& report,
                                             std::uint32_t parity_shards,
                                             const std::string& context = "") {
  const char* sep = context.empty() ? "" : ": ";
  if (parity_shards == 0) {
    EXPECT_EQ(report.reconstructed_blocks, 0u)
        << context << sep << "reconstruction counted with placement off";
    EXPECT_EQ(report.parity_reads, 0u)
        << context << sep << "parity read with placement off";
    EXPECT_EQ(report.reconstruct_fallbacks, 0u)
        << context << sep << "reconstruct fallback with placement off";
    return;
  }
  EXPECT_LE(report.parity_reads,
            (report.reconstructed_blocks + report.reconstruct_fallbacks) *
                static_cast<std::uint64_t>(parity_shards))
      << context << sep << "parity reads exceed rebuild attempts * m";
}

/// Scoped checker: asserts the volume invariants at construction and again
/// at scope exit, bracketing a block of operations that may unwind.
class VolumeInvariantGuard {
 public:
  explicit VolumeInvariantGuard(const zvol::Volume& volume,
                                std::string context = "")
      : volume_(volume), context_(std::move(context)) {
    ExpectVolumeInvariants(volume_, context_ + " (enter)");
  }
  ~VolumeInvariantGuard() {
    ExpectVolumeInvariants(volume_, context_ + " (exit)");
  }

  VolumeInvariantGuard(const VolumeInvariantGuard&) = delete;
  VolumeInvariantGuard& operator=(const VolumeInvariantGuard&) = delete;

 private:
  const zvol::Volume& volume_;
  std::string context_;
};

}  // namespace squirrel::test
