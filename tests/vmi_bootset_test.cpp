#include "vmi/bootset.h"

#include <gtest/gtest.h>

namespace squirrel::vmi {
namespace {

using util::Bytes;

CatalogConfig TestConfig(std::uint32_t images = 32) {
  CatalogConfig config;
  config.image_count = images;
  config.size_scale = 1.0 / 512.0;
  return config;
}

TEST(BootWorkingSet, RangesSortedDisjointWithinImage) {
  const Catalog catalog = Catalog::AzureCommunity(TestConfig());
  for (int i = 0; i < 4; ++i) {
    const VmImage image(catalog, catalog.images()[i]);
    const BootWorkingSet boot(catalog, image);
    const auto& ranges = boot.ranges();
    ASSERT_FALSE(ranges.empty());
    std::uint64_t total = 0;
    for (std::size_t r = 0; r < ranges.size(); ++r) {
      EXPECT_GT(ranges[r].length, 0u);
      EXPECT_LE(ranges[r].end(), image.size());
      if (r > 0) {
        EXPECT_GT(ranges[r].offset, ranges[r - 1].end());
      }
      total += ranges[r].length;
    }
    EXPECT_EQ(boot.byte_count(), total);
  }
}

TEST(BootWorkingSet, SizeNearConfiguredTarget) {
  const Catalog catalog = Catalog::AzureCommunity(TestConfig());
  const std::uint64_t target = catalog.config().ScaledCache();
  for (int i = 0; i < 8; ++i) {
    const VmImage image(catalog, catalog.images()[i]);
    const BootWorkingSet boot(catalog, image);
    EXPECT_GT(boot.byte_count(), target / 2) << i;
    EXPECT_LT(boot.byte_count(), target * 2) << i;
  }
}

TEST(BootWorkingSet, StartsWithKernelPrefix) {
  const Catalog catalog = Catalog::AzureCommunity(TestConfig());
  const VmImage image(catalog, catalog.images()[0]);
  const BootWorkingSet boot(catalog, image);
  EXPECT_EQ(boot.ranges().front().offset, 0u);
  EXPECT_TRUE(boot.Contains(0));
  EXPECT_TRUE(boot.Contains(boot.ranges().front().length - 1));
}

TEST(BootWorkingSet, ContainsMatchesRanges) {
  const Catalog catalog = Catalog::AzureCommunity(TestConfig());
  const VmImage image(catalog, catalog.images()[1]);
  const BootWorkingSet boot(catalog, image);
  for (const Range& range : boot.ranges()) {
    EXPECT_TRUE(boot.Contains(range.offset));
    EXPECT_TRUE(boot.Contains(range.end() - 1));
    EXPECT_FALSE(boot.Contains(range.end()));
  }
  EXPECT_FALSE(boot.Contains(image.size() - 1));
}

TEST(BootWorkingSet, TraceCoversExactlyTheRanges) {
  const Catalog catalog = Catalog::AzureCommunity(TestConfig());
  const VmImage image(catalog, catalog.images()[2]);
  const BootWorkingSet boot(catalog, image);
  const auto trace = boot.Trace(1);
  std::uint64_t traced = 0;
  for (const BootRead& read : trace) {
    EXPECT_TRUE(boot.Contains(read.offset)) << read.offset;
    EXPECT_TRUE(boot.Contains(read.offset + read.length - 1));
    traced += read.length;
  }
  EXPECT_EQ(traced, boot.byte_count());  // each byte read exactly once
}

TEST(BootWorkingSet, TraceDeterministicPerSeed) {
  const Catalog catalog = Catalog::AzureCommunity(TestConfig());
  const VmImage image(catalog, catalog.images()[0]);
  const BootWorkingSet boot(catalog, image);
  const auto t1 = boot.Trace(5);
  const auto t2 = boot.Trace(5);
  ASSERT_EQ(t1.size(), t2.size());
  for (std::size_t i = 0; i < t1.size(); ++i) {
    EXPECT_EQ(t1[i].offset, t2[i].offset);
    EXPECT_EQ(t1[i].length, t2[i].length);
  }
}

TEST(BootWorkingSet, SameReleaseSharesMostRanges) {
  const Catalog catalog = Catalog::AzureCommunity(TestConfig(64));
  const auto& images = catalog.images();
  for (std::size_t i = 0; i < images.size(); ++i) {
    for (std::size_t j = i + 1; j < images.size(); ++j) {
      if (images[i].release_index != images[j].release_index) continue;
      const VmImage ia(catalog, images[i]), ib(catalog, images[j]);
      const BootWorkingSet ba(catalog, ia), bb(catalog, ib);
      // Measure byte overlap of the two range sets.
      std::uint64_t overlap = 0;
      for (const Range& ra : ba.ranges()) {
        for (const Range& rb : bb.ranges()) {
          const std::uint64_t lo = std::max(ra.offset, rb.offset);
          const std::uint64_t hi = std::min(ra.end(), rb.end());
          if (lo < hi) overlap += hi - lo;
        }
      }
      const double frac =
          static_cast<double>(overlap) / static_cast<double>(ba.byte_count());
      EXPECT_GT(frac, 0.6) << "boot sets of one release should mostly agree";
      return;
    }
  }
  GTEST_SKIP() << "no release pair";
}

TEST(CacheImage, ContentMatchesImageInsideRanges) {
  const Catalog catalog = Catalog::AzureCommunity(TestConfig());
  const VmImage image(catalog, catalog.images()[3]);
  const BootWorkingSet boot(catalog, image);
  const CacheImage cache(image, boot);
  EXPECT_EQ(cache.size(), image.size());

  const Range& range = boot.ranges().front();
  Bytes from_cache(range.length), from_image(range.length);
  cache.Read(range.offset, from_cache);
  image.Read(range.offset, from_image);
  EXPECT_EQ(from_cache, from_image);
}

TEST(CacheImage, ZeroOutsideRanges) {
  const Catalog catalog = Catalog::AzureCommunity(TestConfig());
  const VmImage image(catalog, catalog.images()[3]);
  const BootWorkingSet boot(catalog, image);
  const CacheImage cache(image, boot);
  // Probe the gap between the first two ranges.
  ASSERT_GE(boot.ranges().size(), 2u);
  const std::uint64_t gap_start = boot.ranges()[0].end();
  const std::uint64_t gap_len =
      std::min<std::uint64_t>(boot.ranges()[1].offset - gap_start, 8192);
  ASSERT_GT(gap_len, 0u);
  Bytes gap(gap_len);
  cache.Read(gap_start, gap);
  EXPECT_TRUE(util::IsAllZero(gap));
}

TEST(CacheImage, StraddlingReadMixesContentAndZeros) {
  const Catalog catalog = Catalog::AzureCommunity(TestConfig());
  const VmImage image(catalog, catalog.images()[0]);
  const BootWorkingSet boot(catalog, image);
  const CacheImage cache(image, boot);
  const Range& first = boot.ranges().front();
  // Read across the end of the first range into the gap.
  const std::size_t len = 4096;
  Bytes out(len);
  cache.Read(first.end() - len / 2, out);
  Bytes expected_head(len / 2);
  image.Read(first.end() - len / 2, expected_head);
  EXPECT_TRUE(std::equal(expected_head.begin(), expected_head.end(), out.begin()));
  EXPECT_TRUE(util::IsAllZero(util::ByteSpan(out.data() + len / 2, len / 2)));
}

}  // namespace
}  // namespace squirrel::vmi
