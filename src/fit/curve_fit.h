// Curve fitting for the scalability extrapolations (Section 4.3.2).
//
// The paper's protocol: train candidate models — linear regression,
// Morgan-Mercer-Flodin (MMF) and Hoerl — on the first half of the measured
// series, score RMSE on all points (Tables 3 and 4), then retrain the best
// model on every point and extrapolate (Figures 15 and 17).
//
//   linear(x) = a + b x
//   MMF(x)    = (a b + c x^d) / (b + x^d)
//   hoerl(x)  = a b^x x^c
//
// Nonlinear models are fitted by Nelder-Mead simplex over sum-of-squares,
// started from data-driven initial guesses.
#pragma once

#include <functional>
#include <span>
#include <string>
#include <vector>

namespace squirrel::fit {

/// A fitted model: evaluable, named, with its coefficient vector.
struct FittedCurve {
  std::string name;
  std::vector<double> params;
  std::function<double(double, const std::vector<double>&)> eval;

  double operator()(double x) const { return eval(x, params); }
};

/// Ordinary least squares, closed form. y = a + b x.
FittedCurve FitLinear(std::span<const double> x, std::span<const double> y);

/// MMF(x) = (a*b + c*x^d) / (b + x^d), fitted by Nelder-Mead.
FittedCurve FitMmf(std::span<const double> x, std::span<const double> y);

/// hoerl(x) = a * b^x * x^c, fitted by Nelder-Mead (x must be > 0).
FittedCurve FitHoerl(std::span<const double> x, std::span<const double> y);

/// RMSE of `curve` against all (x, y) points.
double CurveRmse(const FittedCurve& curve, std::span<const double> x,
                 std::span<const double> y);

/// Generic Nelder-Mead minimizer (exposed for tests and other models).
/// Returns the best parameter vector found.
std::vector<double> NelderMead(
    const std::function<double(const std::vector<double>&)>& objective,
    std::vector<double> initial, double initial_step = 0.1,
    int max_iterations = 4000, double tolerance = 1e-12);

}  // namespace squirrel::fit
