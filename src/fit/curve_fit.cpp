#include "fit/curve_fit.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>

#include "util/stats.h"

namespace squirrel::fit {
namespace {

double SumOfSquares(const FittedCurve& shape, const std::vector<double>& params,
                    std::span<const double> x, std::span<const double> y) {
  double total = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double predicted = shape.eval(x[i], params);
    if (!std::isfinite(predicted)) return 1e300;
    const double err = predicted - y[i];
    total += err * err;
  }
  return total;
}

}  // namespace

std::vector<double> NelderMead(
    const std::function<double(const std::vector<double>&)>& objective,
    std::vector<double> initial, double initial_step, int max_iterations,
    double tolerance) {
  const std::size_t n = initial.size();
  assert(n >= 1);

  // Build the initial simplex: the start point plus n perturbed vertices.
  std::vector<std::vector<double>> simplex;
  simplex.push_back(initial);
  for (std::size_t i = 0; i < n; ++i) {
    std::vector<double> vertex = initial;
    const double step = vertex[i] != 0.0 ? std::abs(vertex[i]) * initial_step
                                         : initial_step;
    vertex[i] += step;
    simplex.push_back(std::move(vertex));
  }
  std::vector<double> values(simplex.size());
  for (std::size_t i = 0; i < simplex.size(); ++i) {
    values[i] = objective(simplex[i]);
  }

  constexpr double kAlpha = 1.0;   // reflection
  constexpr double kGamma = 2.0;   // expansion
  constexpr double kRho = 0.5;     // contraction
  constexpr double kSigma = 0.5;   // shrink

  for (int iter = 0; iter < max_iterations; ++iter) {
    // Order vertices by objective value.
    std::vector<std::size_t> order(simplex.size());
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(),
              [&](std::size_t a, std::size_t b) { return values[a] < values[b]; });
    const std::size_t best = order.front();
    const std::size_t worst = order.back();
    const std::size_t second_worst = order[order.size() - 2];

    if (std::abs(values[worst] - values[best]) <=
        tolerance * (std::abs(values[best]) + tolerance)) {
      break;
    }

    // Centroid of all but the worst vertex.
    std::vector<double> centroid(n, 0.0);
    for (std::size_t i : order) {
      if (i == worst) continue;
      for (std::size_t d = 0; d < n; ++d) centroid[d] += simplex[i][d];
    }
    for (double& c : centroid) c /= static_cast<double>(n);

    auto blend = [&](double factor) {
      std::vector<double> point(n);
      for (std::size_t d = 0; d < n; ++d) {
        point[d] = centroid[d] + factor * (centroid[d] - simplex[worst][d]);
      }
      return point;
    };

    const std::vector<double> reflected = blend(kAlpha);
    const double reflected_value = objective(reflected);

    if (reflected_value < values[best]) {
      const std::vector<double> expanded = blend(kGamma);
      const double expanded_value = objective(expanded);
      if (expanded_value < reflected_value) {
        simplex[worst] = expanded;
        values[worst] = expanded_value;
      } else {
        simplex[worst] = reflected;
        values[worst] = reflected_value;
      }
    } else if (reflected_value < values[second_worst]) {
      simplex[worst] = reflected;
      values[worst] = reflected_value;
    } else {
      const std::vector<double> contracted = blend(-kRho);
      const double contracted_value = objective(contracted);
      if (contracted_value < values[worst]) {
        simplex[worst] = contracted;
        values[worst] = contracted_value;
      } else {
        // Shrink toward the best vertex.
        for (std::size_t i = 0; i < simplex.size(); ++i) {
          if (i == best) continue;
          for (std::size_t d = 0; d < n; ++d) {
            simplex[i][d] = simplex[best][d] +
                            kSigma * (simplex[i][d] - simplex[best][d]);
          }
          values[i] = objective(simplex[i]);
        }
      }
    }
  }

  const std::size_t best = static_cast<std::size_t>(
      std::min_element(values.begin(), values.end()) - values.begin());
  return simplex[best];
}

FittedCurve FitLinear(std::span<const double> x, std::span<const double> y) {
  assert(x.size() == y.size() && x.size() >= 2);
  const double n = static_cast<double>(x.size());
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    sx += x[i];
    sy += y[i];
    sxx += x[i] * x[i];
    sxy += x[i] * y[i];
  }
  const double denom = n * sxx - sx * sx;
  const double b = denom != 0.0 ? (n * sxy - sx * sy) / denom : 0.0;
  const double a = (sy - b * sx) / n;

  FittedCurve curve;
  curve.name = "linear";
  curve.params = {a, b};
  curve.eval = [](double xv, const std::vector<double>& p) {
    return p[0] + p[1] * xv;
  };
  return curve;
}

FittedCurve FitMmf(std::span<const double> x, std::span<const double> y) {
  assert(x.size() == y.size() && x.size() >= 4);
  FittedCurve curve;
  curve.name = "MMF";
  curve.eval = [](double xv, const std::vector<double>& p) {
    const double a = p[0], b = p[1], c = p[2], d = p[3];
    if (b <= 0.0 || xv < 0.0) return std::numeric_limits<double>::quiet_NaN();
    const double xd = std::pow(xv, d);
    return (a * b + c * xd) / (b + xd);
  };

  // Data-driven start: a = y at x->0, c = asymptote (~1.5x last value),
  // b scales the transition, d the sharpness.
  const double y0 = y.front();
  const double y_end = y.back();
  const double x_mid = x[x.size() / 2];
  std::vector<double> initial = {y0, std::pow(std::max(x_mid, 1.0), 1.1),
                                 std::max(y_end * 1.5, y0 + 1.0), 1.1};
  auto objective = [&](const std::vector<double>& params) {
    return SumOfSquares(curve, params, x, y);
  };
  curve.params = NelderMead(objective, std::move(initial), 0.4, 6000);
  return curve;
}

FittedCurve FitHoerl(std::span<const double> x, std::span<const double> y) {
  assert(x.size() == y.size() && x.size() >= 3);
  FittedCurve curve;
  curve.name = "hoerl";
  curve.eval = [](double xv, const std::vector<double>& p) {
    const double a = p[0], b = p[1], c = p[2];
    if (xv <= 0.0 || b <= 0.0) return std::numeric_limits<double>::quiet_NaN();
    return a * std::pow(b, xv) * std::pow(xv, c);
  };

  // Linearized start via log-least-squares: log y = log a + x log b + c log x
  // (only over positive y).
  std::vector<double> lx, ly, lxx;
  for (std::size_t i = 0; i < x.size(); ++i) {
    if (x[i] > 0.0 && y[i] > 0.0) {
      lx.push_back(x[i]);
      lxx.push_back(std::log(x[i]));
      ly.push_back(std::log(y[i]));
    }
  }
  std::vector<double> initial = {std::max(y.front(), 1e-6), 1.0001, 0.5};
  if (lx.size() >= 3) {
    // Solve the 3x3 normal equations for [log a, log b, c].
    double m[3][4] = {};
    for (std::size_t i = 0; i < lx.size(); ++i) {
      const double row[3] = {1.0, lx[i], lxx[i]};
      for (int r = 0; r < 3; ++r) {
        for (int c = 0; c < 3; ++c) m[r][c] += row[r] * row[c];
        m[r][3] += row[r] * ly[i];
      }
    }
    // Gaussian elimination with partial pivoting.
    bool ok = true;
    for (int col = 0; col < 3 && ok; ++col) {
      int pivot = col;
      for (int r = col + 1; r < 3; ++r) {
        if (std::abs(m[r][col]) > std::abs(m[pivot][col])) pivot = r;
      }
      if (std::abs(m[pivot][col]) < 1e-12) {
        ok = false;
        break;
      }
      std::swap(m[pivot], m[col]);
      for (int r = 0; r < 3; ++r) {
        if (r == col) continue;
        const double factor = m[r][col] / m[col][col];
        for (int c = col; c < 4; ++c) m[r][c] -= factor * m[col][c];
      }
    }
    if (ok) {
      const double log_a = m[0][3] / m[0][0];
      const double log_b = m[1][3] / m[1][1];
      const double c = m[2][3] / m[2][2];
      initial = {std::exp(log_a), std::exp(log_b), c};
    }
  }
  auto objective = [&](const std::vector<double>& params) {
    return SumOfSquares(curve, params, x, y);
  };
  curve.params = NelderMead(objective, std::move(initial), 0.2, 6000);
  return curve;
}

double CurveRmse(const FittedCurve& curve, std::span<const double> x,
                 std::span<const double> y) {
  std::vector<double> predicted(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) predicted[i] = curve(x[i]);
  return util::Rmse(predicted, y);
}

}  // namespace squirrel::fit
