// Volume persistence: Serialize() / Deserialize() members of zvol::Volume.
//
// Image layout (all little-endian, SHA-256 trailer over the body):
//   magic "SQVL", version
//   config: block_size, codec, dedup, fast_hash
//   next snapshot id
//   block section: count, then per unique digest the raw payload
//   table section: live table + each snapshot (id, name, created_at, files)
//
// Payloads are stored raw and recompressed on load — physical pool layout
// is not part of the logical volume state.
#include <algorithm>
#include <cstring>
#include <unordered_set>

#include "util/sha256.h"
#include "zvol/volume.h"

namespace squirrel::zvol {
namespace {

constexpr std::uint32_t kMagic = 0x53515643;  // "SQVC"
constexpr std::uint32_t kVersion = 1;

class Writer {
 public:
  void U8(std::uint8_t v) { out_.push_back(v); }
  void U32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i) out_.push_back(static_cast<util::Byte>(v >> (8 * i)));
  }
  void U64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) out_.push_back(static_cast<util::Byte>(v >> (8 * i)));
  }
  void Str(const std::string& s) {
    U32(static_cast<std::uint32_t>(s.size()));
    out_.insert(out_.end(), s.begin(), s.end());
  }
  void Blob(util::ByteSpan b) {
    U32(static_cast<std::uint32_t>(b.size()));
    out_.insert(out_.end(), b.begin(), b.end());
  }
  util::Bytes Take() { return std::move(out_); }

 private:
  util::Bytes out_;
};

class Reader {
 public:
  explicit Reader(util::ByteSpan data) : data_(data) {}
  std::uint8_t U8() { return Raw(1)[0]; }
  std::uint32_t U32() {
    const auto* p = Raw(4);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= std::uint32_t(p[i]) << (8 * i);
    return v;
  }
  std::uint64_t U64() {
    const auto* p = Raw(8);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= std::uint64_t(p[i]) << (8 * i);
    return v;
  }
  std::string Str() {
    const std::uint32_t n = U32();
    const auto* p = Raw(n);
    return std::string(reinterpret_cast<const char*>(p), n);
  }
  util::Bytes Blob() {
    const std::uint32_t n = U32();
    const auto* p = Raw(n);
    return util::Bytes(p, p + n);
  }

 private:
  const util::Byte* Raw(std::size_t n) {
    if (pos_ + n > data_.size()) throw VolumeImageError("volume image truncated");
    const util::Byte* p = data_.data() + pos_;
    pos_ += n;
    return p;
  }
  util::ByteSpan data_;
  std::size_t pos_ = 0;
};

void WriteTable(Writer& w, const FileTable& table) {
  w.U32(static_cast<std::uint32_t>(table.size()));
  for (const auto& [name, meta] : table) {
    w.Str(name);
    w.U64(meta.logical_size);
    w.U64(meta.blocks.size());
    for (const BlockPtr& ptr : meta.blocks) {
      w.U8(ptr.hole ? 1 : 0);
      if (!ptr.hole) {
        w.Blob(util::ByteSpan(ptr.digest.bytes.data(), ptr.digest.bytes.size()));
        w.U32(ptr.logical_size);
      }
    }
  }
}

FileTable ReadTable(Reader& r) {
  FileTable table;
  const std::uint32_t files = r.U32();
  for (std::uint32_t f = 0; f < files; ++f) {
    const std::string name = r.Str();
    FileMeta meta;
    meta.logical_size = r.U64();
    const std::uint64_t blocks = r.U64();
    meta.blocks.resize(blocks);
    for (std::uint64_t b = 0; b < blocks; ++b) {
      const bool hole = r.U8() != 0;
      if (!hole) {
        const util::Bytes digest = r.Blob();
        if (digest.size() != meta.blocks[b].digest.bytes.size()) {
          throw VolumeImageError("volume image: bad digest size");
        }
        meta.blocks[b].hole = false;
        std::memcpy(meta.blocks[b].digest.bytes.data(), digest.data(),
                    digest.size());
        meta.blocks[b].logical_size = r.U32();
      }
    }
    table.emplace(name, std::move(meta));
  }
  return table;
}

}  // namespace

util::Bytes Volume::Serialize() const {
  Writer w;
  w.U32(kMagic);
  w.U32(kVersion);
  w.U32(config_.block_size);
  // The image format carries the codec by name (boundary string); the
  // ingest parallelism knobs are runtime tuning and not serialized.
  w.Str(std::string(compress::CodecName(config_.codec)));
  w.U8(config_.dedup ? 1 : 0);
  w.U8(config_.fast_hash ? 1 : 0);
  w.U64(next_snapshot_id_);

  // Unique blocks, reachable from any table.
  std::unordered_set<util::Digest, util::DigestHasher> digests;
  auto collect = [&](const FileTable& table) {
    for (const auto& [name, meta] : table) {
      for (const BlockPtr& ptr : meta.blocks) {
        if (!ptr.hole) digests.insert(ptr.digest);
      }
    }
  };
  collect(files_);
  for (const auto& snap : snapshots_) collect(snap->files);

  // Fetch the payloads through the batched, cache-aware read path in
  // ingest-sized rounds (digest order unchanged: the set's iteration
  // order, exactly what the serial Get loop walked). The verified read
  // path makes this the integrity gate too — serializing a store with a
  // corrupt block throws BlockCorruptionError instead of embedding garbage.
  const std::vector<util::Digest> ordered(digests.begin(), digests.end());
  w.U64(ordered.size());
  const std::size_t batch_blocks =
      std::max<std::size_t>(1, config_.ingest.batch_blocks);
  for (std::size_t base = 0; base < ordered.size(); base += batch_blocks) {
    const std::size_t n = std::min(batch_blocks, ordered.size() - base);
    const std::vector<util::Bytes> payloads =
        store_.GetBatch(std::span<const util::Digest>(ordered.data() + base, n));
    for (std::size_t i = 0; i < n; ++i) {
      const util::Digest& digest = ordered[base + i];
      w.Blob(util::ByteSpan(digest.bytes.data(), digest.bytes.size()));
      w.Blob(payloads[i]);
    }
  }

  WriteTable(w, files_);
  w.U32(static_cast<std::uint32_t>(snapshots_.size()));
  for (const auto& snap : snapshots_) {
    w.U64(snap->id);
    w.Str(snap->name);
    w.U64(snap->created_at);
    WriteTable(w, snap->files);
  }

  util::Bytes body = w.Take();
  const auto checksum = util::Sha256(body);
  body.insert(body.end(), checksum.begin(), checksum.end());
  return body;
}

std::unique_ptr<Volume> Volume::Deserialize(util::ByteSpan image) {
  if (image.size() < 32) throw VolumeImageError("volume image too short");
  const util::ByteSpan body = image.first(image.size() - 32);
  const auto checksum = util::Sha256(body);
  if (std::memcmp(checksum.data(), image.data() + body.size(), 32) != 0) {
    throw VolumeImageError("volume image checksum mismatch");
  }

  Reader r(body);
  if (r.U32() != kMagic) throw VolumeImageError("volume image bad magic");
  if (r.U32() != kVersion) throw VolumeImageError("volume image bad version");

  VolumeConfig config;
  config.block_size = r.U32();
  const std::string codec_name = r.Str();
  const std::optional<compress::CodecId> codec = compress::ParseCodec(codec_name);
  if (!codec) {
    throw VolumeImageError("volume image: unknown codec " + codec_name);
  }
  config.codec = *codec;
  config.dedup = r.U8() != 0;
  config.fast_hash = r.U8() != 0;
  auto volume = std::make_unique<Volume>(config);
  volume->next_snapshot_id_ = r.U64();

  // Insert every unique block once (artificial reference, dropped at the
  // end once the tables hold their own references).
  const std::uint64_t block_count = r.U64();
  std::vector<util::Digest> inserted;
  inserted.reserve(block_count);
  // Without dedup the store mints fresh synthetic digests on load, so table
  // pointers must be rewritten from the recorded ids to the new ones.
  std::unordered_map<util::Digest, util::Digest, util::DigestHasher> remap;
  // Blocks load through PutBatch in ingest-sized rounds (parallel hash +
  // compress, ordered commit — digests and synthetic ids land exactly as
  // the serial Put loop minted them).
  const std::size_t batch_blocks =
      std::max<std::size_t>(1, config.ingest.batch_blocks);
  std::vector<util::Digest> expected_batch;
  std::vector<util::Bytes> payload_batch;
  std::vector<util::ByteSpan> spans;
  const auto flush = [&]() {
    spans.clear();
    for (const util::Bytes& p : payload_batch) spans.emplace_back(p);
    const std::vector<store::PutResult> puts = volume->store_.PutBatch(spans);
    for (std::size_t i = 0; i < puts.size(); ++i) {
      if (config.dedup && puts[i].digest != expected_batch[i]) {
        throw VolumeImageError("volume image: payload does not match digest");
      }
      if (!config.dedup) remap.emplace(expected_batch[i], puts[i].digest);
      inserted.push_back(puts[i].digest);
    }
    expected_batch.clear();
    payload_batch.clear();
  };
  for (std::uint64_t b = 0; b < block_count; ++b) {
    const util::Bytes digest_bytes = r.Blob();
    util::Bytes payload = r.Blob();
    util::Digest expected;
    if (digest_bytes.size() != expected.bytes.size()) {
      throw VolumeImageError("volume image: bad digest size");
    }
    std::memcpy(expected.bytes.data(), digest_bytes.data(), digest_bytes.size());
    // A valid image never records an empty or all-zero payload (those are
    // holes); reject instead of handing the store an input it asserts on.
    if (payload.empty() || util::IsAllZero(payload)) {
      throw VolumeImageError("volume image: empty or all-zero block payload");
    }
    expected_batch.push_back(expected);
    payload_batch.push_back(std::move(payload));
    if (payload_batch.size() == batch_blocks) flush();
  }
  flush();

  auto retain = [&](FileTable& table) {
    for (auto& [name, meta] : table) {
      for (BlockPtr& ptr : meta.blocks) {
        if (ptr.hole) continue;
        if (!config.dedup) {
          const auto it = remap.find(ptr.digest);
          if (it == remap.end()) {
            throw VolumeImageError("volume image: unmapped block reference");
          }
          ptr.digest = it->second;
        }
        volume->store_.Ref(ptr.digest);
      }
    }
  };

  volume->files_ = ReadTable(r);
  retain(volume->files_);
  const std::uint32_t snapshot_count = r.U32();
  for (std::uint32_t s = 0; s < snapshot_count; ++s) {
    auto snap = std::make_unique<Snapshot>();
    snap->id = r.U64();
    snap->name = r.Str();
    snap->created_at = r.U64();
    snap->files = ReadTable(r);
    retain(snap->files);
    volume->snapshots_.push_back(std::move(snap));
  }

  // Drop the artificial per-block references.
  for (const util::Digest& digest : inserted) volume->store_.Unref(digest);
  return volume;
}

}  // namespace squirrel::zvol
