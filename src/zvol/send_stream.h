// Serialized snapshot-diff streams — the reproduction of `zfs send` /
// `zfs send -i` used to propagate cache volumes (Sections 3.2 and 3.5).
//
// A stream carries: the identity of the base and target snapshots, the file
// deletions and file (re)definitions between them, and the payloads of
// exactly those blocks the receiver cannot already have. Integrity is
// protected at two granularities: a SHA-256 trailer over the whole wire
// encoding (catches truncation and bit flips in flight), and — since wire
// version 2 — a per-record FNV checksum over each carried payload, validated
// again at apply time. The per-record checksums are what let a retrying
// replication layer keep the verified prefix of a partially transferred
// stream instead of restarting it. Version-1 streams (no record checksums)
// are still read; their checksums are synthesized at parse time.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "util/bytes.h"
#include "util/error.h"
#include "util/hash.h"

namespace squirrel::zvol {

/// Thrown on wire-level damage to a serialized stream: truncation, bad
/// magic, whole-stream checksum mismatch, or malformed structure.
class StreamCorruptError : public Error {
 public:
  using Error::Error;
};

/// Thrown when a stream cannot apply: the receiver's base snapshot does not
/// match, or a record's payload no longer matches its checksum.
class StreamMismatchError : public Error {
 public:
  using Error::Error;
};

struct BlockRecord {
  std::uint64_t index = 0;       // block number within the file
  bool hole = false;
  util::Digest digest{};
  std::uint32_t logical_size = 0;
  bool has_payload = false;
  bool payload_compressed = false;  // payload is codec-compressed (send -c)
  util::Bytes payload;
  /// FNV-1a over `payload` as carried on the wire (compressed form if
  /// payload_compressed). Meaningful only when has_payload.
  std::uint64_t payload_checksum = 0;
};

struct FileRecord {
  std::string name;
  std::uint64_t logical_size = 0;
  /// For new files: every block. For modified files: only changed indices.
  std::vector<BlockRecord> blocks;
  bool whole_file = false;       // true => replaces the file table entry
};

struct SendStream {
  // Base snapshot (absent for full streams).
  bool incremental = false;
  std::uint64_t from_id = 0;
  std::string from_name;

  // Target snapshot identity, created on the receiver after applying.
  std::uint64_t to_id = 0;
  std::string to_name;
  std::uint64_t created_at = 0;
  std::uint32_t block_size = 0;  // receivers must match
  std::string codec;             // codec of compressed payloads

  std::vector<std::string> deleted_files;
  std::vector<FileRecord> files;

  /// Wire encoding (version 2: per-record payload checksums) with a SHA-256
  /// integrity trailer.
  util::Bytes Serialize() const;

  /// Parses and verifies; accepts version-1 (no record checksums) and
  /// version-2 wire formats. Throws StreamCorruptError on truncation, bad
  /// magic or trailer mismatch, StreamMismatchError when a carried payload
  /// fails its record checksum.
  static SendStream Deserialize(util::ByteSpan wire);

  /// Checksum of one carried payload as written to (and validated from) the
  /// wire. Exposed so senders can stamp records and receivers re-validate
  /// in-memory streams that never crossed the wire encoding.
  static std::uint64_t PayloadChecksum(util::ByteSpan payload) {
    return util::Fnv1a64(payload);
  }

  /// Size of the encoded stream in bytes — what registration actually pushes
  /// over the network (the paper's "diff of O(10 MB)").
  std::uint64_t WireSize() const;

  /// Sum of carried payload bytes (the dominant component of WireSize).
  std::uint64_t PayloadBytes() const;
};

}  // namespace squirrel::zvol
