// Serialized snapshot-diff streams — the reproduction of `zfs send` /
// `zfs send -i` used to propagate cache volumes (Sections 3.2 and 3.5).
//
// A stream carries: the identity of the base and target snapshots, the file
// deletions and file (re)definitions between them, and the payloads of
// exactly those blocks the receiver cannot already have. Integrity is
// protected by a SHA-256 trailer; the failure-injection tests flip bits and
// expect Deserialize to reject the stream.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "util/bytes.h"
#include "util/hash.h"

namespace squirrel::zvol {

struct BlockRecord {
  std::uint64_t index = 0;       // block number within the file
  bool hole = false;
  util::Digest digest{};
  std::uint32_t logical_size = 0;
  bool has_payload = false;
  bool payload_compressed = false;  // payload is codec-compressed (send -c)
  util::Bytes payload;
};

struct FileRecord {
  std::string name;
  std::uint64_t logical_size = 0;
  /// For new files: every block. For modified files: only changed indices.
  std::vector<BlockRecord> blocks;
  bool whole_file = false;       // true => replaces the file table entry
};

struct SendStream {
  // Base snapshot (absent for full streams).
  bool incremental = false;
  std::uint64_t from_id = 0;
  std::string from_name;

  // Target snapshot identity, created on the receiver after applying.
  std::uint64_t to_id = 0;
  std::string to_name;
  std::uint64_t created_at = 0;
  std::uint32_t block_size = 0;  // receivers must match
  std::string codec;             // codec of compressed payloads

  std::vector<std::string> deleted_files;
  std::vector<FileRecord> files;

  /// Wire encoding with a SHA-256 integrity trailer.
  util::Bytes Serialize() const;

  /// Parses and verifies; throws std::runtime_error on truncation or
  /// checksum mismatch.
  static SendStream Deserialize(util::ByteSpan wire);

  /// Size of the encoded stream in bytes — what registration actually pushes
  /// over the network (the paper's "diff of O(10 MB)").
  std::uint64_t WireSize() const;

  /// Sum of carried payload bytes (the dominant component of WireSize).
  std::uint64_t PayloadBytes() const;
};

}  // namespace squirrel::zvol
