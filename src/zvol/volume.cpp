#include "zvol/volume.h"

#include <algorithm>
#include <cassert>
#include <cstring>
#include <unordered_set>

#include "util/fault_injector.h"

namespace squirrel::zvol {
namespace {

using DigestSet = std::unordered_set<util::Digest, util::DigestHasher>;

DigestSet ReachableDigests(const FileTable& table) {
  DigestSet set;
  for (const auto& [name, meta] : table) {
    for (const BlockPtr& ptr : meta.blocks) {
      if (!ptr.hole) set.insert(ptr.digest);
    }
  }
  return set;
}

}  // namespace

/// Undo log for the transactional Receive path. Store operations performed
/// through the txn are applied immediately (so the exact op sequence — and
/// thus first-fit allocation behaviour — matches the legacy in-place apply)
/// and logged with their inverse; Rollback replays the inverses in reverse
/// order. An Unref that would free the last reference snapshots the payload
/// first (through the ARC-bypassing GetUncached) so the inverse is a re-Put
/// — that restoration requires content-addressed digests (dedup on), which
/// every cluster path satisfies; in those paths the live table always
/// equals the latest snapshot's table when a stream applies, so refcounts
/// stay >= 2 and the case cannot occur at all.
class Volume::StoreTxn {
 public:
  explicit StoreTxn(store::BlockStore& store) : store_(store) {}

  void Ref(const util::Digest& digest) {
    store_.Ref(digest);
    undo_.push_back({Undo::kUnref, digest, {}});
  }

  void Unref(const util::Digest& digest) {
    const bool last = store_.RefCount(digest) == 1;
    util::Bytes payload;
    if (last) payload = store_.GetUncached(digest);
    store_.Unref(digest);
    if (last) {
      undo_.push_back({Undo::kRestore, digest, std::move(payload)});
    } else {
      undo_.push_back({Undo::kRef, digest, {}});
    }
  }

  std::vector<store::PutResult> PutBatch(
      std::span<const util::ByteSpan> blocks) {
    std::vector<store::PutResult> results = store_.PutBatch(blocks);
    // PutBatch is atomic (it unwinds itself on crash/no-space before
    // throwing), so the whole batch logs only on success.
    for (const store::PutResult& result : results) {
      undo_.push_back({Undo::kUnref, result.digest, {}});
    }
    return results;
  }

  void Rollback() {
    for (auto it = undo_.rbegin(); it != undo_.rend(); ++it) {
      switch (it->kind) {
        case Undo::kUnref:
          store_.Unref(it->digest);
          break;
        case Undo::kRef:
          store_.Ref(it->digest);
          break;
        case Undo::kRestore: {
          const store::PutResult result = store_.Put(
              util::ByteSpan(it->payload.data(), it->payload.size()));
          assert(result.digest == it->digest &&
                 "rollback payload restore requires dedup digests");
          (void)result;
          break;
        }
      }
    }
    undo_.clear();
  }

 private:
  struct Undo {
    enum Kind { kUnref, kRef, kRestore } kind;
    util::Digest digest;
    util::Bytes payload;  // kRestore only
  };
  store::BlockStore& store_;
  std::vector<Undo> undo_;
};

Volume::Volume(VolumeConfig config)
    : config_(config),
      store_(store::BlockStoreConfig{config.codec, config.dedup,
                                     config.fast_hash, config.ingest,
                                     config.read, config.shards,
                                     config.capacity_bytes}) {
  if (config_.block_size == 0) {
    throw std::invalid_argument("block_size must be positive");
  }
}

Volume::~Volume() = default;

RepairSession::RepairSession(std::vector<RepairPeer> peers,
                             util::FaultInjector* faults)
    : faults_(faults) {
  peers_.reserve(peers.size());
  for (const RepairPeer& peer : peers) peers_.push_back({peer, 0, false});
}

std::uint64_t RepairSession::peers_blacklisted() const {
  std::uint64_t n = 0;
  for (const PeerState& state : peers_) {
    if (state.blacklisted) ++n;
  }
  return n;
}

bool RepairSession::RepairBlock(store::BlockStore& store,
                                const util::Digest& digest,
                                std::uint64_t* fetched_bytes) {
  bool lied_before = false;
  bool tried_reconstruct = false;
  // One shot per block: rebuild the payload from erasure-coded shards.
  // Bytes only land in the store through Repair's re-hash, so a corrupt or
  // Byzantine shard surviving the decode is caught exactly like a lying
  // whole-block peer — it just cannot be attributed to one peer, so no
  // strike is issued; the block falls through to the storage node instead.
  auto try_reconstruct = [&]() -> bool {
    if (reconstructor_ == nullptr || tried_reconstruct) return false;
    tried_reconstruct = true;
    std::optional<ReconstructedBlock> rebuilt =
        reconstructor_->Reconstruct(digest);
    if (!rebuilt.has_value()) {
      ++reconstruct_fallbacks_;
      return false;
    }
    parity_reads_ += rebuilt->parity_shards_read;
    if (fetched_bytes != nullptr) *fetched_bytes += rebuilt->remote_bytes;
    if (store.Repair(digest, rebuilt->payload)) {
      ++reconstructed_blocks_;
      if (lied_before) ++resourced_blocks_;
      return true;
    }
    ++reconstruct_fallbacks_;
    return false;
  };
  for (PeerState& state : peers_) {
    // Peer 0 is the authoritative storage node, last by convention;
    // reconstruction from set-local shards is cheaper than its uplink.
    if (state.peer.id == 0 && try_reconstruct()) return true;
    if (state.blacklisted || state.peer.store == nullptr) continue;
    util::Bytes raw;
    try {
      raw = state.peer.store->Get(digest);
    } catch (const Error&) {
      continue;  // unavailable, not malicious: no strike
    }
    // A Byzantine peer's Get succeeded but the bytes it hands over are a
    // consistent, well-formed lie (same wrong payload every retry) — the
    // receiving digest check is the only defence.
    if (faults_ != nullptr && faults_->PeerIsByzantine(state.peer.id)) {
      faults_->MutatePayload(state.peer.id, digest,
                             util::MutableByteSpan(raw.data(), raw.size()));
    }
    if (fetched_bytes != nullptr) *fetched_bytes += raw.size();
    if (store.Repair(digest, raw)) {
      if (lied_before) ++resourced_blocks_;
      return true;
    }
    // Served bytes failed the digest re-hash: Byzantine evidence. Retrying
    // this peer would re-serve the same lie, so strike it and move on.
    ++byzantine_rejected_;
    if (faults_ != nullptr) faults_->RecordByzantineDetected();
    lied_before = true;
    if (++state.strikes >= kStrikeLimit) state.blacklisted = true;
  }
  // Sessions without a storage-node peer still get a reconstruction shot
  // after every replica has failed.
  return try_reconstruct();
}

void Volume::ReleaseTable(const FileTable& table) {
  for (const auto& [name, meta] : table) {
    for (const BlockPtr& ptr : meta.blocks) {
      if (!ptr.hole) store_.Unref(ptr.digest);
    }
  }
}

void Volume::RetainTable(const FileTable& table) {
  for (const auto& [name, meta] : table) {
    for (const BlockPtr& ptr : meta.blocks) {
      if (!ptr.hole) store_.Ref(ptr.digest);
    }
  }
}

const FileMeta& Volume::RequireFile(const std::string& name) const {
  const auto it = files_.find(name);
  if (it == files_.end()) throw NoSuchFileError(name);
  return it->second;
}

FileMeta& Volume::RequireFile(const std::string& name) {
  const auto it = files_.find(name);
  if (it == files_.end()) throw NoSuchFileError(name);
  return it->second;
}

void Volume::ForEachIngest(std::size_t count,
                           const std::function<void(std::size_t)>& fn) {
  util::ThreadPool* pool = store_.worker_pool();
  if (pool == nullptr || config_.ingest.threads == 1 || count < 2) {
    for (std::size_t i = 0; i < count; ++i) fn(i);
    return;
  }
  pool->ParallelFor(count, fn);
}

FileMeta Volume::IngestSource(const util::DataSource& data) {
  FileMeta meta;
  meta.logical_size = data.size();
  const std::uint64_t block_count =
      util::CeilDiv(meta.logical_size, config_.block_size);
  meta.blocks.resize(block_count);

  const std::size_t batch_blocks =
      std::max<std::size_t>(1, config_.ingest.batch_blocks);
  util::Bytes buffer(batch_blocks * static_cast<std::size_t>(config_.block_size));
  std::vector<std::uint8_t> is_zero(batch_blocks);
  std::vector<util::ByteSpan> payloads;
  std::vector<std::uint64_t> payload_index;

  for (std::uint64_t base = 0; base < block_count; base += batch_blocks) {
    const std::size_t n = static_cast<std::size_t>(
        std::min<std::uint64_t>(batch_blocks, block_count - base));
    const std::uint64_t offset = base * config_.block_size;
    const std::uint64_t bytes =
        std::min<std::uint64_t>(static_cast<std::uint64_t>(n) * config_.block_size,
                                meta.logical_size - offset);
    data.Read(offset, util::MutableByteSpan(buffer.data(), bytes));
    const auto chunk = [&](std::size_t j) {
      const std::uint64_t start = static_cast<std::uint64_t>(j) * config_.block_size;
      const std::uint64_t len =
          std::min<std::uint64_t>(config_.block_size, bytes - start);
      return util::ByteSpan(buffer.data() + start, len);
    };

    // Stage 1a: zero-detect the chunks in parallel (stage 1b, hashing, runs
    // inside PutBatch on the same pool).
    ForEachIngest(n, [&](std::size_t j) { is_zero[j] = util::IsAllZero(chunk(j)); });

    payloads.clear();
    payload_index.clear();
    for (std::size_t j = 0; j < n; ++j) {
      if (is_zero[j]) continue;  // stays a hole
      payloads.push_back(chunk(j));
      payload_index.push_back(base + j);
    }
    const std::vector<store::PutResult> puts = store_.PutBatch(payloads);
    for (std::size_t k = 0; k < puts.size(); ++k) {
      meta.blocks[payload_index[k]] =
          BlockPtr{false, puts[k].digest, puts[k].logical_size};
    }
  }
  return meta;
}

void Volume::WriteFile(const std::string& name, const util::DataSource& data) {
  FileMeta meta = IngestSource(data);
  auto it = files_.find(name);
  if (it != files_.end()) {
    for (const BlockPtr& ptr : it->second.blocks) {
      if (!ptr.hole) store_.Unref(ptr.digest);
    }
    it->second = std::move(meta);
  } else {
    files_.emplace(name, std::move(meta));
  }
}

void Volume::CreateFile(const std::string& name, std::uint64_t logical_size) {
  FileMeta meta;
  meta.logical_size = logical_size;
  meta.blocks.resize(util::CeilDiv(logical_size, config_.block_size));
  auto it = files_.find(name);
  if (it != files_.end()) {
    for (const BlockPtr& ptr : it->second.blocks) {
      if (!ptr.hole) store_.Unref(ptr.digest);
    }
    it->second = std::move(meta);
  } else {
    files_.emplace(name, std::move(meta));
  }
}

void Volume::WriteRange(const std::string& name, std::uint64_t offset,
                        util::ByteSpan data) {
  FileMeta& meta = RequireFile(name);
  const std::uint64_t end = offset + data.size();
  if (end > meta.logical_size) {
    meta.logical_size = end;
    meta.blocks.resize(util::CeilDiv(end, config_.block_size));
  }
  if (data.empty()) return;

  const std::uint64_t first_block = offset / config_.block_size;
  const std::uint64_t last_block = (end - 1) / config_.block_size;
  const std::size_t batch_blocks =
      std::max<std::size_t>(1, config_.ingest.batch_blocks);
  util::Bytes buffer(batch_blocks * static_cast<std::size_t>(config_.block_size));
  std::vector<std::uint8_t> is_zero(batch_blocks);
  std::vector<util::ByteSpan> payloads;
  std::vector<std::uint64_t> payload_index;

  for (std::uint64_t base = first_block; base <= last_block;
       base += batch_blocks) {
    const std::size_t n = static_cast<std::size_t>(
        std::min<std::uint64_t>(batch_blocks, last_block - base + 1));
    const auto block_len_of = [&](std::size_t j) {
      const std::uint64_t block_start =
          (base + j) * static_cast<std::uint64_t>(config_.block_size);
      return std::min<std::uint64_t>(config_.block_size,
                                     meta.logical_size - block_start);
    };

    // Stage 0: fetch the old payloads of every touched non-hole block in
    // one cache-aware GetBatch (parallel decompress, ARC hits for blocks
    // recently read — the copy-on-read population case).
    std::vector<const util::Bytes*> old_blocks(n, nullptr);
    std::vector<util::Digest> old_digests;
    std::vector<std::size_t> old_slots;
    for (std::size_t j = 0; j < n; ++j) {
      const BlockPtr& ptr = meta.blocks[base + j];
      if (ptr.hole) continue;
      old_digests.push_back(ptr.digest);
      old_slots.push_back(j);
    }
    const std::vector<util::Bytes> olds = store_.GetBatch(old_digests);
    for (std::size_t k = 0; k < old_slots.size(); ++k) {
      old_blocks[old_slots[k]] = &olds[k];
    }

    // Stage 1: materialize the new content of every touched block
    // (read-modify-write) and zero-detect it, in parallel. This stage only
    // reads the fetched payloads; all store mutation happens in the ordered
    // stage below. A stored block can be SHORTER than block_len: it was the
    // partial tail block before a later write grew the file — its implicit
    // tail is zeros.
    ForEachIngest(n, [&](std::size_t j) {
      const std::uint64_t block_index = base + j;
      const std::uint64_t block_start =
          block_index * static_cast<std::uint64_t>(config_.block_size);
      const std::uint64_t block_len = block_len_of(j);
      util::MutableByteSpan block(
          buffer.data() + j * static_cast<std::size_t>(config_.block_size),
          block_len);
      std::memset(block.data(), 0, block.size());
      if (old_blocks[j] != nullptr) {
        const util::Bytes& old = *old_blocks[j];
        std::memcpy(block.data(), old.data(),
                    std::min<std::uint64_t>(old.size(), block_len));
      }
      const std::uint64_t from = std::max(offset, block_start);
      const std::uint64_t to = std::min(end, block_start + block_len);
      std::memcpy(block.data() + (from - block_start),
                  data.data() + (from - offset), to - from);
      is_zero[j] = util::IsAllZero(block);
    });

    // Stage 2: ordered commit — drop the old references, then batch-put the
    // non-zero replacements and install the new pointers.
    for (std::size_t j = 0; j < n; ++j) {
      BlockPtr& ptr = meta.blocks[base + j];
      if (!ptr.hole) store_.Unref(ptr.digest);
      ptr = BlockPtr{};
    }
    payloads.clear();
    payload_index.clear();
    for (std::size_t j = 0; j < n; ++j) {
      if (is_zero[j]) continue;
      payloads.emplace_back(
          buffer.data() + j * static_cast<std::size_t>(config_.block_size),
          block_len_of(j));
      payload_index.push_back(base + j);
    }
    const std::vector<store::PutResult> puts = store_.PutBatch(payloads);
    for (std::size_t k = 0; k < puts.size(); ++k) {
      meta.blocks[payload_index[k]] =
          BlockPtr{false, puts[k].digest, puts[k].logical_size};
    }
  }
}

util::Bytes Volume::ReadRange(const std::string& name, std::uint64_t offset,
                              std::uint64_t length) const {
  const FileMeta& meta = RequireFile(name);
  if (offset + length > meta.logical_size) {
    throw std::out_of_range("read past end of " + name);
  }

  util::Bytes out(length, 0);
  if (length == 0) return out;

  const std::uint64_t first_block = offset / config_.block_size;
  const std::uint64_t last_block = (offset + length - 1) / config_.block_size;
  const std::size_t batch_blocks =
      std::max<std::size_t>(1, config_.ingest.batch_blocks);
  // Cluster readahead: when the decompressed-block ARC is on, each request
  // round also fetches the next readahead_blocks pointers so a sequential
  // reader (the QCOW2 64 KiB-cluster access pattern) finds them warm.
  const std::uint64_t readahead =
      config_.read.cache_bytes > 0 ? config_.read.readahead_blocks : 0;

  std::vector<util::Digest> digests;
  std::vector<std::uint64_t> slots;  // block index of each digest
  for (std::uint64_t base = first_block; base <= last_block;
       base += batch_blocks) {
    const std::uint64_t round_last =
        std::min<std::uint64_t>(base + batch_blocks - 1, last_block);
    const std::uint64_t fetch_last = std::min<std::uint64_t>(
        round_last + readahead, meta.blocks.size() - 1);
    digests.clear();
    slots.clear();
    for (std::uint64_t i = base; i <= fetch_last; ++i) {
      const BlockPtr& ptr = meta.blocks[i];
      if (ptr.hole) continue;
      digests.push_back(ptr.digest);
      slots.push_back(i);
    }
    const std::vector<util::Bytes> blocks = store_.GetBatch(digests);

    for (std::size_t k = 0; k < slots.size(); ++k) {
      const std::uint64_t block_index = slots[k];
      if (block_index > round_last) break;  // readahead-only blocks
      const std::uint64_t block_start = block_index * config_.block_size;
      const std::uint64_t from = std::max(offset, block_start);
      const std::uint64_t to = std::min<std::uint64_t>(
          offset + length, block_start + config_.block_size);
      const std::uint64_t within = from - block_start;
      const util::Bytes& block = blocks[k];
      // The stored block may be shorter than the in-file block length (a
      // former tail block after the file grew); its logical tail is zeros.
      if (within < block.size()) {
        const std::uint64_t copy =
            std::min<std::uint64_t>(to - from, block.size() - within);
        std::memcpy(out.data() + (from - offset), block.data() + within, copy);
      }
    }
  }
  return out;
}

util::Bytes Volume::ReadFile(const std::string& name) const {
  return ReadRange(name, 0, FileSize(name));
}

bool Volume::HasFile(const std::string& name) const {
  return files_.contains(name);
}

std::uint64_t Volume::FileSize(const std::string& name) const {
  return RequireFile(name).logical_size;
}

std::vector<std::string> Volume::FileNames() const {
  std::vector<std::string> names;
  names.reserve(files_.size());
  for (const auto& [name, meta] : files_) names.push_back(name);
  return names;
}

void Volume::DeleteFile(const std::string& name) {
  auto it = files_.find(name);
  if (it == files_.end()) throw NoSuchFileError(name);
  for (const BlockPtr& ptr : it->second.blocks) {
    if (!ptr.hole) store_.Unref(ptr.digest);
  }
  files_.erase(it);
}

const BlockPtr& Volume::FileBlock(const std::string& name,
                                  std::uint64_t index) const {
  return RequireFile(name).blocks.at(index);
}

std::uint64_t Volume::FileBlockCount(const std::string& name) const {
  return RequireFile(name).blocks.size();
}

Volume::FileStats Volume::StatFile(const std::string& name) const {
  const FileMeta& meta = RequireFile(name);
  FileStats stats;
  stats.logical_size = meta.logical_size;
  std::uint64_t logical_nonzero = 0;
  for (const BlockPtr& ptr : meta.blocks) {
    if (ptr.hole) {
      ++stats.hole_blocks;
      continue;
    }
    ++stats.nonzero_blocks;
    logical_nonzero += ptr.logical_size;
    const std::uint32_t physical = store_.PhysicalSize(ptr.digest);
    stats.referenced_physical_bytes += physical;
    if (store_.RefCount(ptr.digest) == 1) {
      stats.unique_physical_bytes += physical;
    }
  }
  if (stats.referenced_physical_bytes > 0) {
    stats.compression_ratio =
        static_cast<double>(logical_nonzero) /
        static_cast<double>(stats.referenced_physical_bytes);
  }
  return stats;
}

const Snapshot& Volume::CreateSnapshot(const std::string& name,
                                       std::uint64_t now) {
  if (FindSnapshot(name) != nullptr) {
    throw std::invalid_argument("snapshot exists: " + name);
  }
  auto snap = std::make_unique<Snapshot>();
  snap->id = next_snapshot_id_++;
  snap->name = name;
  snap->created_at = now;
  snap->files = files_;
  RetainTable(snap->files);
  snapshots_.push_back(std::move(snap));
  return *snapshots_.back();
}

const Snapshot* Volume::FindSnapshot(const std::string& name) const {
  for (const auto& snap : snapshots_) {
    if (snap->name == name) return snap.get();
  }
  return nullptr;
}

const Snapshot* Volume::LatestSnapshot() const {
  return snapshots_.empty() ? nullptr : snapshots_.back().get();
}

void Volume::DestroySnapshot(const std::string& name) {
  auto it = std::find_if(snapshots_.begin(), snapshots_.end(),
                         [&](const auto& s) { return s->name == name; });
  if (it == snapshots_.end()) throw NoSuchSnapshotError(name);
  ReleaseTable((*it)->files);
  snapshots_.erase(it);
}

std::size_t Volume::PruneSnapshots(std::uint64_t retention_seconds,
                                   std::uint64_t now) {
  if (snapshots_.size() <= 1) return 0;
  std::size_t destroyed = 0;
  // The latest snapshot is always kept regardless of age (Section 3.4).
  for (std::size_t i = 0; i + 1 < snapshots_.size();) {
    const Snapshot& snap = *snapshots_[i];
    if (snap.created_at + retention_seconds < now) {
      ReleaseTable(snap.files);
      snapshots_.erase(snapshots_.begin() + static_cast<std::ptrdiff_t>(i));
      ++destroyed;
    } else {
      ++i;
    }
  }
  return destroyed;
}

SendStream Volume::Send(const std::string& from_name,
                        const std::string& to_name) const {
  const Snapshot* to = FindSnapshot(to_name);
  if (to == nullptr) throw NoSuchSnapshotError(to_name);

  const Snapshot* from = nullptr;
  if (!from_name.empty()) {
    from = FindSnapshot(from_name);
    if (from == nullptr) throw NoSuchSnapshotError(from_name);
    if (from->id >= to->id) {
      throw std::invalid_argument("send: from must precede to");
    }
  }

  SendStream stream;
  stream.incremental = from != nullptr;
  stream.from_id = from ? from->id : 0;
  stream.from_name = from ? from->name : "";
  stream.to_id = to->id;
  stream.to_name = to->name;
  stream.created_at = to->created_at;
  stream.block_size = config_.block_size;
  // The wire format carries the codec by name (boundary string).
  stream.codec = std::string(compress::CodecName(config_.codec));

  const DigestSet known =
      from ? ReachableDigests(from->files) : DigestSet{};
  DigestSet carried;  // avoid sending the same payload twice in one stream

  auto make_record = [&](const BlockPtr& ptr, std::uint64_t index) {
    BlockRecord rec;
    rec.index = index;
    rec.hole = ptr.hole;
    if (ptr.hole) return rec;
    rec.digest = ptr.digest;
    rec.logical_size = ptr.logical_size;
    if (!known.contains(ptr.digest) && !carried.contains(ptr.digest)) {
      carried.insert(ptr.digest);
      rec.has_payload = true;  // payload materialized in the batch pass below
    }
    return rec;
  };

  if (from != nullptr) {
    for (const auto& [name, meta] : from->files) {
      if (!to->files.contains(name)) stream.deleted_files.push_back(name);
    }
  }

  for (const auto& [name, meta] : to->files) {
    const FileMeta* old = nullptr;
    if (from != nullptr) {
      auto it = from->files.find(name);
      if (it != from->files.end()) old = &it->second;
    }
    FileRecord rec;
    rec.name = name;
    rec.logical_size = meta.logical_size;
    if (old == nullptr) {
      rec.whole_file = true;
      for (std::uint64_t i = 0; i < meta.blocks.size(); ++i) {
        if (!meta.blocks[i].hole) {
          rec.blocks.push_back(make_record(meta.blocks[i], i));
        }
      }
    } else {
      if (*old == meta) continue;  // unchanged file
      for (std::uint64_t i = 0; i < meta.blocks.size(); ++i) {
        const BlockPtr* old_ptr =
            i < old->blocks.size() ? &old->blocks[i] : nullptr;
        if (old_ptr != nullptr && *old_ptr == meta.blocks[i]) continue;
        rec.blocks.push_back(make_record(meta.blocks[i], i));
      }
    }
    if (rec.whole_file || !rec.blocks.empty() ||
        (old != nullptr && old->logical_size != meta.logical_size)) {
      stream.files.push_back(std::move(rec));
    }
  }

  // Materialize carried payloads in one pass: a single cache-aware GetBatch
  // fetches every block (parallel decompress, ARC hits for recently read
  // blocks), then the wire-format compression — applying the store's
  // keep-if-it-saves-1/8 rule — runs in parallel on the worker pool.
  std::vector<BlockRecord*> payload_recs;
  std::vector<util::Digest> payload_digests;
  for (FileRecord& f : stream.files) {
    for (BlockRecord& b : f.blocks) {
      if (!b.has_payload) continue;
      payload_recs.push_back(&b);
      payload_digests.push_back(b.digest);
    }
  }
  const std::vector<util::Bytes> raws = store_.GetBatch(payload_digests);
  const compress::Codec* codec = &store_.codec();
  store_.ForEachRead(payload_recs.size(), [&](std::size_t k) {
    BlockRecord& rec = *payload_recs[k];
    const util::Bytes& raw = raws[k];
    util::Bytes compressed = codec->Compress(raw);
    if (config_.codec != compress::CodecId::kNull &&
        compressed.size() + raw.size() / 8 <= raw.size()) {
      rec.payload = std::move(compressed);
      rec.payload_compressed = true;
    } else {
      rec.payload = raw;
    }
    rec.payload_checksum = SendStream::PayloadChecksum(rec.payload);
  });
  return stream;
}

std::vector<Volume::CarriedPayload> Volume::ValidateStream(
    const SendStream& stream) const {
  const compress::Codec* codec = compress::FindCodec(stream.codec);
  if (codec == nullptr) {
    throw StreamCorruptError("receive: unknown codec " + stream.codec);
  }

  // Validate structure and record checksums, and materialize every carried
  // payload, before touching any table or store state — a damaged stream
  // must leave the volume unchanged. Checksums are re-checked here (not
  // just at Deserialize) so corruption of an in-memory stream that never
  // crossed the wire encoding is caught too. Decompression of the
  // validated payloads runs in parallel on the ingest pool; failures are
  // recorded per slot and thrown for the first bad record in stream order,
  // so the error is identical at any thread count.
  struct Slot {
    CarriedPayload carried;
    std::uint8_t bad = 0;
  };
  std::vector<Slot> slots;
  for (const FileRecord& f : stream.files) {
    const std::uint64_t block_count =
        util::CeilDiv(f.logical_size, stream.block_size);
    std::uint64_t prev_index = 0;
    bool first = true;
    for (const BlockRecord& b : f.blocks) {
      if (b.index >= block_count) {
        throw StreamCorruptError("receive: block index out of range");
      }
      if (!first && b.index <= prev_index) {
        throw StreamCorruptError("receive: block indices out of order");
      }
      first = false;
      prev_index = b.index;
      if (!b.has_payload) continue;
      if (b.hole) {
        throw StreamCorruptError("receive: hole record carries a payload");
      }
      // Deserialize always fills the checksum (verified for v2, synthesized
      // for v1); zero marks a hand-built in-memory record with none to check.
      if (b.payload_checksum != 0 &&
          SendStream::PayloadChecksum(b.payload) != b.payload_checksum) {
        throw StreamMismatchError("receive: record checksum mismatch");
      }
      slots.push_back({{&b, {}}, 0});
    }
  }
  // ForEachIngest is non-const (it may touch the pool); replicate its inline
  // fallback here through the store's read-side helper, which serves the
  // same pool. Decompression is pure per-slot CPU either way.
  store_.ForEachRead(slots.size(), [&](std::size_t k) {
    Slot& slot = slots[k];
    const BlockRecord& b = *slot.carried.rec;
    if (b.payload_compressed) {
      try {
        slot.carried.raw = codec->Decompress(b.payload, b.logical_size);
      } catch (const std::runtime_error&) {
        slot.bad = 1;  // damage broke the compressed framing
        return;
      }
    } else {
      slot.carried.raw = b.payload;
    }
    // Reject payloads a healthy sender never produces: wrong length, empty,
    // or all zeros (holes are never carried as payloads).
    if (slot.carried.raw.size() != b.logical_size || slot.carried.raw.empty() ||
        util::IsAllZero(slot.carried.raw)) {
      slot.bad = 1;
    }
  });
  for (const Slot& slot : slots) {
    if (slot.bad) {
      throw StreamCorruptError("receive: undecodable block payload");
    }
  }
  std::vector<CarriedPayload> carried;
  carried.reserve(slots.size());
  for (Slot& slot : slots) carried.push_back(std::move(slot.carried));
  return carried;
}

void Volume::ApplyStreamToTable(const SendStream& stream, FileTable& table,
                                std::vector<CarriedPayload>& carried,
                                StoreTxn* txn) {
  // Transactional mode routes every store operation through the undo log;
  // legacy mode hits the store directly — same call sequence either way.
  const auto do_ref = [&](const util::Digest& digest) {
    if (txn != nullptr) {
      txn->Ref(digest);
    } else {
      store_.Ref(digest);
    }
  };
  const auto do_unref = [&](const util::Digest& digest) {
    if (txn != nullptr) {
      txn->Unref(digest);
    } else {
      store_.Unref(digest);
    }
  };
  const auto do_put_batch = [&](std::span<const util::ByteSpan> payloads) {
    return txn != nullptr ? txn->PutBatch(payloads)
                          : store_.PutBatch(payloads);
  };
  // Volume-level crash sites fire only in transactional mode with an
  // injector armed (a capacity alone arms the txn, not the crash schedule).
  const auto crash_site = [&](const char* site, std::uint64_t salt = 0) {
    if (txn != nullptr && faults_ != nullptr) faults_->CrashPoint(site, salt);
  };

  crash_site("receive/validated");

  std::uint64_t deletion_index = 0;
  for (const std::string& name : stream.deleted_files) {
    crash_site("receive/delete", deletion_index++);
    auto it = table.find(name);
    if (it == table.end()) {
      throw StreamCorruptError("receive: deletion of unknown file " + name);
    }
    for (const BlockPtr& ptr : it->second.blocks) {
      if (!ptr.hole) do_unref(ptr.digest);
    }
    table.erase(it);
  }

  std::size_t next_carried = 0;
  std::uint64_t file_index = 0;
  for (const FileRecord& f : stream.files) {
    crash_site("receive/file", file_index++);
    FileMeta* meta;
    auto it = table.find(f.name);
    if (f.whole_file || it == table.end()) {
      if (it != table.end()) {
        for (const BlockPtr& ptr : it->second.blocks) {
          if (!ptr.hole) do_unref(ptr.digest);
        }
        table.erase(it);
      }
      meta = &table[f.name];
      meta->logical_size = f.logical_size;
      meta->blocks.assign(util::CeilDiv(f.logical_size, stream.block_size),
                          BlockPtr{});
    } else {
      meta = &it->second;
      meta->logical_size = f.logical_size;
      const std::uint64_t new_count =
          util::CeilDiv(f.logical_size, stream.block_size);
      // A shrinking file drops its tail blocks; release their references
      // before the resize discards the pointers.
      for (std::uint64_t i = new_count; i < meta->blocks.size(); ++i) {
        if (!meta->blocks[i].hole) do_unref(meta->blocks[i].digest);
      }
      meta->blocks.resize(new_count);
    }

    // Drop every touched block's old reference first. This is safe to batch
    // ahead of the inserts because the live table equals the latest
    // snapshot's table when a stream applies, so snapshot references keep
    // any still-needed block alive across the reordering.
    for (const BlockRecord& b : f.blocks) {
      BlockPtr& ptr = meta->blocks[b.index];
      if (!ptr.hole) {
        do_unref(ptr.digest);
        ptr = BlockPtr{};
      }
    }

    // Batch-put this file's carried payloads (parallel hash + compress,
    // ordered commit), then install pointers in record order — a later
    // record may reference the digest a carried payload just inserted.
    const std::size_t file_carried = static_cast<std::size_t>(
        std::count_if(f.blocks.begin(), f.blocks.end(),
                      [](const BlockRecord& b) { return b.has_payload; }));
    std::vector<util::ByteSpan> payloads;
    payloads.reserve(file_carried);
    for (std::size_t k = 0; k < file_carried; ++k) {
      payloads.emplace_back(carried[next_carried + k].raw);
    }
    const std::vector<store::PutResult> puts = do_put_batch(payloads);
    std::size_t next_put = 0;
    for (const BlockRecord& b : f.blocks) {
      if (b.hole) continue;
      BlockPtr& ptr = meta->blocks[b.index];
      if (b.has_payload) {
        const store::PutResult& put = puts[next_put++];
        ptr = BlockPtr{false, put.digest, put.logical_size};
      } else {
        if (!store_.Contains(b.digest)) {
          throw StreamCorruptError(
              "receive: stream references a block this volume does not hold");
        }
        do_ref(b.digest);
        ptr = BlockPtr{false, b.digest, b.logical_size};
      }
    }
    next_carried += next_put;
  }
}

void Volume::CommitReceive(const SendStream& stream,
                           std::vector<CarriedPayload>& carried) {
  const bool transactional =
      faults_ != nullptr || config_.capacity_bytes != 0;
  if (!transactional) {
    // Legacy in-place apply: bit-identical to pre-crash-model behaviour.
    ApplyStreamToTable(stream, files_, carried, nullptr);
  } else {
    // Stage against a shadow copy of the file table; the store operations
    // run for real (same sequence as legacy) but carry an undo log. Any
    // failure — simulated crash, disk-full, stream damage discovered
    // mid-apply — rolls the store back and discards the staged table, so
    // the volume is exactly as it was.
    FileTable staged = files_;
    StoreTxn txn(store_);
    try {
      if (faults_ != nullptr) faults_->CrashPoint("receive/begin");
      ApplyStreamToTable(stream, staged, carried, &txn);
      if (faults_ != nullptr) faults_->CrashPoint("receive/staged");
    } catch (...) {
      txn.Rollback();
      throw;
    }
    // Commit point: the table swap plus snapshot retention below is the
    // atomic metadata flip — no crash site interrupts it, mirroring a
    // journaled rename. A crash after "receive/committed" finds the stream
    // fully applied; re-delivery is an idempotent no-op.
    files_ = std::move(staged);
  }

  auto snap = std::make_unique<Snapshot>();
  snap->id = stream.to_id;
  snap->name = stream.to_name;
  snap->created_at = stream.created_at;
  snap->files = files_;
  RetainTable(snap->files);
  snapshots_.push_back(std::move(snap));
  next_snapshot_id_ = std::max(next_snapshot_id_, stream.to_id + 1);
  if (transactional && faults_ != nullptr) {
    faults_->CrashPoint("receive/committed");
  }
}

void Volume::Receive(const SendStream& stream) {
  if (stream.block_size != config_.block_size) {
    throw StreamMismatchError("receive: block size mismatch");
  }
  const Snapshot* latest = LatestSnapshot();
  // Idempotent re-delivery (crash-restart only — legacy callers keep the
  // mismatch errors below): a crash after the commit point leaves the
  // stream fully applied; the retry finds `to` already latest and no-ops.
  if (faults_ != nullptr && latest != nullptr &&
      latest->id == stream.to_id && latest->name == stream.to_name) {
    return;
  }
  if (stream.incremental) {
    if (latest == nullptr || latest->id != stream.from_id ||
        latest->name != stream.from_name) {
      throw StreamMismatchError("receive: base snapshot mismatch");
    }
  } else if (latest != nullptr) {
    throw StreamMismatchError("receive: full stream into non-empty volume");
  }

  std::vector<CarriedPayload> carried = ValidateStream(stream);
  CommitReceive(stream, carried);
}

void Volume::ReceiveFull(const SendStream& stream) {
  if (stream.incremental) {
    throw std::invalid_argument("ReceiveFull requires a full stream");
  }
  if (stream.block_size != config_.block_size) {
    throw StreamMismatchError("receive: block size mismatch");
  }
  // Validate the stream in full — shape, checksums, payload decode — BEFORE
  // dropping anything: a mismatched or damaged stream must leave the volume
  // untouched (previously the drop ran first and a bad stream wiped it).
  std::vector<CarriedPayload> carried = ValidateStream(stream);

  const Snapshot* latest = LatestSnapshot();
  if (faults_ != nullptr) {
    // Idempotent re-delivery after a crash past the commit point.
    if (latest != nullptr && latest->id == stream.to_id &&
        latest->name == stream.to_name) {
      return;
    }
    faults_->CrashPoint("receive_full/begin");
  }

  // Drop everything: live files and snapshots. A crash between here and the
  // commit leaves an empty volume — the rejoining-node state §3.5 already
  // handles: the next sync finds no local snapshot and full-resyncs.
  ReleaseTable(files_);
  files_.clear();
  for (const auto& snap : snapshots_) ReleaseTable(snap->files);
  snapshots_.clear();
  if (faults_ != nullptr) faults_->CrashPoint("receive_full/dropped");

  CommitReceive(stream, carried);
}

std::vector<util::Digest> Volume::CollectScrubDigests(
    std::uint64_t* dangling_refs) const {
  // Each unique digest is collected once even if referenced many times —
  // like ZFS, a scrub walks physical blocks. The walk is serial (cheap
  // pointer chasing); verification of the collected digests runs in
  // parallel through VerifyBatch.
  std::unordered_set<util::Digest, util::DigestHasher> checked;
  std::vector<util::Digest> to_verify;
  auto scrub_table = [&](const FileTable& table) {
    for (const auto& [name, meta] : table) {
      for (const BlockPtr& ptr : meta.blocks) {
        if (ptr.hole) continue;
        if (!store_.Contains(ptr.digest)) {
          ++*dangling_refs;
          continue;
        }
        if (!checked.insert(ptr.digest).second) continue;
        to_verify.push_back(ptr.digest);
      }
    }
  };
  scrub_table(files_);
  for (const auto& snap : snapshots_) scrub_table(snap->files);
  return to_verify;
}

Volume::ScrubReport Volume::Scrub() const {
  ScrubReport report;
  const std::vector<util::Digest> to_verify =
      CollectScrubDigests(&report.dangling_refs);
  report.blocks_checked = to_verify.size();
  const std::vector<std::uint8_t> ok = store_.VerifyBatch(to_verify);
  for (const std::uint8_t bit : ok) {
    if (bit == 0) ++report.errors;
  }
  return report;
}

Volume::RepairReport Volume::ScrubRepair(const store::BlockStore& peer) {
  RepairReport report;
  const std::vector<util::Digest> to_verify =
      CollectScrubDigests(&report.dangling_refs);
  report.blocks_checked = to_verify.size();
  const std::vector<std::uint8_t> ok = store_.VerifyBatch(to_verify);
  for (std::size_t i = 0; i < to_verify.size(); ++i) {
    if (ok[i]) continue;
    ++report.errors_found;
    // Resilver: fetch the block from the healthy replica. The peer's own
    // verified read path throws if its copy is corrupt too, and Repair
    // re-hashes the fetched bytes before accepting them — a bad peer can
    // never make things worse.
    util::Bytes raw;
    try {
      raw = peer.Get(to_verify[i]);
    } catch (const Error&) {
      ++report.unrepairable;  // peer missing the block, or corrupt as well
      continue;
    }
    try {
      if (store_.Repair(to_verify[i], raw)) {
        ++report.repaired;
        report.repaired_bytes += raw.size();
      } else {
        ++report.unrepairable;
      }
    } catch (const store::NoSpaceError&) {
      // A size-changing repair can outgrow a full pool. Skip-and-report:
      // the block stays corrupt (readable only via peers), the scrub keeps
      // going, and the caller sees the skip count instead of an abort.
      ++report.no_space_skips;
      ++report.unrepairable;
    }
  }
  return report;
}

Volume::RepairReport Volume::ScrubRepair(RepairSession& session) {
  RepairReport report;
  const std::vector<util::Digest> to_verify =
      CollectScrubDigests(&report.dangling_refs);
  report.blocks_checked = to_verify.size();
  const std::vector<std::uint8_t> ok = store_.VerifyBatch(to_verify);
  for (std::size_t i = 0; i < to_verify.size(); ++i) {
    if (ok[i]) continue;
    ++report.errors_found;
    std::uint64_t fetched = 0;
    try {
      if (session.RepairBlock(store_, to_verify[i], &fetched)) {
        ++report.repaired;
        report.repaired_bytes += fetched;
      } else {
        ++report.unrepairable;  // every live peer lied or lacks the block
      }
    } catch (const store::NoSpaceError&) {
      ++report.no_space_skips;
      ++report.unrepairable;
    }
  }
  report.peers_blacklisted = session.peers_blacklisted();
  report.resourced_blocks = session.resourced_blocks();
  report.byzantine_rejected = session.byzantine_rejected();
  report.reconstructed_blocks = session.reconstructed_blocks();
  report.parity_reads = session.parity_reads();
  report.reconstruct_fallbacks = session.reconstruct_fallbacks();
  return report;
}

util::Bytes Volume::ReadRangeRepair(const std::string& name,
                                    std::uint64_t offset, std::uint64_t length,
                                    RepairSession& session,
                                    std::uint64_t* fetched_bytes) {
  DigestSet repaired;
  while (true) {
    try {
      return ReadRange(name, offset, length);
    } catch (const store::BlockCorruptionError& e) {
      // Same loop as the single-peer overload, but sourcing through the
      // session: lying peers strike out and the block re-sources from the
      // next replica instead of staying degraded.
      if (!repaired.insert(e.digest()).second) throw;
      if (!session.RepairBlock(store_, e.digest(), fetched_bytes)) throw e;
    }
  }
}

util::Bytes Volume::ReadRangeRepair(const std::string& name,
                                    std::uint64_t offset, std::uint64_t length,
                                    const store::BlockStore& peer,
                                    std::uint64_t* fetched_bytes) {
  DigestSet repaired;
  while (true) {
    try {
      return ReadRange(name, offset, length);
    } catch (const store::BlockCorruptionError& e) {
      // One corrupt block surfaces per attempt; repair it on demand from
      // the peer and retry. A repaired block is re-verified content, so it
      // cannot fail again — each round makes progress or rethrows.
      if (!repaired.insert(e.digest()).second) throw;
      util::Bytes raw;
      try {
        raw = peer.Get(e.digest());
      } catch (const Error&) {
        throw e;  // peer cannot supply a clean copy: stay degraded
      }
      if (!store_.Repair(e.digest(), raw)) throw e;
      if (fetched_bytes != nullptr) *fetched_bytes += raw.size();
    }
  }
}

bool Volume::CorruptBlockForTesting(const std::string& name,
                                    std::uint64_t index) {
  const auto it = files_.find(name);
  if (it == files_.end() || index >= it->second.blocks.size()) return false;
  const BlockPtr& ptr = it->second.blocks[index];
  if (ptr.hole) return false;
  return store_.CorruptPayloadForTesting(ptr.digest);
}

bool Volume::TruncateBlockForTesting(const std::string& name,
                                     std::uint64_t index) {
  const auto it = files_.find(name);
  if (it == files_.end() || index >= it->second.blocks.size()) return false;
  const BlockPtr& ptr = it->second.blocks[index];
  if (ptr.hole) return false;
  return store_.CorruptTruncatePayloadForTesting(ptr.digest);
}

VolumeStats Volume::Stats() const {
  const store::StoreStats& s = store_.stats();
  VolumeStats v;
  v.file_count = files_.size();
  v.snapshot_count = snapshots_.size();
  for (const auto& [name, meta] : files_) v.logical_file_bytes += meta.logical_size;
  v.unique_blocks = s.unique_blocks;
  v.physical_data_bytes = s.physical_data_bytes;
  v.ddt_disk_bytes = s.ddt_disk_bytes;
  v.ddt_core_bytes = s.ddt_core_bytes;
  v.blkptr_disk_bytes = s.total_refs * store::kBlockPointerBytes;
  v.disk_used_bytes = s.disk_bytes() + v.blkptr_disk_bytes;
  return v;
}

}  // namespace squirrel::zvol
