#include "zvol/send_stream.h"

#include <cstring>

#include "util/sha256.h"

namespace squirrel::zvol {
namespace {

constexpr std::uint32_t kMagicV1 = 0x53515353;  // "SQSS" — no record checksums
constexpr std::uint32_t kMagicV2 = 0x32515353;  // "SSQ2" — record checksums

class Writer {
 public:
  void U8(std::uint8_t v) { out_.push_back(v); }
  void U32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i) out_.push_back(static_cast<util::Byte>(v >> (8 * i)));
  }
  void U64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) out_.push_back(static_cast<util::Byte>(v >> (8 * i)));
  }
  void Str(const std::string& s) {
    U32(static_cast<std::uint32_t>(s.size()));
    out_.insert(out_.end(), s.begin(), s.end());
  }
  void Blob(util::ByteSpan b) {
    U32(static_cast<std::uint32_t>(b.size()));
    out_.insert(out_.end(), b.begin(), b.end());
  }
  util::Bytes Take() { return std::move(out_); }

 private:
  util::Bytes out_;
};

class Reader {
 public:
  explicit Reader(util::ByteSpan data) : data_(data) {}

  std::uint8_t U8() { return Raw(1)[0]; }
  std::uint32_t U32() {
    const auto* p = Raw(4);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= std::uint32_t(p[i]) << (8 * i);
    return v;
  }
  std::uint64_t U64() {
    const auto* p = Raw(8);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= std::uint64_t(p[i]) << (8 * i);
    return v;
  }
  std::string Str() {
    const std::uint32_t n = U32();
    const auto* p = Raw(n);
    return std::string(reinterpret_cast<const char*>(p), n);
  }
  util::Bytes Blob() {
    const std::uint32_t n = U32();
    const auto* p = Raw(n);
    return util::Bytes(p, p + n);
  }
  std::size_t remaining() const { return data_.size() - pos_; }

 private:
  const util::Byte* Raw(std::size_t n) {
    if (pos_ + n > data_.size()) {
      throw StreamCorruptError("send stream truncated");
    }
    const util::Byte* p = data_.data() + pos_;
    pos_ += n;
    return p;
  }

  util::ByteSpan data_;
  std::size_t pos_ = 0;
};

}  // namespace

util::Bytes SendStream::Serialize() const {
  Writer w;
  w.U32(kMagicV2);
  w.U8(incremental ? 1 : 0);
  w.U64(from_id);
  w.Str(from_name);
  w.U64(to_id);
  w.Str(to_name);
  w.U64(created_at);
  w.U32(block_size);
  w.Str(codec);

  w.U32(static_cast<std::uint32_t>(deleted_files.size()));
  for (const auto& name : deleted_files) w.Str(name);

  w.U32(static_cast<std::uint32_t>(files.size()));
  for (const FileRecord& f : files) {
    w.Str(f.name);
    w.U64(f.logical_size);
    w.U8(f.whole_file ? 1 : 0);
    w.U32(static_cast<std::uint32_t>(f.blocks.size()));
    for (const BlockRecord& b : f.blocks) {
      w.U64(b.index);
      w.U8(static_cast<std::uint8_t>((b.hole ? 1 : 0) | (b.has_payload ? 2 : 0) |
                                     (b.payload_compressed ? 4 : 0)));
      w.Blob(util::ByteSpan(b.digest.bytes.data(), b.digest.bytes.size()));
      w.U32(b.logical_size);
      if (b.has_payload) {
        // Computed over the bytes going onto the wire, so hand-built
        // records need not pre-fill the field.
        w.U64(PayloadChecksum(b.payload));
        w.Blob(b.payload);
      }
    }
  }

  util::Bytes body = w.Take();
  const auto checksum = util::Sha256(body);
  body.insert(body.end(), checksum.begin(), checksum.end());
  return body;
}

SendStream SendStream::Deserialize(util::ByteSpan wire) {
  if (wire.size() < 32) throw StreamCorruptError("send stream too short");
  const util::ByteSpan body = wire.first(wire.size() - 32);
  const auto checksum = util::Sha256(body);
  if (std::memcmp(checksum.data(), wire.data() + body.size(), 32) != 0) {
    throw StreamCorruptError("send stream checksum mismatch");
  }

  Reader r(body);
  const std::uint32_t magic = r.U32();
  if (magic != kMagicV1 && magic != kMagicV2) {
    throw StreamCorruptError("send stream bad magic");
  }
  const bool record_checksums = magic == kMagicV2;

  SendStream s;
  s.incremental = r.U8() != 0;
  s.from_id = r.U64();
  s.from_name = r.Str();
  s.to_id = r.U64();
  s.to_name = r.Str();
  s.created_at = r.U64();
  s.block_size = r.U32();
  s.codec = r.Str();

  const std::uint32_t deleted = r.U32();
  s.deleted_files.reserve(deleted);
  for (std::uint32_t i = 0; i < deleted; ++i) s.deleted_files.push_back(r.Str());

  const std::uint32_t file_count = r.U32();
  s.files.reserve(file_count);
  for (std::uint32_t i = 0; i < file_count; ++i) {
    FileRecord f;
    f.name = r.Str();
    f.logical_size = r.U64();
    f.whole_file = r.U8() != 0;
    const std::uint32_t block_count = r.U32();
    f.blocks.reserve(block_count);
    for (std::uint32_t j = 0; j < block_count; ++j) {
      BlockRecord b;
      b.index = r.U64();
      const std::uint8_t flags = r.U8();
      b.hole = (flags & 1) != 0;
      b.has_payload = (flags & 2) != 0;
      b.payload_compressed = (flags & 4) != 0;
      const util::Bytes digest = r.Blob();
      if (digest.size() != b.digest.bytes.size()) {
        throw StreamCorruptError("send stream bad digest size");
      }
      std::memcpy(b.digest.bytes.data(), digest.data(), digest.size());
      b.logical_size = r.U32();
      if (b.has_payload) {
        if (record_checksums) {
          b.payload_checksum = r.U64();
          b.payload = r.Blob();
          if (PayloadChecksum(b.payload) != b.payload_checksum) {
            throw StreamMismatchError("send stream record checksum mismatch");
          }
        } else {
          // Version-1 streams carry no record checksums; synthesize them so
          // downstream apply-time validation treats both formats uniformly.
          b.payload = r.Blob();
          b.payload_checksum = PayloadChecksum(b.payload);
        }
      }
      f.blocks.push_back(std::move(b));
    }
    s.files.push_back(std::move(f));
  }
  return s;
}

std::uint64_t SendStream::WireSize() const {
  // Serialization is deterministic; size is measured, not estimated.
  return Serialize().size();
}

std::uint64_t SendStream::PayloadBytes() const {
  std::uint64_t total = 0;
  for (const FileRecord& f : files) {
    for (const BlockRecord& b : f.blocks) total += b.payload.size();
  }
  return total;
}

}  // namespace squirrel::zvol
