// ZFS-like volume: files of fixed-size blocks over a deduplicated,
// compressed block store, with read-only snapshots, incremental
// send/receive, and retention-window garbage collection.
//
// This is the substrate behind Squirrel's cVolumes (Section 3): the storage
// nodes run one instance (the scVolume), every compute node runs another
// (its ccVolume), and registration propagates snapshot diffs between them.
// Semantics mirror the ZFS features the paper uses:
//
//   * fixed `recordsize` (block_size), inline compression, `dedup=on`
//   * sparse files: all-zero blocks occupy no space (holes)
//   * snapshots are cheap, immutable, and named; they pin blocks by refcount
//   * `zfs send -i from to` produces a self-contained diff stream; applying
//     it on a volume whose latest snapshot is `from` reproduces `to` exactly
//   * destroying snapshots releases blocks no longer referenced anywhere
//
// Timestamps are supplied by the caller (simulated time), never read from a
// wall clock.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "store/block_store.h"
#include "util/error.h"
#include "util/source.h"
#include "zvol/send_stream.h"

namespace squirrel::zvol {

struct VolumeConfig {
  std::uint32_t block_size = 64 * util::kKiB;
  /// Inline compressor (compress::ParseCodec converts CLI/wire names).
  compress::CodecId codec = compress::CodecId::kGzip6;
  bool dedup = true;
  bool fast_hash = false;
  /// Batch-ingest parallelism for WriteFile/WriteRange (threads, batch
  /// size). Runtime tuning only — not part of the serialized volume state.
  store::IngestConfig ingest{};
  /// Batch-read parallelism, decompressed-block ARC budget and cluster
  /// readahead for ReadFile/ReadRange/Scrub/Send. Runtime tuning only —
  /// not part of the serialized volume state.
  store::ReadConfig read{};
  /// DDT/SpaceMap/ARC shard count for the backing block store (power of two
  /// in [1, 256]; 1 reproduces the unsharded layout byte-for-byte). Runtime
  /// tuning only — not part of the serialized volume state.
  std::size_t shards = store::BlockStoreConfig{}.shards;
  /// Backing-pool capacity in bytes; 0 (the default) means unlimited. A
  /// full pool surfaces as store::NoSpaceError from the mutating paths;
  /// Receive additionally switches to its transactional (rollback) mode so
  /// a mid-apply disk-full leaves the volume exactly as it was. Runtime
  /// tuning only — not part of the serialized volume state.
  std::uint64_t capacity_bytes = 0;
};

/// Thrown by file operations naming a file the live table does not hold.
class NoSuchFileError : public Error {
 public:
  explicit NoSuchFileError(const std::string& name)
      : Error("no such file: " + name) {}
};

/// Thrown by snapshot operations naming an unknown snapshot.
class NoSuchSnapshotError : public Error {
 public:
  explicit NoSuchSnapshotError(const std::string& name)
      : Error("no such snapshot: " + name) {}
};

/// Thrown by Deserialize on a truncated, bit-flipped, or malformed volume
/// image (wire-format damage, as opposed to BlockCorruptionError for damage
/// to blocks already stored).
class VolumeImageError : public Error {
 public:
  using Error::Error;
};

/// One block pointer: either a hole (sparse) or a digest into the store.
struct BlockPtr {
  bool hole = true;
  util::Digest digest{};
  std::uint32_t logical_size = 0;

  bool operator==(const BlockPtr&) const = default;
};

struct FileMeta {
  std::uint64_t logical_size = 0;
  std::vector<BlockPtr> blocks;

  bool operator==(const FileMeta&) const = default;
};

using FileTable = std::map<std::string, FileMeta>;

/// One replica a repair layer can fetch clean blocks from. Peer 0 is, by
/// convention, the authoritative storage node (never Byzantine under the
/// fault model); higher ids are other compute nodes' ccVolume stores.
struct RepairPeer {
  std::uint32_t id = 0;
  const store::BlockStore* store = nullptr;
};

/// A whole raw block payload rebuilt from erasure-coded shards, plus the
/// cost of rebuilding it.
struct ReconstructedBlock {
  util::Bytes payload;
  /// Shard bytes pulled from remote stripe peers (they crossed the wire,
  /// like RepairBlock's fetched_bytes).
  std::uint64_t remote_bytes = 0;
  /// Parity shards the decode consumed (0 when all data shards survived and
  /// the rebuild was pure reassembly).
  std::uint32_t parity_shards_read = 0;
};

/// Rebuilds whole blocks from erasure-coded stripe shards — the placement
/// layer's entry point into the repair path (implemented by
/// placement::ReconstructionSource). A RepairSession consults it after the
/// compute-node replicas and before the authoritative storage node (peer 0):
/// under striped placement the whole-block replicas don't exist, so
/// reconstruction from k surviving set peers is what keeps a degraded read
/// off the storage uplink. Returns nullopt when fewer than k shards are
/// reachable. The rebuilt payload is *unverified* — callers push it through
/// BlockStore::Repair (or re-hash it themselves), the same single defence
/// the peer path relies on.
class BlockReconstructor {
 public:
  virtual ~BlockReconstructor() = default;
  virtual std::optional<ReconstructedBlock> Reconstruct(
      const util::Digest& digest) = 0;
};

/// Multi-peer repair with Byzantine-peer blacklisting. A session holds an
/// ordered list of replicas and per-peer strike counters; RepairBlock tries
/// peers in order, skipping blacklisted ones, and relies on
/// BlockStore::Repair's re-hash as the one defence against wrong-but-
/// well-formed payloads. A peer that *served bytes* failing that digest
/// check earns a strike (unavailability — missing block, its own copy
/// corrupt — does not: honest peers fail that way too); kStrikeLimit
/// strikes blacklist the peer for the rest of the session and the block is
/// re-sourced from the next replica. Sessions are long-lived (one per
/// degraded boot / scrub) so strikes accumulate across blocks — a
/// consistent liar is identified after a handful of blocks and never
/// consulted again. Not thread-safe; confine a session to one caller.
class RepairSession {
 public:
  static constexpr std::uint32_t kStrikeLimit = 3;

  explicit RepairSession(std::vector<RepairPeer> peers,
                         util::FaultInjector* faults = nullptr);

  /// Arms stripe reconstruction: when set, RepairBlock tries rebuilding the
  /// block from erasure-coded shards after every compute-node replica has
  /// failed but *before* falling back to the authoritative storage node
  /// (peer 0) — reconstruction trades set-local shard traffic for a
  /// storage-uplink fetch. Borrowed; nullptr disarms.
  void SetReconstructionSource(BlockReconstructor* reconstructor) {
    reconstructor_ = reconstructor;
  }

  /// Fetches a clean copy of `digest` from the first non-blacklisted peer
  /// that can supply one and applies it through `store.Repair` (which
  /// re-hashes before accepting). Bytes served by lying peers still count
  /// into `*fetched_bytes` — they crossed the wire. With a reconstruction
  /// source armed, a shard rebuild is attempted between the last compute
  /// peer and the storage node. Returns false when no peer could supply a
  /// verifying copy. Propagates store::NoSpaceError when the repair itself
  /// cannot fit (callers skip-and-report).
  bool RepairBlock(store::BlockStore& store, const util::Digest& digest,
                   std::uint64_t* fetched_bytes = nullptr);

  /// Peers currently blacklisted / blocks healed from a later replica after
  /// an earlier one served wrong bytes / wrong payloads rejected by the
  /// digest check. Cumulative over the session.
  std::uint64_t peers_blacklisted() const;
  std::uint64_t resourced_blocks() const { return resourced_blocks_; }
  std::uint64_t byzantine_rejected() const { return byzantine_rejected_; }

  /// Stripe-reconstruction accounting (all zero without a reconstruction
  /// source): blocks rebuilt from shards and digest-verified, parity shards
  /// those rebuilds consumed, and attempts that failed (too few shards, or
  /// the rebuilt payload failed the digest check) and fell through to the
  /// storage node. Cumulative over the session.
  std::uint64_t reconstructed_blocks() const { return reconstructed_blocks_; }
  std::uint64_t parity_reads() const { return parity_reads_; }
  std::uint64_t reconstruct_fallbacks() const { return reconstruct_fallbacks_; }

 private:
  struct PeerState {
    RepairPeer peer;
    std::uint32_t strikes = 0;
    bool blacklisted = false;
  };
  std::vector<PeerState> peers_;
  util::FaultInjector* faults_;  // Byzantine mutation source; not owned
  BlockReconstructor* reconstructor_ = nullptr;  // borrowed; null = disarmed
  std::uint64_t resourced_blocks_ = 0;
  std::uint64_t byzantine_rejected_ = 0;
  std::uint64_t reconstructed_blocks_ = 0;
  std::uint64_t parity_reads_ = 0;
  std::uint64_t reconstruct_fallbacks_ = 0;
};

struct Snapshot {
  std::uint64_t id = 0;          // monotonically increasing, cluster-coherent
  std::string name;
  std::uint64_t created_at = 0;  // simulated seconds
  FileTable files;
};

struct VolumeStats {
  std::uint64_t file_count = 0;
  std::uint64_t snapshot_count = 0;
  std::uint64_t logical_file_bytes = 0;   // sum of live file logical sizes
  std::uint64_t unique_blocks = 0;
  std::uint64_t physical_data_bytes = 0;  // sector-rounded allocations
  std::uint64_t ddt_disk_bytes = 0;
  std::uint64_t ddt_core_bytes = 0;       // the Fig 10 "memory" series
  /// Indirect-block metadata: one blkptr_t per non-hole block reference.
  std::uint64_t blkptr_disk_bytes = 0;
  /// Data + on-disk DDT + block pointers (the Fig 8 series).
  std::uint64_t disk_used_bytes = 0;
};

class Volume {
 public:
  explicit Volume(VolumeConfig config);
  ~Volume();

  Volume(const Volume&) = delete;
  Volume& operator=(const Volume&) = delete;

  const VolumeConfig& config() const { return config_; }

  // --- file operations -----------------------------------------------------

  /// Creates or replaces a file by streaming `data` in block-size chunks.
  /// All-zero blocks become holes.
  void WriteFile(const std::string& name, const util::DataSource& data);

  /// Creates an empty sparse file of `logical_size` bytes.
  void CreateFile(const std::string& name, std::uint64_t logical_size);

  /// Read-modify-write of an arbitrary byte range (used by copy-on-read
  /// cache population). Grows the file if the range extends past the end.
  void WriteRange(const std::string& name, std::uint64_t offset,
                  util::ByteSpan data);

  /// Reads [offset, offset+length); holes read as zeros. Fetches block
  /// payloads through BlockStore::GetBatch in rounds of ingest.batch_blocks
  /// blocks, each extended by read.readahead_blocks following pointers (the
  /// QCOW2 cluster-prefetch effect) when the decompressed-block ARC is on.
  util::Bytes ReadRange(const std::string& name, std::uint64_t offset,
                        std::uint64_t length) const;

  /// Whole-file convenience read over the same batched, cache-aware path.
  util::Bytes ReadFile(const std::string& name) const;

  bool HasFile(const std::string& name) const;
  std::uint64_t FileSize(const std::string& name) const;
  std::vector<std::string> FileNames() const;
  void DeleteFile(const std::string& name);

  /// Block pointer of block `index` of a live file (boot simulator input).
  const BlockPtr& FileBlock(const std::string& name, std::uint64_t index) const;
  std::uint64_t FileBlockCount(const std::string& name) const;

  /// Per-file space accounting with ZFS semantics:
  ///   referenced — physical bytes of every block the file points at
  ///                (shared blocks counted in full, like `zfs get referenced`)
  ///   unique     — physical bytes of blocks only this file table entry
  ///                references (what deleting the file would free right now)
  struct FileStats {
    std::uint64_t logical_size = 0;
    std::uint64_t nonzero_blocks = 0;
    std::uint64_t hole_blocks = 0;
    std::uint64_t referenced_physical_bytes = 0;
    std::uint64_t unique_physical_bytes = 0;
    double compression_ratio = 1.0;  // logical nonzero / referenced physical
  };
  FileStats StatFile(const std::string& name) const;

  // --- snapshots -----------------------------------------------------------

  /// Snapshots the current live file table. Names must be unique and
  /// creation times non-decreasing. The returned reference stays valid until
  /// that snapshot is destroyed or pruned.
  const Snapshot& CreateSnapshot(const std::string& name, std::uint64_t now);

  const Snapshot* FindSnapshot(const std::string& name) const;
  const Snapshot* LatestSnapshot() const;
  const std::vector<std::unique_ptr<Snapshot>>& snapshots() const {
    return snapshots_;
  }

  void DestroySnapshot(const std::string& name);

  /// Section 3.4 garbage collection: destroys snapshots older than
  /// `retention_seconds`, always keeping the most recent one. Returns the
  /// number destroyed.
  std::size_t PruneSnapshots(std::uint64_t retention_seconds, std::uint64_t now);

  // --- send / receive ------------------------------------------------------

  /// Incremental stream between two held snapshots (`from_name` empty =>
  /// full stream from scratch). Payloads are carried only for blocks not
  /// reachable from `from` — the receiver, holding `from`, already stores
  /// every other block (Squirrel's replication invariant).
  SendStream Send(const std::string& from_name, const std::string& to_name) const;

  /// Applies a stream. For an incremental stream the volume's latest
  /// snapshot must match the stream's `from` (id and name); otherwise throws
  /// StreamMismatchError and the caller falls back to full replication
  /// (Section 3.5). On success the live table becomes `to` and a snapshot of
  /// it is recorded under the stream's `to` name/id/time.
  ///
  /// Crash consistency (DESIGN.md §15): with a fault injector armed (or a
  /// pool capacity set) the apply runs transactionally — against a staged
  /// copy of the file table with an undo log of store operations — so a
  /// simulated crash (util::CrashError) or disk-full (store::NoSpaceError)
  /// anywhere inside rolls the volume back to exactly its pre-call state,
  /// and re-delivering a stream whose `to` snapshot already landed is an
  /// idempotent no-op. Without an injector the non-staged legacy path runs,
  /// bit-identical to previous behaviour.
  void Receive(const SendStream& stream);

  /// Drops all state and applies a full stream (the "node offline for more
  /// than n days" recovery path). The stream is fully validated — shape,
  /// checksums, payload decode — *before* anything is dropped, so a
  /// mismatched or damaged stream leaves the volume untouched.
  void ReceiveFull(const SendStream& stream);

  // --- persistence -----------------------------------------------------------

  /// Serializes the complete volume state — configuration, unique block
  /// payloads, live file table, snapshots — into a self-contained image
  /// with a SHA-256 integrity trailer.
  util::Bytes Serialize() const;

  /// Restores a volume from Serialize() output. Block contents, file
  /// tables, snapshot identities and reference counts are reproduced
  /// exactly (physical pool layout may differ). Throws VolumeImageError
  /// on truncation, checksum mismatch, or malformed structure.
  static std::unique_ptr<Volume> Deserialize(util::ByteSpan image);

  // --- integrity -------------------------------------------------------------

  struct ScrubReport {
    std::uint64_t blocks_checked = 0;
    std::uint64_t errors = 0;          // payloads whose digest no longer matches
    std::uint64_t dangling_refs = 0;   // pointers to blocks the store lost
  };

  /// ZFS-style scrub: walks every block pointer of the live table and all
  /// snapshots, re-reads the payload and verifies it hashes to its digest.
  /// Requires content-addressed digests (dedup on, any hash mode).
  ScrubReport Scrub() const;

  struct RepairReport {
    std::uint64_t blocks_checked = 0;
    std::uint64_t errors_found = 0;    // payloads that failed verification
    std::uint64_t repaired = 0;        // restored byte-identically from peer
    std::uint64_t unrepairable = 0;    // peer missing the block, or corrupt too
    std::uint64_t repaired_bytes = 0;  // logical bytes re-fetched
    std::uint64_t dangling_refs = 0;
    /// Multi-peer (RepairSession) runs only: peers blacklisted for serving
    /// wrong bytes, blocks healed from a later replica after an earlier one
    /// lied, and wrong payloads rejected by the digest check.
    std::uint64_t peers_blacklisted = 0;
    std::uint64_t resourced_blocks = 0;
    std::uint64_t byzantine_rejected = 0;
    /// Blocks left unrepaired because the replacement extent did not fit
    /// the pool capacity (skip-and-report; also counted in unrepairable).
    std::uint64_t no_space_skips = 0;
    /// Stripe reconstruction (sessions with a reconstruction source only;
    /// see RepairSession): blocks rebuilt from erasure-coded shards, parity
    /// shards consumed doing so, and failed rebuild attempts that fell back
    /// to a whole-block peer fetch. Conservation: parity_reads ≤
    /// (reconstructed_blocks + reconstruct_fallbacks) · m.
    std::uint64_t reconstructed_blocks = 0;
    std::uint64_t parity_reads = 0;
    std::uint64_t reconstruct_fallbacks = 0;
  };

  /// Scrub + resilver: like Scrub, but every block that fails verification
  /// is re-fetched from `peer` (a healthy replica — in Squirrel, the storage
  /// node's scVolume) and rewritten through BlockStore::Repair, which
  /// re-verifies the fetched bytes against the digest before accepting them.
  /// After a successful run (unrepairable == 0) a subsequent Scrub reports
  /// zero errors and reads return byte-identical content.
  RepairReport ScrubRepair(const store::BlockStore& peer);

  /// Multi-peer scrub + resilver through a RepairSession: failed blocks are
  /// re-sourced across the session's replicas with Byzantine-peer
  /// blacklisting, and a block whose replacement extent no longer fits the
  /// pool capacity is skipped-and-reported (no_space_skips) instead of
  /// aborting the scrub. Session counters (peers_blacklisted,
  /// resourced_blocks, byzantine_rejected) are snapshotted into the report.
  RepairReport ScrubRepair(RepairSession& session);

  /// Degraded-mode read: ReadRange that, when the verified read path throws
  /// BlockCorruptionError, repairs the corrupt block from `peer` on demand
  /// and retries. Each repaired block's logical bytes are added to
  /// `*fetched_bytes` (network charge for the caller). Rethrows when the
  /// peer cannot supply a clean copy.
  util::Bytes ReadRangeRepair(const std::string& name, std::uint64_t offset,
                              std::uint64_t length,
                              const store::BlockStore& peer,
                              std::uint64_t* fetched_bytes = nullptr);

  /// Multi-peer degraded-mode read: like the single-peer overload but each
  /// corrupt block is healed through the session (blacklisting, re-source).
  /// Rethrows when no session peer can supply a clean copy.
  util::Bytes ReadRangeRepair(const std::string& name, std::uint64_t offset,
                              std::uint64_t length, RepairSession& session,
                              std::uint64_t* fetched_bytes = nullptr);

  /// Applies the injector's stored-payload fault schedule to every block in
  /// the store (order-independent, per-digest). Returns blocks corrupted.
  std::size_t InjectFaults(util::FaultInjector& faults) {
    return store_.InjectFaults(faults);
  }

  /// Arms crash/disk-full fault sites on this volume and its store: Receive/
  /// ReceiveFull run their crash points and switch to the transactional
  /// (staged + rollback) apply path, and the store's commit-stage sites and
  /// allocation-refused accounting activate. Pass nullptr to disarm. With no
  /// injector armed every path is bit-identical to previous behaviour.
  void SetFaultInjector(util::FaultInjector* faults) {
    faults_ = faults;
    store_.SetFaultInjector(faults);
  }

  // --- accounting ----------------------------------------------------------

  VolumeStats Stats() const;
  const store::BlockStore& block_store() const { return store_; }

  /// Rebudgets the store's decompressed-block ARC at runtime (memory
  /// pressure shrinks it, recovery grows it); see BlockStore::ResizeCache.
  void ResizeReadCache(std::uint64_t bytes) { store_.ResizeCache(bytes); }

  /// Test hook: corrupts the stored payload of the block backing file
  /// `name` at block `index` (flips one byte). Returns false for holes.
  /// Exists for scrub and failure-injection tests only.
  bool CorruptBlockForTesting(const std::string& name, std::uint64_t index);

  /// Test hook: truncates the stored payload of the block backing file
  /// `name` at block `index` with matching accounting (see
  /// BlockStore::CorruptTruncatePayloadForTesting) — the setup that makes a
  /// later Repair need a larger extent. Returns false for holes.
  bool TruncateBlockForTesting(const std::string& name, std::uint64_t index);

 private:
  class StoreTxn;
  /// One validated, decompressed carried payload of a stream, in stream
  /// order (ValidateStream output, ApplyStreamToTable input).
  struct CarriedPayload {
    const BlockRecord* rec = nullptr;
    util::Bytes raw;
  };

  void ReleaseTable(const FileTable& table);
  void RetainTable(const FileTable& table);
  /// Staged batch ingest: reads `data` in batches of ingest.batch_blocks,
  /// zero-detects the chunks in parallel, and feeds the non-hole blocks to
  /// BlockStore::PutBatch (parallel hash + compress, ordered commit).
  FileMeta IngestSource(const util::DataSource& data);
  /// Validate-before-mutate stage of Receive: checks stream structure and
  /// record checksums and decompresses every carried payload, touching no
  /// table or store state. Throws StreamCorruptError / StreamMismatchError
  /// on damage; on success the returned payloads feed ApplyStreamToTable.
  std::vector<CarriedPayload> ValidateStream(const SendStream& stream) const;
  /// Applies a validated stream to `table`. With `txn` set, every store
  /// operation is routed through the undo log (transactional mode) and the
  /// volume crash sites fire; with `txn == nullptr` this is the legacy
  /// in-place apply.
  void ApplyStreamToTable(const SendStream& stream, FileTable& table,
                          std::vector<CarriedPayload>& carried, StoreTxn* txn);
  /// Shared tail of Receive/ReceiveFull after validation: applies the
  /// stream (transactionally when faults or a capacity are armed) and
  /// records the `to` snapshot.
  void CommitReceive(const SendStream& stream,
                     std::vector<CarriedPayload>& carried);
  /// Shared scrub walk: unique digests referenced by the live table and all
  /// snapshots; dangling references are counted into *dangling_refs.
  std::vector<util::Digest> CollectScrubDigests(
      std::uint64_t* dangling_refs) const;
  const FileMeta& RequireFile(const std::string& name) const;
  FileMeta& RequireFile(const std::string& name);
  /// Runs fn(i) for i in [0, count) on the store's ingest pool (inline when
  /// serial).
  void ForEachIngest(std::size_t count,
                     const std::function<void(std::size_t)>& fn);

  VolumeConfig config_;
  store::BlockStore store_;
  FileTable files_;
  // unique_ptr storage keeps Snapshot references stable across push_back.
  std::vector<std::unique_ptr<Snapshot>> snapshots_;
  std::uint64_t next_snapshot_id_ = 1;
  util::FaultInjector* faults_ = nullptr;  // crash sites; not owned
};

}  // namespace squirrel::zvol
