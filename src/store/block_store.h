// Content-addressed, refcounted block store with inline compression — the
// mechanism behind ZFS `dedup=on` + `compression=gzip-6` that Squirrel's
// cVolumes rely on.
//
// Sharded core: the dedup table (DDT), the extent allocator and the
// decompressed-block ARC are split into `BlockStoreConfig::shards`
// independent shards selected by the top bits of the block digest
// (content-addressing spreads digests uniformly, so shards load-balance by
// construction). Each shard owns its own mutex, DDT partition, SpaceMap
// arena and ARC stripe, so concurrent batches from different threads only
// contend when they touch the same shard. `shards = 1` reproduces the
// pre-sharding single-lock layout byte-for-byte.
//
// Write path (batch-first): the caller has already elided all-zero blocks
// (sparse holes). PutBatch hashes the raw payloads (truncated SHA-256, as ZFS
// hashes before dedup) in parallel on the ingest pool, partitions the batch
// by digest shard, resolves digests against each shard's DDT in per-shard
// ordered passes — a hit bumps the refcount and costs no new space —
// compresses the misses in parallel (kept only if it saves at least 1/8th,
// ZFS's rule), then allocates extents and inserts DDT entries in per-shard
// ordered commit passes. Because each shard's mutation replays the serial
// Lookup/Insert sequence in input order *within that shard*, results are
// bit-identical to a serial loop of single-block Puts at any thread count
// (for a fixed shard count).
//
// Read path (batch-first, mirroring ingest): GetBatch classifies every
// requested digest against the byte-budgeted ARC stripe of its shard in
// per-stripe ordered passes, decompresses the misses in parallel on the
// shared worker pool, then installs payloads and read accounting in
// per-stripe ordered passes. Payloads, their order, and — because each
// stripe replays the exact Lookup/Insert sequence a serial Get loop would
// issue for its digests — the cache counters are all bit-identical to
// serial Get at any thread count and any cache size, including
// cache_bytes = 0. Duplicate digests within one batch decompress once
// (aliased), so with the cache disabled GetBatch may do strictly less
// decompression work than the serial loop; with it enabled the serial loop
// gets the same saving as cache hits.
//
// Concurrency contract: PutBatch/GetBatch/Ref/WarmCache/Verify/stats may be
// called from multiple threads concurrently. Callers must hold a reference
// to every block they read (the volume layer does) — concurrently Unref-ing
// a block to zero while it is being read, or racing Repair/fault injection
// against in-flight reads, is undefined. Determinism quantifies over thread
// count, not shard count: changing `shards` changes disk offsets and cache
// partitioning (see DESIGN.md §14).
//
// Accounting mirrors what the paper measures: physical data bytes (Fig 8),
// DDT size on disk (Fig 9) and DDT memory footprint (Fig 10). Cached
// decompressed bytes are deliberately *not* part of StoreStats — the ARC is
// a read-side memory budget, not disk state.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "compress/codec.h"
#include "store/block_cache.h"
#include "store/space_map.h"
#include "util/bytes.h"
#include "util/error.h"
#include "util/hash.h"
#include "util/thread_pool.h"

namespace squirrel::util {
class FaultInjector;
}  // namespace squirrel::util

namespace squirrel::store {

/// Per-unique-block DDT entry overheads, modelled on ZFS (zio_ddt): an
/// in-core ddt_entry_t is ~320 bytes but the steady-state resident cost per
/// entry lands near 192 bytes once the table pages through the ARC; the
/// on-disk ZAP entry costs ~240 bytes including indirection.
inline constexpr std::uint64_t kDdtCoreBytesPerEntry = 192;
inline constexpr std::uint64_t kDdtDiskBytesPerEntry = 240;

/// Allocation granularity (ZFS ashift=9): compressed payloads occupy whole
/// 512-byte sectors on disk. This waste grows relatively as blocks shrink —
/// one of the reasons the disk-consumption optimum (Fig 8) sits at a larger
/// block size than the CCR optimum (Fig 4).
inline constexpr std::uint64_t kSectorBytes = 512;

/// On-disk size of one block pointer in the file's indirect-block tree
/// (ZFS blkptr_t). Charged per *reference*, i.e. per non-hole file block.
inline constexpr std::uint64_t kBlockPointerBytes = 128;

/// Thrown by read-path operations (Get/GetBatch/Unref/Ref/DiskOffset/...)
/// naming a digest the store does not hold.
class NoSuchBlockError : public Error {
 public:
  explicit NoSuchBlockError(const util::Digest& digest)
      : Error("no such block: " + digest.ToHex()) {}
};

/// Thrown by the verified read path when a stored payload no longer hashes
/// to its digest (or its compressed framing is broken) — the ZFS
/// checksum-on-read failure. Carries the digest so self-healing layers can
/// re-fetch the block from a peer.
class BlockCorruptionError : public Error {
 public:
  explicit BlockCorruptionError(const util::Digest& digest)
      : Error("block corrupt: " + digest.ToHex()), digest_(digest) {}

  const util::Digest& digest() const { return digest_; }

 private:
  util::Digest digest_;
};

/// Parallelism knobs for the batch ingest pipeline (PutBatch and the volume
/// write paths built on it). All mutation of store state happens in ordered
/// per-shard passes regardless of thread count, so results — digests,
/// refcounts, StoreStats, disk offsets — are bit-identical across thread
/// configurations (for a fixed shard count).
struct IngestConfig {
  /// Worker threads for the hash/compress stages. 1 runs everything inline
  /// on the calling thread (the serial reference path); 0 picks one thread
  /// per hardware thread.
  std::size_t threads = 1;
  /// Volume-layer pipeline granularity: blocks read, zero-detected and
  /// handed to PutBatch per round. Bounds ingest buffering to
  /// batch_blocks * block_size bytes.
  std::size_t batch_blocks = 128;

  bool operator==(const IngestConfig&) const = default;
};

/// Knobs for the batch read pipeline (GetBatch and the volume read paths
/// built on it). Runtime tuning only — never serialized into volume images,
/// and bit-identical payloads/ordering at any setting.
struct ReadConfig {
  /// Worker threads for the parallel decompress stage. 1 = inline serial
  /// reference path; 0 = one thread per hardware thread.
  std::size_t threads = 1;
  /// Byte budget of the decompressed-block ARC (0 disables caching). The
  /// budget is carved evenly across the shard-striped ARC instances
  /// (ECI-Cache-style partitioning); content-addressing spreads digests
  /// uniformly, so each stripe sees ~1/shards of the working set. Shared
  /// blocks across images decompress once and are then served from memory —
  /// the dedup-aware read amplification win the paper attributes to the ZFS
  /// ARC. Cached bytes are *not* part of StoreStats disk/DDT accounting.
  std::uint64_t cache_bytes = 0;
  /// Volume-layer cluster readahead: ReadFile/ReadRange extend each request
  /// round by this many following block pointers in the same GetBatch,
  /// modelling the QCOW2 64 KB-cluster prefetch effect (Fig 11). Pointless
  /// without a cache, so ignored when cache_bytes == 0.
  std::size_t readahead_blocks = 0;
  /// Recompute each miss's digest after decompression and throw
  /// BlockCorruptionError on mismatch (ZFS checksum-on-read). Verified
  /// payloads entering the ARC are never re-verified; the check costs one
  /// hash per physical (deduplicated) block actually decompressed. Ignored
  /// when dedup is off — synthetic digests carry no content hash.
  bool verify_reads = true;

  bool operator==(const ReadConfig&) const = default;
};

struct BlockStoreConfig {
  /// Inline compressor; CodecId::kNull disables compression. Parse CLI or
  /// wire-format names with compress::ParseCodec at the boundary.
  compress::CodecId codec = compress::CodecId::kGzip6;
  /// When false, every Put allocates fresh space (dedup table disabled).
  bool dedup = true;
  /// Use a seeded double-FNV 128-bit hash instead of truncated SHA-256.
  /// Large ingest benchmarks enable this; dedup behaviour is identical at
  /// simulation scale, only the digest function differs.
  bool fast_hash = false;
  /// Batch-ingest parallelism (threads, batch size).
  IngestConfig ingest{};
  /// Batch-read parallelism, ARC budget and readahead.
  ReadConfig read{};
  /// Number of independent DDT/SpaceMap/ARC shards, selected by the top
  /// bits of the block digest. Power of two in [1, 256]; 1 reproduces the
  /// pre-sharding single-lock layout (offsets, stats, cache counters)
  /// byte-for-byte. Appended last so positional initializers predating the
  /// field keep their meaning.
  std::size_t shards = 16;
  /// Pool capacity in bytes; 0 (the default) means unlimited. Split across
  /// the per-shard SpaceMap arenas like the cache budget (even split,
  /// remainder on the low shards). When an allocation would exceed a
  /// shard's slice, SpaceMap throws store::NoSpaceError and the mutating
  /// operation (PutBatch / Repair / volume Receive) unwinds to the state it
  /// started from — see DESIGN.md §15.
  std::uint64_t capacity_bytes = 0;
};

struct PutResult {
  util::Digest digest;
  bool deduplicated = false;       // true: refcount bump, no new space
  std::uint32_t logical_size = 0;  // raw payload size
  std::uint32_t physical_size = 0; // stored size (0 when deduplicated)
};

struct StoreStats {
  std::uint64_t unique_blocks = 0;
  std::uint64_t total_refs = 0;
  std::uint64_t logical_unique_bytes = 0;    // raw bytes of unique blocks
  std::uint64_t logical_referenced_bytes = 0;// raw bytes times refcount
  std::uint64_t physical_data_bytes = 0;     // compressed, allocated
  std::uint64_t ddt_disk_bytes = 0;          // on-disk dedup table
  std::uint64_t ddt_core_bytes = 0;          // in-memory dedup table
  /// Data + on-disk DDT: the "disk consumption" series of Figure 8/9.
  std::uint64_t disk_bytes() const { return physical_data_bytes + ddt_disk_bytes; }
};

/// Read-side accounting. Counters are cumulative; cached_bytes is a
/// snapshot of the ARC's resident budget. Deterministic across thread
/// counts (all cache interaction happens in ordered per-stripe passes).
struct ReadStats {
  std::uint64_t blocks_requested = 0;   // payloads served (Get + GetBatch)
  std::uint64_t cache_hits = 0;         // served from the decompressed ARC
  std::uint64_t cache_misses = 0;       // compressed lookups that missed
  std::uint64_t raw_blocks = 0;         // stored uncompressed (cache bypass)
  std::uint64_t decompressed_blocks = 0;
  std::uint64_t decompressed_bytes = 0; // decompression work actually done
  std::uint64_t cached_bytes = 0;       // ARC resident payload bytes (now)
  std::uint64_t cache_capacity_bytes = 0;
  /// WarmCache requests that found the payload already resident: the warm
  /// path touched the ARC (preserving recency, hit counters and the
  /// determinism contract) but skipped materializing the payload, so
  /// re-warming a resident working set is near-free.
  std::uint64_t warm_skipped_resident = 0;
};

/// Result of BlockStore::CheckInvariants — `ok` is true when every internal
/// consistency check passed; otherwise `detail` names each violated
/// invariant. Used by tests to assert that failure paths (crash, disk-full)
/// unwound without leaking refs, extents or accounting.
struct InvariantReport {
  bool ok = true;
  std::string detail;
};

/// Aggregated extent-allocator counters, summed across the per-shard
/// SpaceMap arenas.
struct SpaceMapStats {
  std::uint64_t allocated_bytes = 0;
  /// High-water mark of the pool(s) (sum of per-shard bump pointers).
  std::uint64_t pool_bytes = 0;
  /// Bytes sitting in free-list holes below the high-water marks.
  std::uint64_t free_hole_bytes = 0;
  /// Number of discontiguous free extents — a fragmentation proxy.
  std::uint64_t free_extents = 0;
};

class BlockStore {
 public:
  /// Throws std::invalid_argument unless config.shards is a power of two
  /// in [1, 256].
  explicit BlockStore(BlockStoreConfig config);

  /// Stores one raw block. Never call with an all-zero payload — holes are
  /// the volume layer's job (asserted in debug builds). Thin wrapper over
  /// PutBatch with a one-element batch.
  PutResult Put(util::ByteSpan raw);

  /// Batch-first write path: stores `blocks` exactly as a serial loop of
  /// Put calls would — same digests, refcounts, stats and disk offsets —
  /// while running the CPU-bound stages on the worker thread pool:
  ///   1. hash every block in parallel,
  ///   2. partition by digest shard and resolve dedup hits against each
  ///      shard's DDT in per-shard ordered passes,
  ///   3. compress only the misses in parallel,
  ///   4. allocate extents and commit accounting in per-shard ordered
  ///      passes.
  /// Spans must stay valid for the duration of the call; results are
  /// returned in input order. Safe to call concurrently with other batches;
  /// concurrent batches racing the same digest resolve to one allocation
  /// plus refcount bumps (content addressing makes the winner irrelevant).
  std::vector<PutResult> PutBatch(std::span<const util::ByteSpan> blocks);

  /// Adds one reference to an existing block (snapshot / clone paths).
  /// Throws NoSuchBlockError for unknown digests.
  void Ref(const util::Digest& digest);

  /// Drops one reference; frees the extent and DDT entry at zero. Throws
  /// NoSuchBlockError for unknown digests.
  void Unref(const util::Digest& digest);

  /// Decompressed payload. Throws NoSuchBlockError for unknown digests.
  /// Thin wrapper over GetBatch with a one-element batch.
  util::Bytes Get(const util::Digest& digest) const;

  /// Decompressed payload, bypassing the ARC entirely — no cache probe, no
  /// fill, no read-counter movement. The transactional Receive path snapshots
  /// to-be-freed payloads through this so a rollback can restore them without
  /// perturbing cache state. Always verifies (dedup mode): throws
  /// NoSuchBlockError for unknown digests and BlockCorruptionError when the
  /// stored payload no longer matches its digest.
  util::Bytes GetUncached(const util::Digest& digest) const;

  /// Batch-first read path: returns the decompressed payloads of `digests`
  /// in input order, bit-identical to a serial loop of Get calls at any
  /// thread count and cache size:
  ///   1. classify every digest against its shard's ARC stripe in
  ///      per-stripe ordered passes (replaying the exact serial
  ///      Lookup/Insert sequence each stripe would see, so ARC state and
  ///      hit/miss counters match serial too),
  ///   2. decompress the misses in parallel on the worker pool,
  ///   3. install payloads and accounting in per-stripe ordered passes.
  /// Throws NoSuchBlockError (before any cache mutation) if any digest is
  /// unknown.
  std::vector<util::Bytes> GetBatch(
      std::span<const util::Digest> digests) const;

  /// Cache warm-up: pushes `digests` through the batch read path in
  /// ingest-sized rounds purely for the side effect of filling the
  /// decompressed-block ARC, without keeping the payloads. Digests whose
  /// payload is already resident are filtered out of the materialization
  /// path during each stripe's classification pass — their ARC touch still
  /// happens, so cache state and counters stay bit-identical to the demand
  /// path, but a warm re-warm costs no copies and no decompression
  /// (ReadStats::warm_skipped_resident counts them). Unknown digests are
  /// skipped and corrupt blocks are left cold (no throw) — warming is
  /// advisory, the demand path still verifies and heals. Returns the number
  /// of payloads successfully read. Bounded memory: one round of payloads
  /// at a time.
  std::uint64_t WarmCache(std::span<const util::Digest> digests) const;

  bool Contains(const util::Digest& digest) const;
  std::uint32_t RefCount(const util::Digest& digest) const;

  /// Batched availability query: present[i] == 1 iff digests[i] is stored.
  /// One lock acquisition per *touched shard* for the whole span — the
  /// placement layer probes block availability across peers with this
  /// before deciding between stripe reconstruction and a storage fetch.
  std::vector<std::uint8_t> ContainsBatch(
      std::span<const util::Digest> digests) const;

  /// Raw (decompressed) payload size of a stored block; 0 for unknown
  /// digests. The stripe codec derives its ceil(L/k) shard geometry from
  /// this without materializing the payload.
  std::uint32_t LogicalSize(const util::Digest& digest) const;

  /// The digest this store's configured hash (fast_hash aware) assigns to
  /// `raw` — the placement layer verifies reassembled stripes against the
  /// file table's digests with this.
  util::Digest ComputeDigest(util::ByteSpan raw) const;

  /// Physical pool offset of a block — the boot simulator uses this to model
  /// on-disk scattering of deduplicated data. Per-shard arenas interleave at
  /// sector granularity (offset = local * shards + shard * sector), so
  /// offsets from different shards never collide and `shards = 1` is the
  /// identity mapping.
  std::uint64_t DiskOffset(const util::Digest& digest) const;
  std::uint32_t PhysicalSize(const util::Digest& digest) const;

  /// Re-reads a block (decompressing if needed) and re-hashes it; true when
  /// the payload still matches its digest. Always true with dedup disabled
  /// (digests are synthetic there). Decompression failures count as
  /// corruption (false), not exceptions. Deliberately bypasses the ARC —
  /// a scrub must observe the stored bytes, not a cached copy.
  bool Verify(const util::Digest& digest) const;

  /// Parallel Verify over a batch: ok[i] == 1 iff Verify(digests[i]).
  /// Unknown digests verify false (no throw), so scrubs can keep walking.
  std::vector<std::uint8_t> VerifyBatch(
      std::span<const util::Digest> digests) const;

  /// True when the decompressed payload of `digest` is resident in the ARC.
  /// Non-mutating (no counter update); the boot simulator probes this to
  /// decide whether a read pays decompression CPU. Touches only the one
  /// stripe owning the digest.
  bool CachedDecompressed(const util::Digest& digest) const;

  /// Batched CachedDecompressed: one lock acquisition per *touched stripe*
  /// for the whole span, resident[i] == 1 iff the payload of digests[i] is
  /// resident and filled.
  std::vector<std::uint8_t> CachedDecompressedBatch(
      std::span<const util::Digest> digests) const;

  /// Self-healing: replaces the stored payload of an existing block with a
  /// freshly compressed copy of `raw` — the resilver step after a scrub (or
  /// verified read) caught corruption. Returns false without touching the
  /// store when the digest is unknown or `raw` does not hash to it (a
  /// corrupt peer cannot "repair" a block into a worse state). Refcounts
  /// and logical accounting are untouched; physical accounting is adjusted
  /// if the re-compressed size differs from the damaged payload's extent.
  bool Repair(const util::Digest& digest, util::ByteSpan raw);

  /// Applies the injector's stored-payload fault schedule to every resident
  /// block (order-independent: each block's outcome depends only on the
  /// injector seed and the digest). Returns the number of blocks corrupted.
  std::size_t InjectFaults(util::FaultInjector& faults);

  /// Test hook: flips one byte of the stored payload. Returns false if the
  /// digest is unknown.
  bool CorruptPayloadForTesting(const util::Digest& digest);

  /// Test hook simulating a torn write the store already noticed: truncates
  /// the stored payload to one sector and *fixes the accounting to match*
  /// (extent reallocated, physical bytes adjusted), so the store stays
  /// internally consistent but the block fails Verify and a subsequent
  /// Repair with clean content needs a larger extent — the path that can
  /// hit NoSpaceError under a capacity. Returns false if the digest is
  /// unknown or the payload already fits one sector.
  bool CorruptTruncatePayloadForTesting(const util::Digest& digest);

  /// Arms deterministic fault bookkeeping on the commit path: per-position
  /// CrashPointArmedOnly sites inside the PutBatch commit stage (fired only
  /// under FaultInjector::ArmCrashAt — the crash-at-every-site sweep) and
  /// allocations_refused counting for NoSpaceError unwinds. While an
  /// injector is set the per-shard commit passes run serialized in shard
  /// order so the injector's crash-site counter advances deterministically;
  /// benches never arm a store injector, so the parallel path is untouched.
  /// Pass nullptr to disarm.
  void SetFaultInjector(util::FaultInjector* faults) { faults_ = faults; }

  /// Full internal-consistency audit, per shard under its lock: recorded
  /// StoreStats match a recount of the DDT, every refcount is positive,
  /// extents are disjoint and sector-aligned, the SpaceMap's allocated
  /// bytes equal the sum of entry extents, and pool accounting satisfies
  /// pool_size == allocated + free holes. Tests call this after every
  /// failure-path unwind (see tests/store_invariants.h).
  InvariantReport CheckInvariants() const;

  /// Rebudgets the decompressed-block ARC at runtime (the real ARC shrinks
  /// under memory pressure and recovers). Shrinking evicts in replacement
  /// order down to the new budget; growing keeps contents. The budget is
  /// re-split across stripes and applied stripe-by-stripe under each
  /// stripe's own lock — in-flight batch reads on other stripes are never
  /// stalled (no global pause).
  void ResizeCache(std::uint64_t bytes);

  /// Aggregated accounting, summed across shards. Each shard is read under
  /// its own lock; when called concurrently with writers the result is a
  /// consistent per-shard (not cross-shard-atomic) snapshot.
  StoreStats stats() const;
  ReadStats read_stats() const;
  SpaceMapStats space_map_stats() const;
  const compress::Codec& codec() const { return *codec_; }
  std::size_t shard_count() const { return shards_.size(); }

  /// Pool shared by the ingest (hash/compress) and read (decompress)
  /// pipeline stages; nullptr when both sides are serial
  /// (ingest.threads == 1 && read.threads == 1). The volume layer shares it
  /// for its own parallel-friendly stages (zero-detect, RMW materialize).
  util::ThreadPool* worker_pool() const { return pool_.get(); }

  /// Runs fn(i) for i in [0, count) on the worker pool when the read side
  /// is parallel (read.threads != 1), inline otherwise. Exposed for the
  /// volume layer's read-side stages (Send payload compression).
  void ForEachRead(std::size_t count,
                   const std::function<void(std::size_t)>& fn) const;

 private:
  struct Entry {
    util::Bytes payload;          // as stored (possibly compressed)
    std::uint32_t logical_size;
    std::uint32_t physical_size;
    std::uint32_t refcount;
    std::uint64_t disk_offset;    // shard-local; DiskOffset() globalizes
    bool compressed;
  };

  /// One DDT/allocator shard. The mutex guards every member; StoreStats is
  /// accumulated per shard and summed on demand.
  struct Shard {
    mutable std::mutex mutex;
    std::unordered_map<util::Digest, Entry, util::DigestHasher> entries;
    SpaceMap space_map;
    StoreStats stats;
  };

  /// One ARC stripe plus its slice of the read counters. The stripe index
  /// equals the shard index (same digest-prefix selector), but the lock is
  /// separate so cache probes never contend with DDT commits.
  struct CacheStripe {
    explicit CacheStripe(std::uint64_t capacity_bytes)
        : cache(capacity_bytes) {}
    mutable std::mutex mutex;
    mutable BlockCache cache;
    mutable std::uint64_t blocks_requested = 0;
    mutable std::uint64_t raw_blocks = 0;
    mutable std::uint64_t decompressed_blocks = 0;
    mutable std::uint64_t decompressed_bytes = 0;
    mutable std::uint64_t warm_skipped_resident = 0;
  };

  std::size_t ShardOf(const util::Digest& digest) const {
    return static_cast<std::size_t>(digest.bytes[0]) >> shard_shift_;
  }
  /// Interleaved global offset: unique across shards because every extent
  /// is a whole number of sectors; identity when shards == 1.
  std::uint64_t GlobalOffset(std::size_t shard, std::uint64_t local) const {
    return local * shards_.size() + shard * kSectorBytes;
  }

  /// Runs fn(i) for i in [0, count) on the worker pool, or inline when the
  /// ingest side is serial or the batch is trivial.
  void ForEachIngest(std::size_t count,
                     const std::function<void(std::size_t)>& fn);
  /// Shared implementation of GetBatch/WarmCache. In warm mode, cache hits
  /// skip the payload copy (counted as warm_skipped_resident) and aliases
  /// are not materialized; misses still decompress and fill their stripe.
  void GetBatchImpl(std::span<const util::Digest> digests,
                    std::vector<util::Bytes>* results, bool warm) const;

  BlockStoreConfig config_;
  const compress::Codec* codec_;
  unsigned shard_shift_;  // 8 - log2(shards): digit of bytes[0] kept
  std::vector<std::unique_ptr<Shard>> shards_;
  std::vector<std::unique_ptr<CacheStripe>> stripes_;
  std::atomic<std::uint64_t> fake_digest_counter_{0};  // for dedup=off mode
  std::unique_ptr<util::ThreadPool> pool_;  // null when both sides serial
  util::FaultInjector* faults_ = nullptr;   // crash/disk-full sites; not owned
};

}  // namespace squirrel::store
