// Content-addressed, refcounted block store with inline compression — the
// mechanism behind ZFS `dedup=on` + `compression=gzip-6` that Squirrel's
// cVolumes rely on.
//
// Write path (batch-first): the caller has already elided all-zero blocks
// (sparse holes). PutBatch hashes the raw payloads (truncated SHA-256, as ZFS
// hashes before dedup) in parallel on the ingest pool, resolves every digest
// against the dedup table (DDT) in one ordered pass — a hit bumps the
// refcount and costs no new space — compresses the misses in parallel (kept
// only if it saves at least 1/8th, ZFS's rule), then allocates extents from
// the SpaceMap and inserts DDT entries in a second ordered pass. Because all
// mutation happens in the ordered passes, results are bit-identical to a
// serial loop of single-block Puts at any thread count.
//
// Accounting mirrors what the paper measures: physical data bytes (Fig 8),
// DDT size on disk (Fig 9) and DDT memory footprint (Fig 10).
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <unordered_map>
#include <vector>

#include "compress/codec.h"
#include "store/space_map.h"
#include "util/bytes.h"
#include "util/hash.h"
#include "util/thread_pool.h"

namespace squirrel::store {

/// Per-unique-block DDT entry overheads, modelled on ZFS (zio_ddt): an
/// in-core ddt_entry_t is ~320 bytes but the steady-state resident cost per
/// entry lands near 192 bytes once the table pages through the ARC; the
/// on-disk ZAP entry costs ~240 bytes including indirection.
inline constexpr std::uint64_t kDdtCoreBytesPerEntry = 192;
inline constexpr std::uint64_t kDdtDiskBytesPerEntry = 240;

/// Allocation granularity (ZFS ashift=9): compressed payloads occupy whole
/// 512-byte sectors on disk. This waste grows relatively as blocks shrink —
/// one of the reasons the disk-consumption optimum (Fig 8) sits at a larger
/// block size than the CCR optimum (Fig 4).
inline constexpr std::uint64_t kSectorBytes = 512;

/// On-disk size of one block pointer in the file's indirect-block tree
/// (ZFS blkptr_t). Charged per *reference*, i.e. per non-hole file block.
inline constexpr std::uint64_t kBlockPointerBytes = 128;

/// Parallelism knobs for the batch ingest pipeline (PutBatch and the volume
/// write paths built on it). All mutation of store state happens in ordered
/// serial passes regardless of thread count, so results — digests, refcounts,
/// StoreStats, disk offsets — are bit-identical across configurations.
struct IngestConfig {
  /// Worker threads for the hash/compress stages. 1 runs everything inline
  /// on the calling thread (the serial reference path); 0 picks one thread
  /// per hardware thread.
  std::size_t threads = 1;
  /// Volume-layer pipeline granularity: blocks read, zero-detected and
  /// handed to PutBatch per round. Bounds ingest buffering to
  /// batch_blocks * block_size bytes.
  std::size_t batch_blocks = 128;

  bool operator==(const IngestConfig&) const = default;
};

struct BlockStoreConfig {
  /// Inline compressor; CodecId::kNull disables compression. Parse CLI or
  /// wire-format names with compress::ParseCodec at the boundary.
  compress::CodecId codec = compress::CodecId::kGzip6;
  /// When false, every Put allocates fresh space (dedup table disabled).
  bool dedup = true;
  /// Use a seeded double-FNV 128-bit hash instead of truncated SHA-256.
  /// Large ingest benchmarks enable this; dedup behaviour is identical at
  /// simulation scale, only the digest function differs.
  bool fast_hash = false;
  /// Batch-ingest parallelism (threads, batch size).
  IngestConfig ingest{};
};

struct PutResult {
  util::Digest digest;
  bool deduplicated = false;       // true: refcount bump, no new space
  std::uint32_t logical_size = 0;  // raw payload size
  std::uint32_t physical_size = 0; // stored size (0 when deduplicated)
};

struct StoreStats {
  std::uint64_t unique_blocks = 0;
  std::uint64_t total_refs = 0;
  std::uint64_t logical_unique_bytes = 0;    // raw bytes of unique blocks
  std::uint64_t logical_referenced_bytes = 0;// raw bytes times refcount
  std::uint64_t physical_data_bytes = 0;     // compressed, allocated
  std::uint64_t ddt_disk_bytes = 0;          // on-disk dedup table
  std::uint64_t ddt_core_bytes = 0;          // in-memory dedup table
  /// Data + on-disk DDT: the "disk consumption" series of Figure 8/9.
  std::uint64_t disk_bytes() const { return physical_data_bytes + ddt_disk_bytes; }
};

class BlockStore {
 public:
  explicit BlockStore(BlockStoreConfig config);

  /// Stores one raw block. Never call with an all-zero payload — holes are
  /// the volume layer's job (asserted in debug builds). Thin wrapper over
  /// PutBatch with a one-element batch.
  PutResult Put(util::ByteSpan raw);

  /// Batch-first write path: stores `blocks` exactly as a serial loop of
  /// Put calls would — same digests, refcounts, stats and disk offsets —
  /// while running the CPU-bound stages on the ingest thread pool:
  ///   1. hash every block in parallel,
  ///   2. resolve dedup hits against the DDT in one ordered pass,
  ///   3. compress only the misses in parallel,
  ///   4. allocate extents and commit accounting in one ordered pass.
  /// Spans must stay valid for the duration of the call; results are
  /// returned in input order.
  std::vector<PutResult> PutBatch(std::span<const util::ByteSpan> blocks);

  /// Adds one reference to an existing block (snapshot / clone paths).
  void Ref(const util::Digest& digest);

  /// Drops one reference; frees the extent and DDT entry at zero.
  void Unref(const util::Digest& digest);

  /// Decompressed payload. Throws std::out_of_range for unknown digests.
  util::Bytes Get(const util::Digest& digest) const;

  bool Contains(const util::Digest& digest) const;
  std::uint32_t RefCount(const util::Digest& digest) const;

  /// Physical pool offset of a block — the boot simulator uses this to model
  /// on-disk scattering of deduplicated data.
  std::uint64_t DiskOffset(const util::Digest& digest) const;
  std::uint32_t PhysicalSize(const util::Digest& digest) const;

  /// Re-reads a block (decompressing if needed) and re-hashes it; true when
  /// the payload still matches its digest. Always true with dedup disabled
  /// (digests are synthetic there). Decompression failures count as
  /// corruption (false), not exceptions.
  bool Verify(const util::Digest& digest) const;

  /// Test hook: flips one byte of the stored payload. Returns false if the
  /// digest is unknown.
  bool CorruptPayloadForTesting(const util::Digest& digest);

  const StoreStats& stats() const { return stats_; }
  const SpaceMap& space_map() const { return space_map_; }
  const compress::Codec& codec() const { return *codec_; }

  /// Pool the hash/compress pipeline stages run on; nullptr in serial mode
  /// (ingest.threads == 1). The volume layer shares it for its own
  /// parallel-friendly stages (zero-detect, read-modify-write materialize).
  util::ThreadPool* ingest_pool() { return pool_.get(); }

 private:
  struct Entry {
    util::Bytes payload;          // as stored (possibly compressed)
    std::uint32_t logical_size;
    std::uint32_t physical_size;
    std::uint32_t refcount;
    std::uint64_t disk_offset;
    bool compressed;
  };

  util::Digest ComputeDigest(util::ByteSpan raw) const;
  /// Runs fn(i) for i in [0, count) on the ingest pool, or inline when the
  /// store is serial (no pool) or the batch is trivial.
  void ForEachIngest(std::size_t count,
                     const std::function<void(std::size_t)>& fn);

  BlockStoreConfig config_;
  const compress::Codec* codec_;
  std::unordered_map<util::Digest, Entry, util::DigestHasher> entries_;
  SpaceMap space_map_;
  StoreStats stats_;
  std::uint64_t fake_digest_counter_ = 0;  // for dedup=off mode
  std::unique_ptr<util::ThreadPool> pool_;  // null when ingest.threads == 1
};

}  // namespace squirrel::store
