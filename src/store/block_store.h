// Content-addressed, refcounted block store with inline compression — the
// mechanism behind ZFS `dedup=on` + `compression=gzip-6` that Squirrel's
// cVolumes rely on.
//
// Write path (batch-first): the caller has already elided all-zero blocks
// (sparse holes). PutBatch hashes the raw payloads (truncated SHA-256, as ZFS
// hashes before dedup) in parallel on the ingest pool, resolves every digest
// against the dedup table (DDT) in one ordered pass — a hit bumps the
// refcount and costs no new space — compresses the misses in parallel (kept
// only if it saves at least 1/8th, ZFS's rule), then allocates extents from
// the SpaceMap and inserts DDT entries in a second ordered pass. Because all
// mutation happens in the ordered passes, results are bit-identical to a
// serial loop of single-block Puts at any thread count.
//
// Read path (batch-first, mirroring ingest): GetBatch classifies every
// requested digest against a byte-budgeted ARC of decompressed payloads
// (BlockCache) in one ordered pass, decompresses the misses in parallel on
// the shared worker pool, then installs payloads and read accounting in a
// second ordered pass. Payloads, their order, and — because the cache passes
// replay the exact Lookup/Insert sequence a serial Get loop would issue —
// the cache counters are all bit-identical to serial Get at any thread
// count and any cache size, including cache_bytes = 0. Duplicate digests
// within one batch decompress once (aliased), so with the cache disabled
// GetBatch may do strictly less decompression work than the serial loop;
// with it enabled the serial loop gets the same saving as cache hits.
//
// Accounting mirrors what the paper measures: physical data bytes (Fig 8),
// DDT size on disk (Fig 9) and DDT memory footprint (Fig 10). Cached
// decompressed bytes are deliberately *not* part of StoreStats — the ARC is
// a read-side memory budget, not disk state.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <unordered_map>
#include <vector>

#include "compress/codec.h"
#include "store/block_cache.h"
#include "store/space_map.h"
#include "util/bytes.h"
#include "util/error.h"
#include "util/hash.h"
#include "util/thread_pool.h"

namespace squirrel::util {
class FaultInjector;
}  // namespace squirrel::util

namespace squirrel::store {

/// Per-unique-block DDT entry overheads, modelled on ZFS (zio_ddt): an
/// in-core ddt_entry_t is ~320 bytes but the steady-state resident cost per
/// entry lands near 192 bytes once the table pages through the ARC; the
/// on-disk ZAP entry costs ~240 bytes including indirection.
inline constexpr std::uint64_t kDdtCoreBytesPerEntry = 192;
inline constexpr std::uint64_t kDdtDiskBytesPerEntry = 240;

/// Allocation granularity (ZFS ashift=9): compressed payloads occupy whole
/// 512-byte sectors on disk. This waste grows relatively as blocks shrink —
/// one of the reasons the disk-consumption optimum (Fig 8) sits at a larger
/// block size than the CCR optimum (Fig 4).
inline constexpr std::uint64_t kSectorBytes = 512;

/// On-disk size of one block pointer in the file's indirect-block tree
/// (ZFS blkptr_t). Charged per *reference*, i.e. per non-hole file block.
inline constexpr std::uint64_t kBlockPointerBytes = 128;

/// Thrown by read-path operations (Get/GetBatch/Unref/Ref/DiskOffset/...)
/// naming a digest the store does not hold.
class NoSuchBlockError : public Error {
 public:
  explicit NoSuchBlockError(const util::Digest& digest)
      : Error("no such block: " + digest.ToHex()) {}
};

/// Thrown by the verified read path when a stored payload no longer hashes
/// to its digest (or its compressed framing is broken) — the ZFS
/// checksum-on-read failure. Carries the digest so self-healing layers can
/// re-fetch the block from a peer.
class BlockCorruptionError : public Error {
 public:
  explicit BlockCorruptionError(const util::Digest& digest)
      : Error("block corrupt: " + digest.ToHex()), digest_(digest) {}

  const util::Digest& digest() const { return digest_; }

 private:
  util::Digest digest_;
};

/// Parallelism knobs for the batch ingest pipeline (PutBatch and the volume
/// write paths built on it). All mutation of store state happens in ordered
/// serial passes regardless of thread count, so results — digests, refcounts,
/// StoreStats, disk offsets — are bit-identical across configurations.
struct IngestConfig {
  /// Worker threads for the hash/compress stages. 1 runs everything inline
  /// on the calling thread (the serial reference path); 0 picks one thread
  /// per hardware thread.
  std::size_t threads = 1;
  /// Volume-layer pipeline granularity: blocks read, zero-detected and
  /// handed to PutBatch per round. Bounds ingest buffering to
  /// batch_blocks * block_size bytes.
  std::size_t batch_blocks = 128;

  bool operator==(const IngestConfig&) const = default;
};

/// Knobs for the batch read pipeline (GetBatch and the volume read paths
/// built on it). Runtime tuning only — never serialized into volume images,
/// and bit-identical payloads/ordering at any setting.
struct ReadConfig {
  /// Worker threads for the parallel decompress stage. 1 = inline serial
  /// reference path; 0 = one thread per hardware thread.
  std::size_t threads = 1;
  /// Byte budget of the decompressed-block ARC (0 disables caching). Shared
  /// blocks across images decompress once and are then served from memory —
  /// the dedup-aware read amplification win the paper attributes to the ZFS
  /// ARC. Cached bytes are *not* part of StoreStats disk/DDT accounting.
  std::uint64_t cache_bytes = 0;
  /// Volume-layer cluster readahead: ReadFile/ReadRange extend each request
  /// round by this many following block pointers in the same GetBatch,
  /// modelling the QCOW2 64 KB-cluster prefetch effect (Fig 11). Pointless
  /// without a cache, so ignored when cache_bytes == 0.
  std::size_t readahead_blocks = 0;
  /// Recompute each miss's digest after decompression and throw
  /// BlockCorruptionError on mismatch (ZFS checksum-on-read). Verified
  /// payloads entering the ARC are never re-verified; the check costs one
  /// hash per physical (deduplicated) block actually decompressed. Ignored
  /// when dedup is off — synthetic digests carry no content hash.
  bool verify_reads = true;

  bool operator==(const ReadConfig&) const = default;
};

struct BlockStoreConfig {
  /// Inline compressor; CodecId::kNull disables compression. Parse CLI or
  /// wire-format names with compress::ParseCodec at the boundary.
  compress::CodecId codec = compress::CodecId::kGzip6;
  /// When false, every Put allocates fresh space (dedup table disabled).
  bool dedup = true;
  /// Use a seeded double-FNV 128-bit hash instead of truncated SHA-256.
  /// Large ingest benchmarks enable this; dedup behaviour is identical at
  /// simulation scale, only the digest function differs.
  bool fast_hash = false;
  /// Batch-ingest parallelism (threads, batch size).
  IngestConfig ingest{};
  /// Batch-read parallelism, ARC budget and readahead.
  ReadConfig read{};
};

struct PutResult {
  util::Digest digest;
  bool deduplicated = false;       // true: refcount bump, no new space
  std::uint32_t logical_size = 0;  // raw payload size
  std::uint32_t physical_size = 0; // stored size (0 when deduplicated)
};

struct StoreStats {
  std::uint64_t unique_blocks = 0;
  std::uint64_t total_refs = 0;
  std::uint64_t logical_unique_bytes = 0;    // raw bytes of unique blocks
  std::uint64_t logical_referenced_bytes = 0;// raw bytes times refcount
  std::uint64_t physical_data_bytes = 0;     // compressed, allocated
  std::uint64_t ddt_disk_bytes = 0;          // on-disk dedup table
  std::uint64_t ddt_core_bytes = 0;          // in-memory dedup table
  /// Data + on-disk DDT: the "disk consumption" series of Figure 8/9.
  std::uint64_t disk_bytes() const { return physical_data_bytes + ddt_disk_bytes; }
};

/// Read-side accounting. Counters are cumulative; cached_bytes is a
/// snapshot of the ARC's resident budget. Deterministic across thread
/// counts (all cache interaction happens in ordered passes).
struct ReadStats {
  std::uint64_t blocks_requested = 0;   // payloads served (Get + GetBatch)
  std::uint64_t cache_hits = 0;         // served from the decompressed ARC
  std::uint64_t cache_misses = 0;       // compressed lookups that missed
  std::uint64_t raw_blocks = 0;         // stored uncompressed (cache bypass)
  std::uint64_t decompressed_blocks = 0;
  std::uint64_t decompressed_bytes = 0; // decompression work actually done
  std::uint64_t cached_bytes = 0;       // ARC resident payload bytes (now)
  std::uint64_t cache_capacity_bytes = 0;
};

class BlockStore {
 public:
  explicit BlockStore(BlockStoreConfig config);

  /// Stores one raw block. Never call with an all-zero payload — holes are
  /// the volume layer's job (asserted in debug builds). Thin wrapper over
  /// PutBatch with a one-element batch.
  PutResult Put(util::ByteSpan raw);

  /// Batch-first write path: stores `blocks` exactly as a serial loop of
  /// Put calls would — same digests, refcounts, stats and disk offsets —
  /// while running the CPU-bound stages on the worker thread pool:
  ///   1. hash every block in parallel,
  ///   2. resolve dedup hits against the DDT in one ordered pass,
  ///   3. compress only the misses in parallel,
  ///   4. allocate extents and commit accounting in one ordered pass.
  /// Spans must stay valid for the duration of the call; results are
  /// returned in input order.
  std::vector<PutResult> PutBatch(std::span<const util::ByteSpan> blocks);

  /// Adds one reference to an existing block (snapshot / clone paths).
  /// Throws NoSuchBlockError for unknown digests.
  void Ref(const util::Digest& digest);

  /// Drops one reference; frees the extent and DDT entry at zero. Throws
  /// NoSuchBlockError for unknown digests.
  void Unref(const util::Digest& digest);

  /// Decompressed payload. Throws NoSuchBlockError for unknown digests.
  /// Thin wrapper over GetBatch with a one-element batch.
  util::Bytes Get(const util::Digest& digest) const;

  /// Batch-first read path: returns the decompressed payloads of `digests`
  /// in input order, bit-identical to a serial loop of Get calls at any
  /// thread count and cache size:
  ///   1. classify every digest against the decompressed-block ARC in one
  ///      ordered pass (replaying the exact serial Lookup/Insert sequence,
  ///      so cache state and hit/miss counters match serial too),
  ///   2. decompress the misses in parallel on the worker pool,
  ///   3. install payloads and accounting in one ordered pass.
  /// Throws NoSuchBlockError (before any cache mutation) if any digest is
  /// unknown.
  std::vector<util::Bytes> GetBatch(
      std::span<const util::Digest> digests) const;

  /// Cache warm-up: pushes `digests` through GetBatch in ingest-sized
  /// rounds purely for the side effect of filling the decompressed-block
  /// ARC, without keeping the payloads. Unknown digests are skipped and
  /// corrupt blocks are left cold (no throw) — warming is advisory, the
  /// demand path still verifies and heals. Returns the number of payloads
  /// successfully read. Bounded memory: one round of payloads at a time.
  std::uint64_t WarmCache(std::span<const util::Digest> digests) const;

  bool Contains(const util::Digest& digest) const;
  std::uint32_t RefCount(const util::Digest& digest) const;

  /// Physical pool offset of a block — the boot simulator uses this to model
  /// on-disk scattering of deduplicated data.
  std::uint64_t DiskOffset(const util::Digest& digest) const;
  std::uint32_t PhysicalSize(const util::Digest& digest) const;

  /// Re-reads a block (decompressing if needed) and re-hashes it; true when
  /// the payload still matches its digest. Always true with dedup disabled
  /// (digests are synthetic there). Decompression failures count as
  /// corruption (false), not exceptions. Deliberately bypasses the ARC —
  /// a scrub must observe the stored bytes, not a cached copy.
  bool Verify(const util::Digest& digest) const;

  /// Parallel Verify over a batch: ok[i] == 1 iff Verify(digests[i]).
  /// Unknown digests verify false (no throw), so scrubs can keep walking.
  std::vector<std::uint8_t> VerifyBatch(
      std::span<const util::Digest> digests) const;

  /// True when the decompressed payload of `digest` is resident in the ARC.
  /// Non-mutating (no counter update); the boot simulator probes this to
  /// decide whether a read pays decompression CPU.
  bool CachedDecompressed(const util::Digest& digest) const;

  /// Batched CachedDecompressed: one lock acquisition for the whole span,
  /// resident[i] == 1 iff the payload of digests[i] is resident and filled.
  std::vector<std::uint8_t> CachedDecompressedBatch(
      std::span<const util::Digest> digests) const;

  /// Self-healing: replaces the stored payload of an existing block with a
  /// freshly compressed copy of `raw` — the resilver step after a scrub (or
  /// verified read) caught corruption. Returns false without touching the
  /// store when the digest is unknown or `raw` does not hash to it (a
  /// corrupt peer cannot "repair" a block into a worse state). Refcounts
  /// and logical accounting are untouched; physical accounting is adjusted
  /// if the re-compressed size differs from the damaged payload's extent.
  bool Repair(const util::Digest& digest, util::ByteSpan raw);

  /// Applies the injector's stored-payload fault schedule to every resident
  /// block (order-independent: each block's outcome depends only on the
  /// injector seed and the digest). Returns the number of blocks corrupted.
  std::size_t InjectFaults(util::FaultInjector& faults);

  /// Test hook: flips one byte of the stored payload. Returns false if the
  /// digest is unknown.
  bool CorruptPayloadForTesting(const util::Digest& digest);

  /// Rebudgets the decompressed-block ARC at runtime (the real ARC shrinks
  /// under memory pressure and recovers). Shrinking evicts in replacement
  /// order down to `bytes`; growing keeps contents. Takes the read lock.
  void ResizeCache(std::uint64_t bytes);

  const StoreStats& stats() const { return stats_; }
  ReadStats read_stats() const;
  const SpaceMap& space_map() const { return space_map_; }
  const compress::Codec& codec() const { return *codec_; }

  /// Pool shared by the ingest (hash/compress) and read (decompress)
  /// pipeline stages; nullptr when both sides are serial
  /// (ingest.threads == 1 && read.threads == 1). The volume layer shares it
  /// for its own parallel-friendly stages (zero-detect, RMW materialize).
  util::ThreadPool* worker_pool() const { return pool_.get(); }

  /// Runs fn(i) for i in [0, count) on the worker pool when the read side
  /// is parallel (read.threads != 1), inline otherwise. Exposed for the
  /// volume layer's read-side stages (Send payload compression).
  void ForEachRead(std::size_t count,
                   const std::function<void(std::size_t)>& fn) const;

 private:
  struct Entry {
    util::Bytes payload;          // as stored (possibly compressed)
    std::uint32_t logical_size;
    std::uint32_t physical_size;
    std::uint32_t refcount;
    std::uint64_t disk_offset;
    bool compressed;
  };

  util::Digest ComputeDigest(util::ByteSpan raw) const;
  /// Runs fn(i) for i in [0, count) on the worker pool, or inline when the
  /// ingest side is serial or the batch is trivial.
  void ForEachIngest(std::size_t count,
                     const std::function<void(std::size_t)>& fn);
  const Entry& RequireEntry(const util::Digest& digest) const;

  BlockStoreConfig config_;
  const compress::Codec* codec_;
  std::unordered_map<util::Digest, Entry, util::DigestHasher> entries_;
  SpaceMap space_map_;
  StoreStats stats_;
  std::uint64_t fake_digest_counter_ = 0;  // for dedup=off mode
  std::unique_ptr<util::ThreadPool> pool_;  // null when both sides serial

  /// Read-side state. The mutex serializes ARC mutation and read counters
  /// (Get/GetBatch are const but cache-stateful); decompression itself runs
  /// outside the lock. All cache interaction happens in ordered passes, so
  /// counters and ARC state are deterministic at any thread count.
  mutable std::mutex read_mutex_;
  mutable BlockCache cache_;
  mutable std::uint64_t blocks_requested_ = 0;
  mutable std::uint64_t raw_blocks_ = 0;
  mutable std::uint64_t decompressed_blocks_ = 0;
  mutable std::uint64_t decompressed_bytes_ = 0;
};

}  // namespace squirrel::store
