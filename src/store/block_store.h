// Content-addressed, refcounted block store with inline compression — the
// mechanism behind ZFS `dedup=on` + `compression=gzip-6` that Squirrel's
// cVolumes rely on.
//
// Write path (per volume block): the caller has already elided all-zero
// blocks (sparse holes). The store hashes the raw payload (truncated SHA-256,
// as ZFS hashes before dedup), looks the digest up in the dedup table (DDT);
// a hit bumps the refcount and costs no new space, a miss compresses the
// payload (kept only if it saves at least 1/8th, ZFS's rule), allocates an
// extent from the SpaceMap and inserts a DDT entry.
//
// Accounting mirrors what the paper measures: physical data bytes (Fig 8),
// DDT size on disk (Fig 9) and DDT memory footprint (Fig 10).
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>

#include "compress/codec.h"
#include "store/space_map.h"
#include "util/bytes.h"
#include "util/hash.h"

namespace squirrel::store {

/// Per-unique-block DDT entry overheads, modelled on ZFS (zio_ddt): an
/// in-core ddt_entry_t is ~320 bytes but the steady-state resident cost per
/// entry lands near 192 bytes once the table pages through the ARC; the
/// on-disk ZAP entry costs ~240 bytes including indirection.
inline constexpr std::uint64_t kDdtCoreBytesPerEntry = 192;
inline constexpr std::uint64_t kDdtDiskBytesPerEntry = 240;

/// Allocation granularity (ZFS ashift=9): compressed payloads occupy whole
/// 512-byte sectors on disk. This waste grows relatively as blocks shrink —
/// one of the reasons the disk-consumption optimum (Fig 8) sits at a larger
/// block size than the CCR optimum (Fig 4).
inline constexpr std::uint64_t kSectorBytes = 512;

/// On-disk size of one block pointer in the file's indirect-block tree
/// (ZFS blkptr_t). Charged per *reference*, i.e. per non-hole file block.
inline constexpr std::uint64_t kBlockPointerBytes = 128;

struct BlockStoreConfig {
  /// Codec name from compress::FindCodec; "null" disables compression.
  std::string codec = "gzip6";
  /// When false, every Put allocates fresh space (dedup table disabled).
  bool dedup = true;
  /// Use a seeded double-FNV 128-bit hash instead of truncated SHA-256.
  /// Large ingest benchmarks enable this; dedup behaviour is identical at
  /// simulation scale, only the digest function differs.
  bool fast_hash = false;
};

struct PutResult {
  util::Digest digest;
  bool deduplicated = false;       // true: refcount bump, no new space
  std::uint32_t logical_size = 0;  // raw payload size
  std::uint32_t physical_size = 0; // stored size (0 when deduplicated)
};

struct StoreStats {
  std::uint64_t unique_blocks = 0;
  std::uint64_t total_refs = 0;
  std::uint64_t logical_unique_bytes = 0;    // raw bytes of unique blocks
  std::uint64_t logical_referenced_bytes = 0;// raw bytes times refcount
  std::uint64_t physical_data_bytes = 0;     // compressed, allocated
  std::uint64_t ddt_disk_bytes = 0;          // on-disk dedup table
  std::uint64_t ddt_core_bytes = 0;          // in-memory dedup table
  /// Data + on-disk DDT: the "disk consumption" series of Figure 8/9.
  std::uint64_t disk_bytes() const { return physical_data_bytes + ddt_disk_bytes; }
};

class BlockStore {
 public:
  explicit BlockStore(BlockStoreConfig config);

  /// Stores one raw block. Never call with an all-zero payload — holes are
  /// the volume layer's job (asserted in debug builds).
  PutResult Put(util::ByteSpan raw);

  /// Adds one reference to an existing block (snapshot / clone paths).
  void Ref(const util::Digest& digest);

  /// Drops one reference; frees the extent and DDT entry at zero.
  void Unref(const util::Digest& digest);

  /// Decompressed payload. Throws std::out_of_range for unknown digests.
  util::Bytes Get(const util::Digest& digest) const;

  bool Contains(const util::Digest& digest) const;
  std::uint32_t RefCount(const util::Digest& digest) const;

  /// Physical pool offset of a block — the boot simulator uses this to model
  /// on-disk scattering of deduplicated data.
  std::uint64_t DiskOffset(const util::Digest& digest) const;
  std::uint32_t PhysicalSize(const util::Digest& digest) const;

  /// Re-reads a block (decompressing if needed) and re-hashes it; true when
  /// the payload still matches its digest. Always true with dedup disabled
  /// (digests are synthetic there). Decompression failures count as
  /// corruption (false), not exceptions.
  bool Verify(const util::Digest& digest) const;

  /// Test hook: flips one byte of the stored payload. Returns false if the
  /// digest is unknown.
  bool CorruptPayloadForTesting(const util::Digest& digest);

  const StoreStats& stats() const { return stats_; }
  const SpaceMap& space_map() const { return space_map_; }
  const compress::Codec& codec() const { return *codec_; }

 private:
  struct Entry {
    util::Bytes payload;          // as stored (possibly compressed)
    std::uint32_t logical_size;
    std::uint32_t physical_size;
    std::uint32_t refcount;
    std::uint64_t disk_offset;
    bool compressed;
  };

  BlockStoreConfig config_;
  const compress::Codec* codec_;
  std::unordered_map<util::Digest, Entry, util::DigestHasher> entries_;
  SpaceMap space_map_;
  StoreStats stats_;
  std::uint64_t fake_digest_counter_ = 0;  // for dedup=off mode
};

}  // namespace squirrel::store
