#include "store/dedup_analysis.h"

#include <vector>

#include "util/hash.h"

namespace squirrel::store {

DedupAnalyzer::DedupAnalyzer(AnalysisConfig config) : config_(config) {}

void DedupAnalyzer::AddFile(const util::DataSource& file) {
  ++file_counter_;
  const std::uint64_t size = file.size();
  result_.logical_bytes += size;

  util::Bytes buffer(config_.block_size);
  std::uint64_t file_unique = 0;

  // Compression sampling is content-hash based: a block is probed when its
  // key satisfies the current mask. The mask doubles when the sample budget
  // is exceeded and already-collected samples failing the new mask are
  // dropped, which keeps the surviving sample a uniform subset.
  for (std::uint64_t offset = 0; offset < size; offset += config_.block_size) {
    const std::uint64_t len = std::min<std::uint64_t>(config_.block_size, size - offset);
    util::MutableByteSpan block(buffer.data(), len);
    file.Read(offset, block);
    if (util::IsAllZero(block)) {
      ++result_.zero_blocks;
      continue;
    }
    ++result_.nonzero_blocks;
    result_.nonzero_bytes += len;

    const util::Fast128 h = util::FastHash128(block);
    const Key key{h.lo, h.hi};
    auto [it, inserted] = blocks_.emplace(key, BlockInfo{});
    BlockInfo& info = it->second;
    if (inserted) {
      ++result_.unique_blocks;
      if (config_.codec != nullptr && (key.lo & sample_mask_) == 0) {
        const util::Bytes compressed = config_.codec->Compress(block);
        samples_.emplace_back(key.lo,
                              static_cast<double>(compressed.size()) /
                                  static_cast<double>(len));
        sampled_bytes_ += len;
        if (config_.probe_sample_bytes > 0 &&
            sampled_bytes_ > config_.probe_sample_bytes) {
          // Escalate the mask and thin the existing sample accordingly.
          sample_mask_ = sample_mask_ * 2 + 1;
          std::erase_if(samples_, [this](const auto& s) {
            return (s.first & sample_mask_) != 0;
          });
          sampled_bytes_ /= 2;  // approximate; only the cap uses it
        }
      }
    }
    if (info.last_file != file_counter_) {
      if (info.last_file != 0) {
        // Second or later file containing this block: both endpoints count
        // toward repetition (the first file retroactively when count goes
        // 1 -> 2).
        result_.repetition_sum += (info.file_count == 1) ? 2 : 1;
      }
      ++info.file_count;
      info.last_file = file_counter_;
      ++file_unique;
    }
  }
  result_.per_file_unique_sum += file_unique;
}

AnalysisResult DedupAnalyzer::Finish() {
  if (!samples_.empty()) {
    double sum = 0.0;
    for (const auto& [key, fraction] : samples_) sum += fraction;
    result_.mean_compressed_fraction = sum / static_cast<double>(samples_.size());
    result_.probed_blocks = samples_.size();
  } else if (config_.codec != nullptr) {
    result_.mean_compressed_fraction = 1.0;
  }
  return result_;
}

}  // namespace squirrel::store
