// Disk-extent allocator for the simulated pool.
//
// Allocation is bump-pointer with a first-fit free list (coalescing on free),
// which reproduces the behaviour Figure 11 depends on: as blocks are written,
// freed and deduplicated over time, logically-adjacent file blocks end up at
// scattered physical offsets, turning sequential file reads into random disk
// accesses.
#pragma once

#include <cstdint>
#include <map>

#include "util/error.h"

namespace squirrel::store {

/// Thrown by SpaceMap::Allocate when granting the extent would push live
/// allocated bytes past the configured capacity — the simulated disk is
/// full. Callers (PutBatch, Repair, Receive) must unwind to a consistent
/// state: no leaked references, no half-committed extents (DESIGN.md §15).
class NoSpaceError : public Error {
 public:
  NoSpaceError(std::uint64_t requested, std::uint64_t capacity,
               std::uint64_t allocated)
      : Error("pool full: " + std::to_string(requested) + " bytes requested, " +
              std::to_string(allocated) + "/" + std::to_string(capacity) +
              " allocated") {}
};

class SpaceMap {
 public:
  /// Allocates `size` bytes, returns the pool offset. Throws NoSpaceError
  /// when a capacity is set and live allocated bytes would exceed it (free
  /// holes are reusable space, so the check is on allocated bytes, not the
  /// bump pointer).
  std::uint64_t Allocate(std::uint64_t size);

  /// Returns an extent to the free list; coalesces with neighbours.
  void Free(std::uint64_t offset, std::uint64_t size);

  std::uint64_t allocated_bytes() const { return allocated_; }

  /// High-water mark of the pool (bump pointer position).
  std::uint64_t pool_size() const { return bump_; }

  /// Bytes sitting in free-list holes below the high-water mark.
  std::uint64_t free_hole_bytes() const { return hole_bytes_; }

  /// Number of discontiguous free extents — a fragmentation proxy.
  std::size_t free_extent_count() const { return free_.size(); }

  /// Caps live allocated bytes; 0 (the default) means unlimited. Existing
  /// allocations above a newly-set cap stay valid — only future Allocate
  /// calls are refused.
  void SetCapacity(std::uint64_t bytes) { capacity_ = bytes; }
  std::uint64_t capacity() const { return capacity_; }

 private:
  std::map<std::uint64_t, std::uint64_t> free_;  // offset -> size
  std::uint64_t bump_ = 0;
  std::uint64_t allocated_ = 0;
  std::uint64_t hole_bytes_ = 0;
  std::uint64_t capacity_ = 0;
};

}  // namespace squirrel::store
