#include "store/block_store.h"

#include <cassert>
#include <cstring>
#include <stdexcept>

namespace squirrel::store {
namespace {

// ZFS keeps a compressed copy only when it saves at least 12.5%.
bool WorthKeeping(std::size_t compressed, std::size_t raw) {
  return compressed + raw / 8 <= raw;
}

}  // namespace

BlockStore::BlockStore(BlockStoreConfig config)
    : config_(config), codec_(&compress::GetCodec(config_.codec)) {
  if (config_.ingest.threads != 1) {
    pool_ = std::make_unique<util::ThreadPool>(config_.ingest.threads);
  }
}

util::Digest BlockStore::ComputeDigest(util::ByteSpan raw) const {
  if (config_.fast_hash) {
    util::Digest digest;
    const util::Fast128 h = util::FastHash128(raw);
    std::memcpy(digest.bytes.data(), &h.lo, 8);
    std::memcpy(digest.bytes.data() + 8, &h.hi, 8);
    return digest;
  }
  return util::HashBlock(raw);
}

void BlockStore::ForEachIngest(std::size_t count,
                               const std::function<void(std::size_t)>& fn) {
  if (pool_ == nullptr || count < 2) {
    for (std::size_t i = 0; i < count; ++i) fn(i);
    return;
  }
  pool_->ParallelFor(count, fn);
}

PutResult BlockStore::Put(util::ByteSpan raw) {
  const util::ByteSpan one[1] = {raw};
  return PutBatch(one)[0];
}

std::vector<PutResult> BlockStore::PutBatch(
    std::span<const util::ByteSpan> blocks) {
  std::vector<PutResult> results(blocks.size());
  if (blocks.empty()) return results;

  // Stage 1: digest every block in parallel. Content hashing is one of the
  // two CPU-bound pieces of the write path; it reads only the input spans,
  // so every block hashes independently.
  std::vector<util::Digest> digests(blocks.size());
  if (config_.dedup) {
    ForEachIngest(blocks.size(), [&](std::size_t i) {
      assert(!blocks[i].empty());
      assert(!util::IsAllZero(blocks[i]) &&
             "holes must be elided by the volume layer");
      digests[i] = ComputeDigest(blocks[i]);
    });
  } else {
    // Dedup disabled: synthesize unique keys in input order so every write
    // allocates, exactly as the serial loop numbered them.
    for (std::size_t i = 0; i < blocks.size(); ++i) {
      assert(!blocks[i].empty());
      assert(!util::IsAllZero(blocks[i]) &&
             "holes must be elided by the volume layer");
      const std::uint64_t id = fake_digest_counter_++;
      std::memcpy(digests[i].bytes.data(), &id, sizeof(id));
    }
  }

  // Stage 2: ordered dedup resolution. Classify each block against the DDT
  // and against earlier blocks of this batch, in input order — the same
  // decisions the serial loop would make, so refcounts and allocation order
  // stay bit-identical.
  std::vector<std::uint8_t> is_miss(blocks.size(), 0);
  std::vector<std::size_t> miss_indices;
  if (config_.dedup) {
    std::unordered_map<util::Digest, std::size_t, util::DigestHasher>
        batch_first;
    for (std::size_t i = 0; i < blocks.size(); ++i) {
      if (entries_.contains(digests[i]) || batch_first.contains(digests[i])) {
        continue;  // refcount bump, resolved in stage 4
      }
      batch_first.emplace(digests[i], i);
      is_miss[i] = 1;
      miss_indices.push_back(i);
    }
  } else {
    miss_indices.resize(blocks.size());
    for (std::size_t i = 0; i < blocks.size(); ++i) {
      is_miss[i] = 1;
      miss_indices[i] = i;
    }
  }

  // Stage 3: compress only the misses, in parallel. Codecs are stateless;
  // each miss writes only its own slot.
  struct StagedPayload {
    util::Bytes payload;
    bool compressed = false;
  };
  std::vector<StagedPayload> staged(miss_indices.size());
  ForEachIngest(miss_indices.size(), [&](std::size_t j) {
    const util::ByteSpan raw = blocks[miss_indices[j]];
    if (config_.codec != compress::CodecId::kNull) {
      util::Bytes compressed = codec_->Compress(raw);
      if (WorthKeeping(compressed.size(), raw.size())) {
        staged[j].payload = std::move(compressed);
        staged[j].compressed = true;
        return;
      }
    }
    staged[j].payload.assign(raw.begin(), raw.end());
  });

  // Stage 4: ordered commit. Allocate extents and update refcounts/stats in
  // input order; a batch-internal duplicate finds its first occurrence's
  // entry already inserted by the time it commits.
  std::size_t next_miss = 0;
  for (std::size_t i = 0; i < blocks.size(); ++i) {
    const util::Digest& digest = digests[i];
    if (!is_miss[i]) {
      auto it = entries_.find(digest);
      assert(it != entries_.end());
      ++it->second.refcount;
      ++stats_.total_refs;
      stats_.logical_referenced_bytes += it->second.logical_size;
      results[i] = {digest, true, it->second.logical_size, 0};
      continue;
    }

    StagedPayload& payload = staged[next_miss++];
    Entry entry;
    entry.logical_size = static_cast<std::uint32_t>(blocks[i].size());
    entry.refcount = 1;
    entry.payload = std::move(payload.payload);
    entry.compressed = payload.compressed;
    // Allocations occupy whole sectors (ZFS asize vs psize).
    entry.physical_size = static_cast<std::uint32_t>(
        util::AlignUp(entry.payload.size(), kSectorBytes));
    entry.disk_offset = space_map_.Allocate(entry.physical_size);

    stats_.unique_blocks += 1;
    stats_.total_refs += 1;
    stats_.logical_unique_bytes += entry.logical_size;
    stats_.logical_referenced_bytes += entry.logical_size;
    stats_.physical_data_bytes += entry.physical_size;
    if (config_.dedup) {
      stats_.ddt_disk_bytes += kDdtDiskBytesPerEntry;
      stats_.ddt_core_bytes += kDdtCoreBytesPerEntry;
    }

    results[i] = {digest, false, entry.logical_size, entry.physical_size};
    entries_.emplace(digest, std::move(entry));
  }
  return results;
}

void BlockStore::Ref(const util::Digest& digest) {
  Entry& entry = entries_.at(digest);
  ++entry.refcount;
  ++stats_.total_refs;
  stats_.logical_referenced_bytes += entry.logical_size;
}

void BlockStore::Unref(const util::Digest& digest) {
  auto it = entries_.find(digest);
  if (it == entries_.end()) throw std::out_of_range("unref of unknown block");
  Entry& entry = it->second;
  assert(entry.refcount > 0);
  --entry.refcount;
  --stats_.total_refs;
  stats_.logical_referenced_bytes -= entry.logical_size;
  if (entry.refcount == 0) {
    space_map_.Free(entry.disk_offset, entry.physical_size);
    stats_.unique_blocks -= 1;
    stats_.logical_unique_bytes -= entry.logical_size;
    stats_.physical_data_bytes -= entry.physical_size;
    if (config_.dedup) {
      stats_.ddt_disk_bytes -= kDdtDiskBytesPerEntry;
      stats_.ddt_core_bytes -= kDdtCoreBytesPerEntry;
    }
    entries_.erase(it);
  }
}

util::Bytes BlockStore::Get(const util::Digest& digest) const {
  const Entry& entry = entries_.at(digest);
  if (!entry.compressed) return entry.payload;
  return codec_->Decompress(entry.payload, entry.logical_size);
}

bool BlockStore::Contains(const util::Digest& digest) const {
  return entries_.contains(digest);
}

std::uint32_t BlockStore::RefCount(const util::Digest& digest) const {
  auto it = entries_.find(digest);
  return it == entries_.end() ? 0 : it->second.refcount;
}

bool BlockStore::Verify(const util::Digest& digest) const {
  const auto it = entries_.find(digest);
  if (it == entries_.end()) return false;
  if (!config_.dedup) return true;  // synthetic digests carry no content hash
  const Entry& entry = it->second;
  util::Bytes raw;
  if (entry.compressed) {
    try {
      raw = codec_->Decompress(entry.payload, entry.logical_size);
    } catch (const std::runtime_error&) {
      return false;  // corruption broke the compressed framing
    }
  } else {
    raw = entry.payload;
  }
  return ComputeDigest(raw) == digest;
}

bool BlockStore::CorruptPayloadForTesting(const util::Digest& digest) {
  auto it = entries_.find(digest);
  if (it == entries_.end() || it->second.payload.empty()) return false;
  it->second.payload[it->second.payload.size() / 2] ^= 0x40;
  return true;
}

std::uint64_t BlockStore::DiskOffset(const util::Digest& digest) const {
  return entries_.at(digest).disk_offset;
}

std::uint32_t BlockStore::PhysicalSize(const util::Digest& digest) const {
  return entries_.at(digest).physical_size;
}

}  // namespace squirrel::store
