#include "store/block_store.h"

#include <cassert>
#include <cstring>
#include <stdexcept>

namespace squirrel::store {
namespace {

// ZFS keeps a compressed copy only when it saves at least 12.5%.
bool WorthKeeping(std::size_t compressed, std::size_t raw) {
  return compressed + raw / 8 <= raw;
}

}  // namespace

BlockStore::BlockStore(BlockStoreConfig config)
    : config_(std::move(config)), codec_(compress::FindCodec(config_.codec)) {
  if (codec_ == nullptr) {
    throw std::invalid_argument("unknown codec: " + config_.codec);
  }
}

PutResult BlockStore::Put(util::ByteSpan raw) {
  assert(!raw.empty());
  assert(!util::IsAllZero(raw) && "holes must be elided by the volume layer");

  util::Digest digest;
  if (config_.dedup) {
    if (config_.fast_hash) {
      const util::Fast128 h = util::FastHash128(raw);
      std::memcpy(digest.bytes.data(), &h.lo, 8);
      std::memcpy(digest.bytes.data() + 8, &h.hi, 8);
    } else {
      digest = util::HashBlock(raw);
    }
    auto it = entries_.find(digest);
    if (it != entries_.end()) {
      ++it->second.refcount;
      ++stats_.total_refs;
      stats_.logical_referenced_bytes += it->second.logical_size;
      return {digest, true, it->second.logical_size, 0};
    }
  } else {
    // Dedup disabled: synthesize a unique key so every write allocates.
    const std::uint64_t id = fake_digest_counter_++;
    std::memcpy(digest.bytes.data(), &id, sizeof(id));
  }

  Entry entry;
  entry.logical_size = static_cast<std::uint32_t>(raw.size());
  entry.refcount = 1;
  util::Bytes compressed = codec_->Compress(raw);
  if (config_.codec != "null" && WorthKeeping(compressed.size(), raw.size())) {
    entry.payload = std::move(compressed);
    entry.compressed = true;
  } else {
    entry.payload.assign(raw.begin(), raw.end());
    entry.compressed = false;
  }
  // Allocations occupy whole sectors (ZFS asize vs psize).
  entry.physical_size = static_cast<std::uint32_t>(
      util::AlignUp(entry.payload.size(), kSectorBytes));
  entry.disk_offset = space_map_.Allocate(entry.physical_size);

  stats_.unique_blocks += 1;
  stats_.total_refs += 1;
  stats_.logical_unique_bytes += entry.logical_size;
  stats_.logical_referenced_bytes += entry.logical_size;
  stats_.physical_data_bytes += entry.physical_size;
  if (config_.dedup) {
    stats_.ddt_disk_bytes += kDdtDiskBytesPerEntry;
    stats_.ddt_core_bytes += kDdtCoreBytesPerEntry;
  }

  const PutResult result{digest, false, entry.logical_size, entry.physical_size};
  entries_.emplace(digest, std::move(entry));
  return result;
}

void BlockStore::Ref(const util::Digest& digest) {
  Entry& entry = entries_.at(digest);
  ++entry.refcount;
  ++stats_.total_refs;
  stats_.logical_referenced_bytes += entry.logical_size;
}

void BlockStore::Unref(const util::Digest& digest) {
  auto it = entries_.find(digest);
  if (it == entries_.end()) throw std::out_of_range("unref of unknown block");
  Entry& entry = it->second;
  assert(entry.refcount > 0);
  --entry.refcount;
  --stats_.total_refs;
  stats_.logical_referenced_bytes -= entry.logical_size;
  if (entry.refcount == 0) {
    space_map_.Free(entry.disk_offset, entry.physical_size);
    stats_.unique_blocks -= 1;
    stats_.logical_unique_bytes -= entry.logical_size;
    stats_.physical_data_bytes -= entry.physical_size;
    if (config_.dedup) {
      stats_.ddt_disk_bytes -= kDdtDiskBytesPerEntry;
      stats_.ddt_core_bytes -= kDdtCoreBytesPerEntry;
    }
    entries_.erase(it);
  }
}

util::Bytes BlockStore::Get(const util::Digest& digest) const {
  const Entry& entry = entries_.at(digest);
  if (!entry.compressed) return entry.payload;
  return codec_->Decompress(entry.payload, entry.logical_size);
}

bool BlockStore::Contains(const util::Digest& digest) const {
  return entries_.contains(digest);
}

std::uint32_t BlockStore::RefCount(const util::Digest& digest) const {
  auto it = entries_.find(digest);
  return it == entries_.end() ? 0 : it->second.refcount;
}

bool BlockStore::Verify(const util::Digest& digest) const {
  const auto it = entries_.find(digest);
  if (it == entries_.end()) return false;
  if (!config_.dedup) return true;  // synthetic digests carry no content hash
  const Entry& entry = it->second;
  util::Bytes raw;
  if (entry.compressed) {
    try {
      raw = codec_->Decompress(entry.payload, entry.logical_size);
    } catch (const std::runtime_error&) {
      return false;  // corruption broke the compressed framing
    }
  } else {
    raw = entry.payload;
  }
  util::Digest actual;
  if (config_.fast_hash) {
    const util::Fast128 h = util::FastHash128(raw);
    std::memcpy(actual.bytes.data(), &h.lo, 8);
    std::memcpy(actual.bytes.data() + 8, &h.hi, 8);
  } else {
    actual = util::HashBlock(raw);
  }
  return actual == digest;
}

bool BlockStore::CorruptPayloadForTesting(const util::Digest& digest) {
  auto it = entries_.find(digest);
  if (it == entries_.end() || it->second.payload.empty()) return false;
  it->second.payload[it->second.payload.size() / 2] ^= 0x40;
  return true;
}

std::uint64_t BlockStore::DiskOffset(const util::Digest& digest) const {
  return entries_.at(digest).disk_offset;
}

std::uint32_t BlockStore::PhysicalSize(const util::Digest& digest) const {
  return entries_.at(digest).physical_size;
}

}  // namespace squirrel::store
