#include "store/block_store.h"

#include <algorithm>
#include <cassert>
#include <cstring>
#include <stdexcept>
#include <unordered_set>

#include "util/fault_injector.h"

namespace squirrel::store {
namespace {

// ZFS keeps a compressed copy only when it saves at least 12.5%.
bool WorthKeeping(std::size_t compressed, std::size_t raw) {
  return compressed + raw / 8 <= raw;
}

}  // namespace

BlockStore::BlockStore(BlockStoreConfig config)
    : config_(config),
      codec_(&compress::GetCodec(config_.codec)),
      cache_(config_.read.cache_bytes) {
  const std::size_t ingest = config_.ingest.threads;
  const std::size_t read = config_.read.threads;
  if (ingest != 1 || read != 1) {
    // One pool serves both pipelines; 0 on either side means "one thread
    // per hardware thread" (ThreadPool resolves it).
    const std::size_t threads =
        (ingest == 0 || read == 0) ? 0 : std::max(ingest, read);
    pool_ = std::make_unique<util::ThreadPool>(threads);
  }
}

const BlockStore::Entry& BlockStore::RequireEntry(
    const util::Digest& digest) const {
  const auto it = entries_.find(digest);
  if (it == entries_.end()) throw NoSuchBlockError(digest);
  return it->second;
}

util::Digest BlockStore::ComputeDigest(util::ByteSpan raw) const {
  if (config_.fast_hash) {
    util::Digest digest;
    const util::Fast128 h = util::FastHash128(raw);
    std::memcpy(digest.bytes.data(), &h.lo, 8);
    std::memcpy(digest.bytes.data() + 8, &h.hi, 8);
    return digest;
  }
  return util::HashBlock(raw);
}

void BlockStore::ForEachIngest(std::size_t count,
                               const std::function<void(std::size_t)>& fn) {
  if (pool_ == nullptr || config_.ingest.threads == 1 || count < 2) {
    for (std::size_t i = 0; i < count; ++i) fn(i);
    return;
  }
  pool_->ParallelFor(count, fn);
}

void BlockStore::ForEachRead(
    std::size_t count, const std::function<void(std::size_t)>& fn) const {
  if (pool_ == nullptr || config_.read.threads == 1 || count < 2) {
    for (std::size_t i = 0; i < count; ++i) fn(i);
    return;
  }
  pool_->ParallelFor(count, fn);
}

PutResult BlockStore::Put(util::ByteSpan raw) {
  const util::ByteSpan one[1] = {raw};
  return PutBatch(one)[0];
}

std::vector<PutResult> BlockStore::PutBatch(
    std::span<const util::ByteSpan> blocks) {
  std::vector<PutResult> results(blocks.size());
  if (blocks.empty()) return results;

  // Stage 1: digest every block in parallel. Content hashing is one of the
  // two CPU-bound pieces of the write path; it reads only the input spans,
  // so every block hashes independently.
  std::vector<util::Digest> digests(blocks.size());
  if (config_.dedup) {
    ForEachIngest(blocks.size(), [&](std::size_t i) {
      assert(!blocks[i].empty());
      assert(!util::IsAllZero(blocks[i]) &&
             "holes must be elided by the volume layer");
      digests[i] = ComputeDigest(blocks[i]);
    });
  } else {
    // Dedup disabled: synthesize unique keys in input order so every write
    // allocates, exactly as the serial loop numbered them.
    for (std::size_t i = 0; i < blocks.size(); ++i) {
      assert(!blocks[i].empty());
      assert(!util::IsAllZero(blocks[i]) &&
             "holes must be elided by the volume layer");
      const std::uint64_t id = fake_digest_counter_++;
      std::memcpy(digests[i].bytes.data(), &id, sizeof(id));
    }
  }

  // Stage 2: ordered dedup resolution. Classify each block against the DDT
  // and against earlier blocks of this batch, in input order — the same
  // decisions the serial loop would make, so refcounts and allocation order
  // stay bit-identical.
  std::vector<std::uint8_t> is_miss(blocks.size(), 0);
  std::vector<std::size_t> miss_indices;
  if (config_.dedup) {
    std::unordered_map<util::Digest, std::size_t, util::DigestHasher>
        batch_first;
    for (std::size_t i = 0; i < blocks.size(); ++i) {
      if (entries_.contains(digests[i]) || batch_first.contains(digests[i])) {
        continue;  // refcount bump, resolved in stage 4
      }
      batch_first.emplace(digests[i], i);
      is_miss[i] = 1;
      miss_indices.push_back(i);
    }
  } else {
    miss_indices.resize(blocks.size());
    for (std::size_t i = 0; i < blocks.size(); ++i) {
      is_miss[i] = 1;
      miss_indices[i] = i;
    }
  }

  // Stage 3: compress only the misses, in parallel. Codecs are stateless;
  // each miss writes only its own slot.
  struct StagedPayload {
    util::Bytes payload;
    bool compressed = false;
  };
  std::vector<StagedPayload> staged(miss_indices.size());
  ForEachIngest(miss_indices.size(), [&](std::size_t j) {
    const util::ByteSpan raw = blocks[miss_indices[j]];
    if (config_.codec != compress::CodecId::kNull) {
      util::Bytes compressed = codec_->Compress(raw);
      if (WorthKeeping(compressed.size(), raw.size())) {
        staged[j].payload = std::move(compressed);
        staged[j].compressed = true;
        return;
      }
    }
    staged[j].payload.assign(raw.begin(), raw.end());
  });

  // Stage 4: ordered commit. Allocate extents and update refcounts/stats in
  // input order; a batch-internal duplicate finds its first occurrence's
  // entry already inserted by the time it commits.
  std::size_t next_miss = 0;
  for (std::size_t i = 0; i < blocks.size(); ++i) {
    const util::Digest& digest = digests[i];
    if (!is_miss[i]) {
      auto it = entries_.find(digest);
      assert(it != entries_.end());
      ++it->second.refcount;
      ++stats_.total_refs;
      stats_.logical_referenced_bytes += it->second.logical_size;
      results[i] = {digest, true, it->second.logical_size, 0};
      continue;
    }

    StagedPayload& payload = staged[next_miss++];
    Entry entry;
    entry.logical_size = static_cast<std::uint32_t>(blocks[i].size());
    entry.refcount = 1;
    entry.payload = std::move(payload.payload);
    entry.compressed = payload.compressed;
    // Allocations occupy whole sectors (ZFS asize vs psize).
    entry.physical_size = static_cast<std::uint32_t>(
        util::AlignUp(entry.payload.size(), kSectorBytes));
    entry.disk_offset = space_map_.Allocate(entry.physical_size);

    stats_.unique_blocks += 1;
    stats_.total_refs += 1;
    stats_.logical_unique_bytes += entry.logical_size;
    stats_.logical_referenced_bytes += entry.logical_size;
    stats_.physical_data_bytes += entry.physical_size;
    if (config_.dedup) {
      stats_.ddt_disk_bytes += kDdtDiskBytesPerEntry;
      stats_.ddt_core_bytes += kDdtCoreBytesPerEntry;
    }

    results[i] = {digest, false, entry.logical_size, entry.physical_size};
    entries_.emplace(digest, std::move(entry));
  }
  return results;
}

void BlockStore::Ref(const util::Digest& digest) {
  auto it = entries_.find(digest);
  if (it == entries_.end()) throw NoSuchBlockError(digest);
  Entry& entry = it->second;
  ++entry.refcount;
  ++stats_.total_refs;
  stats_.logical_referenced_bytes += entry.logical_size;
}

void BlockStore::Unref(const util::Digest& digest) {
  auto it = entries_.find(digest);
  if (it == entries_.end()) throw NoSuchBlockError(digest);
  Entry& entry = it->second;
  assert(entry.refcount > 0);
  --entry.refcount;
  --stats_.total_refs;
  stats_.logical_referenced_bytes -= entry.logical_size;
  if (entry.refcount == 0) {
    space_map_.Free(entry.disk_offset, entry.physical_size);
    stats_.unique_blocks -= 1;
    stats_.logical_unique_bytes -= entry.logical_size;
    stats_.physical_data_bytes -= entry.physical_size;
    if (config_.dedup) {
      stats_.ddt_disk_bytes -= kDdtDiskBytesPerEntry;
      stats_.ddt_core_bytes -= kDdtCoreBytesPerEntry;
    }
    entries_.erase(it);
  }
}

util::Bytes BlockStore::Get(const util::Digest& digest) const {
  const util::Digest one[1] = {digest};
  return std::move(GetBatch(one)[0]);
}

std::vector<util::Bytes> BlockStore::GetBatch(
    std::span<const util::Digest> digests) const {
  std::vector<util::Bytes> results(digests.size());
  if (digests.empty()) return results;

  // Validate every digest up front, in input order, before any cache
  // mutation — a serial Get loop would throw at the first unknown digest.
  std::vector<const Entry*> lookup(digests.size());
  for (std::size_t i = 0; i < digests.size(); ++i) {
    lookup[i] = &RequireEntry(digests[i]);
  }

  struct Miss {
    std::size_t index;         // result slot to decompress into
    const Entry* entry;
  };
  std::vector<Miss> misses;
  // (dst, src): result slots aliasing an earlier occurrence of the same
  // digest whose decompression is still in flight this batch.
  std::vector<std::pair<std::size_t, std::size_t>> aliases;

  {
    // Stage 1: ordered classification. Cache Lookup/Admit happen here in
    // input order — the exact sequence a serial Get loop would issue — so
    // ARC state and hit/miss counters are bit-identical to serial at any
    // thread count.
    std::lock_guard<std::mutex> lock(read_mutex_);
    blocks_requested_ += digests.size();
    std::unordered_map<util::Digest, std::size_t, util::DigestHasher>
        batch_first;
    for (std::size_t i = 0; i < digests.size(); ++i) {
      const Entry* entry = lookup[i];
      if (!entry->compressed) {
        // Stored raw: a copy either way, so the ARC is bypassed entirely.
        ++raw_blocks_;
        misses.push_back({i, entry});
        continue;
      }
      if (cache_.enabled()) {
        switch (cache_.Lookup(digests[i], &results[i])) {
          case BlockCache::Outcome::kHit:
            continue;
          case BlockCache::Outcome::kPending: {
            // Resident but still decompressing earlier in this batch; a
            // serial loop would hit here, and counters already say so. (If
            // the pending fill belongs to a concurrent batch instead, just
            // decompress locally too — content-addressing keeps it exact.)
            const auto first = batch_first.find(digests[i]);
            if (first != batch_first.end()) {
              aliases.emplace_back(i, first->second);
            } else {
              misses.push_back({i, entry});
            }
            continue;
          }
          case BlockCache::Outcome::kMiss:
            cache_.Admit(digests[i], entry->logical_size);
            batch_first[digests[i]] = i;
            misses.push_back({i, entry});
            continue;
        }
      }
      // Cache disabled: still decompress each distinct digest only once per
      // batch (payloads are content-addressed, so aliasing is exact).
      const auto first = batch_first.find(digests[i]);
      if (first != batch_first.end()) {
        aliases.emplace_back(i, first->second);
      } else {
        batch_first[digests[i]] = i;
        misses.push_back({i, entry});
      }
    }
  }

  // Stage 2: decompress the misses in parallel. Codecs are stateless and
  // each miss writes only its own result slot. With verification enabled
  // each miss also re-hashes its decompressed payload (once per physical
  // block — intra-batch duplicates alias, cache hits were verified when
  // filled); a mismatch or broken compressed framing marks the slot corrupt
  // instead of throwing here, so the error surfaces deterministically below.
  const bool verify = config_.read.verify_reads && config_.dedup;
  std::vector<std::uint8_t> corrupt(misses.size(), 0);
  ForEachRead(misses.size(), [&](std::size_t j) {
    const Miss& miss = misses[j];
    if (!miss.entry->compressed) {
      results[miss.index] = miss.entry->payload;
    } else {
      try {
        results[miss.index] =
            codec_->Decompress(miss.entry->payload, miss.entry->logical_size);
      } catch (const std::runtime_error&) {
        corrupt[j] = 1;  // corruption broke the compressed framing
        return;
      }
    }
    if (verify && ComputeDigest(results[miss.index]) != digests[miss.index]) {
      corrupt[j] = 1;
    }
  });

  // Stage 3: ordered install — fill the cache and commit read accounting,
  // then resolve intra-batch aliases. On corruption, throw at the first
  // corrupt block in *input* order (misses are classified in input order),
  // so the failing digest is identical at any thread count. Good payloads
  // before it are installed; admitted-but-unfilled entries after it simply
  // drop out of the ARC. Corrupt payloads never enter the cache.
  {
    std::lock_guard<std::mutex> lock(read_mutex_);
    for (std::size_t j = 0; j < misses.size(); ++j) {
      const Miss& miss = misses[j];
      if (corrupt[j]) throw BlockCorruptionError(digests[miss.index]);
      if (!miss.entry->compressed) continue;
      ++decompressed_blocks_;
      decompressed_bytes_ += miss.entry->logical_size;
      if (cache_.enabled()) {
        cache_.Fill(digests[miss.index], results[miss.index]);
      }
    }
  }
  for (const auto& [dst, src] : aliases) {
    results[dst] = results[src];
  }
  return results;
}

std::uint64_t BlockStore::WarmCache(
    std::span<const util::Digest> digests) const {
  // Dedup first: re-reading a digest inside one warm pass buys nothing and
  // would distort the ARC's recency order.
  std::vector<util::Digest> unique;
  unique.reserve(digests.size());
  {
    std::unordered_set<util::Digest, util::DigestHasher> seen;
    for (const util::Digest& digest : digests) {
      if (!entries_.contains(digest)) continue;  // advisory: skip unknowns
      if (seen.insert(digest).second) unique.push_back(digest);
    }
  }
  const std::size_t round =
      std::max<std::size_t>(std::size_t{1}, config_.ingest.batch_blocks);
  std::uint64_t warmed = 0;
  for (std::size_t start = 0; start < unique.size(); start += round) {
    const std::span<const util::Digest> chunk(
        unique.data() + start, std::min(round, unique.size() - start));
    try {
      GetBatch(chunk);
      warmed += chunk.size();
    } catch (const BlockCorruptionError&) {
      // A corrupt block poisons its round; retry one-by-one so the healthy
      // blocks still warm. Corrupt ones stay cold for the demand path
      // (which verifies, and heals when a repair source is armed).
      for (const util::Digest& digest : chunk) {
        try {
          Get(digest);
          ++warmed;
        } catch (const BlockCorruptionError&) {
        }
      }
    }
  }
  return warmed;
}

bool BlockStore::Contains(const util::Digest& digest) const {
  return entries_.contains(digest);
}

std::uint32_t BlockStore::RefCount(const util::Digest& digest) const {
  auto it = entries_.find(digest);
  return it == entries_.end() ? 0 : it->second.refcount;
}

bool BlockStore::Verify(const util::Digest& digest) const {
  const auto it = entries_.find(digest);
  if (it == entries_.end()) return false;
  if (!config_.dedup) return true;  // synthetic digests carry no content hash
  const Entry& entry = it->second;
  util::Bytes raw;
  if (entry.compressed) {
    try {
      raw = codec_->Decompress(entry.payload, entry.logical_size);
    } catch (const std::runtime_error&) {
      return false;  // corruption broke the compressed framing
    }
  } else {
    raw = entry.payload;
  }
  return ComputeDigest(raw) == digest;
}

std::vector<std::uint8_t> BlockStore::VerifyBatch(
    std::span<const util::Digest> digests) const {
  std::vector<std::uint8_t> ok(digests.size(), 0);
  // Verify is read-only (and bypasses the ARC), so every digest checks
  // independently; outcomes are position-wise identical to a serial loop.
  ForEachRead(digests.size(),
              [&](std::size_t i) { ok[i] = Verify(digests[i]) ? 1 : 0; });
  return ok;
}

void BlockStore::ResizeCache(std::uint64_t bytes) {
  std::lock_guard<std::mutex> lock(read_mutex_);
  cache_.Resize(bytes);
  config_.read.cache_bytes = bytes;
}

bool BlockStore::CachedDecompressed(const util::Digest& digest) const {
  std::lock_guard<std::mutex> lock(read_mutex_);
  return cache_.ResidentPayload(digest);
}

std::vector<std::uint8_t> BlockStore::CachedDecompressedBatch(
    std::span<const util::Digest> digests) const {
  std::vector<std::uint8_t> resident(digests.size(), 0);
  std::lock_guard<std::mutex> lock(read_mutex_);
  for (std::size_t i = 0; i < digests.size(); ++i) {
    resident[i] = cache_.ResidentPayload(digests[i]) ? 1 : 0;
  }
  return resident;
}

bool BlockStore::Repair(const util::Digest& digest, util::ByteSpan raw) {
  auto it = entries_.find(digest);
  if (it == entries_.end()) return false;
  if (config_.dedup && ComputeDigest(raw) != digest) return false;
  Entry& entry = it->second;
  if (raw.size() != entry.logical_size) return false;

  util::Bytes payload;
  bool compressed = false;
  if (config_.codec != compress::CodecId::kNull) {
    util::Bytes candidate = codec_->Compress(raw);
    if (WorthKeeping(candidate.size(), raw.size())) {
      payload = std::move(candidate);
      compressed = true;
    }
  }
  if (!compressed) payload.assign(raw.begin(), raw.end());

  // Bit flips leave sizes intact — re-compressing identical content with the
  // (deterministic) codec reproduces the original extent, so the common case
  // touches no allocation state. Guard the general case anyway so SpaceMap
  // and physical accounting stay coherent if the damaged entry recorded a
  // different size.
  const auto physical = static_cast<std::uint32_t>(
      util::AlignUp(payload.size(), kSectorBytes));
  if (physical != entry.physical_size) {
    space_map_.Free(entry.disk_offset, entry.physical_size);
    entry.disk_offset = space_map_.Allocate(physical);
    stats_.physical_data_bytes += physical;
    stats_.physical_data_bytes -= entry.physical_size;
    entry.physical_size = physical;
  }
  entry.payload = std::move(payload);
  entry.compressed = compressed;
  return true;
}

std::size_t BlockStore::InjectFaults(util::FaultInjector& faults) {
  std::size_t corrupted = 0;
  // Iteration order is irrelevant: each block's outcome depends only on the
  // injector seed and its digest.
  for (auto& [digest, entry] : entries_) {
    if (entry.payload.empty()) continue;
    if (faults.CorruptBlock(
            digest, util::MutableByteSpan(entry.payload.data(),
                                          entry.payload.size()))) {
      ++corrupted;
    }
  }
  return corrupted;
}

ReadStats BlockStore::read_stats() const {
  std::lock_guard<std::mutex> lock(read_mutex_);
  ReadStats stats;
  stats.blocks_requested = blocks_requested_;
  stats.cache_hits = cache_.hits();
  stats.cache_misses = cache_.misses();
  stats.raw_blocks = raw_blocks_;
  stats.decompressed_blocks = decompressed_blocks_;
  stats.decompressed_bytes = decompressed_bytes_;
  stats.cached_bytes = cache_.resident_bytes();
  stats.cache_capacity_bytes = cache_.capacity_bytes();
  return stats;
}

bool BlockStore::CorruptPayloadForTesting(const util::Digest& digest) {
  auto it = entries_.find(digest);
  if (it == entries_.end() || it->second.payload.empty()) return false;
  it->second.payload[it->second.payload.size() / 2] ^= 0x40;
  return true;
}

std::uint64_t BlockStore::DiskOffset(const util::Digest& digest) const {
  return RequireEntry(digest).disk_offset;
}

std::uint32_t BlockStore::PhysicalSize(const util::Digest& digest) const {
  return RequireEntry(digest).physical_size;
}

}  // namespace squirrel::store
