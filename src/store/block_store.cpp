#include "store/block_store.h"

#include <algorithm>
#include <cassert>
#include <cstring>
#include <exception>
#include <limits>
#include <stdexcept>
#include <unordered_set>

#include "util/fault_injector.h"

namespace squirrel::store {
namespace {

// ZFS keeps a compressed copy only when it saves at least 12.5%.
bool WorthKeeping(std::size_t compressed, std::size_t raw) {
  return compressed + raw / 8 <= raw;
}

/// Per-stripe slice of the cache byte budget: an even split with the
/// remainder spread over the lowest stripes, so the slices always sum to
/// the configured total and shards == 1 gets the whole budget.
std::uint64_t StripeBudget(std::uint64_t total, std::size_t stripes,
                           std::size_t index) {
  return total / stripes + (index < total % stripes ? 1 : 0);
}

/// Input indices grouped by shard, input order preserved within each group.
/// order[begin[s] .. begin[s+1]) are the indices owned by shard s; `active`
/// lists the shards with at least one index (the unit of per-shard
/// parallelism).
struct ShardPartition {
  std::vector<std::size_t> order;
  std::vector<std::size_t> begin;   // shards + 1 prefix offsets
  std::vector<std::size_t> active;
};

ShardPartition PartitionByShard(std::span<const util::Digest> digests,
                                std::size_t shard_count,
                                unsigned shard_shift) {
  ShardPartition part;
  part.begin.assign(shard_count + 1, 0);
  std::vector<std::uint8_t> shard_of(digests.size());
  for (std::size_t i = 0; i < digests.size(); ++i) {
    shard_of[i] =
        static_cast<std::uint8_t>(digests[i].bytes[0] >> shard_shift);
    ++part.begin[shard_of[i] + 1];
  }
  for (std::size_t s = 0; s < shard_count; ++s) {
    if (part.begin[s + 1] > 0) part.active.push_back(s);
    part.begin[s + 1] += part.begin[s];
  }
  part.order.resize(digests.size());
  std::vector<std::size_t> cursor(part.begin.begin(), part.begin.end() - 1);
  for (std::size_t i = 0; i < digests.size(); ++i) {
    part.order[cursor[shard_of[i]]++] = i;
  }
  return part;
}

}  // namespace

BlockStore::BlockStore(BlockStoreConfig config)
    : config_(config), codec_(&compress::GetCodec(config_.codec)) {
  const std::size_t n = config_.shards;
  if (n == 0 || n > 256 || (n & (n - 1)) != 0) {
    throw std::invalid_argument(
        "BlockStoreConfig::shards must be a power of two in [1, 256]");
  }
  shard_shift_ = 8;
  for (std::size_t v = n; v > 1; v >>= 1) --shard_shift_;
  shards_.reserve(n);
  stripes_.reserve(n);
  for (std::size_t s = 0; s < n; ++s) {
    shards_.push_back(std::make_unique<Shard>());
    // Capacity splits like the cache budget; 0 total leaves every shard
    // unlimited. A nonzero total must cap *every* shard, so a slice that
    // rounds to zero is clamped to one (unallocatable) byte.
    if (config_.capacity_bytes != 0) {
      shards_.back()->space_map.SetCapacity(std::max<std::uint64_t>(
          std::uint64_t{1}, StripeBudget(config_.capacity_bytes, n, s)));
    }
    stripes_.push_back(std::make_unique<CacheStripe>(
        StripeBudget(config_.read.cache_bytes, n, s)));
  }
  const std::size_t ingest = config_.ingest.threads;
  const std::size_t read = config_.read.threads;
  if (ingest != 1 || read != 1) {
    // One pool serves both pipelines; 0 on either side means "one thread
    // per hardware thread" (ThreadPool resolves it).
    const std::size_t threads =
        (ingest == 0 || read == 0) ? 0 : std::max(ingest, read);
    pool_ = std::make_unique<util::ThreadPool>(threads);
  }
}

util::Digest BlockStore::ComputeDigest(util::ByteSpan raw) const {
  if (config_.fast_hash) {
    util::Digest digest;
    const util::Fast128 h = util::FastHash128(raw);
    std::memcpy(digest.bytes.data(), &h.lo, 8);
    std::memcpy(digest.bytes.data() + 8, &h.hi, 8);
    return digest;
  }
  return util::HashBlock(raw);
}

void BlockStore::ForEachIngest(std::size_t count,
                               const std::function<void(std::size_t)>& fn) {
  if (pool_ == nullptr || config_.ingest.threads == 1 || count < 2) {
    for (std::size_t i = 0; i < count; ++i) fn(i);
    return;
  }
  pool_->ParallelFor(count, fn);
}

void BlockStore::ForEachRead(
    std::size_t count, const std::function<void(std::size_t)>& fn) const {
  if (pool_ == nullptr || config_.read.threads == 1 || count < 2) {
    for (std::size_t i = 0; i < count; ++i) fn(i);
    return;
  }
  pool_->ParallelFor(count, fn);
}

PutResult BlockStore::Put(util::ByteSpan raw) {
  const util::ByteSpan one[1] = {raw};
  return PutBatch(one)[0];
}

std::vector<PutResult> BlockStore::PutBatch(
    std::span<const util::ByteSpan> blocks) {
  std::vector<PutResult> results(blocks.size());
  if (blocks.empty()) return results;

  // Stage 1: digest every block in parallel. Content hashing is one of the
  // two CPU-bound pieces of the write path; it reads only the input spans,
  // so every block hashes independently.
  std::vector<util::Digest> digests(blocks.size());
  if (config_.dedup) {
    ForEachIngest(blocks.size(), [&](std::size_t i) {
      assert(!blocks[i].empty());
      assert(!util::IsAllZero(blocks[i]) &&
             "holes must be elided by the volume layer");
      digests[i] = ComputeDigest(blocks[i]);
    });
  } else {
    // Dedup disabled: synthesize unique keys in input order so every write
    // allocates, exactly as the serial loop numbered them. One atomic
    // reservation per batch keeps concurrent batches collision-free while
    // a serial caller still sees consecutive ids.
    const std::uint64_t base =
        fake_digest_counter_.fetch_add(blocks.size(),
                                       std::memory_order_relaxed);
    for (std::size_t i = 0; i < blocks.size(); ++i) {
      assert(!blocks[i].empty());
      assert(!util::IsAllZero(blocks[i]) &&
             "holes must be elided by the volume layer");
      const std::uint64_t id = base + i;
      std::memcpy(digests[i].bytes.data(), &id, sizeof(id));
    }
  }

  const ShardPartition part =
      PartitionByShard(digests, shards_.size(), shard_shift_);

  // Stage 2: per-shard ordered dedup resolution. Each shard classifies its
  // slice of the batch against its DDT partition and against earlier
  // occurrences within the batch, in input order under the shard lock —
  // the same decisions a serial loop would make for those digests, so
  // refcounts and per-shard allocation order stay bit-identical. Shards
  // share no state, so the passes run concurrently on the pool.
  std::vector<std::uint8_t> is_miss(blocks.size(), 0);
  if (config_.dedup) {
    ForEachIngest(part.active.size(), [&](std::size_t k) {
      const std::size_t s = part.active[k];
      Shard& shard = *shards_[s];
      std::lock_guard<std::mutex> lock(shard.mutex);
      std::unordered_set<util::Digest, util::DigestHasher> batch_first;
      for (std::size_t p = part.begin[s]; p < part.begin[s + 1]; ++p) {
        const std::size_t i = part.order[p];
        if (shard.entries.contains(digests[i]) ||
            batch_first.contains(digests[i])) {
          continue;  // refcount bump, resolved in stage 4
        }
        batch_first.insert(digests[i]);
        is_miss[i] = 1;
      }
    });
  } else {
    for (std::size_t i = 0; i < blocks.size(); ++i) is_miss[i] = 1;
  }

  // Misses grouped by shard (input order within each shard), so stage 4 can
  // consume each shard's staged payloads contiguously.
  std::vector<std::size_t> miss_indices;
  std::vector<std::size_t> miss_begin(part.active.size() + 1, 0);
  for (std::size_t k = 0; k < part.active.size(); ++k) {
    const std::size_t s = part.active[k];
    for (std::size_t p = part.begin[s]; p < part.begin[s + 1]; ++p) {
      if (is_miss[part.order[p]]) miss_indices.push_back(part.order[p]);
    }
    miss_begin[k + 1] = miss_indices.size();
  }

  // Stage 3: compress only the misses, in parallel across the whole batch
  // (work steals across shards). Codecs are stateless; each miss writes
  // only its own slot.
  struct StagedPayload {
    util::Bytes payload;
    bool compressed = false;
  };
  std::vector<StagedPayload> staged(miss_indices.size());
  ForEachIngest(miss_indices.size(), [&](std::size_t j) {
    const util::ByteSpan raw = blocks[miss_indices[j]];
    if (config_.codec != compress::CodecId::kNull) {
      util::Bytes compressed = codec_->Compress(raw);
      if (WorthKeeping(compressed.size(), raw.size())) {
        staged[j].payload = std::move(compressed);
        staged[j].compressed = true;
        return;
      }
    }
    staged[j].payload.assign(raw.begin(), raw.end());
  });

  // Stage 4: per-shard ordered commit. Each shard allocates extents from
  // its own arena and updates refcounts/stats in input order under the
  // shard lock; a batch-internal duplicate finds its first occurrence's
  // entry already inserted by the time it commits. A miss whose digest was
  // inserted by a concurrent batch between classify and commit degrades to
  // a dedup hit (the staged payload is discarded) — content addressing
  // makes either copy equally valid.
  //
  // The stage is all-or-nothing: a shard that hits NoSpaceError (capacity)
  // or an armed store/commit crash site records the failure instead of
  // letting the exception cross ParallelFor; if any shard failed, every
  // committed position across all shards is undone in reverse (within-shard
  // reverse restores each SpaceMap bump pointer exactly — freeing the
  // last-allocated extent triggers the high-water shrink) and the first
  // failure in shard order is rethrown. With a fault injector set the shard
  // passes run serialized in shard order so the injector's crash-site
  // counter advances deterministically; benches never arm a store injector.
  std::vector<std::size_t> committed(part.active.size(), 0);
  std::vector<std::exception_ptr> failed(part.active.size(), nullptr);
  const auto commit_shard = [&](std::size_t k) {
    const std::size_t s = part.active[k];
    Shard& shard = *shards_[s];
    std::lock_guard<std::mutex> lock(shard.mutex);
    std::size_t next_miss = miss_begin[k];
    for (std::size_t p = part.begin[s]; p < part.begin[s + 1]; ++p) {
      const std::size_t i = part.order[p];
      const util::Digest& digest = digests[i];
      try {
        if (faults_ != nullptr) faults_->CrashPointArmedOnly("store/commit");
        auto it = shard.entries.find(digest);
        if (!is_miss[i] || it != shard.entries.end()) {
          if (is_miss[i]) ++next_miss;  // staged for a lost race; discard
          assert(it != shard.entries.end());
          ++it->second.refcount;
          ++shard.stats.total_refs;
          shard.stats.logical_referenced_bytes += it->second.logical_size;
          results[i] = {digest, true, it->second.logical_size, 0};
        } else {
          StagedPayload& payload = staged[next_miss];
          Entry entry;
          entry.logical_size = static_cast<std::uint32_t>(blocks[i].size());
          entry.refcount = 1;
          entry.payload = std::move(payload.payload);
          entry.compressed = payload.compressed;
          // Allocations occupy whole sectors (ZFS asize vs psize).
          entry.physical_size = static_cast<std::uint32_t>(
              util::AlignUp(entry.payload.size(), kSectorBytes));
          entry.disk_offset = shard.space_map.Allocate(entry.physical_size);
          ++next_miss;

          shard.stats.unique_blocks += 1;
          shard.stats.total_refs += 1;
          shard.stats.logical_unique_bytes += entry.logical_size;
          shard.stats.logical_referenced_bytes += entry.logical_size;
          shard.stats.physical_data_bytes += entry.physical_size;
          if (config_.dedup) {
            shard.stats.ddt_disk_bytes += kDdtDiskBytesPerEntry;
            shard.stats.ddt_core_bytes += kDdtCoreBytesPerEntry;
          }

          results[i] = {digest, false, entry.logical_size,
                        entry.physical_size};
          shard.entries.emplace(digest, std::move(entry));
        }
      } catch (const NoSpaceError&) {
        if (faults_ != nullptr) faults_->RecordAllocationRefused();
        failed[k] = std::current_exception();
        break;
      } catch (const util::CrashError&) {
        failed[k] = std::current_exception();
        break;
      }
      ++committed[k];
    }
  };
  if (faults_ != nullptr) {
    for (std::size_t k = 0; k < part.active.size(); ++k) commit_shard(k);
  } else {
    ForEachIngest(part.active.size(), commit_shard);
  }

  bool any_failed = false;
  for (const std::exception_ptr& e : failed) {
    if (e != nullptr) any_failed = true;
  }
  if (any_failed) {
    // Unwind every committed position. A hit undoes its refcount bump; a
    // miss (refcount back at zero) frees its extent and erases the entry —
    // the exact inverse of Unref-to-zero.
    for (std::size_t k = part.active.size(); k-- > 0;) {
      const std::size_t s = part.active[k];
      Shard& shard = *shards_[s];
      std::lock_guard<std::mutex> lock(shard.mutex);
      for (std::size_t c = committed[k]; c-- > 0;) {
        const std::size_t i = part.order[part.begin[s] + c];
        auto it = shard.entries.find(digests[i]);
        assert(it != shard.entries.end());
        Entry& entry = it->second;
        --entry.refcount;
        --shard.stats.total_refs;
        shard.stats.logical_referenced_bytes -= entry.logical_size;
        if (entry.refcount == 0) {
          shard.space_map.Free(entry.disk_offset, entry.physical_size);
          shard.stats.unique_blocks -= 1;
          shard.stats.logical_unique_bytes -= entry.logical_size;
          shard.stats.physical_data_bytes -= entry.physical_size;
          if (config_.dedup) {
            shard.stats.ddt_disk_bytes -= kDdtDiskBytesPerEntry;
            shard.stats.ddt_core_bytes -= kDdtCoreBytesPerEntry;
          }
          shard.entries.erase(it);
        }
      }
    }
    for (std::size_t k = 0; k < part.active.size(); ++k) {
      if (failed[k] != nullptr) std::rethrow_exception(failed[k]);
    }
  }
  return results;
}

void BlockStore::Ref(const util::Digest& digest) {
  Shard& shard = *shards_[ShardOf(digest)];
  std::lock_guard<std::mutex> lock(shard.mutex);
  auto it = shard.entries.find(digest);
  if (it == shard.entries.end()) throw NoSuchBlockError(digest);
  Entry& entry = it->second;
  ++entry.refcount;
  ++shard.stats.total_refs;
  shard.stats.logical_referenced_bytes += entry.logical_size;
}

void BlockStore::Unref(const util::Digest& digest) {
  Shard& shard = *shards_[ShardOf(digest)];
  std::lock_guard<std::mutex> lock(shard.mutex);
  auto it = shard.entries.find(digest);
  if (it == shard.entries.end()) throw NoSuchBlockError(digest);
  Entry& entry = it->second;
  assert(entry.refcount > 0);
  --entry.refcount;
  --shard.stats.total_refs;
  shard.stats.logical_referenced_bytes -= entry.logical_size;
  if (entry.refcount == 0) {
    shard.space_map.Free(entry.disk_offset, entry.physical_size);
    shard.stats.unique_blocks -= 1;
    shard.stats.logical_unique_bytes -= entry.logical_size;
    shard.stats.physical_data_bytes -= entry.physical_size;
    if (config_.dedup) {
      shard.stats.ddt_disk_bytes -= kDdtDiskBytesPerEntry;
      shard.stats.ddt_core_bytes -= kDdtCoreBytesPerEntry;
    }
    shard.entries.erase(it);
  }
}

util::Bytes BlockStore::Get(const util::Digest& digest) const {
  const util::Digest one[1] = {digest};
  return std::move(GetBatch(one)[0]);
}

util::Bytes BlockStore::GetUncached(const util::Digest& digest) const {
  // Snapshot the stored payload under the shard lock, decompress outside it.
  // No ARC interaction at all: the rollback path this serves must not
  // disturb cache state or read counters.
  util::Bytes payload;
  std::uint32_t logical_size = 0;
  bool compressed = false;
  {
    const Shard& shard = *shards_[ShardOf(digest)];
    std::lock_guard<std::mutex> lock(shard.mutex);
    const auto it = shard.entries.find(digest);
    if (it == shard.entries.end()) throw NoSuchBlockError(digest);
    payload = it->second.payload;
    logical_size = it->second.logical_size;
    compressed = it->second.compressed;
  }
  util::Bytes raw;
  if (compressed) {
    try {
      raw = codec_->Decompress(payload, logical_size);
    } catch (const std::runtime_error&) {
      throw BlockCorruptionError(digest);
    }
  } else {
    raw = std::move(payload);
  }
  if (config_.dedup && ComputeDigest(raw) != digest) {
    throw BlockCorruptionError(digest);
  }
  return raw;
}

std::vector<util::Bytes> BlockStore::GetBatch(
    std::span<const util::Digest> digests) const {
  std::vector<util::Bytes> results(digests.size());
  if (digests.empty()) return results;
  GetBatchImpl(digests, &results, /*warm=*/false);
  return results;
}

void BlockStore::GetBatchImpl(std::span<const util::Digest> digests,
                              std::vector<util::Bytes>* results,
                              bool warm) const {
  const ShardPartition part =
      PartitionByShard(digests, shards_.size(), shard_shift_);

  // Resolve every digest against its shard's DDT partition first, then
  // validate in input order before any cache mutation — a serial Get loop
  // would throw at the first unknown digest. Entry pointers stay valid
  // across the stages: the DDT maps are node-based and callers must hold a
  // reference to every block they read (no concurrent erase).
  std::vector<const Entry*> lookup(digests.size(), nullptr);
  ForEachRead(part.active.size(), [&](std::size_t k) {
    const std::size_t s = part.active[k];
    const Shard& shard = *shards_[s];
    std::lock_guard<std::mutex> lock(shard.mutex);
    for (std::size_t p = part.begin[s]; p < part.begin[s + 1]; ++p) {
      const std::size_t i = part.order[p];
      const auto it = shard.entries.find(digests[i]);
      if (it != shard.entries.end()) lookup[i] = &it->second;
    }
  });
  for (std::size_t i = 0; i < digests.size(); ++i) {
    if (lookup[i] == nullptr) throw NoSuchBlockError(digests[i]);
  }

  struct Miss {
    std::size_t index;  // result slot to decompress into
    const Entry* entry;
  };
  // Per-stripe classification output, merged (in stripe order) afterwards.
  std::vector<std::vector<Miss>> stripe_misses(part.active.size());
  std::vector<std::vector<std::pair<std::size_t, std::size_t>>> stripe_aliases(
      part.active.size());

  // Stage 1: per-stripe ordered classification. Each stripe replays the
  // exact Lookup/Admit sequence a serial Get loop would issue for its
  // digests, in input order under the stripe lock — so ARC state and
  // hit/miss counters are bit-identical to serial at any thread count.
  // Stripes share no cache state, so the passes run concurrently.
  ForEachRead(part.active.size(), [&](std::size_t k) {
    const std::size_t s = part.active[k];
    CacheStripe& stripe = *stripes_[s];
    std::vector<Miss>& misses = stripe_misses[k];
    std::vector<std::pair<std::size_t, std::size_t>>& aliases =
        stripe_aliases[k];
    std::lock_guard<std::mutex> lock(stripe.mutex);
    stripe.blocks_requested += part.begin[s + 1] - part.begin[s];
    std::unordered_map<util::Digest, std::size_t, util::DigestHasher>
        batch_first;
    for (std::size_t p = part.begin[s]; p < part.begin[s + 1]; ++p) {
      const std::size_t i = part.order[p];
      const Entry* entry = lookup[i];
      if (!entry->compressed) {
        // Stored raw: a copy either way, so the ARC is bypassed entirely.
        ++stripe.raw_blocks;
        misses.push_back({i, entry});
        continue;
      }
      if (stripe.cache.enabled()) {
        switch (stripe.cache.Lookup(digests[i],
                                    warm ? nullptr : &(*results)[i])) {
          case BlockCache::Outcome::kHit:
            // Warm mode: the ARC touch (promotion + hit counter) happened,
            // but the payload copy is skipped — the whole point of warming
            // an already-resident digest is paying nothing for it.
            if (warm) ++stripe.warm_skipped_resident;
            continue;
          case BlockCache::Outcome::kPending: {
            // Resident but still decompressing earlier in this batch; a
            // serial loop would hit here, and counters already say so. (If
            // the pending fill belongs to a concurrent batch instead, just
            // decompress locally too — content-addressing keeps it exact.)
            const auto first = batch_first.find(digests[i]);
            if (first != batch_first.end()) {
              aliases.emplace_back(i, first->second);
            } else {
              misses.push_back({i, entry});
            }
            continue;
          }
          case BlockCache::Outcome::kMiss:
            stripe.cache.Admit(digests[i], entry->logical_size);
            batch_first[digests[i]] = i;
            misses.push_back({i, entry});
            continue;
        }
      }
      // Cache disabled: still decompress each distinct digest only once per
      // batch (payloads are content-addressed, so aliasing is exact).
      const auto first = batch_first.find(digests[i]);
      if (first != batch_first.end()) {
        aliases.emplace_back(i, first->second);
      } else {
        batch_first[digests[i]] = i;
        misses.push_back({i, entry});
      }
    }
  });

  // Merge the per-stripe miss lists in stripe order (deterministic for a
  // fixed shard count) so the decompress stage can work-steal across the
  // whole batch.
  std::vector<Miss> misses;
  std::vector<std::size_t> merged_begin(part.active.size() + 1, 0);
  for (std::size_t k = 0; k < part.active.size(); ++k) {
    misses.insert(misses.end(), stripe_misses[k].begin(),
                  stripe_misses[k].end());
    merged_begin[k + 1] = misses.size();
  }

  // Stage 2: decompress the misses in parallel. Codecs are stateless and
  // each miss writes only its own result slot. With verification enabled
  // each miss also re-hashes its decompressed payload (once per physical
  // block — intra-batch duplicates alias, cache hits were verified when
  // filled); a mismatch or broken compressed framing marks the slot corrupt
  // instead of throwing here, so the error surfaces deterministically below.
  const bool verify = config_.read.verify_reads && config_.dedup;
  std::vector<std::uint8_t> corrupt(misses.size(), 0);
  ForEachRead(misses.size(), [&](std::size_t j) {
    const Miss& miss = misses[j];
    if (!miss.entry->compressed) {
      (*results)[miss.index] = miss.entry->payload;
    } else {
      try {
        (*results)[miss.index] =
            codec_->Decompress(miss.entry->payload, miss.entry->logical_size);
      } catch (const std::runtime_error&) {
        corrupt[j] = 1;  // corruption broke the compressed framing
        return;
      }
    }
    if (verify &&
        ComputeDigest((*results)[miss.index]) != digests[miss.index]) {
      corrupt[j] = 1;
    }
  });

  // Stage 3: per-stripe ordered install — fill each stripe's cache and
  // commit its read accounting. On corruption each stripe stops at its
  // first corrupt block in input order (good payloads before it install,
  // admitted-but-unfilled entries after it drop out of the ARC), and the
  // batch throws for the corrupt block with the smallest *input* index —
  // identical to the serial loop at any thread count. Corrupt payloads
  // never enter the cache.
  std::vector<std::size_t> first_corrupt(part.active.size(),
                                         std::numeric_limits<std::size_t>::max());
  ForEachRead(part.active.size(), [&](std::size_t k) {
    const std::size_t s = part.active[k];
    CacheStripe& stripe = *stripes_[s];
    std::lock_guard<std::mutex> lock(stripe.mutex);
    for (std::size_t j = merged_begin[k]; j < merged_begin[k + 1]; ++j) {
      const Miss& miss = misses[j];
      if (corrupt[j]) {
        first_corrupt[k] = miss.index;
        break;
      }
      if (!miss.entry->compressed) continue;
      ++stripe.decompressed_blocks;
      stripe.decompressed_bytes += miss.entry->logical_size;
      if (stripe.cache.enabled()) {
        stripe.cache.Fill(digests[miss.index], (*results)[miss.index]);
      }
    }
  });
  const std::size_t bad =
      *std::min_element(first_corrupt.begin(), first_corrupt.end());
  if (bad != std::numeric_limits<std::size_t>::max()) {
    throw BlockCorruptionError(digests[bad]);
  }

  if (warm) return;  // payloads are side effects only; skip materialization
  for (std::size_t k = 0; k < part.active.size(); ++k) {
    for (const auto& [dst, src] : stripe_aliases[k]) {
      (*results)[dst] = (*results)[src];
    }
  }
}

std::uint64_t BlockStore::WarmCache(
    std::span<const util::Digest> digests) const {
  // Dedup first: re-reading a digest inside one warm pass buys nothing and
  // would distort the ARC's recency order.
  std::vector<util::Digest> unique;
  unique.reserve(digests.size());
  {
    std::unordered_set<util::Digest, util::DigestHasher> seen;
    for (const util::Digest& digest : digests) {
      if (!Contains(digest)) continue;  // advisory: skip unknowns
      if (seen.insert(digest).second) unique.push_back(digest);
    }
  }
  const std::size_t round =
      std::max<std::size_t>(std::size_t{1}, config_.ingest.batch_blocks);
  std::uint64_t warmed = 0;
  for (std::size_t start = 0; start < unique.size(); start += round) {
    const std::span<const util::Digest> chunk(
        unique.data() + start, std::min(round, unique.size() - start));
    std::vector<util::Bytes> scratch(chunk.size());
    try {
      GetBatchImpl(chunk, &scratch, /*warm=*/true);
      warmed += chunk.size();
    } catch (const BlockCorruptionError&) {
      // A corrupt block poisons its round; retry one-by-one so the healthy
      // blocks still warm. Corrupt ones stay cold for the demand path
      // (which verifies, and heals when a repair source is armed).
      for (const util::Digest& digest : chunk) {
        const util::Digest one[1] = {digest};
        std::vector<util::Bytes> single(1);
        try {
          GetBatchImpl(one, &single, /*warm=*/true);
          ++warmed;
        } catch (const BlockCorruptionError&) {
        }
      }
    }
  }
  return warmed;
}

bool BlockStore::Contains(const util::Digest& digest) const {
  const Shard& shard = *shards_[ShardOf(digest)];
  std::lock_guard<std::mutex> lock(shard.mutex);
  return shard.entries.contains(digest);
}

std::uint32_t BlockStore::RefCount(const util::Digest& digest) const {
  const Shard& shard = *shards_[ShardOf(digest)];
  std::lock_guard<std::mutex> lock(shard.mutex);
  const auto it = shard.entries.find(digest);
  return it == shard.entries.end() ? 0 : it->second.refcount;
}

std::vector<std::uint8_t> BlockStore::ContainsBatch(
    std::span<const util::Digest> digests) const {
  std::vector<std::uint8_t> present(digests.size(), 0);
  const ShardPartition part =
      PartitionByShard(digests, shards_.size(), shard_shift_);
  for (const std::size_t s : part.active) {
    const Shard& shard = *shards_[s];
    std::lock_guard<std::mutex> lock(shard.mutex);
    for (std::size_t p = part.begin[s]; p < part.begin[s + 1]; ++p) {
      const std::size_t i = part.order[p];
      present[i] = shard.entries.contains(digests[i]) ? 1 : 0;
    }
  }
  return present;
}

std::uint32_t BlockStore::LogicalSize(const util::Digest& digest) const {
  const Shard& shard = *shards_[ShardOf(digest)];
  std::lock_guard<std::mutex> lock(shard.mutex);
  const auto it = shard.entries.find(digest);
  return it == shard.entries.end() ? 0 : it->second.logical_size;
}

bool BlockStore::Verify(const util::Digest& digest) const {
  // Snapshot the stored payload under the shard lock so scrubs can run
  // concurrently with ingest (a scrub must observe a coherent copy of the
  // stored bytes, never a cached one).
  util::Bytes payload;
  std::uint32_t logical_size = 0;
  bool compressed = false;
  {
    const Shard& shard = *shards_[ShardOf(digest)];
    std::lock_guard<std::mutex> lock(shard.mutex);
    const auto it = shard.entries.find(digest);
    if (it == shard.entries.end()) return false;
    if (!config_.dedup) return true;  // synthetic digests carry no hash
    payload = it->second.payload;
    logical_size = it->second.logical_size;
    compressed = it->second.compressed;
  }
  util::Bytes raw;
  if (compressed) {
    try {
      raw = codec_->Decompress(payload, logical_size);
    } catch (const std::runtime_error&) {
      return false;  // corruption broke the compressed framing
    }
  } else {
    raw = std::move(payload);
  }
  return ComputeDigest(raw) == digest;
}

std::vector<std::uint8_t> BlockStore::VerifyBatch(
    std::span<const util::Digest> digests) const {
  std::vector<std::uint8_t> ok(digests.size(), 0);
  // Verify is read-only (and bypasses the ARC), so every digest checks
  // independently; outcomes are position-wise identical to a serial loop.
  ForEachRead(digests.size(),
              [&](std::size_t i) { ok[i] = Verify(digests[i]) ? 1 : 0; });
  return ok;
}

void BlockStore::ResizeCache(std::uint64_t bytes) {
  // Stripe-by-stripe: each stripe rebudgets under its own lock, so batch
  // reads in flight on other stripes never stall behind the resize (the
  // global-pause behaviour this replaces).
  for (std::size_t s = 0; s < stripes_.size(); ++s) {
    CacheStripe& stripe = *stripes_[s];
    std::lock_guard<std::mutex> lock(stripe.mutex);
    stripe.cache.Resize(StripeBudget(bytes, stripes_.size(), s));
  }
}

bool BlockStore::CachedDecompressed(const util::Digest& digest) const {
  const CacheStripe& stripe = *stripes_[ShardOf(digest)];
  std::lock_guard<std::mutex> lock(stripe.mutex);
  return stripe.cache.ResidentPayload(digest);
}

std::vector<std::uint8_t> BlockStore::CachedDecompressedBatch(
    std::span<const util::Digest> digests) const {
  std::vector<std::uint8_t> resident(digests.size(), 0);
  const ShardPartition part =
      PartitionByShard(digests, shards_.size(), shard_shift_);
  for (const std::size_t s : part.active) {
    const CacheStripe& stripe = *stripes_[s];
    std::lock_guard<std::mutex> lock(stripe.mutex);
    for (std::size_t p = part.begin[s]; p < part.begin[s + 1]; ++p) {
      const std::size_t i = part.order[p];
      resident[i] = stripe.cache.ResidentPayload(digests[i]) ? 1 : 0;
    }
  }
  return resident;
}

bool BlockStore::Repair(const util::Digest& digest, util::ByteSpan raw) {
  if (config_.dedup && ComputeDigest(raw) != digest) return false;
  Shard& shard = *shards_[ShardOf(digest)];
  std::lock_guard<std::mutex> lock(shard.mutex);
  auto it = shard.entries.find(digest);
  if (it == shard.entries.end()) return false;
  Entry& entry = it->second;
  if (raw.size() != entry.logical_size) return false;

  util::Bytes payload;
  bool compressed = false;
  if (config_.codec != compress::CodecId::kNull) {
    util::Bytes candidate = codec_->Compress(raw);
    if (WorthKeeping(candidate.size(), raw.size())) {
      payload = std::move(candidate);
      compressed = true;
    }
  }
  if (!compressed) payload.assign(raw.begin(), raw.end());

  // Bit flips leave sizes intact — re-compressing identical content with the
  // (deterministic) codec reproduces the original extent, so the common case
  // touches no allocation state. Guard the general case anyway so SpaceMap
  // and physical accounting stay coherent if the damaged entry recorded a
  // different size.
  const auto physical = static_cast<std::uint32_t>(
      util::AlignUp(payload.size(), kSectorBytes));
  if (physical != entry.physical_size) {
    shard.space_map.Free(entry.disk_offset, entry.physical_size);
    try {
      entry.disk_offset = shard.space_map.Allocate(physical);
    } catch (const NoSpaceError&) {
      // Disk-full unwind: re-allocating the just-freed size is guaranteed to
      // fit, so the block keeps its (damaged) payload and the accounting
      // stays coherent; the caller skips-and-reports (ScrubRepair) or
      // propagates. The extent may land at a different offset — first fit —
      // which is fine: only accounting invariants matter on this path.
      entry.disk_offset = shard.space_map.Allocate(entry.physical_size);
      if (faults_ != nullptr) faults_->RecordAllocationRefused();
      throw;
    }
    shard.stats.physical_data_bytes += physical;
    shard.stats.physical_data_bytes -= entry.physical_size;
    entry.physical_size = physical;
  }
  entry.payload = std::move(payload);
  entry.compressed = compressed;
  return true;
}

std::size_t BlockStore::InjectFaults(util::FaultInjector& faults) {
  std::size_t corrupted = 0;
  // Iteration order is irrelevant: each block's outcome depends only on the
  // injector seed and its digest.
  for (const auto& shard_ptr : shards_) {
    Shard& shard = *shard_ptr;
    std::lock_guard<std::mutex> lock(shard.mutex);
    for (auto& [digest, entry] : shard.entries) {
      if (entry.payload.empty()) continue;
      if (faults.CorruptBlock(
              digest, util::MutableByteSpan(entry.payload.data(),
                                            entry.payload.size()))) {
        ++corrupted;
      }
    }
  }
  return corrupted;
}

StoreStats BlockStore::stats() const {
  StoreStats total;
  for (const auto& shard_ptr : shards_) {
    const Shard& shard = *shard_ptr;
    std::lock_guard<std::mutex> lock(shard.mutex);
    total.unique_blocks += shard.stats.unique_blocks;
    total.total_refs += shard.stats.total_refs;
    total.logical_unique_bytes += shard.stats.logical_unique_bytes;
    total.logical_referenced_bytes += shard.stats.logical_referenced_bytes;
    total.physical_data_bytes += shard.stats.physical_data_bytes;
    total.ddt_disk_bytes += shard.stats.ddt_disk_bytes;
    total.ddt_core_bytes += shard.stats.ddt_core_bytes;
  }
  return total;
}

ReadStats BlockStore::read_stats() const {
  ReadStats stats;
  for (const auto& stripe_ptr : stripes_) {
    const CacheStripe& stripe = *stripe_ptr;
    std::lock_guard<std::mutex> lock(stripe.mutex);
    stats.blocks_requested += stripe.blocks_requested;
    stats.cache_hits += stripe.cache.hits();
    stats.cache_misses += stripe.cache.misses();
    stats.raw_blocks += stripe.raw_blocks;
    stats.decompressed_blocks += stripe.decompressed_blocks;
    stats.decompressed_bytes += stripe.decompressed_bytes;
    stats.cached_bytes += stripe.cache.resident_bytes();
    stats.cache_capacity_bytes += stripe.cache.capacity_bytes();
    stats.warm_skipped_resident += stripe.warm_skipped_resident;
  }
  return stats;
}

InvariantReport BlockStore::CheckInvariants() const {
  InvariantReport report;
  const auto fail = [&report](const std::string& what) {
    report.ok = false;
    if (!report.detail.empty()) report.detail += "; ";
    report.detail += what;
  };
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    const Shard& shard = *shards_[s];
    std::lock_guard<std::mutex> lock(shard.mutex);
    const std::string tag = "shard " + std::to_string(s);

    StoreStats recount;
    std::vector<std::pair<std::uint64_t, std::uint64_t>> extents;
    extents.reserve(shard.entries.size());
    for (const auto& [digest, entry] : shard.entries) {
      if (entry.refcount == 0) {
        fail(tag + ": zero refcount for " + digest.ToHex());
      }
      recount.unique_blocks += 1;
      recount.total_refs += entry.refcount;
      recount.logical_unique_bytes += entry.logical_size;
      recount.logical_referenced_bytes +=
          std::uint64_t{entry.logical_size} * entry.refcount;
      recount.physical_data_bytes += entry.physical_size;
      if (config_.dedup) {
        recount.ddt_disk_bytes += kDdtDiskBytesPerEntry;
        recount.ddt_core_bytes += kDdtCoreBytesPerEntry;
      }
      if (entry.physical_size == 0 ||
          entry.physical_size % kSectorBytes != 0) {
        fail(tag + ": unaligned extent for " + digest.ToHex());
      }
      extents.emplace_back(entry.disk_offset, entry.physical_size);
    }

    const auto check = [&](const char* name, std::uint64_t counted,
                           std::uint64_t recorded) {
      if (counted != recorded) {
        fail(tag + ": " + name + " recorded " + std::to_string(recorded) +
             " but recounted " + std::to_string(counted));
      }
    };
    check("unique_blocks", recount.unique_blocks, shard.stats.unique_blocks);
    check("total_refs", recount.total_refs, shard.stats.total_refs);
    check("logical_unique_bytes", recount.logical_unique_bytes,
          shard.stats.logical_unique_bytes);
    check("logical_referenced_bytes", recount.logical_referenced_bytes,
          shard.stats.logical_referenced_bytes);
    check("physical_data_bytes", recount.physical_data_bytes,
          shard.stats.physical_data_bytes);
    check("ddt_disk_bytes", recount.ddt_disk_bytes,
          shard.stats.ddt_disk_bytes);
    check("ddt_core_bytes", recount.ddt_core_bytes,
          shard.stats.ddt_core_bytes);

    const SpaceMap& sm = shard.space_map;
    check("space-map allocated_bytes", recount.physical_data_bytes,
          sm.allocated_bytes());
    if (sm.pool_size() != sm.allocated_bytes() + sm.free_hole_bytes()) {
      fail(tag + ": pool accounting: pool " + std::to_string(sm.pool_size()) +
           " != allocated " + std::to_string(sm.allocated_bytes()) +
           " + holes " + std::to_string(sm.free_hole_bytes()));
    }

    std::sort(extents.begin(), extents.end());
    for (std::size_t i = 0; i < extents.size(); ++i) {
      if (i > 0 &&
          extents[i - 1].first + extents[i - 1].second > extents[i].first) {
        fail(tag + ": overlapping extents at offset " +
             std::to_string(extents[i].first));
      }
      if (extents[i].first + extents[i].second > sm.pool_size()) {
        fail(tag + ": extent past the pool high-water mark at offset " +
             std::to_string(extents[i].first));
      }
    }
  }
  return report;
}

SpaceMapStats BlockStore::space_map_stats() const {
  SpaceMapStats stats;
  for (const auto& shard_ptr : shards_) {
    const Shard& shard = *shard_ptr;
    std::lock_guard<std::mutex> lock(shard.mutex);
    stats.allocated_bytes += shard.space_map.allocated_bytes();
    stats.pool_bytes += shard.space_map.pool_size();
    stats.free_hole_bytes += shard.space_map.free_hole_bytes();
    stats.free_extents += shard.space_map.free_extent_count();
  }
  return stats;
}

bool BlockStore::CorruptPayloadForTesting(const util::Digest& digest) {
  Shard& shard = *shards_[ShardOf(digest)];
  std::lock_guard<std::mutex> lock(shard.mutex);
  auto it = shard.entries.find(digest);
  if (it == shard.entries.end() || it->second.payload.empty()) return false;
  it->second.payload[it->second.payload.size() / 2] ^= 0x40;
  return true;
}

bool BlockStore::CorruptTruncatePayloadForTesting(const util::Digest& digest) {
  Shard& shard = *shards_[ShardOf(digest)];
  std::lock_guard<std::mutex> lock(shard.mutex);
  auto it = shard.entries.find(digest);
  if (it == shard.entries.end()) return false;
  Entry& entry = it->second;
  if (entry.payload.size() <= kSectorBytes) return false;
  entry.payload.resize(kSectorBytes / 2);
  // Accounting follows the torn payload (the premise is that the store
  // already noticed and shrank the extent), so invariants keep holding and
  // the eventual Repair with clean content must *grow* the extent.
  const auto physical =
      static_cast<std::uint32_t>(util::AlignUp(entry.payload.size(),
                                               kSectorBytes));
  shard.space_map.Free(entry.disk_offset, entry.physical_size);
  entry.disk_offset = shard.space_map.Allocate(physical);
  shard.stats.physical_data_bytes += physical;
  shard.stats.physical_data_bytes -= entry.physical_size;
  entry.physical_size = physical;
  return true;
}

std::uint64_t BlockStore::DiskOffset(const util::Digest& digest) const {
  const std::size_t s = ShardOf(digest);
  const Shard& shard = *shards_[s];
  std::lock_guard<std::mutex> lock(shard.mutex);
  const auto it = shard.entries.find(digest);
  if (it == shard.entries.end()) throw NoSuchBlockError(digest);
  return GlobalOffset(s, it->second.disk_offset);
}

std::uint32_t BlockStore::PhysicalSize(const util::Digest& digest) const {
  const Shard& shard = *shards_[ShardOf(digest)];
  std::lock_guard<std::mutex> lock(shard.mutex);
  const auto it = shard.entries.find(digest);
  if (it == shard.entries.end()) throw NoSuchBlockError(digest);
  return it->second.physical_size;
}

}  // namespace squirrel::store
