#include "store/space_map.h"

#include <cassert>

namespace squirrel::store {

std::uint64_t SpaceMap::Allocate(std::uint64_t size) {
  assert(size > 0);
  if (capacity_ != 0 && allocated_ + size > capacity_) {
    throw NoSpaceError(size, capacity_, allocated_);
  }
  // First fit from the free list.
  for (auto it = free_.begin(); it != free_.end(); ++it) {
    if (it->second >= size) {
      const std::uint64_t offset = it->first;
      const std::uint64_t remaining = it->second - size;
      free_.erase(it);
      if (remaining > 0) free_.emplace(offset + size, remaining);
      hole_bytes_ -= size;
      allocated_ += size;
      return offset;
    }
  }
  const std::uint64_t offset = bump_;
  bump_ += size;
  allocated_ += size;
  return offset;
}

void SpaceMap::Free(std::uint64_t offset, std::uint64_t size) {
  assert(size > 0);
  allocated_ -= size;
  hole_bytes_ += size;

  auto [it, inserted] = free_.emplace(offset, size);
  assert(inserted && "double free");

  // Coalesce with the following extent.
  auto next = std::next(it);
  if (next != free_.end() && it->first + it->second == next->first) {
    it->second += next->second;
    free_.erase(next);
  }
  // Coalesce with the preceding extent.
  if (it != free_.begin()) {
    auto prev = std::prev(it);
    if (prev->first + prev->second == it->first) {
      prev->second += it->second;
      free_.erase(it);
      it = prev;
    }
  }
  // Shrink the pool when the last extent touches the high-water mark.
  if (!free_.empty()) {
    auto last = std::prev(free_.end());
    if (last->first + last->second == bump_) {
      bump_ = last->first;
      hole_bytes_ -= last->second;
      free_.erase(last);
    }
  }
}

}  // namespace squirrel::store
