#include "store/block_cache.h"

namespace squirrel::store {

BlockCache::BlockCache(std::uint64_t capacity_bytes)
    : arc_(capacity_bytes,
           [this](const util::Digest& evicted) { payloads_.erase(evicted); }) {}

BlockCache::Outcome BlockCache::Lookup(const util::Digest& digest,
                                       util::Bytes* out) {
  if (!arc_.Lookup(digest)) return Outcome::kMiss;
  const auto it = payloads_.find(digest);
  if (it == payloads_.end()) return Outcome::kPending;
  if (out != nullptr) *out = it->second;
  return Outcome::kHit;
}

void BlockCache::Admit(const util::Digest& digest, std::uint64_t bytes) {
  arc_.Insert(digest, bytes);
}

void BlockCache::Fill(const util::Digest& digest, const util::Bytes& payload) {
  if (!arc_.Resident(digest)) return;  // evicted before the fill, or bypassed
  payloads_.emplace(digest, payload);
}

bool BlockCache::ResidentPayload(const util::Digest& digest) const {
  return arc_.Resident(digest) && payloads_.contains(digest);
}

}  // namespace squirrel::store
