#include "store/cdc.h"

#include <array>
#include <bit>
#include <stdexcept>

#include "util/hash.h"
#include "util/rng.h"

namespace squirrel::store {
namespace {

// Gear table: 256 deterministic pseudo-random 64-bit values. The gear hash
// h' = (h << 1) + gear[b] keeps an effective window of 64 bytes; boundary
// decisions use the top bits, which depend on the most recent bytes only.
const std::array<std::uint64_t, 256>& GearTable() {
  static const std::array<std::uint64_t, 256> table = [] {
    std::array<std::uint64_t, 256> t{};
    util::Rng rng(0x9eaf9eaf);
    for (auto& v : t) v = rng.Next();
    return t;
  }();
  return table;
}

std::uint64_t BoundaryMask(std::uint32_t avg_size) {
  if (avg_size == 0 || (avg_size & (avg_size - 1)) != 0) {
    throw std::invalid_argument("cdc avg_size must be a power of two");
  }
  // Use the high bits of the gear hash (better mixed than the low bits).
  const unsigned bits = std::bit_width(avg_size) - 1;
  return ((1ull << bits) - 1) << (64 - bits);
}

}  // namespace

std::vector<CdcChunk> ChunkBuffer(util::ByteSpan data, const CdcConfig& config) {
  if (config.min_size == 0 || config.min_size > config.avg_size ||
      config.avg_size > config.max_size) {
    throw std::invalid_argument("cdc sizes must satisfy min <= avg <= max");
  }
  const std::uint64_t mask = BoundaryMask(config.avg_size);
  const auto& gear = GearTable();

  std::vector<CdcChunk> chunks;
  std::uint64_t start = 0;
  std::uint64_t h = 0;
  for (std::uint64_t i = 0; i < data.size(); ++i) {
    h = (h << 1) + gear[data[i]];
    const std::uint64_t len = i + 1 - start;
    if ((len >= config.min_size && (h & mask) == 0) || len >= config.max_size) {
      chunks.push_back({start, static_cast<std::uint32_t>(len)});
      start = i + 1;
      h = 0;
    }
  }
  if (start < data.size()) {
    chunks.push_back({start, static_cast<std::uint32_t>(data.size() - start)});
  }
  return chunks;
}

std::vector<CdcChunk> ChunkSource(const util::DataSource& source,
                                  const CdcConfig& config) {
  // Process in large windows; carry the partial chunk across reads by
  // re-reading from the chunk start (simple, and bounded by max_size).
  std::vector<CdcChunk> chunks;
  const std::uint64_t size = source.size();
  const std::uint64_t window = 4ull << 20;
  util::Bytes buffer;
  std::uint64_t pos = 0;
  while (pos < size) {
    const std::uint64_t len = std::min(window, size - pos);
    buffer.resize(len);
    source.Read(pos, buffer);
    auto piece = ChunkBuffer(buffer, config);
    if (pos + len < size && piece.size() > 1) {
      // Drop the trailing partial chunk; resume from its start.
      piece.pop_back();
    }
    std::uint64_t consumed = 0;
    for (CdcChunk& chunk : piece) {
      chunk.offset += pos;
      consumed = chunk.offset + chunk.length - pos;
      chunks.push_back(chunk);
    }
    if (consumed == 0) {
      // Window smaller than one max chunk at the tail — take it whole.
      chunks.push_back({pos, static_cast<std::uint32_t>(len)});
      consumed = len;
    }
    pos += consumed;
  }
  return chunks;
}

CdcAnalyzer::CdcAnalyzer(CdcConfig config) : config_(config) {}

void CdcAnalyzer::AddFile(const util::DataSource& file) {
  ++file_counter_;
  const std::vector<CdcChunk> file_chunks = ChunkSource(file, config_);
  util::Bytes buffer(config_.max_size);
  std::uint64_t file_unique = 0;
  for (const CdcChunk& chunk : file_chunks) {
    ++result_.total_chunks;
    util::MutableByteSpan span(buffer.data(), chunk.length);
    file.Read(chunk.offset, span);
    if (util::IsAllZero(span)) continue;
    ++result_.nonzero_chunks;
    result_.nonzero_bytes += chunk.length;

    const util::Fast128 h = util::FastHash128(span);
    auto [it, inserted] = chunks_.emplace(Key{h.lo, h.hi}, ChunkInfo{});
    ChunkInfo& info = it->second;
    if (inserted) {
      ++result_.unique_chunks;
      result_.unique_bytes += chunk.length;
    }
    if (info.last_file != file_counter_) {
      if (info.last_file != 0) {
        result_.repetition_sum += (info.file_count == 1) ? 2 : 1;
      }
      ++info.file_count;
      info.last_file = file_counter_;
      ++file_unique;
    }
  }
  result_.per_file_unique_sum += file_unique;
}

CdcAnalyzer::Result CdcAnalyzer::Finish() {
  result_.mean_chunk_size =
      result_.nonzero_chunks == 0
          ? 0.0
          : static_cast<double>(result_.nonzero_bytes) /
                static_cast<double>(result_.nonzero_chunks);
  return result_;
}

}  // namespace squirrel::store
