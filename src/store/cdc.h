// Content-defined chunking (CDC) — the variable-size alternative to ZFS's
// fixed-size blocks.
//
// The paper justifies fixed-size chunking by Jin & Miller's finding that it
// works as well as (sometimes better than) variable chunking on VM images
// [19], independently confirmed in [18]. This module implements a gear-hash
// chunker so the repository can reproduce that comparison
// (bench/ablation_chunking): a rolling hash over a 16-byte window declares a
// chunk boundary whenever its low bits match a mask, making boundaries
// content-stable under insertions and shifts.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "util/source.h"

namespace squirrel::store {

struct CdcConfig {
  std::uint32_t min_size = 2 * 1024;
  /// Average chunk size; must be a power of two (sets the boundary mask).
  std::uint32_t avg_size = 8 * 1024;
  std::uint32_t max_size = 64 * 1024;
};

struct CdcChunk {
  std::uint64_t offset = 0;
  std::uint32_t length = 0;
};

/// Splits `data` into content-defined chunks covering it exactly.
std::vector<CdcChunk> ChunkBuffer(util::ByteSpan data, const CdcConfig& config);

/// Streams `source` through the chunker (constant memory).
std::vector<CdcChunk> ChunkSource(const util::DataSource& source,
                                  const CdcConfig& config);

/// Analyzer mirroring DedupAnalyzer but over content-defined chunks:
/// computes |N| (nonzero chunks), |U| (unique chunks), dedup ratio, and
/// cross-similarity, using the same definitions as the fixed-size analysis.
class CdcAnalyzer {
 public:
  explicit CdcAnalyzer(CdcConfig config);

  void AddFile(const util::DataSource& file);

  struct Result {
    std::uint64_t total_chunks = 0;
    std::uint64_t nonzero_chunks = 0;
    std::uint64_t unique_chunks = 0;
    std::uint64_t nonzero_bytes = 0;
    std::uint64_t unique_bytes = 0;
    std::uint64_t repetition_sum = 0;
    std::uint64_t per_file_unique_sum = 0;
    double mean_chunk_size = 0.0;

    double dedup_ratio() const {
      return unique_chunks == 0 ? 0.0
                                : static_cast<double>(nonzero_chunks) /
                                      static_cast<double>(unique_chunks);
    }
    double cross_similarity() const {
      return per_file_unique_sum == 0
                 ? 0.0
                 : static_cast<double>(repetition_sum) /
                       static_cast<double>(per_file_unique_sum);
    }
  };
  Result Finish();

 private:
  struct Key {
    std::uint64_t lo, hi;
    bool operator==(const Key&) const = default;
  };
  struct KeyHasher {
    std::size_t operator()(const Key& k) const noexcept {
      return static_cast<std::size_t>(k.lo ^ (k.hi * 0x9e3779b97f4a7c15ULL));
    }
  };
  struct ChunkInfo {
    std::uint32_t file_count = 0;
    std::uint32_t last_file = 0;
  };

  CdcConfig config_;
  Result result_;
  std::unordered_map<Key, ChunkInfo, KeyHasher> chunks_;
  std::uint32_t file_counter_ = 0;
};

}  // namespace squirrel::store
