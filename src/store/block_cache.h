// Byte-budgeted cache of decompressed block payloads, keyed by content
// digest — the block store's slice of the ZFS ARC.
//
// The paper's headline boot result (Fig 11) leans on the ARC caching cVolume
// blocks: a block shared by many images (the dedup case) is decompressed
// once and every later reference — from any image — is served from memory.
// This class provides exactly that on the BlockStore read path: the ARC
// policy itself lives in util/arc_cache.h (promoted from the boot
// simulator's sim::ArcCache), instantiated here with digest keys weighted by
// the decompressed payload size.
//
// Because digests are content addresses, a cached payload can never go
// stale: the same digest always names the same bytes, so entries need no
// invalidation on Unref/re-Put. Only *compressed* blocks enter the cache —
// blocks stored raw cost a memcpy either way, so caching them would spend
// budget without saving any decompression work.
//
// Admission is two-phase to serve the batch read pipeline: `Admit` inserts
// the key (adapting the ARC state exactly where a serial Get loop would)
// before the payload exists, and `Fill` installs the decompressed bytes once
// the parallel decompress stage produces them. A pending entry that gets
// evicted before its Fill simply drops out; a Lookup that hits a pending
// entry reports kPending and the caller aliases the in-flight decompression.
//
// Not thread-safe; BlockStore serializes access per stripe. The store runs
// one BlockCache instance per digest shard (a striped ARC), each guarded by
// its own stripe mutex and budgeted with an even slice of
// ReadConfig::cache_bytes — probes touch exactly one stripe's lock.
// Cached bytes are accounted nowhere in StoreStats — the cache is a
// read-side memory budget, not part of the disk/DDT model.
#pragma once

#include <cstdint>
#include <unordered_map>

#include "util/arc_cache.h"
#include "util/bytes.h"
#include "util/hash.h"

namespace squirrel::store {

class BlockCache {
 public:
  explicit BlockCache(std::uint64_t capacity_bytes);

  enum class Outcome {
    kHit,      // resident and filled; payload copied to `out`
    kPending,  // resident, decompression in flight (same batch)
    kMiss,     // not resident
  };

  /// ARC lookup; on kHit copies the payload into `*out`. A null `out`
  /// performs the full ARC touch (promotion, hit counter) without the copy
  /// — the warm path uses this so re-warming resident blocks is free while
  /// cache state stays identical to a demand read.
  Outcome Lookup(const util::Digest& digest, util::Bytes* out);

  /// Admits `digest` (weight = decompressed size) after a miss. The ARC
  /// state change happens here, in request order; the payload follows later.
  void Admit(const util::Digest& digest, std::uint64_t bytes);

  /// Installs the decompressed payload; a no-op if the entry was evicted
  /// (or never admitted, e.g. wider than the whole budget).
  void Fill(const util::Digest& digest, const util::Bytes& payload);

  /// Non-mutating probe: resident *and* filled. The boot simulator uses
  /// this to decide whether a read would pay decompression CPU.
  bool ResidentPayload(const util::Digest& digest) const;

  /// Rebudgets the cache: shrinking evicts down to the new byte budget in
  /// ARC replacement order (payloads drop with their entries); growing keeps
  /// everything and raises the ceiling.
  void Resize(std::uint64_t capacity_bytes) { arc_.Resize(capacity_bytes); }

  bool enabled() const { return arc_.capacity() > 0; }
  std::uint64_t capacity_bytes() const { return arc_.capacity(); }
  /// Admitted decompressed bytes currently resident (the byte budget the
  /// ARC enforces; pending entries count from admission).
  std::uint64_t resident_bytes() const { return arc_.resident_weight(); }
  std::uint64_t hits() const { return arc_.hits(); }
  std::uint64_t misses() const { return arc_.misses(); }

 private:
  util::ArcCache<util::Digest, util::DigestHasher> arc_;
  std::unordered_map<util::Digest, util::Bytes, util::DigestHasher> payloads_;
};

}  // namespace squirrel::store
