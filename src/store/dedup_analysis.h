// Offline dataset analysis: deduplication ratio, compression ratio, combined
// compression ratio (CCR) and cross-similarity over a set of files at a given
// block size.
//
// This is the reproduction of the paper's Hadoop MapReduce analysis jobs
// (Section 4: "To generate the data for Figures 2, 3, 4, and 12 ..."). The
// metric definitions follow Section 2.2 and 4.3.1:
//
//   dedup ratio       = |N| / |U|      (nonzero blocks over unique blocks)
//   compression ratio = 1 / mean_{i in U}(size(compress(i)) / size(i))
//   CCR               = dedup ratio * compression ratio
//   cross-similarity  = sum_{i in U} repetition_i / sum_{f in I} |U_f|
//     where repetition_i counts the distinct files containing block i when
//     that count is >= 2, and 0 otherwise.
//
// Analysis hashing uses a fast 128-bit non-cryptographic hash (two seeded
// FNV-1a lanes): at analysis scale a collision is vanishingly unlikely and
// irrelevant for ratio estimation. Compression probing optionally samples
// unique blocks (deterministically) to bound CPU cost.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <unordered_set>

#include "compress/codec.h"
#include "util/source.h"

namespace squirrel::store {

struct AnalysisConfig {
  std::uint32_t block_size = 64 * 1024;
  /// Codec for the compression probe; nullptr skips it (dedup-only analysis).
  const compress::Codec* codec = nullptr;
  /// Compress at most roughly this many bytes' worth of unique blocks
  /// (deterministic content-hash sampling); 0 means "all". The ratio
  /// estimate converges with a few MiB of probed data.
  std::uint64_t probe_sample_bytes = 8 * 1024 * 1024;
};

struct AnalysisResult {
  std::uint64_t nonzero_blocks = 0;   // |N|
  std::uint64_t unique_blocks = 0;    // |U|
  std::uint64_t zero_blocks = 0;
  std::uint64_t logical_bytes = 0;    // total logical size of all files
  std::uint64_t nonzero_bytes = 0;

  // Compression probe aggregates (over sampled unique blocks).
  std::uint64_t probed_blocks = 0;
  double mean_compressed_fraction = 1.0;  // mean(size(compress)/size)

  // Cross-similarity components.
  std::uint64_t repetition_sum = 0;       // numerator
  std::uint64_t per_file_unique_sum = 0;  // denominator

  double dedup_ratio() const {
    return unique_blocks == 0
               ? 0.0
               : static_cast<double>(nonzero_blocks) / static_cast<double>(unique_blocks);
  }
  double compression_ratio() const {
    return mean_compressed_fraction <= 0.0 ? 0.0 : 1.0 / mean_compressed_fraction;
  }
  double ccr() const { return dedup_ratio() * compression_ratio(); }
  double cross_similarity() const {
    return per_file_unique_sum == 0
               ? 0.0
               : static_cast<double>(repetition_sum) /
                     static_cast<double>(per_file_unique_sum);
  }
};

class DedupAnalyzer {
 public:
  explicit DedupAnalyzer(AnalysisConfig config);

  /// Scans one file; call once per file in the dataset.
  void AddFile(const util::DataSource& file);

  /// Finalizes cross-similarity and compression aggregates.
  AnalysisResult Finish();

 private:
  struct Key {
    std::uint64_t lo, hi;
    bool operator==(const Key&) const = default;
  };
  struct KeyHasher {
    std::size_t operator()(const Key& k) const noexcept {
      return static_cast<std::size_t>(k.lo ^ (k.hi * 0x9e3779b97f4a7c15ULL));
    }
  };
  struct BlockInfo {
    std::uint32_t file_count = 0;    // distinct files containing this block
    std::uint32_t last_file = 0;     // 1-based id of last file that counted it
  };

  AnalysisConfig config_;
  AnalysisResult result_;
  std::unordered_map<Key, BlockInfo, KeyHasher> blocks_;
  std::uint32_t file_counter_ = 0;
  // Compression-probe sample: (key.lo, compressed/raw fraction) per sampled
  // unique block, thinned by doubling sample_mask_ when over budget.
  std::vector<std::pair<std::uint64_t, double>> samples_;
  std::uint64_t sample_mask_ = 0;
  std::uint64_t sampled_bytes_ = 0;
};

}  // namespace squirrel::store
