#include "compress/deflate.h"

#include <bit>
#include <cstring>
#include <stdexcept>

#include "compress/bitio.h"
#include "compress/huffman.h"

namespace squirrel::compress {
namespace {

// Alphabet layout: 0..255 literals, 256 end-of-block, 257.. length buckets.
constexpr std::size_t kEob = 256;
constexpr std::size_t kLengthBase = 257;
constexpr std::size_t kLengthBuckets = 16;   // covers match lengths 3..258
constexpr std::size_t kLitLenSymbols = kLengthBase + kLengthBuckets;
constexpr std::size_t kDistSymbols = 48;     // covers distances up to 2^24
constexpr std::size_t kMinMatch = 3;
constexpr std::size_t kMaxMatch = 258;

constexpr unsigned kHashBits = 15;
constexpr std::uint32_t kHashSize = 1u << kHashBits;

// Log-bucket encoding with one mantissa bit: values 0..3 map to buckets 0..3
// with no extra bits; larger values use bucket 2k+b with k-1 extra bits.
struct Bucket {
  std::uint32_t index;
  std::uint32_t extra_bits;
  std::uint32_t extra_value;
};

Bucket EncodeBucket(std::uint32_t v) {
  if (v < 4) return {v, 0, 0};
  const unsigned k = std::bit_width(v) - 1;
  const std::uint32_t second = (v >> (k - 1)) & 1u;
  return {2 * k + second, k - 1, v & ((1u << (k - 1)) - 1u)};
}

std::uint32_t DecodeBucket(std::uint32_t index, BitReader& reader) {
  if (index < 4) return index;
  const unsigned k = index / 2;
  const std::uint32_t second = index & 1u;
  const std::uint32_t extra = (k >= 1) ? reader.Read(k - 1) : 0;
  return (1u << k) | (second << (k - 1)) | extra;
}

std::uint32_t Load32(const util::Byte* p) {
  std::uint32_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

std::uint32_t HashAt(const util::Byte* p) {
  return (Load32(p) * 2654435761u) >> (32 - kHashBits);
}

struct Token {
  std::uint32_t literal_or_length;  // literal byte, or match length
  std::uint32_t distance;           // 0 => literal token
};

// Length of the common prefix of a/b, capped at `limit`.
std::size_t MatchLength(const util::Byte* a, const util::Byte* b,
                        std::size_t limit) {
  std::size_t n = 0;
  while (n < limit && a[n] == b[n]) ++n;
  return n;
}

}  // namespace

DeflateCodec::DeflateCodec(int level)
    : level_(level), name_("gzip" + std::to_string(level)) {
  if (level < 1 || level > 9) throw std::invalid_argument("deflate level");
  // Effort schedule loosely following zlib's configuration table.
  static constexpr unsigned kChains[10] = {0, 4, 8, 16, 32, 64, 128, 256, 512, 1024};
  static constexpr unsigned kNice[10] = {0, 8, 16, 32, 32, 64, 128, 128, 258, 258};
  max_chain_ = kChains[level];
  nice_length_ = kNice[level];
  lazy_ = level >= 4;
}

util::Bytes DeflateCodec::Compress(util::ByteSpan input) const {
  // 1. LZ77 parse with a hash-chain match finder.
  std::vector<Token> tokens;
  tokens.reserve(input.size() / 4 + 16);

  std::vector<std::int32_t> head(kHashSize, -1);
  std::vector<std::int32_t> prev(input.size(), -1);
  const util::Byte* data = input.data();
  const std::size_t n = input.size();

  auto find_match = [&](std::size_t pos, std::size_t& best_len,
                        std::size_t& best_dist) {
    best_len = 0;
    best_dist = 0;
    // HashAt reads 4 bytes, one more than kMinMatch; a tail position with
    // fewer than 4 bytes left cannot start a match (and hashing it would
    // read past the buffer).
    if (pos + sizeof(std::uint32_t) > n) return;
    const std::size_t limit = std::min(kMaxMatch, n - pos);
    std::int32_t candidate = head[HashAt(data + pos)];
    unsigned chain = max_chain_;
    while (candidate >= 0 && chain-- > 0) {
      const std::size_t len =
          MatchLength(data + candidate, data + pos, limit);
      if (len > best_len) {
        best_len = len;
        best_dist = pos - static_cast<std::size_t>(candidate);
        if (len >= nice_length_) break;
      }
      candidate = prev[candidate];
    }
    if (best_len < kMinMatch) best_len = 0;
  };

  auto insert = [&](std::size_t pos) {
    if (pos + 4 > n) return;
    const std::uint32_t h = HashAt(data + pos);
    prev[pos] = head[h];
    head[h] = static_cast<std::int32_t>(pos);
  };

  std::size_t pos = 0;
  while (pos < n) {
    std::size_t len, dist;
    find_match(pos, len, dist);

    if (lazy_ && len > 0 && len < nice_length_ && pos + 1 < n) {
      // One-step lazy evaluation: emit a literal if the next position has a
      // strictly better match.
      insert(pos);
      std::size_t next_len, next_dist;
      find_match(pos + 1, next_len, next_dist);
      if (next_len > len) {
        tokens.push_back({data[pos], 0});
        ++pos;
        len = next_len;
        dist = next_dist;
      }
    } else if (len > 0) {
      insert(pos);
    }

    if (len == 0) {
      insert(pos);
      tokens.push_back({data[pos], 0});
      ++pos;
      continue;
    }
    tokens.push_back({static_cast<std::uint32_t>(len),
                      static_cast<std::uint32_t>(dist)});
    // Register the skipped positions so later matches can reference them.
    for (std::size_t i = 1; i < len; ++i) insert(pos + i);
    pos += len;
  }

  // 2. Histogram the symbol streams.
  std::vector<std::uint64_t> litlen_freq(kLitLenSymbols, 0);
  std::vector<std::uint64_t> dist_freq(kDistSymbols, 0);
  for (const Token& t : tokens) {
    if (t.distance == 0) {
      ++litlen_freq[t.literal_or_length];
    } else {
      ++litlen_freq[kLengthBase +
                    EncodeBucket(t.literal_or_length - kMinMatch).index];
      ++dist_freq[EncodeBucket(t.distance - 1).index];
    }
  }
  ++litlen_freq[kEob];

  const auto litlen_lengths = BuildCodeLengths(litlen_freq);
  const auto dist_lengths = BuildCodeLengths(dist_freq);
  const HuffmanEncoder litlen_enc(litlen_lengths);
  const HuffmanEncoder dist_enc(dist_lengths);

  // 3. Emit the container.
  BitWriter writer;
  writer.Write(1, 8);  // mode = huffman
  WriteCodeLengths(writer, litlen_lengths);
  WriteCodeLengths(writer, dist_lengths);
  for (const Token& t : tokens) {
    if (t.distance == 0) {
      litlen_enc.Encode(writer, t.literal_or_length);
      continue;
    }
    const Bucket lb = EncodeBucket(t.literal_or_length - kMinMatch);
    litlen_enc.Encode(writer, kLengthBase + lb.index);
    if (lb.extra_bits > 0) writer.Write(lb.extra_value, lb.extra_bits);
    const Bucket db = EncodeBucket(t.distance - 1);
    dist_enc.Encode(writer, db.index);
    if (db.extra_bits > 0) writer.Write(db.extra_value, db.extra_bits);
  }
  litlen_enc.Encode(writer, kEob);
  util::Bytes packed = writer.Finish();

  if (packed.size() >= input.size() + 1) {
    // Incompressible: fall back to stored mode.
    util::Bytes stored;
    stored.reserve(input.size() + 1);
    stored.push_back(0);
    stored.insert(stored.end(), input.begin(), input.end());
    return stored;
  }
  return packed;
}

util::Bytes DeflateCodec::Decompress(util::ByteSpan input,
                                     std::size_t expected_size) const {
  if (input.empty()) throw std::runtime_error("deflate: empty payload");
  const std::uint8_t mode = input[0];
  if (mode == 0) {
    if (input.size() - 1 != expected_size) {
      throw std::runtime_error("deflate: stored size mismatch");
    }
    return util::Bytes(input.begin() + 1, input.end());
  }
  if (mode != 1) throw std::runtime_error("deflate: bad mode byte");

  // The mode byte occupied exactly the first 8 bits of the writer's stream,
  // so the remainder is byte-aligned at offset 1.
  BitReader reader(input.subspan(1));
  const auto litlen_lengths = ReadCodeLengths(reader, kLitLenSymbols);
  const auto dist_lengths = ReadCodeLengths(reader, kDistSymbols);
  const HuffmanDecoder litlen_dec(litlen_lengths);
  const HuffmanDecoder dist_dec(dist_lengths);

  util::Bytes out;
  out.reserve(expected_size);
  for (;;) {
    const std::size_t sym = litlen_dec.Decode(reader);
    if (sym == kEob) break;
    if (sym < kEob) {
      out.push_back(static_cast<util::Byte>(sym));
      continue;
    }
    const std::uint32_t len =
        DecodeBucket(static_cast<std::uint32_t>(sym - kLengthBase), reader) +
        kMinMatch;
    const std::size_t dsym = dist_dec.Decode(reader);
    const std::uint32_t dist =
        DecodeBucket(static_cast<std::uint32_t>(dsym), reader) + 1;
    if (dist > out.size()) throw std::runtime_error("deflate: bad distance");
    const std::size_t start = out.size() - dist;
    for (std::uint32_t i = 0; i < len; ++i) {
      out.push_back(out[start + i]);  // overlapping copies are intentional
    }
    if (out.size() > expected_size) {
      throw std::runtime_error("deflate: output overrun");
    }
  }
  if (out.size() != expected_size) {
    throw std::runtime_error("deflate: output size mismatch");
  }
  return out;
}

CodecCost DeflateCodec::cost() const {
  // Compression cost grows with search effort; decompression is level
  // independent (same token stream structure).
  return {8.0 + 4.0 * level_ * level_ / 3.0, 4.0};
}

}  // namespace squirrel::compress
