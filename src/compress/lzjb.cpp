#include "compress/lzjb.h"

#include <stdexcept>
#include <vector>

namespace squirrel::compress {
namespace {

constexpr std::size_t kMinMatch = 3;
constexpr std::size_t kMatchBits = 6;
constexpr std::size_t kMaxMatch = (1u << kMatchBits) + kMinMatch - 1;  // 66
constexpr std::size_t kOffsetMask = (1u << (16 - kMatchBits)) - 1;     // 1023
constexpr std::size_t kTableSize = 1024;

std::size_t Hash3(const util::Byte* p) {
  return ((std::size_t(p[0]) << 16) ^ (std::size_t(p[1]) << 8) ^ p[2]) *
             0x9e3779b1u >>
         20 & (kTableSize - 1);
}

}  // namespace

util::Bytes LzjbCodec::Compress(util::ByteSpan input) const {
  util::Bytes out;
  out.reserve(input.size() + input.size() / 8 + 16);
  std::vector<std::int32_t> table(kTableSize, -1);

  const util::Byte* data = input.data();
  const std::size_t n = input.size();
  std::size_t pos = 0;
  std::size_t control_index = 0;
  util::Byte control_bit = 0;

  while (pos < n) {
    if (control_bit == 0) {
      control_index = out.size();
      out.push_back(0);
      control_bit = 1;
    }
    bool emitted_match = false;
    if (pos + kMinMatch <= n) {
      const std::size_t h = Hash3(data + pos);
      const std::int32_t candidate = table[h];
      table[h] = static_cast<std::int32_t>(pos);
      if (candidate >= 0) {
        const std::size_t offset = pos - static_cast<std::size_t>(candidate);
        if (offset > 0 && offset <= kOffsetMask &&
            data[candidate] == data[pos] &&
            data[candidate + 1] == data[pos + 1] &&
            data[candidate + 2] == data[pos + 2]) {
          std::size_t len = kMinMatch;
          const std::size_t limit = std::min(kMaxMatch, n - pos);
          while (len < limit && data[candidate + len] == data[pos + len]) ++len;
          const std::uint16_t token = static_cast<std::uint16_t>(
              ((len - kMinMatch) << (16 - kMatchBits)) | offset);
          out[control_index] |= control_bit;
          out.push_back(static_cast<util::Byte>(token >> 8));
          out.push_back(static_cast<util::Byte>(token & 0xff));
          pos += len;
          emitted_match = true;
        }
      }
    }
    if (!emitted_match) {
      out.push_back(data[pos]);
      ++pos;
    }
    control_bit = static_cast<util::Byte>(control_bit << 1);
  }
  return out;
}

util::Bytes LzjbCodec::Decompress(util::ByteSpan input,
                                  std::size_t expected_size) const {
  util::Bytes out;
  out.reserve(expected_size);
  std::size_t pos = 0;
  util::Byte control = 0;
  util::Byte control_bit = 0;

  while (out.size() < expected_size) {
    if (control_bit == 0) {
      if (pos >= input.size()) throw std::runtime_error("lzjb: truncated");
      control = input[pos++];
      control_bit = 1;
    }
    if (control & control_bit) {
      if (pos + 2 > input.size()) throw std::runtime_error("lzjb: truncated match");
      const std::uint16_t token =
          static_cast<std::uint16_t>((input[pos] << 8) | input[pos + 1]);
      pos += 2;
      const std::size_t len = (token >> (16 - kMatchBits)) + kMinMatch;
      const std::size_t offset = token & kOffsetMask;
      if (offset == 0 || offset > out.size()) {
        throw std::runtime_error("lzjb: bad offset");
      }
      const std::size_t start = out.size() - offset;
      for (std::size_t i = 0; i < len && out.size() < expected_size; ++i) {
        out.push_back(out[start + i]);
      }
    } else {
      if (pos >= input.size()) throw std::runtime_error("lzjb: truncated literal");
      out.push_back(input[pos++]);
    }
    control_bit = static_cast<util::Byte>(control_bit << 1);
  }
  return out;
}

}  // namespace squirrel::compress
