// ZLE-style codec: ZFS's "zero length encoding", the cheapest compressor in
// its arsenal — it only collapses runs of zero bytes and copies everything
// else verbatim. Useful as a near-free baseline for mostly-binary content
// with embedded zero padding.
//
// Format: a stream of tokens. Token byte t:
//   t < 128  -> copy t+1 literal bytes that follow
//   t >= 128 -> a run of (t - 128 + kMinRun) zero bytes
// Zero runs shorter than kMinRun are emitted as literals (matching ZLE's
// "only worth it past a threshold" behaviour).
#pragma once

#include "compress/codec.h"

namespace squirrel::compress {

class ZleCodec final : public Codec {
 public:
  static constexpr std::size_t kMinRun = 4;
  static constexpr std::size_t kMaxRun = 127 + kMinRun;
  static constexpr std::size_t kMaxLiterals = 128;

  std::string_view name() const override { return "zle"; }
  util::Bytes Compress(util::ByteSpan input) const override;
  util::Bytes Decompress(util::ByteSpan input,
                         std::size_t expected_size) const override;
  CodecCost cost() const override { return {0.4, 0.3}; }
};

}  // namespace squirrel::compress
