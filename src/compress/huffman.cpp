#include "compress/huffman.h"

#include <algorithm>
#include <cassert>
#include <numeric>
#include <queue>
#include <stdexcept>

namespace squirrel::compress {
namespace {

struct Node {
  std::uint64_t freq;
  int left = -1;   // index into node pool, -1 for leaf
  int right = -1;
  std::size_t symbol = 0;  // valid for leaves
};

// Computes the depth of every leaf of the Huffman tree rooted at `root`.
void AssignDepths(const std::vector<Node>& pool, int root, unsigned depth,
                  std::vector<std::uint8_t>& lengths, unsigned& max_depth) {
  const Node& node = pool[root];
  if (node.left < 0) {
    lengths[node.symbol] = static_cast<std::uint8_t>(std::max(1u, depth));
    max_depth = std::max(max_depth, std::max(1u, depth));
    return;
  }
  AssignDepths(pool, node.left, depth + 1, lengths, max_depth);
  AssignDepths(pool, node.right, depth + 1, lengths, max_depth);
}

bool TryBuild(const std::vector<std::uint64_t>& freqs,
              std::vector<std::uint8_t>& lengths, unsigned& max_depth) {
  lengths.assign(freqs.size(), 0);
  max_depth = 0;

  std::vector<Node> pool;
  using Entry = std::pair<std::uint64_t, int>;  // (freq, pool index)
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap;
  for (std::size_t s = 0; s < freqs.size(); ++s) {
    if (freqs[s] == 0) continue;
    pool.push_back(Node{freqs[s], -1, -1, s});
    heap.emplace(freqs[s], static_cast<int>(pool.size() - 1));
  }
  if (heap.empty()) return true;  // nothing used
  if (heap.size() == 1) {
    lengths[pool[heap.top().second].symbol] = 1;
    max_depth = 1;
    return true;
  }
  while (heap.size() > 1) {
    const auto [fa, ia] = heap.top();
    heap.pop();
    const auto [fb, ib] = heap.top();
    heap.pop();
    pool.push_back(Node{fa + fb, ia, ib, 0});
    heap.emplace(fa + fb, static_cast<int>(pool.size() - 1));
  }
  AssignDepths(pool, heap.top().second, 0, lengths, max_depth);
  return max_depth <= kMaxCodeLength;
}

}  // namespace

std::vector<std::uint8_t> BuildCodeLengths(const std::vector<std::uint64_t>& freqs) {
  std::vector<std::uint64_t> damped = freqs;
  std::vector<std::uint8_t> lengths;
  unsigned max_depth = 0;
  // Damp frequencies until the optimal tree fits the depth limit. Each pass
  // halves the dynamic range, so this terminates quickly.
  while (!TryBuild(damped, lengths, max_depth)) {
    for (auto& f : damped) {
      if (f > 0) f = (f + 1) / 2;
    }
  }
  return lengths;
}

HuffmanEncoder::HuffmanEncoder(const std::vector<std::uint8_t>& lengths)
    : lengths_(lengths), codes_(lengths.size(), 0) {
  // Canonical assignment: symbols sorted by (length, index).
  std::array<std::uint32_t, kMaxCodeLength + 2> count{};
  for (auto len : lengths_) {
    if (len > 0) ++count[len];
  }
  std::array<std::uint32_t, kMaxCodeLength + 2> next_code{};
  std::uint32_t code = 0;
  for (unsigned len = 1; len <= kMaxCodeLength; ++len) {
    code = (code + count[len - 1]) << 1;
    next_code[len] = code;
  }
  for (std::size_t s = 0; s < lengths_.size(); ++s) {
    if (lengths_[s] > 0) codes_[s] = next_code[lengths_[s]]++;
  }
}

void HuffmanEncoder::Encode(BitWriter& writer, std::size_t symbol) const {
  const unsigned len = lengths_[symbol];
  assert(len > 0 && "encoding a symbol with no code");
  const std::uint32_t code = codes_[symbol];
  // Codes are canonical (MSB-first); emit them bit by bit so the decoder can
  // walk the canonical ranges as bits arrive.
  for (unsigned i = len; i-- > 0;) {
    writer.Write((code >> i) & 1u, 1);
  }
}

HuffmanDecoder::HuffmanDecoder(const std::vector<std::uint8_t>& lengths) {
  for (auto len : lengths) {
    if (len > kMaxCodeLength) throw std::runtime_error("invalid code length");
    if (len > 0) ++count_[len];
  }
  std::uint32_t code = 0;
  std::uint32_t offset = 0;
  for (unsigned len = 1; len <= kMaxCodeLength; ++len) {
    code = (code + count_[len - 1]) << 1;
    first_code_[len] = code;
    symbol_offset_[len] = offset;
    offset += count_[len];
  }
  sorted_symbols_.resize(offset);
  std::array<std::uint32_t, kMaxCodeLength + 2> fill = symbol_offset_;
  for (std::size_t s = 0; s < lengths.size(); ++s) {
    if (lengths[s] > 0) sorted_symbols_[fill[lengths[s]]++] = static_cast<std::uint32_t>(s);
  }
}

std::size_t HuffmanDecoder::Decode(BitReader& reader) const {
  std::uint32_t code = 0;
  for (unsigned len = 1; len <= kMaxCodeLength; ++len) {
    code = (code << 1) | reader.ReadBit();
    if (count_[len] != 0 && code >= first_code_[len] &&
        code < first_code_[len] + count_[len]) {
      return sorted_symbols_[symbol_offset_[len] + (code - first_code_[len])];
    }
  }
  throw std::runtime_error("invalid Huffman code");
}

void WriteCodeLengths(BitWriter& writer, const std::vector<std::uint8_t>& lengths) {
  // 4 bits per length; a zero is followed by a 6-bit run extension so long
  // stretches of unused symbols stay cheap.
  std::size_t i = 0;
  while (i < lengths.size()) {
    if (lengths[i] == 0) {
      std::size_t run = 1;
      while (i + run < lengths.size() && lengths[i + run] == 0 && run < 64) ++run;
      writer.Write(0, 4);
      writer.Write(static_cast<std::uint32_t>(run - 1), 6);
      i += run;
    } else {
      writer.Write(lengths[i], 4);
      ++i;
    }
  }
}

std::vector<std::uint8_t> ReadCodeLengths(BitReader& reader, std::size_t symbol_count) {
  std::vector<std::uint8_t> lengths(symbol_count, 0);
  std::size_t i = 0;
  while (i < symbol_count) {
    const std::uint32_t value = reader.Read(4);
    if (value == 0) {
      const std::size_t run = reader.Read(6) + 1;
      if (i + run > symbol_count) throw std::runtime_error("code length overrun");
      i += run;
    } else {
      lengths[i++] = static_cast<std::uint8_t>(value);
    }
  }
  return lengths;
}

}  // namespace squirrel::compress
