// Codec interface and registry.
//
// The paper evaluates gzip-6, gzip-9, lz4 and lzjb as ZFS inline compressors
// (Figure 3). We implement each family from scratch:
//   * "gzipN"  -> Deflate-style LZ77 + canonical Huffman at effort level N
//   * "lz4"    -> byte-oriented greedy LZ with literal runs, no entropy stage
//   * "lzjb"   -> ZFS's simple bitmap-controlled LZ
//   * "null"   -> identity (the "compression=off" baseline)
// Formats are self-consistent (round-trip verified by property tests), not
// wire-compatible with the originals; only ratio ordering and cost ordering
// matter for the reproduction.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "util/bytes.h"

namespace squirrel::compress {

/// Typed codec identifier used throughout configuration structs
/// (BlockStoreConfig, VolumeConfig). String names appear only at the
/// CLI/bench boundary (ParseCodec) and in wire/image formats (CodecName).
/// Enumerator order matches registry order.
enum class CodecId : std::uint8_t {
  kNull = 0,
  kGzip1,
  kGzip2,
  kGzip3,
  kGzip4,
  kGzip5,
  kGzip6,
  kGzip7,
  kGzip8,
  kGzip9,
  kLz4,
  kLzjb,
  kZle,
};

inline constexpr std::size_t kCodecCount = 13;

/// Approximate CPU cost of a codec, in nanoseconds per input byte. Feeds the
/// boot-time simulator, which charges decompression on every block read from
/// a compressed volume.
struct CodecCost {
  double compress_ns_per_byte;
  double decompress_ns_per_byte;
};

class Codec {
 public:
  virtual ~Codec() = default;

  virtual std::string_view name() const = 0;

  /// Compresses `input`. The result always round-trips through Decompress.
  /// Codecs may return a payload larger than the input for incompressible
  /// data; callers (the volume write path) decide whether to keep it.
  virtual util::Bytes Compress(util::ByteSpan input) const = 0;

  /// Decompresses `input` produced by this codec's Compress. `expected_size`
  /// is the original payload size (block stores record it in metadata, as ZFS
  /// does in the block pointer). Throws std::runtime_error on corruption.
  virtual util::Bytes Decompress(util::ByteSpan input,
                                 std::size_t expected_size) const = 0;

  virtual CodecCost cost() const = 0;
};

/// Looks up a codec by name ("gzip1".."gzip9", "lz4", "lzjb", "null").
/// Returns nullptr for unknown names. Returned pointers are owned by the
/// registry and valid for the program lifetime; codecs are stateless and
/// thread-safe.
const Codec* FindCodec(std::string_view name);

/// Codec implementation for a typed id. Never fails: every CodecId has a
/// registered implementation. Same ownership/thread-safety as FindCodec.
const Codec& GetCodec(CodecId id);

/// Canonical name of a typed id ("gzip6", "null", ...), for wire formats,
/// logs and CLI round trips.
std::string_view CodecName(CodecId id);

/// Parses a codec name into its typed id; std::nullopt for unknown names.
/// This is the only supported path from strings to CodecId — keep it at
/// CLI/bench/deserialization boundaries.
std::optional<CodecId> ParseCodec(std::string_view name);

/// Names of all registered codecs, in registry order.
std::vector<std::string> CodecNames();

}  // namespace squirrel::compress
