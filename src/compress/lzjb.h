// LZJB-style codec: the simple LZ scheme ZFS uses for `compression=lzjb`.
//
// A control byte precedes every 8 items; each control bit selects either one
// literal byte or a 2-byte match token (6-bit length-3, 10-bit offset) found
// through a tiny 3-byte-hash table. The 1 KiB offset window and 66-byte max
// match are why its ratio trails lz4 in Figure 3.
#pragma once

#include "compress/codec.h"

namespace squirrel::compress {

class LzjbCodec final : public Codec {
 public:
  std::string_view name() const override { return "lzjb"; }
  util::Bytes Compress(util::ByteSpan input) const override;
  util::Bytes Decompress(util::ByteSpan input,
                         std::size_t expected_size) const override;
  CodecCost cost() const override { return {3.5, 1.2}; }
};

}  // namespace squirrel::compress
