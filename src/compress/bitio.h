// LSB-first bit stream reader/writer used by the Deflate-style codec.
#pragma once

#include <cstdint>
#include <stdexcept>

#include "util/bytes.h"

namespace squirrel::compress {

class BitWriter {
 public:
  /// Appends the low `count` bits of `bits` (count <= 32), LSB first.
  void Write(std::uint32_t bits, unsigned count) {
    acc_ |= static_cast<std::uint64_t>(bits & ((count < 32) ? ((1u << count) - 1) : 0xffffffffu))
            << filled_;
    filled_ += count;
    while (filled_ >= 8) {
      out_.push_back(static_cast<util::Byte>(acc_ & 0xff));
      acc_ >>= 8;
      filled_ -= 8;
    }
  }

  /// Flushes any partial byte (zero padded) and returns the buffer.
  util::Bytes Finish() {
    if (filled_ > 0) {
      out_.push_back(static_cast<util::Byte>(acc_ & 0xff));
      acc_ = 0;
      filled_ = 0;
    }
    return std::move(out_);
  }

  std::size_t bit_count() const { return out_.size() * 8 + filled_; }

 private:
  util::Bytes out_;
  std::uint64_t acc_ = 0;
  unsigned filled_ = 0;
};

class BitReader {
 public:
  explicit BitReader(util::ByteSpan data) : data_(data) {}

  /// Reads `count` bits (count <= 32), LSB first. Throws on underflow.
  std::uint32_t Read(unsigned count) {
    while (filled_ < count) {
      if (pos_ >= data_.size()) {
        throw std::runtime_error("bit stream underflow");
      }
      acc_ |= static_cast<std::uint64_t>(data_[pos_++]) << filled_;
      filled_ += 8;
    }
    const std::uint32_t value =
        static_cast<std::uint32_t>(acc_ & ((count < 32) ? ((1ull << count) - 1) : 0xffffffffull));
    acc_ >>= count;
    filled_ -= count;
    return value;
  }

  /// Reads a single bit.
  std::uint32_t ReadBit() { return Read(1); }

 private:
  util::ByteSpan data_;
  std::size_t pos_ = 0;
  std::uint64_t acc_ = 0;
  unsigned filled_ = 0;
};

}  // namespace squirrel::compress
