// Deflate-style codec: LZ77 with a hash-chain match finder followed by
// canonical Huffman coding of literal/length and distance symbols.
//
// Effort levels 1..9 trade match-search depth (and lazy matching) for ratio,
// mirroring gzip's levels. The container format is our own:
//
//   byte 0: mode (0 = stored, 1 = huffman)
//   stored:  raw payload
//   huffman: [litlen code lengths][dist code lengths][token bit stream]
//
// Distances cover the whole input (blocks are at most a few MiB), unlike
// zlib's 32 KiB window — larger blocks therefore compress strictly better,
// which is the block-size trend Figure 2 depends on.
#pragma once

#include "compress/codec.h"

namespace squirrel::compress {

class DeflateCodec final : public Codec {
 public:
  /// `level` in [1, 9].
  explicit DeflateCodec(int level);

  std::string_view name() const override { return name_; }
  util::Bytes Compress(util::ByteSpan input) const override;
  util::Bytes Decompress(util::ByteSpan input,
                         std::size_t expected_size) const override;
  CodecCost cost() const override;

  int level() const { return level_; }

 private:
  int level_;
  std::string name_;
  unsigned max_chain_;   // match-finder chain depth
  unsigned nice_length_; // stop searching once a match this long is found
  bool lazy_;            // one-step lazy matching
};

}  // namespace squirrel::compress
