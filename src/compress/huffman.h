// Canonical Huffman coding over a generic symbol alphabet.
//
// Code lengths are limited to kMaxCodeLength; the builder repeatedly damps
// frequencies if the optimal tree exceeds that depth (the classic zlib-style
// workaround, simpler than package-merge and near-optimal in practice).
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "compress/bitio.h"

namespace squirrel::compress {

inline constexpr unsigned kMaxCodeLength = 15;

/// Builds canonical code lengths for `freqs` (0-frequency symbols get length
/// 0 and no code). If only one symbol is used it receives length 1.
std::vector<std::uint8_t> BuildCodeLengths(const std::vector<std::uint64_t>& freqs);

/// Canonical encoder: maps symbol -> (code bits, length).
class HuffmanEncoder {
 public:
  explicit HuffmanEncoder(const std::vector<std::uint8_t>& lengths);

  void Encode(BitWriter& writer, std::size_t symbol) const;
  std::uint8_t length(std::size_t symbol) const { return lengths_[symbol]; }

 private:
  std::vector<std::uint8_t> lengths_;
  std::vector<std::uint32_t> codes_;
};

/// Canonical decoder built from the same code-length vector.
class HuffmanDecoder {
 public:
  explicit HuffmanDecoder(const std::vector<std::uint8_t>& lengths);

  /// Decodes one symbol; throws std::runtime_error on invalid codes.
  std::size_t Decode(BitReader& reader) const;

 private:
  // first_code_[len] / first_symbol_[len] give the canonical decode walk.
  std::array<std::uint32_t, kMaxCodeLength + 2> first_code_{};
  std::array<std::uint32_t, kMaxCodeLength + 2> count_{};
  std::array<std::uint32_t, kMaxCodeLength + 2> symbol_offset_{};
  std::vector<std::uint32_t> sorted_symbols_;
};

/// Serializes code lengths compactly (4 bits per symbol, with a simple
/// zero-run escape) and reads them back.
void WriteCodeLengths(BitWriter& writer, const std::vector<std::uint8_t>& lengths);
std::vector<std::uint8_t> ReadCodeLengths(BitReader& reader, std::size_t symbol_count);

}  // namespace squirrel::compress
