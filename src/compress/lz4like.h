// LZ4-style codec: greedy byte-oriented LZ with no entropy stage.
//
// Sequence format (own container, LZ4-inspired):
//   token byte: high nibble = literal run length, low nibble = match length
//   (both with 255-escape continuation bytes), followed by the literals and
//   a 2-byte little-endian match offset. Minimum match is 4 bytes.
// The missing entropy stage is why its ratio trails gzip in Figure 3 while
// being several times faster — the cost model encodes that trade-off.
#pragma once

#include "compress/codec.h"

namespace squirrel::compress {

class Lz4LikeCodec final : public Codec {
 public:
  std::string_view name() const override { return "lz4"; }
  util::Bytes Compress(util::ByteSpan input) const override;
  util::Bytes Decompress(util::ByteSpan input,
                         std::size_t expected_size) const override;
  CodecCost cost() const override { return {2.5, 0.6}; }
};

}  // namespace squirrel::compress
