#include "compress/lz4like.h"

#include <cstring>
#include <stdexcept>
#include <vector>

namespace squirrel::compress {
namespace {

constexpr std::size_t kMinMatch = 4;
constexpr std::size_t kMaxOffset = 65535;
constexpr unsigned kHashBits = 13;

std::uint32_t Load32(const util::Byte* p) {
  std::uint32_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

std::uint32_t HashAt(const util::Byte* p) {
  return (Load32(p) * 2654435761u) >> (32 - kHashBits);
}

void WriteVarRun(util::Bytes& out, std::size_t value) {
  // 255-escape continuation, as in LZ4's length encoding.
  while (value >= 255) {
    out.push_back(255);
    value -= 255;
  }
  out.push_back(static_cast<util::Byte>(value));
}

std::size_t ReadVarRun(util::ByteSpan input, std::size_t& pos, std::size_t base) {
  std::size_t value = base;
  if (base != 15 && base != 255) return value;  // no continuation needed
  for (;;) {
    if (pos >= input.size()) throw std::runtime_error("lz4: truncated run");
    const util::Byte b = input[pos++];
    value += b;
    if (b != 255) return value;
  }
}

}  // namespace

util::Bytes Lz4LikeCodec::Compress(util::ByteSpan input) const {
  util::Bytes out;
  out.reserve(input.size() / 2 + 16);
  const util::Byte* data = input.data();
  const std::size_t n = input.size();

  std::vector<std::int32_t> table(1u << kHashBits, -1);

  std::size_t pos = 0;
  std::size_t literal_start = 0;

  auto emit_sequence = [&](std::size_t match_len, std::size_t offset) {
    const std::size_t literals = pos - literal_start;
    const std::size_t lit_nibble = std::min<std::size_t>(literals, 15);
    const std::size_t match_code = match_len - kMinMatch;
    const std::size_t match_nibble = std::min<std::size_t>(match_code, 15);
    out.push_back(static_cast<util::Byte>((lit_nibble << 4) | match_nibble));
    if (lit_nibble == 15) WriteVarRun(out, literals - 15);
    out.insert(out.end(), data + literal_start, data + pos);
    out.push_back(static_cast<util::Byte>(offset & 0xff));
    out.push_back(static_cast<util::Byte>(offset >> 8));
    if (match_nibble == 15) WriteVarRun(out, match_code - 15);
  };

  while (pos + kMinMatch <= n) {
    const std::uint32_t h = HashAt(data + pos);
    const std::int32_t candidate = table[h];
    table[h] = static_cast<std::int32_t>(pos);
    if (candidate >= 0 && pos - candidate <= kMaxOffset &&
        Load32(data + candidate) == Load32(data + pos)) {
      std::size_t len = kMinMatch;
      const std::size_t limit = n - pos;
      while (len < limit && data[candidate + len] == data[pos + len]) ++len;
      const std::size_t offset = pos - static_cast<std::size_t>(candidate);
      emit_sequence(len, offset);
      // Index a couple of positions inside the match for future references.
      for (std::size_t i = 1; i < len && i < 4; ++i) {
        if (pos + i + 4 <= n) table[HashAt(data + pos + i)] =
            static_cast<std::int32_t>(pos + i);
      }
      pos += len;
      literal_start = pos;
    } else {
      ++pos;
    }
  }

  // Trailing literal run, marked by a token with match nibble 0 and offset 0.
  pos = n;
  const std::size_t literals = pos - literal_start;
  const std::size_t lit_nibble = std::min<std::size_t>(literals, 15);
  out.push_back(static_cast<util::Byte>(lit_nibble << 4));
  if (lit_nibble == 15) WriteVarRun(out, literals - 15);
  out.insert(out.end(), data + literal_start, data + pos);
  out.push_back(0);
  out.push_back(0);
  return out;
}

util::Bytes Lz4LikeCodec::Decompress(util::ByteSpan input,
                                     std::size_t expected_size) const {
  util::Bytes out;
  out.reserve(expected_size);
  std::size_t pos = 0;
  while (pos < input.size()) {
    const util::Byte token = input[pos++];
    const std::size_t lit_base = token >> 4;
    const std::size_t match_base = token & 0xf;
    const std::size_t literals = ReadVarRun(input, pos, lit_base);
    if (pos + literals > input.size()) {
      throw std::runtime_error("lz4: truncated literals");
    }
    out.insert(out.end(), input.begin() + pos, input.begin() + pos + literals);
    pos += literals;
    if (pos + 2 > input.size()) throw std::runtime_error("lz4: truncated offset");
    const std::size_t offset = input[pos] | (input[pos + 1] << 8);
    pos += 2;
    if (offset == 0) break;  // end-of-stream marker
    const std::size_t match_len =
        ReadVarRun(input, pos, match_base) + kMinMatch;
    if (offset > out.size()) throw std::runtime_error("lz4: bad offset");
    const std::size_t start = out.size() - offset;
    for (std::size_t i = 0; i < match_len; ++i) out.push_back(out[start + i]);
    if (out.size() > expected_size) throw std::runtime_error("lz4: overrun");
  }
  if (out.size() != expected_size) {
    throw std::runtime_error("lz4: output size mismatch");
  }
  return out;
}

}  // namespace squirrel::compress
