#include "compress/zle.h"

#include <stdexcept>

namespace squirrel::compress {

util::Bytes ZleCodec::Compress(util::ByteSpan input) const {
  util::Bytes out;
  out.reserve(input.size() / 2 + 16);
  std::size_t pos = 0;
  std::size_t literal_start = 0;

  auto flush_literals = [&](std::size_t end) {
    std::size_t start = literal_start;
    while (start < end) {
      const std::size_t take = std::min(kMaxLiterals, end - start);
      out.push_back(static_cast<util::Byte>(take - 1));
      out.insert(out.end(), input.begin() + static_cast<std::ptrdiff_t>(start),
                 input.begin() + static_cast<std::ptrdiff_t>(start + take));
      start += take;
    }
  };

  while (pos < input.size()) {
    if (input[pos] == 0) {
      std::size_t run = 1;
      while (pos + run < input.size() && input[pos + run] == 0 &&
             run < kMaxRun) {
        ++run;
      }
      if (run >= kMinRun) {
        flush_literals(pos);
        out.push_back(static_cast<util::Byte>(128 + run - kMinRun));
        pos += run;
        literal_start = pos;
        continue;
      }
      pos += run;  // short zero run stays literal
    } else {
      ++pos;
    }
  }
  flush_literals(input.size());
  return out;
}

util::Bytes ZleCodec::Decompress(util::ByteSpan input,
                                 std::size_t expected_size) const {
  util::Bytes out;
  out.reserve(expected_size);
  std::size_t pos = 0;
  while (pos < input.size()) {
    const util::Byte token = input[pos++];
    if (token < 128) {
      const std::size_t take = std::size_t(token) + 1;
      if (pos + take > input.size()) {
        throw std::runtime_error("zle: truncated literals");
      }
      out.insert(out.end(), input.begin() + static_cast<std::ptrdiff_t>(pos),
                 input.begin() + static_cast<std::ptrdiff_t>(pos + take));
      pos += take;
    } else {
      out.insert(out.end(), std::size_t(token) - 128 + kMinRun, 0);
    }
    if (out.size() > expected_size) throw std::runtime_error("zle: overrun");
  }
  if (out.size() != expected_size) {
    throw std::runtime_error("zle: output size mismatch");
  }
  return out;
}

}  // namespace squirrel::compress
