#include "compress/codec.h"

#include <array>
#include <memory>
#include <stdexcept>

#include "compress/deflate.h"
#include "compress/lz4like.h"
#include "compress/lzjb.h"
#include "compress/zle.h"

namespace squirrel::compress {
namespace {

/// Identity codec: the `compression=off` baseline.
class NullCodec final : public Codec {
 public:
  std::string_view name() const override { return "null"; }
  util::Bytes Compress(util::ByteSpan input) const override {
    return util::Bytes(input.begin(), input.end());
  }
  util::Bytes Decompress(util::ByteSpan input,
                         std::size_t expected_size) const override {
    if (input.size() != expected_size) {
      throw std::runtime_error("null: size mismatch");
    }
    return util::Bytes(input.begin(), input.end());
  }
  CodecCost cost() const override { return {0.0, 0.0}; }
};

struct Registry {
  std::vector<std::unique_ptr<Codec>> codecs;

  Registry() {
    codecs.push_back(std::make_unique<NullCodec>());
    for (int level = 1; level <= 9; ++level) {
      codecs.push_back(std::make_unique<DeflateCodec>(level));
    }
    codecs.push_back(std::make_unique<Lz4LikeCodec>());
    codecs.push_back(std::make_unique<LzjbCodec>());
    codecs.push_back(std::make_unique<ZleCodec>());
  }
};

const Registry& GetRegistry() {
  static const Registry registry;
  return registry;
}

}  // namespace

const Codec* FindCodec(std::string_view name) {
  for (const auto& codec : GetRegistry().codecs) {
    if (codec->name() == name) return codec.get();
  }
  return nullptr;
}

const Codec& GetCodec(CodecId id) {
  const auto& codecs = GetRegistry().codecs;
  const auto index = static_cast<std::size_t>(id);
  if (index >= codecs.size()) throw std::invalid_argument("bad CodecId");
  return *codecs[index];
}

std::string_view CodecName(CodecId id) { return GetCodec(id).name(); }

std::optional<CodecId> ParseCodec(std::string_view name) {
  const auto& codecs = GetRegistry().codecs;
  for (std::size_t i = 0; i < codecs.size(); ++i) {
    if (codecs[i]->name() == name) return static_cast<CodecId>(i);
  }
  return std::nullopt;
}

std::vector<std::string> CodecNames() {
  std::vector<std::string> names;
  for (const auto& codec : GetRegistry().codecs) {
    names.emplace_back(codec->name());
  }
  return names;
}

}  // namespace squirrel::compress
