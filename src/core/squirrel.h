// Squirrel: fully replicated scatter-hoarded storage of VMI caches
// (Section 3).
//
// One storage-side cache volume (scVolume) holds the deduplicated,
// compressed boot caches of every registered VMI. Every compute node holds a
// ccVolume — a full replica kept in sync through ZFS-style incremental
// snapshot streams:
//
//   Register(request):   boot once near the storage node to produce the
//                        cache, store it in the scVolume, snapshot, and
//                        multicast the snapshot diff to all online compute
//                        nodes (§3.2).
//   Boot(node, request): chain an empty CoW overlay over the node's ccVolume
//                        cache file over the (remote) base VMI; a warm
//                        replica serves every boot read locally (§3.3).
//   Deregister(image):   delete the cache (no snapshot; the deletion
//                        propagates with the next registration) (§3.4).
//   SyncNode(node):      on node boot, catch up from its latest local
//                        snapshot; if the storage side already pruned that
//                        snapshot, fall back to full replication (§3.5).
//   RunGc():             daily cron — prune snapshots older than the
//                        retention window, always keeping the latest (§3.4).
//
// Workflow inputs travel in request structs (RegisterRequest, BootRequest)
// with a shared SimClock `now` convention — see core/config.h for the
// configuration and clock types.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/config.h"
#include "cow/chain.h"
#include "placement/layout.h"
#include "placement/reed_solomon.h"
#include "placement/shard_store.h"
#include "sim/boot_sim.h"
#include "sim/devices.h"
#include "sim/io_context.h"
#include "sim/network.h"
#include "util/fault_injector.h"
#include "util/source.h"
#include "zvol/volume.h"

namespace squirrel::core {

/// Register a VMI's boot cache with the cluster (§3.2).
struct RegisterRequest {
  std::string image_id;
  /// The boot working set view of the image — what the registration boot
  /// writes copy-on-read. Borrowed for the duration of the call.
  const util::DataSource& cache_content;
  /// Simulated time of the registration (snapshot timestamp).
  SimClock now{};
};

/// Boot a VM from a compute node's local ccVolume replica (§3.3).
struct BootRequest {
  std::string image_id;
  /// The (remote) base VMI the CoW chain bottoms out in.
  const util::DataSource& base_image;
  /// The boot's read trace, replayed through the chain.
  const std::vector<vmi::BootRead>& trace;
  /// Optional write trace (logs, /run, tmp) replayed into the VM's CoW
  /// overlay after the reads.
  const std::vector<vmi::BootRead>* writes = nullptr;
  /// Optional sparse map of the base image, so copy-on-write fills of
  /// unallocated ranges stay off the network.
  sim::RemoteImageDevice::AllocationMap allocation = {};
  /// Optional profile recording/replay (pre-heal + prefetch).
  const BootProfileRun* profile = nullptr;
  sim::BootSimConfig boot_config{};
  /// Heal corrupt ccVolume blocks through a multi-peer RepairSession (other
  /// online compute replicas first, the storage node last) instead of the
  /// single storage-node source. Peers may serve Byzantine payloads under
  /// the cluster's fault injector; lying peers strike out and the block
  /// re-sources from the next replica. Default off: the single-peer path
  /// keeps existing bench output byte-identical.
  bool peer_repair_sources = false;
};

struct RegistrationReport {
  std::string image_id;
  std::string snapshot_name;
  std::uint64_t cache_logical_bytes = 0;  // nonzero cache content written
  std::uint64_t diff_wire_bytes = 0;      // incremental stream size
  std::uint32_t receivers = 0;            // online compute nodes updated
  double total_seconds = 0.0;             // §3.2: should be well under a minute
  TransferStats transfers{};              // delivery attempts/retries per run
};

struct SyncReport {
  bool full_resync = false;
  std::uint64_t wire_bytes = 0;
  std::uint32_t snapshots_advanced = 0;
  double seconds = 0.0;
  TransferStats transfers{};
};

struct BootReport {
  sim::BootResult result;
  std::uint64_t network_bytes = 0;  // base-VMI bytes pulled over the network
  /// Degraded-mode healing during the boot: corrupt ccVolume blocks
  /// re-fetched on demand from the storage node (included in network_bytes).
  std::uint64_t repaired_blocks_bytes = 0;
  std::uint64_t repair_reads = 0;
  /// Pre-heal pass (profile replay with pre_heal): range reads that had to
  /// fetch clean copies from the storage node *before* the guest started —
  /// repairs moved off the boot's critical path. Bytes are included in
  /// network_bytes but charge no simulated boot time.
  std::uint64_t preheal_repair_fetches = 0;
  std::uint64_t preheal_repaired_bytes = 0;
  /// Profile-guided background reads issued while the guest booted.
  std::uint64_t prefetch_issued = 0;
  /// Multi-peer repair (peer_repair_sources): Byzantine payloads caught by
  /// the post-decompress digest check, peers struck out for serving them,
  /// and blocks healed from a different replica after a peer lied.
  std::uint64_t byzantine_rejected = 0;
  std::uint64_t peers_blacklisted = 0;
  std::uint64_t resourced_blocks = 0;
  /// Striped-placement boots only (zero under full replication): blocks
  /// rebuilt through parity when a data-shard holder was unreachable,
  /// parity shards those rebuilds consumed, and blocks the set could not
  /// serve at all (more than m members down, or a rebuild that failed its
  /// digest check) — each fallback is one whole-block storage-node refetch.
  std::uint64_t reconstructed_blocks = 0;
  std::uint64_t parity_reads = 0;
  std::uint64_t reconstruct_fallbacks = 0;
  /// Set-local shard traffic of a striped boot (included in network_bytes).
  std::uint64_t shard_remote_bytes = 0;
};

/// One compute node: its ccVolume and availability state.
class ComputeNode {
 public:
  ComputeNode(std::uint32_t id, const zvol::VolumeConfig& config)
      : id_(id), volume_(config) {}

  std::uint32_t id() const { return id_; }
  bool online() const { return online_; }
  void set_online(bool online) { online_ = online; }

  zvol::Volume& volume() { return volume_; }
  const zvol::Volume& volume() const { return volume_; }

  /// Striped placement: this node's shard of each unique block (empty under
  /// full replication, where `volume()` holds whole-block replicas instead).
  placement::ShardStore& shards() { return shards_; }
  const placement::ShardStore& shards() const { return shards_; }

  /// Latest scVolume snapshot id whose shard set this node has installed
  /// (the striped analogue of the ccVolume's own snapshot chain).
  std::uint64_t shard_synced_id() const { return shard_synced_id_; }
  void set_shard_synced_id(std::uint64_t id) { shard_synced_id_ = id; }

 private:
  std::uint32_t id_;
  bool online_ = true;
  zvol::Volume volume_;
  placement::ShardStore shards_;
  std::uint64_t shard_synced_id_ = 0;
};

class SquirrelCluster {
 public:
  /// Node ids: 0 is the storage node; compute nodes are 1..compute_count.
  SquirrelCluster(SquirrelConfig config, std::uint32_t compute_count,
                  sim::NetworkConfig net_config = {});

  // --- workflows -----------------------------------------------------------

  /// Registers a VMI: ingest the cache, snapshot the scVolume, and fan the
  /// incremental diff out to all online nodes.
  RegistrationReport Register(const RegisterRequest& request);

  /// Deletes the cache from the scVolume. No snapshot (§3.4); ccVolumes
  /// learn about it with the next registration's snapshot.
  void Deregister(const std::string& image_id, SimClock now);

  /// Brings one node's ccVolume up to date (the node-boot path, §3.5).
  SyncReport SyncNode(std::uint32_t compute_node, SimClock now);

  /// Daily garbage collection on the scVolume and every online ccVolume.
  void RunGc(SimClock now);

  /// Boots a VM on `compute_node` from its local ccVolume replica, chained
  /// over the remote base image. Returns boot timing and the network bytes
  /// the boot consumed (zero when the replica is warm). See BootRequest for
  /// the optional write trace, allocation map, and profile run.
  BootReport Boot(std::uint32_t compute_node, const BootRequest& request,
                  sim::IoContext& io);

  // --- introspection ---------------------------------------------------------

  zvol::Volume& storage_volume() { return sc_volume_; }
  ComputeNode& compute_node(std::uint32_t i) { return *compute_nodes_.at(i); }
  std::uint32_t compute_count() const {
    return static_cast<std::uint32_t>(compute_nodes_.size());
  }
  sim::NetworkAccountant& network() { return network_; }
  const SquirrelConfig& config() const { return config_; }

  /// The storage-set layout, or nullptr under full replication.
  const placement::StorageSetLayout* layout() const {
    return layout_.has_value() ? &*layout_ : nullptr;
  }
  /// True when `compute_node` (0-based index) stores shards instead of
  /// whole-block replicas.
  bool NodeStriped(std::uint32_t compute_node) const {
    return layout_.has_value() && layout_->NodeStriped(compute_node + 1);
  }

  /// Arms fault injection on replication transfers, degraded boots, crash
  /// points inside every volume's Receive path, and the Byzantine peer
  /// model. The injector is borrowed (caller keeps ownership); nullptr
  /// disarms, and a disarmed cluster's accounting is bit-identical to one
  /// that never had an injector. Arming forwards to the scVolume and every
  /// ccVolume, which switches their Receive paths to transactional mode
  /// (staged apply + rollback) — logically identical when no crash fires.
  void SetFaultInjector(util::FaultInjector* faults) {
    faults_ = faults;
    sc_volume_.SetFaultInjector(faults);
    for (const auto& node : compute_nodes_) {
      node->volume().SetFaultInjector(faults);
    }
  }

  /// Registered image ids, in registration order.
  const std::vector<std::string>& registered_images() const {
    return registered_;
  }

  static std::string CacheFileName(const std::string& image_id) {
    return "cache/" + image_id;
  }

 private:
  /// Striped propagation: installs every shard `node` should hold for the
  /// scVolume's current file table but doesn't yet. Returns the shard bytes
  /// newly installed (the node's wire cost).
  std::uint64_t InstallShards(ComputeNode& node);

  /// Boot through the striped cache device (placement::StripedFileDevice)
  /// instead of the node's (empty) ccVolume replica.
  BootReport BootStriped(std::uint32_t compute_node, const BootRequest& request,
                         sim::IoContext& io);

  SquirrelConfig config_;
  zvol::Volume sc_volume_;
  std::vector<std::unique_ptr<ComputeNode>> compute_nodes_;
  sim::NetworkAccountant network_;
  std::vector<std::string> registered_;
  std::uint64_t registration_counter_ = 0;
  util::FaultInjector* faults_ = nullptr;  // borrowed; nullptr = no faults
  std::uint64_t transfer_counter_ = 0;
  /// Striped placement only (nullopt under full replication, which must
  /// stay byte-identical to the pre-placement paths).
  std::optional<placement::StorageSetLayout> layout_;
  std::optional<placement::ReedSolomon> codec_;
};

}  // namespace squirrel::core
