// Squirrel: fully replicated scatter-hoarded storage of VMI caches
// (Section 3).
//
// One storage-side cache volume (scVolume) holds the deduplicated,
// compressed boot caches of every registered VMI. Every compute node holds a
// ccVolume — a full replica kept in sync through ZFS-style incremental
// snapshot streams:
//
//   register(image):   boot once near the storage node to produce the cache,
//                      store it in the scVolume, snapshot, and multicast the
//                      snapshot diff to all online compute nodes (§3.2).
//   boot(node, image): chain an empty CoW overlay over the node's ccVolume
//                      cache file over the (remote) base VMI; a warm replica
//                      serves every boot read locally (§3.3).
//   deregister(image): delete the cache (no snapshot; the deletion
//                      propagates with the next registration) (§3.4).
//   sync(node):        on node boot, catch up from its latest local snapshot;
//                      if the storage side already pruned that snapshot, fall
//                      back to full replication (§3.5).
//   gc():              daily cron — prune snapshots older than the retention
//                      window, always keeping the latest (§3.4).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/scatter_gather.h"
#include "cow/chain.h"
#include "sim/boot_sim.h"
#include "sim/devices.h"
#include "sim/io_context.h"
#include "sim/network.h"
#include "util/fault_injector.h"
#include "util/source.h"
#include "zvol/volume.h"

namespace squirrel::core {

/// How a registration diff reaches the compute nodes (§3.2 discusses IP
/// multicast; §5.2 the peer-to-peer / LANTorrent-style alternatives).
enum class PropagationStrategy {
  kMulticast,  // one stream on the wire, all online nodes receive (default)
  kUnicast,    // one stream per node — storage-node egress scales with n
  kPipeline,   // LANTorrent-style chain: each node receives and forwards once
};

// RetryPolicy, BackoffSeconds, and TransferStats live in
// core/scatter_gather.h with the delivery engine; this header re-exposes
// them through its include for existing users.

struct SquirrelConfig {
  /// 64 KiB, gzip6, dedup — the paper's choice. `volume.ingest` (threads,
  /// batch size) flows through to the scVolume and every ccVolume, so
  /// Register's cache ingest runs on the batch hash/compress pipeline;
  /// accounting is identical at any thread count.
  zvol::VolumeConfig volume{};
  PropagationStrategy propagation = PropagationStrategy::kMulticast;
  /// Offline-propagation window `n` (§3.4/§3.5), in simulated seconds.
  std::uint64_t retention_seconds = 7ull * 24 * 3600;
  /// Time one registration boot takes on the storage node (the paper
  /// measured < 20 s average for the dataset).
  double registration_boot_seconds = 20.0;
  /// Snapshot creation cost (read-only snapshots are cheap).
  double snapshot_seconds = 0.1;
  /// Throughput of generating/apply a send stream, bytes/s.
  double stream_processing_bytes_per_second = 200e6;
  /// Retry schedule for registration propagation and node sync transfers.
  RetryPolicy retry{};
  /// Delivery engine for the fan out: window 1 is the serial per-node retry
  /// model (legacy accounting, bit-identical); window > 1 runs retries
  /// event-driven with chunked retransmissions contending for the sender
  /// link (see core/scatter_gather.h).
  ScatterGatherConfig transfer{};
};

struct RegistrationReport {
  std::string image_id;
  std::string snapshot_name;
  std::uint64_t cache_logical_bytes = 0;  // nonzero cache content written
  std::uint64_t diff_wire_bytes = 0;      // incremental stream size
  std::uint32_t receivers = 0;            // online compute nodes updated
  double total_seconds = 0.0;             // §3.2: should be well under a minute
  TransferStats transfers{};              // delivery attempts/retries per run
};

struct SyncReport {
  bool full_resync = false;
  std::uint64_t wire_bytes = 0;
  std::uint32_t snapshots_advanced = 0;
  double seconds = 0.0;
  TransferStats transfers{};
};

struct BootReport {
  sim::BootResult result;
  std::uint64_t network_bytes = 0;  // base-VMI bytes pulled over the network
  /// Degraded-mode healing during the boot: corrupt ccVolume blocks
  /// re-fetched on demand from the storage node (included in network_bytes).
  std::uint64_t repaired_blocks_bytes = 0;
  std::uint64_t repair_reads = 0;
  /// Pre-heal pass (profile replay with pre_heal): range reads that had to
  /// fetch clean copies from the storage node *before* the guest started —
  /// repairs moved off the boot's critical path. Bytes are included in
  /// network_bytes but charge no simulated boot time.
  std::uint64_t preheal_repair_fetches = 0;
  std::uint64_t preheal_repaired_bytes = 0;
  /// Profile-guided background reads issued while the guest booted.
  std::uint64_t prefetch_issued = 0;
};

/// Profile-guided boot support (both directions of the profile lifecycle).
struct BootProfileRun {
  /// Profile to replay ahead of the guest: pre-heal (or ARC-warm) its
  /// blocks before the boot, then prefetch them during it. Null = off.
  const vmi::BootProfile* replay = nullptr;
  /// Profile to record this boot's cache-device touches into. Recording is
  /// pure bookkeeping — the recorded boot is bit-identical to an
  /// unprofiled one. Null = off.
  vmi::BootProfile* record = nullptr;
  /// Maximum profile blocks kept in flight ahead of the guest's cursor.
  std::uint32_t lead_blocks = 32;
  /// Route the profile's blocks through the degraded-read repair path
  /// before the guest starts: a corrupt replica heals off the critical
  /// path (and the reads warm the decompressed-block ARC as a side
  /// effect). When false, replay only warms the ARC.
  bool pre_heal = true;
};

/// One compute node: its ccVolume and availability state.
class ComputeNode {
 public:
  ComputeNode(std::uint32_t id, const zvol::VolumeConfig& config)
      : id_(id), volume_(config) {}

  std::uint32_t id() const { return id_; }
  bool online() const { return online_; }
  void set_online(bool online) { online_ = online; }

  zvol::Volume& volume() { return volume_; }
  const zvol::Volume& volume() const { return volume_; }

 private:
  std::uint32_t id_;
  bool online_ = true;
  zvol::Volume volume_;
};

class SquirrelCluster {
 public:
  /// Node ids: 0 is the storage node; compute nodes are 1..compute_count.
  SquirrelCluster(SquirrelConfig config, std::uint32_t compute_count,
                  sim::NetworkConfig net_config = {});

  // --- workflows -----------------------------------------------------------

  /// Registers a VMI: `cache_content` is the boot working set view of the
  /// image (what the registration boot writes copy-on-read). Creates the
  /// scVolume snapshot and multicasts the diff to all online nodes.
  RegistrationReport Register(const std::string& image_id,
                              const util::DataSource& cache_content,
                              std::uint64_t now);

  /// Deletes the cache from the scVolume. No snapshot (§3.4); ccVolumes
  /// learn about it with the next registration's snapshot.
  void Deregister(const std::string& image_id, std::uint64_t now);

  /// Brings one node's ccVolume up to date (the node-boot path, §3.5).
  SyncReport SyncNode(std::uint32_t compute_node, std::uint64_t now);

  /// Daily garbage collection on the scVolume and every online ccVolume.
  void RunGc(std::uint64_t now);

  /// Boots a VM on a compute node from its local ccVolume replica, chained
  /// over the remote base image. Returns boot timing and the network bytes
  /// the boot consumed (zero when the replica is warm). `writes` optionally
  /// replays the boot's write trace into the VM's CoW overlay; `allocation`
  /// exposes the base image's sparse map so copy-on-write fills of
  /// unallocated ranges stay off the network.
  /// `profile` optionally records this boot's touch trace and/or replays a
  /// recorded one (pre-heal + prefetch); see BootProfileRun.
  BootReport Boot(std::uint32_t compute_node, const std::string& image_id,
                  const util::DataSource& base_image,
                  const std::vector<vmi::BootRead>& trace, sim::IoContext& io,
                  const sim::BootSimConfig& boot_config = {},
                  const std::vector<vmi::BootRead>* writes = nullptr,
                  sim::RemoteImageDevice::AllocationMap allocation = {},
                  const BootProfileRun* profile = nullptr);

  // --- introspection ---------------------------------------------------------

  zvol::Volume& storage_volume() { return sc_volume_; }
  ComputeNode& compute_node(std::uint32_t i) { return *compute_nodes_.at(i); }
  std::uint32_t compute_count() const {
    return static_cast<std::uint32_t>(compute_nodes_.size());
  }
  sim::NetworkAccountant& network() { return network_; }
  const SquirrelConfig& config() const { return config_; }

  /// Arms fault injection on replication transfers and degraded boots. The
  /// injector is borrowed (caller keeps ownership); nullptr disarms, and a
  /// disarmed cluster's accounting is bit-identical to one that never had
  /// an injector.
  void SetFaultInjector(util::FaultInjector* faults) { faults_ = faults; }

  /// Registered image ids, in registration order.
  const std::vector<std::string>& registered_images() const {
    return registered_;
  }

  static std::string CacheFileName(const std::string& image_id) {
    return "cache/" + image_id;
  }

 private:
  SquirrelConfig config_;
  zvol::Volume sc_volume_;
  std::vector<std::unique_ptr<ComputeNode>> compute_nodes_;
  sim::NetworkAccountant network_;
  std::vector<std::string> registered_;
  std::uint64_t registration_counter_ = 0;
  util::FaultInjector* faults_ = nullptr;  // borrowed; nullptr = no faults
  std::uint64_t transfer_counter_ = 0;
};

}  // namespace squirrel::core
