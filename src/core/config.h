// Cluster-facing configuration and clock types — the one include that
// defines (or coherently re-exports) everything a caller needs to configure
// Squirrel workflows:
//
//   SimClock              simulated wall-clock shared by the cluster
//                         workflows and the discrete-event engine
//   SquirrelConfig        cluster-wide tuning (volume, propagation,
//                         retention, retry, transfer)
//   PropagationStrategy   how registration diffs reach compute nodes
//   BootProfileRun        profile-guided boot replay/record options
//   RetryPolicy           capped-exponential retry schedule   (scatter_gather.h)
//   ScatterGatherConfig   fan-out delivery engine tuning      (scatter_gather.h)
//   TransferStats         per-report delivery accounting      (scatter_gather.h)
//
// Benches and tests include this header instead of reaching into
// core/scatter_gather.h through squirrel.h's transitive includes.
#pragma once

#include <cstdint>

#include "core/scatter_gather.h"
#include "placement/layout.h"
#include "vmi/boot_profile.h"
#include "zvol/volume.h"

namespace squirrel::core {

/// Simulated wall-clock time. The event engine counts nanoseconds in a
/// double (sim::event::EventLoop::now_ns); the cluster workflows — snapshot
/// timestamps, retention windows — speak whole seconds. SimClock is the
/// bridge: one value both sides can read in their own unit, so callers stop
/// threading raw `now` integers by hand.
class SimClock {
 public:
  constexpr SimClock() = default;

  static constexpr SimClock FromSeconds(std::uint64_t seconds) {
    return SimClock(static_cast<double>(seconds) * 1e9);
  }
  static constexpr SimClock FromNs(double ns) { return SimClock(ns); }

  /// Whole simulated seconds (truncating) — the unit of snapshot
  /// timestamps and retention windows.
  constexpr std::uint64_t seconds() const {
    return static_cast<std::uint64_t>(ns_ / 1e9);
  }
  /// Nanoseconds — the event loop's unit (EventLoop::now_ns()).
  constexpr double ns() const { return ns_; }

  constexpr SimClock AdvancedBySeconds(double seconds) const {
    return SimClock(ns_ + seconds * 1e9);
  }

  friend constexpr bool operator==(SimClock a, SimClock b) {
    return a.ns_ == b.ns_;
  }
  friend constexpr bool operator<(SimClock a, SimClock b) {
    return a.ns_ < b.ns_;
  }
  friend constexpr bool operator<=(SimClock a, SimClock b) {
    return a.ns_ <= b.ns_;
  }

 private:
  explicit constexpr SimClock(double ns) : ns_(ns) {}
  double ns_ = 0.0;
};

/// How a registration diff reaches the compute nodes (§3.2 discusses IP
/// multicast; §5.2 the peer-to-peer / LANTorrent-style alternatives).
enum class PropagationStrategy {
  kMulticast,  // one stream on the wire, all online nodes receive (default)
  kUnicast,    // one stream per node — storage-node egress scales with n
  kPipeline,   // LANTorrent-style chain: each node receives and forwards once
};

struct SquirrelConfig {
  /// 64 KiB, gzip6, dedup — the paper's choice. `volume.ingest` (threads,
  /// batch size) flows through to the scVolume and every ccVolume, so
  /// Register's cache ingest runs on the batch hash/compress pipeline;
  /// accounting is identical at any thread count.
  zvol::VolumeConfig volume{};
  PropagationStrategy propagation = PropagationStrategy::kMulticast;
  /// Offline-propagation window `n` (§3.4/§3.5), in simulated seconds.
  std::uint64_t retention_seconds = 7ull * 24 * 3600;
  /// Time one registration boot takes on the storage node (the paper
  /// measured < 20 s average for the dataset).
  double registration_boot_seconds = 20.0;
  /// Snapshot creation cost (read-only snapshots are cheap).
  double snapshot_seconds = 0.1;
  /// Throughput of generating/apply a send stream, bytes/s.
  double stream_processing_bytes_per_second = 200e6;
  /// Retry schedule for registration propagation and node sync transfers.
  RetryPolicy retry{};
  /// Delivery engine for the fan out: window 1 is the serial per-node retry
  /// model (legacy accounting, bit-identical); window > 1 runs retries
  /// event-driven with chunked retransmissions contending for the sender
  /// link (see core/scatter_gather.h).
  ScatterGatherConfig transfer{};
  /// Replication policy. The default (full replication) takes the exact
  /// pre-placement code paths — byte-identical accounting. kStriped groups
  /// compute nodes into storage sets and erasure-codes each unique block
  /// across its set (see placement/layout.h and DESIGN.md §16); nodes in a
  /// trailing set too small for a stripe keep full replicas.
  placement::PlacementConfig placement{};
};

/// Profile-guided boot support (both directions of the profile lifecycle).
struct BootProfileRun {
  /// Profile to replay ahead of the guest: pre-heal (or ARC-warm) its
  /// blocks before the boot, then prefetch them during it. Null = off.
  const vmi::BootProfile* replay = nullptr;
  /// Profile to record this boot's cache-device touches into. Recording is
  /// pure bookkeeping — the recorded boot is bit-identical to an
  /// unprofiled one. Null = off.
  vmi::BootProfile* record = nullptr;
  /// Maximum profile blocks kept in flight ahead of the guest's cursor.
  std::uint32_t lead_blocks = 32;
  /// Route the profile's blocks through the degraded-read repair path
  /// before the guest starts: a corrupt replica heals off the critical
  /// path (and the reads warm the decompressed-block ARC as a side
  /// effect). When false, replay only warms the ARC.
  bool pre_heal = true;
};

}  // namespace squirrel::core
