#include "core/fleet_calibrate.h"

#include <algorithm>

#include "core/squirrel.h"
#include "sim/io_context.h"
#include "util/stats.h"
#include "vmi/boot_profile.h"
#include "vmi/bootset.h"
#include "vmi/image.h"

namespace squirrel::core {

sim::fleet::FleetModel CalibrateFleetModel(
    const vmi::CatalogConfig& catalog_config, std::uint32_t sample_images,
    std::size_t store_shards) {
  vmi::CatalogConfig config = catalog_config;
  config.image_count = std::max<std::uint32_t>(
      1, std::min(sample_images, catalog_config.image_count));
  const vmi::Catalog catalog = vmi::Catalog::AzureCommunity(config);

  SquirrelConfig cluster_config;
  cluster_config.volume = zvol::VolumeConfig{.block_size = 64 * 1024,
                                             .codec = compress::CodecId::kGzip6,
                                             .dedup = true,
                                             .fast_hash = true,
                                             .shards = store_shards};
  cluster_config.volume.read.cache_bytes = 8ull << 20;
  SquirrelCluster cluster(cluster_config, /*compute_count=*/1);

  util::RunningStats warm_seconds, prefetch_seconds, cache_bytes, diff_bytes;
  std::uint64_t now = 60;
  for (const vmi::ImageSpec& spec : catalog.images()) {
    const vmi::VmImage image(catalog, spec);
    const vmi::BootWorkingSet boot(catalog, image);
    const RegistrationReport reg = cluster.Register(
        {spec.name, vmi::CacheImage(image, boot), SimClock::FromSeconds(now)});
    now += 60;
    cache_bytes.Add(static_cast<double>(reg.cache_logical_bytes));
    diff_bytes.Add(static_cast<double>(reg.diff_wire_bytes));

    const auto trace = boot.Trace(1);
    // Warm boot on the replica, recording a profile.
    vmi::BootProfile recorded;
    BootProfileRun record_run;
    record_run.record = &recorded;
    {
      sim::IoContext io;
      const BootReport report = cluster.Boot(
          0, {.image_id = spec.name, .base_image = image, .trace = trace,
              .profile = &record_run},
          io);
      warm_seconds.Add(report.result.seconds);
    }
    // Second boot replaying the profile (pre-heal + prefetch).
    BootProfileRun replay_run;
    replay_run.replay = &recorded;
    {
      sim::IoContext io;
      const BootReport report = cluster.Boot(
          0, {.image_id = spec.name, .base_image = image, .trace = trace,
              .profile = &replay_run},
          io);
      prefetch_seconds.Add(report.result.seconds);
    }
  }

  sim::fleet::FleetModel model;
  model.warm_boot_seconds = warm_seconds.mean();
  // The prefetch path can only help; clamp calibration noise.
  model.prefetch_boot_seconds =
      std::min(prefetch_seconds.mean(), warm_seconds.mean());
  model.cache_bytes = std::max(1.0, cache_bytes.mean());
  model.diff_bytes = std::max(1.0, diff_bytes.mean());
  // Measured registration time includes the fixed boot-once cost configured
  // on the cluster; keep that split so the fleet's slot model matches.
  model.registration_boot_seconds = cluster.config().registration_boot_seconds;
  model.snapshot_seconds = cluster.config().snapshot_seconds;
  model.stream_bytes_per_second =
      cluster.config().stream_processing_bytes_per_second;
  return model;
}

}  // namespace squirrel::core
