// Calibration glue between the real single-boot simulation and the fleet
// simulator: runs a small SquirrelCluster over a handful of catalog images
// and derives sim::fleet::FleetModel costs (warm/prefetch boot seconds,
// cache and diff byte sizes, registration service time) from the measured
// reports — so fleet-scale storms reuse the calibrated single-boot model
// without instantiating a zvol::Volume per node.
#pragma once

#include <cstdint>

#include "sim/fleet/fleet.h"
#include "vmi/catalog.h"

namespace squirrel::core {

/// Registers and boots `sample_images` images (capped at the catalog size)
/// on a 1-compute-node cluster and returns a FleetModel whose per-boot and
/// per-registration costs are the measured means. Deterministic: same
/// catalog config → same model.
sim::fleet::FleetModel CalibrateFleetModel(
    const vmi::CatalogConfig& catalog_config, std::uint32_t sample_images = 4);

}  // namespace squirrel::core
