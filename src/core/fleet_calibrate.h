// Calibration glue between the real single-boot simulation and the fleet
// simulator: runs a small SquirrelCluster over a handful of catalog images
// and derives sim::fleet::FleetModel costs (warm/prefetch boot seconds,
// cache and diff byte sizes, registration service time) from the measured
// reports — so fleet-scale storms reuse the calibrated single-boot model
// without instantiating a zvol::Volume per node.
#pragma once

#include <cstdint>

#include "sim/fleet/fleet.h"
#include "vmi/catalog.h"

namespace squirrel::core {

/// Registers and boots `sample_images` images (capped at the catalog size)
/// on a 1-compute-node cluster and returns a FleetModel whose per-boot and
/// per-registration costs are the measured means. Deterministic: same
/// catalog config and shard count → same model. `store_shards` configures
/// the cluster volume's DDT/ARC sharding (power of two in [1, 256]); the
/// default of 1 keeps the calibration — and therefore BENCH_fleet.json —
/// byte-identical to the pre-sharding store.
sim::fleet::FleetModel CalibrateFleetModel(
    const vmi::CatalogConfig& catalog_config, std::uint32_t sample_images = 4,
    std::size_t store_shards = 1);

}  // namespace squirrel::core
