#include "core/scatter_gather.h"

#include <algorithm>
#include <deque>
#include <functional>
#include <utility>

#include "sim/event/event_loop.h"
#include "util/rng.h"

namespace squirrel::core {
namespace {

// Wire bytes needing retransmission after a faulted attempt. `progress` is
// the fraction of payload records that arrived intact — their per-record
// checksums let the receiver keep them, so the retry resumes at record
// granularity: headers and every record from the first unverified one on.
std::uint64_t ResumeBytes(const zvol::SendStream& stream,
                          std::uint64_t wire_size, double progress) {
  std::size_t payload_records = 0;
  for (const auto& f : stream.files) {
    for (const auto& b : f.blocks) {
      if (b.has_payload) ++payload_records;
    }
  }
  const auto kept = static_cast<std::size_t>(
      progress * static_cast<double>(payload_records));
  std::uint64_t kept_bytes = 0;
  std::size_t seen = 0;
  for (const auto& f : stream.files) {
    for (const auto& b : f.blocks) {
      if (!b.has_payload) continue;
      if (seen++ == kept) return wire_size - std::min(wire_size, kept_bytes);
      kept_bytes += b.payload.size();
    }
  }
  return wire_size - std::min(wire_size, kept_bytes);
}

}  // namespace

double BackoffSeconds(const RetryPolicy& policy, std::uint32_t node,
                      std::uint64_t transfer_id, std::uint32_t attempt) {
  if (attempt < 2) return 0.0;
  double wait = policy.base_seconds;
  for (std::uint32_t k = 2; k < attempt && wait < policy.max_seconds; ++k) {
    wait *= 2.0;
  }
  wait = std::min(wait, policy.max_seconds);
  // Deterministic jitter: each (node, transfer, attempt) draws its own
  // scale from an independent child generator, so schedules replay exactly
  // and synchronized retries from many nodes still decorrelate.
  const std::uint64_t key[3] = {node, transfer_id, attempt};
  const std::uint64_t mixed = util::Fnv1a64(
      util::ByteSpan(reinterpret_cast<const util::Byte*>(key), sizeof(key)));
  util::Rng rng(policy.seed ^ mixed);
  return wait * (1.0 + policy.jitter * rng.NextDouble());
}

ScatterGatherTransfer::ScatterGatherTransfer(sim::NetworkAccountant* network,
                                             util::FaultInjector* faults,
                                             const RetryPolicy& retry,
                                             ScatterGatherConfig config)
    : network_(network), faults_(faults), retry_(retry), config_(config) {}

ScatterGatherResult ScatterGatherTransfer::Run(
    const zvol::SendStream& stream, std::uint64_t wire_size,
    const std::vector<std::uint32_t>& nodes, std::uint64_t transfer_id,
    TransferStats& stats, double initial_seconds) {
  ScatterGatherResult result =
      config_.window <= 1
          ? RunSerial(stream, wire_size, nodes, transfer_id, stats,
                      initial_seconds)
          : RunWindowed(stream, wire_size, nodes, transfer_id, stats,
                        initial_seconds);
  // Clamp: with an empty receiver set (or pure float cancellation in the
  // sums) the subtraction can dip a hair below zero; the report fields are
  // documented non-negative.
  stats.makespan_seconds += std::max(0.0, result.makespan_seconds);
  stats.overlap_seconds +=
      std::max(0.0, result.sum_seconds - result.makespan_seconds);
  return result;
}

ScatterGatherResult ScatterGatherTransfer::RunSerial(
    const zvol::SendStream& stream, std::uint64_t wire_size,
    const std::vector<std::uint32_t>& nodes, std::uint64_t transfer_id,
    TransferStats& stats, double initial_seconds) {
  ScatterGatherResult result;
  const std::uint32_t max_attempts =
      std::max<std::uint32_t>(1, retry_.max_attempts);
  for (const std::uint32_t node_id : nodes) {
    ReceiverOutcome outcome;
    outcome.node_id = node_id;
    outcome.seconds = initial_seconds;
    // The legacy per-node retry loop, verbatim: nodes retry independently
    // and concurrently, so the fan out's critical path is the slowest
    // node's tail, not the sum.
    for (std::uint32_t attempt = 1; attempt <= max_attempts; ++attempt) {
      ++stats.attempts;
      if (attempt > 1) {
        // Only faulted first attempts reach here, so faults_ is non-null.
        ++stats.retries;
        const double wait =
            BackoffSeconds(retry_, node_id, transfer_id, attempt);
        stats.backoff_seconds += wait;
        outcome.seconds += wait;
        // Resume past the records the previous attempt delivered intact.
        const double progress =
            faults_->PartialProgress(node_id, transfer_id, attempt - 1);
        const std::uint64_t resume = ResumeBytes(stream, wire_size, progress);
        stats.retransmitted_bytes += resume;
        outcome.seconds += network_->Transfer(0, node_id, resume) / 1e9;
      }
      if (faults_ != nullptr) {
        const bool failed =
            faults_->TransferFails(node_id, transfer_id, attempt);
        const bool corrupted =
            !failed && faults_->TransferCorrupts(node_id, transfer_id, attempt);
        if (failed || corrupted) {
          // A failed attempt delivers nothing; a corrupted one delivers
          // bytes the receiver's checksums reject. Back off and retry.
          outcome.seconds += faults_->TransferDelaySeconds();
          continue;
        }
      }
      outcome.delivered = true;
      break;
    }
    if (!outcome.delivered) ++stats.abandoned;
    const double tail = outcome.seconds - initial_seconds;
    result.makespan_seconds = std::max(result.makespan_seconds, tail);
    result.sum_seconds += tail;
    result.outcomes.push_back(outcome);
  }
  return result;
}

ScatterGatherResult ScatterGatherTransfer::RunWindowed(
    const zvol::SendStream& stream, std::uint64_t wire_size,
    const std::vector<std::uint32_t>& nodes, std::uint64_t transfer_id,
    TransferStats& stats, double initial_seconds) {
  // Event-driven fan out. Per receiver: a retry state machine whose
  // backoffs and fault delays elapse on the loop; retransmissions are cut
  // into `chunk_bytes` chunks, at most `window` in flight per receiver, all
  // serialized through the sender's egress link in FIFO order. Everything is
  // scheduled in ns of simulated time starting at 0 (the shared distribution
  // already happened; only retry tails play out here).
  struct NodeRun {
    std::uint32_t node_id = 0;
    std::uint32_t attempt = 0;
    std::uint64_t chunks_left = 0;   // not yet enqueued on the link
    std::uint64_t chunks_unacked = 0;  // enqueued or on the wire
    std::uint64_t next_chunk_len = 0;
    std::uint64_t tail_len = 0;  // final chunk remainder
    bool delivered = false;
    bool done = false;
    double finish_ns = 0.0;
  };

  sim::event::EventLoop loop;
  std::vector<NodeRun> runs(nodes.size());
  std::deque<std::pair<std::size_t, std::uint64_t>> link;  // (run, bytes)
  bool link_busy = false;
  const std::uint32_t max_attempts =
      std::max<std::uint32_t>(1, retry_.max_attempts);
  const std::uint64_t chunk =
      std::max<std::uint64_t>(1, config_.chunk_bytes);

  // Mutually recursive via std::function: attempt outcome -> retry with
  // chunked resume -> link service -> attempt outcome.
  std::function<void(std::size_t)> settle_attempt;
  std::function<void(std::size_t)> start_attempt;

  // Services one queued chunk when the link is idle; the drive loop below
  // re-invokes it after every event, so completions need no re-entry logic.
  auto pump_link = [&] {
    if (link_busy || link.empty()) return;
    link_busy = true;
    const auto [ri, bytes] = link.front();
    link.pop_front();
    const double cost = network_->Transfer(0, runs[ri].node_id, bytes);
    loop.ScheduleAfter(cost, "sg-chunk", [&, ri] {
      link_busy = false;
      NodeRun& run = runs[ri];
      --run.chunks_unacked;
      if (run.chunks_left > 0) {
        // Window slot freed: enqueue the receiver's next chunk.
        --run.chunks_left;
        ++run.chunks_unacked;
        link.emplace_back(
            ri, run.chunks_left == 0 && run.tail_len > 0 ? run.tail_len
                                                         : chunk);
      }
      if (run.chunks_left == 0 && run.chunks_unacked == 0) {
        settle_attempt(ri);
      }
    });
  };

  settle_attempt = [&](std::size_t ri) {
    NodeRun& run = runs[ri];
    if (faults_ != nullptr) {
      const bool failed =
          faults_->TransferFails(run.node_id, transfer_id, run.attempt);
      const bool corrupted =
          !failed &&
          faults_->TransferCorrupts(run.node_id, transfer_id, run.attempt);
      if (failed || corrupted) {
        const double delay_ns = faults_->TransferDelaySeconds() * 1e9;
        if (run.attempt >= max_attempts) {
          ++stats.abandoned;
          run.done = true;
          run.finish_ns = loop.now_ns() + delay_ns;
          return;
        }
        loop.ScheduleAfter(delay_ns, "sg-retry",
                           [&, ri] { start_attempt(ri); });
        return;
      }
    }
    run.delivered = true;
    run.done = true;
    run.finish_ns = loop.now_ns();
  };

  start_attempt = [&](std::size_t ri) {
    NodeRun& run = runs[ri];
    ++run.attempt;
    ++stats.attempts;
    if (run.attempt == 1) {
      // The shared distribution stream was already charged by the caller's
      // strategy; the first attempt only needs its fault verdict.
      settle_attempt(ri);
      return;
    }
    ++stats.retries;
    const double wait =
        BackoffSeconds(retry_, run.node_id, transfer_id, run.attempt);
    stats.backoff_seconds += wait;
    const double progress =
        faults_->PartialProgress(run.node_id, transfer_id, run.attempt - 1);
    const std::uint64_t resume = ResumeBytes(stream, wire_size, progress);
    stats.retransmitted_bytes += resume;
    loop.ScheduleAfter(wait * 1e9, "sg-resume", [&, ri, resume] {
      NodeRun& r = runs[ri];
      if (resume == 0) {
        settle_attempt(ri);
        return;
      }
      const std::uint64_t full = resume / chunk;
      r.tail_len = resume % chunk;
      const std::uint64_t total = full + (r.tail_len > 0 ? 1 : 0);
      const std::uint64_t burst =
          std::min<std::uint64_t>(total, config_.window);
      r.chunks_left = total - burst;
      r.chunks_unacked = burst;
      for (std::uint64_t c = 0; c < burst; ++c) {
        const bool is_tail = c == total - 1 && r.tail_len > 0;
        link.emplace_back(ri, is_tail ? r.tail_len : chunk);
      }
      loop.ScheduleAfter(0.0, "sg-link", [&] { pump_link(); });
    });
  };

  for (std::size_t i = 0; i < runs.size(); ++i) {
    runs[i].node_id = nodes[i];
    start_attempt(i);
  }
  // Drive the link whenever chunks are queued and it sits idle; loop events
  // carry everything else.
  while (loop.pending() > 0 || !link.empty()) {
    if (!link_busy && !link.empty()) {
      pump_link();
      continue;
    }
    if (!loop.Step()) break;
  }

  ScatterGatherResult result;
  for (const NodeRun& run : runs) {
    ReceiverOutcome outcome;
    outcome.node_id = run.node_id;
    outcome.delivered = run.delivered;
    const double tail = run.finish_ns / 1e9;
    outcome.seconds = initial_seconds + tail;
    result.makespan_seconds = std::max(result.makespan_seconds, tail);
    result.sum_seconds += tail;
    result.outcomes.push_back(outcome);
  }
  return result;
}

}  // namespace squirrel::core
