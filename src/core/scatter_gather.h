// Scatter-gather replication transfers: one send stream fanning out from the
// storage node to N receivers, with retries (§3.2/§3.5 must survive node
// churn — a dropped diff is retried, not lost).
//
// Two delivery models share one accounting contract:
//
//   serial (window == 1)  the exact legacy per-node retry loop: each
//     receiver's retry tail (backoff + record-granular resume + fault delay)
//     is computed independently; receivers retry concurrently, so the fan
//     out's makespan is the slowest receiver's tail. Bit-identical to the
//     pre-engine DeliverWithRetries math, float op for float op —
//     regression-tested.
//   windowed (window > 1)  event-driven: resume retransmissions are chunked,
//     each receiver keeps at most `window` chunks in flight, and all chunks
//     serialize through the sender's egress link (FIFO). Backoffs and fault
//     delays elapse as event-loop delays, so per-node retries overlap —
//     the makespan reflects sender-link contention instead of assuming every
//     resume gets the full link.
//
// TransferStats reports the overlap attained: makespan_seconds is the fan
// out's critical path, overlap_seconds = sum(per-node tails) - makespan.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/network.h"
#include "util/fault_injector.h"
#include "zvol/send_stream.h"

namespace squirrel::core {

/// Capped exponential backoff with deterministic jitter for replication
/// transfers. attempt 1 is the initial transfer; retries are attempts 2..n.
struct RetryPolicy {
  std::uint32_t max_attempts = 4;
  double base_seconds = 0.5;  // backoff before attempt 2
  double max_seconds = 8.0;   // cap on the exponential
  /// Fractional jitter in [0, jitter): each wait is scaled by (1 + u) with u
  /// drawn deterministically from (seed, node, transfer, attempt).
  double jitter = 0.1;
  std::uint64_t seed = 0x5171e77ull;  // jitter schedule seed
};

/// Deterministic backoff before `attempt` (>= 2) of a transfer to `node`.
/// Pure function of its arguments — the schedule tests replay it exactly.
double BackoffSeconds(const RetryPolicy& policy, std::uint32_t node,
                      std::uint64_t transfer_id, std::uint32_t attempt);

/// Per-report transfer reliability accounting, aggregated over receivers.
struct TransferStats {
  std::uint64_t attempts = 0;            // total delivery attempts
  std::uint64_t retries = 0;             // attempts beyond each node's first
  std::uint64_t abandoned = 0;           // nodes given up on (sync later)
  std::uint64_t retransmitted_bytes = 0; // wire bytes re-sent by retries
  double backoff_seconds = 0.0;          // summed deterministic waits
  /// Fan-out critical path (retry tails). Never negative: clamped at
  /// accumulation so float cancellation cannot leak a negative duration.
  double makespan_seconds = 0.0;
  /// Receiver-seconds absorbed by running retry tails concurrently:
  /// sum of per-node tails minus the makespan. 0 when nothing retried;
  /// clamped non-negative like makespan_seconds.
  double overlap_seconds = 0.0;
  /// Stream applies killed mid-Receive by an injected crash (the node's
  /// transactional apply rolled back or resumed idempotently on retry).
  std::uint64_t crashed_applies = 0;
};

struct ScatterGatherConfig {
  /// Per-receiver flow-control window: chunks a receiver may have in flight.
  /// 1 selects the serial model (legacy retry math, bit-identical).
  std::uint32_t window = 1;
  /// Retransmission chunk size in the windowed model.
  std::uint64_t chunk_bytes = 256 * 1024;
};

/// Outcome of one receiver's delivery.
struct ReceiverOutcome {
  std::uint32_t node_id = 0;
  bool delivered = false;
  /// The caller's accumulator after this node's retry tail: Run seeds it
  /// with `initial_seconds` and extends it exactly as the legacy loop
  /// extended its `*seconds` out-parameter.
  double seconds = 0.0;
};

struct ScatterGatherResult {
  std::vector<ReceiverOutcome> outcomes;  // in `nodes` order
  double makespan_seconds = 0.0;          // longest tail / last event
  double sum_seconds = 0.0;               // Σ per-node tails
};

class ScatterGatherTransfer {
 public:
  /// `network` is borrowed and charged for every retransmission; `faults`
  /// may be null (every first attempt then succeeds and no events fire).
  ScatterGatherTransfer(sim::NetworkAccountant* network,
                        util::FaultInjector* faults, const RetryPolicy& retry,
                        ScatterGatherConfig config);

  /// Delivers `stream` (pre-serialized as `wire_size` wire bytes, already
  /// charged by the caller's distribution strategy) to every node in
  /// `nodes`, retrying independently per node. Accumulates into `stats`;
  /// every outcome's `seconds` starts from `initial_seconds`.
  ScatterGatherResult Run(const zvol::SendStream& stream,
                          std::uint64_t wire_size,
                          const std::vector<std::uint32_t>& nodes,
                          std::uint64_t transfer_id, TransferStats& stats,
                          double initial_seconds = 0.0);

 private:
  ScatterGatherResult RunSerial(const zvol::SendStream& stream,
                                std::uint64_t wire_size,
                                const std::vector<std::uint32_t>& nodes,
                                std::uint64_t transfer_id, TransferStats& stats,
                                double initial_seconds);
  ScatterGatherResult RunWindowed(const zvol::SendStream& stream,
                                  std::uint64_t wire_size,
                                  const std::vector<std::uint32_t>& nodes,
                                  std::uint64_t transfer_id,
                                  TransferStats& stats,
                                  double initial_seconds);

  sim::NetworkAccountant* network_;
  util::FaultInjector* faults_;
  RetryPolicy retry_;
  ScatterGatherConfig config_;
};

}  // namespace squirrel::core
