#include "core/squirrel.h"

#include <algorithm>
#include <stdexcept>

#include "util/rng.h"

namespace squirrel::core {
namespace {

std::string SnapshotName(std::uint64_t counter) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "reg-%06llu",
                static_cast<unsigned long long>(counter));
  return buf;
}

// Wire bytes needing retransmission after a faulted attempt. `progress` is
// the fraction of payload records that arrived intact — their per-record
// checksums let the receiver keep them, so the retry resumes at record
// granularity: headers and every record from the first unverified one on.
std::uint64_t ResumeBytes(const zvol::SendStream& stream,
                          std::uint64_t wire_size, double progress) {
  std::size_t payload_records = 0;
  for (const auto& f : stream.files) {
    for (const auto& b : f.blocks) {
      if (b.has_payload) ++payload_records;
    }
  }
  const auto kept = static_cast<std::size_t>(
      progress * static_cast<double>(payload_records));
  std::uint64_t kept_bytes = 0;
  std::size_t seen = 0;
  for (const auto& f : stream.files) {
    for (const auto& b : f.blocks) {
      if (!b.has_payload) continue;
      if (seen++ == kept) return wire_size - std::min(wire_size, kept_bytes);
      kept_bytes += b.payload.size();
    }
  }
  return wire_size - std::min(wire_size, kept_bytes);
}

}  // namespace

double BackoffSeconds(const RetryPolicy& policy, std::uint32_t node,
                      std::uint64_t transfer_id, std::uint32_t attempt) {
  if (attempt < 2) return 0.0;
  double wait = policy.base_seconds;
  for (std::uint32_t k = 2; k < attempt && wait < policy.max_seconds; ++k) {
    wait *= 2.0;
  }
  wait = std::min(wait, policy.max_seconds);
  // Deterministic jitter: each (node, transfer, attempt) draws its own
  // scale from an independent child generator, so schedules replay exactly
  // and synchronized retries from many nodes still decorrelate.
  const std::uint64_t key[3] = {node, transfer_id, attempt};
  const std::uint64_t mixed = util::Fnv1a64(
      util::ByteSpan(reinterpret_cast<const util::Byte*>(key), sizeof(key)));
  util::Rng rng(policy.seed ^ mixed);
  return wait * (1.0 + policy.jitter * rng.NextDouble());
}

SquirrelCluster::SquirrelCluster(SquirrelConfig config,
                                 std::uint32_t compute_count,
                                 sim::NetworkConfig net_config)
    : config_(config),
      sc_volume_(config.volume),
      network_(compute_count + 1, net_config) {
  compute_nodes_.reserve(compute_count);
  for (std::uint32_t i = 0; i < compute_count; ++i) {
    compute_nodes_.push_back(std::make_unique<ComputeNode>(i, config.volume));
  }
}

RegistrationReport SquirrelCluster::Register(
    const std::string& image_id, const util::DataSource& cache_content,
    std::uint64_t now) {
  if (sc_volume_.HasFile(CacheFileName(image_id))) {
    throw std::invalid_argument("image already registered: " + image_id);
  }

  RegistrationReport report;
  report.image_id = image_id;

  // 1. The registration boot on the storage node produces the cache content
  //    copy-on-read; we ingest its final state directly (§3.2 step 1-2).
  const std::string previous_snapshot =
      sc_volume_.LatestSnapshot() ? sc_volume_.LatestSnapshot()->name : "";
  sc_volume_.WriteFile(CacheFileName(image_id), cache_content);
  report.total_seconds += config_.registration_boot_seconds;

  // 2. Snapshot the scVolume for this registration (§3.2 step 3).
  report.snapshot_name = SnapshotName(++registration_counter_);
  sc_volume_.CreateSnapshot(report.snapshot_name, now);
  report.total_seconds += config_.snapshot_seconds;

  // 3. Incremental diff against the previous snapshot, multicast to every
  //    online compute node (§3.2 step 4).
  const zvol::SendStream stream =
      sc_volume_.Send(previous_snapshot, report.snapshot_name);
  const util::Bytes wire = stream.Serialize();
  report.diff_wire_bytes = wire.size();
  report.total_seconds += static_cast<double>(wire.size()) /
                          config_.stream_processing_bytes_per_second;

  std::vector<std::uint32_t> receivers;
  for (const auto& node : compute_nodes_) {
    if (node->online()) receivers.push_back(node->id() + 1);
  }
  double distribution_ns = 0.0;
  switch (config_.propagation) {
    case PropagationStrategy::kMulticast:
      distribution_ns = network_.Multicast(0, receivers, wire.size());
      break;
    case PropagationStrategy::kUnicast:
      distribution_ns = network_.UnicastAll(0, receivers, wire.size());
      break;
    case PropagationStrategy::kPipeline:
      distribution_ns = network_.Pipeline(0, receivers, wire.size());
      break;
  }
  report.total_seconds += distribution_ns / 1e9;

  const zvol::SendStream parsed = zvol::SendStream::Deserialize(wire);
  const std::uint64_t transfer_id = ++transfer_counter_;
  // Nodes retry independently and concurrently, so the registration's
  // critical path extends by the slowest node's retry tail, not the sum.
  double slowest_retry_seconds = 0.0;
  for (const auto& node : compute_nodes_) {
    if (!node->online()) continue;
    if (node->volume().LatestSnapshot() == nullptr && parsed.incremental) {
      // A node that joined after earlier registrations but was never synced
      // cannot apply an incremental diff; it catches up on its next boot.
      continue;
    }
    double node_seconds = 0.0;
    const bool delivered =
        DeliverWithRetries(parsed, wire.size(), node->id() + 1, transfer_id,
                           report.transfers, &node_seconds);
    slowest_retry_seconds = std::max(slowest_retry_seconds, node_seconds);
    if (!delivered) continue;  // abandoned; SyncNode reconciles later (§3.5)
    try {
      node->volume().Receive(parsed);
      ++report.receivers;
    } catch (const zvol::StreamMismatchError&) {
      // Stale replica (missed earlier diffs); resolved by SyncNode later.
    }
  }
  report.total_seconds += slowest_retry_seconds;

  // Cache accounting for the report.
  report.cache_logical_bytes = 0;
  const std::string file = CacheFileName(image_id);
  for (std::uint64_t b = 0; b < sc_volume_.FileBlockCount(file); ++b) {
    const zvol::BlockPtr& ptr = sc_volume_.FileBlock(file, b);
    if (!ptr.hole) report.cache_logical_bytes += ptr.logical_size;
  }

  registered_.push_back(image_id);
  return report;
}

void SquirrelCluster::Deregister(const std::string& image_id, std::uint64_t) {
  const std::string file = CacheFileName(image_id);
  if (!sc_volume_.HasFile(file)) {
    throw std::invalid_argument("image not registered: " + image_id);
  }
  sc_volume_.DeleteFile(file);
  std::erase(registered_, image_id);
  // No snapshot here (§3.4): the deletion reaches ccVolumes with the next
  // registration's snapshot, and the blocks stay pinned by old snapshots
  // until garbage collection prunes them.
}

SyncReport SquirrelCluster::SyncNode(std::uint32_t compute_node,
                                     std::uint64_t now) {
  (void)now;
  ComputeNode& node = *compute_nodes_.at(compute_node);
  SyncReport report;

  const zvol::Snapshot* sc_latest = sc_volume_.LatestSnapshot();
  if (sc_latest == nullptr) return report;  // nothing registered yet

  const zvol::Snapshot* local = node.volume().LatestSnapshot();
  if (local != nullptr && local->id == sc_latest->id) return report;

  const bool have_base =
      local != nullptr && sc_volume_.FindSnapshot(local->name) != nullptr &&
      sc_volume_.FindSnapshot(local->name)->id == local->id;

  zvol::SendStream stream;
  if (have_base) {
    stream = sc_volume_.Send(local->name, sc_latest->name);
  } else {
    // §3.5 scenario 2: offline longer than the retention window (or a brand
    // new node) — replicate the entire scVolume.
    report.full_resync = true;
    stream = sc_volume_.Send("", sc_latest->name);
  }

  const util::Bytes wire = stream.Serialize();
  report.wire_bytes = wire.size();
  report.seconds += network_.Transfer(0, compute_node + 1, wire.size()) / 1e9;
  report.seconds += static_cast<double>(wire.size()) /
                    config_.stream_processing_bytes_per_second;

  const zvol::SendStream parsed = zvol::SendStream::Deserialize(wire);
  if (!DeliverWithRetries(parsed, wire.size(), compute_node + 1,
                          ++transfer_counter_, report.transfers,
                          &report.seconds)) {
    // Every attempt faulted: the node stays stale (snapshots_advanced == 0)
    // and the next boot-time sync tries again.
    return report;
  }
  const std::uint64_t before =
      node.volume().LatestSnapshot() ? node.volume().LatestSnapshot()->id : 0;
  if (report.full_resync) {
    node.volume().ReceiveFull(parsed);
  } else {
    node.volume().Receive(parsed);
  }
  report.snapshots_advanced = static_cast<std::uint32_t>(
      node.volume().LatestSnapshot()->id - before);
  return report;
}

bool SquirrelCluster::DeliverWithRetries(const zvol::SendStream& stream,
                                         std::uint64_t wire_size,
                                         std::uint32_t node_id,
                                         std::uint64_t transfer_id,
                                         TransferStats& stats,
                                         double* seconds) {
  const std::uint32_t max_attempts =
      std::max<std::uint32_t>(1, config_.retry.max_attempts);
  for (std::uint32_t attempt = 1; attempt <= max_attempts; ++attempt) {
    ++stats.attempts;
    if (attempt > 1) {
      // Only faulted first attempts reach here, so faults_ is non-null.
      ++stats.retries;
      const double wait =
          BackoffSeconds(config_.retry, node_id, transfer_id, attempt);
      stats.backoff_seconds += wait;
      *seconds += wait;
      // Resume past the records the previous attempt delivered intact.
      const double progress =
          faults_->PartialProgress(node_id, transfer_id, attempt - 1);
      const std::uint64_t resume = ResumeBytes(stream, wire_size, progress);
      stats.retransmitted_bytes += resume;
      *seconds += network_.Transfer(0, node_id, resume) / 1e9;
    }
    if (faults_ != nullptr) {
      const bool failed = faults_->TransferFails(node_id, transfer_id, attempt);
      const bool corrupted =
          !failed && faults_->TransferCorrupts(node_id, transfer_id, attempt);
      if (failed || corrupted) {
        // A failed attempt delivers nothing; a corrupted one delivers bytes
        // the receiver's checksums reject. Either way: back off and retry.
        *seconds += faults_->TransferDelaySeconds();
        continue;
      }
    }
    return true;
  }
  ++stats.abandoned;
  return false;
}

void SquirrelCluster::RunGc(std::uint64_t now) {
  sc_volume_.PruneSnapshots(config_.retention_seconds, now);
  for (const auto& node : compute_nodes_) {
    if (node->online()) {
      node->volume().PruneSnapshots(config_.retention_seconds, now);
    }
  }
}

BootReport SquirrelCluster::Boot(std::uint32_t compute_node,
                                 const std::string& image_id,
                                 const util::DataSource& base_image,
                                 const std::vector<vmi::BootRead>& trace,
                                 sim::IoContext& io,
                                 const sim::BootSimConfig& boot_config,
                                 const std::vector<vmi::BootRead>* writes,
                                 sim::RemoteImageDevice::AllocationMap allocation) {
  ComputeNode& node = *compute_nodes_.at(compute_node);
  const std::string file = CacheFileName(image_id);
  if (!node.volume().HasFile(file)) {
    throw std::invalid_argument("ccVolume has no cache for " + image_id +
                                " — sync the node first");
  }

  const std::uint64_t net_before = network_.bytes_in(compute_node + 1);

  // §3.3: empty CoW overlay -> ccVolume cache file -> base VMI.
  cow::QcowOverlay overlay(base_image.size(), cow::kDefaultClusterSize);
  sim::VolumeFileDevice cache(&node.volume(), file, &io,
                              /*device_id=*/0x1000 + compute_node);
  // Degraded-mode fallback: a corrupt ccVolume block heals on demand from
  // the storage node's replica, charged as network traffic to this node.
  // With a healthy replica this changes nothing.
  cache.SetRepairSource(&sc_volume_.block_store(), &network_,
                        compute_node + 1);
  sim::RemoteImageDevice base(&base_image, &io, &network_, compute_node + 1,
                              std::move(allocation));
  // The ccVolume is read-only to VMs: copy-on-read happened at registration.
  cow::Chain chain(&overlay, &cache, &base, /*copy_on_read=*/false);

  BootReport report;
  report.result = sim::SimulateBoot(chain, trace, io, boot_config, writes);
  report.network_bytes = network_.bytes_in(compute_node + 1) - net_before;
  report.repaired_blocks_bytes = cache.degraded_stats().repaired_bytes;
  report.repair_reads = cache.degraded_stats().repair_reads;
  return report;
}

}  // namespace squirrel::core
