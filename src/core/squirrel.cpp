#include "core/squirrel.h"

#include <algorithm>
#include <stdexcept>

#include "placement/reconstruct.h"
#include "placement/striped_device.h"
#include "util/rng.h"

namespace squirrel::core {
namespace {

std::string SnapshotName(std::uint64_t counter) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "reg-%06llu",
                static_cast<unsigned long long>(counter));
  return buf;
}

}  // namespace

SquirrelCluster::SquirrelCluster(SquirrelConfig config,
                                 std::uint32_t compute_count,
                                 sim::NetworkConfig net_config)
    : config_(config),
      sc_volume_(config.volume),
      network_(compute_count + 1, net_config) {
  compute_nodes_.reserve(compute_count);
  for (std::uint32_t i = 0; i < compute_count; ++i) {
    compute_nodes_.push_back(std::make_unique<ComputeNode>(i, config.volume));
  }
  if (config_.placement.striped()) {
    config_.placement.Validate();
    layout_.emplace(config_.placement, compute_count);
    codec_.emplace(config_.placement.data_shards,
                   config_.placement.parity_shards);
  }
}

std::uint64_t SquirrelCluster::InstallShards(ComputeNode& node) {
  // Walk the scVolume's live table and install every shard this node should
  // hold but doesn't. Dedup carries over to shards for free: a block shared
  // with an earlier image already has its shard installed and is skipped, so
  // the charged bytes shrink with cross-image similarity exactly like the
  // full-replication diff streams do.
  const std::uint32_t net_id = node.id() + 1;
  std::uint64_t installed_bytes = 0;
  for (const std::string& name : sc_volume_.FileNames()) {
    const std::uint64_t count = sc_volume_.FileBlockCount(name);
    for (std::uint64_t b = 0; b < count; ++b) {
      const zvol::BlockPtr& ptr = sc_volume_.FileBlock(name, b);
      if (ptr.hole) continue;
      const std::optional<std::uint32_t> shard =
          layout_->ShardOfNode(net_id, ptr.digest);
      if (!shard.has_value()) continue;
      if (node.shards().Contains(ptr.digest)) continue;
      const util::Bytes raw = sc_volume_.block_store().Get(ptr.digest);
      // Encode-on-ingest: the storage node computes the stripe once per
      // block and ships one shard per member; receivers never see payloads
      // they are not assigned.
      std::vector<util::Bytes> shards = codec_->Encode(raw);
      util::Bytes& mine = shards[*shard];
      installed_bytes += mine.size();
      node.shards().Put(ptr.digest, *shard,
                        static_cast<std::uint32_t>(raw.size()),
                        std::move(mine));
    }
  }
  return installed_bytes;
}

RegistrationReport SquirrelCluster::Register(const RegisterRequest& request) {
  const std::string& image_id = request.image_id;
  if (sc_volume_.HasFile(CacheFileName(image_id))) {
    throw std::invalid_argument("image already registered: " + image_id);
  }

  RegistrationReport report;
  report.image_id = image_id;

  // 1. The registration boot on the storage node produces the cache content
  //    copy-on-read; we ingest its final state directly (§3.2 step 1-2).
  const std::string previous_snapshot =
      sc_volume_.LatestSnapshot() ? sc_volume_.LatestSnapshot()->name : "";
  sc_volume_.WriteFile(CacheFileName(image_id), request.cache_content);
  report.total_seconds += config_.registration_boot_seconds;

  // 2. Snapshot the scVolume for this registration (§3.2 step 3).
  report.snapshot_name = SnapshotName(++registration_counter_);
  sc_volume_.CreateSnapshot(report.snapshot_name, request.now.seconds());
  report.total_seconds += config_.snapshot_seconds;

  // 3. Incremental diff against the previous snapshot, multicast to every
  //    online compute node (§3.2 step 4).
  const zvol::SendStream stream =
      sc_volume_.Send(previous_snapshot, report.snapshot_name);
  const util::Bytes wire = stream.Serialize();
  report.diff_wire_bytes = wire.size();
  report.total_seconds += static_cast<double>(wire.size()) /
                          config_.stream_processing_bytes_per_second;

  if (layout_.has_value()) {
    // Striped propagation: metadata (file table + block pointers, payloads
    // stripped) multicasts to every online node — it is what Boot's striped
    // cache device reads block pointers from — while payloads travel as one
    // shard per set member (encode-on-ingest at the storage node). Nodes in
    // sets too small for a stripe receive the whole stream, like the
    // default policy. The scatter-gather retry engine stays on the
    // full-replication path; striped delivery is modelled fault-free.
    const zvol::SendStream parsed = zvol::SendStream::Deserialize(wire);
    std::uint64_t payload_bytes = 0;
    for (const auto& fr : parsed.files) {
      for (const auto& br : fr.blocks) {
        if (br.has_payload) payload_bytes += br.payload.size();
      }
    }
    const std::uint64_t meta_bytes =
        wire.size() > payload_bytes ? wire.size() - payload_bytes : 0;
    std::vector<std::uint32_t> online_ids;
    for (const auto& node : compute_nodes_) {
      if (node->online()) online_ids.push_back(node->id() + 1);
    }
    report.total_seconds += network_.Multicast(0, online_ids, meta_bytes) / 1e9;
    for (const auto& node : compute_nodes_) {
      if (!node->online()) continue;
      if (NodeStriped(node->id())) {
        // A striped node that missed earlier diffs while offline catches up
        // on its next boot-time sync, like the legacy stale-replica path.
        if (parsed.incremental && node->shard_synced_id() != parsed.from_id) {
          continue;
        }
        const std::uint64_t bytes = InstallShards(*node);
        if (bytes > 0) {
          report.total_seconds +=
              network_.Transfer(0, node->id() + 1, bytes) / 1e9;
        }
        node->set_shard_synced_id(parsed.to_id);
        ++report.receivers;
      } else {
        if (parsed.incremental &&
            node->volume().LatestSnapshot() == nullptr) {
          continue;
        }
        report.total_seconds +=
            network_.Transfer(0, node->id() + 1, wire.size()) / 1e9;
        try {
          node->volume().Receive(parsed);
          ++report.receivers;
        } catch (const zvol::StreamMismatchError&) {
          // Stale replica; resolved by SyncNode later.
        } catch (const util::CrashError&) {
          ++report.transfers.crashed_applies;
        }
      }
    }

    report.cache_logical_bytes = 0;
    const std::string file = CacheFileName(image_id);
    for (std::uint64_t b = 0; b < sc_volume_.FileBlockCount(file); ++b) {
      const zvol::BlockPtr& ptr = sc_volume_.FileBlock(file, b);
      if (!ptr.hole) report.cache_logical_bytes += ptr.logical_size;
    }
    registered_.push_back(image_id);
    return report;
  }

  std::vector<std::uint32_t> receivers;
  for (const auto& node : compute_nodes_) {
    if (node->online()) receivers.push_back(node->id() + 1);
  }
  double distribution_ns = 0.0;
  switch (config_.propagation) {
    case PropagationStrategy::kMulticast:
      distribution_ns = network_.Multicast(0, receivers, wire.size());
      break;
    case PropagationStrategy::kUnicast:
      distribution_ns = network_.UnicastAll(0, receivers, wire.size());
      break;
    case PropagationStrategy::kPipeline:
      distribution_ns = network_.Pipeline(0, receivers, wire.size());
      break;
  }
  report.total_seconds += distribution_ns / 1e9;

  const zvol::SendStream parsed = zvol::SendStream::Deserialize(wire);
  const std::uint64_t transfer_id = ++transfer_counter_;
  std::vector<ComputeNode*> eligible;
  std::vector<std::uint32_t> eligible_ids;
  for (const auto& node : compute_nodes_) {
    if (!node->online()) continue;
    if (node->volume().LatestSnapshot() == nullptr && parsed.incremental) {
      // A node that joined after earlier registrations but was never synced
      // cannot apply an incremental diff; it catches up on its next boot.
      continue;
    }
    eligible.push_back(node.get());
    eligible_ids.push_back(node->id() + 1);
  }
  // One stream scatters to every eligible node; per-node retry tails run
  // concurrently (serially modelled at window 1, event-driven above it), so
  // the registration's critical path extends by the fan out's makespan, not
  // the sum of tails.
  ScatterGatherTransfer transfer(&network_, faults_, config_.retry,
                                 config_.transfer);
  const ScatterGatherResult fanout = transfer.Run(
      parsed, wire.size(), eligible_ids, transfer_id, report.transfers);
  report.total_seconds += fanout.makespan_seconds;
  for (std::size_t i = 0; i < eligible.size(); ++i) {
    if (!fanout.outcomes[i].delivered) {
      continue;  // abandoned; SyncNode reconciles later (§3.5)
    }
    try {
      eligible[i]->volume().Receive(parsed);
      ++report.receivers;
    } catch (const zvol::StreamMismatchError&) {
      // Stale replica (missed earlier diffs); resolved by SyncNode later.
    } catch (const util::CrashError&) {
      // The node died mid-apply. Its transactional Receive either rolled
      // back (replica unchanged, SyncNode re-delivers) or crashed after the
      // commit point (replica current; re-delivery no-ops). Either way the
      // cluster keeps going without this receiver.
      ++report.transfers.crashed_applies;
    }
  }

  // Cache accounting for the report.
  report.cache_logical_bytes = 0;
  const std::string file = CacheFileName(image_id);
  for (std::uint64_t b = 0; b < sc_volume_.FileBlockCount(file); ++b) {
    const zvol::BlockPtr& ptr = sc_volume_.FileBlock(file, b);
    if (!ptr.hole) report.cache_logical_bytes += ptr.logical_size;
  }

  registered_.push_back(image_id);
  return report;
}

void SquirrelCluster::Deregister(const std::string& image_id, SimClock) {
  const std::string file = CacheFileName(image_id);
  if (!sc_volume_.HasFile(file)) {
    throw std::invalid_argument("image not registered: " + image_id);
  }
  sc_volume_.DeleteFile(file);
  std::erase(registered_, image_id);
  // No snapshot here (§3.4): the deletion reaches ccVolumes with the next
  // registration's snapshot, and the blocks stay pinned by old snapshots
  // until garbage collection prunes them.
}

SyncReport SquirrelCluster::SyncNode(std::uint32_t compute_node, SimClock) {
  ComputeNode& node = *compute_nodes_.at(compute_node);
  SyncReport report;

  const zvol::Snapshot* sc_latest = sc_volume_.LatestSnapshot();
  if (sc_latest == nullptr) return report;  // nothing registered yet

  if (NodeStriped(compute_node)) {
    // Striped catch-up: rather than replaying diff streams, walk the
    // current table and install every missing shard — idempotent and
    // equivalent, since the shard layout is a pure function of the digest.
    if (node.shard_synced_id() == sc_latest->id) return report;
    report.full_resync = node.shard_synced_id() == 0;
    const std::uint64_t bytes = InstallShards(node);
    report.wire_bytes = bytes;
    if (bytes > 0) {
      report.seconds += network_.Transfer(0, compute_node + 1, bytes) / 1e9;
      report.seconds += static_cast<double>(bytes) /
                        config_.stream_processing_bytes_per_second;
    }
    report.snapshots_advanced =
        static_cast<std::uint32_t>(sc_latest->id - node.shard_synced_id());
    node.set_shard_synced_id(sc_latest->id);
    return report;
  }

  const zvol::Snapshot* local = node.volume().LatestSnapshot();
  if (local != nullptr && local->id == sc_latest->id) return report;

  const bool have_base =
      local != nullptr && sc_volume_.FindSnapshot(local->name) != nullptr &&
      sc_volume_.FindSnapshot(local->name)->id == local->id;

  zvol::SendStream stream;
  if (have_base) {
    stream = sc_volume_.Send(local->name, sc_latest->name);
  } else {
    // §3.5 scenario 2: offline longer than the retention window (or a brand
    // new node) — replicate the entire scVolume.
    report.full_resync = true;
    stream = sc_volume_.Send("", sc_latest->name);
  }

  const util::Bytes wire = stream.Serialize();
  report.wire_bytes = wire.size();
  report.seconds += network_.Transfer(0, compute_node + 1, wire.size()) / 1e9;
  report.seconds += static_cast<double>(wire.size()) /
                    config_.stream_processing_bytes_per_second;

  const zvol::SendStream parsed = zvol::SendStream::Deserialize(wire);
  ScatterGatherTransfer transfer(&network_, faults_, config_.retry,
                                 config_.transfer);
  const ScatterGatherResult delivery = transfer.Run(
      parsed, wire.size(), {compute_node + 1}, ++transfer_counter_,
      report.transfers, /*initial_seconds=*/report.seconds);
  report.seconds = delivery.outcomes.front().seconds;
  if (!delivery.outcomes.front().delivered) {
    // Every attempt faulted: the node stays stale (snapshots_advanced == 0)
    // and the next boot-time sync tries again.
    return report;
  }
  const std::uint64_t before =
      node.volume().LatestSnapshot() ? node.volume().LatestSnapshot()->id : 0;
  try {
    if (report.full_resync) {
      node.volume().ReceiveFull(parsed);
    } else {
      node.volume().Receive(parsed);
    }
  } catch (const util::CrashError&) {
    // Crash mid-apply: the replica rolled back to its pre-stream state (or,
    // for a full resync killed between drop and commit, to empty — §3.5
    // scenario 2 re-replicates it). The next boot-time sync reconciles;
    // report it stale rather than advanced.
    ++report.transfers.crashed_applies;
    return report;
  }
  report.snapshots_advanced = static_cast<std::uint32_t>(
      node.volume().LatestSnapshot()->id - before);
  return report;
}

void SquirrelCluster::RunGc(SimClock now) {
  sc_volume_.PruneSnapshots(config_.retention_seconds, now.seconds());
  for (const auto& node : compute_nodes_) {
    if (node->online()) {
      node->volume().PruneSnapshots(config_.retention_seconds, now.seconds());
    }
  }
}

BootReport SquirrelCluster::BootStriped(std::uint32_t compute_node,
                                        const BootRequest& request,
                                        sim::IoContext& io) {
  const util::DataSource& base_image = request.base_image;
  const std::string file = CacheFileName(request.image_id);
  if (!sc_volume_.HasFile(file)) {
    throw std::invalid_argument("no registered cache for " + request.image_id);
  }
  const std::uint32_t net_id = compute_node + 1;
  const std::uint64_t net_before = network_.bytes_in(net_id);

  // The stripe: every member of this node's storage set, with its current
  // liveness. An offline member's shards are unreachable — that is exactly
  // the degraded case parity exists for.
  std::vector<placement::ShardPeer> peers;
  for (const std::uint32_t member :
       layout_->SetMembers(layout_->SetOfNode(net_id))) {
    const ComputeNode& m = *compute_nodes_.at(member - 1);
    peers.push_back({member, &m.shards(), m.online(), member == net_id});
  }
  placement::ReconstructionSource source(&*codec_, std::move(peers));

  // §3.3's chain with the striped cache layer: metadata from the replicated
  // catalog (modelled by the scVolume's table), payloads gathered from the
  // set, whole-block storage fetches only as a last resort.
  cow::QcowOverlay overlay(base_image.size(), cow::kDefaultClusterSize);
  placement::StripedFileDevice cache(&sc_volume_, file, &source,
                                     &sc_volume_.block_store(), &io,
                                     &network_, net_id);
  sim::RemoteImageDevice base(&base_image, &io, &network_, net_id,
                              request.allocation);
  cow::Chain chain(&overlay, &cache, &base, /*copy_on_read=*/false);

  BootReport report;
  // Profile recording/replay, ARC warming and pre-heal are whole-replica
  // features; a striped boot runs unprofiled (DESIGN.md §16).
  report.result = sim::SimulateBoot(chain, request.trace, io,
                                    request.boot_config, request.writes,
                                    /*prefetch=*/nullptr);
  report.network_bytes = network_.bytes_in(net_id) - net_before;
  const placement::StripedFileDevice::StripedReadStats& stats = cache.stats();
  report.reconstructed_blocks = stats.reconstructed_blocks;
  report.parity_reads = stats.parity_reads;
  report.reconstruct_fallbacks = stats.reconstruct_fallbacks;
  report.shard_remote_bytes = stats.remote_shard_bytes;
  // The storage-node fallback is the striped analogue of a degraded
  // re-fetch: surface it through the existing repair counters.
  report.repair_reads = stats.storage_fetches;
  report.repaired_blocks_bytes = stats.storage_fetch_bytes;
  return report;
}

BootReport SquirrelCluster::Boot(std::uint32_t compute_node,
                                 const BootRequest& request,
                                 sim::IoContext& io) {
  if (NodeStriped(compute_node)) {
    return BootStriped(compute_node, request, io);
  }
  const util::DataSource& base_image = request.base_image;
  const BootProfileRun* profile = request.profile;
  ComputeNode& node = *compute_nodes_.at(compute_node);
  const std::string file = CacheFileName(request.image_id);
  if (!node.volume().HasFile(file)) {
    throw std::invalid_argument("ccVolume has no cache for " +
                                request.image_id + " — sync the node first");
  }

  const std::uint64_t net_before = network_.bytes_in(compute_node + 1);

  // §3.3: empty CoW overlay -> ccVolume cache file -> base VMI.
  cow::QcowOverlay overlay(base_image.size(), cow::kDefaultClusterSize);
  sim::VolumeFileDevice cache(&node.volume(), file, &io,
                              /*device_id=*/0x1000 + compute_node);
  // Degraded-mode fallback: a corrupt ccVolume block heals on demand from
  // the storage node's replica, charged as network traffic to this node.
  // With a healthy replica this changes nothing.
  if (request.peer_repair_sources) {
    // Multi-peer healing: every other online replica that also holds this
    // cache file, tried before the storage node. Compute peers may serve
    // Byzantine payloads under the fault injector (the storage node, peer
    // id 0, is always honest), so the session's strike counter is what
    // keeps a degraded boot completing: lying peers blacklist out and the
    // block re-sources down the list.
    std::vector<zvol::RepairPeer> peers;
    for (const auto& other : compute_nodes_) {
      if (other->id() == compute_node || !other->online()) continue;
      if (!other->volume().HasFile(file)) continue;
      peers.push_back({other->id() + 1, &other->volume().block_store()});
    }
    peers.push_back({0, &sc_volume_.block_store()});
    cache.SetRepairSources(std::move(peers), &network_, compute_node + 1,
                           faults_);
  } else {
    cache.SetRepairSource(&sc_volume_.block_store(), &network_,
                          compute_node + 1);
  }
  sim::RemoteImageDevice base(&base_image, &io, &network_, compute_node + 1,
                              request.allocation);
  // The ccVolume is read-only to VMs: copy-on-read happened at registration.
  cow::Chain chain(&overlay, &cache, &base, /*copy_on_read=*/false);

  BootReport report;
  if (profile != nullptr && profile->record != nullptr) {
    cache.SetProfileRecorder(profile->record);
  }
  sim::ProfilePrefetcher prefetcher(
      profile != nullptr ? profile->replay : nullptr, &io,
      sim::ProfilePrefetchConfig{
          profile != nullptr ? profile->lead_blocks : 32});
  sim::ProfilePrefetcher* prefetch = nullptr;
  if (profile != nullptr && profile->replay != nullptr) {
    std::vector<std::uint64_t> touched =
        profile->replay->BlocksForFile(file, /*misses_only=*/false);
    std::sort(touched.begin(), touched.end());
    if (profile->pre_heal) {
      // Pre-heal: walk the profile's blocks through the repair read path
      // before the guest starts. A degraded replica fetches its clean
      // copies now — off the boot's critical path — and the reads warm the
      // decompressed-block ARC either way. The wire bytes are charged to
      // the network accountant but not to the guest clock: the modelled
      // prefetch daemon overlaps VM scheduling.
      const std::uint32_t block_size = node.volume().config().block_size;
      const std::uint64_t block_count = node.volume().FileBlockCount(file);
      const std::uint64_t file_size = node.volume().FileSize(file);
      std::size_t i = 0;
      while (i < touched.size()) {
        std::size_t j = i + 1;
        while (j < touched.size() && touched[j] == touched[j - 1] + 1) ++j;
        if (touched[i] < block_count) {
          const std::uint64_t offset = touched[i] * block_size;
          const std::uint64_t end_block =
              std::min<std::uint64_t>(touched[j - 1] + 1, block_count);
          const std::uint64_t length =
              std::min<std::uint64_t>(end_block * block_size, file_size) -
              offset;
          std::uint64_t fetched = 0;
          node.volume().ReadRangeRepair(file, offset, length,
                                        sc_volume_.block_store(), &fetched);
          if (fetched > 0) {
            ++report.preheal_repair_fetches;
            report.preheal_repaired_bytes += fetched;
            network_.Transfer(/*from=*/0, compute_node + 1, fetched);
          }
        }
        i = j;
      }
    } else {
      cache.WarmCacheFromBlocks(touched);
    }
    prefetcher.Bind(file, &cache);
    prefetch = &prefetcher;
  }
  report.result = sim::SimulateBoot(chain, request.trace, io,
                                    request.boot_config, request.writes,
                                    prefetch);
  report.network_bytes = network_.bytes_in(compute_node + 1) - net_before;
  report.repaired_blocks_bytes = cache.degraded_stats().repaired_bytes;
  report.repair_reads = cache.degraded_stats().repair_reads;
  report.prefetch_issued = prefetcher.stats().issued;
  report.byzantine_rejected = cache.degraded_stats().byzantine_rejected;
  report.peers_blacklisted = cache.degraded_stats().peers_blacklisted;
  report.resourced_blocks = cache.degraded_stats().resourced_blocks;
  return report;
}

}  // namespace squirrel::core
