#include "vmi/corpus.h"

#include <algorithm>
#include <array>
#include <cstring>

#include "util/rng.h"

namespace squirrel::vmi {
namespace {

// Word table for text-class grains; drawn from common configuration/log
// vocabulary so text grains have realistic letter statistics.
constexpr std::array<const char*, 48> kWords = {
    "the",     "kernel",  "module",  "loaded",  "service",  "started",
    "config",  "default", "enabled", "disabled","interface","network",
    "address", "static",  "dynamic", "mount",   "device",   "driver",
    "version", "release", "package", "install", "update",   "depends",
    "library", "shared",  "object",  "symbol",  "resolve",  "daemon",
    "process", "thread",  "signal",  "handler", "timeout",  "retry",
    "socket",  "listen",  "accept",  "buffer",  "cache",    "memory",
    "volume",  "block",   "storage", "cluster", "replica",  "index"};

enum class GrainClass { kText, kBinary, kRandom };

GrainClass ClassifyGrain(std::uint64_t grain_seed) {
  // 40% text, 40% binary, 20% random.
  const std::uint64_t bucket = grain_seed % 10;
  if (bucket < 4) return GrainClass::kText;
  if (bucket < 8) return GrainClass::kBinary;
  return GrainClass::kRandom;
}

void FillText(util::Rng& rng, util::MutableByteSpan out) {
  // Dictionary words mixed with random hex identifiers (paths, uuids,
  // addresses). The identifiers carry fresh entropy, so the compression
  // ratio saturates instead of growing without bound at large block sizes.
  static constexpr char kHex[] = "0123456789abcdef";
  std::size_t pos = 0;
  while (pos < out.size()) {
    if (rng.Chance(0.3)) {
      const std::uint64_t value = rng.Next();
      for (int i = 0; i < 10 && pos < out.size(); ++i) {
        out[pos++] = static_cast<util::Byte>(kHex[(value >> (4 * i)) & 0xf]);
      }
    } else {
      const char* word = kWords[rng.Below(kWords.size())];
      const std::size_t len = std::strlen(word);
      for (std::size_t i = 0; i < len && pos < out.size(); ++i) {
        out[pos++] = static_cast<util::Byte>(word[i]);
      }
    }
    if (pos < out.size()) {
      out[pos++] = rng.Chance(0.12) ? '\n' : ' ';
    }
  }
}

void FillBinary(util::Rng& rng, util::MutableByteSpan out) {
  // Fixed-layout 32-byte records: magic, an incrementing id, a few random
  // fields and zero padding — typical ELF/metadata entropy.
  std::uint32_t id = static_cast<std::uint32_t>(rng.Next());
  std::size_t pos = 0;
  while (pos < out.size()) {
    util::Byte record[32] = {0x7f, 0x45, 0x4c, 0x46};  // repeating magic
    std::memcpy(record + 4, &id, sizeof(id));
    ++id;
    // 16 bytes of random payload keep per-record entropy high enough that
    // the class compresses ~2x regardless of window size.
    const std::uint64_t payload0 = rng.Next();
    const std::uint64_t payload1 = rng.Next();
    std::memcpy(record + 8, &payload0, sizeof(payload0));
    std::memcpy(record + 16, &payload1, sizeof(payload1));
    // record[24..31] stays zero padding.
    const std::size_t take = std::min<std::size_t>(32, out.size() - pos);
    std::memcpy(out.data() + pos, record, take);
    pos += take;
  }
}

void FillGrain(std::uint64_t seed, std::uint64_t grain_index,
               util::MutableByteSpan out) {
  const std::uint64_t grain_seed =
      (seed ^ (grain_index * 0x9e3779b97f4a7c15ULL)) * 0xbf58476d1ce4e5b9ULL;
  util::Rng rng(grain_seed);
  switch (ClassifyGrain(grain_seed)) {
    case GrainClass::kText:
      FillText(rng, out);
      break;
    case GrainClass::kBinary:
      FillBinary(rng, out);
      break;
    case GrainClass::kRandom:
      rng.Fill(out);
      break;
  }
}

}  // namespace

void GenerateCorpus(std::uint64_t seed, std::uint64_t offset,
                    util::MutableByteSpan out) {
  std::uint64_t pos = 0;
  util::Byte grain_buffer[kCorpusGrain];
  while (pos < out.size()) {
    const std::uint64_t abs = offset + pos;
    const std::uint64_t grain_index = abs / kCorpusGrain;
    const std::uint64_t within = abs % kCorpusGrain;
    const std::uint64_t take =
        std::min<std::uint64_t>(kCorpusGrain - within, out.size() - pos);
    if (within == 0 && take == kCorpusGrain) {
      FillGrain(seed, grain_index, util::MutableByteSpan(out.data() + pos, kCorpusGrain));
    } else {
      FillGrain(seed, grain_index, util::MutableByteSpan(grain_buffer, kCorpusGrain));
      std::memcpy(out.data() + pos, grain_buffer + within, take);
    }
    pos += take;
  }
}

}  // namespace squirrel::vmi
