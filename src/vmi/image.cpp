#include "vmi/image.h"

#include <algorithm>
#include <cassert>
#include <cstring>

#include "util/rng.h"
#include "vmi/corpus.h"

namespace squirrel::vmi {
namespace {

// Gap quanta for user-installed (misaligned) packages. Each package gets a
// per-image gap that is a multiple of one of these, so identical package
// content dedups only once the volume block size drops to the quantum.
constexpr std::uint64_t kGapQuanta[] = {1 * util::kKiB, 2 * util::kKiB,
                                        4 * util::kKiB, 8 * util::kKiB,
                                        16 * util::kKiB};

}  // namespace

VmImage::VmImage(const Catalog& catalog, const ImageSpec& spec)
    : catalog_(&catalog),
      spec_(&spec),
      release_(&catalog.releases()[spec.release_index]) {
  util::Rng rng(spec.seed);
  const CatalogConfig& config = catalog.config();

  // --- base -------------------------------------------------------------------
  // Dense mode: the whole base (kernel + system userland) is one contiguous
  // extent at offset 0 — distro installs lay files out identically for
  // every image of a release. Scattered mode keeps only the kernel reserve
  // contiguous and spreads the rest over the wide zone below.
  kernel_reserve_ = util::AlignDown(
      static_cast<std::uint64_t>(static_cast<double>(spec.base_bytes) *
                                 config.kernel_reserve_fraction),
      64 * util::kKiB);
  const std::uint64_t contiguous_base =
      config.dense_layout ? spec.base_bytes : kernel_reserve_;
  extents_.push_back(Extent{0, contiguous_base, release_->base_corpus_seed,
                            release_->base_corpus_offset});

  // --- user-installed packages ------------------------------------------------
  // Densely packed after the base with small per-image gaps quantized to
  // 1-16 KiB — identical content at different block phases across images,
  // which only small dedup blocks can match.
  const auto& pool = catalog.family_packages(release_->family);
  const std::uint64_t pkg_corpus = catalog.package_corpus_seed(release_->family);
  std::uint64_t cursor = util::AlignUp(contiguous_base + util::kMiB, util::kMiB);
  package_offsets_.reserve(spec.packages.size());
  for (std::size_t i = 0; i < spec.packages.size(); ++i) {
    const Package& pkg = pool[spec.packages[i]];
    const std::uint64_t quantum = kGapQuanta[rng.Below(std::size(kGapQuanta))];
    cursor += rng.Between(1, 15) * quantum;
    package_offsets_.push_back(cursor);
    extents_.push_back(Extent{cursor, pkg.size, pkg_corpus, pkg.corpus_offset});
    cursor += pkg.size;
  }

  // --- user data ------------------------------------------------------------
  // Composed of 256 KiB segments; a configured fraction of segments repeats
  // an earlier segment of the same image (file copies), which raises the
  // dedup ratio without adding any cross-image similarity.
  const std::uint64_t user_seed = rng.Next();
  const std::uint64_t segment = 256 * util::kKiB;
  std::uint64_t user_cursor = util::AlignUp(cursor + util::kMiB, util::kMiB);
  std::uint64_t remaining = spec.user_bytes;
  std::uint64_t fresh_segments = 0;
  while (remaining > 0) {
    const std::uint64_t len = std::min(segment, remaining);
    std::uint64_t corpus_offset;
    if (fresh_segments > 0 && rng.Chance(config.user_dup_fraction)) {
      corpus_offset = rng.Below(fresh_segments) * segment;  // repeat a copy
    } else {
      corpus_offset = fresh_segments * segment;
      ++fresh_segments;
    }
    extents_.push_back(Extent{user_cursor, len, user_seed, corpus_offset});
    user_cursor += len;
    remaining -= len;
  }

  // Start of the wide zone. This must be identical for every image of a
  // release (fragment positions are release-wide), so it is derived from
  // catalog-level bounds only: the base, a generous allowance for the
  // per-image package area, and the user area.
  const std::uint64_t package_budget = static_cast<std::uint64_t>(
      static_cast<double>(config.ScaledNonzero()) * config.package_fraction);
  const std::uint64_t wide_start = util::AlignUp(
      spec.base_bytes + 2 * (package_budget + 4 * util::kMiB) +
          spec.user_bytes + 8 * util::kMiB,
      util::kMiB);
  const std::uint64_t dense_end = util::AlignUp(user_cursor, util::kMiB);
  assert(dense_end <= wide_start && "dense zone overflowed its allowance");
  // Dense layouts only need the dense zone; scattered layouts reserve room
  // for the wide zone the base fragments spread over.
  logical_size_ = config.dense_layout
                      ? std::max(spec_->logical_size, dense_end)
                      : std::max(spec_->logical_size, wide_start * 4);

  // Boot-write scratch: [dense_end + 1 MiB, wide_start - 1 MiB) is free in
  // both modes (dense layouts place nothing past dense_end; scattered
  // layouts start their fragments at wide_start).
  scratch_offset_ = dense_end + util::kMiB;
  const std::uint64_t scratch_end = std::min(
      logical_size_, config.dense_layout ? logical_size_ : wide_start - util::kMiB);
  scratch_length_ =
      scratch_end > scratch_offset_ ? scratch_end - scratch_offset_ : 0;

  // --- base: scattered fragments over the wide zone --------------------------
  // (Scattered mode only.) The remaining base content ([reserve,
  // base_bytes) in content space) is split into fragments spread across the
  // rest of the virtual disk, at 64 KiB-quantized positions identical for
  // every image of the release.
  const std::uint64_t scattered_base =
      config.dense_layout
          ? 0
          : (spec.base_bytes > kernel_reserve_ ? spec.base_bytes - kernel_reserve_
                                               : 0);
  if (scattered_base > 0) {
    constexpr std::uint64_t kQuantum = 64 * util::kKiB;
    constexpr std::uint64_t kTargetFragments = 32;
    fragment_length_ = util::AlignUp(
        std::max<std::uint64_t>(util::CeilDiv(scattered_base, kTargetFragments),
                                kQuantum),
        kQuantum);
    const std::uint64_t fragment_count =
        util::CeilDiv(scattered_base, fragment_length_);
    const std::uint64_t wide_size = logical_size_ - wide_start;
    const std::uint64_t slot = wide_size / fragment_count;
    util::Rng frag_rng(release_->boot_seed ^ 0xf4a6f4a6ULL);
    for (std::uint64_t f = 0; f < fragment_count; ++f) {
      const std::uint64_t content_start = kernel_reserve_ + f * fragment_length_;
      const std::uint64_t len =
          std::min(fragment_length_, spec.base_bytes - content_start);
      const std::uint64_t jitter_room =
          slot > fragment_length_ ? slot - fragment_length_ : 1;
      const std::uint64_t offset =
          wide_start + f * slot +
          util::AlignDown(frag_rng.Below(jitter_room), kQuantum);
      fragment_offsets_.push_back(offset);
      extents_.push_back(Extent{offset, len, release_->base_corpus_seed,
                                release_->base_corpus_offset + content_start});
    }
  } else {
    // Dense mode: translation is the identity; give the fragment length a
    // sentinel that keeps index math harmless.
    fragment_length_ = std::max<std::uint64_t>(spec.base_bytes, 1);
  }

  std::sort(extents_.begin(), extents_.end(),
            [](const Extent& a, const Extent& b) {
              return a.logical_offset < b.logical_offset;
            });
  for (const Extent& e : extents_) nonzero_bytes_ += e.length;

  // --- delta patches over the base -----------------------------------------
  // Patches land only past the kernel reserve: kernel/initrd bytes are never
  // user-edited, so the boot prefix stays release-identical. Generated in
  // base-content space, stored at their translated logical positions
  // (clamped to stay inside one fragment).
  const std::uint64_t patchable =
      spec.base_bytes > kernel_reserve_ ? spec.base_bytes - kernel_reserve_ : 0;
  const std::uint64_t patch_count =
      patchable / std::max<std::uint64_t>(1, config.patch_every);
  patches_.reserve(patch_count);
  for (std::uint64_t p = 0; p < patch_count; ++p) {
    Patch patch;
    patch.length = static_cast<std::uint32_t>(rng.Between(256, 4096));
    std::uint64_t content = kernel_reserve_ + rng.Below(patchable);
    // Keep the patch inside one contiguous region: its fragment in
    // scattered mode, the base itself in dense mode.
    const std::uint64_t frag_index =
        (content - kernel_reserve_) / fragment_length_;
    const std::uint64_t frag_content_end = std::min(
        kernel_reserve_ + (frag_index + 1) * fragment_length_, spec.base_bytes);
    if (content + patch.length > frag_content_end) {
      content = frag_content_end > patch.length ? frag_content_end - patch.length
                                                : frag_content_end - 1;
    }
    patch.logical_offset = BaseContentToLogical(content);
    patch.seed = rng.Next();
    patches_.push_back(patch);
  }
  std::sort(patches_.begin(), patches_.end(),
            [](const Patch& a, const Patch& b) {
              return a.logical_offset < b.logical_offset;
            });
}

bool VmImage::RangeHasData(std::uint64_t offset, std::uint64_t length) const {
  const std::uint64_t end = offset + length;
  auto it = std::upper_bound(extents_.begin(), extents_.end(), offset,
                             [](std::uint64_t off, const Extent& e) {
                               return off < e.logical_offset;
                             });
  if (it != extents_.begin()) {
    const Extent& prev = *std::prev(it);
    if (prev.logical_offset + prev.length > offset) return true;
  }
  return it != extents_.end() && it->logical_offset < end;
}

std::uint64_t VmImage::BaseContentToLogical(std::uint64_t content_offset) const {
  if (fragment_offsets_.empty()) return content_offset;  // dense layout
  if (content_offset < kernel_reserve_) return content_offset;
  const std::uint64_t scattered = content_offset - kernel_reserve_;
  const std::uint64_t frag_index = scattered / fragment_length_;
  assert(frag_index < fragment_offsets_.size());
  return fragment_offsets_[frag_index] + scattered % fragment_length_;
}

void VmImage::Read(std::uint64_t offset, util::MutableByteSpan out) const {
  assert(offset + out.size() <= logical_size_);
  std::memset(out.data(), 0, out.size());
  const std::uint64_t end = offset + out.size();

  // Fill from extents overlapping [offset, end).
  auto it = std::upper_bound(extents_.begin(), extents_.end(), offset,
                             [](std::uint64_t off, const Extent& e) {
                               return off < e.logical_offset;
                             });
  if (it != extents_.begin()) --it;
  for (; it != extents_.end() && it->logical_offset < end; ++it) {
    const std::uint64_t e_start = it->logical_offset;
    const std::uint64_t e_end = e_start + it->length;
    const std::uint64_t lo = std::max(offset, e_start);
    const std::uint64_t hi = std::min(end, e_end);
    if (lo >= hi) continue;
    GenerateCorpus(it->corpus_seed, it->corpus_offset + (lo - e_start),
                   util::MutableByteSpan(out.data() + (lo - offset), hi - lo));
  }

  // Apply per-image patches intersecting the range.
  auto pit = std::upper_bound(patches_.begin(), patches_.end(), offset,
                              [](std::uint64_t off, const Patch& p) {
                                return off < p.logical_offset;
                              });
  // Patches are at most 4 KiB long; walk back far enough that every patch
  // possibly overlapping `offset` is applied, in sorted order, so the bytes
  // produced do not depend on the read boundaries.
  while (pit != patches_.begin() &&
         std::prev(pit)->logical_offset + 4096 > offset) {
    --pit;
  }
  for (; pit != patches_.end() && pit->logical_offset < end; ++pit) {
    const std::uint64_t p_start = pit->logical_offset;
    const std::uint64_t p_end = p_start + pit->length;
    const std::uint64_t lo = std::max(offset, p_start);
    const std::uint64_t hi = std::min(end, p_end);
    if (lo >= hi) continue;
    // Regenerate the whole patch deterministically, then copy the slice.
    util::Bytes content(pit->length);
    util::Rng patch_rng(pit->seed);
    patch_rng.Fill(content);
    std::memcpy(out.data() + (lo - offset), content.data() + (lo - p_start),
                hi - lo);
  }
}

}  // namespace squirrel::vmi
