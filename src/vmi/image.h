// VmImage: a virtual, sparse VM disk image materialized on demand.
//
// The image never exists as a byte array; Read() resolves the queried range
// against an extent map (base / packages / user data over shared corpora),
// then applies the image's delta patches. Identical corpus ranges at
// identical block phases across images are what deduplication later finds.
//
// Layout of the logical address space:
//   [0, kernel_reserve)                  kernel/initrd/bootloader: the only
//                                        contiguous part of the base
//   [pkg_area ...)                       packages (release-standard fixed
//                                        offsets, or per-image misaligned)
//   [user_area, user_area + user_bytes)  per-image user data
//   wide zone (rest of the disk)         the remaining base content,
//                                        scattered as fragments across the
//                                        whole virtual disk — OS files are
//                                        spread over the guest file system,
//                                        which is why booting from the VMI
//                                        itself pays long seeks while the
//                                        compact cache file does not
//   everything else                      zeros (sparse)
//
// Fragment positions are derived from the release seed (identical for every
// image of a release, 64 KiB-quantized), so scattering changes seek
// geometry without disturbing the deduplication structure.
#pragma once

#include <cstdint>
#include <vector>

#include "util/source.h"
#include "vmi/catalog.h"

namespace squirrel::vmi {

struct Extent {
  std::uint64_t logical_offset = 0;
  std::uint64_t length = 0;
  std::uint64_t corpus_seed = 0;
  std::uint64_t corpus_offset = 0;
};

/// A small per-image modification inside the base area (config edits,
/// machine ids, log files) — content unique to the image.
struct Patch {
  std::uint64_t logical_offset = 0;
  std::uint32_t length = 0;
  std::uint64_t seed = 0;
};

class VmImage final : public util::DataSource {
 public:
  VmImage(const Catalog& catalog, const ImageSpec& spec);

  std::uint64_t size() const override { return logical_size_; }
  void Read(std::uint64_t offset, util::MutableByteSpan out) const override;

  const ImageSpec& spec() const { return *spec_; }
  const Release& release() const { return *release_; }
  const std::vector<Extent>& extents() const { return extents_; }
  const std::vector<Patch>& patches() const { return patches_; }

  /// Sum of extent lengths — bytes that are not sparse zeros.
  std::uint64_t nonzero_bytes() const { return nonzero_bytes_; }

  /// True if [offset, offset+length) intersects any content extent — the
  /// sparse-allocation map QCOW2 consults before reading a backing range.
  bool RangeHasData(std::uint64_t offset, std::uint64_t length) const;

  /// Logical offset where each chosen package landed (same order as
  /// spec().packages); the boot set builder reads service prefixes there.
  const std::vector<std::uint64_t>& package_offsets() const {
    return package_offsets_;
  }

  /// Contiguous kernel/initrd prefix length ([0, reserve) is patch-free and
  /// release-identical).
  std::uint64_t kernel_reserve_bytes() const { return kernel_reserve_; }

  /// Translates an offset in base-content space ([0, base_bytes)) to the
  /// logical disk offset where that content lives (identity inside the
  /// kernel reserve, fragment-mapped beyond it).
  std::uint64_t BaseContentToLogical(std::uint64_t content_offset) const;

  std::uint64_t base_fragment_length() const { return fragment_length_; }

  /// A guaranteed-sparse region where boot-time writes (logs, tmp) land:
  /// no extent intersects it in either layout mode.
  std::uint64_t scratch_offset() const { return scratch_offset_; }
  std::uint64_t scratch_length() const { return scratch_length_; }

 private:
  const Catalog* catalog_;
  const ImageSpec* spec_;
  const Release* release_;
  std::vector<Extent> extents_;   // sorted by logical_offset, disjoint
  std::vector<Patch> patches_;    // sorted by logical_offset
  std::vector<std::uint64_t> package_offsets_;
  std::vector<std::uint64_t> fragment_offsets_;  // wide-zone base fragments
  std::uint64_t fragment_length_ = 1;
  std::uint64_t kernel_reserve_ = 0;
  std::uint64_t scratch_offset_ = 0;
  std::uint64_t scratch_length_ = 0;
  std::uint64_t nonzero_bytes_ = 0;
  std::uint64_t logical_size_ = 0;  // >= spec logical size if layout overflows
};

}  // namespace squirrel::vmi
