// Boot working set: the byte ranges of a VMI that a VM reads while booting.
//
// A VMI cache is exactly the image content restricted to these ranges
// (Section 2.1 — the cache is populated copy-on-read during the first boot
// and then serves every block the boot process needs). Composition follows
// Section 4.3.1's rationale: kernel/bootloader and init services dominate
// and are release-wide identical; popular service packages contribute a
// slice that is content-shared but (for user-installed packages) misaligned;
// per-image config edits contribute a small unique tail.
// All ranges are aligned to 64 KiB cluster boundaries: the cache is
// populated copy-on-read through QCOW2, whose lower reads are whole
// clusters, so the materialized working set is the cluster-aligned closure
// of the raw reads (this is also why the paper's caches are "O(100 MB)" —
// they include the amplification).
#pragma once

#include <cstdint>
#include <vector>

#include "util/source.h"
#include "vmi/image.h"

namespace squirrel::vmi {

/// Cluster granularity of copy-on-read population (QCOW2's default).
inline constexpr std::uint64_t kBootClusterAlign = 64 * util::kKiB;

struct Range {
  std::uint64_t offset = 0;
  std::uint64_t length = 0;
  std::uint64_t end() const { return offset + length; }
};

/// One read operation of the boot trace, in issue order.
struct BootRead {
  std::uint64_t offset = 0;
  std::uint32_t length = 0;
};

class BootWorkingSet {
 public:
  /// Derives the boot working set of `image` from the catalog's boot
  /// composition knobs. Deterministic per image; images of one release share
  /// the release-wide portion exactly.
  BootWorkingSet(const Catalog& catalog, const VmImage& image);

  /// Disjoint, sorted ranges.
  const std::vector<Range>& ranges() const { return ranges_; }

  /// Total bytes in the working set (the cache's nonzero size).
  std::uint64_t byte_count() const { return byte_count_; }

  bool Contains(std::uint64_t offset) const;

  /// The ordered reads a booting VM issues: bootloader and kernel first
  /// (sequential), then init-time reads in a deterministic interleaved
  /// order, split into 4-64 KiB requests.
  std::vector<BootRead> Trace(std::uint64_t trace_seed) const;

  /// The writes a boot performs (logs, /run, machine-id, tmp): small
  /// append-heavy bursts into the image's free space, roughly a tenth of
  /// the working set's bytes. These land in the CoW overlay; the chain
  /// copy-on-write fill must not touch the network for unallocated backing
  /// ranges (QCOW2 allocation-map semantics).
  std::vector<BootRead> WriteTrace(std::uint64_t trace_seed) const;

 private:
  const VmImage* image_ = nullptr;
  std::vector<Range> ranges_;
  std::uint64_t byte_count_ = 0;
  std::uint64_t kernel_end_ = 0;  // prefix [0, kernel_end_) is sequential
};

/// Sparse view of a VMI restricted to its boot working set — the content of
/// the VMI cache file that Squirrel stores in its cVolumes.
class CacheImage final : public util::DataSource {
 public:
  CacheImage(const VmImage& image, const BootWorkingSet& boot_set)
      : image_(&image), boot_set_(&boot_set) {}

  std::uint64_t size() const override { return image_->size(); }
  void Read(std::uint64_t offset, util::MutableByteSpan out) const override;

 private:
  const VmImage* image_;
  const BootWorkingSet* boot_set_;
};

}  // namespace squirrel::vmi
