#include "vmi/bootset.h"

#include <algorithm>
#include <cassert>
#include <cstring>

#include "util/rng.h"

namespace squirrel::vmi {
namespace {

std::vector<Range> MergeRanges(std::vector<Range> ranges) {
  std::sort(ranges.begin(), ranges.end(),
            [](const Range& a, const Range& b) { return a.offset < b.offset; });
  std::vector<Range> merged;
  for (const Range& r : ranges) {
    if (r.length == 0) continue;
    if (!merged.empty() && r.offset <= merged.back().end()) {
      merged.back().length =
          std::max(merged.back().end(), r.end()) - merged.back().offset;
    } else {
      merged.push_back(r);
    }
  }
  return merged;
}

}  // namespace

BootWorkingSet::BootWorkingSet(const Catalog& catalog, const VmImage& image)
    : image_(&image) {
  const CatalogConfig& config = catalog.config();
  const ImageSpec& spec = image.spec();
  const Release& release = image.release();
  const std::uint64_t cache_target = config.ScaledCache();

  std::vector<Range> ranges;
  constexpr std::uint64_t kAlign = kBootClusterAlign;

  // 1. Bootloader + kernel + initrd: the contiguous prefix of the base
  //    (never larger than the kernel reserve, which is the only contiguous
  //    base region).
  const std::uint64_t kernel_bytes = std::min(
      image.kernel_reserve_bytes(),
      util::AlignUp(
          static_cast<std::uint64_t>(static_cast<double>(cache_target) *
                                     config.boot_kernel_fraction),
          kAlign));
  ranges.push_back(Range{0, kernel_bytes});
  kernel_end_ = kernel_bytes;

  // 2. Init scripts, shared libraries, service binaries: reads scattered
  //    over the base content, identical for every image of the release
  //    (same OS boots the same files), seeded by the release. Positions are
  //    chosen in base-content space and translated to their (scattered)
  //    on-disk locations; chunks of 64 or 128 KiB (whole files + readahead).
  const std::uint64_t scatter_budget = static_cast<std::uint64_t>(
      static_cast<double>(cache_target) * config.boot_scatter_fraction);
  util::Rng release_rng(release.boot_seed);
  std::uint64_t scattered = 0;
  const std::uint64_t reserve = image.kernel_reserve_bytes();
  const std::uint64_t frag_len = image.base_fragment_length();
  while (scattered < scatter_budget && spec.base_bytes > reserve + 4 * kAlign) {
    // A chunk never exceeds one base fragment: content contiguity implies
    // logical contiguity only within a fragment.
    std::uint64_t len =
        std::min<std::uint64_t>(release_rng.Between(1, 2) * kAlign, frag_len);
    std::uint64_t content =
        reserve + util::AlignDown(
                      release_rng.Below(spec.base_bytes - reserve - len), kAlign);
    // Keep the chunk inside one fragment so the logical range is contiguous.
    const std::uint64_t frag_end =
        reserve + ((content - reserve) / frag_len + 1) * frag_len;
    if (content + len > frag_end) {
      if (frag_end < reserve + len) continue;
      content = frag_end - len;
    }
    ranges.push_back(Range{image.BaseContentToLogical(content), len});
    scattered += len;
  }

  // 3. Services: prefixes of the image's most popular packages, expanded
  //    outward to cluster boundaries (user-installed packages may sit at
  //    misaligned offsets).
  const std::uint64_t service_budget = static_cast<std::uint64_t>(
      static_cast<double>(cache_target) * config.boot_service_fraction);
  const auto& pool = catalog.family_packages(release.family);
  std::uint64_t service_bytes = 0;
  // spec.packages is ordered by draw; popular ranks repeat most across
  // images, so prefer the lowest-rank (most popular) picks.
  std::vector<std::size_t> order(spec.packages.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return spec.packages[a] < spec.packages[b];
  });
  for (std::size_t i = 0; i < order.size() && service_bytes < service_budget; ++i) {
    const std::size_t slot = order[i];
    const std::uint64_t pkg_offset = image.package_offsets()[slot];
    const std::uint64_t pkg_size = pool[spec.packages[slot]].size;
    const std::uint64_t take =
        std::min<std::uint64_t>(pkg_size, service_budget - service_bytes);
    const std::uint64_t lo = util::AlignDown(pkg_offset, kAlign);
    const std::uint64_t hi = util::AlignUp(pkg_offset + take, kAlign);
    ranges.push_back(Range{lo, hi - lo});
    service_bytes += take;
  }

  // 4. Per-image configuration: reads covering a share of the delta patches
  //    (unique content — the reason cache cross-similarity is high but not
  //    1). Each selected patch pulls its surrounding cluster.
  util::Rng image_rng(spec.seed ^ 0xb007b007ULL);
  const std::uint64_t config_budget =
      cache_target -
      std::min(cache_target, kernel_bytes + scattered + service_bytes);
  std::uint64_t config_bytes = 0;
  for (const Patch& patch : image.patches()) {
    if (config_bytes + kAlign > config_budget) break;
    if (!image_rng.Chance(0.5)) continue;
    const std::uint64_t lo = util::AlignDown(patch.logical_offset, kAlign);
    const std::uint64_t hi =
        util::AlignUp(patch.logical_offset + patch.length, kAlign);
    ranges.push_back(Range{lo, hi - lo});
    config_bytes += hi - lo;
  }

  // Clip to the image and merge overlaps.
  for (Range& r : ranges) {
    if (r.offset >= image.size()) {
      r.length = 0;
    } else {
      r.length = std::min(r.length, image.size() - r.offset);
    }
  }
  ranges_ = MergeRanges(std::move(ranges));
  for (const Range& r : ranges_) byte_count_ += r.length;
}

bool BootWorkingSet::Contains(std::uint64_t offset) const {
  auto it = std::upper_bound(ranges_.begin(), ranges_.end(), offset,
                             [](std::uint64_t off, const Range& r) {
                               return off < r.offset;
                             });
  if (it == ranges_.begin()) return false;
  --it;
  return offset < it->end();
}

std::vector<BootRead> BootWorkingSet::Trace(std::uint64_t trace_seed) const {
  std::vector<BootRead> reads;
  std::vector<BootRead> scattered;
  util::Rng rng(trace_seed);

  for (const Range& range : ranges_) {
    std::uint64_t cursor = range.offset;
    while (cursor < range.end()) {
      const std::uint64_t len = std::min<std::uint64_t>(
          range.end() - cursor, rng.Between(4, 64) * util::kKiB);
      const BootRead read{cursor, static_cast<std::uint32_t>(len)};
      if (range.end() <= kernel_end_) {
        reads.push_back(read);  // sequential prefix, issued in order
      } else {
        scattered.push_back(read);
      }
      cursor += len;
    }
  }

  // Init-time reads interleave across services: deterministic shuffle.
  for (std::size_t i = scattered.size(); i > 1; --i) {
    std::swap(scattered[i - 1], scattered[rng.Below(i)]);
  }
  reads.insert(reads.end(), scattered.begin(), scattered.end());
  return reads;
}

std::vector<BootRead> BootWorkingSet::WriteTrace(std::uint64_t trace_seed) const {
  std::vector<BootRead> writes;
  const std::uint64_t scratch = image_->scratch_length();
  if (scratch == 0) return writes;
  util::Rng rng(trace_seed ^ 0x5742555354ULL);  // "WBUST"

  // A handful of append-heavy streams (log files, /run state), together
  // about an eighth of the working set's bytes.
  const std::uint64_t budget = byte_count_ / 8;
  const std::uint32_t streams = static_cast<std::uint32_t>(rng.Between(3, 6));
  for (std::uint32_t s = 0; s < streams; ++s) {
    std::uint64_t cursor =
        image_->scratch_offset() +
        util::AlignDown(rng.Below(std::max<std::uint64_t>(1, scratch / 2)),
                        4096);
    std::uint64_t stream_budget = budget / streams;
    while (stream_budget > 0) {
      const std::uint32_t len = static_cast<std::uint32_t>(
          std::min<std::uint64_t>(stream_budget, rng.Between(1, 4) * 4096));
      if (cursor + len > image_->size()) break;
      writes.push_back({cursor, len});
      cursor += len;  // append
      stream_budget -= len;
    }
  }
  // Interleave streams deterministically, preserving per-stream order:
  // sort by a stable shuffle of indices grouped in bursts is overkill —
  // appends from different services interleave naturally in arrival order,
  // which the per-stream construction above already approximates.
  return writes;
}

void CacheImage::Read(std::uint64_t offset, util::MutableByteSpan out) const {
  std::memset(out.data(), 0, out.size());
  const std::uint64_t end = offset + out.size();
  const auto& ranges = boot_set_->ranges();
  auto it = std::upper_bound(ranges.begin(), ranges.end(), offset,
                             [](std::uint64_t off, const Range& r) {
                               return off < r.offset;
                             });
  if (it != ranges.begin()) --it;
  for (; it != ranges.end() && it->offset < end; ++it) {
    const std::uint64_t lo = std::max(offset, it->offset);
    const std::uint64_t hi = std::min(end, it->end());
    if (lo >= hi) continue;
    image_->Read(lo, util::MutableByteSpan(out.data() + (lo - offset), hi - lo));
  }
}

}  // namespace squirrel::vmi
