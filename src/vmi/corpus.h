// Deterministic synthetic content streams ("corpora").
//
// A corpus is an unbounded byte stream identified by a 64-bit seed. Content
// is generated grain by grain (4 KiB grains); grain g of corpus s depends
// only on (s, g), so any two images referencing the same corpus range read
// identical bytes — that is what deduplication finds.
//
// Each grain is one of three content classes, chosen pseudo-randomly per
// grain with a fixed mix, so aggregate compressibility resembles OS file
// system content (the paper's gzip6 ratio of ~2-2.5):
//   * text   — words from a fixed dictionary; compresses well (~4x)
//   * binary — structured records with repeating layout (~2x)
//   * random — incompressible (already-compressed payloads)
#pragma once

#include <cstdint>

#include "util/bytes.h"

namespace squirrel::vmi {

inline constexpr std::uint64_t kCorpusGrain = 4096;

/// Fills `out` with corpus `seed` content at [offset, offset + out.size()).
void GenerateCorpus(std::uint64_t seed, std::uint64_t offset,
                    util::MutableByteSpan out);

}  // namespace squirrel::vmi
