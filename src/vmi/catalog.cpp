#include "vmi/catalog.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>

#include "util/rng.h"

namespace squirrel::vmi {
namespace {

struct FamilyPlan {
  OsFamily family;
  const char* name;
  int azure_count;
  std::uint32_t release_count;
};

// Table 2 (Azure column) plus a plausible release spread per family.
constexpr FamilyPlan kFamilies[] = {
    {OsFamily::kUbuntu, "Ubuntu", 579, 10},
    {OsFamily::kRhelCentos, "RedHat/CentOS", 17, 6},
    {OsFamily::kSuse, "OpenSuse/Suse Ent.", 5, 4},
    {OsFamily::kDebian, "Debian", 3, 3},
    {OsFamily::kOtherLinux, "Unidentified Linux", 3, 3},
};
constexpr int kAzureTotal = 607;

}  // namespace

std::vector<OsDiversityRow> AzureEc2OsDiversity() {
  return {
      {"Ubuntu", 579, 5720},
      {"RedHat/CentOS", 17, 847},
      {"OpenSuse/Suse Ent.", 5, 8},
      {"Debian", 3, 30},
      {"Windows", 0, 531},
      {"Unidentified Linux", 3, 2654},
  };
}

std::string FamilyName(OsFamily family) {
  for (const FamilyPlan& plan : kFamilies) {
    if (plan.family == family) return plan.name;
  }
  return "Unknown";
}

Catalog Catalog::AzureCommunity(const CatalogConfig& config) {
  Catalog catalog;
  catalog.config_ = config;
  util::Rng rng(config.seed);

  // --- releases and package pools per family ------------------------------
  const std::uint64_t base_bytes = static_cast<std::uint64_t>(
      static_cast<double>(config.ScaledNonzero()) * config.base_fraction);
  // Adjacent releases share `release_share` of their base; the shift must be
  // a 1 MiB multiple so shared ranges keep their block alignment.
  const std::uint64_t release_shift = util::AlignUp(
      std::max<std::uint64_t>(
          util::kMiB, static_cast<std::uint64_t>(
                          static_cast<double>(base_bytes) *
                          (1.0 - config.release_share))),
      util::kMiB);

  catalog.packages_.resize(std::size(kFamilies));
  catalog.package_corpus_seeds_.resize(std::size(kFamilies));

  for (std::size_t f = 0; f < std::size(kFamilies); ++f) {
    const FamilyPlan& plan = kFamilies[f];
    util::Rng family_rng = rng.Fork(f + 1);
    const std::uint64_t family_base_seed = family_rng.Next();
    catalog.package_corpus_seeds_[f] = family_rng.Next();

    for (std::uint32_t r = 0; r < plan.release_count; ++r) {
      Release release;
      release.family = plan.family;
      release.name = std::string(plan.name) + "-" + std::to_string(r + 1);
      release.family_index = r;
      release.base_corpus_seed = family_base_seed;
      release.base_corpus_offset = r * release_shift;
      release.boot_seed = family_rng.Next();
      catalog.releases_.push_back(std::move(release));
    }

    // Package pool: log-uniform sizes in [min, max], 4 KiB-aligned, laid out
    // back to back in the family package corpus. The corpus offset doubles
    // as the package's release-standard *logical* offset inside the fixed
    // package area, so "aligned" installs of the same package land at
    // identical logical offsets in every image.
    auto& pool = catalog.packages_[f];
    pool.reserve(config.packages_per_family);
    std::uint64_t cursor = 0;
    for (std::uint32_t p = 0; p < config.packages_per_family; ++p) {
      const double lo = std::log(static_cast<double>(config.package_min_bytes));
      const double hi = std::log(static_cast<double>(config.package_max_bytes));
      const double raw = std::exp(lo + (hi - lo) * family_rng.NextDouble());
      const std::uint32_t size = static_cast<std::uint32_t>(
          util::AlignUp(std::max<std::uint64_t>(4096, static_cast<std::uint64_t>(raw)),
                        4096));
      pool.push_back(Package{cursor, size});
      cursor += size;
    }
  }

  // --- images ---------------------------------------------------------------
  // Family allocation proportional to Table 2; releases within a family are
  // Zipf-popular (newer releases get more images).
  std::vector<std::uint32_t> family_image_counts(std::size(kFamilies));
  std::uint32_t assigned = 0;
  for (std::size_t f = 0; f < std::size(kFamilies); ++f) {
    const std::uint32_t n = static_cast<std::uint32_t>(std::max<std::int64_t>(
        1, std::llround(static_cast<double>(kFamilies[f].azure_count) *
                        config.image_count / kAzureTotal)));
    family_image_counts[f] = n;
    assigned += n;
  }
  // Adjust the largest family so the total matches exactly.
  if (assigned != config.image_count) {
    const std::int64_t diff =
        static_cast<std::int64_t>(config.image_count) - assigned;
    family_image_counts[0] = static_cast<std::uint32_t>(
        std::max<std::int64_t>(1, static_cast<std::int64_t>(family_image_counts[0]) + diff));
  }

  const std::uint64_t package_budget = static_cast<std::uint64_t>(
      static_cast<double>(config.ScaledNonzero()) * config.package_fraction);
  const std::uint64_t user_bytes =
      config.ScaledNonzero() >= base_bytes + package_budget
          ? config.ScaledNonzero() - base_bytes - package_budget
          : 0;

  std::uint32_t release_base_index = 0;
  std::uint32_t image_id = 0;
  for (std::size_t f = 0; f < std::size(kFamilies); ++f) {
    const FamilyPlan& plan = kFamilies[f];
    const util::ZipfSampler release_pick(plan.release_count, 0.8);
    const util::ZipfSampler package_pick(config.packages_per_family,
                                         config.package_zipf);
    util::Rng image_rng = rng.Fork(100 + f);

    for (std::uint32_t i = 0; i < family_image_counts[f]; ++i) {
      ImageSpec spec;
      spec.id = image_id++;
      spec.seed = image_rng.Next();
      // Popular (low-rank) releases are the newest; name them accordingly.
      const std::uint32_t release_rank =
          static_cast<std::uint32_t>(release_pick.Sample(image_rng));
      spec.release_index = release_base_index +
                           (plan.release_count - 1 - release_rank);
      spec.name = catalog.releases_[spec.release_index].name + "-user" +
                  std::to_string(i);
      spec.logical_size = config.ScaledLogical();
      spec.base_bytes = base_bytes;
      spec.user_bytes = user_bytes;

      // Draw packages (without replacement) until the byte budget is spent.
      std::uint64_t spent = 0;
      const auto& pool = catalog.packages_[f];
      while (spent < package_budget && spec.packages.size() < pool.size()) {
        const std::uint32_t pick =
            static_cast<std::uint32_t>(package_pick.Sample(image_rng));
        if (std::find(spec.packages.begin(), spec.packages.end(), pick) !=
            spec.packages.end()) {
          continue;
        }
        spec.packages.push_back(pick);
        spent += pool[pick].size;
      }
      catalog.images_.push_back(std::move(spec));
    }
    release_base_index += plan.release_count;
  }
  return catalog;
}

const std::vector<Package>& Catalog::family_packages(OsFamily family) const {
  for (std::size_t f = 0; f < std::size(kFamilies); ++f) {
    if (kFamilies[f].family == family) return packages_[f];
  }
  throw std::out_of_range("unknown family");
}

std::uint64_t Catalog::package_corpus_seed(OsFamily family) const {
  for (std::size_t f = 0; f < std::size(kFamilies); ++f) {
    if (kFamilies[f].family == family) return package_corpus_seeds_[f];
  }
  throw std::out_of_range("unknown family");
}

std::map<std::string, int> Catalog::FamilyCounts() const {
  std::map<std::string, int> counts;
  for (const ImageSpec& spec : images_) {
    counts[FamilyName(releases_[spec.release_index].family)] += 1;
  }
  return counts;
}

}  // namespace squirrel::vmi
