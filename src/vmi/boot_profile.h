// Boot profile: the ordered list of (file, block) touches a simulated boot
// performed, with a page-cache hit/miss annotation per touch.
//
// The paper's Fig 11 result rides on *implicit* prefetch — 64 KB QCOW2
// clusters drag neighbouring blocks into the page cache before the guest
// asks for them. Boot traces are stable across boots of the same image, so
// a profile recorded from one boot generalizes that effect: replaying the
// profile pre-issues the exact block list the next boot will touch — across
// files, not just sequential runs within one — ahead of the guest's read
// cursor (sim::ProfilePrefetcher), and lets a degraded node pre-heal the
// blocks a boot needs before the VM reads them.
//
// Persistence follows the SendStream v2 discipline: a versioned binary
// format ("SQBP", version 1) with a per-record FNV-1a checksum over each
// touch record and a SHA-256 trailer over the whole encoding. Damaged
// profiles must always surface as the typed ProfileCorruptError — a corrupt
// profile is dropped and the boot proceeds unprefetched, never mis-prefetched.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "util/bytes.h"
#include "util/error.h"

namespace squirrel::vmi {

/// Thrown by BootProfile::Deserialize on truncation, bad magic, unsupported
/// version, record-checksum mismatch, trailer mismatch, or malformed
/// structure.
class ProfileCorruptError : public Error {
 public:
  using Error::Error;
};

/// One block touch of the recorded boot, in issue order.
struct ProfileTouch {
  std::uint32_t file = 0;    // index into BootProfile::files()
  std::uint64_t block = 0;   // block index within that file
  /// True when the recording boot found the block resident in the sim page
  /// cache (cluster-overlap prefetch). Replay only pre-issues misses: a
  /// block that hit during recording will hit again in the deterministic
  /// replay, so prefetching it would hold a queue slot nobody ever joins.
  bool page_cache_hit = false;

  bool operator==(const ProfileTouch&) const = default;
};

class BootProfile {
 public:
  BootProfile() = default;

  /// Appends one touch, interning `file` into the name table.
  void Record(const std::string& file, std::uint64_t block, bool hit);

  const std::vector<std::string>& files() const { return files_; }
  const std::vector<ProfileTouch>& touches() const { return touches_; }
  bool empty() const { return touches_.empty(); }

  /// Touched block indices of `file`, in first-touch order, each block
  /// listed once. With `misses_only` the hit-annotated touches are skipped
  /// (the prefetch plan); without it every touched block is returned (the
  /// pre-heal / cache-warm set).
  std::vector<std::uint64_t> BlocksForFile(const std::string& file,
                                           bool misses_only) const;

  /// Versioned wire encoding: "SQBP" magic, version, file name table, touch
  /// records each carrying an FNV-1a checksum, SHA-256 trailer.
  util::Bytes Serialize() const;

  /// Parses and verifies Serialize() output. Throws ProfileCorruptError on
  /// any damage — truncation, bit flips (caught by the record checksums or
  /// the trailer), out-of-range file indices, or an unsupported version.
  static BootProfile Deserialize(util::ByteSpan wire);

  bool operator==(const BootProfile&) const = default;

 private:
  std::uint32_t InternFile(const std::string& file);

  std::vector<std::string> files_;
  std::vector<ProfileTouch> touches_;
  std::unordered_map<std::string, std::uint32_t> file_ids_;
};

}  // namespace squirrel::vmi
