// Synthetic reproduction of the paper's VMI repository: the 607 Windows
// Azure community images (Table 2), modelled as a catalog of image
// specifications over shared content corpora.
//
// Structure knobs (CatalogConfig) control the sharing behaviour every
// experiment depends on:
//   * images of one release share an identical "distro base" at identical
//     logical offsets, dirtied by small per-image delta patches (config
//     edits) — the reason smaller blocks deduplicate better (Fig 2);
//   * adjacent releases of a family share a fraction of their base corpus
//     (shifted by a 1 MiB multiple, so alignment is preserved);
//   * packages come from a per-family pool with Zipf popularity; system
//     packages sit at release-standard offsets (aligned across images),
//     user-installed ones at per-image offsets quantized to small powers of
//     two — identical content at different alignments, which only small
//     blocks can deduplicate;
//   * user data is per-image, with a configurable internal-duplication
//     fraction (file copies inside one image inflate dedup ratio without
//     adding cross-image similarity).
//
// Sizes default to 1/96 of the paper's averages (27.6 GB logical /
// 2.36 GB nonzero / 132 MB boot working set per image); every byte count
// scales linearly through `size_scale` and all reported ratios are
// scale-invariant.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "util/bytes.h"

namespace squirrel::vmi {

enum class OsFamily { kUbuntu, kRhelCentos, kSuse, kDebian, kOtherLinux };

/// Table 2 rows (plus the Windows row both providers report).
struct OsDiversityRow {
  std::string distribution;
  int azure_count;
  int ec2_count;
};
std::vector<OsDiversityRow> AzureEc2OsDiversity();

struct Package {
  std::uint64_t corpus_offset = 0;  // within the family package corpus
  std::uint32_t size = 0;           // bytes, multiple of 4 KiB
};

struct Release {
  OsFamily family = OsFamily::kUbuntu;
  std::string name;
  std::uint32_t family_index = 0;   // release number within the family
  std::uint64_t base_corpus_seed = 0;
  std::uint64_t base_corpus_offset = 0;  // 1 MiB-multiple shift per release
  std::uint64_t boot_seed = 0;      // seeds the release's boot working set
};

/// One user-visible community image.
struct ImageSpec {
  std::uint32_t id = 0;
  std::string name;
  std::uint32_t release_index = 0;
  std::uint64_t seed = 0;

  std::uint64_t logical_size = 0;
  std::uint64_t base_bytes = 0;
  std::uint64_t user_bytes = 0;
  /// User-installed package ids drawn from the family pool by popularity;
  /// each is placed at a per-image offset (quantized misalignment).
  std::vector<std::uint32_t> packages;
};

struct CatalogConfig {
  std::uint32_t image_count = 607;
  std::uint64_t seed = 2014;

  /// Global linear size scale. 1.0 reproduces paper-scale byte counts
  /// (2.36 GB nonzero per image); the default keeps full-catalog analysis
  /// runs in CPU-seconds. Ratios do not depend on it.
  double size_scale = 1.0 / 96.0;

  // Paper-scale per-image byte budgets (before size_scale).
  std::uint64_t logical_size = std::uint64_t(27.6 * 1024) * util::kMiB;
  std::uint64_t nonzero_bytes = std::uint64_t(2.36 * 1024) * util::kMiB;
  std::uint64_t cache_bytes = 132 * util::kMiB;

  // Composition of nonzero bytes. The base includes the distro-installed
  // system packages (whose identical install order is why images of one
  // release share large aligned regions); `package_fraction` covers only
  // user-installed packages, which land at per-image offsets.
  double base_fraction = 0.50;
  double package_fraction = 0.20;   // remainder is user data
  double user_dup_fraction = 0.35;  // of user data duplicating itself

  /// Layout mode. `true` (default) packs all content densely from offset 0
  /// — correct for dedup/compression analysis at every block size (real
  /// guest file systems pack files; sparse space sits at the end of the
  /// disk). `false` scatters the post-kernel base across the whole virtual
  /// disk — correct *seek geometry* for the boot-time experiments, at the
  /// price of zero-diluted content islands at large analysis block sizes.
  bool dense_layout = true;

  // Delta patches: one small (256 B - 4 KiB) per-image edit per this many
  // bytes of base content. Patches never land in the kernel reserve (the
  // first `kernel_reserve_fraction` of the base): kernels and initrds are
  // not user-edited, config files and logs are.
  std::uint64_t patch_every = 192 * util::kKiB;
  double kernel_reserve_fraction = 0.2;

  // Cross-release base sharing: adjacent releases share this fraction.
  double release_share = 0.55;

  // Package pool. Package sizes are NOT scaled by size_scale — scaling
  // shrinks the number of packages an image installs, not the size of a
  // package, so the package-size/block-size relationship that drives the
  // alignment effects stays realistic at any scale.
  std::uint32_t packages_per_family = 256;
  double package_zipf = 0.9;
  std::uint64_t package_min_bytes = 64 * util::kKiB;
  std::uint64_t package_max_bytes = 1 * util::kMiB;

  // Boot working set composition (fractions of cache_bytes).
  double boot_kernel_fraction = 0.45;  // sequential prefix of base
  double boot_scatter_fraction = 0.35; // release-wide scattered base reads
  double boot_service_fraction = 0.12; // popular package prefixes
  // Remainder: per-image config reads (covers delta patches).

  /// Per-image values after applying size_scale.
  std::uint64_t ScaledLogical() const { return Scale(logical_size); }
  std::uint64_t ScaledNonzero() const { return Scale(nonzero_bytes); }
  std::uint64_t ScaledCache() const { return Scale(cache_bytes); }
  std::uint64_t Scale(std::uint64_t paper_bytes) const {
    return static_cast<std::uint64_t>(static_cast<double>(paper_bytes) * size_scale);
  }
};

class Catalog {
 public:
  /// Builds the Azure community catalog: image counts per family follow
  /// Table 2, scaled proportionally when `config.image_count != 607`.
  static Catalog AzureCommunity(const CatalogConfig& config);

  const CatalogConfig& config() const { return config_; }
  const std::vector<Release>& releases() const { return releases_; }
  const std::vector<ImageSpec>& images() const { return images_; }
  const std::vector<Package>& family_packages(OsFamily family) const;
  std::uint64_t package_corpus_seed(OsFamily family) const;

  /// Image counts per family actually generated (the Table 2 bench prints
  /// these next to the paper's numbers).
  std::map<std::string, int> FamilyCounts() const;

 private:
  CatalogConfig config_;
  std::vector<Release> releases_;
  std::vector<ImageSpec> images_;
  std::vector<std::vector<Package>> packages_;      // per family
  std::vector<std::uint64_t> package_corpus_seeds_; // per family
};

std::string FamilyName(OsFamily family);

}  // namespace squirrel::vmi
