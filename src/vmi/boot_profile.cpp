#include "vmi/boot_profile.h"

#include <algorithm>
#include <unordered_set>

#include "util/hash.h"
#include "util/sha256.h"

namespace squirrel::vmi {
namespace {

constexpr std::uint32_t kMagic = 0x50425153;  // "SQBP"
constexpr std::uint32_t kVersion = 1;
constexpr std::size_t kShaTrailerBytes = 32;
/// Encoded touch record: u32 file + u64 block + u8 flags.
constexpr std::size_t kRecordBytes = 4 + 8 + 1;

class Writer {
 public:
  void U8(std::uint8_t v) { out_.push_back(v); }
  void U32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i) out_.push_back(static_cast<util::Byte>(v >> (8 * i)));
  }
  void U64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) out_.push_back(static_cast<util::Byte>(v >> (8 * i)));
  }
  void Str(const std::string& s) {
    U32(static_cast<std::uint32_t>(s.size()));
    out_.insert(out_.end(), s.begin(), s.end());
  }
  std::size_t size() const { return out_.size(); }
  util::ByteSpan Tail(std::size_t from) const {
    return util::ByteSpan(out_.data() + from, out_.size() - from);
  }
  util::Bytes Take() { return std::move(out_); }

 private:
  util::Bytes out_;
};

class Reader {
 public:
  explicit Reader(util::ByteSpan data) : data_(data) {}

  std::uint8_t U8() { return Raw(1)[0]; }
  std::uint32_t U32() {
    const auto* p = Raw(4);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= std::uint32_t(p[i]) << (8 * i);
    return v;
  }
  std::uint64_t U64() {
    const auto* p = Raw(8);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= std::uint64_t(p[i]) << (8 * i);
    return v;
  }
  std::string Str() {
    const std::uint32_t n = U32();
    const auto* p = Raw(n);
    return std::string(reinterpret_cast<const char*>(p), n);
  }
  util::ByteSpan Span(std::size_t from, std::size_t length) const {
    return util::ByteSpan(data_.data() + from, length);
  }
  std::size_t pos() const { return pos_; }

 private:
  const util::Byte* Raw(std::size_t n) {
    if (pos_ + n > data_.size()) {
      throw ProfileCorruptError("boot profile truncated");
    }
    const util::Byte* p = data_.data() + pos_;
    pos_ += n;
    return p;
  }

  util::ByteSpan data_;
  std::size_t pos_ = 0;
};

}  // namespace

void BootProfile::Record(const std::string& file, std::uint64_t block,
                         bool hit) {
  touches_.push_back(ProfileTouch{InternFile(file), block, hit});
}

std::uint32_t BootProfile::InternFile(const std::string& file) {
  const auto [it, inserted] =
      file_ids_.emplace(file, static_cast<std::uint32_t>(files_.size()));
  if (inserted) files_.push_back(file);
  return it->second;
}

std::vector<std::uint64_t> BootProfile::BlocksForFile(const std::string& file,
                                                      bool misses_only) const {
  std::vector<std::uint64_t> blocks;
  const auto it = file_ids_.find(file);
  if (it == file_ids_.end()) return blocks;
  std::unordered_set<std::uint64_t> seen;
  for (const ProfileTouch& touch : touches_) {
    if (touch.file != it->second) continue;
    if (misses_only && touch.page_cache_hit) continue;
    if (seen.insert(touch.block).second) blocks.push_back(touch.block);
  }
  return blocks;
}

util::Bytes BootProfile::Serialize() const {
  Writer w;
  w.U32(kMagic);
  w.U32(kVersion);
  w.U32(static_cast<std::uint32_t>(files_.size()));
  for (const std::string& file : files_) w.Str(file);
  w.U64(touches_.size());
  for (const ProfileTouch& touch : touches_) {
    const std::size_t record_start = w.size();
    w.U32(touch.file);
    w.U64(touch.block);
    w.U8(touch.page_cache_hit ? 1 : 0);
    // Per-record checksum over the encoded record (SendStream v2 discipline):
    // a bit flip inside one touch is caught without re-reading the trailer.
    w.U64(util::Fnv1a64(w.Tail(record_start)));
  }
  util::Bytes body = w.Take();
  util::Sha256Context sha;
  sha.Update(body);
  const auto trailer = sha.Finish();
  body.insert(body.end(), trailer.begin(), trailer.end());
  return body;
}

BootProfile BootProfile::Deserialize(util::ByteSpan wire) {
  if (wire.size() < kShaTrailerBytes) {
    throw ProfileCorruptError("boot profile shorter than its trailer");
  }
  const util::ByteSpan body(wire.data(), wire.size() - kShaTrailerBytes);
  util::Sha256Context sha;
  sha.Update(body);
  const auto expected = sha.Finish();
  const util::Byte* carried = wire.data() + body.size();
  for (std::size_t i = 0; i < kShaTrailerBytes; ++i) {
    if (carried[i] != expected[i]) {
      throw ProfileCorruptError("boot profile trailer mismatch");
    }
  }

  Reader r(body);
  if (r.U32() != kMagic) throw ProfileCorruptError("boot profile bad magic");
  const std::uint32_t version = r.U32();
  if (version != kVersion) {
    throw ProfileCorruptError("boot profile unsupported version " +
                              std::to_string(version));
  }
  BootProfile profile;
  const std::uint32_t file_count = r.U32();
  for (std::uint32_t i = 0; i < file_count; ++i) {
    const std::string name = r.Str();
    if (profile.file_ids_.contains(name)) {
      throw ProfileCorruptError("boot profile duplicate file name");
    }
    profile.InternFile(name);
  }
  const std::uint64_t touch_count = r.U64();
  profile.touches_.reserve(
      std::min<std::uint64_t>(touch_count, body.size() / kRecordBytes));
  for (std::uint64_t i = 0; i < touch_count; ++i) {
    const std::size_t record_start = r.pos();
    ProfileTouch touch;
    touch.file = r.U32();
    touch.block = r.U64();
    const std::uint8_t flags = r.U8();
    if (flags > 1) throw ProfileCorruptError("boot profile bad touch flags");
    touch.page_cache_hit = flags != 0;
    const std::uint64_t checksum = r.U64();
    if (checksum != util::Fnv1a64(r.Span(record_start, kRecordBytes))) {
      throw ProfileCorruptError("boot profile record checksum mismatch");
    }
    if (touch.file >= file_count) {
      throw ProfileCorruptError("boot profile file index out of range");
    }
    profile.touches_.push_back(touch);
  }
  return profile;
}

}  // namespace squirrel::vmi
