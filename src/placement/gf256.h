// GF(2^8) arithmetic for the Reed–Solomon shard codec.
//
// The field is GF(2)[x] / (x^8 + x^4 + x^3 + x^2 + 1) — the 0x11D primitive
// polynomial used by virtually every storage erasure code (ISA-L, Jerasure,
// Backblaze). Multiplication and inversion go through log/exp tables built
// once at static-init time from the generator α = 2; addition is XOR. All
// operations are branch-light table lookups, constexpr-free on purpose: the
// 768 bytes of tables are built by a dynamic initializer so the header stays
// readable and the generator loop stays obviously correct.
#pragma once

#include <array>
#include <cstdint>

namespace squirrel::placement {

namespace gf256 {

inline constexpr unsigned kPrimitivePoly = 0x11D;  // x^8+x^4+x^3+x^2+1
inline constexpr int kFieldSize = 256;

struct Tables {
  // exp_[i] = α^i for i in [0, 510): doubled so Mul can skip a mod-255.
  std::array<std::uint8_t, 510> exp_{};
  // log_[v] = i with α^i = v, for v in [1, 256). log_[0] is unused (0).
  std::array<std::uint16_t, 256> log_{};

  Tables() {
    unsigned v = 1;
    for (int i = 0; i < 255; ++i) {
      exp_[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(v);
      exp_[static_cast<std::size_t>(i) + 255] = static_cast<std::uint8_t>(v);
      log_[v] = static_cast<std::uint16_t>(i);
      v <<= 1;
      if (v & 0x100) v ^= kPrimitivePoly;
    }
  }
};

inline const Tables& T() {
  static const Tables tables;
  return tables;
}

/// Addition and subtraction coincide in characteristic 2.
inline std::uint8_t Add(std::uint8_t a, std::uint8_t b) {
  return static_cast<std::uint8_t>(a ^ b);
}

inline std::uint8_t Mul(std::uint8_t a, std::uint8_t b) {
  if (a == 0 || b == 0) return 0;
  const Tables& t = T();
  return t.exp_[static_cast<std::size_t>(t.log_[a]) + t.log_[b]];
}

/// Multiplicative inverse; `a` must be nonzero (0 has no inverse — callers
/// guard, and the Cauchy construction guarantees nonzero pivots).
inline std::uint8_t Inv(std::uint8_t a) {
  const Tables& t = T();
  return t.exp_[255 - t.log_[a]];
}

inline std::uint8_t Div(std::uint8_t a, std::uint8_t b) {
  if (a == 0) return 0;
  const Tables& t = T();
  return t.exp_[static_cast<std::size_t>(t.log_[a]) + 255 - t.log_[b]];
}

/// α^n for n ≥ 0.
inline std::uint8_t Pow(std::uint8_t a, unsigned n) {
  if (n == 0) return 1;
  if (a == 0) return 0;
  const Tables& t = T();
  return t.exp_[(static_cast<std::size_t>(t.log_[a]) * n) % 255];
}

/// out[i] ^= c * in[i] — the row-update kernel the codec spends its time in.
inline void MulAccumulate(std::uint8_t c, const std::uint8_t* in,
                          std::uint8_t* out, std::size_t n) {
  if (c == 0) return;
  if (c == 1) {
    for (std::size_t i = 0; i < n; ++i) out[i] ^= in[i];
    return;
  }
  const Tables& t = T();
  const std::uint16_t log_c = t.log_[c];
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint8_t v = in[i];
    if (v != 0) out[i] ^= t.exp_[static_cast<std::size_t>(log_c) + t.log_[v]];
  }
}

}  // namespace gf256

}  // namespace squirrel::placement
