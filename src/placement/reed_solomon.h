// Systematic Reed–Solomon erasure codec over GF(256).
//
// A (k, m) code turns k equal-length data shards into k + m shards such
// that *any* k of them recover the originals. The generator is the
// systematic matrix [I_k ; C] where C is the m×k Cauchy matrix
//
//   C[i][j] = 1 / (x_i + y_j),   x_i = k + i,  y_j = j   (GF(256) arithmetic)
//
// Every square submatrix of a Cauchy matrix is nonsingular, so every subset
// of k rows of [I ; C] is invertible — decode succeeds for every erasure
// pattern with at least k survivors, which the tests exhaustively verify.
// Requires k + m ≤ 256 (x_i and y_j must be distinct field elements).
//
// The codec is stateless apart from the precomputed parity rows; encode and
// decode are pure functions of the shard bytes, which is what makes the
// placement layer's determinism contract (same digest → same shards on every
// node, every run) hold for free.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "util/bytes.h"
#include "util/error.h"

namespace squirrel::placement {

/// Thrown for unusable codec parameters (k = 0, m = 0, k + m > 256) or
/// malformed shard sets (mismatched sizes, wrong counts).
class CodecError : public Error {
 public:
  using Error::Error;
};

class ReedSolomon {
 public:
  ReedSolomon(unsigned data_shards, unsigned parity_shards);

  unsigned data_shards() const { return k_; }
  unsigned parity_shards() const { return m_; }
  unsigned total_shards() const { return k_ + m_; }

  /// Shard length for a payload of `payload_size` bytes: ceil(size / k).
  /// The last data shard is zero-padded to this length.
  std::uint64_t ShardSize(std::uint64_t payload_size) const;

  /// Splits `payload` into k data shards of ShardSize(payload.size()) bytes
  /// (zero-padded) and appends m parity shards. Result has k + m entries.
  std::vector<util::Bytes> Encode(util::ByteSpan payload) const;

  /// Computes the m parity shards for already-split data shards, which must
  /// all have equal (nonzero) length.
  std::vector<util::Bytes> EncodeParity(
      const std::vector<util::Bytes>& data_shards) const;

  /// Rebuilds the original payload from any k present shards.
  /// `shards[i]` is shard i (data for i < k, parity for i ≥ k) or nullopt if
  /// missing; present shards must share one length. `payload_size` strips the
  /// zero padding. Throws CodecError if fewer than k shards are present.
  util::Bytes Reconstruct(
      const std::vector<std::optional<util::Bytes>>& shards,
      std::uint64_t payload_size) const;

 private:
  unsigned k_;
  unsigned m_;
  // Cauchy parity rows: parity_rows_[i][j] is the coefficient of data shard
  // j in parity shard i.
  std::vector<std::vector<std::uint8_t>> parity_rows_;
};

}  // namespace squirrel::placement
