#include "placement/layout.h"

#include <string>

#include "placement/gf256.h"

namespace squirrel::placement {

void PlacementConfig::Validate() const {
  if (!striped()) return;
  if (data_shards == 0) {
    throw PlacementError("placement: data_shards must be >= 1");
  }
  if (parity_shards == 0) {
    throw PlacementError("placement: parity_shards must be >= 1");
  }
  if (total_shards() > gf256::kFieldSize) {
    throw PlacementError("placement: k + m must be <= 256, got " +
                         std::to_string(total_shards()));
  }
  if (set_size() < total_shards()) {
    throw PlacementError(
        "placement: storage_set_size " + std::to_string(set_size()) +
        " cannot hold a " + std::to_string(data_shards) + "+" +
        std::to_string(parity_shards) + " stripe");
  }
}

StorageSetLayout::StorageSetLayout(const PlacementConfig& config,
                                   std::uint32_t compute_count)
    : config_(config), compute_count_(compute_count) {
  config_.Validate();
}

std::uint32_t StorageSetLayout::set_count() const {
  if (compute_count_ == 0) return 0;
  const std::uint32_t s = config_.set_size();
  return (compute_count_ + s - 1) / s;
}

std::uint32_t StorageSetLayout::SetOfNode(std::uint32_t node_id) const {
  if (node_id == 0 || node_id > compute_count_) {
    throw PlacementError("placement: node id " + std::to_string(node_id) +
                         " outside compute range 1.." +
                         std::to_string(compute_count_));
  }
  return (node_id - 1) / config_.set_size();
}

std::uint32_t StorageSetLayout::ActualSetSize(std::uint32_t set_index) const {
  const std::uint32_t s = config_.set_size();
  const std::uint32_t first = set_index * s + 1;
  const std::uint32_t last =
      std::min<std::uint64_t>(compute_count_, std::uint64_t{first} + s - 1);
  return last >= first ? last - first + 1 : 0;
}

std::vector<std::uint32_t> StorageSetLayout::SetMembers(
    std::uint32_t set_index) const {
  const std::uint32_t first = set_index * config_.set_size() + 1;
  std::vector<std::uint32_t> members;
  members.reserve(ActualSetSize(set_index));
  for (std::uint32_t i = 0; i < ActualSetSize(set_index); ++i) {
    members.push_back(first + i);
  }
  return members;
}

bool StorageSetLayout::StripedSet(std::uint32_t set_index) const {
  return config_.striped() &&
         ActualSetSize(set_index) >= config_.total_shards();
}

std::uint32_t StorageSetLayout::NodeForShard(std::uint32_t set_index,
                                             const util::Digest& digest,
                                             std::uint32_t shard) const {
  const std::uint32_t size = ActualSetSize(set_index);
  if (size < config_.total_shards()) {
    throw PlacementError("placement: set " + std::to_string(set_index) +
                         " is not striped");
  }
  const std::uint32_t member =
      static_cast<std::uint32_t>((digest.Prefix64() + shard) % size);
  return set_index * config_.set_size() + 1 + member;
}

std::optional<std::uint32_t> StorageSetLayout::ShardOfNode(
    std::uint32_t node_id, const util::Digest& digest) const {
  if (!config_.striped()) return std::nullopt;
  const std::uint32_t set_index = SetOfNode(node_id);
  const std::uint32_t size = ActualSetSize(set_index);
  if (size < config_.total_shards()) return std::nullopt;
  const std::uint32_t member =
      node_id - (set_index * config_.set_size() + 1);
  // member == (Prefix64 + shard) mod size  ⇒  shard = (member - base) mod size
  const std::uint32_t base =
      static_cast<std::uint32_t>(digest.Prefix64() % size);
  const std::uint32_t shard = (member + size - base) % size;
  if (shard >= config_.total_shards()) return std::nullopt;
  return shard;
}

}  // namespace squirrel::placement
