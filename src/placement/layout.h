// Placement policy: storage sets and the digest-keyed stripe layout.
//
// A PlacementConfig selects between the paper's full replication (every
// compute node hoards every boot working set — the default, byte-identical
// to the pre-placement code paths) and erasure-coded striping. Under
// striping, compute nodes are grouped into fixed-size **storage sets**
// (failure domains, cortx-motr R2 style): consecutive node ids
// [1..set_size], [set_size+1..2·set_size], … Each storage set holds the
// complete working set, striped internally: every unique block is split
// into k data shards plus m Reed–Solomon parity shards, and shard j of a
// block with digest d lives on set member
//
//     (Prefix64(d) + j) mod S        (S = actual set size ≥ k + m)
//
// The layout is a pure function of (digest, set size) — no state, no
// rebalancing, no coordination. Every node, the storage node and every test
// computes the same placement from the same digest, which is the placement
// determinism contract: re-running a registration, replaying a boot, or
// rebuilding a node's shard set after a wipe always lands the same shards
// on the same members.
//
// A trailing set smaller than k + m cannot hold a full stripe; its members
// fall back to full replication (StripedSet() reports false) so no
// configuration silently loses redundancy.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "util/error.h"
#include "util/hash.h"

namespace squirrel::placement {

/// Thrown for invalid placement parameters (zero shards, set smaller than
/// the stripe, k + m > 256).
class PlacementError : public Error {
 public:
  using Error::Error;
};

enum class PolicyKind {
  kFullReplication,  // paper default: every node replicates everything
  kStriped,          // erasure-coded partial replication across storage sets
};

struct PlacementConfig {
  PolicyKind policy = PolicyKind::kFullReplication;
  /// Nodes per storage set (failure domain). 0 = data_shards + parity_shards.
  std::uint32_t storage_set_size = 0;
  std::uint32_t data_shards = 4;    // k
  std::uint32_t parity_shards = 2;  // m

  bool striped() const { return policy == PolicyKind::kStriped; }
  std::uint32_t total_shards() const { return data_shards + parity_shards; }
  std::uint32_t set_size() const {
    return storage_set_size != 0 ? storage_set_size : total_shards();
  }

  /// Throws PlacementError on unusable parameters. A full-replication
  /// config always validates (the stripe fields are ignored).
  void Validate() const;
};

/// The deterministic node-grouping and shard-assignment function for one
/// cluster (compute node ids 1..compute_count; node 0 is the storage node).
class StorageSetLayout {
 public:
  StorageSetLayout(const PlacementConfig& config, std::uint32_t compute_count);

  const PlacementConfig& config() const { return config_; }
  std::uint32_t compute_count() const { return compute_count_; }
  std::uint32_t set_count() const;

  /// Storage set of a compute node (node ids are 1-based).
  std::uint32_t SetOfNode(std::uint32_t node_id) const;

  /// Members of a set, as node ids in ascending order. The trailing set may
  /// be smaller than set_size().
  std::vector<std::uint32_t> SetMembers(std::uint32_t set_index) const;

  /// True when the set is large enough to hold a (k + m) stripe. Undersized
  /// trailing sets fall back to full replication.
  bool StripedSet(std::uint32_t set_index) const;

  /// Node id of the member holding shard `shard` (0-based, data then
  /// parity) of the block with digest `digest`, within `set_index`.
  /// The set must be striped.
  std::uint32_t NodeForShard(std::uint32_t set_index,
                             const util::Digest& digest,
                             std::uint32_t shard) const;

  /// The shard of `digest` that `node_id` holds, or nullopt when the node
  /// holds none (set larger than k + m) or its set is not striped. Since
  /// k + m ≤ set size, a member holds at most one shard per block.
  std::optional<std::uint32_t> ShardOfNode(std::uint32_t node_id,
                                           const util::Digest& digest) const;

  /// True when this node's set stripes (i.e. the node stores shards, not
  /// full replicas).
  bool NodeStriped(std::uint32_t node_id) const {
    return config_.striped() && StripedSet(SetOfNode(node_id));
  }

 private:
  std::uint32_t ActualSetSize(std::uint32_t set_index) const;

  PlacementConfig config_;
  std::uint32_t compute_count_;
};

}  // namespace squirrel::placement
