#include "placement/reed_solomon.h"

#include <algorithm>
#include <cstring>
#include <string>

#include "placement/gf256.h"

namespace squirrel::placement {

namespace {

// Inverts a k×k GF(256) matrix in place via Gauss–Jordan with partial
// pivoting. The matrices handed in are submatrices of [I ; Cauchy], which
// are provably nonsingular; a zero pivot therefore indicates caller misuse
// and throws rather than returning garbage.
std::vector<std::vector<std::uint8_t>> InvertMatrix(
    std::vector<std::vector<std::uint8_t>> a) {
  const std::size_t n = a.size();
  std::vector<std::vector<std::uint8_t>> inv(
      n, std::vector<std::uint8_t>(n, 0));
  for (std::size_t i = 0; i < n; ++i) inv[i][i] = 1;

  for (std::size_t col = 0; col < n; ++col) {
    std::size_t pivot = col;
    while (pivot < n && a[pivot][col] == 0) ++pivot;
    if (pivot == n) {
      throw CodecError("singular decode matrix: duplicate or invalid shards");
    }
    std::swap(a[pivot], a[col]);
    std::swap(inv[pivot], inv[col]);

    const std::uint8_t scale = gf256::Inv(a[col][col]);
    for (std::size_t j = 0; j < n; ++j) {
      a[col][j] = gf256::Mul(a[col][j], scale);
      inv[col][j] = gf256::Mul(inv[col][j], scale);
    }
    for (std::size_t row = 0; row < n; ++row) {
      if (row == col) continue;
      const std::uint8_t factor = a[row][col];
      if (factor == 0) continue;
      for (std::size_t j = 0; j < n; ++j) {
        a[row][j] ^= gf256::Mul(factor, a[col][j]);
        inv[row][j] ^= gf256::Mul(factor, inv[col][j]);
      }
    }
  }
  return inv;
}

}  // namespace

ReedSolomon::ReedSolomon(unsigned data_shards, unsigned parity_shards)
    : k_(data_shards), m_(parity_shards) {
  if (k_ == 0) throw CodecError("reed-solomon: data_shards must be >= 1");
  if (m_ == 0) throw CodecError("reed-solomon: parity_shards must be >= 1");
  if (k_ + m_ > gf256::kFieldSize) {
    throw CodecError("reed-solomon: k + m must be <= 256, got " +
                     std::to_string(k_ + m_));
  }
  parity_rows_.assign(m_, std::vector<std::uint8_t>(k_, 0));
  for (unsigned i = 0; i < m_; ++i) {
    for (unsigned j = 0; j < k_; ++j) {
      // x_i = k + i and y_j = j are disjoint because i, j < k + m <= 256,
      // so x + y is never zero and the inverse always exists.
      parity_rows_[i][j] = gf256::Inv(
          gf256::Add(static_cast<std::uint8_t>(k_ + i),
                     static_cast<std::uint8_t>(j)));
    }
  }
}

std::uint64_t ReedSolomon::ShardSize(std::uint64_t payload_size) const {
  if (payload_size == 0) return 0;
  return util::CeilDiv(payload_size, k_);
}

std::vector<util::Bytes> ReedSolomon::Encode(util::ByteSpan payload) const {
  const std::uint64_t shard_size = ShardSize(payload.size());
  std::vector<util::Bytes> shards(k_);
  for (unsigned j = 0; j < k_; ++j) {
    const std::uint64_t begin =
        std::min<std::uint64_t>(payload.size(), j * shard_size);
    const std::uint64_t end =
        std::min<std::uint64_t>(payload.size(), begin + shard_size);
    shards[j].assign(shard_size, 0);
    if (end > begin) {
      std::memcpy(shards[j].data(), payload.data() + begin, end - begin);
    }
  }
  std::vector<util::Bytes> parity = EncodeParity(shards);
  for (auto& p : parity) shards.push_back(std::move(p));
  return shards;
}

std::vector<util::Bytes> ReedSolomon::EncodeParity(
    const std::vector<util::Bytes>& data_shards) const {
  if (data_shards.size() != k_) {
    throw CodecError("encode: expected " + std::to_string(k_) +
                     " data shards, got " + std::to_string(data_shards.size()));
  }
  const std::size_t shard_size = data_shards[0].size();
  for (const auto& s : data_shards) {
    if (s.size() != shard_size) {
      throw CodecError("encode: data shards must all have equal length");
    }
  }
  std::vector<util::Bytes> parity(m_);
  for (unsigned i = 0; i < m_; ++i) {
    parity[i].assign(shard_size, 0);
    for (unsigned j = 0; j < k_; ++j) {
      gf256::MulAccumulate(parity_rows_[i][j], data_shards[j].data(),
                           parity[i].data(), shard_size);
    }
  }
  return parity;
}

util::Bytes ReedSolomon::Reconstruct(
    const std::vector<std::optional<util::Bytes>>& shards,
    std::uint64_t payload_size) const {
  if (shards.size() != k_ + m_) {
    throw CodecError("reconstruct: expected " + std::to_string(k_ + m_) +
                     " shard slots, got " + std::to_string(shards.size()));
  }
  const std::uint64_t shard_size = ShardSize(payload_size);

  // Pick the first k present shards, preferring data shards (identity rows
  // make the decode matrix sparser and skip work when nothing is missing).
  std::vector<unsigned> chosen;
  chosen.reserve(k_);
  for (unsigned i = 0; i < k_ + m_ && chosen.size() < k_; ++i) {
    if (!shards[i].has_value()) continue;
    if (shards[i]->size() != shard_size) {
      throw CodecError("reconstruct: shard " + std::to_string(i) +
                       " has wrong length");
    }
    chosen.push_back(i);
  }
  if (chosen.size() < k_) {
    throw CodecError("reconstruct: only " + std::to_string(chosen.size()) +
                     " of the required " + std::to_string(k_) +
                     " shards present");
  }

  util::Bytes payload(payload_size, 0);
  if (payload_size == 0) return payload;

  // Fast path: all k data shards survive — reassembly is a straight copy.
  bool all_data = true;
  for (unsigned i = 0; i < k_; ++i) {
    if (chosen[i] != i) {
      all_data = false;
      break;
    }
  }

  std::vector<util::Bytes> data(k_);
  if (all_data) {
    for (unsigned j = 0; j < k_; ++j) data[j] = *shards[j];
  } else {
    // Rows of [I ; C] for the surviving shards, inverted to solve for the
    // original data shards.
    std::vector<std::vector<std::uint8_t>> mat(
        k_, std::vector<std::uint8_t>(k_, 0));
    for (unsigned r = 0; r < k_; ++r) {
      const unsigned idx = chosen[r];
      if (idx < k_) {
        mat[r][idx] = 1;
      } else {
        mat[r] = parity_rows_[idx - k_];
      }
    }
    const std::vector<std::vector<std::uint8_t>> inv =
        InvertMatrix(std::move(mat));
    for (unsigned j = 0; j < k_; ++j) {
      data[j].assign(shard_size, 0);
      for (unsigned r = 0; r < k_; ++r) {
        gf256::MulAccumulate(inv[j][r], shards[chosen[r]]->data(),
                             data[j].data(), shard_size);
      }
    }
  }

  for (unsigned j = 0; j < k_; ++j) {
    const std::uint64_t begin =
        std::min<std::uint64_t>(payload_size, j * shard_size);
    const std::uint64_t end =
        std::min<std::uint64_t>(payload_size, begin + shard_size);
    if (end > begin) {
      std::memcpy(payload.data() + begin, data[j].data(), end - begin);
    }
  }
  return payload;
}

}  // namespace squirrel::placement
