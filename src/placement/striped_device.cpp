#include "placement/striped_device.h"

#include <algorithm>
#include <cstring>
#include <utility>

namespace squirrel::placement {

namespace {

// Shard extents land digest-scattered across the node's pool, like the
// block store's deduplicated extents; the modelled span sets the seek
// distances the disk model sees.
constexpr std::uint64_t kModeledShardSpan = 16ull << 30;

std::uint64_t ShardDiskOffset(const util::Digest& digest) {
  return digest.Prefix64() % kModeledShardSpan;
}

}  // namespace

StripedFileDevice::StripedFileDevice(const zvol::Volume* metadata,
                                     std::string file,
                                     const ReconstructionSource* source,
                                     const store::BlockStore* storage,
                                     sim::IoContext* io,
                                     sim::NetworkAccountant* network,
                                     std::uint32_t node_id)
    : metadata_(metadata),
      file_(std::move(file)),
      source_(source),
      storage_(storage),
      io_(io),
      network_(network),
      node_id_(node_id) {}

std::uint64_t StripedFileDevice::size() const {
  return metadata_->FileSize(file_);
}

bool StripedFileDevice::Present(std::uint64_t offset) const {
  // The set collectively holds every materialized block, so presence is a
  // metadata question: is there a non-hole block under this offset?
  const std::uint32_t block_size = metadata_->config().block_size;
  const std::uint64_t b = offset / block_size;
  if (b >= metadata_->FileBlockCount(file_)) return false;
  return !metadata_->FileBlock(file_, b).hole;
}

const util::Bytes& StripedFileDevice::AssembleBlock(const zvol::BlockPtr& ptr) {
  const auto cached = assembled_.find(ptr.digest);
  if (cached != assembled_.end()) return cached->second;

  ++stats_.blocks_served;
  std::optional<ReconstructionSource::GatherResult> gathered =
      source_->Gather(ptr.digest);
  if (gathered.has_value() &&
      storage_->ComputeDigest(gathered->payload) == ptr.digest) {
    stats_.local_shard_bytes += gathered->local_bytes;
    stats_.remote_shard_bytes += gathered->remote_bytes;
    if (io_ != nullptr && gathered->local_bytes > 0) {
      io_->ChargeDiskRead(ShardDiskOffset(ptr.digest), gathered->local_bytes);
    }
    for (const auto& [peer, bytes] : gathered->remote_reads) {
      if (network_ != nullptr) {
        const double ns = network_->Transfer(peer, node_id_, bytes);
        if (io_ != nullptr) io_->ChargeNs(ns);
      }
    }
    if (gathered->decoded) {
      ++stats_.reconstructed_blocks;
      stats_.parity_reads += gathered->parity_shards_read;
      if (io_ != nullptr) {
        io_->ChargeNs(kDecodeNsPerByte *
                      static_cast<double>(gathered->payload.size()));
      }
    }
    return assembled_.emplace(ptr.digest, std::move(gathered->payload))
        .first->second;
  }

  // Too few reachable shards (more than m members down), or the rebuild
  // failed the digest check (a Byzantine shard slipped into the chosen k):
  // whole-block fetch from the storage node. Get() digest-verifies.
  ++stats_.reconstruct_fallbacks;
  util::Bytes raw = storage_->Get(ptr.digest);
  ++stats_.storage_fetches;
  stats_.storage_fetch_bytes += raw.size();
  if (network_ != nullptr) {
    const double ns = network_->Transfer(/*from=*/0, node_id_, raw.size());
    if (io_ != nullptr) io_->ChargeNs(ns);
  }
  return assembled_.emplace(ptr.digest, std::move(raw)).first->second;
}

void StripedFileDevice::ReadAt(std::uint64_t offset,
                               util::MutableByteSpan out) {
  if (out.empty()) return;
  const std::uint32_t block_size = metadata_->config().block_size;
  const std::uint64_t file_size = metadata_->FileSize(file_);
  const std::uint64_t block_count = metadata_->FileBlockCount(file_);
  std::memset(out.data(), 0, out.size());

  const std::uint64_t first = offset / block_size;
  const std::uint64_t end = std::min<std::uint64_t>(offset + out.size(),
                                                    file_size);
  for (std::uint64_t b = first; b < block_count && b * block_size < end; ++b) {
    const zvol::BlockPtr& ptr = metadata_->FileBlock(file_, b);
    if (ptr.hole) continue;  // holes read as zeros, free
    // Every block access resolves the shard map — charged like the DDT
    // walk the full-replica path pays.
    if (io_ != nullptr) {
      io_->ChargeDdtLookup(metadata_->block_store().stats().unique_blocks);
    }
    const util::Bytes& payload = AssembleBlock(ptr);
    const std::uint64_t block_start = b * block_size;
    const std::uint64_t copy_from = std::max(offset, block_start);
    const std::uint64_t copy_end =
        std::min<std::uint64_t>(end, block_start + payload.size());
    if (copy_end <= copy_from) continue;
    std::memcpy(out.data() + (copy_from - offset),
                payload.data() + (copy_from - block_start),
                copy_end - copy_from);
  }
}

void StripedFileDevice::WriteAt(std::uint64_t, util::ByteSpan) {
  throw Error("StripedFileDevice is read-only: boots write into the overlay");
}

}  // namespace squirrel::placement
