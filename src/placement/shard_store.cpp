#include "placement/shard_store.h"

#include <utility>

namespace squirrel::placement {

void ShardStore::Put(const util::Digest& digest, std::uint32_t shard_index,
                     std::uint32_t payload_size, util::Bytes bytes) {
  auto [it, inserted] = shards_.try_emplace(digest);
  if (!inserted) shard_bytes_ -= it->second.bytes.size();
  it->second.shard_index = shard_index;
  it->second.payload_size = payload_size;
  it->second.bytes = std::move(bytes);
  shard_bytes_ += it->second.bytes.size();
}

const ShardEntry* ShardStore::Find(const util::Digest& digest) const {
  const auto it = shards_.find(digest);
  return it == shards_.end() ? nullptr : &it->second;
}

void ShardStore::Erase(const util::Digest& digest) {
  const auto it = shards_.find(digest);
  if (it == shards_.end()) return;
  shard_bytes_ -= it->second.bytes.size();
  shards_.erase(it);
}

void ShardStore::Clear() {
  shards_.clear();
  shard_bytes_ = 0;
}

}  // namespace squirrel::placement
