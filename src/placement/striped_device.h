// The striped boot cache device — VolumeFileDevice's counterpart when the
// placement policy shards the working set across a storage set.
//
// Under striping a compute node keeps no whole-block replica; its ccVolume
// is empty and its ShardStore holds one shard per unique block. A boot's
// cache layer instead reads through this device: file-table *metadata*
// (block pointers) comes from the replicated catalog (modelled by reading
// the scVolume's table — metadata is tiny and stays fully replicated), and
// each block's *payload* is gathered from the stripe:
//
//   1. the node's own shard comes off local disk (scattered-offset charge);
//   2. the other k−1 data shards stream from set peers (one set-local
//      network transfer each, L/k bytes);
//   3. when a data-shard holder is offline, parity shards from survivors
//      take its place and a Reed–Solomon decode rebuilds the payload
//      (parity_reads / reconstructed_blocks accounting);
//   4. if fewer than k shards are reachable — more than m set members down
//      — or the rebuilt payload fails the digest check, the device falls
//      back to a whole-block fetch from the storage node
//      (reconstruct_fallbacks, the storage-refetch traffic striping exists
//      to avoid).
//
// Assembled blocks are kept in an in-memory map (the node's page cache for
// this boot; no eviction — one boot's working set fits) so repeated guest
// reads of a hot block gather once. Every payload that leaves the device
// was digest-verified against the block pointer, so Byzantine shard peers
// reduce to fallbacks, never to wrong guest bytes.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>

#include "cow/device.h"
#include "placement/reconstruct.h"
#include "sim/io_context.h"
#include "sim/network.h"
#include "store/block_store.h"
#include "util/hash.h"
#include "zvol/volume.h"

namespace squirrel::placement {

class StripedFileDevice final : public cow::WritableDevice {
 public:
  /// Reed–Solomon decode CPU, charged per rebuilt payload byte when parity
  /// participates (a single GF(256) multiply-accumulate pass per row).
  static constexpr double kDecodeNsPerByte = 0.8;

  /// `metadata` is the volume holding the authoritative file table (the
  /// scVolume); `source` gathers shards across the set; `storage` is the
  /// storage node's block store, the whole-block fallback. `io` and
  /// `network` may be null (functional mode, no charging). All borrowed.
  StripedFileDevice(const zvol::Volume* metadata, std::string file,
                    const ReconstructionSource* source,
                    const store::BlockStore* storage, sim::IoContext* io,
                    sim::NetworkAccountant* network, std::uint32_t node_id);

  std::uint64_t size() const override;
  bool Present(std::uint64_t offset) const override;
  void ReadAt(std::uint64_t offset, util::MutableByteSpan out) override;
  /// The striped cache is read-only: boots run the chain with
  /// copy_on_read off, so the overlay absorbs all writes. Throws.
  void WriteAt(std::uint64_t offset, util::ByteSpan data) override;

  struct StripedReadStats {
    std::uint64_t blocks_served = 0;        // non-hole blocks assembled
    std::uint64_t local_shard_bytes = 0;    // read from the node's own store
    std::uint64_t remote_shard_bytes = 0;   // pulled from set peers
    std::uint64_t reconstructed_blocks = 0; // rebuilt through parity
    std::uint64_t parity_reads = 0;         // parity shards consumed
    std::uint64_t reconstruct_fallbacks = 0;  // gathers that fell through
    std::uint64_t storage_fetches = 0;      // whole-block storage refetches
    std::uint64_t storage_fetch_bytes = 0;
  };
  const StripedReadStats& stats() const { return stats_; }

 private:
  /// Assembles (or returns the cached copy of) the payload behind `ptr`.
  const util::Bytes& AssembleBlock(const zvol::BlockPtr& ptr);

  const zvol::Volume* metadata_;
  std::string file_;
  const ReconstructionSource* source_;
  const store::BlockStore* storage_;
  sim::IoContext* io_;
  sim::NetworkAccountant* network_;
  std::uint32_t node_id_;
  std::unordered_map<util::Digest, util::Bytes, util::DigestHasher> assembled_;
  StripedReadStats stats_;
};

}  // namespace squirrel::placement
