#include "placement/reconstruct.h"

#include <algorithm>
#include <utility>

namespace squirrel::placement {

ReconstructionSource::ReconstructionSource(const ReedSolomon* codec,
                                           std::vector<ShardPeer> peers)
    : codec_(codec), peers_(std::move(peers)) {}

void ReconstructionSource::SetPeerOnline(std::uint32_t node_id, bool online) {
  for (ShardPeer& peer : peers_) {
    if (peer.node_id == node_id) peer.online = online;
  }
}

std::optional<ReconstructionSource::GatherResult>
ReconstructionSource::Gather(const util::Digest& digest) const {
  const std::uint32_t k = codec_->data_shards();
  const std::uint32_t total = codec_->total_shards();

  // Reachable shard slots, indexed by shard number. A set member holds at
  // most one shard per block, so first-writer-wins is unambiguous.
  struct Slot {
    const ShardEntry* entry = nullptr;
    bool local = false;
    std::uint32_t node_id = 0;
  };
  std::vector<Slot> slots(total);
  std::uint32_t payload_size = 0;
  for (const ShardPeer& peer : peers_) {
    if (!peer.online || peer.store == nullptr) continue;
    const ShardEntry* entry = peer.store->Find(digest);
    if (entry == nullptr || entry->shard_index >= total) continue;
    if (slots[entry->shard_index].entry != nullptr) continue;
    slots[entry->shard_index] = {entry, peer.local, peer.node_id};
    payload_size = entry->payload_size;
  }

  // Choose k slots preferring data shards: iterating shard numbers in order
  // (data 0..k-1 first) does exactly that.
  std::vector<std::uint32_t> chosen;
  chosen.reserve(k);
  for (std::uint32_t i = 0; i < total && chosen.size() < k; ++i) {
    if (slots[i].entry != nullptr) chosen.push_back(i);
  }
  if (chosen.size() < k) return std::nullopt;

  GatherResult result;
  std::vector<std::optional<util::Bytes>> shards(total);
  for (const std::uint32_t i : chosen) {
    shards[i] = slots[i].entry->bytes;
    if (slots[i].local) {
      result.local_bytes += slots[i].entry->bytes.size();
    } else {
      result.remote_bytes += slots[i].entry->bytes.size();
      result.remote_reads.emplace_back(slots[i].node_id,
                                       slots[i].entry->bytes.size());
    }
    if (i >= k) {
      ++result.parity_shards_read;
      result.decoded = true;
    }
  }
  result.payload = codec_->Reconstruct(shards, payload_size);
  return result;
}

std::optional<zvol::ReconstructedBlock> ReconstructionSource::Reconstruct(
    const util::Digest& digest) {
  std::optional<GatherResult> gathered = Gather(digest);
  if (!gathered.has_value()) return std::nullopt;
  zvol::ReconstructedBlock block;
  block.payload = std::move(gathered->payload);
  block.remote_bytes = gathered->remote_bytes;
  block.parity_shards_read = gathered->parity_shards_read;
  return block;
}

}  // namespace squirrel::placement
