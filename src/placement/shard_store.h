// Per-node shard storage for the striped placement policy.
//
// Under striping a compute node no longer holds whole-block replicas in its
// ccVolume; it holds at most one shard (data fragment or parity) per unique
// block of its storage set's working set. The ShardStore is that side
// table: digest → (shard index, payload size, shard bytes), with byte
// accounting so benches can report disk-bytes-per-node. Shards are stored
// raw (uncompressed) — the modelled trade-off is documented in DESIGN.md
// §16: parity of compressed payloads would couple shard sizes to codec
// output and break the fixed ceil(L/k) shard geometry.
//
// A node holds at most one shard per block (k + m ≤ set size), so the map
// is keyed by digest alone. Put is idempotent per (digest, shard): the
// registration and sync paths may install the same shard twice (e.g. a
// re-sent stream) without double-counting bytes.
#pragma once

#include <cstdint>
#include <unordered_map>

#include "util/bytes.h"
#include "util/hash.h"

namespace squirrel::placement {

struct ShardEntry {
  std::uint32_t shard_index = 0;   // 0..k-1 data, k..k+m-1 parity
  std::uint32_t payload_size = 0;  // whole-block logical size, pre-split
  util::Bytes bytes;               // ceil(payload_size / k) shard bytes
};

class ShardStore {
 public:
  /// Installs (or re-installs) the node's shard of `digest`. Re-putting the
  /// same digest replaces the entry and adjusts byte accounting.
  void Put(const util::Digest& digest, std::uint32_t shard_index,
           std::uint32_t payload_size, util::Bytes bytes);

  /// The stored shard, or nullptr when this node holds none.
  const ShardEntry* Find(const util::Digest& digest) const;

  bool Contains(const util::Digest& digest) const {
    return shards_.find(digest) != shards_.end();
  }

  /// Drops the shard of `digest` if present (GC of deregistered images).
  void Erase(const util::Digest& digest);

  void Clear();

  std::uint64_t shard_count() const { return shards_.size(); }
  /// Total stored shard payload bytes — the per-node disk footprint the
  /// placement bench plots against full replication.
  std::uint64_t shard_bytes() const { return shard_bytes_; }

 private:
  std::unordered_map<util::Digest, ShardEntry, util::DigestHasher> shards_;
  std::uint64_t shard_bytes_ = 0;
};

}  // namespace squirrel::placement
