// Degraded-read reconstruction from a storage set's shard stores.
//
// A ReconstructionSource binds one block's worth of machinery together: the
// (k, m) Reed–Solomon codec, the stripe peers of one storage set (their
// ShardStores and liveness), and the gather protocol:
//
//   1. collect the shard slots reachable on online peers;
//   2. pick k of them, preferring data shards (a rebuild from all-data
//      slots is pure reassembly — no field arithmetic, no parity reads);
//   3. decode and reassemble the payload.
//
// Gather() reports what the rebuild cost — local vs remote shard bytes and
// how many parity shards participated — so the boot device can charge disk
// and network honestly. The class also implements zvol::BlockReconstructor,
// which is how a RepairSession reaches shards without zvol depending on the
// placement layer.
//
// Payloads leave Gather() *unverified*: the callers own the digest check
// (BlockStore::Repair re-hashes; the striped boot device compares the
// store's ComputeDigest against the block pointer), mirroring the repair
// path's single-defence design.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "placement/reed_solomon.h"
#include "placement/shard_store.h"
#include "util/bytes.h"
#include "util/hash.h"
#include "zvol/volume.h"

namespace squirrel::placement {

/// One stripe peer: a storage-set member and its shard store. `local`
/// marks the node performing the read — its shard comes off local disk,
/// everyone else's crosses the set network.
struct ShardPeer {
  std::uint32_t node_id = 0;
  const ShardStore* store = nullptr;
  bool online = true;
  bool local = false;
};

class ReconstructionSource final : public zvol::BlockReconstructor {
 public:
  /// `codec` is borrowed and must outlive the source.
  ReconstructionSource(const ReedSolomon* codec, std::vector<ShardPeer> peers);

  /// Marks a peer (by node id) online/offline mid-session — fleet churn.
  void SetPeerOnline(std::uint32_t node_id, bool online);

  struct GatherResult {
    util::Bytes payload;
    std::uint64_t local_bytes = 0;   // shard bytes read from the local store
    std::uint64_t remote_bytes = 0;  // shard bytes pulled from set peers
    std::uint32_t parity_shards_read = 0;
    /// True when parity participated (an RS decode ran, not a reassembly).
    bool decoded = false;
    /// (peer node id, shard bytes) per remote shard read — the boot device
    /// charges each as a set-local network transfer.
    std::vector<std::pair<std::uint32_t, std::uint64_t>> remote_reads;
  };

  /// Gathers k shards of `digest` across the set and rebuilds the payload.
  /// Returns nullopt when fewer than k shards are reachable on online
  /// peers. The payload is not digest-verified here.
  std::optional<GatherResult> Gather(const util::Digest& digest) const;

  /// zvol::BlockReconstructor: Gather() shaped for the repair path.
  std::optional<zvol::ReconstructedBlock> Reconstruct(
      const util::Digest& digest) override;

 private:
  const ReedSolomon* codec_;
  std::vector<ShardPeer> peers_;
};

}  // namespace squirrel::placement
