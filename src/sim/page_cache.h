// Host page cache model: an LRU over (device, block) keys with a byte
// capacity.
//
// The simulator uses it for both the Linux page cache over local files and
// the ZFS ARC over volume blocks; the interesting behaviour (Section 4.2.3's
// "free prefetching") comes from QCOW2's cluster-shaped lower reads landing
// in this cache before the guest asks for the rest of the cluster.
#pragma once

#include <cstdint>
#include <list>
#include <unordered_map>

namespace squirrel::sim {

class PageCache {
 public:
  /// `capacity_bytes` == 0 disables caching entirely.
  explicit PageCache(std::uint64_t capacity_bytes)
      : capacity_(capacity_bytes) {}

  /// True (and refreshed to MRU) if (device, block) is resident.
  bool Lookup(std::uint64_t device, std::uint64_t block);

  /// Inserts an entry of `bytes`; evicts LRU entries to fit.
  void Insert(std::uint64_t device, std::uint64_t block, std::uint32_t bytes);

  /// Non-mutating residency probe: no LRU refresh, no hit/miss accounting.
  /// Readahead uses this to skip cached blocks without perturbing the
  /// demand-path statistics.
  bool Resident(std::uint64_t device, std::uint64_t block) const {
    return map_.contains(Key{device, block});
  }

  std::uint64_t hits() const { return hits_; }
  std::uint64_t misses() const { return misses_; }
  std::uint64_t resident_bytes() const { return resident_; }
  std::size_t entry_count() const { return map_.size(); }

 private:
  struct Key {
    std::uint64_t device;
    std::uint64_t block;
    bool operator==(const Key&) const = default;
  };
  struct KeyHasher {
    std::size_t operator()(const Key& k) const noexcept {
      return static_cast<std::size_t>(
          (k.device * 0x9e3779b97f4a7c15ULL) ^ (k.block * 0xff51afd7ed558ccdULL));
    }
  };
  struct Entry {
    std::uint32_t bytes;
    std::list<Key>::iterator lru_pos;
  };

  std::uint64_t capacity_;
  std::uint64_t resident_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::list<Key> lru_;  // front = MRU
  std::unordered_map<Key, Entry, KeyHasher> map_;
};

}  // namespace squirrel::sim
