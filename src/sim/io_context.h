// Shared I/O simulation state for one compute node: a simulated clock, the
// node's local disk, its page cache, and CPU cost accounting.
#pragma once

#include <algorithm>
#include <cstdint>

#include "sim/disk_model.h"
#include "sim/page_cache.h"

namespace squirrel::sim {

struct IoContextConfig {
  DiskModelConfig disk{};
  /// Page cache budget available to the boot path. DAS-4 nodes have 24 GB,
  /// but a loaded compute node leaves far less for one VM's backing reads.
  std::uint64_t page_cache_bytes = 2ull << 30;
  /// Dedup-table lookup cost: base plus a term growing with table size
  /// (hash-walk plus the chance of an ARC miss on a cold DDT leaf).
  double ddt_lookup_base_ns = 2000.0;
  double ddt_lookup_per_log2_entry_ns = 400.0;
};

/// Adapts the I/O cost model to a linearly downscaled dataset: a byte
/// distance of d between scaled offsets corresponds to d / dataset_scale on
/// the real disk, so the seek-distance tiers (and the page-cache budget)
/// shrink by the same factor. Offsets themselves stay in scaled space, which
/// preserves contiguity of adjacent blocks.
inline IoContextConfig ScaledIoConfig(double dataset_scale,
                                      IoContextConfig config = {}) {
  config.disk.track_distance = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(
             static_cast<double>(config.disk.track_distance) * dataset_scale));
  config.disk.short_distance = std::max<std::uint64_t>(
      config.disk.track_distance + 1,
      static_cast<std::uint64_t>(
          static_cast<double>(config.disk.short_distance) * dataset_scale));
  config.page_cache_bytes = static_cast<std::uint64_t>(
      static_cast<double>(config.page_cache_bytes) * dataset_scale);
  return config;
}

class IoContext {
 public:
  explicit IoContext(IoContextConfig config = {})
      : config_(config), disk_(config.disk), page_cache_(config.page_cache_bytes) {}

  DiskModel& disk() { return disk_; }
  PageCache& page_cache() { return page_cache_; }
  const IoContextConfig& config() const { return config_; }

  void ChargeNs(double ns) { clock_ns_ += ns; }
  void ChargeDiskRead(std::uint64_t offset, std::uint64_t length) {
    clock_ns_ += disk_.Read(offset, length);
  }
  void ChargeDiskWrite(std::uint64_t offset, std::uint64_t length) {
    clock_ns_ += disk_.Write(offset, length);
  }
  void ChargeDdtLookup(std::uint64_t table_entries);

  double elapsed_ns() const { return clock_ns_; }
  double elapsed_seconds() const { return clock_ns_ / 1e9; }

 private:
  IoContextConfig config_;
  DiskModel disk_;
  PageCache page_cache_;
  double clock_ns_ = 0.0;
};

}  // namespace squirrel::sim
