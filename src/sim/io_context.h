// Shared I/O simulation state for one compute node: a simulated clock, the
// node's local disk, its page cache, and CPU cost accounting.
//
// Two disk charging models share this clock:
//
//   synchronous (default, disk_queue_depth == 0)  every read is charged
//     inline — the disk and the guest never overlap;
//   asynchronous (disk_queue_depth >= 1)          reads flow through an
//     event-driven AsyncDiskQueue with bounded depth, adjacent-request
//     coalescing and elevator ordering; the guest clock only advances to a
//     request's completion when it consumes the data, so readahead issued
//     ahead of consumption overlaps with guest CPU (the ZFS behaviour behind
//     the paper's Fig 11). Depth 1 with no readahead is bit-identical to the
//     synchronous model (see sim/event/disk_queue.h).
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <unordered_map>

#include "sim/disk_model.h"
#include "sim/event/disk_queue.h"
#include "sim/event/event_loop.h"
#include "sim/page_cache.h"

namespace squirrel::sim {

struct IoContextConfig {
  DiskModelConfig disk{};
  /// Page cache budget available to the boot path. DAS-4 nodes have 24 GB,
  /// but a loaded compute node leaves far less for one VM's backing reads.
  std::uint64_t page_cache_bytes = 2ull << 30;
  /// Dedup-table lookup cost: base plus a term growing with table size
  /// (hash-walk plus the chance of an ARC miss on a cold DDT leaf).
  double ddt_lookup_base_ns = 2000.0;
  double ddt_lookup_per_log2_entry_ns = 400.0;
  /// Async disk engine. 0 = legacy synchronous charging (the default);
  /// >= 1 routes batched reads through an AsyncDiskQueue of this depth.
  std::uint32_t disk_queue_depth = 0;
  /// Adjacent-request coalescing cap for the async queue (bytes per merged
  /// physical op; 0 disables merging).
  std::uint64_t disk_coalesce_bytes = 1ull << 20;
  /// Elevator (nearest-offset-first) service order among the queued window.
  bool disk_elevator = true;
  /// Device-level readahead in async mode: blocks prefetched past each read.
  /// Prefetches never stall the guest and are dropped when the queue is full.
  std::uint32_t readahead_blocks = 0;
};

/// Adapts the I/O cost model to a linearly downscaled dataset: a byte
/// distance of d between scaled offsets corresponds to d / dataset_scale on
/// the real disk, so the seek-distance tiers (and the page-cache budget)
/// shrink by the same factor. Offsets themselves stay in scaled space, which
/// preserves contiguity of adjacent blocks.
inline IoContextConfig ScaledIoConfig(double dataset_scale,
                                      IoContextConfig config = {}) {
  config.disk.track_distance = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(
             static_cast<double>(config.disk.track_distance) * dataset_scale));
  config.disk.short_distance = std::max<std::uint64_t>(
      config.disk.track_distance + 1,
      static_cast<std::uint64_t>(
          static_cast<double>(config.disk.short_distance) * dataset_scale));
  // Clamp to one page, mirroring the distance-tier guards: at deep
  // downscales the budget would otherwise truncate to 0 bytes and silently
  // disable the page cache (a disabled cache is a modelling decision, not a
  // rounding artifact).
  config.page_cache_bytes = std::max<std::uint64_t>(
      4096, static_cast<std::uint64_t>(
                static_cast<double>(config.page_cache_bytes) * dataset_scale));
  return config;
}

class IoContext {
 public:
  explicit IoContext(IoContextConfig config = {});

  DiskModel& disk() { return disk_; }
  PageCache& page_cache() { return page_cache_; }
  const IoContextConfig& config() const { return config_; }

  void ChargeNs(double ns) { clock_ns_ += ns; }
  void ChargeDiskRead(std::uint64_t offset, std::uint64_t length) {
    clock_ns_ += disk_.Read(offset, length);
  }
  void ChargeDiskWrite(std::uint64_t offset, std::uint64_t length) {
    clock_ns_ += disk_.Write(offset, length);
  }
  void ChargeDdtLookup(std::uint64_t table_entries);

  double elapsed_ns() const { return clock_ns_; }
  double elapsed_seconds() const { return clock_ns_ / 1e9; }

  // --- async disk engine ---------------------------------------------------

  bool async_disk() const { return disk_queue_ != nullptr; }
  event::AsyncDiskQueue* disk_queue() { return disk_queue_.get(); }
  event::EventLoop* event_loop() { return loop_.get(); }

  /// One read of the batched submit/reap path. `cpu_ns` is charged after the
  /// request's completion barrier (decompression of that block); `cookie` is
  /// handed back through `on_complete` (page-cache bookkeeping).
  struct AsyncRead {
    std::uint64_t offset = 0;
    std::uint64_t length = 0;
    double cpu_ns = 0.0;
    std::uint64_t cookie = 0;
  };

  /// Batched submit/reap: issues `reads` through the async queue in windows
  /// of the configured depth and consumes completions in completion order —
  /// the guest clock advances to each completion (max), then pays that
  /// read's CPU. With depth 1 this reduces exactly to the synchronous
  /// model's charge sequence. Requires async_disk().
  void ChargeAsyncReadBatch(
      std::span<const AsyncRead> reads,
      const std::function<void(std::uint64_t cookie)>& on_complete);

  /// Issues a background prefetch for (device, block); never advances the
  /// guest clock. Returns false when dropped (queue full / sync mode).
  bool PrefetchDiskRead(std::uint64_t device, std::uint64_t block,
                        std::uint64_t offset, std::uint64_t length);

  /// True while a prefetch for (device, block) has not been consumed.
  bool InFlight(std::uint64_t device, std::uint64_t block) const;

  /// Consumes an in-flight prefetch: the guest clock advances to its
  /// completion (a no-op if it already completed in the past) and the entry
  /// is retired. Returns the completion time.
  double JoinInFlight(std::uint64_t device, std::uint64_t block);

 private:
  struct BlockKey {
    std::uint64_t device;
    std::uint64_t block;
    bool operator==(const BlockKey&) const = default;
  };
  struct BlockKeyHasher {
    std::size_t operator()(const BlockKey& k) const noexcept {
      return static_cast<std::size_t>((k.device * 0x9e3779b97f4a7c15ULL) ^
                                      (k.block * 0xff51afd7ed558ccdULL));
    }
  };

  IoContextConfig config_;
  DiskModel disk_;
  PageCache page_cache_;
  double clock_ns_ = 0.0;
  std::unique_ptr<event::EventLoop> loop_;
  std::unique_ptr<event::AsyncDiskQueue> disk_queue_;
  std::unordered_map<BlockKey, event::RequestId, BlockKeyHasher> in_flight_;
};

}  // namespace squirrel::sim
