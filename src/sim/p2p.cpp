#include "sim/p2p.h"

#include <algorithm>
#include <cassert>

#include "util/bytes.h"
#include "util/rng.h"

namespace squirrel::sim {

P2pResult SimulateSwarm(std::uint64_t image_bytes, std::uint64_t boot_set_bytes,
                        std::uint32_t peer_count, const P2pConfig& config) {
  P2pResult result;
  if (peer_count == 0) return result;

  const std::uint32_t total_chunks = static_cast<std::uint32_t>(
      util::CeilDiv(image_bytes, config.chunk_size));
  const std::uint32_t boot_chunks = std::min(
      total_chunks, static_cast<std::uint32_t>(
                        util::CeilDiv(boot_set_bytes, config.chunk_size)));
  const std::uint32_t need_chunks =
      config.mode == P2pMode::kFullImage ? total_chunks : boot_chunks;

  // Peers fetch chunks in index order (boot-working-set chunks occupy the
  // low indices, so streaming mode gets them first automatically). The
  // swarm effect is captured by the upload-capacity model: once a chunk has
  // peer replicas, serving capacity grows with the swarm, which is what
  // makes P2P scale while a lone seed does not.
  std::vector<std::uint32_t> next_chunk(peer_count, 0);   // chunks held so far
  std::vector<std::uint32_t> replicas(total_chunks, 1);   // the seed's copy
  result.time_to_boot_seconds.assign(peer_count, 0.0);
  std::vector<bool> done(peer_count, false);

  const double round_seconds =
      static_cast<double>(config.chunk_size) * config.upload_slots /
      config.bandwidth_bytes_per_second;

  util::Rng rng(peer_count * 7919ull + total_chunks);
  std::uint32_t done_count = 0;
  std::uint32_t finished_peers = 0;
  double clock = 0.0;

  while (done_count < peer_count && result.rounds < (1u << 22)) {
    ++result.rounds;
    clock += round_seconds;

    // Upload capacity this round: the seed plus every peer holding data.
    std::uint32_t capacity = config.upload_slots;
    for (std::uint32_t p = 0; p < peer_count; ++p) {
      if (next_chunk[p] > 0) capacity += config.upload_slots;
    }

    // Receivers in deterministic-random order, one chunk per capacity unit.
    std::vector<std::uint32_t> order(peer_count);
    for (std::uint32_t p = 0; p < peer_count; ++p) order[p] = p;
    for (std::uint32_t p = peer_count; p > 1; --p) {
      std::swap(order[p - 1], order[rng.Below(p)]);
    }
    // Each receiver's download link admits at most `upload_slots` chunks per
    // round (symmetric links); keep draining capacity until neither side
    // can move more.
    std::vector<std::uint32_t> received(peer_count, 0);
    bool progress = true;
    while (capacity > 0 && progress) {
      progress = false;
      for (std::uint32_t receiver : order) {
        if (capacity == 0) break;
        if (received[receiver] >= config.upload_slots) continue;
        if (next_chunk[receiver] == total_chunks) continue;
        const std::uint32_t chunk = next_chunk[receiver]++;
        ++replicas[chunk];
        --capacity;
        ++received[receiver];
        progress = true;
        result.network_bytes += config.chunk_size;
        if (replicas[chunk] == 2) {
          // First copy beyond the seed: the seed served it.
          result.seed_bytes += config.chunk_size;
        }
        if (!done[receiver] && next_chunk[receiver] >= need_chunks) {
          done[receiver] = true;
          result.time_to_boot_seconds[receiver] = clock;
          ++done_count;
        }
        if (next_chunk[receiver] == total_chunks) ++finished_peers;
      }
    }
    if (finished_peers == peer_count) break;
  }

  double total = 0.0;
  for (double t : result.time_to_boot_seconds) {
    total += t;
    result.max_time_to_boot = std::max(result.max_time_to_boot, t);
  }
  result.mean_time_to_boot = total / static_cast<double>(peer_count);
  return result;
}

}  // namespace squirrel::sim
