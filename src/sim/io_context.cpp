#include "sim/io_context.h"

#include <bit>
#include <stdexcept>
#include <utility>
#include <vector>

namespace squirrel::sim {

IoContext::IoContext(IoContextConfig config)
    : config_(config),
      disk_(config.disk),
      page_cache_(config.page_cache_bytes) {
  if (config_.disk_queue_depth > 0) {
    loop_ = std::make_unique<event::EventLoop>();
    disk_queue_ = std::make_unique<event::AsyncDiskQueue>(
        &disk_, loop_.get(),
        event::DiskQueueConfig{config_.disk_queue_depth,
                               config_.disk_coalesce_bytes,
                               config_.disk_elevator});
  }
}

void IoContext::ChargeDdtLookup(std::uint64_t table_entries) {
  const double log2_entries =
      table_entries == 0 ? 0.0
                         : static_cast<double>(std::bit_width(table_entries));
  clock_ns_ += config_.ddt_lookup_base_ns +
               config_.ddt_lookup_per_log2_entry_ns * log2_entries;
}

void IoContext::ChargeAsyncReadBatch(
    std::span<const AsyncRead> reads,
    const std::function<void(std::uint64_t cookie)>& on_complete) {
  if (!async_disk()) {
    throw std::logic_error("ChargeAsyncReadBatch: async disk disabled");
  }
  const std::size_t depth = config_.disk_queue_depth;
  for (std::size_t base = 0; base < reads.size(); base += depth) {
    const std::size_t end = std::min(reads.size(), base + depth);
    // Submit the window, then reap in completion order: the guest clock
    // advances to each completion (barrier), pays that read's CPU, and only
    // then consumes the next completion. With depth 1 the window is a single
    // request and this is exactly the synchronous charge-then-decompress
    // sequence, float op for float op.
    std::vector<std::pair<event::RequestId, std::size_t>> window;
    window.reserve(end - base);
    for (std::size_t i = base; i < end; ++i) {
      window.emplace_back(
          disk_queue_->Submit(clock_ns_, reads[i].offset, reads[i].length), i);
    }
    std::vector<std::pair<double, std::size_t>> done;
    done.reserve(window.size());
    for (const auto& [id, i] : window) {
      done.emplace_back(disk_queue_->CompletionNs(id), i);
    }
    std::sort(done.begin(), done.end());
    for (const auto& [completion, i] : done) {
      if (completion > clock_ns_) clock_ns_ = completion;
      if (reads[i].cpu_ns != 0.0) clock_ns_ += reads[i].cpu_ns;
      if (on_complete) on_complete(reads[i].cookie);
    }
  }
}

bool IoContext::PrefetchDiskRead(std::uint64_t device, std::uint64_t block,
                                 std::uint64_t offset, std::uint64_t length) {
  if (!async_disk()) return false;
  const BlockKey key{device, block};
  if (in_flight_.contains(key)) return true;
  const event::RequestId id =
      disk_queue_->TrySubmit(clock_ns_, offset, length);
  if (id == event::kInvalidRequest) return false;
  in_flight_.emplace(key, id);
  return true;
}

bool IoContext::InFlight(std::uint64_t device, std::uint64_t block) const {
  return in_flight_.contains(BlockKey{device, block});
}

double IoContext::JoinInFlight(std::uint64_t device, std::uint64_t block) {
  const auto it = in_flight_.find(BlockKey{device, block});
  if (it == in_flight_.end()) {
    throw std::logic_error("JoinInFlight: no such prefetch");
  }
  const double completion = disk_queue_->CompletionNs(it->second);
  in_flight_.erase(it);
  if (completion > clock_ns_) clock_ns_ = completion;
  return completion;
}

}  // namespace squirrel::sim
