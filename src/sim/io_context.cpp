#include "sim/io_context.h"

#include <bit>

namespace squirrel::sim {

void IoContext::ChargeDdtLookup(std::uint64_t table_entries) {
  const double log2_entries =
      table_entries == 0 ? 0.0
                         : static_cast<double>(std::bit_width(table_entries));
  clock_ns_ += config_.ddt_lookup_base_ns +
               config_.ddt_lookup_per_log2_entry_ns * log2_entries;
}

}  // namespace squirrel::sim
