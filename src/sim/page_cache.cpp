#include "sim/page_cache.h"

namespace squirrel::sim {

bool PageCache::Lookup(std::uint64_t device, std::uint64_t block) {
  if (capacity_ == 0) {
    ++misses_;
    return false;
  }
  const Key key{device, block};
  auto it = map_.find(key);
  if (it == map_.end()) {
    ++misses_;
    return false;
  }
  lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
  ++hits_;
  return true;
}

void PageCache::Insert(std::uint64_t device, std::uint64_t block,
                       std::uint32_t bytes) {
  if (capacity_ == 0 || bytes > capacity_) return;
  const Key key{device, block};
  auto it = map_.find(key);
  if (it != map_.end()) {
    lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
    resident_ -= it->second.bytes;
    it->second.bytes = bytes;
    resident_ += bytes;
  } else {
    lru_.push_front(key);
    map_.emplace(key, Entry{bytes, lru_.begin()});
    resident_ += bytes;
  }
  while (resident_ > capacity_ && !lru_.empty()) {
    const Key victim = lru_.back();
    lru_.pop_back();
    auto vit = map_.find(victim);
    resident_ -= vit->second.bytes;
    map_.erase(vit);
  }
}

}  // namespace squirrel::sim
