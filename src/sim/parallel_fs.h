// Off-the-shelf parallel file system model (the glusterfs deployment of
// Section 4.4: 4 storage nodes, two levels of striping and two of
// replication).
//
// The model maps byte ranges of a file to storage nodes: the address space
// is cut into stripe units assigned round-robin across `stripe_count`
// groups; each group is `replica_count` nodes wide and reads alternate
// between replicas. The Figure 18 bench uses it to attribute every base-VMI
// read to a serving storage node and to account network transfer toward the
// requesting compute node.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/network.h"

namespace squirrel::sim {

struct ParallelFsConfig {
  std::uint32_t stripe_count = 2;
  std::uint32_t replica_count = 2;
  std::uint32_t stripe_unit = 128 * 1024;
  /// Storage node ids, stripe-major: group g replica r is
  /// nodes[g * replica_count + r]. Size must equal stripe_count * replica_count.
  std::vector<std::uint32_t> nodes = {0, 1, 2, 3};
};

class ParallelFs {
 public:
  explicit ParallelFs(ParallelFsConfig config);

  /// Storage node serving the stripe unit containing `offset` for the
  /// `read_sequence`-th read (alternates replicas for load balancing).
  std::uint32_t ServingNode(std::uint64_t offset, std::uint64_t read_sequence) const;

  /// Accounts a read of [offset, offset+length) of a file by compute node
  /// `client`, splitting it across stripe units; returns simulated ns.
  double Read(NetworkAccountant& network, std::uint32_t client,
              std::uint64_t offset, std::uint64_t length);

  std::uint64_t bytes_served(std::uint32_t storage_node) const;
  const ParallelFsConfig& config() const { return config_; }

 private:
  ParallelFsConfig config_;
  std::vector<std::uint64_t> served_;  // indexed by position in config_.nodes
  std::uint64_t sequence_ = 0;
};

}  // namespace squirrel::sim
