// Adaptive Replacement Cache policy model for the boot simulator — a thin
// (device, block)-keyed, entry-counted instantiation of the generic weighted
// ARC core in util/arc_cache.h (which also backs the block store's
// decompressed-block cache, store::BlockCache).
//
// Every entry is one fixed-size block with weight 1, so the weighted core
// reduces exactly to the classic Megiddo & Modha formulation; the PageCache
// interface it mirrors is byte-based, so callers size it as
// capacity_blocks = bytes / block_size.
#pragma once

#include <cstdint>

#include "util/arc_cache.h"

namespace squirrel::sim {

class ArcCache {
 public:
  explicit ArcCache(std::size_t capacity_blocks) : core_(capacity_blocks) {}

  /// True (cache hit) if (device, block) is resident; updates ARC state.
  bool Lookup(std::uint64_t device, std::uint64_t block) {
    return core_.Lookup(Key{device, block});
  }

  /// Inserts after a miss (also adapts using the ghost lists).
  void Insert(std::uint64_t device, std::uint64_t block) {
    core_.Insert(Key{device, block}, 1);
  }

  /// Rebudgets in place: shrinking evicts in ARC replacement order down to
  /// the new entry budget, growing keeps contents and history.
  void Resize(std::size_t capacity_blocks) { core_.Resize(capacity_blocks); }

  std::uint64_t hits() const { return core_.hits(); }
  std::uint64_t misses() const { return core_.misses(); }
  std::size_t resident_entries() const { return core_.resident_entries(); }
  std::size_t capacity() const {
    return static_cast<std::size_t>(core_.capacity());
  }
  /// Current adaptive target for T1 (recency side), in entries.
  std::size_t target_t1() const {
    return static_cast<std::size_t>(core_.target_recency_weight());
  }

 private:
  struct Key {
    std::uint64_t device;
    std::uint64_t block;
    bool operator==(const Key&) const = default;
  };
  struct KeyHasher {
    std::size_t operator()(const Key& k) const noexcept {
      return static_cast<std::size_t>((k.device * 0x9e3779b97f4a7c15ULL) ^
                                      (k.block * 0xff51afd7ed558ccdULL));
    }
  };

  util::ArcCache<Key, KeyHasher> core_;
};

}  // namespace squirrel::sim
