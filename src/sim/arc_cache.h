// Adaptive Replacement Cache (Megiddo & Modha, FAST'03) — the policy behind
// the ZFS ARC that caches Squirrel's cVolume blocks in practice.
//
// ARC partitions the cache between a recency list (T1) and a frequency list
// (T2) and adapts the split (`p`) using two ghost lists (B1, B2) that
// remember recently evicted keys: a hit in B1 says "recency deserved more
// room", a hit in B2 the opposite. Compared with plain LRU it resists scans
// — a single pass over a large file (exactly what a VM boot's one-time reads
// are) cannot flush the frequently reused blocks.
//
// The implementation tracks entry counts (every entry one fixed-size block),
// matching the classic formulation; the PageCache interface it mirrors is
// byte-based, so callers size it as capacity_blocks = bytes / block_size.
#pragma once

#include <cstdint>
#include <list>
#include <unordered_map>

namespace squirrel::sim {

class ArcCache {
 public:
  explicit ArcCache(std::size_t capacity_blocks);

  /// True (cache hit) if (device, block) is resident; updates ARC state.
  bool Lookup(std::uint64_t device, std::uint64_t block);

  /// Inserts after a miss (also adapts using the ghost lists).
  void Insert(std::uint64_t device, std::uint64_t block);

  std::uint64_t hits() const { return hits_; }
  std::uint64_t misses() const { return misses_; }
  std::size_t resident_entries() const { return t1_.size() + t2_.size(); }
  std::size_t capacity() const { return capacity_; }
  /// Current adaptive target for T1 (recency side), in entries.
  std::size_t target_t1() const { return p_; }

 private:
  struct Key {
    std::uint64_t device;
    std::uint64_t block;
    bool operator==(const Key&) const = default;
  };
  struct KeyHasher {
    std::size_t operator()(const Key& k) const noexcept {
      return static_cast<std::size_t>((k.device * 0x9e3779b97f4a7c15ULL) ^
                                      (k.block * 0xff51afd7ed558ccdULL));
    }
  };
  enum class ListId { kT1, kT2, kB1, kB2 };
  struct Entry {
    ListId list;
    std::list<Key>::iterator position;
  };

  using Lru = std::list<Key>;  // front = MRU

  void Replace(bool hit_in_b2);
  void EvictFrom(Lru& list, ListId id, Lru& ghost, ListId ghost_id);
  void DropLru(Lru& list);

  std::size_t capacity_;
  std::size_t p_ = 0;  // target size of T1
  Lru t1_, t2_, b1_, b2_;
  std::unordered_map<Key, Entry, KeyHasher> index_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

}  // namespace squirrel::sim
