#include "sim/profile_prefetch.h"

#include <algorithm>
#include <unordered_set>

namespace squirrel::sim {

ProfilePrefetcher::ProfilePrefetcher(const vmi::BootProfile* profile,
                                     IoContext* io,
                                     ProfilePrefetchConfig config)
    : profile_(profile), io_(io), config_(config) {}

void ProfilePrefetcher::Bind(const std::string& file, PrefetchTarget* target) {
  bindings_[file] = target;
  built_ = false;  // a new binding may unlock previously-unbound touches
}

void ProfilePrefetcher::BuildPlan() {
  built_ = true;
  plan_.clear();
  cursor_ = 0;
  stats_.skipped_unbound = 0;
  if (profile_ == nullptr) return;
  const std::vector<std::string>& files = profile_->files();
  std::vector<PrefetchTarget*> targets(files.size(), nullptr);
  for (std::size_t i = 0; i < files.size(); ++i) {
    const auto it = bindings_.find(files[i]);
    if (it != bindings_.end()) targets[i] = it->second;
  }
  // Plan each (file, block) once, at its first miss-annotated touch —
  // re-reads of the same block hit the page cache warmed by the first.
  struct Key {
    std::uint32_t file;
    std::uint64_t block;
    bool operator==(const Key&) const = default;
  };
  struct KeyHasher {
    std::size_t operator()(const Key& k) const noexcept {
      return static_cast<std::size_t>((k.file * 0x9e3779b97f4a7c15ULL) ^
                                      (k.block * 0xff51afd7ed558ccdULL));
    }
  };
  std::unordered_set<Key, KeyHasher> planned;
  for (const vmi::ProfileTouch& touch : profile_->touches()) {
    if (touch.page_cache_hit) continue;
    if (touch.file >= targets.size() || targets[touch.file] == nullptr) {
      ++stats_.skipped_unbound;
      continue;
    }
    if (!planned.insert(Key{touch.file, touch.block}).second) continue;
    plan_.push_back(PlannedBlock{targets[touch.file], touch.block});
  }
}

void ProfilePrefetcher::Pump() {
  if (io_ == nullptr || !io_->async_disk()) return;
  if (!built_) BuildPlan();
  // Retire prefetches the guest has consumed (JoinInFlight removed the
  // in-flight entry), freeing lead-window slots.
  std::erase_if(outstanding_, [&](const auto& key) {
    return !io_->InFlight(key.first, key.second);
  });
  while (outstanding_.size() < config_.lead_blocks && cursor_ < plan_.size()) {
    const PlannedBlock& next = plan_[cursor_];
    const PrefetchOutcome outcome = next.target->PrefetchBlock(next.block);
    if (outcome == PrefetchOutcome::kDropped) {
      // Queue saturated: keep the cursor so the next Pump retries this
      // block instead of punching a hole in the plan.
      ++stats_.dropped;
      break;
    }
    ++cursor_;
    if (outcome == PrefetchOutcome::kIssued) {
      ++stats_.issued;
      outstanding_.emplace_back(next.target->device_id(), next.block);
    } else {
      ++stats_.skipped_resident;
    }
  }
}

}  // namespace squirrel::sim
