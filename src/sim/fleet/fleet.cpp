#include "sim/fleet/fleet.h"

#include <algorithm>
#include <cstdio>

namespace squirrel::sim::fleet {
namespace {

void AppendF(std::string& out, const char* fmt, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), fmt, v);
  out += buf;
}

void AppendU(std::string& out, unsigned long long v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%llu", v);
  out += buf;
}

}  // namespace

FleetScenario::FleetScenario(const FleetConfig& config)
    : config_(config),
      loop_(config.seed),
      zipf_(std::max<std::uint32_t>(config.images, 1), config.zipf_s),
      nodes_(config.nodes),
      node_available_ns_(config.nodes, 0.0),
      image_version_(std::max<std::uint32_t>(config.images, 1), 0),
      reg_slot_free_ns_(std::max<std::uint32_t>(config.registration_slots, 1),
                        0.0) {
  loop_.EnableTrace(config.trace);
  if (config_.placement_enabled) {
    const std::uint32_t stripe =
        config_.data_shards + config_.parity_shards;
    const std::uint32_t set_size =
        std::max(config_.storage_set_size, stripe);
    config_.storage_set_size = set_size;
    set_count_ = config_.nodes / set_size;  // trailing nodes replicate
    set_link_free_ns_.assign(set_count_, 0.0);
  }
}

bool FleetScenario::NodeStriped(std::uint32_t node) const {
  return config_.placement_enabled &&
         node < set_count_ * config_.storage_set_size;
}

double FleetScenario::ShardFraction() const {
  return static_cast<double>(config_.data_shards + config_.parity_shards) /
         (static_cast<double>(config_.data_shards) *
          static_cast<double>(config_.storage_set_size));
}

double FleetScenario::ReserveSetLink(std::uint32_t set, double bytes,
                                     double earliest_ns) {
  double& free_ns = set_link_free_ns_[set];
  const double start = std::max(earliest_ns, free_ns);
  free_ns = start + bytes / config_.set_link_bytes_per_second * 1e9;
  return free_ns;
}

double FleetScenario::Jitter() {
  const double j = config_.model.jitter_fraction;
  return 1.0 + j * (2.0 * loop_.rng().NextDouble() - 1.0);
}

std::uint32_t FleetScenario::SampleImage() {
  return static_cast<std::uint32_t>(zipf_.Sample(loop_.rng()));
}

double FleetScenario::ReserveLink(double bytes, double earliest_ns) {
  const double start = std::max(earliest_ns, link_free_ns_);
  link_free_ns_ =
      start + bytes / config_.model.storage_link_bytes_per_second * 1e9;
  return link_free_ns_;
}

void FleetScenario::TaskDone() {
  if (--outstanding_ == 0) StartNextPhase();
}

void FleetScenario::SubmitRegistration(std::uint32_t image, double at_ns) {
  ++outstanding_;
  loop_.Schedule(at_ns, "reg-submit", [this, image, at_ns] {
    // Earliest-free registration slot, lowest index on ties.
    std::size_t slot = 0;
    for (std::size_t s = 1; s < reg_slot_free_ns_.size(); ++s) {
      if (reg_slot_free_ns_[s] < reg_slot_free_ns_[slot]) slot = s;
    }
    const FleetModel& m = config_.model;
    const double start = std::max(at_ns, reg_slot_free_ns_[slot]);
    // Registration boot + snapshot + send-stream generation on the storage
    // node hold the slot; the multicast diff then contends for the uplink.
    const double service_seconds =
        (m.registration_boot_seconds + m.snapshot_seconds) * Jitter() +
        m.diff_bytes / m.stream_bytes_per_second;
    const double local_done = start + service_seconds * 1e9;
    reg_slot_free_ns_[slot] = local_done;
    const double done = ReserveLink(m.diff_bytes, local_done);
    reg_service_.Add(service_seconds +
                     m.diff_bytes / m.storage_link_bytes_per_second);
    loop_.Schedule(done, "reg-done", [this, image, at_ns] {
      ++cluster_version_;
      image_version_[image] = cluster_version_;
      // The multicast reaches every *online* node (§3.2); offline nodes
      // catch up at rejoin (§3.5).
      for (NodeState& node : nodes_) {
        if (node.online) node.synced_version = cluster_version_;
      }
      reg_completion_.Add((loop_.now_ns() - at_ns) / 1e9);
      ++registrations_done_;
      phases_.back().last_done_ns = loop_.now_ns();
      TaskDone();
    });
  });
}

void FleetScenario::ScheduleBoot(std::uint32_t node, std::uint32_t image,
                                 double at_ns) {
  ++outstanding_;
  loop_.Schedule(at_ns, "boot", [this, node, image, at_ns] {
    const FleetModel& m = config_.model;
    NodeState& state = nodes_[node];
    // Wait out any in-flight sync catch-up on this node (§3.5: the node-boot
    // path syncs before serving).
    double start = std::max(at_ns, node_available_ns_[node]);
    bool remote = start > at_ns;
    const bool striped = NodeStriped(node);
    if (state.synced_version < image_version_[image]) {
      // Stale replica: pull the image's cache (only this node's shard under
      // striping) from the storage node over the shared uplink (§3.5
      // fallback), then boot warm.
      start = ReserveLink(
          striped ? m.cache_bytes * ShardFraction() : m.cache_bytes, start);
      state.synced_version = cluster_version_;
      node_available_ns_[node] = start;
      remote = true;
    }
    if (striped) {
      // The node holds 1/k of each block; the remaining data shards come
      // from set peers over the per-set LAN link (FIFO within the set).
      const double gather =
          m.cache_bytes * (static_cast<double>(config_.data_shards - 1) /
                           static_cast<double>(config_.data_shards));
      start = ReserveSetLink(node / config_.storage_set_size, gather, start);
      shard_gather_bytes_ += gather;
    }
    double exec_seconds =
        (m.prefetch_enabled ? m.prefetch_boot_seconds : m.warm_boot_seconds) *
        Jitter();
    if (loop_.rng().Chance(m.degraded_fraction)) {
      // Pre-healing (prefetch path) moves most repair work off the boot's
      // critical path.
      exec_seconds += m.prefetch_enabled ? 0.25 * m.degraded_extra_seconds
                                         : m.degraded_extra_seconds;
      if (striped) {
        // A degraded striped boot rebuilds its blocks from parity instead of
        // re-fetching replicas: Reed–Solomon decode CPU on the critical path.
        const double decode = m.cache_bytes / config_.decode_bytes_per_second;
        exec_seconds += decode;
        decode_seconds_ += decode;
        ++reconstructions_;
      }
    }
    ++state.active_boots;
    loop_.Schedule(start + exec_seconds * 1e9, "boot-done",
                   [this, node, at_ns, remote] {
                     --nodes_[node].active_boots;
                     PhaseAccum& phase = phases_.back();
                     phase.latency.Add((loop_.now_ns() - at_ns) / 1e9);
                     ++phase.boots;
                     if (remote) ++phase.remote;
                     phase.last_done_ns = loop_.now_ns();
                     ++total_boots_;
                     TaskDone();
                   });
  });
}

void FleetScenario::ScheduleChurn() {
  const double t0 = loop_.now_ns();
  const std::uint32_t n = config_.nodes;
  const auto churners = std::max<std::uint32_t>(
      1, static_cast<std::uint32_t>(config_.churn_fraction *
                                    static_cast<double>(n)));
  // Distinct churn nodes via partial Fisher-Yates over the id space.
  std::vector<std::uint32_t> ids(n);
  for (std::uint32_t i = 0; i < n; ++i) ids[i] = i;
  std::vector<std::uint8_t> churning(n, 0);
  for (std::uint32_t k = 0; k < churners && k < n; ++k) {
    const auto pick =
        k + static_cast<std::uint32_t>(loop_.rng().Below(n - k));
    std::swap(ids[k], ids[pick]);
    churning[ids[k]] = 1;
  }

  for (std::uint32_t k = 0; k < churners && k < n; ++k) {
    const std::uint32_t node = ids[k];
    const double leave_ns = t0 + static_cast<double>(k) * 0.1e9;
    const double rejoin_ns = leave_ns + config_.churn_offline_seconds * 1e9;
    loop_.Schedule(leave_ns, "leave",
                   [this, node] { nodes_[node].online = 0; });
    loop_.Schedule(rejoin_ns, "join", [this, node] {
      NodeState& state = nodes_[node];
      state.online = 1;
      const std::uint32_t behind = cluster_version_ - state.synced_version;
      if (behind > 0) {
        // SyncNode catch-up (§3.5): incremental diffs, capped at a full
        // resync of every cache when the node is too far behind.
        double bytes = std::min(
            static_cast<double>(behind) * config_.model.diff_bytes,
            config_.model.cache_bytes * static_cast<double>(config_.images));
        // A striped node only catches up on its own shards.
        if (NodeStriped(node)) bytes *= ShardFraction();
        node_available_ns_[node] = ReserveLink(bytes, loop_.now_ns());
        ++sync_catchups_;
        sync_bytes_ += bytes;
        state.synced_version = cluster_version_;
      }
    });
    // The rejoined node immediately hosts a VM; its boot latency includes
    // the sync catch-up it queues behind ("join" fires first: same time,
    // earlier sequence).
    ScheduleBoot(node, SampleImage(), rejoin_ns);
  }

  // Re-register the two hottest images while the churners are offline, so
  // rejoins have something to catch up on.
  const std::uint32_t regs = std::min<std::uint32_t>(2, config_.images);
  for (std::uint32_t i = 0; i < regs; ++i) {
    SubmitRegistration(i, t0 + 1e9);
  }

  // Background boots on non-churning nodes keep the link contended.
  const auto background = static_cast<std::uint32_t>(
      config_.churn_background_fraction * static_cast<double>(n));
  const double window_ns = config_.churn_offline_seconds * 1e9;
  for (std::uint32_t b = 0; b < background; ++b) {
    auto node = static_cast<std::uint32_t>(loop_.rng().Below(n));
    while (churning[node]) node = (node + 1) % n;
    ScheduleBoot(node, SampleImage(),
                 t0 + loop_.rng().NextDouble() * window_ns);
  }
}

void FleetScenario::StartNextPhase() {
  while (phase_cursor_ < phase_plan_.size()) {
    const char* name = phase_plan_[phase_cursor_++];
    phases_.push_back(PhaseAccum{name, loop_.now_ns(), loop_.now_ns()});
    const double t0 = loop_.now_ns();
    if (name == std::string("register")) {
      // Registration storm: every image submitted at once (§3.2 axis).
      for (std::uint32_t i = 0; i < config_.images; ++i) {
        SubmitRegistration(i, t0);
      }
    } else if (name == std::string("deploy")) {
      const double window_ns = config_.deploy_window_seconds * 1e9;
      for (std::uint32_t node = 0; node < config_.nodes; ++node) {
        ScheduleBoot(node, SampleImage(),
                     t0 + loop_.rng().NextDouble() * window_ns);
      }
    } else if (name == std::string("autoscale")) {
      const auto burst = static_cast<std::uint32_t>(
          config_.autoscale_fraction * static_cast<double>(config_.nodes));
      const double window_ns = config_.autoscale_window_seconds * 1e9;
      for (std::uint32_t b = 0; b < burst; ++b) {
        ScheduleBoot(static_cast<std::uint32_t>(
                         loop_.rng().Below(config_.nodes)),
                     SampleImage(), t0 + loop_.rng().NextDouble() * window_ns);
      }
    } else if (name == std::string("patch")) {
      const auto regs =
          std::min<std::uint32_t>(config_.patch_registrations, config_.images);
      for (std::uint32_t i = 0; i < regs; ++i) {
        SubmitRegistration(i, t0);  // hottest Zipf ranks get patched
      }
      const auto boots = static_cast<std::uint32_t>(
          config_.patch_boot_fraction * static_cast<double>(config_.nodes));
      const double window_ns = config_.patch_window_seconds * 1e9;
      for (std::uint32_t b = 0; b < boots; ++b) {
        const auto image = regs == 0
                               ? SampleImage()
                               : static_cast<std::uint32_t>(
                                     loop_.rng().Below(regs));
        ScheduleBoot(static_cast<std::uint32_t>(
                         loop_.rng().Below(config_.nodes)),
                     image, t0 + loop_.rng().NextDouble() * window_ns);
      }
    } else if (name == std::string("churn")) {
      ScheduleChurn();
    }
    if (outstanding_ > 0) return;
    // Phase scheduled nothing (degenerate config) — fall through to next.
  }
}

FleetReport FleetScenario::Run() {
  phase_plan_.clear();
  phase_plan_.push_back("register");
  if (config_.run_deploy) phase_plan_.push_back("deploy");
  if (config_.run_autoscale) phase_plan_.push_back("autoscale");
  if (config_.run_patch) phase_plan_.push_back("patch");
  if (config_.run_churn) phase_plan_.push_back("churn");

  StartNextPhase();
  const double end_ns = loop_.Run();

  FleetReport report;
  report.nodes = config_.nodes;
  report.images = config_.images;
  report.zipf_s = config_.zipf_s;
  report.seed = config_.seed;
  report.total_boots = total_boots_;
  report.sync_catchups = sync_catchups_;
  report.sync_bytes = sync_bytes_;
  report.sim_seconds = end_ns / 1e9;
  report.events_fired = loop_.fired();
  for (const PhaseAccum& phase : phases_) {
    PhaseStats stats;
    stats.name = phase.name;
    stats.boots = phase.boots;
    stats.remote_boots = phase.remote;
    stats.window_seconds = (phase.last_done_ns - phase.start_ns) / 1e9;
    stats.throughput_boots_per_second =
        stats.window_seconds > 0.0
            ? static_cast<double>(phase.boots) / stats.window_seconds
            : 0.0;
    stats.p50_seconds = phase.latency.Quantile(50);
    stats.p99_seconds = phase.latency.Quantile(99);
    stats.p999_seconds = phase.latency.Quantile(99.9);
    stats.mean_seconds = phase.latency.mean();
    stats.max_seconds = phase.latency.max();
    report.phases.push_back(std::move(stats));
  }
  report.registration.registrations = registrations_done_;
  report.registration.slots =
      static_cast<std::uint32_t>(reg_slot_free_ns_.size());
  report.registration.service_p50_seconds = reg_service_.Quantile(50);
  report.registration.completion_p50_seconds = reg_completion_.Quantile(50);
  report.registration.completion_p99_seconds = reg_completion_.Quantile(99);
  report.registration.completion_max_seconds = reg_completion_.max();
  report.registration.all_under_minute = reg_completion_.max() < 60.0;
  if (config_.placement_enabled) {
    report.placement.enabled = true;
    report.placement.storage_set_size = config_.storage_set_size;
    report.placement.data_shards = config_.data_shards;
    report.placement.parity_shards = config_.parity_shards;
    report.placement.set_count = set_count_;
    report.placement.per_node_capacity_fraction = ShardFraction();
    report.placement.shard_gather_bytes = shard_gather_bytes_;
    report.placement.reconstructions = reconstructions_;
    report.placement.decode_seconds = decode_seconds_;
  }
  return report;
}

std::string FleetReport::ToJson() const {
  std::string out = "{\n  \"nodes\": ";
  AppendU(out, nodes);
  out += ", \"images\": ";
  AppendU(out, images);
  out += ", \"zipf_s\": ";
  AppendF(out, "%.9g", zipf_s);
  out += ", \"seed\": ";
  AppendU(out, seed);
  out += ",\n  \"phases\": [\n";
  for (std::size_t i = 0; i < phases.size(); ++i) {
    const PhaseStats& p = phases[i];
    out += "    {\"name\": \"" + p.name + "\", \"boots\": ";
    AppendU(out, p.boots);
    out += ", \"remote_boots\": ";
    AppendU(out, p.remote_boots);
    out += ", \"window_seconds\": ";
    AppendF(out, "%.9g", p.window_seconds);
    out += ", \"throughput_boots_per_second\": ";
    AppendF(out, "%.9g", p.throughput_boots_per_second);
    out += ", \"p50_seconds\": ";
    AppendF(out, "%.9g", p.p50_seconds);
    out += ", \"p99_seconds\": ";
    AppendF(out, "%.9g", p.p99_seconds);
    out += ", \"p999_seconds\": ";
    AppendF(out, "%.9g", p.p999_seconds);
    out += ", \"mean_seconds\": ";
    AppendF(out, "%.9g", p.mean_seconds);
    out += ", \"max_seconds\": ";
    AppendF(out, "%.9g", p.max_seconds);
    out += i + 1 < phases.size() ? "},\n" : "}\n";
  }
  out += "  ],\n  \"registration_storm\": {\"registrations\": ";
  AppendU(out, registration.registrations);
  out += ", \"slots\": ";
  AppendU(out, registration.slots);
  out += ", \"service_p50_seconds\": ";
  AppendF(out, "%.9g", registration.service_p50_seconds);
  out += ", \"completion_p50_seconds\": ";
  AppendF(out, "%.9g", registration.completion_p50_seconds);
  out += ", \"completion_p99_seconds\": ";
  AppendF(out, "%.9g", registration.completion_p99_seconds);
  out += ", \"completion_max_seconds\": ";
  AppendF(out, "%.9g", registration.completion_max_seconds);
  out += ", \"all_under_minute\": ";
  out += registration.all_under_minute ? "true" : "false";
  out += "},\n";
  if (placement.enabled) {
    // Only striped runs carry this section, so default-policy output stays
    // byte-identical to the pre-placement format.
    out += "  \"placement\": {\"storage_set_size\": ";
    AppendU(out, placement.storage_set_size);
    out += ", \"data_shards\": ";
    AppendU(out, placement.data_shards);
    out += ", \"parity_shards\": ";
    AppendU(out, placement.parity_shards);
    out += ", \"set_count\": ";
    AppendU(out, placement.set_count);
    out += ", \"per_node_capacity_fraction\": ";
    AppendF(out, "%.9g", placement.per_node_capacity_fraction);
    out += ", \"shard_gather_bytes\": ";
    AppendF(out, "%.9g", placement.shard_gather_bytes);
    out += ", \"reconstructions\": ";
    AppendU(out, placement.reconstructions);
    out += ", \"decode_seconds\": ";
    AppendF(out, "%.9g", placement.decode_seconds);
    out += "},\n";
  }
  out += "  \"totals\": {\"boots\": ";
  AppendU(out, total_boots);
  out += ", \"sync_catchups\": ";
  AppendU(out, sync_catchups);
  out += ", \"sync_bytes\": ";
  AppendF(out, "%.9g", sync_bytes);
  out += ", \"sim_seconds\": ";
  AppendF(out, "%.9g", sim_seconds);
  out += ", \"events_fired\": ";
  AppendU(out, events_fired);
  out += "}\n}\n";
  return out;
}

}  // namespace squirrel::sim::fleet
