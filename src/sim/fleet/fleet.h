// Region-scale fleet simulation of Squirrel boot storms (ISSUE 6 tentpole).
//
// FleetScenario drives thousands of lightweight compute-node models through
// Zipf-skewed multi-tenant storm phases on the deterministic event engine:
//
//   register   all images registered at t=0 through a bounded number of
//              registration slots — the registration-*storm* axis extending
//              §3.2's "well under a minute" single-registration claim to
//              concurrent registrations (completion latency includes queue
//              wait on the storage node and the shared multicast link).
//   deploy     every node boots one VM, images Zipf-sampled, arrivals spread
//              over a deploy window (ScaleStore-style skewed workload).
//   autoscale  a fraction of the fleet boots extra VMs in a tight burst.
//   patch      patch-Tuesday: a batch of re-registrations submitted at once
//              (second registration storm) while nodes keep booting the
//              affected images.
//   churn      nodes leave (offline window, §3.4) and rejoin mid-run
//              (SyncNode catch-up over the shared storage link, §3.5);
//              boots issued at rejoin pay the catch-up latency.
//
// Per-node state is compact (a few words per node — no zvol::Volume per
// node): a node's replica is warm for an image iff its synced snapshot
// version covers the image's latest registration, exactly the §3.2/§3.5
// propagation model. Per-boot cost comes from a calibrated single-boot cost
// model (core::CalibrateFleetModel measures a real SquirrelCluster) with
// warm / prefetch / degraded / remote-pull paths and deterministic jitter.
//
// Determinism: every random draw comes from the loop-owned RNG in event
// order, shared resources (registration slots, the storage uplink) are
// FIFO reservations made in event order, and the event loop's
// (time, sequence) total order is stable — so one (config, seed) replays to
// a byte-identical FleetReport and event trace on every run and at any host
// thread count.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/event/event_loop.h"
#include "util/rng.h"
#include "util/stats.h"

namespace squirrel::sim::fleet {

/// Per-boot / per-registration cost model, calibrated from the real
/// single-node simulation (core::CalibrateFleetModel) or used with these
/// defaults (rough dataset-scale numbers).
struct FleetModel {
  /// Warm local boot (replica covers the image): guest-CPU dominated.
  double warm_boot_seconds = 14.5;
  /// Warm boot with profile-guided prefetch enabled.
  double prefetch_boot_seconds = 13.8;
  /// Extra critical-path seconds when the replica is degraded and repairs
  /// on demand; pre-healing (prefetch path) absorbs most of it.
  double degraded_extra_seconds = 3.0;
  /// Fraction of boots that hit a degraded replica.
  double degraded_fraction = 0.0;
  bool prefetch_enabled = true;
  /// Mean per-image boot-cache size (the §3.5 full-pull transfer unit).
  double cache_bytes = 12e6;
  /// Mean incremental snapshot diff shipped per registration (§3.2).
  double diff_bytes = 1.5e6;
  /// Registration boot + snapshot on the storage node (§3.2).
  double registration_boot_seconds = 20.0;
  double snapshot_seconds = 0.1;
  /// Send-stream generate/apply throughput, bytes/second.
  double stream_bytes_per_second = 200e6;
  /// Shared storage-node uplink (multicast diffs, sync catch-ups, remote
  /// pulls all contend FIFO on this link). 10 GbE default.
  double storage_link_bytes_per_second = 1.25e9;
  /// Deterministic per-task cost jitter: multiplier uniform in [1-j, 1+j].
  double jitter_fraction = 0.05;
};

/// Scenario shape. Phases run in the fixed order register → deploy →
/// autoscale → patch → churn, each gated on the previous one draining.
struct FleetConfig {
  std::uint32_t nodes = 2000;
  std::uint32_t images = 64;
  /// Zipf exponent for image popularity (ScaleStore-style skew).
  double zipf_s = 0.9;
  std::uint64_t seed = 42;
  FleetModel model{};

  bool run_deploy = true;
  bool run_autoscale = true;
  bool run_patch = true;
  bool run_churn = true;

  /// Concurrent registrations the storage node admits (slot queue).
  std::uint32_t registration_slots = 1;
  double deploy_window_seconds = 60.0;
  double autoscale_fraction = 0.25;
  double autoscale_window_seconds = 5.0;
  /// Re-registrations submitted at once on patch Tuesday.
  std::uint32_t patch_registrations = 8;
  double patch_window_seconds = 30.0;
  /// Fraction of nodes booting a patched image during the patch phase.
  double patch_boot_fraction = 0.5;
  double churn_fraction = 0.02;
  double churn_offline_seconds = 120.0;
  /// Background boots during churn, as a fraction of the fleet.
  double churn_background_fraction = 0.1;

  /// Record the event trace (FormatTrace) for replay tests.
  bool trace = false;

  // --- striped-placement model (ISSUE 9) ------------------------------------
  // When enabled, compute nodes group into storage sets of
  // `storage_set_size`; each node stores only its erasure-coded shard of
  // every cache (a (data+parity)/(data·set_size) capacity fraction of full
  // replication), boots gather the missing data shards from set peers over a
  // per-set LAN link, and degraded boots rebuild blocks from parity (decode
  // CPU on the critical path). Plain numbers, mirroring
  // placement::PlacementConfig — the fleet sim must not depend on the
  // placement library. A trailing set smaller than data+parity keeps full
  // replicas (no gather, no shrink), matching the cluster's fallback.
  // Default off: the report stays byte-identical to the pre-placement model
  // (no extra RNG draws, no extra JSON).
  bool placement_enabled = false;
  std::uint32_t storage_set_size = 6;
  std::uint32_t data_shards = 4;
  std::uint32_t parity_shards = 2;
  /// Intra-set LAN link for boot-time shard gathers (FIFO per set).
  double set_link_bytes_per_second = 1.25e9;
  /// Reed–Solomon decode throughput for parity rebuilds, bytes/second.
  double decode_bytes_per_second = 1.25e9;
};

/// Striped-placement accounting (zeros and omitted from the JSON when the
/// placement model is off).
struct PlacementStats {
  bool enabled = false;
  std::uint32_t storage_set_size = 0;
  std::uint32_t data_shards = 0;
  std::uint32_t parity_shards = 0;
  std::uint32_t set_count = 0;  // full stripes; trailing nodes replicate
  /// Per-node cache capacity vs full replication: (k+m)/(k·set_size).
  double per_node_capacity_fraction = 1.0;
  double shard_gather_bytes = 0.0;  // intra-set boot traffic
  std::uint64_t reconstructions = 0;  // degraded boots rebuilt from parity
  double decode_seconds = 0.0;        // total decode CPU charged
};

struct PhaseStats {
  std::string name;
  std::uint64_t boots = 0;
  std::uint64_t remote_boots = 0;  // paid sync/pull latency (not warm-local)
  double window_seconds = 0.0;
  double throughput_boots_per_second = 0.0;
  double p50_seconds = 0.0;
  double p99_seconds = 0.0;
  double p999_seconds = 0.0;
  double mean_seconds = 0.0;
  double max_seconds = 0.0;
};

/// The §3.2 registration-storm axis: completion latency includes queueing
/// on the registration slots and the shared link; service latency is the
/// unqueued per-registration work.
struct RegistrationStormStats {
  std::uint64_t registrations = 0;
  std::uint32_t slots = 1;
  double service_p50_seconds = 0.0;
  double completion_p50_seconds = 0.0;
  double completion_p99_seconds = 0.0;
  double completion_max_seconds = 0.0;
  /// §3.2's claim, extended: did every registration — including queue wait
  /// under the storm — still complete well under a minute?
  bool all_under_minute = false;
};

struct FleetReport {
  std::uint32_t nodes = 0;
  std::uint32_t images = 0;
  double zipf_s = 0.0;
  std::uint64_t seed = 0;
  std::vector<PhaseStats> phases;
  RegistrationStormStats registration;
  std::uint64_t total_boots = 0;
  std::uint64_t sync_catchups = 0;
  double sync_bytes = 0.0;
  double sim_seconds = 0.0;
  std::uint64_t events_fired = 0;
  PlacementStats placement{};

  /// Deterministic JSON: same report → byte-identical string.
  std::string ToJson() const;
};

class FleetScenario {
 public:
  explicit FleetScenario(const FleetConfig& config);

  /// Runs every enabled phase to completion and returns the report.
  FleetReport Run();

  event::EventLoop& loop() { return loop_; }

 private:
  /// A node is a handful of words — warm iff synced_version covers the
  /// image's registration version.
  struct NodeState {
    std::uint32_t synced_version = 0;
    std::uint16_t active_boots = 0;
    std::uint8_t online = 1;
  };
  struct PhaseAccum {
    const char* name;
    double start_ns = 0.0;
    double last_done_ns = 0.0;
    std::uint64_t boots = 0;
    std::uint64_t remote = 0;
    util::StreamingHistogram latency{4096, 0.005};
  };

  void StartNextPhase();
  void TaskDone();
  void ScheduleBoot(std::uint32_t node, std::uint32_t image, double at_ns);
  void SubmitRegistration(std::uint32_t image, double at_ns);
  void ScheduleChurn();
  double ReserveLink(double bytes, double earliest_ns);
  double Jitter();
  std::uint32_t SampleImage();

  /// True when `node` lives in a full stripe set (placement on and the node
  /// is not in the trailing undersized set, which keeps full replicas).
  bool NodeStriped(std::uint32_t node) const;
  /// Per-node stored/transferred fraction of a cache vs full replication.
  double ShardFraction() const;
  /// FIFO reservation on one storage set's intra-set LAN link.
  double ReserveSetLink(std::uint32_t set, double bytes, double earliest_ns);

  FleetConfig config_;
  event::EventLoop loop_;
  util::ZipfSampler zipf_;
  std::vector<NodeState> nodes_;
  /// Per-node earliest time the replica is usable (sync catch-up gate).
  std::vector<double> node_available_ns_;
  std::vector<std::uint32_t> image_version_;
  std::uint32_t cluster_version_ = 0;
  double link_free_ns_ = 0.0;
  std::vector<double> reg_slot_free_ns_;
  std::uint64_t outstanding_ = 0;
  std::vector<const char*> phase_plan_;
  std::size_t phase_cursor_ = 0;
  std::vector<PhaseAccum> phases_;
  util::StreamingHistogram reg_service_{4096, 0.005};
  util::StreamingHistogram reg_completion_{4096, 0.005};
  std::uint64_t registrations_done_ = 0;
  std::uint64_t sync_catchups_ = 0;
  double sync_bytes_ = 0.0;
  std::uint64_t total_boots_ = 0;
  /// Striped placement only (empty/zero when the model is off).
  std::vector<double> set_link_free_ns_;
  std::uint32_t set_count_ = 0;
  double shard_gather_bytes_ = 0.0;
  std::uint64_t reconstructions_ = 0;
  double decode_seconds_ = 0.0;
};

}  // namespace squirrel::sim::fleet
