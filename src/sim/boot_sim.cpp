#include "sim/boot_sim.h"

#include "sim/profile_prefetch.h"
#include "util/rng.h"

namespace squirrel::sim {

BootResult SimulateBoot(cow::Chain& chain,
                        const std::vector<vmi::BootRead>& trace,
                        IoContext& io, const BootSimConfig& config,
                        const std::vector<vmi::BootRead>* writes,
                        ProfilePrefetcher* prefetcher) {
  BootResult result;
  const double start_ns = io.elapsed_ns();
  const std::uint64_t hits0 = io.page_cache().hits();
  const std::uint64_t misses0 = io.page_cache().misses();
  const std::uint64_t base0 = chain.base_bytes_read();
  const std::uint64_t cache0 = chain.cache_bytes_read();

  for (const vmi::BootRead& read : trace) {
    const std::uint64_t len =
        std::min<std::uint64_t>(read.length, chain.size() - read.offset);
    if (len == 0) continue;
    // Keep profile-guided background reads ahead of the cursor; the demand
    // read below joins any that cover it.
    if (prefetcher != nullptr) prefetcher->Pump();
    chain.Read(read.offset, len);
    io.ChargeNs(config.guest_ns_per_byte * static_cast<double>(len));
    result.bytes_read += len;
  }

  if (writes != nullptr) {
    util::Rng rng(0xb007);  // log content; bytes are irrelevant, size is not
    util::Bytes buffer;
    for (const vmi::BootRead& write : *writes) {
      if (write.offset + write.length > chain.size()) continue;
      buffer.resize(write.length);
      rng.Fill(buffer);
      chain.Write(write.offset, buffer);
      // Writes are absorbed by the overlay and flushed in the background;
      // charge only the guest-side CPU.
      io.ChargeNs(config.guest_ns_per_byte * static_cast<double>(write.length));
      result.bytes_written += write.length;
    }
  }

  result.io_seconds =
      (io.elapsed_ns() - start_ns) / 1e9 * config.io_time_multiplier;
  result.seconds = config.os_cpu_seconds + result.io_seconds;
  result.base_bytes_read = chain.base_bytes_read() - base0;
  result.cache_bytes_read = chain.cache_bytes_read() - cache0;
  result.page_cache_hits = io.page_cache().hits() - hits0;
  result.page_cache_misses = io.page_cache().misses() - misses0;
  return result;
}

}  // namespace squirrel::sim
