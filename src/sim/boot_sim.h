// Boot-time simulator: replays a VM's boot read trace against an image
// chain and an I/O cost model, producing the boot duration that Figure 11
// reports.
//
// Boot time = a fixed OS-side component (kernel init, service start — the
// part that is not disk bound; VMs in the paper's dataset boot in under
// 20 s, most of it CPU/timer work) + the simulated I/O time of serving the
// trace through the chain.
#pragma once

#include <cstdint>
#include <vector>

#include "cow/chain.h"
#include "sim/io_context.h"
#include "vmi/bootset.h"

namespace squirrel::sim {

struct BootSimConfig {
  /// Non-I/O part of the boot, in seconds.
  double os_cpu_seconds = 14.0;
  /// CPU cost of consuming each read byte (guest-side processing).
  double guest_ns_per_byte = 1.0;
  /// Projects the I/O time to paper scale: a downscaled dataset issues
  /// proportionally fewer block reads and bytes, so multiplying the accrued
  /// I/O time by 1/(size_scale * cache_multiplier) recovers the I/O a
  /// full-size boot would pay. 1.0 = report at simulation scale.
  double io_time_multiplier = 1.0;
};

struct BootResult {
  double seconds = 0.0;
  double io_seconds = 0.0;
  std::uint64_t bytes_read = 0;          // guest-visible bytes
  std::uint64_t bytes_written = 0;       // guest-visible write bytes
  std::uint64_t base_bytes_read = 0;     // fetched from the base VMI
  std::uint64_t cache_bytes_read = 0;    // served by the cache layer
  std::uint64_t page_cache_hits = 0;
  std::uint64_t page_cache_misses = 0;
};

class ProfilePrefetcher;

/// Replays `trace` through `chain`, charging costs to `io`. When `writes`
/// is given, the boot's write trace (logs, /run, tmp) is replayed after the
/// reads: writes land in the CoW overlay; copy-on-write fills of
/// unallocated backing ranges are free (QCOW2 allocation-map semantics).
/// When `prefetcher` is given, it is pumped before every demand read so
/// profile-guided background reads stay ahead of the guest's cursor; a null
/// prefetcher is bit-identical to the plain replay.
BootResult SimulateBoot(cow::Chain& chain,
                        const std::vector<vmi::BootRead>& trace,
                        IoContext& io, const BootSimConfig& config = {},
                        const std::vector<vmi::BootRead>* writes = nullptr,
                        ProfilePrefetcher* prefetcher = nullptr);

}  // namespace squirrel::sim
