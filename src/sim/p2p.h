// Peer-to-peer VMI distribution model (the §5.2.1 comparators: BitTorrent
// provisioning, VMTorrent's on-demand streaming).
//
// A swarm distributes one VMI's chunk set from a seed (the storage node) to
// n peers (compute nodes booting the same image). The model is round-based:
// in each round every node uploads at most `upload_slots` chunks to peers
// that lack them (rarest-first), bounded by link bandwidth. Two modes:
//
//   * kFullImage  — classic BitTorrent provisioning: a VM boots only after
//                   its peer holds ALL chunks (tens of minutes at VMI size).
//   * kStreaming  — VMTorrent: the VM starts immediately; boot reads block
//                   until their chunk arrives, with boot-working-set chunks
//                   prioritized.
//
// The bench compares time-to-boot and network bytes against Squirrel's
// zero-transfer warm replicas.
#pragma once

#include <cstdint>
#include <vector>

namespace squirrel::sim {

enum class P2pMode { kFullImage, kStreaming };

struct P2pConfig {
  P2pMode mode = P2pMode::kStreaming;
  std::uint32_t chunk_size = 256 * 1024;
  /// Concurrent uploads per node per round.
  std::uint32_t upload_slots = 4;
  /// Link bandwidth per node, bytes/second (1 GbE duplex by default).
  double bandwidth_bytes_per_second = 125e6;
};

struct P2pResult {
  /// Per-peer time until the VM can finish booting, seconds.
  std::vector<double> time_to_boot_seconds;
  double mean_time_to_boot = 0.0;
  double max_time_to_boot = 0.0;
  /// Total bytes that crossed the network (all links).
  std::uint64_t network_bytes = 0;
  /// Bytes served by the seed (storage node) — its egress load.
  std::uint64_t seed_bytes = 0;
  std::uint32_t rounds = 0;
};

/// Simulates distributing one image of `image_bytes` (of which
/// `boot_set_bytes` are needed to finish booting) from one seed to
/// `peer_count` peers that all boot the same VMI concurrently.
P2pResult SimulateSwarm(std::uint64_t image_bytes, std::uint64_t boot_set_bytes,
                        std::uint32_t peer_count, const P2pConfig& config);

}  // namespace squirrel::sim
