// Data-center network model: per-node transfer accounting plus simple
// bandwidth-based timing for unicast and multicast.
//
// Figure 18 plots the *cumulative transfer size at compute nodes*; the
// accountant tracks bytes in/out per node so the bench can report exactly
// that series.
#pragma once

#include <cstdint>
#include <vector>

namespace squirrel::sim {

struct NetworkConfig {
  /// Link bandwidth in bytes/ns. Defaults to QDR InfiniBand (32 Gb/s);
  /// 1 GbE is 0.125 B/ns.
  double bandwidth_bytes_per_ns = 4.0;
  /// Per-message overhead (protocol processing, one round trip).
  double message_overhead_ns = 100e3;
};

class NetworkAccountant {
 public:
  explicit NetworkAccountant(std::uint32_t node_count,
                             NetworkConfig config = {});

  /// Point-to-point transfer; returns the simulated duration in ns.
  double Transfer(std::uint32_t from, std::uint32_t to, std::uint64_t bytes);

  /// One sender, many receivers (IP multicast): the stream is sent once and
  /// counted as received on every target.
  double Multicast(std::uint32_t from, const std::vector<std::uint32_t>& to,
                   std::uint64_t bytes);

  /// Sequential unicast: one full stream per receiver leaves the sender.
  /// Returns the total duration (sender link is the bottleneck).
  double UnicastAll(std::uint32_t from, const std::vector<std::uint32_t>& to,
                    std::uint64_t bytes);

  /// LANTorrent-style pipeline: the stream flows sender -> node1 -> node2
  /// -> ...; every node receives once and forwards once, so the duration is
  /// one transfer plus a per-hop latency, and egress load is spread across
  /// the chain instead of concentrating at the storage node.
  double Pipeline(std::uint32_t from, const std::vector<std::uint32_t>& to,
                  std::uint64_t bytes);

  std::uint64_t bytes_in(std::uint32_t node) const { return in_.at(node); }
  std::uint64_t bytes_out(std::uint32_t node) const { return out_.at(node); }

  /// Sum of bytes received over a node range [first, last).
  std::uint64_t TotalBytesIn(std::uint32_t first, std::uint32_t last) const;

  std::uint32_t node_count() const {
    return static_cast<std::uint32_t>(in_.size());
  }

  /// The timing parameters, for callers that schedule their own chunked
  /// transfers (the scatter-gather engine) but still account through
  /// Transfer().
  const NetworkConfig& config() const { return config_; }

 private:
  NetworkConfig config_;
  std::vector<std::uint64_t> in_;
  std::vector<std::uint64_t> out_;
};

}  // namespace squirrel::sim
