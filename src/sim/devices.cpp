#include "sim/devices.h"

#include <algorithm>
#include <cassert>
#include <cstring>

namespace squirrel::sim {
namespace {

// XFS-like layout perturbation: extent e of a file lands at
// disk_base + e * extent + jitter(e), keeping extents internally contiguous.
constexpr std::uint64_t kFileExtentBytes = 8ull << 20;

std::uint64_t ExtentJitter(std::uint64_t device_id, std::uint64_t extent) {
  // Deterministic, small (0..3 MiB), varies per extent.
  const std::uint64_t h =
      (device_id * 0x9e3779b97f4a7c15ULL) ^ (extent * 0xff51afd7ed558ccdULL);
  return (h >> 17) % (3ull << 20);
}

}  // namespace

// --- LocalFileDevice ---------------------------------------------------------

LocalFileDevice::LocalFileDevice(const util::DataSource* content,
                                 IoContext* io, std::uint64_t device_id,
                                 std::uint64_t disk_base,
                                 std::uint32_t io_block)
    : content_(content),
      io_(io),
      device_id_(device_id),
      disk_base_(disk_base),
      io_block_(io_block) {}

std::uint64_t LocalFileDevice::PhysicalOffset(std::uint64_t logical) const {
  const std::uint64_t extent = logical / kFileExtentBytes;
  return disk_base_ + extent * (kFileExtentBytes + (3ull << 20)) +
         ExtentJitter(device_id_, extent) + logical % kFileExtentBytes;
}

std::uint64_t LocalFileDevice::BlockLength(std::uint64_t b) const {
  const std::uint64_t block_start = b * io_block_;
  const std::uint64_t file_size = content_->size();
  // Saturate at EOF: `file_size - block_start` would wrap for blocks past
  // the end, turning a zero-length tail into a full-block charge.
  if (block_start >= file_size) return 0;
  return std::min<std::uint64_t>(io_block_, file_size - block_start);
}

void LocalFileDevice::SetProfileRecorder(vmi::BootProfile* profile,
                                         std::string name) {
  profile_ = profile;
  profile_name_ = std::move(name);
}

void LocalFileDevice::ReadAt(std::uint64_t offset, util::MutableByteSpan out) {
  content_->Read(offset, out);
  if (io_ == nullptr || out.empty()) return;
  // Charge page-cache-aware block I/O.
  const bool async = io_->async_disk();
  const std::uint64_t total_blocks =
      (content_->size() + io_block_ - 1) / io_block_;
  if (total_blocks == 0) return;
  const std::uint64_t first = offset / io_block_;
  if (first >= total_blocks) return;
  // Clamp the charged window to the final (possibly partial) block: a read
  // grazing EOF must never charge blocks past the end of the file.
  const std::uint64_t last = std::min<std::uint64_t>(
      (offset + out.size() - 1) / io_block_, total_blocks - 1);
  std::vector<IoContext::AsyncRead> batch;
  for (std::uint64_t b = first; b <= last; ++b) {
    const bool hit = io_->page_cache().Lookup(device_id_, b);
    if (profile_ != nullptr) profile_->Record(profile_name_, b, hit);
    if (hit) continue;
    const std::uint64_t len = BlockLength(b);
    if (async && io_->InFlight(device_id_, b)) {
      // Readahead from an earlier call already has this block on the wire:
      // the barrier to its completion replaces the disk charge.
      io_->JoinInFlight(device_id_, b);
      io_->page_cache().Insert(device_id_, b, static_cast<std::uint32_t>(len));
      continue;
    }
    if (!async) {
      io_->ChargeDiskRead(PhysicalOffset(b * io_block_), len);
      io_->page_cache().Insert(device_id_, b, static_cast<std::uint32_t>(len));
      continue;
    }
    batch.push_back(
        IoContext::AsyncRead{PhysicalOffset(b * io_block_), len, 0.0, b});
  }
  if (!batch.empty()) {
    io_->ChargeAsyncReadBatch(batch, [&](std::uint64_t b) {
      io_->page_cache().Insert(device_id_, b,
                               static_cast<std::uint32_t>(BlockLength(b)));
    });
  }
  if (async && io_->config().readahead_blocks > 0) {
    const std::uint64_t until = std::min<std::uint64_t>(
        total_blocks, last + 1 + io_->config().readahead_blocks);
    for (std::uint64_t b = last + 1; b < until; ++b) {
      if (io_->page_cache().Resident(device_id_, b)) continue;
      if (io_->InFlight(device_id_, b)) continue;
      const std::uint64_t len = BlockLength(b);
      if (len == 0) break;  // nothing left to prefetch past EOF
      io_->PrefetchDiskRead(device_id_, b, PhysicalOffset(b * io_block_), len);
    }
  }
}

PrefetchOutcome LocalFileDevice::PrefetchBlock(std::uint64_t block) {
  if (io_ == nullptr || !io_->async_disk()) return PrefetchOutcome::kSkipped;
  const std::uint64_t len = BlockLength(block);
  if (len == 0) return PrefetchOutcome::kSkipped;
  if (io_->page_cache().Resident(device_id_, block)) {
    return PrefetchOutcome::kSkipped;
  }
  if (io_->InFlight(device_id_, block)) return PrefetchOutcome::kIssued;
  return io_->PrefetchDiskRead(device_id_, block,
                               PhysicalOffset(block * io_block_), len)
             ? PrefetchOutcome::kIssued
             : PrefetchOutcome::kDropped;
}

void LocalFileDevice::WriteAt(std::uint64_t, util::ByteSpan) {
  // The content source is immutable; local-file writes only occur on CoR
  // cache devices (LocalCacheDevice) or CoW overlays.
  throw std::logic_error("LocalFileDevice is read-only");
}

// --- LocalCacheDevice --------------------------------------------------------

LocalCacheDevice::LocalCacheDevice(std::uint64_t logical_size,
                                   std::uint32_t cluster_size, IoContext* io,
                                   std::uint64_t device_id,
                                   std::uint64_t disk_base)
    : logical_size_(logical_size),
      cluster_size_(cluster_size),
      io_(io),
      device_id_(device_id),
      disk_base_(disk_base) {}

bool LocalCacheDevice::Present(std::uint64_t offset) const {
  return clusters_.contains(offset / cluster_size_);
}

void LocalCacheDevice::ReadAt(std::uint64_t offset, util::MutableByteSpan out) {
  std::uint64_t pos = 0;
  while (pos < out.size()) {
    const std::uint64_t abs = offset + pos;
    const std::uint64_t index = abs / cluster_size_;
    const std::uint64_t within = abs % cluster_size_;
    const std::uint64_t take =
        std::min<std::uint64_t>(cluster_size_ - within, out.size() - pos);
    const auto it = clusters_.find(index);
    if (it == clusters_.end()) {
      throw std::logic_error("reading unpopulated cache cluster");
    }
    std::memcpy(out.data() + pos, it->second.data() + within, take);
    if (io_ != nullptr) {
      if (!io_->page_cache().Lookup(device_id_, index)) {
        io_->ChargeDiskRead(disk_base_ + physical_.at(index), it->second.size());
        io_->page_cache().Insert(device_id_, index,
                                 static_cast<std::uint32_t>(it->second.size()));
      }
    }
    pos += take;
  }
}

void LocalCacheDevice::WriteAt(std::uint64_t offset, util::ByteSpan data) {
  std::uint64_t pos = 0;
  while (pos < data.size()) {
    const std::uint64_t abs = offset + pos;
    const std::uint64_t index = abs / cluster_size_;
    const std::uint64_t within = abs % cluster_size_;
    const std::uint64_t take =
        std::min<std::uint64_t>(cluster_size_ - within, data.size() - pos);
    auto it = clusters_.find(index);
    if (it == clusters_.end()) {
      it = clusters_.emplace(index, util::Bytes(cluster_size_, 0)).first;
      physical_.emplace(index, alloc_cursor_);
      alloc_cursor_ += cluster_size_;
      populated_bytes_ += cluster_size_;
    }
    std::memcpy(it->second.data() + within, data.data() + pos, take);
    // CoR writes are buffered and flushed in the background; the page cache
    // absorbs them, so no synchronous latency is charged.
    if (io_ != nullptr) {
      io_->page_cache().Insert(device_id_, index, cluster_size_);
    }
    pos += take;
  }
}

void LocalCacheDevice::Warm(
    const util::DataSource& content,
    const std::vector<std::pair<std::uint64_t, std::uint64_t>>& ranges) {
  util::Bytes buffer(cluster_size_);
  for (const auto& [offset, length] : ranges) {
    const std::uint64_t first = offset / cluster_size_;
    const std::uint64_t last = (offset + length - 1) / cluster_size_;
    for (std::uint64_t c = first; c <= last; ++c) {
      if (clusters_.contains(c)) continue;
      const std::uint64_t start = c * cluster_size_;
      const std::uint64_t len =
          std::min<std::uint64_t>(cluster_size_, logical_size_ - start);
      util::MutableByteSpan span(buffer.data(), len);
      content.Read(start, span);
      util::Bytes cluster(cluster_size_, 0);
      std::memcpy(cluster.data(), buffer.data(), len);
      clusters_.emplace(c, std::move(cluster));
      physical_.emplace(c, alloc_cursor_);
      alloc_cursor_ += cluster_size_;
      populated_bytes_ += cluster_size_;
    }
  }
}

// --- VolumeFileDevice --------------------------------------------------------

VolumeFileDevice::VolumeFileDevice(zvol::Volume* volume, std::string file,
                                   IoContext* io, std::uint64_t device_id,
                                   std::uint32_t presence_window)
    : volume_(volume),
      file_(std::move(file)),
      io_(io),
      device_id_(device_id),
      presence_window_(presence_window) {}

std::uint64_t VolumeFileDevice::size() const {
  return volume_->FileSize(file_);
}

bool VolumeFileDevice::Present(std::uint64_t offset) const {
  const std::uint32_t block_size = volume_->config().block_size;
  const std::uint64_t window_start =
      offset / presence_window_ * presence_window_;
  const std::uint64_t window_end =
      std::min<std::uint64_t>(window_start + presence_window_,
                              volume_->FileSize(file_));
  const std::uint64_t block_count = volume_->FileBlockCount(file_);
  for (std::uint64_t pos = window_start; pos < window_end; pos += block_size) {
    const std::uint64_t block = pos / block_size;
    if (block >= block_count) break;
    if (!volume_->FileBlock(file_, block).hole) return true;
  }
  return false;
}

void VolumeFileDevice::SetRepairSource(const store::BlockStore* peer,
                                       NetworkAccountant* network,
                                       std::uint32_t node_id) {
  repair_peer_ = peer;
  repair_network_ = network;
  repair_node_id_ = node_id;
  repair_session_.reset();
}

void VolumeFileDevice::SetRepairSources(std::vector<zvol::RepairPeer> peers,
                                        NetworkAccountant* network,
                                        std::uint32_t node_id,
                                        util::FaultInjector* faults) {
  repair_session_ =
      std::make_unique<zvol::RepairSession>(std::move(peers), faults);
  repair_peer_ = nullptr;
  repair_network_ = network;
  repair_node_id_ = node_id;
}

void VolumeFileDevice::SetReconstructionSource(
    zvol::BlockReconstructor* reconstructor) {
  if (repair_session_ != nullptr) {
    repair_session_->SetReconstructionSource(reconstructor);
  }
}

void VolumeFileDevice::SetProfileRecorder(vmi::BootProfile* profile) {
  profile_ = profile;
}

std::uint64_t VolumeFileDevice::BlockLength(std::uint64_t b) const {
  const std::uint32_t block_size = volume_->config().block_size;
  const std::uint64_t file_size = volume_->FileSize(file_);
  const std::uint64_t block_start = b * block_size;
  // Saturate at EOF — see LocalFileDevice::BlockLength.
  if (block_start >= file_size) return 0;
  return std::min<std::uint64_t>(block_size, file_size - block_start);
}

PrefetchOutcome VolumeFileDevice::PrefetchBlock(std::uint64_t block) {
  if (io_ == nullptr || !io_->async_disk()) return PrefetchOutcome::kSkipped;
  if (block >= volume_->FileBlockCount(file_) || BlockLength(block) == 0) {
    return PrefetchOutcome::kSkipped;
  }
  const zvol::BlockPtr& ptr = volume_->FileBlock(file_, block);
  if (ptr.hole) return PrefetchOutcome::kSkipped;
  if (io_->page_cache().Resident(device_id_, block)) {
    return PrefetchOutcome::kSkipped;
  }
  if (io_->InFlight(device_id_, block)) return PrefetchOutcome::kIssued;
  const store::BlockStore& store = volume_->block_store();
  return io_->PrefetchDiskRead(device_id_, block, store.DiskOffset(ptr.digest),
                               store.PhysicalSize(ptr.digest))
             ? PrefetchOutcome::kIssued
             : PrefetchOutcome::kDropped;
}

std::uint64_t VolumeFileDevice::WarmCacheFromBlocks(
    std::span<const std::uint64_t> blocks) {
  const std::uint64_t count = volume_->FileBlockCount(file_);
  std::vector<util::Digest> digests;
  digests.reserve(blocks.size());
  for (const std::uint64_t b : blocks) {
    if (b >= count) continue;
    const zvol::BlockPtr& ptr = volume_->FileBlock(file_, b);
    if (ptr.hole) continue;
    digests.push_back(ptr.digest);
  }
  return volume_->block_store().WarmCache(digests);
}

void VolumeFileDevice::ReadAt(std::uint64_t offset, util::MutableByteSpan out) {
  // Accounting runs before the read executes so cache residency reflects the
  // state this request found (the read itself warms the store's ARC).
  const std::uint64_t block_count = volume_->FileBlockCount(file_);
  if (io_ != nullptr && !out.empty() && block_count > 0 &&
      offset / volume_->config().block_size < block_count) {
    const std::uint32_t block_size = volume_->config().block_size;
    const store::BlockStore& store = volume_->block_store();
    const std::uint64_t first = offset / block_size;
    // Clamp the charged window to the file's final block: a read grazing
    // EOF must never walk (or prefetch past) blocks the file doesn't have.
    const std::uint64_t last = std::min<std::uint64_t>(
        (offset + out.size() - 1) / block_size, block_count - 1);

    // Collect the blocks that miss the page cache, then probe the store's
    // ARC for all of them in one batched call (one lock acquisition instead
    // of one per block).
    const bool async = io_->async_disk();
    std::vector<std::uint64_t> pending;
    std::vector<std::uint8_t> in_flight;  // parallel to pending
    std::vector<util::Digest> digests;
    for (std::uint64_t b = first; b <= last; ++b) {
      const zvol::BlockPtr& ptr = volume_->FileBlock(file_, b);
      if (ptr.hole) continue;  // holes are free
      // Every block access walks the dedup table.
      io_->ChargeDdtLookup(store.stats().unique_blocks);
      const bool hit = io_->page_cache().Lookup(device_id_, b);
      if (profile_ != nullptr) profile_->Record(file_, b, hit);
      if (hit) continue;
      pending.push_back(b);
      in_flight.push_back(async && io_->InFlight(device_id_, b) ? 1 : 0);
      digests.push_back(ptr.digest);
    }
    const std::vector<std::uint8_t> resident =
        store.CachedDecompressedBatch(digests);
    if (!async) {
      for (std::size_t k = 0; k < pending.size(); ++k) {
        const std::uint64_t b = pending[k];
        const zvol::BlockPtr& ptr = volume_->FileBlock(file_, b);
        // Physical read at the block's scattered pool offset.
        io_->ChargeDiskRead(store.DiskOffset(ptr.digest),
                            store.PhysicalSize(ptr.digest));
        // Decompression CPU — unless the decompressed payload is already
        // resident in the store's ARC (ReadConfig::cache_bytes > 0), where a
        // hit serves the plain bytes straight from memory.
        if (!resident[k]) {
          io_->ChargeNs(store.codec().cost().decompress_ns_per_byte *
                        static_cast<double>(ptr.logical_size));
        }
        io_->page_cache().Insert(device_id_, b, ptr.logical_size);
      }
    } else {
      const double decompress_per_byte =
          store.codec().cost().decompress_ns_per_byte;
      // Blocks already on the wire from readahead: barrier to their
      // completion (overlapped with whatever the guest did meanwhile)
      // instead of a fresh disk charge.
      for (std::size_t k = 0; k < pending.size(); ++k) {
        if (!in_flight[k]) continue;
        const std::uint64_t b = pending[k];
        const zvol::BlockPtr& ptr = volume_->FileBlock(file_, b);
        io_->JoinInFlight(device_id_, b);
        if (!resident[k]) {
          io_->ChargeNs(decompress_per_byte *
                        static_cast<double>(ptr.logical_size));
        }
        io_->page_cache().Insert(device_id_, b, ptr.logical_size);
      }
      // The rest go through the bounded queue in windows of `depth`; the
      // completion callback runs in completion order, charging decompression
      // and filling the page cache exactly as the synchronous path would.
      std::vector<IoContext::AsyncRead> batch;
      for (std::size_t k = 0; k < pending.size(); ++k) {
        if (in_flight[k]) continue;
        const zvol::BlockPtr& ptr = volume_->FileBlock(file_, pending[k]);
        batch.push_back(IoContext::AsyncRead{
            store.DiskOffset(ptr.digest), store.PhysicalSize(ptr.digest),
            resident[k] ? 0.0
                        : decompress_per_byte *
                              static_cast<double>(ptr.logical_size),
            pending[k]});
      }
      if (!batch.empty()) {
        io_->ChargeAsyncReadBatch(batch, [&](std::uint64_t b) {
          io_->page_cache().Insert(device_id_, b,
                                   volume_->FileBlock(file_, b).logical_size);
        });
      }
      // Sequential readahead: prefetch the blocks past this read without
      // touching the guest clock. Consumption joins them above.
      const std::uint32_t readahead = io_->config().readahead_blocks;
      if (readahead > 0) {
        const std::uint64_t count = volume_->FileBlockCount(file_);
        const std::uint64_t until =
            std::min<std::uint64_t>(count, last + 1 + readahead);
        for (std::uint64_t b = last + 1; b < until; ++b) {
          const zvol::BlockPtr& ptr = volume_->FileBlock(file_, b);
          if (ptr.hole) continue;
          if (io_->page_cache().Resident(device_id_, b)) continue;
          if (io_->InFlight(device_id_, b)) continue;
          io_->PrefetchDiskRead(device_id_, b, store.DiskOffset(ptr.digest),
                                store.PhysicalSize(ptr.digest));
        }
      }
    }
  }

  util::Bytes data;
  if (repair_session_ != nullptr || repair_peer_ != nullptr) {
    // Degraded mode: a corrupt local block is healed on demand from the
    // storage node (or, with a session, the first honest replica that has
    // it); the re-fetched bytes are charged as network traffic (the cost
    // curve BENCH_faults measures).
    std::uint64_t fetched = 0;
    if (repair_session_ != nullptr) {
      data = volume_->ReadRangeRepair(file_, offset, out.size(),
                                      *repair_session_, &fetched);
      degraded_.peers_blacklisted = repair_session_->peers_blacklisted();
      degraded_.resourced_blocks = repair_session_->resourced_blocks();
      degraded_.byzantine_rejected = repair_session_->byzantine_rejected();
      degraded_.reconstructed_blocks = repair_session_->reconstructed_blocks();
      degraded_.parity_reads = repair_session_->parity_reads();
      degraded_.reconstruct_fallbacks =
          repair_session_->reconstruct_fallbacks();
    } else {
      data = volume_->ReadRangeRepair(file_, offset, out.size(), *repair_peer_,
                                      &fetched);
    }
    if (fetched > 0) {
      ++degraded_.repair_reads;
      degraded_.repaired_bytes += fetched;
      if (repair_network_ != nullptr) {
        const double ns =
            repair_network_->Transfer(/*from=*/0, repair_node_id_, fetched);
        if (io_ != nullptr) io_->ChargeNs(ns);
      }
    }
  } else {
    data = volume_->ReadRange(file_, offset, out.size());
  }
  std::memcpy(out.data(), data.data(), out.size());
}

void VolumeFileDevice::WriteAt(std::uint64_t offset, util::ByteSpan data) {
  volume_->WriteRange(file_, offset, data);
  if (io_ != nullptr) {
    // Hashing (~1 ns/B) and compression CPU; the allocation itself is
    // flushed lazily by the transaction group, so no disk latency here.
    io_->ChargeNs((1.0 + volume_->block_store().codec().cost().compress_ns_per_byte) *
                  static_cast<double>(data.size()));
  }
}

// --- RemoteImageDevice -------------------------------------------------------

RemoteImageDevice::RemoteImageDevice(const util::DataSource* content,
                                     IoContext* io,
                                     NetworkAccountant* network,
                                     std::uint32_t node_id,
                                     AllocationMap allocation)
    : content_(content),
      io_(io),
      network_(network),
      node_id_(node_id),
      allocation_(std::move(allocation)) {}

void RemoteImageDevice::ReadAt(std::uint64_t offset,
                               util::MutableByteSpan out) {
  content_->Read(offset, out);
  bytes_fetched_ += out.size();
  if (network_ != nullptr) {
    // Served by the parallel file system; the caller decided which storage
    // node backs this image when it created the accountant mapping. Node 0
    // of the accountant range is used when no finer mapping is configured.
    const double ns = network_->Transfer(/*from=*/0, node_id_, out.size());
    if (io_ != nullptr) io_->ChargeNs(ns);
  } else if (io_ != nullptr) {
    // No network model: charge a nominal remote latency.
    io_->ChargeNs(200e3 + static_cast<double>(out.size()) / 0.125);
  }
}

}  // namespace squirrel::sim
