// Chain devices bound to the simulation substrate.
//
// Each device implements cow::Device (or WritableDevice) and, when given an
// IoContext, charges the simulated costs of serving reads:
//
//   LocalFileDevice   a file on the node's local (XFS) file system: mostly
//                     sequential physical layout, page-cached reads.
//   VolumeFileDevice  a file inside a zvol::Volume (the ccVolume): per-block
//                     DDT lookup, page cache keyed by volume block, disk
//                     reads at the block's *physical* (scattered) offset,
//                     decompression CPU.
//   RemoteImageDevice the base VMI behind the parallel file system: charges
//                     network transfer and counts the bytes Figure 18 plots.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "cow/device.h"
#include "sim/io_context.h"
#include "sim/network.h"
#include "sim/profile_prefetch.h"
#include "util/source.h"
#include "vmi/boot_profile.h"
#include "zvol/volume.h"

namespace squirrel::sim {

/// A file on the node's local file system. The physical layout is modelled
/// as `disk_base + fragmentation`-perturbed logical offsets: extents of
/// `extent_bytes` stay contiguous, successive extents land a pseudo-random
/// short distance apart (XFS allocation groups).
class LocalFileDevice final : public cow::WritableDevice,
                              public PrefetchTarget {
 public:
  LocalFileDevice(const util::DataSource* content, IoContext* io,
                  std::uint64_t device_id, std::uint64_t disk_base,
                  std::uint32_t io_block = 64 * 1024);

  std::uint64_t size() const override { return content_->size(); }
  bool Present(std::uint64_t) const override { return true; }
  void ReadAt(std::uint64_t offset, util::MutableByteSpan out) override;
  void WriteAt(std::uint64_t offset, util::ByteSpan data) override;

  /// Records every charged block touch into `profile` under `name`
  /// (hit = found in the page cache). Recording is pure bookkeeping: the
  /// clock, caches and counters are bit-identical with or without it.
  void SetProfileRecorder(vmi::BootProfile* profile, std::string name);

  /// PrefetchTarget: background-read one io_block (clamped at EOF) through
  /// the async queue. Never advances the guest clock.
  PrefetchOutcome PrefetchBlock(std::uint64_t block) override;
  std::uint64_t device_id() const override { return device_id_; }

 private:
  std::uint64_t PhysicalOffset(std::uint64_t logical) const;
  /// Charged bytes of block `b`: io_block, clamped at the final partial
  /// block; 0 for blocks at or past EOF (never issue wrapped-around reads).
  std::uint64_t BlockLength(std::uint64_t b) const;

  const util::DataSource* content_;
  IoContext* io_;  // may be null (functional mode)
  std::uint64_t device_id_;
  std::uint64_t disk_base_;
  std::uint32_t io_block_;
  vmi::BootProfile* profile_ = nullptr;  // borrowed; null = not recording
  std::string profile_name_;
};

/// A sparse cache file on the local file system, populated by copy-on-read.
/// Present() consults the populated-cluster bitmap; contents are buffered in
/// memory (the simulation does not need them on disk).
class LocalCacheDevice final : public cow::WritableDevice {
 public:
  LocalCacheDevice(std::uint64_t logical_size, std::uint32_t cluster_size,
                   IoContext* io, std::uint64_t device_id,
                   std::uint64_t disk_base);

  std::uint64_t size() const override { return logical_size_; }
  bool Present(std::uint64_t offset) const override;
  void ReadAt(std::uint64_t offset, util::MutableByteSpan out) override;
  void WriteAt(std::uint64_t offset, util::ByteSpan data) override;

  std::uint64_t populated_bytes() const { return populated_bytes_; }

  /// Pre-populates from another device (a warm cache on plain XFS).
  void Warm(const util::DataSource& content,
            const std::vector<std::pair<std::uint64_t, std::uint64_t>>& ranges);

 private:
  std::uint64_t logical_size_;
  std::uint32_t cluster_size_;
  IoContext* io_;
  std::uint64_t device_id_;
  std::uint64_t disk_base_;
  std::unordered_map<std::uint64_t, util::Bytes> clusters_;
  std::uint64_t populated_bytes_ = 0;
  // Physical placement follows population order (CoR appends), which is why
  // a warm XFS cache reads back nearly sequentially.
  std::unordered_map<std::uint64_t, std::uint64_t> physical_;
  std::uint64_t alloc_cursor_ = 0;
};

/// A file stored in a zvol::Volume (Squirrel's ccVolume).
///
/// Presence is evaluated at `presence_window` granularity (the QCOW2 cluster
/// size by default): a cluster counts as cached when any volume block inside
/// it is materialized. Cache files are populated cluster-wise by
/// copy-on-read, so a cluster whose leading blocks happen to be zeros (file
/// system slack before a misaligned package) is still present; the zvol
/// stores those zeros as holes.
class VolumeFileDevice final : public cow::WritableDevice,
                               public PrefetchTarget {
 public:
  VolumeFileDevice(zvol::Volume* volume, std::string file, IoContext* io,
                   std::uint64_t device_id,
                   std::uint32_t presence_window = 64 * 1024);

  std::uint64_t size() const override;
  bool Present(std::uint64_t offset) const override;
  void ReadAt(std::uint64_t offset, util::MutableByteSpan out) override;
  void WriteAt(std::uint64_t offset, util::ByteSpan data) override;

  /// Records every charged (non-hole) block touch into `profile` under this
  /// device's volume file name. Pure bookkeeping; see LocalFileDevice.
  void SetProfileRecorder(vmi::BootProfile* profile);

  /// PrefetchTarget: background-read one volume block at its *physical*
  /// offset through the async queue. Holes, EOF and resident blocks skip.
  PrefetchOutcome PrefetchBlock(std::uint64_t block) override;
  std::uint64_t device_id() const override { return device_id_; }

  /// Warms the volume's decompressed-block ARC for the given volume blocks
  /// of this file by pushing their digests through BlockStore::GetBatch in
  /// ingest-sized rounds. Returns the number of blocks whose payloads are
  /// now cache-resident. Costs no simulated time: warming happens before
  /// the guest starts (the modelled prefetch daemon runs during VM
  /// scheduling). Corrupt blocks are skipped, not healed — run the pre-heal
  /// pass first on degraded volumes.
  std::uint64_t WarmCacheFromBlocks(std::span<const std::uint64_t> blocks);

  /// Degraded-read accounting: reads that hit a corrupt local block and the
  /// bytes re-fetched from the repair peer(s) to heal them. The Byzantine
  /// counters stay zero on the legacy single-peer path; the multi-peer
  /// session path fills them from the RepairSession after every heal.
  struct DegradedReadStats {
    std::uint64_t repair_reads = 0;    // ReadAt calls that needed healing
    std::uint64_t repaired_bytes = 0;  // logical bytes fetched from the peer
    std::uint64_t peers_blacklisted = 0;   // peers struck out for lying
    std::uint64_t resourced_blocks = 0;    // blocks healed from another peer
    std::uint64_t byzantine_rejected = 0;  // wrong payloads caught by digest
    /// Stripe reconstruction (sessions with a reconstruction source only):
    /// blocks rebuilt from erasure-coded shards, parity shards consumed,
    /// and failed rebuilds that fell back to a whole-block fetch.
    std::uint64_t reconstructed_blocks = 0;
    std::uint64_t parity_reads = 0;
    std::uint64_t reconstruct_fallbacks = 0;
  };

  /// Arms degraded-mode boots: when the verified read path reports a corrupt
  /// local block, re-fetch it on demand from `peer` (the storage node's
  /// scVolume), charge the fetched bytes to `network` as a transfer from
  /// node 0 to `node_id`, and retry the read. Without a repair source,
  /// corruption propagates as BlockCorruptionError.
  void SetRepairSource(const store::BlockStore* peer,
                       NetworkAccountant* network, std::uint32_t node_id);

  /// Multi-peer variant: heal through a RepairSession over `peers` (tried in
  /// order, per-peer strike counters, Byzantine blacklisting). Fetched bytes
  /// are charged to `network` as a transfer from each serving peer's node id
  /// is unknown at this layer, so the whole heal is charged from node 0 (the
  /// worst-case storage hop) to `node_id`, matching the single-peer model.
  /// `faults` drives the Byzantine fault model; may be null. Overrides any
  /// single-peer source previously set.
  void SetRepairSources(std::vector<zvol::RepairPeer> peers,
                        NetworkAccountant* network, std::uint32_t node_id,
                        util::FaultInjector* faults);

  /// Arms stripe reconstruction on the multi-peer session (see
  /// zvol::RepairSession::SetReconstructionSource). Requires a prior
  /// SetRepairSources call; borrowed, nullptr disarms.
  void SetReconstructionSource(zvol::BlockReconstructor* reconstructor);

  const DegradedReadStats& degraded_stats() const { return degraded_; }

 private:
  /// Charged bytes of volume block `b`: block size, clamped at the final
  /// partial block; 0 at or past EOF.
  std::uint64_t BlockLength(std::uint64_t b) const;

  zvol::Volume* volume_;
  std::string file_;
  IoContext* io_;
  std::uint64_t device_id_;
  std::uint32_t presence_window_;
  vmi::BootProfile* profile_ = nullptr;  // borrowed; null = not recording
  const store::BlockStore* repair_peer_ = nullptr;
  NetworkAccountant* repair_network_ = nullptr;
  std::uint32_t repair_node_id_ = 0;
  std::unique_ptr<zvol::RepairSession> repair_session_;
  DegradedReadStats degraded_;
};

/// The base VMI served by the storage nodes over the data-center network.
class RemoteImageDevice final : public cow::Device {
 public:
  /// Reports whether a byte range of the backing image holds real data; a
  /// QCOW2-backed image exposes its allocation map, so reading unallocated
  /// ranges costs no network I/O. Leave unset for raw (fully allocated)
  /// backing files.
  using AllocationMap = std::function<bool(std::uint64_t, std::uint64_t)>;

  RemoteImageDevice(const util::DataSource* content, IoContext* io,
                    NetworkAccountant* network, std::uint32_t node_id,
                    AllocationMap allocation = {});

  std::uint64_t size() const override { return content_->size(); }
  bool Present(std::uint64_t) const override { return true; }
  void ReadAt(std::uint64_t offset, util::MutableByteSpan out) override;
  bool Allocated(std::uint64_t offset, std::uint64_t length) const override {
    return !allocation_ || allocation_(offset, length);
  }

  std::uint64_t bytes_fetched() const { return bytes_fetched_; }

 private:
  const util::DataSource* content_;
  IoContext* io_;
  NetworkAccountant* network_;
  std::uint32_t node_id_;
  AllocationMap allocation_;
  std::uint64_t bytes_fetched_ = 0;
};

}  // namespace squirrel::sim
