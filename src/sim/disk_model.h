// Rotational-disk cost model (DAS-4 nodes: two 7200 RPM SATA disks in
// software RAID-0).
//
// The model charges a distance-dependent positioning cost plus transfer
// time. Distance sensitivity is what makes deduplicated volumes slower at
// small block sizes (Fig 11): logically adjacent blocks of a deduplicated
// file live at scattered physical offsets, so each block read pays a
// positioning cost, while blocks that were allocated together (written in
// one registration) sit close and pay near-track costs.
#pragma once

#include <cstdint>

namespace squirrel::sim {

struct DiskModelConfig {
  // RAID-0 of two 7200rpm SATA disks: ~200 MB/s sequential.
  double sequential_bytes_per_ns = 200.0 * 1e6 / 1e9;  // 0.2 B/ns
  // Positioning cost tiers by seek distance.
  double track_seek_ns = 0.25e6;   // < 1 MiB away ("same neighbourhood")
  double short_seek_ns = 2.0e6;    // < 256 MiB away
  double long_seek_ns = 6.0e6;     // elsewhere (incl. rotational latency)
  std::uint64_t track_distance = 1ull << 20;
  std::uint64_t short_distance = 256ull << 20;
};

class DiskModel {
 public:
  explicit DiskModel(DiskModelConfig config = {}) : config_(config) {}

  /// Cost in ns of reading `length` bytes at `offset`, given the current
  /// head position; advances the head.
  double Read(std::uint64_t offset, std::uint64_t length);

  /// Writes are charged like reads (the simulator only models synchronous
  /// paths; background flushes are free).
  double Write(std::uint64_t offset, std::uint64_t length) {
    return Read(offset, length);
  }

  std::uint64_t bytes_read() const { return bytes_read_; }
  std::uint64_t seeks() const { return seeks_; }
  /// Current head position (after the last Read/Write). The async disk
  /// queue's elevator orders queued requests by distance from here.
  std::uint64_t head() const { return head_; }

 private:
  DiskModelConfig config_;
  std::uint64_t head_ = 0;
  std::uint64_t bytes_read_ = 0;
  std::uint64_t seeks_ = 0;
};

}  // namespace squirrel::sim
