#include "sim/event/event_loop.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <stdexcept>
#include <utility>

namespace squirrel::sim::event {
namespace {

// Compaction kicks in only once the tombstone population is both absolutely
// large and the majority of the heap — small scenarios never pay for it.
constexpr std::size_t kCompactMinTombstones = 64;

}  // namespace

EventId EventLoop::Schedule(double time_ns, const char* tag,
                            std::function<void()> fn) {
  if (std::isnan(time_ns)) {
    throw std::invalid_argument("EventLoop: NaN event time");
  }
  const double at = time_ns < now_ns_ ? now_ns_ : time_ns;
  const EventId id = next_sequence_++;
  heap_.push_back(Pending{at, id, tag, std::move(fn)});
  std::push_heap(heap_.begin(), heap_.end(), FiresLater);
  pending_ids_.insert(id);
  return id;
}

bool EventLoop::Cancel(EventId id) {
  if (pending_ids_.erase(id) == 0) return false;
  tombstones_.insert(id);
  MaybeCompact();
  return true;
}

void EventLoop::PruneTop() {
  while (!heap_.empty() && tombstones_.count(heap_.front().id) != 0) {
    tombstones_.erase(heap_.front().id);
    std::pop_heap(heap_.begin(), heap_.end(), FiresLater);
    heap_.pop_back();
  }
}

void EventLoop::MaybeCompact() {
  if (tombstones_.size() < kCompactMinTombstones ||
      tombstones_.size() * 2 < heap_.size()) {
    return;
  }
  std::vector<Pending> live;
  live.reserve(heap_.size() - tombstones_.size());
  for (Pending& entry : heap_) {
    if (tombstones_.count(entry.id) == 0) live.push_back(std::move(entry));
  }
  heap_ = std::move(live);
  std::make_heap(heap_.begin(), heap_.end(), FiresLater);
  tombstones_.clear();
}

bool EventLoop::Step() {
  PruneTop();
  if (heap_.empty()) return false;
  // Detach before firing: the handler may schedule or cancel freely.
  std::pop_heap(heap_.begin(), heap_.end(), FiresLater);
  Pending pending = std::move(heap_.back());
  heap_.pop_back();
  pending_ids_.erase(pending.id);
  now_ns_ = pending.time_ns;
  ++fired_;
  if (trace_enabled_) {
    trace_.push_back(TraceEntry{pending.time_ns, pending.id, pending.tag});
  }
  if (pending.fn) pending.fn();
  return true;
}

double EventLoop::Run() {
  while (Step()) {
  }
  return now_ns_;
}

double EventLoop::RunUntil(double time_ns) {
  for (;;) {
    PruneTop();
    if (heap_.empty() || heap_.front().time_ns > time_ns) break;
    Step();
  }
  if (time_ns > now_ns_) now_ns_ = time_ns;
  return now_ns_;
}

std::string EventLoop::FormatTrace() const {
  std::string out;
  char line[160];
  for (const TraceEntry& e : trace_) {
    // %a prints the double exactly; decimal formatting could alias two
    // different times to the same string and mask a divergence.
    std::snprintf(line, sizeof(line), "%a #%llu %s\n", e.time_ns,
                  static_cast<unsigned long long>(e.sequence), e.tag.c_str());
    out += line;
  }
  return out;
}

}  // namespace squirrel::sim::event
