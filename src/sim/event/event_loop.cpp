#include "sim/event/event_loop.h"

#include <cmath>
#include <cstdio>
#include <stdexcept>
#include <utility>

namespace squirrel::sim::event {

EventId EventLoop::Schedule(double time_ns, const char* tag,
                            std::function<void()> fn) {
  if (std::isnan(time_ns)) {
    throw std::invalid_argument("EventLoop: NaN event time");
  }
  const double at = time_ns < now_ns_ ? now_ns_ : time_ns;
  const EventId id = next_sequence_++;
  const OrderKey key{at, id};
  queue_.emplace(key, Pending{id, tag, std::move(fn)});
  by_id_.emplace(id, key);
  return id;
}

bool EventLoop::Cancel(EventId id) {
  const auto it = by_id_.find(id);
  if (it == by_id_.end()) return false;
  queue_.erase(it->second);
  by_id_.erase(it);
  return true;
}

bool EventLoop::Step() {
  if (queue_.empty()) return false;
  auto it = queue_.begin();
  // Detach before firing: the handler may schedule or cancel freely.
  const OrderKey key = it->first;
  Pending pending = std::move(it->second);
  queue_.erase(it);
  by_id_.erase(pending.id);
  now_ns_ = key.time_ns;
  ++fired_;
  if (trace_enabled_) {
    trace_.push_back(TraceEntry{key.time_ns, key.sequence, pending.tag});
  }
  if (pending.fn) pending.fn();
  return true;
}

double EventLoop::Run() {
  while (Step()) {
  }
  return now_ns_;
}

double EventLoop::RunUntil(double time_ns) {
  while (!queue_.empty() && queue_.begin()->first.time_ns <= time_ns) {
    Step();
  }
  if (time_ns > now_ns_) now_ns_ = time_ns;
  return now_ns_;
}

std::string EventLoop::FormatTrace() const {
  std::string out;
  char line[160];
  for (const TraceEntry& e : trace_) {
    // %a prints the double exactly; decimal formatting could alias two
    // different times to the same string and mask a divergence.
    std::snprintf(line, sizeof(line), "%a #%llu %s\n", e.time_ns,
                  static_cast<unsigned long long>(e.sequence), e.tag.c_str());
    out += line;
  }
  return out;
}

}  // namespace squirrel::sim::event
