#include "sim/event/disk_queue.h"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace squirrel::sim::event {

AsyncDiskQueue::AsyncDiskQueue(DiskModel* disk, EventLoop* loop,
                               DiskQueueConfig config)
    : disk_(disk), loop_(loop), config_(config) {
  if (config_.depth == 0) {
    throw std::invalid_argument("AsyncDiskQueue: depth must be >= 1");
  }
}

RequestId AsyncDiskQueue::Submit(double submit_ns, std::uint64_t offset,
                                 std::uint64_t length) {
  loop_->RunUntil(submit_ns);
  if (outstanding() >= config_.depth) {
    ++stats_.submit_stalls;
    // Bounded submission queue: stall until a completion frees a slot. The
    // loop only holds this queue's service events, so each Step makes
    // progress toward a completion.
    while (outstanding() >= config_.depth) {
      if (!loop_->Step()) {
        throw std::logic_error("AsyncDiskQueue: full queue with no events");
      }
    }
  }
  const RequestId id = next_id_++;
  Admit(offset, length, id);
  return id;
}

RequestId AsyncDiskQueue::TrySubmit(double submit_ns, std::uint64_t offset,
                                    std::uint64_t length) {
  loop_->RunUntil(submit_ns);
  if (outstanding() >= config_.depth) {
    ++stats_.prefetch_drops;
    return kInvalidRequest;
  }
  const RequestId id = next_id_++;
  Admit(offset, length, id);
  return id;
}

void AsyncDiskQueue::Admit(std::uint64_t offset, std::uint64_t length,
                           RequestId id) {
  ++stats_.submitted;
  queued_.push_back(Request{id, offset, length});
  MaybeStartService();
}

void AsyncDiskQueue::MaybeStartService() {
  if (busy_ || queued_.empty()) return;
  busy_ = true;

  // Pick the next request: FIFO, or the queued request nearest the head
  // (elevator / shortest-seek-first) — ties broken by submission order so the
  // choice is deterministic.
  std::size_t pick = 0;
  if (config_.elevator && queued_.size() > 1) {
    const std::uint64_t head = disk_->head();
    std::uint64_t best = std::numeric_limits<std::uint64_t>::max();
    for (std::size_t i = 0; i < queued_.size(); ++i) {
      const std::uint64_t off = queued_[i].offset;
      const std::uint64_t distance = off > head ? off - head : head - off;
      if (distance < best) {
        best = distance;
        pick = i;
      }
    }
  }
  if (pick != 0) stats_.reordered += pick;  // serviced ahead of `pick` elders

  in_service_.clear();
  in_service_.push_back(queued_[pick]);
  queued_.erase(queued_.begin() + static_cast<std::ptrdiff_t>(pick));

  // Coalesce queued requests exactly adjacent on disk into one physical op
  // (scan repeatedly: merging one member can make another adjacent).
  std::uint64_t start = in_service_.front().offset;
  std::uint64_t end = start + in_service_.front().length;
  if (config_.max_coalesce_bytes > 0) {
    bool grew = true;
    while (grew && end - start < config_.max_coalesce_bytes) {
      grew = false;
      for (std::size_t i = 0; i < queued_.size(); ++i) {
        const Request& r = queued_[i];
        const bool after = r.offset == end;
        const bool before = r.offset + r.length == start;
        if (!after && !before) continue;
        if (end - start + r.length > config_.max_coalesce_bytes) continue;
        if (after) {
          end += r.length;
        } else {
          start = r.offset;
        }
        in_service_.push_back(r);
        queued_.erase(queued_.begin() + static_cast<std::ptrdiff_t>(i));
        ++stats_.coalesced;
        grew = true;
        break;
      }
    }
  }

  const double cost = disk_->Read(start, end - start);
  ++stats_.physical_ops;
  stats_.busy_ns += cost;
  const double completion = loop_->now_ns() + cost;
  loop_->Schedule(completion, "disk-complete", [this, completion] {
    for (const Request& r : in_service_) {
      completed_.emplace(r.id, completion);
      ++stats_.completed;
    }
    in_service_.clear();
    busy_ = false;
    MaybeStartService();
  });
}

double AsyncDiskQueue::CompletionNs(RequestId id) {
  for (;;) {
    const auto it = completed_.find(id);
    if (it != completed_.end()) return it->second;
    if (!loop_->Step()) {
      throw std::logic_error("AsyncDiskQueue: waiting on unknown request");
    }
  }
}

double AsyncDiskQueue::Drain() {
  double last = loop_->now_ns();
  while (outstanding() > 0) {
    if (!loop_->Step()) {
      throw std::logic_error("AsyncDiskQueue: outstanding work with no events");
    }
    last = loop_->now_ns();
  }
  return last;
}

}  // namespace squirrel::sim::event
