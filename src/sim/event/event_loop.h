// Deterministic discrete-event engine — the time substrate for the async I/O
// and transfer models.
//
// The loop is pure simulation time: no wall clock, no threads, no host state
// of any kind leaks into scheduling. Events are ordered by a stable
// (time, sequence) key — two events at the same instant fire in the order
// they were scheduled — so an identical (seed, schedule) replays to a
// byte-identical event trace on every run and at any host thread count (each
// loop instance is confined to one thread; determinism is a property of the
// data structure, not of synchronization).
//
// Storage is a contiguous binary min-heap on the (time, sequence) key —
// fleet-scale scenarios keep hundreds of thousands of events pending, and a
// node-based std::map burns both cache locality and an allocation per event.
// Cancellation is lazy: Cancel() drops the id into a tombstone set and the
// entry is discarded when it surfaces at the heap top (or at the next
// compaction, once tombstones dominate), so cancel stays O(1) without
// breaking the total order. Because every key is unique, heap pop order is
// the same total order the map gave — the byte-identical trace contract is
// unchanged.
//
// Clients (AsyncDiskQueue, ScatterGatherTransfer, fleet::FleetScenario)
// schedule closures at absolute times and advance the loop explicitly:
// Run() to exhaustion, RunUntil(t) to process everything due at or before t,
// Step() for one event. Cancellation removes a pending event by id; firing
// or cancelling an id twice is a detectable no-op. The optional trace
// records every fired event's (time, sequence, tag) for replay tests and
// debugging.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_set>
#include <vector>

#include "util/rng.h"

namespace squirrel::sim::event {

/// Identifies one scheduled event. Ids are never reused within a loop.
using EventId = std::uint64_t;
inline constexpr EventId kInvalidEvent = 0;

class EventLoop {
 public:
  /// `seed` feeds the loop-owned RNG handed to clients that need
  /// deterministic randomness tied to the schedule (unused by the loop
  /// itself — event order never depends on it).
  explicit EventLoop(std::uint64_t seed = 0) : rng_(seed) {}

  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  /// Schedules `fn` at absolute `time_ns` (clamped to now: the past is not
  /// addressable). `tag` names the event in the trace.
  EventId Schedule(double time_ns, const char* tag, std::function<void()> fn);

  /// Schedules `fn` `delay_ns` after the current time.
  EventId ScheduleAfter(double delay_ns, const char* tag,
                        std::function<void()> fn) {
    return Schedule(now_ns_ + delay_ns, tag, std::move(fn));
  }

  /// Removes a pending event. Returns false if it already fired, was
  /// cancelled before, or never existed.
  bool Cancel(EventId id);

  /// Fires the next event (advancing now to its time). False when empty.
  bool Step();

  /// Runs to exhaustion; returns the final time.
  double Run();

  /// Fires every event due at or before `time_ns`, then advances now to
  /// `time_ns` (even if no event was due). Time never moves backwards.
  double RunUntil(double time_ns);

  double now_ns() const { return now_ns_; }
  std::size_t pending() const { return pending_ids_.size(); }
  std::uint64_t fired() const { return fired_; }
  util::Rng& rng() { return rng_; }

  // --- trace ---------------------------------------------------------------

  struct TraceEntry {
    double time_ns = 0.0;
    std::uint64_t sequence = 0;
    std::string tag;
  };

  void EnableTrace(bool on) { trace_enabled_ = on; }
  const std::vector<TraceEntry>& trace() const { return trace_; }

  /// One line per fired event, with the time printed exactly (hex float), so
  /// replay tests can compare traces byte for byte.
  std::string FormatTrace() const;

 private:
  struct Pending {
    double time_ns;
    EventId id;  // doubles as the tie-breaking sequence number
    const char* tag;
    std::function<void()> fn;
  };

  /// Heap comparator: "a fires later than b". With std::push/pop_heap this
  /// makes the front the earliest (time, sequence) — a total order, since
  /// ids are unique.
  static bool FiresLater(const Pending& a, const Pending& b) {
    if (a.time_ns != b.time_ns) return a.time_ns > b.time_ns;
    return a.id > b.id;
  }

  /// Discards tombstoned entries sitting at the heap top so the front is
  /// always a live event (or the heap is empty).
  void PruneTop();

  /// Rebuilds the heap without tombstoned entries once they dominate.
  void MaybeCompact();

  double now_ns_ = 0.0;
  std::uint64_t next_sequence_ = 1;  // doubles as the EventId space
  std::uint64_t fired_ = 0;
  std::vector<Pending> heap_;
  std::unordered_set<EventId> pending_ids_;  // live (scheduled, not fired/cancelled)
  std::unordered_set<EventId> tombstones_;   // cancelled but still in heap_
  bool trace_enabled_ = false;
  std::vector<TraceEntry> trace_;
  util::Rng rng_;
};

}  // namespace squirrel::sim::event
