// io_uring-style asynchronous disk queue over the rotational DiskModel,
// driven by the discrete-event engine.
//
// The synchronous cost model (IoContext::ChargeDiskRead) charges every read
// inline on the guest clock, so the disk is never working while the guest
// computes — queue depth, request coalescing, and completion reordering are
// invisible. This queue gives the disk its own timeline:
//
//   submission   the guest submits a read at its current clock; at most
//                `depth` requests are outstanding (submission stalls when the
//                queue is full — the flow control of a bounded SQ);
//   service      when the device is idle it picks the next request — FIFO,
//                or nearest-offset-first ("elevator") among the queued window
//                when enabled — and merges queued requests that are exactly
//                adjacent on disk into one physical op (ZFS/iosched request
//                coalescing), charging DiskModel once for the merged extent;
//   completion   every member of a merged op completes when the op does;
//                completions are observed out of submission order whenever
//                the elevator reorders.
//
// depth = 1 reduces exactly to the synchronous model: the single-slot queue
// admits one request at a time, FIFO, with nothing else queued to coalesce
// or reorder past, so DiskModel sees the identical (offset, length) call
// sequence and each completion time is the identical `start + cost` sum the
// scalar clock would have accumulated — bit-identical, regression-tested.
#pragma once

#include <cstdint>
#include <deque>
#include <unordered_map>
#include <vector>

#include "sim/disk_model.h"
#include "sim/event/event_loop.h"

namespace squirrel::sim::event {

struct DiskQueueConfig {
  /// Maximum outstanding requests (submitted, not yet completed). Submit
  /// stalls the submitter when full; TrySubmit drops instead. Must be >= 1.
  std::uint32_t depth = 1;
  /// Merge queued requests exactly adjacent to the serviced extent into one
  /// physical op, up to this many bytes per op. 0 disables coalescing.
  std::uint64_t max_coalesce_bytes = 1ull << 20;
  /// Service nearest-offset-first among the queued window instead of FIFO.
  bool elevator = true;
};

struct DiskQueueStats {
  std::uint64_t submitted = 0;
  std::uint64_t completed = 0;
  std::uint64_t physical_ops = 0;       // DiskModel charges issued
  std::uint64_t coalesced = 0;          // requests folded into another op
  std::uint64_t reordered = 0;          // serviced ahead of an older request
  std::uint64_t submit_stalls = 0;      // Submits that found the queue full
  std::uint64_t prefetch_drops = 0;     // TrySubmits dropped (queue full)
  double busy_ns = 0.0;                 // device time spent servicing
};

using RequestId = std::uint64_t;
inline constexpr RequestId kInvalidRequest = 0;

class AsyncDiskQueue {
 public:
  /// `disk` and `loop` are borrowed; the queue mutates the disk's head/stat
  /// state in service order and schedules its events on the loop.
  AsyncDiskQueue(DiskModel* disk, EventLoop* loop, DiskQueueConfig config);

  /// Submits a read at the submitter's clock `submit_ns`. If the queue is
  /// full, stalls (runs the loop) until a slot frees — the admission then
  /// happens at the freeing completion's time.
  RequestId Submit(double submit_ns, std::uint64_t offset,
                   std::uint64_t length);

  /// Non-stalling submit for prefetch: returns kInvalidRequest when the
  /// queue is full (the readahead is simply dropped, as a saturated device
  /// drops readahead in practice).
  RequestId TrySubmit(double submit_ns, std::uint64_t offset,
                      std::uint64_t length);

  /// Runs the loop until `id` completes and returns its completion time.
  double CompletionNs(RequestId id);

  /// True once `id`'s completion event has fired.
  bool Completed(RequestId id) const { return completed_.contains(id); }

  /// Completes all outstanding requests; returns the last completion time
  /// (or the loop's current time when idle).
  double Drain();

  std::uint32_t outstanding() const {
    return static_cast<std::uint32_t>(queued_.size() + in_service_.size());
  }
  const DiskQueueStats& stats() const { return stats_; }
  const DiskQueueConfig& config() const { return config_; }

 private:
  struct Request {
    RequestId id;
    std::uint64_t offset;
    std::uint64_t length;
  };

  void Admit(std::uint64_t offset, std::uint64_t length, RequestId id);
  void MaybeStartService();

  DiskModel* disk_;
  EventLoop* loop_;
  DiskQueueConfig config_;
  RequestId next_id_ = 1;
  std::deque<Request> queued_;          // admitted, awaiting service
  std::vector<Request> in_service_;     // members of the op on the platter
  bool busy_ = false;
  std::unordered_map<RequestId, double> completed_;  // id -> completion ns
  DiskQueueStats stats_;
};

}  // namespace squirrel::sim::event
