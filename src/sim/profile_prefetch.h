// Profile-guided prefetch: replays a recorded vmi::BootProfile ahead of the
// guest's read cursor.
//
// Device readahead (PR 4) is volume-local and strictly sequential — it only
// prefetches the blocks following the current read within one file. A boot,
// though, touches a stable list of blocks across files in a stable order,
// so a profile recorded from the first boot can pre-issue exactly that list:
//
//   pump      before every guest read, the prefetcher issues background
//             reads (IoContext::PrefetchDiskRead through the AsyncDiskQueue)
//             for the next miss-annotated profile touches, keeping at most
//             `lead_blocks` of them outstanding; prefetches never advance
//             the guest clock and are dropped when the queue is saturated;
//   consume   the guest's demand read finds the block in flight and joins
//             its completion (the existing InFlight/JoinInFlight barrier in
//             the devices) — disk service overlaps guest CPU;
//   warm      the profile's touched blocks are additionally pushed through
//             BlockStore::GetBatch before the boot (see
//             VolumeFileDevice::WarmCacheFromBlocks), so the decompressed-
//             block ARC serves them without decompression CPU.
//
// The prefetcher is strictly additive: with no prefetcher (or in synchronous
// disk mode) every path is bit-identical to PR 4 behaviour.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "sim/io_context.h"
#include "vmi/boot_profile.h"

namespace squirrel::sim {

/// Outcome of one background prefetch attempt on a device.
enum class PrefetchOutcome {
  kIssued,   // submitted to the queue (or already on the wire)
  kSkipped,  // nothing to do: resident, a hole, or past EOF
  kDropped,  // queue full — the device is saturated, retry later
};

/// A device the prefetcher can issue background block reads on. Implemented
/// by LocalFileDevice and VolumeFileDevice; `device_id()` must be the id the
/// device keys its own page-cache and in-flight entries with, so the guest's
/// demand read joins the prefetched request.
class PrefetchTarget {
 public:
  virtual ~PrefetchTarget() = default;
  virtual PrefetchOutcome PrefetchBlock(std::uint64_t block) = 0;
  virtual std::uint64_t device_id() const = 0;
};

struct ProfilePrefetchConfig {
  /// Maximum profile blocks kept in flight ahead of the guest's cursor.
  /// Bounded so the prefetcher shares the disk queue with demand reads
  /// instead of monopolizing it.
  std::uint32_t lead_blocks = 32;
};

struct ProfilePrefetchStats {
  std::uint64_t issued = 0;           // background reads submitted
  std::uint64_t skipped_resident = 0; // plan entries already satisfied
  std::uint64_t skipped_unbound = 0;  // touches of files with no bound device
  std::uint64_t dropped = 0;          // submissions refused (queue full)
};

class ProfilePrefetcher {
 public:
  /// `profile` and `io` are borrowed and must outlive the prefetcher. With a
  /// null io or synchronous disk mode Pump() is a no-op (the profile cannot
  /// overlap anything without the async engine).
  ProfilePrefetcher(const vmi::BootProfile* profile, IoContext* io,
                    ProfilePrefetchConfig config = {});

  /// Binds a profile file name to the device that serves it in this boot.
  /// Touches of unbound files are skipped (counted in the stats).
  void Bind(const std::string& file, PrefetchTarget* target);

  /// Issues prefetches for upcoming miss-annotated touches until
  /// `lead_blocks` are outstanding or the plan is exhausted. Never advances
  /// the guest clock; call before each demand read.
  void Pump();

  /// True once every planned touch has been issued or skipped.
  bool Exhausted() const { return built_ && cursor_ >= plan_.size(); }

  const ProfilePrefetchStats& stats() const { return stats_; }

 private:
  struct PlannedBlock {
    PrefetchTarget* target;
    std::uint64_t block;
  };

  void BuildPlan();

  const vmi::BootProfile* profile_;
  IoContext* io_;
  ProfilePrefetchConfig config_;
  std::unordered_map<std::string, PrefetchTarget*> bindings_;
  bool built_ = false;
  std::vector<PlannedBlock> plan_;
  std::size_t cursor_ = 0;
  /// (device, block) keys issued and not yet observed consumed.
  std::vector<std::pair<std::uint64_t, std::uint64_t>> outstanding_;
  ProfilePrefetchStats stats_;
};

}  // namespace squirrel::sim
