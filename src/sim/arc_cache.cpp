#include "sim/arc_cache.h"

#include <algorithm>
#include <cassert>

namespace squirrel::sim {

ArcCache::ArcCache(std::size_t capacity_blocks) : capacity_(capacity_blocks) {}

bool ArcCache::Lookup(std::uint64_t device, std::uint64_t block) {
  if (capacity_ == 0) {
    ++misses_;
    return false;
  }
  const Key key{device, block};
  auto it = index_.find(key);
  if (it == index_.end() || it->second.list == ListId::kB1 ||
      it->second.list == ListId::kB2) {
    ++misses_;
    return false;
  }
  // Case I: hit in T1 or T2 — promote to MRU of T2.
  Entry& entry = it->second;
  Lru& from = entry.list == ListId::kT1 ? t1_ : t2_;
  t2_.splice(t2_.begin(), from, entry.position);
  entry.list = ListId::kT2;
  entry.position = t2_.begin();
  ++hits_;
  return true;
}

void ArcCache::DropLru(Lru& list) {
  assert(!list.empty());
  index_.erase(list.back());
  list.pop_back();
}

void ArcCache::EvictFrom(Lru& list, ListId, Lru& ghost, ListId ghost_id) {
  assert(!list.empty());
  const Key victim = list.back();
  list.pop_back();
  ghost.push_front(victim);
  Entry& entry = index_.at(victim);
  entry.list = ghost_id;
  entry.position = ghost.begin();
}

void ArcCache::Replace(bool hit_in_b2) {
  // REPLACE from the ARC paper: evict from T1 if it exceeds the target p
  // (or ties while the request came from B2), else from T2.
  if (!t1_.empty() &&
      (t1_.size() > p_ || (hit_in_b2 && t1_.size() == p_))) {
    EvictFrom(t1_, ListId::kT1, b1_, ListId::kB1);
  } else if (!t2_.empty()) {
    EvictFrom(t2_, ListId::kT2, b2_, ListId::kB2);
  } else if (!t1_.empty()) {
    EvictFrom(t1_, ListId::kT1, b1_, ListId::kB1);
  }
}

void ArcCache::Insert(std::uint64_t device, std::uint64_t block) {
  if (capacity_ == 0) return;
  const Key key{device, block};
  auto it = index_.find(key);

  if (it != index_.end() && it->second.list == ListId::kB1) {
    // Case II: ghost hit in B1 — grow the recency target.
    const std::size_t delta =
        std::max<std::size_t>(1, b2_.size() / std::max<std::size_t>(1, b1_.size()));
    p_ = std::min(capacity_, p_ + delta);
    Replace(false);
    b1_.erase(it->second.position);
    t2_.push_front(key);
    it->second = Entry{ListId::kT2, t2_.begin()};
    return;
  }
  if (it != index_.end() && it->second.list == ListId::kB2) {
    // Case III: ghost hit in B2 — grow the frequency target.
    const std::size_t delta =
        std::max<std::size_t>(1, b1_.size() / std::max<std::size_t>(1, b2_.size()));
    p_ = p_ > delta ? p_ - delta : 0;
    Replace(true);
    b2_.erase(it->second.position);
    t2_.push_front(key);
    it->second = Entry{ListId::kT2, t2_.begin()};
    return;
  }
  if (it != index_.end()) {
    return;  // already resident (Insert after a racing Lookup hit)
  }

  // Case IV: brand-new key.
  const std::size_t l1 = t1_.size() + b1_.size();
  if (l1 == capacity_) {
    if (t1_.size() < capacity_) {
      DropLru(b1_);
      Replace(false);
    } else {
      DropLru(t1_);
    }
  } else if (l1 < capacity_ &&
             t1_.size() + t2_.size() + b1_.size() + b2_.size() >= capacity_) {
    if (t1_.size() + t2_.size() + b1_.size() + b2_.size() == 2 * capacity_) {
      DropLru(b2_);
    }
    Replace(false);
  }
  t1_.push_front(key);
  index_[key] = Entry{ListId::kT1, t1_.begin()};
}

}  // namespace squirrel::sim
