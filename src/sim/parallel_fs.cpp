#include "sim/parallel_fs.h"

#include <algorithm>
#include <stdexcept>

namespace squirrel::sim {

ParallelFs::ParallelFs(ParallelFsConfig config) : config_(std::move(config)) {
  if (config_.nodes.size() !=
      static_cast<std::size_t>(config_.stripe_count) * config_.replica_count) {
    throw std::invalid_argument("parallel fs node list size mismatch");
  }
  served_.assign(config_.nodes.size(), 0);
}

std::uint32_t ParallelFs::ServingNode(std::uint64_t offset,
                                      std::uint64_t read_sequence) const {
  const std::uint64_t unit = offset / config_.stripe_unit;
  const std::uint32_t group =
      static_cast<std::uint32_t>(unit % config_.stripe_count);
  const std::uint32_t replica =
      static_cast<std::uint32_t>(read_sequence % config_.replica_count);
  return config_.nodes[group * config_.replica_count + replica];
}

double ParallelFs::Read(NetworkAccountant& network, std::uint32_t client,
                        std::uint64_t offset, std::uint64_t length) {
  double total_ns = 0.0;
  std::uint64_t pos = offset;
  const std::uint64_t end = offset + length;
  while (pos < end) {
    const std::uint64_t unit_end =
        (pos / config_.stripe_unit + 1) * config_.stripe_unit;
    const std::uint64_t take = std::min(unit_end, end) - pos;
    const std::uint64_t seq = sequence_++;
    const std::uint32_t node = ServingNode(pos, seq);
    // Account which slot in the node list served it.
    for (std::size_t i = 0; i < config_.nodes.size(); ++i) {
      if (config_.nodes[i] == node) {
        served_[i] += take;
        break;
      }
    }
    total_ns += network.Transfer(node, client, take);
    pos += take;
  }
  return total_ns;
}

std::uint64_t ParallelFs::bytes_served(std::uint32_t storage_node) const {
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < config_.nodes.size(); ++i) {
    if (config_.nodes[i] == storage_node) total += served_[i];
  }
  return total;
}

}  // namespace squirrel::sim
