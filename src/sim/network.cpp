#include "sim/network.h"

#include <stdexcept>

namespace squirrel::sim {

NetworkAccountant::NetworkAccountant(std::uint32_t node_count,
                                     NetworkConfig config)
    : config_(config), in_(node_count, 0), out_(node_count, 0) {}

double NetworkAccountant::Transfer(std::uint32_t from, std::uint32_t to,
                                   std::uint64_t bytes) {
  out_.at(from) += bytes;
  in_.at(to) += bytes;
  return config_.message_overhead_ns +
         static_cast<double>(bytes) / config_.bandwidth_bytes_per_ns;
}

double NetworkAccountant::Multicast(std::uint32_t from,
                                    const std::vector<std::uint32_t>& to,
                                    std::uint64_t bytes) {
  out_.at(from) += bytes;  // sent once on the wire
  for (std::uint32_t node : to) in_.at(node) += bytes;
  return config_.message_overhead_ns +
         static_cast<double>(bytes) / config_.bandwidth_bytes_per_ns;
}

double NetworkAccountant::UnicastAll(std::uint32_t from,
                                     const std::vector<std::uint32_t>& to,
                                     std::uint64_t bytes) {
  double total_ns = 0.0;
  for (std::uint32_t node : to) total_ns += Transfer(from, node, bytes);
  return total_ns;
}

double NetworkAccountant::Pipeline(std::uint32_t from,
                                   const std::vector<std::uint32_t>& to,
                                   std::uint64_t bytes) {
  if (to.empty()) return 0.0;
  std::uint32_t previous = from;
  for (std::uint32_t node : to) {
    out_.at(previous) += bytes;
    in_.at(node) += bytes;
    previous = node;
  }
  // Streaming overlaps hops: wall time is one transfer plus one per-hop
  // store-and-forward latency.
  return static_cast<double>(bytes) / config_.bandwidth_bytes_per_ns +
         static_cast<double>(to.size()) * config_.message_overhead_ns;
}

std::uint64_t NetworkAccountant::TotalBytesIn(std::uint32_t first,
                                              std::uint32_t last) const {
  if (last > in_.size()) throw std::out_of_range("node range");
  std::uint64_t total = 0;
  for (std::uint32_t n = first; n < last; ++n) total += in_[n];
  return total;
}

}  // namespace squirrel::sim
