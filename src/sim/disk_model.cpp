#include "sim/disk_model.h"

namespace squirrel::sim {

double DiskModel::Read(std::uint64_t offset, std::uint64_t length) {
  const std::uint64_t distance =
      offset > head_ ? offset - head_ : head_ - offset;
  double cost = 0.0;
  if (distance == 0) {
    // Sequential continuation: no positioning cost.
  } else if (distance < config_.track_distance) {
    cost += config_.track_seek_ns;
    ++seeks_;
  } else if (distance < config_.short_distance) {
    cost += config_.short_seek_ns;
    ++seeks_;
  } else {
    cost += config_.long_seek_ns;
    ++seeks_;
  }
  cost += static_cast<double>(length) / config_.sequential_bytes_per_ns;
  head_ = offset + length;
  bytes_read_ += length;
  return cost;
}

}  // namespace squirrel::sim
