// Small statistics helpers used by the evaluation harness.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <span>
#include <unordered_map>
#include <vector>

namespace squirrel::util {

/// Welford running mean/variance accumulator.
class RunningStats {
 public:
  void Add(double x);

  std::size_t count() const { return count_; }
  double mean() const { return mean_; }
  double variance() const;  // sample variance; 0 if count < 2
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Root-mean-square error between predictions and observations
/// (sizes must match and be nonzero).
double Rmse(std::span<const double> predicted, std::span<const double> observed);

/// p-th percentile (0..100) by linear interpolation; copies and sorts.
double Percentile(std::span<const double> values, double p);

/// Streaming percentile accumulator with a fixed memory budget — built for
/// fleet-scale runs that record millions of boot latencies, where
/// Percentile()'s copy-and-sort would dominate both memory and time.
///
/// Two regimes:
///   * While the input holds at most `exact_budget` *distinct* values, the
///     histogram is an exact value→count map: Quantile() returns exact
///     nearest-rank percentiles regardless of total sample count (millions
///     of samples drawn from a bounded value set stay exact).
///   * Past the budget it collapses once into logarithmic buckets (DDSketch
///     style: bucket i covers (γ^(i-1), γ^i] with γ = (1+ε)/(1−ε)), after
///     which every positive quantile is within relative error ε of the true
///     value. Memory stays O(exact_budget + log-range/ε).
///
/// Quantiles use the nearest-rank definition (k = ⌈q/100·N⌉, the k-th
/// smallest sample), so p0 is the minimum and p100 the maximum; results are
/// clamped to the observed [min, max]. Non-positive samples are legal but
/// tracked only as a count below the first bucket (they all report min()
/// once in sketch mode) — fleet latencies are strictly positive.
class StreamingHistogram {
 public:
  explicit StreamingHistogram(std::size_t exact_budget = 4096,
                              double relative_error = 0.01);

  void Add(double x);

  /// q-th percentile in 0..100, nearest-rank. Returns 0 when empty.
  double Quantile(double q) const;

  std::uint64_t count() const { return count_; }
  double min() const { return count_ == 0 ? 0.0 : min_; }
  double max() const { return count_ == 0 ? 0.0 : max_; }
  double sum() const { return sum_; }
  double mean() const {
    return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
  }
  /// True while percentiles are still exact (within the distinct-value
  /// budget); false once collapsed to the log-bucket sketch.
  bool exact() const { return exact_mode_; }

 private:
  void AddToSketch(double x, std::uint64_t weight);
  void CollapseToSketch();

  std::size_t exact_budget_;
  double gamma_;      // log-bucket growth factor
  double log_gamma_;  // cached std::log(gamma_)
  bool exact_mode_ = true;

  std::uint64_t count_ = 0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;

  std::map<double, std::uint64_t> exact_;             // exact mode
  std::unordered_map<std::int32_t, std::uint64_t> buckets_;  // sketch mode
  std::uint64_t non_positive_ = 0;                    // sketch mode, x <= 0
};

}  // namespace squirrel::util
