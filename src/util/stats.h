// Small statistics helpers used by the evaluation harness.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace squirrel::util {

/// Welford running mean/variance accumulator.
class RunningStats {
 public:
  void Add(double x);

  std::size_t count() const { return count_; }
  double mean() const { return mean_; }
  double variance() const;  // sample variance; 0 if count < 2
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Root-mean-square error between predictions and observations
/// (sizes must match and be nonzero).
double Rmse(std::span<const double> predicted, std::span<const double> observed);

/// p-th percentile (0..100) by linear interpolation; copies and sorts.
double Percentile(std::span<const double> values, double p);

}  // namespace squirrel::util
