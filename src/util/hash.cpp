#include "util/hash.h"

#include <cstring>

#include "util/sha256.h"

namespace squirrel::util {

std::string Digest::ToHex() const {
  static constexpr char kHex[] = "0123456789abcdef";
  std::string out;
  out.reserve(bytes.size() * 2);
  for (std::uint8_t b : bytes) {
    out.push_back(kHex[b >> 4]);
    out.push_back(kHex[b & 0xf]);
  }
  return out;
}

std::uint64_t Digest::Prefix64() const {
  std::uint64_t value = 0;
  std::memcpy(&value, bytes.data(), sizeof(value));
  return value;
}

Digest HashBlock(ByteSpan data) {
  Sha256Context ctx;
  ctx.Update(data);
  const auto full = ctx.Finish();
  Digest digest;
  std::memcpy(digest.bytes.data(), full.data(), digest.bytes.size());
  return digest;
}

std::array<std::uint8_t, 32> Sha256(ByteSpan data) {
  Sha256Context ctx;
  ctx.Update(data);
  return ctx.Finish();
}

std::uint64_t Fnv1a64(ByteSpan data, std::uint64_t seed) {
  std::uint64_t hash = seed;
  for (Byte b : data) {
    hash ^= b;
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

Fast128 FastHash128(ByteSpan data, std::uint64_t seed) {
  std::uint64_t a = 0x9e3779b97f4a7c15ULL ^ seed;
  std::uint64_t b = 0xc2b2ae3d27d4eb4fULL + seed;
  std::size_t i = 0;
  while (i + 16 <= data.size()) {
    std::uint64_t w0, w1;
    std::memcpy(&w0, data.data() + i, 8);
    std::memcpy(&w1, data.data() + i + 8, 8);
    a = (a ^ w0) * 0xff51afd7ed558ccdULL;
    b = (b ^ w1) * 0xc4ceb9fe1a85ec53ULL;
    a ^= a >> 29;
    b ^= b >> 31;
    i += 16;
  }
  while (i < data.size()) {
    a = (a ^ data[i]) * 0x100000001b3ULL;
    ++i;
  }
  // Final avalanche with cross-mixing so lo/hi are independent.
  a ^= b * 0x9e3779b97f4a7c15ULL;
  a ^= a >> 33;
  a *= 0xff51afd7ed558ccdULL;
  a ^= a >> 33;
  b ^= a * 0xc4ceb9fe1a85ec53ULL;
  b ^= b >> 29;
  b *= 0x94d049bb133111ebULL;
  b ^= b >> 32;
  return {a, b};
}

}  // namespace squirrel::util
