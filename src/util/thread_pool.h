// A small fixed-size thread pool with a blocking parallel-for.
//
// The paper generated its Figure 2/3/4/12 data with Hadoop MapReduce jobs over
// the image corpus; here the dataset-analysis passes (block hashing,
// per-block compression probes) are embarrassingly parallel and run through
// this pool instead.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace squirrel::util {

class ThreadPool {
 public:
  /// `threads == 0` picks std::thread::hardware_concurrency() (min 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t thread_count() const { return workers_.size(); }

  /// Runs fn(i) for i in [0, count) across the pool and blocks until all
  /// iterations finish. Exceptions from `fn` propagate (first one wins).
  void ParallelFor(std::size_t count, const std::function<void(std::size_t)>& fn);

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
};

}  // namespace squirrel::util
